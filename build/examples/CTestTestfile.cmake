# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_conv_explorer "/root/repo/build/examples/conv_explorer" "--n=12" "--nf=4" "--nc=2" "--k=3" "--batch=2")
set_tests_properties(example_conv_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cifar10_training "/root/repo/build/examples/cifar10_training" "--epochs=1" "--examples=32" "--batch=8")
set_tests_properties(example_cifar10_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sparsity_study "/root/repo/build/examples/sparsity_study" "--epochs=1" "--examples=32")
set_tests_properties(example_sparsity_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_training "/root/repo/build/examples/distributed_training" "--epochs=1" "--workers=2" "--global-batch=8")
set_tests_properties(example_distributed_training PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
