file(REMOVE_RECURSE
  "CMakeFiles/sparsity_study.dir/sparsity_study.cpp.o"
  "CMakeFiles/sparsity_study.dir/sparsity_study.cpp.o.d"
  "sparsity_study"
  "sparsity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparsity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
