# Empty compiler generated dependencies file for sparsity_study.
# This may be replaced when dependencies are built.
