file(REMOVE_RECURSE
  "CMakeFiles/conv_explorer.dir/conv_explorer.cpp.o"
  "CMakeFiles/conv_explorer.dir/conv_explorer.cpp.o.d"
  "conv_explorer"
  "conv_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
