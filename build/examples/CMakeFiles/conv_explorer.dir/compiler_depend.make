# Empty compiler generated dependencies file for conv_explorer.
# This may be replaced when dependencies are built.
