# Empty compiler generated dependencies file for cifar10_training.
# This may be replaced when dependencies are built.
