# Empty dependencies file for cifar10_training.
# This may be replaced when dependencies are built.
