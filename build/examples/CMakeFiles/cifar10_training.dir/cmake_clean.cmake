file(REMOVE_RECURSE
  "CMakeFiles/cifar10_training.dir/cifar10_training.cpp.o"
  "CMakeFiles/cifar10_training.dir/cifar10_training.cpp.o.d"
  "cifar10_training"
  "cifar10_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar10_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
