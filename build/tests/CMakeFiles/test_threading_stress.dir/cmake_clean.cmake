file(REMOVE_RECURSE
  "CMakeFiles/test_threading_stress.dir/test_threading_stress.cc.o"
  "CMakeFiles/test_threading_stress.dir/test_threading_stress.cc.o.d"
  "test_threading_stress"
  "test_threading_stress.pdb"
  "test_threading_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threading_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
