
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_threading_stress.cc" "tests/CMakeFiles/test_threading_stress.dir/test_threading_stress.cc.o" "gcc" "tests/CMakeFiles/test_threading_stress.dir/test_threading_stress.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/conv/CMakeFiles/spg_conv.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/spg_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/spg_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/spg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/spg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/spg_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
