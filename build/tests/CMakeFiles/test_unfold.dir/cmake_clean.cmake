file(REMOVE_RECURSE
  "CMakeFiles/test_unfold.dir/test_unfold.cc.o"
  "CMakeFiles/test_unfold.dir/test_unfold.cc.o.d"
  "test_unfold"
  "test_unfold.pdb"
  "test_unfold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
