# Empty compiler generated dependencies file for test_unfold.
# This may be replaced when dependencies are built.
