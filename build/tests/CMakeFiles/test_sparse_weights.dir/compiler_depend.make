# Empty compiler generated dependencies file for test_sparse_weights.
# This may be replaced when dependencies are built.
