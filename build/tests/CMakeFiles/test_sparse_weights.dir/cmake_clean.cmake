file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_weights.dir/test_sparse_weights.cc.o"
  "CMakeFiles/test_sparse_weights.dir/test_sparse_weights.cc.o.d"
  "test_sparse_weights"
  "test_sparse_weights.pdb"
  "test_sparse_weights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
