file(REMOVE_RECURSE
  "CMakeFiles/test_conv_properties.dir/test_conv_properties.cc.o"
  "CMakeFiles/test_conv_properties.dir/test_conv_properties.cc.o.d"
  "test_conv_properties"
  "test_conv_properties.pdb"
  "test_conv_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
