# Empty dependencies file for test_conv_properties.
# This may be replaced when dependencies are built.
