file(REMOVE_RECURSE
  "CMakeFiles/test_perf_simcpu.dir/test_perf_simcpu.cc.o"
  "CMakeFiles/test_perf_simcpu.dir/test_perf_simcpu.cc.o.d"
  "test_perf_simcpu"
  "test_perf_simcpu.pdb"
  "test_perf_simcpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_simcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
