# Empty compiler generated dependencies file for test_perf_simcpu.
# This may be replaced when dependencies are built.
