file(REMOVE_RECURSE
  "CMakeFiles/test_conv_engines.dir/test_conv_engines.cc.o"
  "CMakeFiles/test_conv_engines.dir/test_conv_engines.cc.o.d"
  "test_conv_engines"
  "test_conv_engines.pdb"
  "test_conv_engines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
