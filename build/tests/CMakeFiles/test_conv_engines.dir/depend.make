# Empty dependencies file for test_conv_engines.
# This may be replaced when dependencies are built.
