# Empty compiler generated dependencies file for test_pool_sweep.
# This may be replaced when dependencies are built.
