file(REMOVE_RECURSE
  "CMakeFiles/test_pool_sweep.dir/test_pool_sweep.cc.o"
  "CMakeFiles/test_pool_sweep.dir/test_pool_sweep.cc.o.d"
  "test_pool_sweep"
  "test_pool_sweep.pdb"
  "test_pool_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
