# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_threading[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_gemm[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_conv_engines[1]_include.cmake")
include("/root/repo/build/tests/test_perf_simcpu[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_conv_properties[1]_include.cmake")
include("/root/repo/build/tests/test_unfold[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_weights[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_distrib[1]_include.cmake")
include("/root/repo/build/tests/test_winograd[1]_include.cmake")
include("/root/repo/build/tests/test_pool_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_threading_stress[1]_include.cmake")
