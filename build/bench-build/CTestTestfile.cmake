# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table1 "/root/repo/build/bench/bench_table1")
set_tests_properties(bench_smoke_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;40;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_table2 "/root/repo/build/bench/bench_table2")
set_tests_properties(bench_smoke_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;41;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig4b "/root/repo/build/bench/bench_fig4b")
set_tests_properties(bench_smoke_fig4b PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;42;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8 "/root/repo/build/bench/bench_fig8")
set_tests_properties(bench_smoke_fig8 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;43;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9 "/root/repo/build/bench/bench_fig9" "--measure=0")
set_tests_properties(bench_smoke_fig9 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
