# Empty dependencies file for bench_ext_fft.
# This may be replaced when dependencies are built.
