file(REMOVE_RECURSE
  "../bench/bench_ext_fft"
  "../bench/bench_ext_fft.pdb"
  "CMakeFiles/bench_ext_fft.dir/bench_ext_fft.cc.o"
  "CMakeFiles/bench_ext_fft.dir/bench_ext_fft.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
