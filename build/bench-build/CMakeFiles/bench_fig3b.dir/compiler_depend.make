# Empty compiler generated dependencies file for bench_fig3b.
# This may be replaced when dependencies are built.
