file(REMOVE_RECURSE
  "../bench/bench_fig3a"
  "../bench/bench_fig3a.pdb"
  "CMakeFiles/bench_fig3a.dir/bench_fig3a.cc.o"
  "CMakeFiles/bench_fig3a.dir/bench_fig3a.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
