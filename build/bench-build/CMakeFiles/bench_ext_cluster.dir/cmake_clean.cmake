file(REMOVE_RECURSE
  "../bench/bench_ext_cluster"
  "../bench/bench_ext_cluster.pdb"
  "CMakeFiles/bench_ext_cluster.dir/bench_ext_cluster.cc.o"
  "CMakeFiles/bench_ext_cluster.dir/bench_ext_cluster.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
