file(REMOVE_RECURSE
  "../bench/bench_fig4d"
  "../bench/bench_fig4d.pdb"
  "CMakeFiles/bench_fig4d.dir/bench_fig4d.cc.o"
  "CMakeFiles/bench_fig4d.dir/bench_fig4d.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
