# Empty dependencies file for bench_ablation_ctcsr.
# This may be replaced when dependencies are built.
