file(REMOVE_RECURSE
  "../bench/bench_ablation_ctcsr"
  "../bench/bench_ablation_ctcsr.pdb"
  "CMakeFiles/bench_ablation_ctcsr.dir/bench_ablation_ctcsr.cc.o"
  "CMakeFiles/bench_ablation_ctcsr.dir/bench_ablation_ctcsr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ctcsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
