file(REMOVE_RECURSE
  "../bench/bench_fig4c"
  "../bench/bench_fig4c.pdb"
  "CMakeFiles/bench_fig4c.dir/bench_fig4c.cc.o"
  "CMakeFiles/bench_fig4c.dir/bench_fig4c.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
