file(REMOVE_RECURSE
  "../bench/bench_ablation_stride"
  "../bench/bench_ablation_stride.pdb"
  "CMakeFiles/bench_ablation_stride.dir/bench_ablation_stride.cc.o"
  "CMakeFiles/bench_ablation_stride.dir/bench_ablation_stride.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
