# Empty compiler generated dependencies file for bench_ext_winograd.
# This may be replaced when dependencies are built.
