file(REMOVE_RECURSE
  "../bench/bench_ext_winograd"
  "../bench/bench_ext_winograd.pdb"
  "CMakeFiles/bench_ext_winograd.dir/bench_ext_winograd.cc.o"
  "CMakeFiles/bench_ext_winograd.dir/bench_ext_winograd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_winograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
