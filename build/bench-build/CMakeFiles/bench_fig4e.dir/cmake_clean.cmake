file(REMOVE_RECURSE
  "../bench/bench_fig4e"
  "../bench/bench_fig4e.pdb"
  "CMakeFiles/bench_fig4e.dir/bench_fig4e.cc.o"
  "CMakeFiles/bench_fig4e.dir/bench_fig4e.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
