# Empty dependencies file for bench_ext_wsparse.
# This may be replaced when dependencies are built.
