file(REMOVE_RECURSE
  "../bench/bench_ext_wsparse"
  "../bench/bench_ext_wsparse.pdb"
  "CMakeFiles/bench_ext_wsparse.dir/bench_ext_wsparse.cc.o"
  "CMakeFiles/bench_ext_wsparse.dir/bench_ext_wsparse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_wsparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
