file(REMOVE_RECURSE
  "../bench/bench_ablation_rtile"
  "../bench/bench_ablation_rtile.pdb"
  "CMakeFiles/bench_ablation_rtile.dir/bench_ablation_rtile.cc.o"
  "CMakeFiles/bench_ablation_rtile.dir/bench_ablation_rtile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rtile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
