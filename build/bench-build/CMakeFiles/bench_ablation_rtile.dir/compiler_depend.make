# Empty compiler generated dependencies file for bench_ablation_rtile.
# This may be replaced when dependencies are built.
