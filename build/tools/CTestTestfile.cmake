# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_spgcnn_engines "/root/repo/build/tools/spgcnn" "engines")
set_tests_properties(tool_spgcnn_engines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_spgcnn_characterize "/root/repo/build/tools/spgcnn" "characterize" "--n=28" "--nf=20" "--nc=1" "--k=5")
set_tests_properties(tool_spgcnn_characterize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_spgcnn_tune "/root/repo/build/tools/spgcnn" "tune" "--n=12" "--nf=4" "--nc=2" "--k=3" "--batch=2" "--threads=1")
set_tests_properties(tool_spgcnn_tune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_spgcnn_train "/root/repo/build/tools/spgcnn" "train" "--net=mnist" "--dataset-size=48" "--epochs=1" "--mode=fixed" "--threads=1")
set_tests_properties(tool_spgcnn_train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
