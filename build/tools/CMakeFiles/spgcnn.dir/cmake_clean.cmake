file(REMOVE_RECURSE
  "CMakeFiles/spgcnn.dir/spgcnn.cc.o"
  "CMakeFiles/spgcnn.dir/spgcnn.cc.o.d"
  "spgcnn"
  "spgcnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spgcnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
