# Empty dependencies file for spgcnn.
# This may be replaced when dependencies are built.
