# Empty dependencies file for spg_data.
# This may be replaced when dependencies are built.
