file(REMOVE_RECURSE
  "CMakeFiles/spg_data.dir/suites.cc.o"
  "CMakeFiles/spg_data.dir/suites.cc.o.d"
  "CMakeFiles/spg_data.dir/synthetic.cc.o"
  "CMakeFiles/spg_data.dir/synthetic.cc.o.d"
  "libspg_data.a"
  "libspg_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
