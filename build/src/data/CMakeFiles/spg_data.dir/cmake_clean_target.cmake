file(REMOVE_RECURSE
  "libspg_data.a"
)
