# Empty compiler generated dependencies file for spg_tensor.
# This may be replaced when dependencies are built.
