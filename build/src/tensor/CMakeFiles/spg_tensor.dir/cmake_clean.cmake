file(REMOVE_RECURSE
  "CMakeFiles/spg_tensor.dir/layout.cc.o"
  "CMakeFiles/spg_tensor.dir/layout.cc.o.d"
  "CMakeFiles/spg_tensor.dir/tensor.cc.o"
  "CMakeFiles/spg_tensor.dir/tensor.cc.o.d"
  "libspg_tensor.a"
  "libspg_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
