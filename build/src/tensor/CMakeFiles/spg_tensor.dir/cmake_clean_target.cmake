file(REMOVE_RECURSE
  "libspg_tensor.a"
)
