file(REMOVE_RECURSE
  "libspg_simcpu.a"
)
