file(REMOVE_RECURSE
  "CMakeFiles/spg_simcpu.dir/conv_model.cc.o"
  "CMakeFiles/spg_simcpu.dir/conv_model.cc.o.d"
  "CMakeFiles/spg_simcpu.dir/machine.cc.o"
  "CMakeFiles/spg_simcpu.dir/machine.cc.o.d"
  "CMakeFiles/spg_simcpu.dir/simulate.cc.o"
  "CMakeFiles/spg_simcpu.dir/simulate.cc.o.d"
  "libspg_simcpu.a"
  "libspg_simcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_simcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
