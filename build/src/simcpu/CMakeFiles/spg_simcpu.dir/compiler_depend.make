# Empty compiler generated dependencies file for spg_simcpu.
# This may be replaced when dependencies are built.
