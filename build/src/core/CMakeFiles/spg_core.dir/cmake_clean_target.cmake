file(REMOVE_RECURSE
  "libspg_core.a"
)
