# Empty compiler generated dependencies file for spg_core.
# This may be replaced when dependencies are built.
