file(REMOVE_RECURSE
  "CMakeFiles/spg_core.dir/net_config.cc.o"
  "CMakeFiles/spg_core.dir/net_config.cc.o.d"
  "CMakeFiles/spg_core.dir/tuner.cc.o"
  "CMakeFiles/spg_core.dir/tuner.cc.o.d"
  "libspg_core.a"
  "libspg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
