file(REMOVE_RECURSE
  "libspg_sparse.a"
)
