# Empty dependencies file for spg_sparse.
# This may be replaced when dependencies are built.
