file(REMOVE_RECURSE
  "CMakeFiles/spg_sparse.dir/csr.cc.o"
  "CMakeFiles/spg_sparse.dir/csr.cc.o.d"
  "CMakeFiles/spg_sparse.dir/sparse_mm.cc.o"
  "CMakeFiles/spg_sparse.dir/sparse_mm.cc.o.d"
  "libspg_sparse.a"
  "libspg_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
