# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tensor")
subdirs("threading")
subdirs("blas")
subdirs("fft")
subdirs("sparse")
subdirs("conv")
subdirs("perf")
subdirs("simcpu")
subdirs("core")
subdirs("nn")
subdirs("distrib")
subdirs("data")
