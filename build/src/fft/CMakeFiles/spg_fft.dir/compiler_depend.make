# Empty compiler generated dependencies file for spg_fft.
# This may be replaced when dependencies are built.
