file(REMOVE_RECURSE
  "libspg_fft.a"
)
