file(REMOVE_RECURSE
  "CMakeFiles/spg_fft.dir/fft.cc.o"
  "CMakeFiles/spg_fft.dir/fft.cc.o.d"
  "libspg_fft.a"
  "libspg_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
