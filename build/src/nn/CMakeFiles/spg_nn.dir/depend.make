# Empty dependencies file for spg_nn.
# This may be replaced when dependencies are built.
