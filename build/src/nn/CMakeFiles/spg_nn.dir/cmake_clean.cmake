file(REMOVE_RECURSE
  "CMakeFiles/spg_nn.dir/checkpoint.cc.o"
  "CMakeFiles/spg_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/spg_nn.dir/conv_layer.cc.o"
  "CMakeFiles/spg_nn.dir/conv_layer.cc.o.d"
  "CMakeFiles/spg_nn.dir/fc_layer.cc.o"
  "CMakeFiles/spg_nn.dir/fc_layer.cc.o.d"
  "CMakeFiles/spg_nn.dir/network.cc.o"
  "CMakeFiles/spg_nn.dir/network.cc.o.d"
  "CMakeFiles/spg_nn.dir/simple_layers.cc.o"
  "CMakeFiles/spg_nn.dir/simple_layers.cc.o.d"
  "CMakeFiles/spg_nn.dir/trainer.cc.o"
  "CMakeFiles/spg_nn.dir/trainer.cc.o.d"
  "libspg_nn.a"
  "libspg_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
