file(REMOVE_RECURSE
  "libspg_nn.a"
)
