file(REMOVE_RECURSE
  "CMakeFiles/spg_perf.dir/region.cc.o"
  "CMakeFiles/spg_perf.dir/region.cc.o.d"
  "CMakeFiles/spg_perf.dir/roofline.cc.o"
  "CMakeFiles/spg_perf.dir/roofline.cc.o.d"
  "libspg_perf.a"
  "libspg_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
