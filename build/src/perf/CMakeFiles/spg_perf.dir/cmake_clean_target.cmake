file(REMOVE_RECURSE
  "libspg_perf.a"
)
