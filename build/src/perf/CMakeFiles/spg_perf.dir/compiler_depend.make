# Empty compiler generated dependencies file for spg_perf.
# This may be replaced when dependencies are built.
