file(REMOVE_RECURSE
  "CMakeFiles/spg_blas.dir/gemm.cc.o"
  "CMakeFiles/spg_blas.dir/gemm.cc.o.d"
  "libspg_blas.a"
  "libspg_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
