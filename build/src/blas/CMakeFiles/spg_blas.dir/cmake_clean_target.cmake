file(REMOVE_RECURSE
  "libspg_blas.a"
)
