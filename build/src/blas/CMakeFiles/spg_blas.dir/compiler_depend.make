# Empty compiler generated dependencies file for spg_blas.
# This may be replaced when dependencies are built.
