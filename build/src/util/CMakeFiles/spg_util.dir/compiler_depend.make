# Empty compiler generated dependencies file for spg_util.
# This may be replaced when dependencies are built.
