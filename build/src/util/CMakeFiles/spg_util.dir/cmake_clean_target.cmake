file(REMOVE_RECURSE
  "libspg_util.a"
)
