file(REMOVE_RECURSE
  "CMakeFiles/spg_util.dir/cli.cc.o"
  "CMakeFiles/spg_util.dir/cli.cc.o.d"
  "CMakeFiles/spg_util.dir/logging.cc.o"
  "CMakeFiles/spg_util.dir/logging.cc.o.d"
  "CMakeFiles/spg_util.dir/table.cc.o"
  "CMakeFiles/spg_util.dir/table.cc.o.d"
  "libspg_util.a"
  "libspg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
