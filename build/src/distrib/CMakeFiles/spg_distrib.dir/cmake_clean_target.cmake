file(REMOVE_RECURSE
  "libspg_distrib.a"
)
