# Empty dependencies file for spg_distrib.
# This may be replaced when dependencies are built.
