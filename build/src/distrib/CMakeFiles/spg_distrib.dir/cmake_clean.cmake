file(REMOVE_RECURSE
  "CMakeFiles/spg_distrib.dir/data_parallel.cc.o"
  "CMakeFiles/spg_distrib.dir/data_parallel.cc.o.d"
  "libspg_distrib.a"
  "libspg_distrib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_distrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
