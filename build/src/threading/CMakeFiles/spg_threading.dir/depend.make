# Empty dependencies file for spg_threading.
# This may be replaced when dependencies are built.
