file(REMOVE_RECURSE
  "libspg_threading.a"
)
