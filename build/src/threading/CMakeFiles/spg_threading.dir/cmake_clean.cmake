file(REMOVE_RECURSE
  "CMakeFiles/spg_threading.dir/thread_pool.cc.o"
  "CMakeFiles/spg_threading.dir/thread_pool.cc.o.d"
  "libspg_threading.a"
  "libspg_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
