# Empty dependencies file for spg_conv.
# This may be replaced when dependencies are built.
