file(REMOVE_RECURSE
  "libspg_conv.a"
)
