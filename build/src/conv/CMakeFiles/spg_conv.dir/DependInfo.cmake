
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conv/conv_ref.cc" "src/conv/CMakeFiles/spg_conv.dir/conv_ref.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/conv_ref.cc.o.d"
  "/root/repo/src/conv/conv_spec.cc" "src/conv/CMakeFiles/spg_conv.dir/conv_spec.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/conv_spec.cc.o.d"
  "/root/repo/src/conv/engine.cc" "src/conv/CMakeFiles/spg_conv.dir/engine.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/engine.cc.o.d"
  "/root/repo/src/conv/engine_fft.cc" "src/conv/CMakeFiles/spg_conv.dir/engine_fft.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/engine_fft.cc.o.d"
  "/root/repo/src/conv/engine_gemm.cc" "src/conv/CMakeFiles/spg_conv.dir/engine_gemm.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/engine_gemm.cc.o.d"
  "/root/repo/src/conv/engine_sparse.cc" "src/conv/CMakeFiles/spg_conv.dir/engine_sparse.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/engine_sparse.cc.o.d"
  "/root/repo/src/conv/engine_sparse_weights.cc" "src/conv/CMakeFiles/spg_conv.dir/engine_sparse_weights.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/engine_sparse_weights.cc.o.d"
  "/root/repo/src/conv/engine_stencil.cc" "src/conv/CMakeFiles/spg_conv.dir/engine_stencil.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/engine_stencil.cc.o.d"
  "/root/repo/src/conv/engine_winograd.cc" "src/conv/CMakeFiles/spg_conv.dir/engine_winograd.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/engine_winograd.cc.o.d"
  "/root/repo/src/conv/engines.cc" "src/conv/CMakeFiles/spg_conv.dir/engines.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/engines.cc.o.d"
  "/root/repo/src/conv/unfold.cc" "src/conv/CMakeFiles/spg_conv.dir/unfold.cc.o" "gcc" "src/conv/CMakeFiles/spg_conv.dir/unfold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blas/CMakeFiles/spg_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/spg_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/spg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/spg_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/spg_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
