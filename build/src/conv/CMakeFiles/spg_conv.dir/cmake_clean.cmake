file(REMOVE_RECURSE
  "CMakeFiles/spg_conv.dir/conv_ref.cc.o"
  "CMakeFiles/spg_conv.dir/conv_ref.cc.o.d"
  "CMakeFiles/spg_conv.dir/conv_spec.cc.o"
  "CMakeFiles/spg_conv.dir/conv_spec.cc.o.d"
  "CMakeFiles/spg_conv.dir/engine.cc.o"
  "CMakeFiles/spg_conv.dir/engine.cc.o.d"
  "CMakeFiles/spg_conv.dir/engine_fft.cc.o"
  "CMakeFiles/spg_conv.dir/engine_fft.cc.o.d"
  "CMakeFiles/spg_conv.dir/engine_gemm.cc.o"
  "CMakeFiles/spg_conv.dir/engine_gemm.cc.o.d"
  "CMakeFiles/spg_conv.dir/engine_sparse.cc.o"
  "CMakeFiles/spg_conv.dir/engine_sparse.cc.o.d"
  "CMakeFiles/spg_conv.dir/engine_sparse_weights.cc.o"
  "CMakeFiles/spg_conv.dir/engine_sparse_weights.cc.o.d"
  "CMakeFiles/spg_conv.dir/engine_stencil.cc.o"
  "CMakeFiles/spg_conv.dir/engine_stencil.cc.o.d"
  "CMakeFiles/spg_conv.dir/engine_winograd.cc.o"
  "CMakeFiles/spg_conv.dir/engine_winograd.cc.o.d"
  "CMakeFiles/spg_conv.dir/engines.cc.o"
  "CMakeFiles/spg_conv.dir/engines.cc.o.d"
  "CMakeFiles/spg_conv.dir/unfold.cc.o"
  "CMakeFiles/spg_conv.dir/unfold.cc.o.d"
  "libspg_conv.a"
  "libspg_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spg_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
