/**
 * @file
 * Tests for the observability layer: trace rings and Chrome-JSON
 * flushing, the metrics registry (including concurrent updates, which
 * the SPG_SANITIZE=thread build checks for races), the drift report's
 * percentile math, and the bundled JSON parser.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/drift.hh"
#include "obs/json_lite.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "threading/thread_pool.hh"

namespace spg {
namespace {

using obs::JsonValue;

/** Enable tracing for one test body, restoring the disabled state. */
class ScopedTracing
{
  public:
    ScopedTracing()
    {
        obs::Tracer::global().clear();
        obs::Tracer::global().enable("");
    }

    ~ScopedTracing()
    {
        obs::Tracer::global().disable();
        obs::Tracer::global().clear();
    }
};

TEST(TraceRing, KeepsNewestOnOverflow)
{
    obs::TraceRing ring(8);
    ASSERT_EQ(ring.capacity(), 8u);
    for (int i = 0; i < 20; ++i) {
        obs::TraceEvent ev;
        ev.ts_ns = static_cast<std::uint64_t>(i);
        ring.push(ev);
    }
    EXPECT_EQ(ring.pushed(), 20u);
    EXPECT_EQ(ring.dropped(), 12u);
    std::vector<obs::TraceEvent> events = ring.snapshot();
    ASSERT_EQ(events.size(), 8u);
    // The newest 8 events (ts 12..19) survive, oldest first.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].ts_ns, 12 + i);
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo)
{
    obs::TraceRing ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
}

TEST(TraceRing, DroppedEventsReachTheMetricOnFlush)
{
    ScopedTracing tracing;
    if (!obs::traceEnabled())
        GTEST_SKIP() << "tracing compiled out";

    obs::Metrics::global().counter("trace.dropped_events").reset();
    obs::Tracer &tracer = obs::Tracer::global();
    // setCapacity only affects rings created after the call, so drive
    // a fresh thread: its ring holds 4 slots and must drop 96 of the
    // 100 pushes.
    tracer.setCapacity(4);
    std::thread t([&] {
        for (int i = 0; i < 100; ++i)
            obs::traceComplete("test", "overflow", i, 1);
    });
    t.join();
    tracer.setCapacity(1 << 16);
    EXPECT_EQ(tracer.droppedEvents(), 96u);
    tracer.flushToString();
    EXPECT_EQ(
        obs::Metrics::global().counter("trace.dropped_events").value(),
        96);
}

TEST(Trace, SpansNestAcrossPoolWorkers)
{
    ScopedTracing tracing;
    if (!obs::traceEnabled())
        GTEST_SKIP() << "tracing compiled out";

    ThreadPool pool(4);
    {
        SPG_TRACE_SCOPE("test", "outer");
        // Repeat the region, yielding inside each item, so on a
        // single-core host the claiming thread cedes its timeslice and
        // every pool worker gets a chance to wake up and record at
        // least one participation span.
        for (int round = 0; round < 20; ++round) {
            pool.parallelFor2D(
                8, 8, [&](std::int64_t, std::int64_t, int) {
                    SPG_TRACE_SCOPE("test", "inner");
                    std::this_thread::yield();
                });
        }
    }
    std::string doc = obs::Tracer::global().flushToString();

    JsonValue root;
    std::string error;
    ASSERT_TRUE(obs::parseJson(doc, root, &error)) << error;
    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    // Every "inner" span must fall inside the "outer" span's window,
    // and the pool's participation spans must land on >= 2 lanes
    // (the caller plus at least one worker).
    double outer_begin = 0, outer_end = 0;
    bool found_outer = false;
    for (const JsonValue &ev : events->array) {
        const JsonValue *name = ev.find("name");
        if (name != nullptr && name->string == "outer") {
            outer_begin = ev.find("ts")->number;
            outer_end = outer_begin + ev.find("dur")->number;
            found_outer = true;
        }
    }
    ASSERT_TRUE(found_outer);

    int inner_count = 0;
    std::set<double> region_tids;
    for (const JsonValue &ev : events->array) {
        const JsonValue *name = ev.find("name");
        if (name == nullptr)
            continue;
        if (name->string == "inner") {
            ++inner_count;
            double ts = ev.find("ts")->number;
            EXPECT_GE(ts, outer_begin);
            EXPECT_LE(ts + ev.find("dur")->number, outer_end + 1e-3);
        }
        if (name->string == "region")
            region_tids.insert(ev.find("tid")->number);
    }
    EXPECT_EQ(inner_count, 20 * 64);
    EXPECT_GE(region_tids.size(), 2u);
}

TEST(Trace, FlushedJsonRoundTrips)
{
    ScopedTracing tracing;
    if (!obs::traceEnabled())
        GTEST_SKIP() << "tracing compiled out";

    obs::traceComplete("cat", "with args", 1000, 500, "a", -3, "b", 7);
    obs::traceInstant("cat", "mark \"quoted\"\n");
    obs::traceAsyncBegin("cat", "async", 42);
    obs::traceAsyncEnd("cat", "async", 42);
    obs::traceCounter("nnz", 123);
    std::string doc = obs::Tracer::global().flushToString();

    JsonValue root;
    std::string error;
    ASSERT_TRUE(obs::parseJson(doc, root, &error)) << error;

    // Round-trip: serialize the parsed tree and re-parse; the two
    // trees must compare equal (object key order is irrelevant).
    JsonValue again;
    ASSERT_TRUE(obs::parseJson(root.serialize(), again, &error))
        << error;
    EXPECT_TRUE(root == again);

    const JsonValue *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_args = false, saw_escaped = false, saw_counter = false;
    for (const JsonValue &ev : events->array) {
        const JsonValue *name = ev.find("name");
        if (name == nullptr)
            continue;
        if (name->string == "with args") {
            const JsonValue *args = ev.find("args");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->find("a")->number, -3);
            EXPECT_EQ(args->find("b")->number, 7);
            saw_args = true;
        }
        if (name->string == "mark \"quoted\"\n")
            saw_escaped = true;
        if (name->string == "nnz") {
            EXPECT_EQ(ev.find("args")->find("value")->number, 123);
            saw_counter = true;
        }
    }
    EXPECT_TRUE(saw_args);
    EXPECT_TRUE(saw_escaped);
    EXPECT_TRUE(saw_counter);
}

TEST(Trace, SidecarPathSwapsExtension)
{
    EXPECT_EQ(obs::sidecarPath("run.json", ".metrics.json"),
              "run.metrics.json");
    EXPECT_EQ(obs::sidecarPath("/tmp/a/trace.json", ".drift.json"),
              "/tmp/a/trace.drift.json");
    EXPECT_EQ(obs::sidecarPath("trace.out", ".metrics.json"),
              "trace.out.metrics.json");
}

TEST(Metrics, RegistryFindsOrCreatesStableRefs)
{
    obs::Metrics &m = obs::Metrics::global();
    obs::Counter &c1 = m.counter("test.stable");
    obs::Counter &c2 = m.counter("test.stable");
    EXPECT_EQ(&c1, &c2);
    c1.reset();
    c1.add(3);
    EXPECT_EQ(c2.value(), 3);
    m.reset();
    EXPECT_EQ(c1.value(), 0);
    c1.add(1);  // the reference survives reset()
    EXPECT_EQ(c2.value(), 1);
}

TEST(Metrics, ConcurrentUpdatesAreExact)
{
    obs::Metrics &m = obs::Metrics::global();
    m.counter("test.racy").reset();
    m.histogram("test.racy_hist").reset();
    m.gauge("test.racy_gauge").reset();

    ThreadPool pool(4);
    constexpr std::int64_t kItems = 10000;
    pool.parallelForDynamic(kItems, [&](std::int64_t i, int) {
        m.counter("test.racy").add();
        m.histogram("test.racy_hist")
            .observe(1e-6 * static_cast<double>((i % 8) + 1));
        m.gauge("test.racy_gauge").set(static_cast<double>(i));
    });

    EXPECT_EQ(m.counter("test.racy").value(), kItems);
    obs::Histogram &h = m.histogram("test.racy_hist");
    EXPECT_EQ(h.count(), kItems);
    EXPECT_NEAR(h.sum(), 1e-6 * 4.5 * kItems, 1e-6);
    EXPECT_DOUBLE_EQ(h.minValue(), 1e-6);
    EXPECT_DOUBLE_EQ(h.maxValue(), 8e-6);
    double g = m.gauge("test.racy_gauge").value();
    EXPECT_GE(g, 0);
    EXPECT_LT(g, static_cast<double>(kItems));
}

TEST(Metrics, HistogramBucketsArePowerOfTwoNanoseconds)
{
    obs::Histogram h;
    h.observe(1e-9);   // exactly 1 ns -> bucket 0
    h.observe(3e-9);   // (2, 4] ns -> bucket 2
    h.observe(1.0);    // 1 s = 2^30 ns is within bucket 30
    EXPECT_EQ(h.bucketCount(0), 1);
    EXPECT_EQ(h.bucketCount(2), 1);
    EXPECT_EQ(h.count(), 3);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketBound(0), 1e-9);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketBound(3), 8e-9);
}

TEST(Metrics, HistogramPercentileWalksBucketsWithinObservedRange)
{
    obs::Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0.0);  // empty

    // 90 fast samples around 1ms, 10 slow around 1s: the p50 must
    // stay in the fast mode, the p99 must land in the slow tail, and
    // both clamp into [min, max] despite power-of-two bucket edges.
    for (int i = 0; i < 90; ++i)
        h.observe(1e-3);
    for (int i = 0; i < 10; ++i)
        h.observe(1.0);
    double p50 = h.percentile(0.50);
    double p99 = h.percentile(0.99);
    EXPECT_GE(p50, h.minValue());
    EXPECT_LE(p50, 2e-3 + 1e-12);  // within a factor of two of 1ms
    EXPECT_GE(p99, 0.5);           // within a factor of two of 1s
    EXPECT_LE(p99, h.maxValue());
    EXPECT_LE(h.percentile(0.0), p50);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), h.maxValue());

    // Single sample: every percentile is that sample.
    obs::Histogram one;
    one.observe(0.125);
    EXPECT_DOUBLE_EQ(one.percentile(0.5), 0.125);
    EXPECT_DOUBLE_EQ(one.percentile(0.99), 0.125);
}

TEST(Metrics, JsonDumpParses)
{
    obs::Metrics &m = obs::Metrics::global();
    m.counter("test.json_counter").reset();
    m.counter("test.json_counter").add(5);
    m.gauge("test.json_gauge").set(0.25);
    m.histogram("test.json_hist").observe(0.5);

    JsonValue root;
    std::string error;
    ASSERT_TRUE(obs::parseJson(m.toJson(), root, &error)) << error;
    const JsonValue *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *c = counters->find("test.json_counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->find("value")->number, 5);
    EXPECT_EQ(c->find("unit")->string, "count");
    const JsonValue *g = root.find("gauges")->find("test.json_gauge");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->find("value")->number, 0.25);
    ASSERT_NE(g->find("unit"), nullptr);
    const JsonValue *hist =
        root.find("histograms")->find("test.json_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("count")->number, 1);
    ASSERT_NE(hist->find("unit"), nullptr);
}

TEST(Metrics, UnitInference)
{
    EXPECT_EQ(obs::Metrics::unitFor("trainer.epoch_joules"), "joules");
    EXPECT_EQ(obs::Metrics::unitFor("conv.fp.seconds"), "seconds");
    EXPECT_EQ(obs::Metrics::unitFor("perf.llc_miss_bytes"), "bytes");
    EXPECT_EQ(obs::Metrics::unitFor("perf.instructions"),
              "instructions");
    EXPECT_EQ(obs::Metrics::unitFor("sched.imbalance"), "ratio");
    EXPECT_EQ(obs::Metrics::unitFor("perf.available"), "ratio");
    EXPECT_EQ(obs::Metrics::unitFor("pool.steals"), "count");

    obs::Metrics &m = obs::Metrics::global();
    m.gauge("test.unit_override").set(1.0);
    EXPECT_EQ(m.unitOf("test.unit_override"), "count");
    m.setUnit("test.unit_override", "widgets");
    EXPECT_EQ(m.unitOf("test.unit_override"), "widgets");
}

TEST(Drift, PercentilesAreNearestRank)
{
    obs::DriftReport report;
    // Errors 10%, 20%, ..., 100% across two regions.
    for (int i = 1; i <= 10; ++i) {
        obs::DriftSample s;
        s.label = "conv0";
        s.phase = "FP";
        s.engine = "stencil";
        s.region = i <= 5 ? "R1" : "R4";
        s.measured_seconds = 1.0;
        s.modeled_seconds = 1.0 - 0.1 * i;
        report.add(s);
    }
    obs::DriftStats all = report.overall();
    EXPECT_EQ(all.samples, 10);
    EXPECT_NEAR(all.p50, 0.5, 1e-12);
    EXPECT_NEAR(all.p90, 0.9, 1e-12);
    EXPECT_NEAR(all.max, 1.0, 1e-12);
    EXPECT_NEAR(all.mean_signed, 0.55, 1e-12);

    std::vector<obs::DriftStats> regions = report.byRegion();
    ASSERT_EQ(regions.size(), 2u);
    EXPECT_EQ(regions[0].key, "R1");
    EXPECT_EQ(regions[0].samples, 5);
    EXPECT_NEAR(regions[0].p50, 0.3, 1e-12);
    EXPECT_EQ(regions[1].key, "R4");
    EXPECT_NEAR(regions[1].max, 1.0, 1e-12);
}

TEST(Drift, JsonReportParses)
{
    obs::DriftReport report;
    obs::DriftSample s;
    s.label = "conv1";
    s.phase = "BP-data";
    s.engine = "sparse-cached";
    s.region = "R5";
    s.measured_seconds = 2e-3;
    s.modeled_seconds = 1e-3;
    report.add(s);

    JsonValue root;
    std::string error;
    ASSERT_TRUE(obs::parseJson(report.toJson(), root, &error)) << error;
    EXPECT_EQ(root.find("overall")->find("samples")->number, 1);
    const JsonValue *by_region = root.find("by_region");
    ASSERT_NE(by_region, nullptr);
    ASSERT_NE(by_region->find("R5"), nullptr);
    const JsonValue &sample = root.find("samples")->array.at(0);
    EXPECT_EQ(sample.find("engine")->string, "sparse-cached");
    EXPECT_NEAR(sample.find("rel_error")->number, 0.5, 1e-9);
}

TEST(Drift, ZeroMeasuredTimeHasZeroError)
{
    obs::DriftSample s;
    s.measured_seconds = 0;
    s.modeled_seconds = 1;
    EXPECT_EQ(s.relError(), 0);
}

TEST(JsonLite, ParsesScalarsAndNesting)
{
    JsonValue v;
    std::string error;
    ASSERT_TRUE(obs::parseJson(
        "{\"a\": [1, -2.5e2, true, false, null, \"x\\u0041\"]}", v,
        &error))
        << error;
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 6u);
    EXPECT_EQ(a->array[0].number, 1);
    EXPECT_EQ(a->array[1].number, -250);
    EXPECT_EQ(a->array[2].kind, JsonValue::Kind::Bool);
    EXPECT_TRUE(a->array[2].boolean);
    EXPECT_EQ(a->array[4].kind, JsonValue::Kind::Null);
    EXPECT_EQ(a->array[5].string, "xA");
}

TEST(JsonLite, RejectsMalformedDocuments)
{
    JsonValue v;
    std::string error;
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "[1] trailing",
          "\"unterminated", "{\"dup\" : tru}", "[01x]",
          "\"bad \\q escape\""}) {
        EXPECT_FALSE(obs::parseJson(bad, v, &error))
            << "accepted: " << bad;
        EXPECT_FALSE(error.empty());
    }
}

TEST(JsonLite, EqualityIgnoresObjectKeyOrder)
{
    JsonValue a, b, c;
    std::string error;
    ASSERT_TRUE(obs::parseJson("{\"x\": 1, \"y\": [2]}", a, &error));
    ASSERT_TRUE(obs::parseJson("{\"y\": [2], \"x\": 1}", b, &error));
    ASSERT_TRUE(obs::parseJson("{\"y\": [2], \"x\": 2}", c, &error));
    EXPECT_TRUE(a == b);
    EXPECT_TRUE(a != c);
}

} // namespace
} // namespace spg
