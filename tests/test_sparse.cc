/**
 * @file
 * Tests for CSR / CT-CSR storage and sparse x dense products.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sparse/csr.hh"
#include "sparse/sparse_mm.hh"
#include "tensor/layout.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace spg {
namespace {

Tensor
randomSparse(std::int64_t rows, std::int64_t cols, double sparsity,
             std::uint64_t seed)
{
    Tensor t(Shape{rows, cols});
    Rng rng(seed);
    t.fillUniform(rng);
    t.sparsify(rng, sparsity);
    return t;
}

TEST(Csr, RoundTripEmpty)
{
    Tensor zero(Shape{4, 6});
    auto csr = CsrMatrix::fromDense(zero.data(), 4, 6);
    EXPECT_EQ(csr.nnz(), 0);
    EXPECT_DOUBLE_EQ(csr.sparsity(), 1.0);
    Tensor back(Shape{4, 6});
    back.fill(9.0f);
    csr.toDense(back.data());
    EXPECT_EQ(back.maxAbs(), 0.0f);
}

TEST(Csr, RoundTripDense)
{
    Tensor t = randomSparse(7, 11, 0.0, 1);
    auto csr = CsrMatrix::fromDense(t.data(), 7, 11);
    EXPECT_EQ(csr.nnz(), 7 * 11);
    Tensor back(Shape{7, 11});
    csr.toDense(back.data());
    EXPECT_EQ(maxAbsDiff(t, back), 0.0f);
}

class CsrSparsityLevels : public ::testing::TestWithParam<double>
{
};

TEST_P(CsrSparsityLevels, RoundTripPreservesValues)
{
    double s = GetParam();
    Tensor t = randomSparse(23, 37, s, 2);
    auto csr = CsrMatrix::fromDense(t.data(), 23, 37);
    Tensor back(Shape{23, 37});
    csr.toDense(back.data());
    EXPECT_EQ(maxAbsDiff(t, back), 0.0f) << "sparsity " << s;
    EXPECT_EQ(csr.nnz(), t.size() - t.zeroCount());
}

TEST_P(CsrSparsityLevels, CtCsrRoundTrip)
{
    double s = GetParam();
    Tensor t = randomSparse(19, 41, s, 3);
    for (std::int64_t tile : {1, 7, 16, 41, 100}) {
        auto ct = CtCsrMatrix::fromDense(t.data(), 19, 41, tile);
        EXPECT_EQ(ct.tileCount(), (41 + tile - 1) / tile);
        EXPECT_EQ(ct.nnz(), t.size() - t.zeroCount());
        Tensor back(Shape{19, 41});
        ct.toDense(back.data());
        EXPECT_EQ(maxAbsDiff(t, back), 0.0f)
            << "sparsity " << s << " tile " << tile;
    }
}

INSTANTIATE_TEST_SUITE_P(Levels, CsrSparsityLevels,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 0.9,
                                           0.99, 1.0),
                         [](const auto &info) {
                             return "s" + std::to_string(static_cast<int>(
                                              info.param * 100));
                         });

TEST(SparseMm, MatchesDenseProduct)
{
    std::int64_t m = 17, k = 29, n = 43;
    Tensor a = randomSparse(m, k, 0.8, 4);
    Tensor b = randomSparse(k, n, 0.0, 5);

    // Dense oracle.
    Tensor c_ref(Shape{m, n});
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            float sum = 0;
            for (std::int64_t p = 0; p < k; ++p)
                sum += a.at(i, p) * b.at(p, j);
            c_ref.at(i, j) = sum;
        }

    auto csr = CsrMatrix::fromDense(a.data(), m, k);
    Tensor c1(Shape{m, n});
    csrTimesDense(csr, b.data(), n, c1.data());
    EXPECT_TRUE(allClose(c1, c_ref, 1e-4f, 1e-5f));

    for (std::int64_t tile : {1, 8, 29}) {
        auto ct = CtCsrMatrix::fromDense(a.data(), m, k, tile);
        Tensor c2(Shape{m, n});
        ctcsrTimesDense(ct, b.data(), n, c2.data());
        EXPECT_TRUE(allClose(c2, c_ref, 1e-4f, 1e-5f)) << "tile " << tile;
    }
}

TEST(SparseMm, AccumulatesIntoC)
{
    std::int64_t m = 3, k = 4, n = 5;
    Tensor a = randomSparse(m, k, 0.5, 6);
    Tensor b = randomSparse(k, n, 0.0, 7);
    Tensor c(Shape{m, n});
    c.fill(2.0f);
    auto csr = CsrMatrix::fromDense(a.data(), m, k);
    csrTimesDense(csr, b.data(), n, c.data());
    csrTimesDense(csr, b.data(), n, c.data());
    // c = 2 + 2 * (a*b): check one element by hand.
    float ab00 = 0;
    for (std::int64_t p = 0; p < k; ++p)
        ab00 += a.at(0, p) * b.at(p, 0);
    EXPECT_NEAR(c.at(0, 0), 2.0f + 2.0f * ab00, 1e-4f);
}

TEST(SparseMm, Axpy)
{
    std::vector<float> x(37), y(37), expect(37);
    Rng rng(8);
    for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = rng.uniform();
        y[i] = rng.uniform();
        expect[i] = y[i] + 2.5f * x[i];
    }
    axpy(static_cast<std::int64_t>(x.size()), 2.5f, x.data(), y.data());
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], expect[i], 1e-5f) << i;
}

TEST(SparseMm, AxpyZeroLength)
{
    float y = 3.0f;
    axpy(0, 10.0f, nullptr, &y);
    EXPECT_FLOAT_EQ(y, 3.0f);
}

TEST(SparseMm, GoodputFlopsModel)
{
    EXPECT_EQ(sparseMmFlops(10, 8), 160);
    EXPECT_EQ(sparseMmFlops(0, 100), 0);
}

TEST(SparseMm, Axpy2MatchesTwoAxpyCallsExactly)
{
    // axpy2 interleaves two independent destination streams; each
    // stream's per-element operations are the same as a plain axpy, so
    // the results must be bit-for-bit equal.
    std::vector<float> x0(53), x1(53), a0(53), a1(53), b0(53), b1(53);
    Rng rng(10);
    for (std::size_t i = 0; i < x0.size(); ++i) {
        x0[i] = rng.uniform(-1.0f, 1.0f);
        x1[i] = rng.uniform(-1.0f, 1.0f);
        a0[i] = b0[i] = rng.uniform(-1.0f, 1.0f);
        a1[i] = b1[i] = rng.uniform(-1.0f, 1.0f);
    }
    std::int64_t n = static_cast<std::int64_t>(x0.size());
    axpy(n, 1.7f, x0.data(), a0.data());
    axpy(n, 1.7f, x1.data(), a1.data());
    axpy2(n, 1.7f, x0.data(), b0.data(), x1.data(), b1.data());
    for (std::size_t i = 0; i < x0.size(); ++i) {
        EXPECT_EQ(a0[i], b0[i]) << i;
        EXPECT_EQ(a1[i], b1[i]) << i;
    }
}

/** Encode a [C][H][W] tensor both ways — fused fromChw, and the
 *  transpose-then-compress path it replaces — and require the stored
 *  arrays to be BYTE-IDENTICAL per tile. */
void
expectFromChwMatchesStaged(const Tensor &chw, std::int64_t c,
                           std::int64_t h, std::int64_t w,
                           std::int64_t tile)
{
    auto fused = CtCsrMatrix::fromChw(chw.data(), c, h, w, tile);

    Tensor hwc(Shape{h * w, c});
    chwToHwc(chw.data(), c, h, w, hwc.data());
    auto staged = CtCsrMatrix::fromDense(hwc.data(), h * w, c, tile);

    ASSERT_EQ(fused.rows(), staged.rows()) << "tile " << tile;
    ASSERT_EQ(fused.cols(), staged.cols()) << "tile " << tile;
    ASSERT_EQ(fused.tileCount(), staged.tileCount()) << "tile " << tile;
    EXPECT_EQ(fused.nnz(), staged.nnz()) << "tile " << tile;
    for (std::int64_t t = 0; t < fused.tileCount(); ++t) {
        const CsrMatrix &ft = fused.tile(t);
        const CsrMatrix &st = staged.tile(t);
        EXPECT_EQ(ft.rowPtr(), st.rowPtr()) << "tile " << tile << " band "
                                            << t;
        EXPECT_EQ(ft.colIdx(), st.colIdx()) << "tile " << tile << " band "
                                            << t;
        EXPECT_EQ(ft.vals(), st.vals()) << "tile " << tile << " band "
                                        << t;
    }
}

TEST(CtCsr, FromChwMatchesStagedEncode)
{
    std::int64_t c = 20, h = 7, w = 9;
    Tensor chw(Shape{c, h, w});
    Rng rng(11);
    chw.fillUniform(rng);
    chw.sparsify(rng, 0.8);
    // Tile dividing C, not dividing C, wider than C, and degenerate 1.
    for (std::int64_t tile : {1, 4, 7, 20, 64})
        expectFromChwMatchesStaged(chw, c, h, w, tile);
}

TEST(CtCsr, FromChwAllZero)
{
    std::int64_t c = 6, h = 4, w = 5;
    Tensor chw(Shape{c, h, w});
    auto ct = CtCsrMatrix::fromChw(chw.data(), c, h, w, 4);
    EXPECT_EQ(ct.nnz(), 0);
    expectFromChwMatchesStaged(chw, c, h, w, 4);
}

TEST(CtCsr, FromChwSingleNonZero)
{
    std::int64_t c = 6, h = 4, w = 5;
    Tensor chw(Shape{c, h, w});
    chw.at(4, 2, 3) = -2.5f;  // feature 4, spatial position (2,3)
    for (std::int64_t tile : {1, 4, 6, 100}) {
        auto ct = CtCsrMatrix::fromChw(chw.data(), c, h, w, tile);
        EXPECT_EQ(ct.nnz(), 1) << "tile " << tile;
        expectFromChwMatchesStaged(chw, c, h, w, tile);
    }
}

TEST(CtCsr, EncodeFromChwReusesStorage)
{
    // Re-encoding into an existing matrix (the plan cache's recycling
    // path) must produce the same result as a fresh build, including
    // after a geometry change.
    Rng rng(12);
    Tensor big(Shape{16, 6, 8});
    big.fillUniform(rng);
    big.sparsify(rng, 0.5);
    CtCsrMatrix m = CtCsrMatrix::fromChw(big.data(), 16, 6, 8, 5);

    Tensor small(Shape{5, 3, 4});
    small.fillUniform(rng);
    small.sparsify(rng, 0.9);
    m.encodeFromChw(small.data(), 5, 3, 4, 2);
    auto fresh = CtCsrMatrix::fromChw(small.data(), 5, 3, 4, 2);
    ASSERT_EQ(m.tileCount(), fresh.tileCount());
    for (std::int64_t t = 0; t < m.tileCount(); ++t) {
        EXPECT_EQ(m.tile(t).rowPtr(), fresh.tile(t).rowPtr());
        EXPECT_EQ(m.tile(t).colIdx(), fresh.tile(t).colIdx());
        EXPECT_EQ(m.tile(t).vals(), fresh.tile(t).vals());
    }
}

TEST(Csr, RowPtrInvariants)
{
    Tensor t = randomSparse(13, 9, 0.6, 9);
    auto csr = CsrMatrix::fromDense(t.data(), 13, 9);
    const auto &rptr = csr.rowPtr();
    ASSERT_EQ(rptr.size(), 14u);
    EXPECT_EQ(rptr.front(), 0);
    EXPECT_EQ(rptr.back(), csr.nnz());
    for (std::size_t i = 1; i < rptr.size(); ++i)
        EXPECT_LE(rptr[i - 1], rptr[i]);
    // Column indices strictly increasing within a row.
    for (std::int64_t r = 0; r < 13; ++r)
        for (std::int64_t p = rptr[r] + 1; p < rptr[r + 1]; ++p)
            EXPECT_LT(csr.colIdx()[p - 1], csr.colIdx()[p]);
}

} // namespace
} // namespace spg
