/**
 * @file
 * Tests for the weight-sparsity FP engine (extension).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "conv/engines.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "util/timer.hh"

namespace spg {
namespace {

class SparseWeightsSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
  protected:
    static const ConvSpec &spec()
    {
        static const ConvSpec specs[] = {
            ConvSpec{10, 10, 2, 3, 3, 3, 1, 1},
            ConvSpec{12, 9, 3, 5, 4, 2, 1, 1},
            ConvSpec{15, 15, 2, 4, 3, 3, 2, 2},
            ConvSpec{28, 28, 1, 20, 5, 5, 1, 1},
        };
        return specs[std::get<0>(GetParam())];
    }
};

TEST_P(SparseWeightsSweep, MatchesReference)
{
    const ConvSpec &s = spec();
    double w_sparsity = std::get<1>(GetParam());
    ThreadPool pool(2);
    Rng rng(700 + std::get<0>(GetParam()));

    Tensor in(Shape{2, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    w.sparsify(rng, w_sparsity);

    Tensor ref(Shape{2, s.nf, s.outY(), s.outX()});
    Tensor got(Shape{2, s.nf, s.outY(), s.outX()});
    ReferenceEngine().forward(s, in, w, ref, pool);
    SparseWeightsFpEngine().forward(s, in, w, got, pool);
    EXPECT_TRUE(allClose(got, ref, 1e-3f, 1e-4f))
        << "maxdiff=" << maxAbsDiff(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseWeightsSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(0.0, 0.5, 0.9, 1.0)),
    [](const auto &info) {
        return "spec" + std::to_string(std::get<0>(info.param)) + "_s" +
               std::to_string(static_cast<int>(
                   std::get<1>(info.param) * 100));
    });

TEST(SparseWeights, AllZeroWeightsGiveZeroOutput)
{
    ConvSpec s{8, 8, 2, 3, 3, 3, 1, 1};
    ThreadPool pool(1);
    Rng rng(1);
    Tensor in(Shape{1, s.nc, s.ny, s.nx});
    in.fillUniform(rng);
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});  // zeros
    Tensor out(Shape{1, s.nf, s.outY(), s.outX()});
    out.fill(7.0f);
    SparseWeightsFpEngine().forward(s, in, w, out, pool);
    EXPECT_EQ(out.maxAbs(), 0.0f);
}

TEST(SparseWeights, RegistryIntegration)
{
    auto engine = makeEngine("sparse-weights");
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), "sparse-weights");
    EXPECT_TRUE(engine->supports(Phase::Forward));
    EXPECT_FALSE(engine->supports(Phase::BackwardData));
    // Extended set = paper set + this engine.
    EXPECT_EQ(makeExtendedEngines().size(), makeAllEngines().size() + 3);
}

TEST(SparseWeights, FasterWithPrunedWeights)
{
    // Eliding 95% of the taps must reduce runtime substantially
    // (coarse 1.5x bound to stay robust on loaded machines).
    ConvSpec s{64, 64, 8, 32, 5, 5, 1, 1};
    ThreadPool pool(1);
    Rng rng(2);
    Tensor in(Shape{2, s.nc, s.ny, s.nx});
    in.fillUniform(rng);
    Tensor dense_w(Shape{s.nf, s.nc, s.fy, s.fx});
    dense_w.fillUniform(rng);
    Tensor pruned_w = dense_w.clone();
    Rng prng(3);
    pruned_w.sparsify(prng, 0.95);
    Tensor out(Shape{2, s.nf, s.outY(), s.outX()});

    SparseWeightsFpEngine engine;
    auto time_of = [&](const Tensor &w) {
        engine.forward(s, in, w, out, pool);  // warm-up
        Stopwatch sw;
        for (int i = 0; i < 3; ++i)
            engine.forward(s, in, w, out, pool);
        return sw.seconds();
    };
    double t_dense = time_of(dense_w);
    double t_pruned = time_of(pruned_w);
    EXPECT_LT(t_pruned, t_dense / 1.5);
}

} // namespace
} // namespace spg
