/**
 * @file
 * Tests for the weight-sparsity FP engines (extension): the row-AXPY
 * "sparse-weights" engine and the register-tiled
 * "sparse-weights-direct" engine, plus the once-per-weight-version
 * CSR plan cache both share.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "conv/engines.hh"
#include "conv/packed_weights.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "util/timer.hh"

namespace spg {
namespace {

class SparseWeightsSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
  protected:
    static const ConvSpec &spec()
    {
        static const ConvSpec specs[] = {
            ConvSpec{10, 10, 2, 3, 3, 3, 1, 1},
            ConvSpec{12, 9, 3, 5, 4, 2, 1, 1},
            ConvSpec{15, 15, 2, 4, 3, 3, 2, 2},
            ConvSpec{28, 28, 1, 20, 5, 5, 1, 1},
        };
        return specs[std::get<0>(GetParam())];
    }
};

TEST_P(SparseWeightsSweep, MatchesReference)
{
    const ConvSpec &s = spec();
    double w_sparsity = std::get<1>(GetParam());
    ThreadPool pool(2);
    Rng rng(700 + std::get<0>(GetParam()));

    Tensor in(Shape{2, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    w.sparsify(rng, w_sparsity);

    Tensor ref(Shape{2, s.nf, s.outY(), s.outX()});
    Tensor got(Shape{2, s.nf, s.outY(), s.outX()});
    ReferenceEngine().forward(s, in, w, ref, pool);
    SparseWeightsFpEngine().forward(s, in, w, got, pool);
    EXPECT_TRUE(allClose(got, ref, 1e-3f, 1e-4f))
        << "maxdiff=" << maxAbsDiff(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseWeightsSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(0.0, 0.5, 0.9, 1.0)),
    [](const auto &info) {
        return "spec" + std::to_string(std::get<0>(info.param)) + "_s" +
               std::to_string(static_cast<int>(
                   std::get<1>(info.param) * 100));
    });

TEST_P(SparseWeightsSweep, DirectIsBitForBitWithReference)
{
    // The register-tiled engine accumulates every output pixel in
    // double over the surviving taps in ascending (c,ky,kx) order and
    // rounds once — exactly the reference loop with the zero terms
    // removed, so equality is exact at EVERY sparsity.
    const ConvSpec &s = spec();
    double w_sparsity = std::get<1>(GetParam());
    ThreadPool pool(2);
    Rng rng(900 + std::get<0>(GetParam()));

    Tensor in(Shape{2, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -0.5f, 0.5f);
    w.sparsify(rng, w_sparsity);

    Tensor ref(Shape{2, s.nf, s.outY(), s.outX()});
    Tensor got(Shape{2, s.nf, s.outY(), s.outX()});
    got.fill(42.0f);
    ReferenceEngine().forward(s, in, w, ref, pool);
    SparseDirectFpEngine().forward(s, in, w, got, pool);
    EXPECT_EQ(maxAbsDiff(got, ref), 0.0f);
}

TEST(SparseDirect, FusedReluMaskIsBitForBit)
{
    // Fused epilogue path: the engine applies ReLU + mask per output
    // row right after writing it; results must match the reference
    // output clamped the same way, with an identical byte mask.
    ConvSpec s{13, 11, 3, 6, 3, 3, 1, 1};
    ThreadPool pool(2);
    Rng rng(17);
    Tensor in(Shape{2, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -0.5f, 0.5f);
    w.sparsify(rng, 0.7);

    Tensor ref(Shape{2, s.nf, s.outY(), s.outX()});
    ReferenceEngine().forward(s, in, w, ref, pool);

    Tensor got(Shape{2, s.nf, s.outY(), s.outX()});
    std::vector<std::uint8_t> mask(
        static_cast<std::size_t>(got.size()), 2);
    Epilogue epilogue{Epilogue::Kind::ReluMask, mask.data()};
    SparseDirectFpEngine().forward(s, in, w, got, pool, epilogue);

    const float *r = ref.data();
    const float *g = got.data();
    for (std::int64_t i = 0; i < ref.size(); ++i) {
        float clamped = r[i] > 0.0f ? r[i] : 0.0f;
        ASSERT_EQ(g[i], clamped) << "at " << i;
        ASSERT_EQ(mask[static_cast<std::size_t>(i)],
                  r[i] > 0.0f ? 1 : 0)
            << "at " << i;
    }
}

TEST(SparseDirect, StridedGeometryIsBitForBit)
{
    ConvSpec s{21, 17, 2, 5, 3, 4, 2, 3};
    ThreadPool pool(2);
    Rng rng(23);
    Tensor in(Shape{1, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -0.5f, 0.5f);
    w.sparsify(rng, 0.6);

    Tensor ref(Shape{1, s.nf, s.outY(), s.outX()});
    Tensor got(Shape{1, s.nf, s.outY(), s.outX()});
    ReferenceEngine().forward(s, in, w, ref, pool);
    SparseDirectFpEngine().forward(s, in, w, got, pool);
    EXPECT_EQ(maxAbsDiff(got, ref), 0.0f);
}

/** @return CSR-weight encode count delta across @p fn. */
template <typename Fn>
std::int64_t
encodesDuring(Fn &&fn)
{
    auto before = PackedWeightCache::global().sparseStats();
    fn();
    auto after = PackedWeightCache::global().sparseStats();
    return after.encodes - before.encodes;
}

class WeightPlanCacheTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WeightPlanCacheTest, EncodesOncePerWeightVersion)
{
    // Regression for the per-call re-encode bug: repeated forwards on
    // the same weight version must reuse the cached CSR plan; only a
    // weight update (invalidate or changed bytes) re-encodes.
    ConvSpec s{16, 16, 2, 4, 3, 3, 1, 1};
    ThreadPool pool(1);
    Rng rng(31);
    Tensor in(Shape{1, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    w.sparsify(rng, 0.5);
    Tensor out(Shape{1, s.nf, s.outY(), s.outX()});

    auto engine = makeEngine(GetParam());
    ASSERT_NE(engine, nullptr);
    PackedWeightCache::global().invalidate(w.data());

    EXPECT_EQ(encodesDuring([&] {
                  for (int i = 0; i < 4; ++i)
                      engine->forward(s, in, w, out, pool);
              }),
              1);

    // A weight update invalidates the plan: exactly one re-encode.
    w.data()[0] += 1.0f;
    PackedWeightCache::global().invalidate(w.data());
    EXPECT_EQ(encodesDuring([&] {
                  engine->forward(s, in, w, out, pool);
                  engine->forward(s, in, w, out, pool);
              }),
              1);

    // Changed bytes are caught by the fingerprint even without an
    // explicit invalidate.
    w.data()[1] += 1.0f;
    EXPECT_EQ(encodesDuring([&] {
                  engine->forward(s, in, w, out, pool);
              }),
              1);
    PackedWeightCache::global().invalidate(w.data());
}

INSTANTIATE_TEST_SUITE_P(Engines, WeightPlanCacheTest,
                         ::testing::Values("sparse-weights",
                                           "sparse-weights-direct"),
                         [](const auto &info) {
                             return info.param ==
                                            std::string("sparse-weights")
                                        ? "axpy"
                                        : "direct";
                         });

TEST(SparseWeights, AllZeroWeightsGiveZeroOutput)
{
    ConvSpec s{8, 8, 2, 3, 3, 3, 1, 1};
    ThreadPool pool(1);
    Rng rng(1);
    Tensor in(Shape{1, s.nc, s.ny, s.nx});
    in.fillUniform(rng);
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});  // zeros
    Tensor out(Shape{1, s.nf, s.outY(), s.outX()});
    out.fill(7.0f);
    SparseWeightsFpEngine().forward(s, in, w, out, pool);
    EXPECT_EQ(out.maxAbs(), 0.0f);
}

TEST(SparseWeights, RegistryIntegration)
{
    for (const char *name : {"sparse-weights", "sparse-weights-direct"}) {
        auto engine = makeEngine(name);
        ASSERT_NE(engine, nullptr) << name;
        EXPECT_EQ(engine->name(), name);
        EXPECT_TRUE(engine->supports(Phase::Forward));
        EXPECT_FALSE(engine->supports(Phase::BackwardData));
        EXPECT_FALSE(engine->supports(Phase::BackwardWeights));
    }
    // Extended set = paper set + sparse-weights, sparse-weights-direct,
    // fft, winograd.
    EXPECT_EQ(makeExtendedEngines().size(), makeAllEngines().size() + 4);
}

TEST(SparseWeights, FasterWithPrunedWeights)
{
    // Eliding 95% of the taps must reduce runtime substantially
    // (coarse 1.5x bound to stay robust on loaded machines).
    ConvSpec s{64, 64, 8, 32, 5, 5, 1, 1};
    ThreadPool pool(1);
    Rng rng(2);
    Tensor in(Shape{2, s.nc, s.ny, s.nx});
    in.fillUniform(rng);
    Tensor dense_w(Shape{s.nf, s.nc, s.fy, s.fx});
    dense_w.fillUniform(rng);
    Tensor pruned_w = dense_w.clone();
    Rng prng(3);
    pruned_w.sparsify(prng, 0.95);
    Tensor out(Shape{2, s.nf, s.outY(), s.outX()});

    SparseWeightsFpEngine engine;
    auto time_of = [&](const Tensor &w) {
        engine.forward(s, in, w, out, pool);  // warm-up
        Stopwatch sw;
        for (int i = 0; i < 3; ++i)
            engine.forward(s, in, w, out, pool);
        return sw.seconds();
    };
    double t_dense = time_of(dense_w);
    double t_pruned = time_of(pruned_w);
    EXPECT_LT(t_pruned, t_dense / 1.5);
}

} // namespace
} // namespace spg
