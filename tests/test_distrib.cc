/**
 * @file
 * Tests for synchronous data-parallel training and the cluster
 * throughput model.
 */

#include <gtest/gtest.h>

#include "core/net_config.hh"
#include "distrib/cluster_model.hh"
#include "distrib/data_parallel.hh"
#include "nn/trainer.hh"

namespace spg {
namespace {

NetConfig
tinyConfig()
{
    return parseNetConfig(R"(
        name: "dp"
        input { channels: 1 height: 12 width: 12 classes: 4 }
        layer { type: conv features: 4 kernel: 3 }
        layer { type: relu }
        layer { type: fc outputs: 4 }
        layer { type: softmax }
    )");
}

TEST(DataParallel, EquivalentToSingleWorkerFullBatch)
{
    // The headline invariant: K workers on shards of B/K images with
    // parameter averaging must produce (numerically) the same model as
    // one worker on the full B-image batch.
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 64;
    spec.seed = 5;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(1);

    // Single-worker run: Trainer with batch == global batch.
    Network single(tinyConfig(), 77);
    TrainerOptions topts;
    topts.epochs = 2;
    topts.batch = 16;
    topts.learning_rate = 0.05f;
    topts.mode = TrainerOptions::Mode::Fixed;
    topts.log_epochs = false;
    topts.shuffle_seed = 9;
    Trainer trainer(single, ds, topts);
    trainer.run(pool);

    // 4-worker data-parallel run with identical shuffling.
    DataParallelOptions dopts;
    dopts.workers = 4;
    dopts.global_batch = 16;
    dopts.learning_rate = 0.05f;
    dopts.epochs = 2;
    dopts.shuffle_seed = 9;
    DataParallelTrainer dp(tinyConfig(), 77, ds, dopts);
    dp.run(pool);

    // Compare model outputs on a probe batch.
    Rng rng(6);
    Tensor probe(Shape{8, 1, 12, 12});
    probe.fillUniform(rng);
    Tensor p_single = single.forward(probe, pool).clone();
    const Tensor &p_dp = dp.replica(0).forward(probe, pool);
    EXPECT_LT(maxAbsDiff(p_single, p_dp), 5e-4f);
}

TEST(DataParallel, ReplicasStayIdentical)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 32;
    spec.seed = 7;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(1);

    DataParallelOptions opts;
    opts.workers = 3;
    opts.global_batch = 12;
    opts.epochs = 1;
    DataParallelTrainer dp(tinyConfig(), 3, ds, opts);
    dp.run(pool);

    Rng rng(8);
    Tensor probe(Shape{4, 1, 12, 12});
    probe.fillUniform(rng);
    Tensor p0 = dp.replica(0).forward(probe, pool).clone();
    for (int w = 1; w < 3; ++w) {
        const Tensor &pw = dp.replica(w).forward(probe, pool);
        EXPECT_EQ(maxAbsDiff(p0, pw), 0.0f) << "replica " << w;
    }
}

TEST(DataParallel, LearnsAndReports)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 96;
    spec.seed = 9;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(2);

    DataParallelOptions opts;
    opts.workers = 2;
    opts.global_batch = 16;
    opts.epochs = 3;
    DataParallelTrainer dp(tinyConfig(), 4, ds, opts);
    auto history = dp.run(pool);
    ASSERT_EQ(history.size(), 3u);
    EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
    EXPECT_GT(history.back().accuracy, 0.5);
    for (const auto &e : history)
        EXPECT_GT(e.compute_seconds, 0.0);
}

TEST(DataParallelDeath, RejectsBadSharding)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.count = 16;
    Dataset ds = makeSynthetic(spec);
    DataParallelOptions opts;
    opts.workers = 3;
    opts.global_batch = 16;  // not divisible by 3
    EXPECT_DEATH(DataParallelTrainer(tinyConfig(), 1, ds, opts),
                 "not divisible");
}

TEST(ClusterModel, SingleWorkerHasNoSyncCost)
{
    ClusterModel cluster;
    EXPECT_DOUBLE_EQ(cluster.syncSeconds(1), 0.0);
    EXPECT_NEAR(cluster.imagesPerSecond(1, 256),
                cluster.worker_images_per_s, 1e-6);
    EXPECT_NEAR(cluster.efficiency(1, 256), 1.0, 1e-9);
}

TEST(ClusterModel, EfficiencyDropsWithWorkersAndRecoversWithBatch)
{
    ClusterModel cluster;
    // More workers, fixed batch: efficiency monotonically drops.
    double prev = 1.0;
    for (int k : {2, 4, 8, 16, 32}) {
        double eff = cluster.efficiency(k, 256);
        EXPECT_LT(eff, prev) << k;
        prev = eff;
    }
    // Bigger global batch amortizes the sync: efficiency recovers.
    EXPECT_GT(cluster.efficiency(16, 4096),
              cluster.efficiency(16, 256));
}

TEST(ClusterModel, FasterWorkersShiftTheCommKnee)
{
    // spg-CNN's point in §6: with faster workers, the same cluster
    // hits the communication wall at smaller scales — efficiency at a
    // fixed configuration is lower, but absolute throughput is higher.
    ClusterModel slow;
    slow.worker_images_per_s = 250;
    ClusterModel fast = slow;
    fast.worker_images_per_s = 2000;
    EXPECT_GT(fast.imagesPerSecond(16, 512),
              slow.imagesPerSecond(16, 512));
    EXPECT_LT(fast.efficiency(16, 512), slow.efficiency(16, 512));
}

} // namespace
} // namespace spg
