/**
 * @file
 * Tests for synchronous data-parallel training and the cluster
 * throughput model.
 */

#include <gtest/gtest.h>

#include "core/net_config.hh"
#include "distrib/cluster_model.hh"
#include "distrib/data_parallel.hh"
#include "nn/trainer.hh"

namespace spg {
namespace {

NetConfig
tinyConfig()
{
    return parseNetConfig(R"(
        name: "dp"
        input { channels: 1 height: 12 width: 12 classes: 4 }
        layer { type: conv features: 4 kernel: 3 }
        layer { type: relu }
        layer { type: fc outputs: 4 }
        layer { type: softmax }
    )");
}

TEST(DataParallel, EquivalentToSingleWorkerFullBatch)
{
    // The headline invariant: K workers on shards of B/K images with
    // parameter averaging must produce (numerically) the same model as
    // one worker on the full B-image batch.
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 64;
    spec.seed = 5;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(1);

    // Single-worker run: Trainer with batch == global batch.
    Network single(tinyConfig(), 77);
    TrainerOptions topts;
    topts.epochs = 2;
    topts.batch = 16;
    topts.learning_rate = 0.05f;
    topts.mode = TrainerOptions::Mode::Fixed;
    topts.log_epochs = false;
    topts.shuffle_seed = 9;
    Trainer trainer(single, ds, topts);
    trainer.run(pool);

    // 4-worker data-parallel run with identical shuffling.
    DataParallelOptions dopts;
    dopts.workers = 4;
    dopts.global_batch = 16;
    dopts.learning_rate = 0.05f;
    dopts.epochs = 2;
    dopts.shuffle_seed = 9;
    DataParallelTrainer dp(tinyConfig(), 77, ds, dopts);
    dp.run(pool);

    // Compare model outputs on a probe batch.
    Rng rng(6);
    Tensor probe(Shape{8, 1, 12, 12});
    probe.fillUniform(rng);
    Tensor p_single = single.forward(probe, pool).clone();
    const Tensor &p_dp = dp.replica(0).forward(probe, pool);
    EXPECT_LT(maxAbsDiff(p_single, p_dp), 5e-4f);
}

TEST(DataParallel, ReplicasStayIdentical)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 32;
    spec.seed = 7;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(1);

    DataParallelOptions opts;
    opts.workers = 3;
    opts.global_batch = 12;
    opts.epochs = 1;
    DataParallelTrainer dp(tinyConfig(), 3, ds, opts);
    dp.run(pool);

    Rng rng(8);
    Tensor probe(Shape{4, 1, 12, 12});
    probe.fillUniform(rng);
    Tensor p0 = dp.replica(0).forward(probe, pool).clone();
    for (int w = 1; w < 3; ++w) {
        const Tensor &pw = dp.replica(w).forward(probe, pool);
        EXPECT_EQ(maxAbsDiff(p0, pw), 0.0f) << "replica " << w;
    }
}

TEST(DataParallel, LearnsAndReports)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 96;
    spec.seed = 9;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(2);

    DataParallelOptions opts;
    opts.workers = 2;
    opts.global_batch = 16;
    opts.epochs = 3;
    DataParallelTrainer dp(tinyConfig(), 4, ds, opts);
    auto history = dp.run(pool);
    ASSERT_EQ(history.size(), 3u);
    EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
    EXPECT_GT(history.back().accuracy, 0.5);
    for (const auto &e : history)
        EXPECT_GT(e.compute_seconds, 0.0);
}

TEST(DataParallel, LosslessCompressedExchangeMatchesDenseExactly)
{
    // threshold:0 ships every nonzero through CT-CSR and must
    // reproduce the dense exchange bit for bit: same data, same
    // shuffle, same seeds -> identical models after training.
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 64;
    spec.seed = 11;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(1);

    DataParallelOptions dense;
    dense.workers = 4;
    dense.global_batch = 16;
    dense.epochs = 2;
    DataParallelOptions lossless = dense;
    lossless.exchange.compress.mode =
        GradCompressOptions::Mode::Threshold;
    lossless.exchange.compress.threshold = 0;

    DataParallelTrainer a(tinyConfig(), 21, ds, dense);
    DataParallelTrainer b(tinyConfig(), 21, ds, lossless);
    a.run(pool);
    auto history = b.run(pool);

    Rng rng(12);
    Tensor probe(Shape{8, 1, 12, 12});
    probe.fillUniform(rng);
    Tensor pa = a.replica(0).forward(probe, pool).clone();
    const Tensor &pb = b.replica(0).forward(probe, pool);
    EXPECT_EQ(maxAbsDiff(pa, pb), 0.0f);

    // Lossless CT-CSR on mostly-dense gradients costs MORE wire than
    // raw fp32 (6B/nnz vs 4B/param) — the accounting must say so
    // honestly rather than flatter the sparse path.
    EXPECT_GT(history.back().wire_bytes, 0.0);
    EXPECT_GT(history.back().dense_bytes, 0.0);
}

TEST(DataParallel, LosslessCompressedMatchesSingleWorkerFullBatch)
{
    // Transitively with the test above this also pins the compressed
    // exchange to the mathematical full-batch equivalence.
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 48;
    spec.seed = 13;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(1);

    Network single(tinyConfig(), 31);
    TrainerOptions topts;
    topts.epochs = 1;
    topts.batch = 12;
    topts.learning_rate = 0.05f;
    topts.mode = TrainerOptions::Mode::Fixed;
    topts.log_epochs = false;
    topts.shuffle_seed = 4;
    Trainer trainer(single, ds, topts);
    trainer.run(pool);

    DataParallelOptions opts;
    opts.workers = 3;
    opts.global_batch = 12;
    opts.epochs = 1;
    opts.shuffle_seed = 4;
    opts.exchange.compress.mode =
        GradCompressOptions::Mode::Threshold;
    opts.exchange.compress.threshold = 0;
    DataParallelTrainer dp(tinyConfig(), 31, ds, opts);
    dp.run(pool);

    Rng rng(14);
    Tensor probe(Shape{6, 1, 12, 12});
    probe.fillUniform(rng);
    Tensor p_single = single.forward(probe, pool).clone();
    const Tensor &p_dp = dp.replica(0).forward(probe, pool);
    EXPECT_LT(maxAbsDiff(p_single, p_dp), 5e-4f);
}

TEST(DataParallel, EpochReportsExchangeEconomics)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 32;
    spec.seed = 17;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(1);

    DataParallelOptions opts;
    opts.workers = 2;
    opts.global_batch = 16;
    opts.epochs = 1;
    opts.exchange.compress.mode = GradCompressOptions::Mode::TopK;
    opts.exchange.compress.topk_frac = 0.1;
    DataParallelTrainer dp(tinyConfig(), 8, ds, opts);
    auto history = dp.run(pool);
    ASSERT_EQ(history.size(), 1u);
    const DataParallelEpoch &e = history.back();

    // Top-10% keeps ~6B per kept value vs 4B/param dense: the wire
    // must genuinely undercut dense here, and every modeled quantity
    // must be populated and sane.
    EXPECT_GT(e.wire_bytes, 0.0);
    EXPECT_LT(e.wire_bytes, e.dense_bytes);
    EXPECT_GT(e.compression_ratio, 1.0);
    EXPECT_GE(e.overlap_frac, 0.0);
    EXPECT_LE(e.overlap_frac, 1.0);
    EXPECT_GT(e.modeled_step_seconds, 0.0);
    EXPECT_GT(e.modeled_comm_seconds, 0.0);
    EXPECT_GE(e.modeled_step_seconds, e.modeled_exposed_seconds);

    // The measured profile behind the scaling model must carry one
    // bucket per parameter tensor (conv weights, fc weights, fc bias)
    // with ready times inside the measured compute window.
    const StepProfile &prof = dp.profile();
    ASSERT_EQ(prof.buckets.size(), 3u);
    EXPECT_GT(prof.compute_end_s, 0.0);
    for (const StepProfile::Bucket &b : prof.buckets) {
        EXPECT_GT(b.wire_bytes, 0.0);
        EXPECT_GT(b.dense_bytes, 0.0);
        EXPECT_GT(b.ready_s, 0.0);
        EXPECT_LE(b.ready_s, prof.compute_end_s);
    }
}

TEST(DataParallel, DeploysPerLayerEnginePlans)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.classes = 4;
    spec.count = 16;
    spec.seed = 19;
    Dataset ds = makeSynthetic(spec);
    ThreadPool pool(1);

    DataParallelOptions opts;
    opts.workers = 2;
    opts.global_batch = 8;
    opts.epochs = 1;
    EngineAssignment plan;
    plan.fp = "stencil";
    plan.bp_data = "gemm-in-parallel";
    plan.bp_weights = "gemm-in-parallel-packed";
    opts.conv_engines = {plan};  // broadcast to every conv layer
    DataParallelTrainer dp(tinyConfig(), 23, ds, opts);
    dp.run(pool);

    ASSERT_EQ(dp.deployedEngines().size(), 1u);  // one conv layer
    EXPECT_EQ(dp.deployedEngines()[0].fp, "stencil");
    EXPECT_EQ(dp.deployedEngines()[0].bp_weights,
              "gemm-in-parallel-packed");
}

TEST(DataParallel, ModelScalingPricesThePolicies)
{
    // A synthetic measured profile: 10 ms of backprop, two buckets.
    StepProfile prof;
    prof.compute_end_s = 10e-3;
    prof.measured_workers = 2;
    prof.measured_global_batch = 32;
    prof.buckets = {{"fc.g0", 2e-3, 0.5e6, 2e6},
                    {"conv.g0", 9e-3, 0.25e6, 1e6}};
    ClusterLink link;
    link.bandwidth_gbs = 0.125;
    link.latency_s = 50e-6;

    ScalingPoint k1 = modelScaling(prof, 1, AllreduceAlgo::Ring, link,
                                   true, false);
    EXPECT_DOUBLE_EQ(k1.speedup, 1.0);
    EXPECT_DOUBLE_EQ(k1.comm_s, 0.0);

    ScalingPoint dense_blk = modelScaling(
        prof, 8, AllreduceAlgo::Ring, link, false, false);
    ScalingPoint dense_ovl = modelScaling(
        prof, 8, AllreduceAlgo::Ring, link, true, false);
    ScalingPoint sparse_ovl = modelScaling(
        prof, 8, AllreduceAlgo::Ring, link, true, true);

    // Same dense payload: overlap can only help the step.
    EXPECT_DOUBLE_EQ(dense_ovl.comm_s, dense_blk.comm_s);
    EXPECT_LE(dense_ovl.step_s, dense_blk.step_s);
    EXPECT_GT(dense_ovl.overlap_frac, dense_blk.overlap_frac);
    // Fewer wire bytes: compression can only help too.
    EXPECT_LT(sparse_ovl.comm_s, dense_ovl.comm_s);
    EXPECT_LE(sparse_ovl.step_s, dense_ovl.step_s);
    EXPECT_GT(sparse_ovl.speedup, dense_blk.speedup);

    // Bigger modeled batch amortizes a fixed exchange: efficiency
    // must recover (the knee moves left), Adam-style.
    ScalingPoint small = modelScaling(prof, 8, AllreduceAlgo::Ring,
                                      link, false, false, 1.0);
    ScalingPoint big = modelScaling(prof, 8, AllreduceAlgo::Ring,
                                    link, false, false, 16.0);
    EXPECT_GT(big.efficiency(), small.efficiency());
}

TEST(DataParallelDeath, RejectsBadSharding)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.count = 16;
    Dataset ds = makeSynthetic(spec);
    DataParallelOptions opts;
    opts.workers = 3;
    opts.global_batch = 16;  // not divisible by 3
    EXPECT_DEATH(DataParallelTrainer(tinyConfig(), 1, ds, opts),
                 "not divisible");
}

TEST(DataParallelDeath, RejectsBatchLargerThanDataset)
{
    SyntheticSpec spec;
    spec.channels = 1;
    spec.height = 12;
    spec.width = 12;
    spec.count = 16;
    Dataset ds = makeSynthetic(spec);
    DataParallelOptions opts;
    opts.workers = 2;
    opts.global_batch = 32;  // > dataset.count(): zero steps per epoch
    EXPECT_DEATH(DataParallelTrainer(tinyConfig(), 1, ds, opts),
                 "global batch");
}

TEST(ClusterModel, SingleWorkerHasNoSyncCost)
{
    ClusterModel cluster;
    EXPECT_DOUBLE_EQ(cluster.syncSeconds(1), 0.0);
    EXPECT_NEAR(cluster.imagesPerSecond(1, 256),
                cluster.worker_images_per_s, 1e-6);
    EXPECT_NEAR(cluster.efficiency(1, 256), 1.0, 1e-9);
}

TEST(ClusterModel, EfficiencyDropsWithWorkersAndRecoversWithBatch)
{
    ClusterModel cluster;
    // More workers, fixed batch: efficiency monotonically drops.
    double prev = 1.0;
    for (int k : {2, 4, 8, 16, 32}) {
        double eff = cluster.efficiency(k, 256);
        EXPECT_LT(eff, prev) << k;
        prev = eff;
    }
    // Bigger global batch amortizes the sync: efficiency recovers.
    EXPECT_GT(cluster.efficiency(16, 4096),
              cluster.efficiency(16, 256));
}

TEST(ClusterModel, FasterWorkersShiftTheCommKnee)
{
    // spg-CNN's point in §6: with faster workers, the same cluster
    // hits the communication wall at smaller scales — efficiency at a
    // fixed configuration is lower, but absolute throughput is higher.
    ClusterModel slow;
    slow.worker_images_per_s = 250;
    ClusterModel fast = slow;
    fast.worker_images_per_s = 2000;
    EXPECT_GT(fast.imagesPerSecond(16, 512),
              slow.imagesPerSecond(16, 512));
    EXPECT_LT(fast.efficiency(16, 512), slow.efficiency(16, 512));
}

} // namespace
} // namespace spg
