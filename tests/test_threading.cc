/**
 * @file
 * Tests for the thread pool and its scheduling primitives.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "threading/thread_pool.hh"

namespace spg {
namespace {

TEST(ThreadPool, ReportsThreadCount)
{
    ThreadPool one(1);
    EXPECT_EQ(one.threads(), 1);
    ThreadPool four(4);
    EXPECT_EQ(four.threads(), 4);
    ThreadPool def(0);
    EXPECT_GE(def.threads(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    for (int threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        for (std::int64_t n : {0, 1, 3, 7, 100, 1000}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(n, [&](std::int64_t b, std::int64_t e, int) {
                for (std::int64_t i = b; i < e; ++i)
                    hits[i].fetch_add(1);
            });
            for (std::int64_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " n=" << n << " i=" << i;
        }
    }
}

TEST(ThreadPool, DynamicCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::int64_t n = 333;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelForDynamic(n, [&](std::int64_t i, int) {
        hits[i].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, WorkerIndicesAreDistinctAndBounded)
{
    ThreadPool pool(4);
    std::mutex m;
    std::set<int> indices;
    pool.parallelFor(64, [&](std::int64_t, std::int64_t, int worker) {
        std::lock_guard<std::mutex> lock(m);
        indices.insert(worker);
    });
    EXPECT_LE(indices.size(), 4u);
    for (int w : indices) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, 4);
    }
}

TEST(ThreadPool, ReusableAcrossManyCalls)
{
    ThreadPool pool(3);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(10, [&](std::int64_t b, std::int64_t e, int) {
            total.fetch_add(e - b);
        });
    }
    EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, SumReductionCorrect)
{
    ThreadPool pool(4);
    std::int64_t n = 10000;
    std::vector<long long> partial(pool.threads(), 0);
    pool.parallelFor(n, [&](std::int64_t b, std::int64_t e, int w) {
        for (std::int64_t i = b; i < e; ++i)
            partial[w] += i;
    });
    long long sum = std::accumulate(partial.begin(), partial.end(), 0LL);
    EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](std::int64_t, std::int64_t, int) {
        called = true;
    });
    pool.parallelForDynamic(0, [&](std::int64_t, int) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, GlobalSingletonIsStable)
{
    ThreadPool &a = ThreadPool::global();
    ThreadPool &b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.threads(), 1);
}

TEST(ThreadPool, DynamicGrainsCoverExactlyOnce)
{
    ThreadPool pool(4);
    std::int64_t n = 50;
    for (std::int64_t grain : {1, 3, 7, 100}) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallelForDynamic(
            n, [&](std::int64_t i, int) { hits[i].fetch_add(1); },
            grain);
        for (std::int64_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "grain=" << grain
                                         << " i=" << i;
    }
}

TEST(ThreadPool, ParallelFor2DEdgeShapes)
{
    ThreadPool pool(4);
    const std::pair<std::int64_t, std::int64_t> shapes[] = {
        {0, 5}, {5, 0}, {1, 1}, {1, 7}, {7, 1}, {3, 4}};
    for (auto [n0, n1] : shapes) {
        std::vector<std::atomic<int>> hits(n0 * n1);
        std::atomic<bool> in_bounds{true};
        pool.parallelFor2D(n0, n1,
                           [&](std::int64_t i0, std::int64_t i1, int) {
                               if (i0 < 0 || i0 >= n0 || i1 < 0 ||
                                   i1 >= n1)
                                   in_bounds = false;
                               else
                                   hits[i0 * n1 + i1].fetch_add(1);
                           });
        EXPECT_TRUE(in_bounds.load()) << n0 << "x" << n1;
        for (std::int64_t i = 0; i < n0 * n1; ++i)
            ASSERT_EQ(hits[i].load(), 1) << n0 << "x" << n1 << " " << i;
    }
}

TEST(ThreadPool, ParallelFor2DGrainsCoverExactlyOnce)
{
    ThreadPool pool(3);
    std::int64_t n0 = 6, n1 = 7;
    for (std::int64_t grain : {1, 2, 5, 100}) {
        std::vector<std::atomic<int>> hits(n0 * n1);
        pool.parallelFor2D(n0, n1,
                           [&](std::int64_t i0, std::int64_t i1, int) {
                               hits[i0 * n1 + i1].fetch_add(1);
                           },
                           grain);
        for (std::int64_t i = 0; i < n0 * n1; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "grain=" << grain;
    }
}

TEST(ThreadPool, NestedRegionsRunInlineOnCallingWorker)
{
    ThreadPool pool(4);
    std::int64_t n = 16, m = 8;
    std::vector<std::atomic<int>> hits(n * m);
    std::atomic<bool> same_worker{true};
    pool.parallelForDynamic(n, [&](std::int64_t i, int outer) {
        pool.parallelFor(m, [&](std::int64_t b, std::int64_t e,
                                int inner) {
            if (inner != outer)
                same_worker = false;
            for (std::int64_t j = b; j < e; ++j)
                hits[i * m + j].fetch_add(1);
        });
        pool.parallelFor2D(1, 1, [&](std::int64_t, std::int64_t,
                                     int inner) {
            if (inner != outer)
                same_worker = false;
        });
    });
    EXPECT_TRUE(same_worker.load());
    for (std::int64_t i = 0; i < n * m; ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SkewedCostsStayCorrectAndCounted)
{
    ThreadPool pool(4);
    PoolStats before = pool.stats();
    std::int64_t n = 64;
    std::atomic<long long> sum{0};
    pool.parallelForDynamic(n, [&](std::int64_t i, int) {
        if (i == 0) {
            // One adversarially expensive item; stealing must keep the
            // rest flowing and nothing may run twice.
            volatile long long waste = 0;
            for (int k = 0; k < 2000000; ++k)
                waste = waste + k;
        }
        sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    PoolStats d = pool.stats().delta(before);
    EXPECT_EQ(d.regions, 1u);
    std::int64_t items = 0, last_items = 0;
    for (const auto &w : d.workers) {
        items += w.items;
        last_items += w.last_items;
    }
    EXPECT_EQ(items, n);
    EXPECT_EQ(last_items, n);
    EXPECT_GE(d.imbalance(), 1.0);
}

TEST(ThreadPool, SmallRegionsDoNotFanOut)
{
    ThreadPool pool(8);
    pool.parallelForDynamic(1, [&](std::int64_t i, int worker) {
        EXPECT_EQ(i, 0);
        EXPECT_EQ(worker, 0);
    });
    std::vector<std::int64_t> map = pool.stats().lastChunkMap();
    ASSERT_EQ(map.size(), 8u);
    EXPECT_EQ(map[0], 1);
    for (std::size_t w = 1; w < map.size(); ++w)
        EXPECT_EQ(map[w], 0) << "worker " << w
                             << " ran a single-item region";
}

TEST(ThreadPool, TelemetryAccumulatesAcrossRegions)
{
    ThreadPool pool(2);
    PoolStats before = pool.stats();
    std::atomic<long long> sink{0};
    for (int round = 0; round < 3; ++round) {
        pool.parallelFor(1000, [&](std::int64_t b, std::int64_t e, int) {
            long long s = 0;
            for (std::int64_t i = b; i < e; ++i)
                s += i;
            sink.fetch_add(s);
        });
    }
    PoolStats d = pool.stats().delta(before);
    EXPECT_EQ(d.regions, 3u);
    std::int64_t items = 0;
    std::uint64_t busy = 0, chunks = 0;
    for (const auto &w : d.workers) {
        items += w.items;
        busy += w.busy_ns;
        chunks += w.chunks;
    }
    EXPECT_EQ(items, 3000);
    EXPECT_GT(busy, 0u);
    EXPECT_GE(chunks, 3u);
    EXPECT_GE(d.imbalance(), 1.0);
    std::vector<std::int64_t> map = d.chunkMap();
    ASSERT_EQ(map.size(), 2u);
    EXPECT_EQ(map[0] + map[1], 3000);
}

} // namespace
} // namespace spg
