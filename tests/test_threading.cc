/**
 * @file
 * Tests for the thread pool and its scheduling primitives.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "threading/thread_pool.hh"

namespace spg {
namespace {

TEST(ThreadPool, ReportsThreadCount)
{
    ThreadPool one(1);
    EXPECT_EQ(one.threads(), 1);
    ThreadPool four(4);
    EXPECT_EQ(four.threads(), 4);
    ThreadPool def(0);
    EXPECT_GE(def.threads(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce)
{
    for (int threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        for (std::int64_t n : {0, 1, 3, 7, 100, 1000}) {
            std::vector<std::atomic<int>> hits(n);
            pool.parallelFor(n, [&](std::int64_t b, std::int64_t e, int) {
                for (std::int64_t i = b; i < e; ++i)
                    hits[i].fetch_add(1);
            });
            for (std::int64_t i = 0; i < n; ++i)
                ASSERT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " n=" << n << " i=" << i;
        }
    }
}

TEST(ThreadPool, DynamicCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::int64_t n = 333;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelForDynamic(n, [&](std::int64_t i, int) {
        hits[i].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, WorkerIndicesAreDistinctAndBounded)
{
    ThreadPool pool(4);
    std::mutex m;
    std::set<int> indices;
    pool.parallelFor(64, [&](std::int64_t, std::int64_t, int worker) {
        std::lock_guard<std::mutex> lock(m);
        indices.insert(worker);
    });
    EXPECT_LE(indices.size(), 4u);
    for (int w : indices) {
        EXPECT_GE(w, 0);
        EXPECT_LT(w, 4);
    }
}

TEST(ThreadPool, ReusableAcrossManyCalls)
{
    ThreadPool pool(3);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallelFor(10, [&](std::int64_t b, std::int64_t e, int) {
            total.fetch_add(e - b);
        });
    }
    EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, SumReductionCorrect)
{
    ThreadPool pool(4);
    std::int64_t n = 10000;
    std::vector<long long> partial(pool.threads(), 0);
    pool.parallelFor(n, [&](std::int64_t b, std::int64_t e, int w) {
        for (std::int64_t i = b; i < e; ++i)
            partial[w] += i;
    });
    long long sum = std::accumulate(partial.begin(), partial.end(), 0LL);
    EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](std::int64_t, std::int64_t, int) {
        called = true;
    });
    pool.parallelForDynamic(0, [&](std::int64_t, int) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, GlobalSingletonIsStable)
{
    ThreadPool &a = ThreadPool::global();
    ThreadPool &b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
    EXPECT_GE(a.threads(), 1);
}

} // namespace
} // namespace spg
