/**
 * @file
 * Tests for the neural-network stack: layer semantics, numerical
 * gradient checks through the whole backward pass, and end-to-end
 * training behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/net_config.hh"
#include "data/suites.hh"
#include "data/synthetic.hh"
#include "nn/network.hh"
#include "nn/trainer.hh"

namespace spg {
namespace {

TEST(ReluLayer, ForwardClampsAndBackwardMasks)
{
    Geometry g{2, 2, 2};
    ReluLayer relu(g);
    ThreadPool pool(2);
    Tensor in(Shape{1, 2, 2, 2});
    float vals[] = {-1, 2, -3, 4, 0, -5, 6, -7};
    for (int i = 0; i < 8; ++i)
        in[i] = vals[i];
    Tensor out(Shape{1, 2, 2, 2});
    relu.forward(in, out, pool);
    float expect[] = {0, 2, 0, 4, 0, 0, 6, 0};
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], expect[i]) << i;

    Tensor eo(Shape{1, 2, 2, 2});
    eo.fill(1.0f);
    Tensor ei(Shape{1, 2, 2, 2});
    relu.backward(in, out, eo, ei, pool);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ei[i], vals[i] > 0 ? 1.0f : 0.0f) << i;
}

TEST(PoolLayer, MaxPoolForwardBackward)
{
    Geometry g{1, 4, 4};
    PoolLayer pool_layer(g, 2, 2, PoolLayer::Mode::Max);
    ThreadPool pool(1);
    Tensor in(Shape{1, 1, 4, 4});
    for (int i = 0; i < 16; ++i)
        in[i] = static_cast<float>(i);
    Tensor out(Shape{1, 1, 2, 2});
    pool_layer.forward(in, out, pool);
    EXPECT_EQ(out[0], 5);   // max of {0,1,4,5}
    EXPECT_EQ(out[1], 7);
    EXPECT_EQ(out[2], 13);
    EXPECT_EQ(out[3], 15);

    Tensor eo(Shape{1, 1, 2, 2});
    eo[0] = 10;
    eo[1] = 20;
    eo[2] = 30;
    eo[3] = 40;
    Tensor ei(Shape{1, 1, 4, 4});
    pool_layer.backward(in, out, eo, ei, pool);
    EXPECT_EQ(ei[5], 10);
    EXPECT_EQ(ei[7], 20);
    EXPECT_EQ(ei[13], 30);
    EXPECT_EQ(ei[15], 40);
    float total = 0;
    for (int i = 0; i < 16; ++i)
        total += ei[i];
    EXPECT_EQ(total, 100);  // gradient mass preserved
}

TEST(PoolLayer, AvgPoolDistributesGradient)
{
    Geometry g{1, 4, 4};
    PoolLayer pool_layer(g, 2, 2, PoolLayer::Mode::Avg);
    ThreadPool pool(1);
    Tensor in(Shape{1, 1, 4, 4});
    in.fill(8.0f);
    Tensor out(Shape{1, 1, 2, 2});
    pool_layer.forward(in, out, pool);
    for (int i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(out[i], 8.0f);
    Tensor eo(Shape{1, 1, 2, 2});
    eo.fill(4.0f);
    Tensor ei(Shape{1, 1, 4, 4});
    pool_layer.backward(in, out, eo, ei, pool);
    for (int i = 0; i < 16; ++i)
        EXPECT_FLOAT_EQ(ei[i], 1.0f);
}

TEST(SoftmaxLayer, ProbabilitiesAndLoss)
{
    Geometry g{3, 1, 1};
    SoftmaxLayer sm(g);
    ThreadPool pool(1);
    Tensor in(Shape{2, 3, 1, 1});
    // Image 0: strongly class 2; image 1: uniform.
    in[0] = 0;
    in[1] = 0;
    in[2] = 10;
    in[3] = 1;
    in[4] = 1;
    in[5] = 1;
    sm.setLabels({2, 1});
    Tensor out(Shape{2, 3, 1, 1});
    sm.forward(in, out, pool);
    EXPECT_NEAR(out[2], 1.0f, 1e-3);
    EXPECT_NEAR(out[3], 1.0f / 3, 1e-5);
    EXPECT_NEAR(out[0] + out[1] + out[2], 1.0f, 1e-5);
    // loss = (-log(~1) - log(1/3)) / 2.
    EXPECT_NEAR(sm.loss(), std::log(3.0) / 2, 1e-3);
    // Image 1 is a three-way tie; argmax resolves to class 0, so the
    // label-1 image counts as wrong.
    EXPECT_NEAR(sm.accuracy(), 0.5, 1e-9);

    Tensor ei(Shape{2, 3, 1, 1});
    Tensor dummy(Shape{2, 3, 1, 1});
    sm.backward(in, out, dummy, ei, pool);
    // Gradient sums to zero per image.
    EXPECT_NEAR(ei[0] + ei[1] + ei[2], 0.0f, 1e-6);
    EXPECT_NEAR(ei[3] + ei[4] + ei[5], 0.0f, 1e-6);
    EXPECT_LT(ei[2], 0.0f);  // true-class gradient is negative
}

/**
 * Numerical gradient check through a conv + relu + fc + softmax
 * network: analytic weight gradients must match central differences.
 */
TEST(Network, NumericalGradientCheck)
{
    NetConfig config = parseNetConfig(R"(
        name: "gradcheck"
        input { channels: 2 height: 7 width: 7 classes: 3 }
        layer { type: conv features: 3 kernel: 3 }
        layer { type: relu }
        layer { type: fc outputs: 3 }
        layer { type: softmax }
    )");
    Network net(config, 11);
    ThreadPool pool(1);

    Rng rng(5);
    Tensor images(Shape{2, 2, 7, 7});
    images.fillUniform(rng);
    std::vector<int> labels = {1, 2};

    ConvLayer *conv = net.convLayers()[0];

    // Analytic gradients from one backward pass (no update).
    // trainStep would update weights; replicate forward+backward via a
    // zero learning rate step.
    net.trainStep(images, labels, 0.0f, pool);
    Tensor analytic = conv->weightGradients().clone();

    // Central differences on a sample of weights.
    SoftmaxLayer *head = nullptr;  // loss via evalAccuracy path
    (void)head;
    auto loss_at = [&]() {
        // forward-only loss
        Network &n = net;
        // trainStep with lr 0 recomputes loss without changing params.
        StepStats s = n.trainStep(images, labels, 0.0f, pool);
        return s.loss;
    };

    const float h = 1e-2f;
    int checked = 0;
    for (std::int64_t i = 0; i < conv->weights().size();
         i += conv->weights().size() / 7 + 1) {
        float saved = conv->weights()[i];
        conv->weights()[i] = saved + h;
        double up = loss_at();
        conv->weights()[i] = saved - h;
        double down = loss_at();
        conv->weights()[i] = saved;
        double numeric = (up - down) / (2 * h);
        EXPECT_NEAR(analytic[i], numeric,
                    2e-2 * std::max(1.0, std::abs(numeric)))
            << "weight " << i;
        ++checked;
    }
    EXPECT_GE(checked, 5);
}

TEST(Network, BuildsFromConfigAndReportsShapes)
{
    Network net(parseNetConfig(cifar10NetConfigText()), 3);
    EXPECT_EQ(net.inputGeometry().c, 3);
    EXPECT_EQ(net.inputGeometry().h, 36);
    EXPECT_EQ(net.classes(), 10);
    auto convs = net.convLayers();
    ASSERT_EQ(convs.size(), 2u);
    // Table 2 geometry: conv1 must see 64x8x8.
    EXPECT_EQ(convs[1]->spec().nc, 64);
    EXPECT_EQ(convs[1]->spec().nx, 8);
    EXPECT_GT(net.paramCount(), 0);
}

TEST(Network, ForwardProducesProbabilities)
{
    Network net(parseNetConfig(mnistNetConfigText()), 4);
    ThreadPool pool(2);
    Rng rng(6);
    Tensor images(Shape{3, 1, 28, 28});
    images.fillUniform(rng);
    const Tensor &probs = net.forward(images, pool);
    for (std::int64_t b = 0; b < 3; ++b) {
        float sum = 0;
        for (std::int64_t j = 0; j < 10; ++j) {
            float p = probs[b * 10 + j];
            EXPECT_GE(p, 0.0f);
            EXPECT_LE(p, 1.0f);
            sum += p;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-4);
    }
}

TEST(Network, EngineChoiceDoesNotChangeResults)
{
    // The same network computes the same outputs whichever engines
    // its conv layers deploy.
    NetConfig config = parseNetConfig(mnistNetConfigText());
    ThreadPool pool(2);
    Rng rng(8);
    Tensor images(Shape{4, 1, 28, 28});
    images.fillUniform(rng);
    std::vector<int> labels = {0, 1, 2, 3};

    std::vector<EngineAssignment> assignments = {
        {"parallel-gemm", "parallel-gemm", "parallel-gemm"},
        {"gemm-in-parallel", "gemm-in-parallel", "gemm-in-parallel"},
        {"stencil", "sparse", "sparse"},
    };
    std::vector<double> losses;
    for (const auto &assignment : assignments) {
        Network net(config, 77);  // same seed -> same weights
        for (ConvLayer *conv : net.convLayers())
            conv->setEngines(assignment);
        StepStats s = net.trainStep(images, labels, 0.0f, pool);
        losses.push_back(s.loss);
    }
    EXPECT_NEAR(losses[0], losses[1], 1e-4);
    EXPECT_NEAR(losses[0], losses[2], 1e-4);
}

TEST(Trainer, LossDecreasesOnLearnableTask)
{
    setLogLevel(LogLevel::Quiet);
    Dataset ds = makeMnistLike(128, 42);
    Network net(parseNetConfig(mnistNetConfigText()), 9);
    TrainerOptions opts;
    opts.epochs = 3;
    opts.batch = 16;
    opts.learning_rate = 0.05f;
    opts.mode = TrainerOptions::Mode::Fixed;
    opts.log_epochs = false;
    ThreadPool pool(2);
    Trainer trainer(net, ds, opts);
    auto history = trainer.run(pool);
    ASSERT_EQ(history.size(), 3u);
    EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
    EXPECT_GT(history.back().accuracy, 0.8);
    EXPECT_GT(trainer.overallThroughput(), 0.0);
}

TEST(Trainer, RecordsErrorSparsityAndEngines)
{
    setLogLevel(LogLevel::Quiet);
    Dataset ds = makeMnistLike(64, 43);
    Network net(parseNetConfig(mnistNetConfigText()), 10);
    TrainerOptions opts;
    opts.epochs = 2;
    opts.batch = 16;
    opts.mode = TrainerOptions::Mode::Autotune;
    opts.tuner.reps = 1;
    opts.tuner.batch = 2;
    opts.log_epochs = false;
    ThreadPool pool(2);
    Trainer trainer(net, ds, opts);
    auto history = trainer.run(pool);
    for (const auto &epoch : history) {
        ASSERT_EQ(epoch.conv_error_sparsity.size(), 1u);
        EXPECT_GT(epoch.conv_error_sparsity[0], 0.3);
        EXPECT_LE(epoch.conv_error_sparsity[0], 1.0);
        ASSERT_EQ(epoch.conv_engines.size(), 1u);
        EXPECT_FALSE(epoch.conv_engines[0].fp.empty());
    }
}

TEST(Trainer, RejectsMismatchedDataset)
{
    Dataset ds = makeCifarLike(16, 44);
    Network net(parseNetConfig(mnistNetConfigText()), 11);
    EXPECT_DEATH(
        { Trainer trainer(net, ds, TrainerOptions{}); }, "does not match");
}

TEST(FcLayer, LinearityAndBias)
{
    Geometry g{4, 1, 1};
    Rng rng(12);
    FcLayer fc(g, 2, rng);
    ThreadPool pool(1);
    Tensor zero(Shape{1, 4, 1, 1});
    Tensor out(Shape{1, 2, 1, 1});
    fc.forward(zero, out, pool);
    // Bias starts at zero, weights arbitrary: zero input -> zero out.
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 0.0f);

    // f(2x) = 2 f(x) with zero bias.
    Tensor x(Shape{1, 4, 1, 1});
    x.fillUniform(rng);
    Tensor x2 = x.clone();
    for (std::int64_t i = 0; i < x2.size(); ++i)
        x2[i] *= 2.0f;
    Tensor y1(Shape{1, 2, 1, 1});
    Tensor y2(Shape{1, 2, 1, 1});
    fc.forward(x, y1, pool);
    fc.forward(x2, y2, pool);
    EXPECT_NEAR(y2[0], 2 * y1[0], 1e-5);
    EXPECT_NEAR(y2[1], 2 * y1[1], 1e-5);
}

} // namespace
} // namespace spg
