/**
 * @file
 * Parameterized sweep of the pooling layers against a naive oracle,
 * plus the conv-layer profiler.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "nn/conv_layer.hh"
#include "nn/simple_layers.hh"
#include "util/random.hh"

namespace spg {
namespace {

/** Naive pooling oracle for one image. */
void
poolRef(PoolLayer::Mode mode, const Tensor &in, Geometry g,
        std::int64_t kernel, std::int64_t stride, Tensor &out)
{
    std::int64_t oh = (g.h - kernel) / stride + 1;
    std::int64_t ow = (g.w - kernel) / stride + 1;
    for (std::int64_t c = 0; c < g.c; ++c) {
        for (std::int64_t y = 0; y < oh; ++y) {
            for (std::int64_t x = 0; x < ow; ++x) {
                float best = -1e30f;
                float sum = 0;
                for (std::int64_t ky = 0; ky < kernel; ++ky)
                    for (std::int64_t kx = 0; kx < kernel; ++kx) {
                        float v = in.at(0, c, y * stride + ky,
                                        x * stride + kx);
                        best = std::max(best, v);
                        sum += v;
                    }
                out.at(0, c, y, x) =
                    mode == PoolLayer::Mode::Max
                        ? best
                        : sum / static_cast<float>(kernel * kernel);
            }
        }
    }
}

class PoolSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int>>  // h, w, kernel, stride,
                                                // mode
{
};

TEST_P(PoolSweep, ForwardMatchesOracle)
{
    auto [h, w, kernel, stride, mode_i] = GetParam();
    auto mode = mode_i ? PoolLayer::Mode::Avg : PoolLayer::Mode::Max;
    Geometry g{3, h, w};
    PoolLayer layer(g, kernel, stride, mode);
    ThreadPool pool(2);
    Rng rng(h * 31 + w * 7 + kernel);

    Tensor in(Shape{1, g.c, g.h, g.w});
    in.fillUniform(rng);
    Geometry og = layer.outputGeometry();
    Tensor out(Shape{1, og.c, og.h, og.w});
    Tensor want(Shape{1, og.c, og.h, og.w});
    layer.forward(in, out, pool);
    poolRef(mode, in, g, kernel, stride, want);
    EXPECT_EQ(maxAbsDiff(out, want), 0.0f);
}

TEST_P(PoolSweep, BackwardPreservesGradientMass)
{
    auto [h, w, kernel, stride, mode_i] = GetParam();
    auto mode = mode_i ? PoolLayer::Mode::Avg : PoolLayer::Mode::Max;
    Geometry g{2, h, w};
    PoolLayer layer(g, kernel, stride, mode);
    ThreadPool pool(2);
    Rng rng(h * 13 + kernel);

    Tensor in(Shape{1, g.c, g.h, g.w});
    in.fillUniform(rng);
    Geometry og = layer.outputGeometry();
    Tensor out(Shape{1, og.c, og.h, og.w});
    layer.forward(in, out, pool);

    Tensor eo(Shape{1, og.c, og.h, og.w});
    eo.fillUniform(rng, 0.0f, 1.0f);
    Tensor ei(Shape{1, g.c, g.h, g.w});
    layer.backward(in, out, eo, ei, pool);

    // Non-overlapping windows conserve gradient mass exactly.
    if (stride >= kernel) {
        double in_mass = 0, out_mass = 0;
        for (std::int64_t i = 0; i < ei.size(); ++i)
            in_mass += ei[i];
        for (std::int64_t i = 0; i < eo.size(); ++i)
            out_mass += eo[i];
        EXPECT_NEAR(in_mass, out_mass, 1e-3);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PoolSweep,
    ::testing::Combine(::testing::Values(8, 9, 12),
                       ::testing::Values(8, 11),
                       ::testing::Values(2, 3),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1)),
    [](const auto &info) {
        return "h" + std::to_string(std::get<0>(info.param)) + "w" +
               std::to_string(std::get<1>(info.param)) + "k" +
               std::to_string(std::get<2>(info.param)) + "s" +
               std::to_string(std::get<3>(info.param)) +
               (std::get<4>(info.param) ? "_avg" : "_max");
    });

TEST(ConvLayerProfile, AccumulatesPerPhaseTime)
{
    ConvSpec spec{10, 10, 2, 3, 3, 3, 1, 1};
    Rng rng(1);
    ConvLayer layer("p", spec, rng);
    ThreadPool pool(1);
    Tensor in(Shape{2, spec.nc, spec.ny, spec.nx});
    Tensor out(Shape{2, spec.nf, spec.outY(), spec.outX()});
    Tensor eo = out.clone();
    Tensor ei(Shape{2, spec.nc, spec.ny, spec.nx});
    in.fillUniform(rng);

    EXPECT_EQ(layer.profile().calls, 0);
    layer.forward(in, out, pool);
    layer.forward(in, out, pool);
    layer.backward(in, out, eo, ei, pool);
    EXPECT_EQ(layer.profile().calls, 2);
    EXPECT_GT(layer.profile().fp_seconds, 0.0);
    EXPECT_GT(layer.profile().bp_data_seconds, 0.0);
    EXPECT_GT(layer.profile().bp_weights_seconds, 0.0);
    layer.resetProfile();
    EXPECT_EQ(layer.profile().calls, 0);
    EXPECT_EQ(layer.profile().fp_seconds, 0.0);
}

} // namespace
} // namespace spg
