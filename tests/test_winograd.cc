/**
 * @file
 * Tests for the Winograd F(2x2, 3x3) engine (extension).
 */

#include <gtest/gtest.h>

#include "conv/engines.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace spg {
namespace {

class WinogradSweep : public ::testing::TestWithParam<ConvSpec>
{
};

TEST_P(WinogradSweep, MatchesReference)
{
    const ConvSpec &s = GetParam();
    ThreadPool pool(2);
    Rng rng(95);
    Tensor in(Shape{2, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor ref(Shape{2, s.nf, s.outY(), s.outX()});
    Tensor got(Shape{2, s.nf, s.outY(), s.outX()});
    ReferenceEngine().forward(s, in, w, ref, pool);
    WinogradEngine().forward(s, in, w, got, pool);
    EXPECT_TRUE(allClose(got, ref, 1e-3f, 1e-3f))
        << "maxdiff=" << maxAbsDiff(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WinogradSweep,
    ::testing::Values(
        // Even outputs (pure tiled path).
        ConvSpec{6, 6, 1, 1, 3, 3, 1, 1},
        ConvSpec{10, 10, 3, 4, 3, 3, 1, 1},
        // Odd output rows and/or columns (edge-strip path).
        ConvSpec{5, 5, 2, 2, 3, 3, 1, 1},
        ConvSpec{9, 8, 2, 3, 3, 3, 1, 1},
        ConvSpec{8, 9, 2, 3, 3, 3, 1, 1},
        // Realistic layer (Table 2 ImageNet-22K L3 shape, shrunk).
        ConvSpec{13, 13, 8, 6, 3, 3, 1, 1}),
    [](const auto &info) {
        const ConvSpec &s = info.param;
        return "n" + std::to_string(s.nx) + "x" + std::to_string(s.ny) +
               "c" + std::to_string(s.nc) + "f" + std::to_string(s.nf);
    });

TEST(Winograd, GeometryGate)
{
    WinogradEngine engine;
    EXPECT_TRUE(engine.supportsGeometry(ConvSpec::square(8, 2, 2, 3)));
    EXPECT_FALSE(engine.supportsGeometry(ConvSpec::square(8, 2, 2, 5)));
    EXPECT_FALSE(
        engine.supportsGeometry(ConvSpec::square(8, 2, 2, 3, 2)));
    EXPECT_TRUE(engine.supports(Phase::Forward));
    EXPECT_FALSE(engine.supports(Phase::BackwardData));
}

TEST(WinogradDeath, RejectsWrongGeometry)
{
    ConvSpec s = ConvSpec::square(8, 2, 2, 5);
    ThreadPool pool(1);
    Tensor in(Shape{1, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    Tensor out(Shape{1, s.nf, s.outY(), s.outX()});
    EXPECT_DEATH(WinogradEngine().forward(s, in, w, out, pool),
                 "3x3 stride-1");
}

TEST(Winograd, RegistryIntegration)
{
    auto engine = makeEngine("winograd");
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), "winograd");
    // Generic engines accept any geometry by default.
    EXPECT_TRUE(
        makeEngine("gemm-in-parallel")
            ->supportsGeometry(ConvSpec::square(8, 2, 2, 5)));
}

} // namespace
} // namespace spg
