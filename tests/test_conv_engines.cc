/**
 * @file
 * Cross-engine correctness: every optimized convolution engine must
 * reproduce the reference loop-nest on a parameterized sweep of
 * geometries (kernel sizes, strides, channel/feature counts, batch
 * sizes) and sparsity levels.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "conv/engines.hh"
#include "conv/packed_weights.hh"
#include "sparse/sparse_plan.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace spg {
namespace {

struct ConvCase
{
    ConvSpec spec;
    std::int64_t batch;
    const char *label;
};

/** Geometry sweep: small/odd shapes, strides, realistic layers. */
const ConvCase kCases[] = {
    {ConvSpec{5, 5, 1, 1, 2, 2, 1, 1}, 1, "tiny"},
    {ConvSpec{8, 8, 2, 3, 3, 3, 1, 1}, 2, "small"},
    {ConvSpec{9, 7, 3, 4, 3, 2, 1, 1}, 2, "rect"},
    {ConvSpec{12, 12, 4, 8, 5, 5, 1, 1}, 3, "k5"},
    {ConvSpec{13, 13, 3, 5, 1, 1, 1, 1}, 2, "k1"},
    {ConvSpec{16, 16, 2, 4, 3, 3, 2, 2}, 2, "stride2"},
    {ConvSpec{17, 17, 2, 4, 5, 5, 3, 3}, 2, "stride3"},
    {ConvSpec{19, 15, 3, 6, 4, 3, 2, 1}, 1, "mixedstride"},
    {ConvSpec{28, 28, 1, 20, 5, 5, 1, 1}, 2, "mnist_l0"},
    {ConvSpec{36, 36, 3, 16, 5, 5, 1, 1}, 2, "cifar_l0"},
    {ConvSpec{24, 24, 8, 12, 7, 7, 1, 1}, 1, "k7"},
    {ConvSpec{31, 31, 5, 9, 11, 11, 1, 1}, 1, "k11"},
    {ConvSpec{23, 23, 4, 6, 5, 5, 4, 4}, 2, "stride4"},
};

class EngineSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string, double>>
{
  protected:
    const ConvCase &convCase() const
    {
        return kCases[std::get<0>(GetParam())];
    }
    std::string engineName() const { return std::get<1>(GetParam()); }
    double sparsity() const { return std::get<2>(GetParam()); }
};

TEST_P(EngineSweep, MatchesReference)
{
    const ConvCase &cc = convCase();
    const ConvSpec &spec = cc.spec;
    auto engine = makeEngine(engineName());
    ASSERT_NE(engine, nullptr);

    Rng rng(1234 + std::get<0>(GetParam()));
    ThreadPool pool(3);
    ReferenceEngine ref;

    Tensor in(Shape{cc.batch, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    in.fillUniform(rng);
    w.fillUniform(rng, -0.5f, 0.5f);

    Tensor eo(Shape{cc.batch, spec.nf, spec.outY(), spec.outX()});
    eo.fillUniform(rng);
    eo.sparsify(rng, sparsity());

    if (engine->supports(Phase::Forward)) {
        Tensor out_ref(Shape{cc.batch, spec.nf, spec.outY(), spec.outX()});
        Tensor out(Shape{cc.batch, spec.nf, spec.outY(), spec.outX()});
        ref.forward(spec, in, w, out_ref, pool);
        engine->forward(spec, in, w, out, pool);
        EXPECT_TRUE(allClose(out, out_ref, 1e-3f, 1e-4f))
            << cc.label << " FP maxdiff=" << maxAbsDiff(out, out_ref);
    }

    if (engine->supports(Phase::BackwardData)) {
        Tensor ei_ref(Shape{cc.batch, spec.nc, spec.ny, spec.nx});
        Tensor ei(Shape{cc.batch, spec.nc, spec.ny, spec.nx});
        ref.backwardData(spec, eo, w, ei_ref, pool);
        engine->backwardData(spec, eo, w, ei, pool);
        EXPECT_TRUE(allClose(ei, ei_ref, 1e-3f, 1e-4f))
            << cc.label << " BP-data maxdiff=" << maxAbsDiff(ei, ei_ref);
    }

    if (engine->supports(Phase::BackwardWeights)) {
        Tensor dw_ref(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        Tensor dw(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        ref.backwardWeights(spec, eo, in, dw_ref, pool);
        engine->backwardWeights(spec, eo, in, dw, pool);
        EXPECT_TRUE(allClose(dw, dw_ref, 1e-3f, 1e-3f))
            << cc.label << " BP-weights maxdiff="
            << maxAbsDiff(dw, dw_ref);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineSweep,
    ::testing::Combine(
        ::testing::Range(0, static_cast<int>(std::size(kCases))),
        ::testing::Values(std::string("parallel-gemm"),
                          std::string("gemm-in-parallel"),
                          std::string("parallel-gemm-packed"),
                          std::string("gemm-in-parallel-packed"),
                          std::string("stencil"), std::string("direct"),
                          std::string("sparse"),
                          std::string("sparse-cached")),
        ::testing::Values(0.0, 0.85, 0.99)),
    [](const auto &info) {
        int idx = std::get<0>(info.param);
        std::string name = std::string(kCases[idx].label) + "_" +
                           std::get<1>(info.param);
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        double sp = std::get<2>(info.param);
        name += sp == 0.0 ? "_dense" : sp < 0.9 ? "_sparse" : "_xsparse";
        return name;
    });

TEST(ConvEngines, RegistryKnowsAllNames)
{
    for (const char *name :
         {"reference", "parallel-gemm", "gemm-in-parallel",
          "parallel-gemm-packed", "gemm-in-parallel-packed", "stencil",
          "direct", "sparse", "sparse-cached"}) {
        auto e = makeEngine(name);
        ASSERT_NE(e, nullptr) << name;
        EXPECT_EQ(e->name(), name);
    }
    EXPECT_EQ(makeEngine("no-such-engine"), nullptr);
    EXPECT_EQ(makeAllEngines().size(), 8u);
}

TEST(ConvEngines, PhaseSupportMatrix)
{
    EXPECT_TRUE(makeEngine("parallel-gemm")->supports(Phase::Forward));
    EXPECT_TRUE(
        makeEngine("parallel-gemm")->supports(Phase::BackwardData));
    EXPECT_TRUE(makeEngine("stencil")->supports(Phase::Forward));
    EXPECT_FALSE(makeEngine("stencil")->supports(Phase::BackwardData));
    EXPECT_FALSE(makeEngine("sparse")->supports(Phase::Forward));
    EXPECT_TRUE(makeEngine("sparse")->supports(Phase::BackwardData));
    EXPECT_TRUE(makeEngine("sparse")->supports(Phase::BackwardWeights));
    EXPECT_FALSE(makeEngine("sparse-cached")->supports(Phase::Forward));
    EXPECT_TRUE(
        makeEngine("sparse-cached")->supports(Phase::BackwardData));
    EXPECT_TRUE(
        makeEngine("sparse-cached")->supports(Phase::BackwardWeights));
}

TEST(ConvEngines, PackedEnginesMatchUnpackedBitForBit)
{
    // The packed variants skip operand packing inside the blocking
    // loops but run the identical blocking and micro-kernel order, so
    // their outputs must be EXACTLY equal, not just close.
    PackedWeightCache::global().clear();
    ConvSpec spec{14, 12, 3, 7, 3, 3, 1, 1};
    std::int64_t batch = 3;
    Rng rng(77);
    ThreadPool pool(3);
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    in.fillUniform(rng);
    w.fillUniform(rng, -0.5f, 0.5f);
    eo.fillUniform(rng);

    const char *pairs[][2] = {
        {"parallel-gemm", "parallel-gemm-packed"},
        {"gemm-in-parallel", "gemm-in-parallel-packed"},
    };
    for (const auto &pair : pairs) {
        auto plain = makeEngine(pair[0]);
        auto packed = makeEngine(pair[1]);
        Tensor out_a(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        Tensor out_b(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        plain->forward(spec, in, w, out_a, pool);
        packed->forward(spec, in, w, out_b, pool);
        EXPECT_EQ(maxAbsDiff(out_a, out_b), 0.0f) << pair[1] << " FP";

        Tensor ei_a(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor ei_b(Shape{batch, spec.nc, spec.ny, spec.nx});
        plain->backwardData(spec, eo, w, ei_a, pool);
        packed->backwardData(spec, eo, w, ei_b, pool);
        EXPECT_EQ(maxAbsDiff(ei_a, ei_b), 0.0f) << pair[1] << " BP-data";
    }
    EXPECT_GT(PackedWeightCache::global().size(), 0u);
    PackedWeightCache::global().clear();
}

TEST(ConvEngines, PackedEngineSeesInPlaceWeightMutation)
{
    // Direct engine users mutate weight tensors without notifying the
    // cache; the content fingerprint must force a re-pack.
    PackedWeightCache::global().clear();
    ConvSpec spec{10, 10, 2, 4, 3, 3, 1, 1};
    Rng rng(78);
    ThreadPool pool(2);
    Tensor in(Shape{2, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);

    auto packed = makeEngine("gemm-in-parallel-packed");
    Tensor out(Shape{2, spec.nf, spec.outY(), spec.outX()});
    packed->forward(spec, in, w, out, pool);  // caches packed w

    w[0] += 1.0f;  // in-place mutation, same pointer and dims
    Tensor out_ref(Shape{2, spec.nf, spec.outY(), spec.outX()});
    ReferenceEngine().forward(spec, in, w, out_ref, pool);
    packed->forward(spec, in, w, out, pool);
    EXPECT_TRUE(allClose(out, out_ref, 1e-3f, 1e-4f))
        << "stale packed weights served after mutation";
    PackedWeightCache::global().clear();
}

TEST(ConvEngines, SparseCachedMatchesSparseBitForBit)
{
    // The encode-once engine builds its CT-CSR plan with the fused
    // CHW builder and replays it for both BP phases; the replay order
    // is identical to the per-call encoder, so results must be EXACTLY
    // equal, not just close.
    SparsePlanCache::global().clear();
    SparsePlanCache::global().resetStats();
    ConvSpec spec{14, 12, 3, 7, 3, 3, 1, 1};
    std::int64_t batch = 3;
    Rng rng(79);
    ThreadPool pool(3);
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    in.fillUniform(rng);
    w.fillUniform(rng, -0.5f, 0.5f);
    eo.fillUniform(rng);
    eo.sparsify(rng, 0.9);

    auto plain = makeEngine("sparse");
    auto cached = makeEngine("sparse-cached");

    Tensor ei_a(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor ei_b(Shape{batch, spec.nc, spec.ny, spec.nx});
    plain->backwardData(spec, eo, w, ei_a, pool);
    cached->backwardData(spec, eo, w, ei_b, pool);
    EXPECT_EQ(maxAbsDiff(ei_a, ei_b), 0.0f) << "BP-data";

    Tensor dw_a(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor dw_b(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    plain->backwardWeights(spec, eo, in, dw_a, pool);
    cached->backwardWeights(spec, eo, in, dw_b, pool);
    EXPECT_EQ(maxAbsDiff(dw_a, dw_b), 0.0f) << "BP-weights";

    // BP-data encoded once; BP-weights reused the plan.
    SparsePlanCache::Stats stats = SparsePlanCache::global().stats();
    EXPECT_EQ(stats.encodes, 1);
    EXPECT_EQ(stats.hits, 1);
    SparsePlanCache::global().clear();
}

TEST(ConvEngines, SparseCachedSeesInPlaceErrorMutation)
{
    // Training overwrites the error tensor every minibatch without
    // notifying the cache; the content fingerprint must force a
    // re-encode rather than replay the stale plan.
    SparsePlanCache::global().clear();
    ConvSpec spec{10, 10, 2, 4, 3, 3, 1, 1};
    Rng rng(80);
    ThreadPool pool(2);
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    w.fillUniform(rng);
    Tensor eo(Shape{2, spec.nf, spec.outY(), spec.outX()});
    eo.fillUniform(rng);
    eo.sparsify(rng, 0.8);

    auto cached = makeEngine("sparse-cached");
    Tensor ei(Shape{2, spec.nc, spec.ny, spec.nx});
    cached->backwardData(spec, eo, w, ei, pool);  // caches the plan

    eo[0] += 1.0f;  // in-place mutation, same pointer and dims
    Tensor ei_ref(Shape{2, spec.nc, spec.ny, spec.nx});
    ReferenceEngine().backwardData(spec, eo, w, ei_ref, pool);
    cached->backwardData(spec, eo, w, ei, pool);
    EXPECT_TRUE(allClose(ei, ei_ref, 1e-3f, 1e-4f))
        << "stale sparse plan served after mutation";
    SparsePlanCache::global().clear();
}

TEST(ConvEngines, StencilAblationVariantsMatchReference)
{
    // Fixed 1-row tiles and disabled stride transform must stay
    // correct (they are only slower).
    ConvSpec spec{16, 16, 3, 4, 5, 5, 2, 2};
    Rng rng(7);
    ThreadPool pool(2);
    Tensor in(Shape{2, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor ref_out(Shape{2, spec.nf, spec.outY(), spec.outX()});
    ReferenceEngine().forward(spec, in, w, ref_out, pool);

    for (int fixed_ry : {0, 1, 4}) {
        for (bool xform : {true, false}) {
            StencilEngine eng(fixed_ry, xform);
            Tensor out(Shape{2, spec.nf, spec.outY(), spec.outX()});
            eng.forward(spec, in, w, out, pool);
            EXPECT_TRUE(allClose(out, ref_out, 1e-3f, 1e-4f))
                << "ry=" << fixed_ry << " xform=" << xform;
        }
    }
}

TEST(ConvEngines, SparseTileWidthVariantsMatchReference)
{
    ConvSpec spec{12, 12, 4, 32, 3, 3, 1, 1};
    Rng rng(8);
    ThreadPool pool(2);
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    w.fillUniform(rng);
    Tensor eo(Shape{1, spec.nf, spec.outY(), spec.outX()});
    eo.fillUniform(rng);
    eo.sparsify(rng, 0.9);
    Tensor ei_ref(Shape{1, spec.nc, spec.ny, spec.nx});
    ReferenceEngine().backwardData(spec, eo, w, ei_ref, pool);

    for (std::int64_t tile : {1, 8, 32, 1000}) {
        SparseBpEngine eng(tile);
        Tensor ei(Shape{1, spec.nc, spec.ny, spec.nx});
        eng.backwardData(spec, eo, w, ei, pool);
        EXPECT_TRUE(allClose(ei, ei_ref, 1e-3f, 1e-4f)) << "tile=" << tile;
    }
}

TEST(ConvEngines, FullySparseErrorsYieldZeroGradients)
{
    ConvSpec spec{10, 10, 2, 3, 3, 3, 1, 1};
    ThreadPool pool(2);
    Rng rng(9);
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    w.fillUniform(rng);
    Tensor in(Shape{1, spec.nc, spec.ny, spec.nx});
    in.fillUniform(rng);
    Tensor eo(Shape{1, spec.nf, spec.outY(), spec.outX()});  // all zero

    SparseBpEngine eng;
    Tensor ei(Shape{1, spec.nc, spec.ny, spec.nx});
    ei.fill(123.0f);  // must be overwritten
    eng.backwardData(spec, eo, w, ei, pool);
    EXPECT_EQ(ei.maxAbs(), 0.0f);

    Tensor dw(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    dw.fill(321.0f);
    eng.backwardWeights(spec, eo, in, dw, pool);
    EXPECT_EQ(dw.maxAbs(), 0.0f);
}

TEST(ConvSpecModel, Table1AitValues)
{
    // Paper Table 1: intrinsic AIT and Unfold+GEMM AIT for the six
    // characterization convolutions (values rounded in the paper).
    struct Row
    {
        ConvSpec spec;
        double intrinsic, unfold;
    };
    // <N, Nf, Nc, F> with unit stride.
    const Row rows[] = {
        {ConvSpec::square(32, 32, 32, 4), 362, 25},
        {ConvSpec::square(64, 1024, 512, 2), 2015, 725},
        {ConvSpec::square(256, 256, 128, 3), 1510, 226},
        {ConvSpec::square(128, 128, 64, 7), 3561, 113},
        {ConvSpec::square(128, 512, 256, 5), 6567, 456},
        {ConvSpec::square(64, 64, 16, 11), 1921, 44},
    };
    for (const auto &row : rows) {
        // Intrinsic AIT reproduces the paper's table to rounding.
        EXPECT_NEAR(row.spec.intrinsicAit() / row.intrinsic, 1.0, 0.01)
            << row.spec.str();
        // The paper's table computed |U| with the INPUT spatial size
        // (Nx*Ny) although its stated formula uses the output size;
        // we follow the stated formula, which is up to ~40% higher
        // for large kernels. Accept [1.0, 1.45] x table value.
        double ratio = row.spec.unfoldAit() / row.unfold;
        EXPECT_GE(ratio, 0.95) << row.spec.str();
        EXPECT_LE(ratio, 1.45) << row.spec.str();
    }
}

TEST(ConvSpecModel, UnfoldRatioLimits)
{
    // Kernel == input: convolution IS a matrix multiply, r ~= 1.
    ConvSpec full = ConvSpec::square(8, 16, 4, 8);
    EXPECT_GT(full.unfoldRatio(), 0.5);
    // Large feature count: weights dominate, r -> 1.
    ConvSpec wide = ConvSpec::square(16, 4096, 8, 3);
    EXPECT_GT(wide.unfoldRatio(), 0.8);
    // Small kernel on big image with few features: unfolding hurts.
    ConvSpec small = ConvSpec::square(128, 8, 8, 5);
    EXPECT_LT(small.unfoldRatio(), 0.2);
}

TEST(ConvSpecModel, GeometryHelpers)
{
    ConvSpec s{11, 9, 3, 5, 3, 2, 2, 1};
    EXPECT_EQ(s.outX(), (11 - 3) / 2 + 1);
    EXPECT_EQ(s.outY(), (9 - 2) / 1 + 1);
    EXPECT_EQ(s.inputElems(), 11 * 9 * 3);
    EXPECT_EQ(s.weightElems(), 5 * 3 * 3 * 2);
    EXPECT_EQ(s.outputElems(), 5 * s.outY() * s.outX());
    EXPECT_EQ(s.flops(), 2 * 5 * s.outY() * s.outX() * 3 * 2 * 3);
    EXPECT_TRUE(s.valid());
    EXPECT_FALSE((ConvSpec{0, 1, 1, 1, 1, 1, 1, 1}).valid());
    EXPECT_FALSE((ConvSpec{4, 4, 1, 1, 5, 5, 1, 1}).valid());
}

} // namespace
} // namespace spg
