/**
 * @file
 * Tests for the im2col unfold / col2im fold machinery (paper §2.3).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <tuple>

#include "blas/gemm.hh"
#include "conv/unfold.hh"
#include "tensor/tensor.hh"
#include "util/aligned.hh"
#include "util/random.hh"

namespace spg {
namespace {

class UnfoldGeometries
    : public ::testing::TestWithParam<ConvSpec>
{
};

TEST_P(UnfoldGeometries, ColumnsArePatches)
{
    const ConvSpec &spec = GetParam();
    Tensor in(Shape{spec.nc, spec.ny, spec.nx});
    std::iota(in.data(), in.data() + in.size(), 0.0f);
    Tensor u(Shape{spec.gemmK(), spec.gemmN()});
    unfoldImage(spec, in.data(), u.data());

    // Every (row, col) of U must equal the patch element it encodes:
    // row = (c*Fy + ky)*Fx + kx, col = y*Ox + x.
    std::int64_t ox = spec.outX();
    for (std::int64_t c = 0; c < spec.nc; ++c)
        for (std::int64_t ky = 0; ky < spec.fy; ++ky)
            for (std::int64_t kx = 0; kx < spec.fx; ++kx)
                for (std::int64_t y = 0; y < spec.outY(); ++y)
                    for (std::int64_t x = 0; x < ox; ++x) {
                        std::int64_t row =
                            (c * spec.fy + ky) * spec.fx + kx;
                        std::int64_t col = y * ox + x;
                        float want = in.at(c, y * spec.sy + ky,
                                           x * spec.sx + kx);
                        ASSERT_EQ(u.at(row, col), want)
                            << "c=" << c << " ky=" << ky << " kx=" << kx
                            << " y=" << y << " x=" << x;
                    }
}

TEST_P(UnfoldGeometries, FoldIsAdjointOfUnfold)
{
    // <unfold(x), u> == <x, fold(u)> for all x, u: fold must be the
    // exact transpose of unfold (this is what makes the BP-data GEMM
    // path correct).
    const ConvSpec &spec = GetParam();
    Rng rng(31);
    Tensor x(Shape{spec.nc, spec.ny, spec.nx});
    Tensor u(Shape{spec.gemmK(), spec.gemmN()});
    x.fillUniform(rng);
    u.fillUniform(rng);

    Tensor ux(Shape{spec.gemmK(), spec.gemmN()});
    unfoldImage(spec, x.data(), ux.data());
    Tensor fu(Shape{spec.nc, spec.ny, spec.nx});
    fu.zero();
    foldImageAccumulate(spec, u.data(), fu.data());

    double lhs = 0, rhs = 0;
    for (std::int64_t i = 0; i < ux.size(); ++i)
        lhs += static_cast<double>(ux[i]) * u[i];
    for (std::int64_t i = 0; i < x.size(); ++i)
        rhs += static_cast<double>(x[i]) * fu[i];
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

TEST_P(UnfoldGeometries, FoldAccumulates)
{
    const ConvSpec &spec = GetParam();
    Rng rng(32);
    Tensor u(Shape{spec.gemmK(), spec.gemmN()});
    u.fillUniform(rng);
    Tensor once(Shape{spec.nc, spec.ny, spec.nx});
    Tensor twice(Shape{spec.nc, spec.ny, spec.nx});
    foldImageAccumulate(spec, u.data(), once.data());
    foldImageAccumulate(spec, u.data(), twice.data());
    foldImageAccumulate(spec, u.data(), twice.data());
    for (std::int64_t i = 0; i < once.size(); ++i)
        ASSERT_NEAR(twice[i], 2 * once[i], 1e-4f);
}

TEST_P(UnfoldGeometries, FusedPanelsMatchUnfoldThenPack)
{
    // unfoldImageToPanels must be byte-identical to the two-step
    // unfold + packMatrixBInto, padding included, so a viewB over its
    // output is interchangeable with a packed dense unfold.
    const ConvSpec &spec = GetParam();
    Rng rng(33);
    Tensor in(Shape{spec.nc, spec.ny, spec.nx});
    in.fillUniform(rng);
    std::int64_t k = spec.gemmK(), n = spec.gemmN();

    Tensor u(Shape{k, n});
    unfoldImage(spec, in.data(), u.data());
    AlignedBuffer<float> two_step(PackedMatrix::panelElemsB(k, n));
    packMatrixBInto(Trans::No, k, n, u.data(), n, two_step.data());

    AlignedBuffer<float> fused(PackedMatrix::panelElemsB(k, n));
    // Poison so missed pad columns cannot pass by luck of zero-init.
    for (std::size_t i = 0; i < fused.size(); ++i)
        fused.data()[i] = -1234.5f;
    unfoldImageToPanels(spec, in.data(), fused.data());

    EXPECT_EQ(std::memcmp(two_step.data(), fused.data(),
                          fused.size() * sizeof(float)),
              0)
        << spec.str();
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, UnfoldGeometries,
    ::testing::Values(ConvSpec{5, 5, 1, 1, 2, 2, 1, 1},
                      ConvSpec{8, 7, 3, 2, 3, 2, 1, 1},
                      ConvSpec{9, 9, 2, 2, 3, 3, 2, 2},
                      ConvSpec{12, 12, 2, 3, 5, 5, 3, 3},
                      ConvSpec{6, 6, 4, 2, 1, 1, 1, 1},
                      ConvSpec{10, 8, 1, 2, 4, 3, 2, 1}),
    [](const auto &info) {
        const ConvSpec &s = info.param;
        return "n" + std::to_string(s.nx) + "x" + std::to_string(s.ny) +
               "c" + std::to_string(s.nc) + "k" + std::to_string(s.fx) +
               "x" + std::to_string(s.fy) + "s" + std::to_string(s.sx) +
               std::to_string(s.sy);
    });

TEST(Unfold, GemmDimensionsMatchSpec)
{
    ConvSpec spec{10, 9, 3, 7, 3, 2, 1, 1};
    EXPECT_EQ(spec.gemmM(), 7);
    EXPECT_EQ(spec.gemmK(), 3 * 2 * 3);
    EXPECT_EQ(spec.gemmN(), spec.outY() * spec.outX());
    EXPECT_EQ(spec.unfoldedElems(), spec.gemmK() * spec.gemmN());
}

} // namespace
} // namespace spg
