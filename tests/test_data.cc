/**
 * @file
 * Tests for the synthetic dataset generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/synthetic.hh"

namespace spg {
namespace {

TEST(Synthetic, GeometryAndLabels)
{
    Dataset ds = makeMnistLike(100, 1);
    EXPECT_EQ(ds.channels, 1);
    EXPECT_EQ(ds.height, 28);
    EXPECT_EQ(ds.width, 28);
    EXPECT_EQ(ds.classes, 10);
    EXPECT_EQ(ds.count(), 100);
    EXPECT_EQ(ds.images.shape(), (Shape{100, 1, 28, 28}));
    std::set<int> seen;
    for (int label : ds.labels) {
        ASSERT_GE(label, 0);
        ASSERT_LT(label, 10);
        seen.insert(label);
    }
    EXPECT_GE(seen.size(), 5u);  // most classes present in 100 draws
}

TEST(Synthetic, DeterministicForSameSeed)
{
    Dataset a = makeCifarLike(16, 7);
    Dataset b = makeCifarLike(16, 7);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(maxAbsDiff(a.images, b.images), 0.0f);
    Dataset c = makeCifarLike(16, 8);
    EXPECT_NE(maxAbsDiff(a.images, c.images), 0.0f);
}

TEST(Synthetic, ClassesAreSeparable)
{
    // Same-class examples must be closer than cross-class on average —
    // otherwise the training experiments would be noise-fitting.
    Dataset ds = makeMnistLike(200, 3);
    std::int64_t elems = ds.channels * ds.height * ds.width;
    auto dist = [&](std::int64_t i, std::int64_t j) {
        const float *a = ds.images.data() + i * elems;
        const float *b = ds.images.data() + j * elems;
        double d = 0;
        for (std::int64_t e = 0; e < elems; ++e)
            d += static_cast<double>(a[e] - b[e]) * (a[e] - b[e]);
        return d;
    };
    double same = 0, cross = 0;
    std::int64_t same_n = 0, cross_n = 0;
    for (std::int64_t i = 0; i < 120; ++i) {
        for (std::int64_t j = i + 1; j < 120; ++j) {
            if (ds.labels[i] == ds.labels[j]) {
                same += dist(i, j);
                ++same_n;
            } else {
                cross += dist(i, j);
                ++cross_n;
            }
        }
    }
    ASSERT_GT(same_n, 0);
    ASSERT_GT(cross_n, 0);
    // The noise floor dominates both sums; the class-template term
    // must still make same-class pairs measurably closer.
    EXPECT_LT(same / same_n, 0.92 * (cross / cross_n));
}

TEST(Synthetic, FillBatchCopiesRequestedExamples)
{
    Dataset ds = makeMnistLike(32, 4);
    std::vector<std::int64_t> order(ds.count());
    for (std::int64_t i = 0; i < ds.count(); ++i)
        order[i] = ds.count() - 1 - i;  // reversed
    Tensor batch(Shape{4, 1, 28, 28});
    std::vector<int> labels;
    ds.fillBatch(order, 8, 4, batch, labels);
    ASSERT_EQ(labels.size(), 4u);
    std::int64_t elems = 28 * 28;
    for (int i = 0; i < 4; ++i) {
        std::int64_t src = order[8 + i];
        EXPECT_EQ(labels[i], ds.labels[src]);
        const float *want = ds.images.data() + src * elems;
        const float *got = batch.data() + i * elems;
        for (std::int64_t e = 0; e < elems; e += 97)
            ASSERT_EQ(got[e], want[e]);
    }
}

TEST(Synthetic, NoiseControlsDifficulty)
{
    SyntheticSpec clean;
    clean.noise_stddev = 0.0f;
    clean.count = 20;
    clean.seed = 5;
    Dataset ds = makeSynthetic(clean);
    // Zero noise: same-class images are identical.
    std::int64_t elems = ds.channels * ds.height * ds.width;
    for (std::int64_t i = 0; i < ds.count(); ++i) {
        for (std::int64_t j = i + 1; j < ds.count(); ++j) {
            if (ds.labels[i] != ds.labels[j])
                continue;
            const float *a = ds.images.data() + i * elems;
            const float *b = ds.images.data() + j * elems;
            for (std::int64_t e = 0; e < elems; ++e)
                ASSERT_EQ(a[e], b[e]);
        }
    }
}

TEST(Synthetic, ImageNet100Geometry)
{
    Dataset ds = makeImageNet100Like(10, 6);
    EXPECT_EQ(ds.channels, 3);
    EXPECT_EQ(ds.height, 64);
    EXPECT_EQ(ds.classes, 100);
}

} // namespace
} // namespace spg
