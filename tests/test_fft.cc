/**
 * @file
 * Tests for the FFT substrate and the FFT convolution engine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "conv/engines.hh"
#include "fft/fft.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace spg {
namespace {

/** Naive O(n^2) DFT oracle. */
std::vector<Complex>
naiveDft(const std::vector<Complex> &x, bool inverse)
{
    std::int64_t n = static_cast<std::int64_t>(x.size());
    std::vector<Complex> out(n);
    double sign = inverse ? 1.0 : -1.0;
    for (std::int64_t k = 0; k < n; ++k) {
        std::complex<double> sum = 0;
        for (std::int64_t t = 0; t < n; ++t) {
            double angle = sign * 2.0 * M_PI * k * t / n;
            sum += std::complex<double>(x[t]) *
                   std::complex<double>(std::cos(angle),
                                        std::sin(angle));
        }
        if (inverse)
            sum /= static_cast<double>(n);
        out[k] = Complex(static_cast<float>(sum.real()),
                         static_cast<float>(sum.imag()));
    }
    return out;
}

TEST(Fft, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(96));
    EXPECT_EQ(nextPowerOfTwo(1), 1);
    EXPECT_EQ(nextPowerOfTwo(2), 2);
    EXPECT_EQ(nextPowerOfTwo(33), 64);
    EXPECT_EQ(nextPowerOfTwo(64), 64);
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<Complex> x(8, Complex(0, 0));
    x[0] = Complex(1, 0);
    fftInplace(x.data(), 8);
    for (const auto &v : x) {
        EXPECT_NEAR(v.real(), 1.0f, 1e-6f);
        EXPECT_NEAR(v.imag(), 0.0f, 1e-6f);
    }
}

class FftLengths : public ::testing::TestWithParam<int>
{
};

TEST_P(FftLengths, MatchesNaiveDft)
{
    std::int64_t n = GetParam();
    Rng rng(40 + n);
    std::vector<Complex> x(n);
    for (auto &v : x)
        v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    auto want = naiveDft(x, false);
    auto got = x;
    fftInplace(got.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_NEAR(got[i].real(), want[i].real(), 1e-3f * n) << i;
        ASSERT_NEAR(got[i].imag(), want[i].imag(), 1e-3f * n) << i;
    }
}

TEST_P(FftLengths, RoundTripIsIdentity)
{
    std::int64_t n = GetParam();
    Rng rng(50 + n);
    std::vector<Complex> x(n);
    for (auto &v : x)
        v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    auto got = x;
    fftInplace(got.data(), n, false);
    fftInplace(got.data(), n, 1, true);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_NEAR(got[i].real(), x[i].real(), 1e-4f) << i;
        ASSERT_NEAR(got[i].imag(), x[i].imag(), 1e-4f) << i;
    }
}

TEST_P(FftLengths, ParsevalHolds)
{
    std::int64_t n = GetParam();
    Rng rng(60 + n);
    std::vector<Complex> x(n);
    double time_energy = 0;
    for (auto &v : x) {
        v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
        time_energy += std::norm(std::complex<double>(v));
    }
    fftInplace(x.data(), n);
    double freq_energy = 0;
    for (const auto &v : x)
        freq_energy += std::norm(std::complex<double>(v));
    EXPECT_NEAR(freq_energy, time_energy * n, 1e-3 * time_energy * n);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLengths,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256),
                         [](const auto &info) {
                             return "n" + std::to_string(info.param);
                         });

TEST(FftDeath, RejectsNonPowerOfTwo)
{
    std::vector<Complex> x(6);
    EXPECT_DEATH(fftInplace(x.data(), 6), "not a power of two");
}

TEST(Fft, StridedTransformEqualsContiguous)
{
    std::int64_t n = 16, stride = 3;
    Rng rng(70);
    std::vector<Complex> packed(n);
    for (auto &v : packed)
        v = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
    std::vector<Complex> strided(n * stride, Complex(9, 9));
    for (std::int64_t i = 0; i < n; ++i)
        strided[i * stride] = packed[i];

    fftInplace(packed.data(), n);
    fftInplace(strided.data(), n, stride, false);
    for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_NEAR(strided[i * stride].real(), packed[i].real(), 1e-4f);
        ASSERT_NEAR(strided[i * stride].imag(), packed[i].imag(), 1e-4f);
    }
    // Untouched gap elements stay intact.
    EXPECT_EQ(strided[1].real(), 9.0f);
}

TEST(Fft, TwoDRoundTrip)
{
    std::int64_t rows = 8, cols = 16;
    Rng rng(80);
    std::vector<Complex> x(rows * cols);
    for (auto &v : x)
        v = Complex(rng.uniform(-1, 1), 0);
    auto got = x;
    fft2dInplace(got.data(), rows, cols, false);
    fft2dInplace(got.data(), rows, cols, true);
    for (std::size_t i = 0; i < x.size(); ++i)
        ASSERT_NEAR(got[i].real(), x[i].real(), 1e-4f) << i;
}

TEST(Fft, PadRealToComplex)
{
    float src[6] = {1, 2, 3, 4, 5, 6};  // 2 x 3
    std::vector<Complex> dst(16);
    padRealToComplex(src, 2, 3, 4, dst.data());
    EXPECT_EQ(dst[0].real(), 1.0f);
    EXPECT_EQ(dst[2].real(), 3.0f);
    EXPECT_EQ(dst[3].real(), 0.0f);  // padding column
    EXPECT_EQ(dst[4].real(), 4.0f);  // second row
    EXPECT_EQ(dst[8].real(), 0.0f);  // padding row
    for (const auto &v : dst)
        EXPECT_EQ(v.imag(), 0.0f);
}

// -------------------------------------------------------------------
// FFT convolution engine.
// -------------------------------------------------------------------

class FftEngineSweep : public ::testing::TestWithParam<ConvSpec>
{
};

TEST_P(FftEngineSweep, MatchesReference)
{
    const ConvSpec &s = GetParam();
    ThreadPool pool(2);
    Rng rng(90);
    Tensor in(Shape{2, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor ref(Shape{2, s.nf, s.outY(), s.outX()});
    Tensor got(Shape{2, s.nf, s.outY(), s.outX()});
    ReferenceEngine().forward(s, in, w, ref, pool);
    FftConvEngine().forward(s, in, w, got, pool);
    EXPECT_TRUE(allClose(got, ref, 2e-3f, 2e-3f))
        << "maxdiff=" << maxAbsDiff(got, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FftEngineSweep,
    ::testing::Values(ConvSpec{8, 8, 1, 1, 3, 3, 1, 1},
                      ConvSpec{13, 11, 2, 3, 4, 5, 1, 1},
                      ConvSpec{16, 16, 3, 4, 11, 11, 1, 1},
                      ConvSpec{20, 20, 2, 3, 5, 5, 2, 2},
                      ConvSpec{17, 17, 2, 2, 7, 7, 3, 3},
                      ConvSpec{32, 32, 4, 6, 2, 2, 1, 1}),
    [](const auto &info) {
        const ConvSpec &s = info.param;
        return "n" + std::to_string(s.nx) + "k" + std::to_string(s.fx) +
               "x" + std::to_string(s.fy) + "s" + std::to_string(s.sx);
    });

TEST(FftEngine, TinyBudgetStillCorrect)
{
    // Force the feature-block path with an absurdly small cache.
    ConvSpec s{12, 12, 3, 7, 3, 3, 1, 1};
    ThreadPool pool(2);
    Rng rng(91);
    Tensor in(Shape{1, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor ref(Shape{1, s.nf, s.outY(), s.outX()});
    Tensor got(Shape{1, s.nf, s.outY(), s.outX()});
    ReferenceEngine().forward(s, in, w, ref, pool);
    FftConvEngine(/* budget */ 1).forward(s, in, w, got, pool);
    EXPECT_TRUE(allClose(got, ref, 2e-3f, 2e-3f));
}

TEST(FftEngine, PaddedSizeAndRegistry)
{
    EXPECT_EQ(FftConvEngine::paddedSize(ConvSpec::square(28, 1, 1, 5)),
              32);
    EXPECT_EQ(FftConvEngine::paddedSize(ConvSpec::square(64, 1, 1, 5)),
              64);
    auto engine = makeEngine("fft");
    ASSERT_NE(engine, nullptr);
    EXPECT_TRUE(engine->supports(Phase::Forward));
    EXPECT_FALSE(engine->supports(Phase::BackwardWeights));
    EXPECT_EQ(makeExtendedEngines().size(), makeAllEngines().size() + 4);
}

} // namespace
} // namespace spg
