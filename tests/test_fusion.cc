/**
 * @file
 * Fused-epilogue and activation-arena tests.
 *
 * The fusion contract is bit-for-bit: a conv/fc layer with a fused
 * ReLU must produce exactly the activations and gradients of the
 * unfused layer followed by a standalone ReLU. These tests check that
 * contract for every engine (FP epilogue and BP mask), for the fused
 * network as a whole, and for the degenerate case of fully-clipped
 * pre-activations (empty sparse plans). The arena tests pin the
 * planner's promise: the packed high-water mark stays strictly below
 * the sum of the individual buffers.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "conv/engines.hh"
#include "core/net_config.hh"
#include "nn/network.hh"
#include "nn/simple_layers.hh"
#include "sparse/sparse_plan.hh"
#include "threading/thread_pool.hh"
#include "util/random.hh"

using namespace spg;

namespace {

void
expectBitEqual(const Tensor &a, const Tensor &b, const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::int64_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a.data()[i], b.data()[i])
            << what << " diverged at flat index " << i;
    }
}

/** Geometries the engine sweep runs: generic, strided, odd, 3x3 (so
 *  winograd participates), and a 1x1-output corner. */
std::vector<ConvSpec>
fusionSpecs()
{
    return {
        ConvSpec{10, 10, 3, 4, 3, 3, 1, 1},
        ConvSpec{11, 11, 2, 3, 5, 5, 2, 2},  // strided + odd geometry
        ConvSpec{9, 9, 1, 2, 4, 4, 1, 1},
        ConvSpec{5, 5, 2, 3, 5, 5, 1, 1},    // single output pixel
    };
}

constexpr std::int64_t kBatch = 3;

struct FusedData
{
    Tensor in, weights, pre, eo;
    std::vector<std::uint8_t> mask;  ///< relu activity of `pre`
};

/** Build inputs plus the reference pre-activation (via the reference
 *  engine) and its ReLU mask. `centered` pulls the weights negative so
 *  roughly half the outputs clip; `all_negative` clips everything. */
FusedData
makeData(const ConvSpec &spec, ThreadPool &pool, bool all_negative)
{
    FusedData d;
    Rng rng(91 + spec.nx + spec.nf);
    d.in = Tensor(Shape{kBatch, spec.nc, spec.ny, spec.nx});
    d.weights = Tensor(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    d.pre = Tensor(Shape{kBatch, spec.nf, spec.outY(), spec.outX()});
    d.eo = Tensor(Shape{kBatch, spec.nf, spec.outY(), spec.outX()});
    d.in.fillUniform(rng, all_negative ? 0.1f : -1.0f, 1.0f);
    if (all_negative)
        d.weights.fillUniform(rng, -0.6f, -0.1f);
    else
        d.weights.fillUniform(rng, -0.5f, 0.5f);
    d.eo.fillUniform(rng);
    ReferenceEngine ref;
    ref.forward(spec, d.in, d.weights, d.pre, pool);
    d.mask.resize(static_cast<std::size_t>(d.pre.size()));
    for (std::int64_t i = 0; i < d.pre.size(); ++i)
        d.mask[i] = d.pre.data()[i] > 0.0f;
    return d;
}

} // namespace

// ---------------------------------------------------------------------------
// FP epilogue: every engine, fused relu == unfused conv + standalone relu.

TEST(FusedForward, BitForBitAcrossAllEngines)
{
    ThreadPool pool(3);
    for (const ConvSpec &spec : fusionSpecs()) {
        for (const auto &engine : makeExtendedEngines()) {
            if (!engine->supports(Phase::Forward) ||
                !engine->supportsGeometry(spec)) {
                continue;
            }
            FusedData d = makeData(spec, pool, false);
            Shape oshape{kBatch, spec.nf, spec.outY(), spec.outX()};

            Tensor plain(oshape);
            engine->forward(spec, d.in, d.weights, plain, pool);
            Tensor expected(oshape);
            for (std::int64_t i = 0; i < plain.size(); ++i)
                expected.data()[i] =
                    plain.data()[i] > 0.0f ? plain.data()[i] : 0.0f;

            Tensor fused(oshape);
            engine->forward(spec, d.in, d.weights, fused, pool,
                            Epilogue{Epilogue::Kind::Relu, nullptr});
            expectBitEqual(fused, expected,
                           engine->name() + " relu " + spec.str());

            Tensor fused_masked(oshape);
            std::vector<std::uint8_t> mask(
                static_cast<std::size_t>(plain.size()), 0xAB);
            engine->forward(spec, d.in, d.weights, fused_masked, pool,
                            Epilogue{Epilogue::Kind::ReluMask,
                                     mask.data()});
            expectBitEqual(fused_masked, expected,
                           engine->name() + " relu-mask " + spec.str());
            for (std::int64_t i = 0; i < plain.size(); ++i) {
                ASSERT_EQ(mask[static_cast<std::size_t>(i)],
                          plain.data()[i] > 0.0f ? 1 : 0)
                    << engine->name() << " mask bit " << i << " "
                    << spec.str();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// BP mask: every engine, gradients from (eo, mask) == gradients from a
// pre-masked error tensor.

TEST(FusedBackward, BitForBitAcrossAllEngines)
{
    ThreadPool pool(3);
    SparsePlanCache &plans = SparsePlanCache::global();
    for (const ConvSpec &spec : fusionSpecs()) {
        for (const auto &engine : makeExtendedEngines()) {
            if (!engine->supportsGeometry(spec))
                continue;
            FusedData d = makeData(spec, pool, false);
            Tensor eo_masked(
                Shape{kBatch, spec.nf, spec.outY(), spec.outX()});
            for (std::int64_t i = 0; i < d.eo.size(); ++i)
                eo_masked.data()[i] =
                    d.mask[static_cast<std::size_t>(i)] ? d.eo.data()[i]
                                                        : 0.0f;
            BpMask mask{d.mask.data()};

            if (engine->supports(Phase::BackwardData)) {
                Tensor ei_a(Shape{kBatch, spec.nc, spec.ny, spec.nx});
                Tensor ei_b(Shape{kBatch, spec.nc, spec.ny, spec.nx});
                engine->backwardData(spec, eo_masked, d.weights, ei_a,
                                     pool);
                engine->backwardData(spec, d.eo, d.weights, ei_b, pool,
                                     mask);
                expectBitEqual(ei_b, ei_a,
                               engine->name() + " bp-data " + spec.str());
            }
            if (engine->supports(Phase::BackwardWeights)) {
                Tensor dw_a(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
                Tensor dw_b(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
                engine->backwardWeights(spec, eo_masked, d.in, dw_a,
                                        pool);
                engine->backwardWeights(spec, d.eo, d.in, dw_b, pool,
                                        mask);
                expectBitEqual(dw_b, dw_a,
                               engine->name() + " bp-weights " +
                                   spec.str());
            }
            plans.invalidate(d.eo.data());
            plans.invalidate(eo_masked.data());
        }
    }
}

// ---------------------------------------------------------------------------
// Fully-clipped pre-activations: the mask zeroes every error, the
// sparse engines must survive empty plans and all gradients vanish.

TEST(FusedBackward, AllNegativePreActivationsGiveZeroGradients)
{
    ThreadPool pool(2);
    ConvSpec spec{8, 8, 2, 3, 3, 3, 1, 1};
    FusedData d = makeData(spec, pool, true);
    for (std::size_t i = 0; i < d.mask.size(); ++i)
        ASSERT_EQ(d.mask[i], 0) << "pre-activation " << i
                                << " unexpectedly positive";
    BpMask mask{d.mask.data()};

    for (const auto &engine : makeAllEngines()) {
        if (engine->supports(Phase::BackwardData)) {
            Tensor ei(Shape{kBatch, spec.nc, spec.ny, spec.nx});
            ei.fill(7.0f);
            engine->backwardData(spec, d.eo, d.weights, ei, pool, mask);
            for (std::int64_t i = 0; i < ei.size(); ++i)
                ASSERT_EQ(ei.data()[i], 0.0f)
                    << engine->name() << " ei[" << i << "]";
        }
        if (engine->supports(Phase::BackwardWeights)) {
            Tensor dw(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
            dw.fill(7.0f);
            engine->backwardWeights(spec, d.eo, d.in, dw, pool, mask);
            for (std::int64_t i = 0; i < dw.size(); ++i)
                ASSERT_EQ(dw.data()[i], 0.0f)
                    << engine->name() << " dw[" << i << "]";
        }
    }
    SparsePlanCache::global().invalidate(d.eo.data());
}

// ---------------------------------------------------------------------------
// Network level: the fused network trains bit-for-bit like the unfused
// one, with fewer layers and standalone passes.

namespace {

NetConfig
fusionNetConfig(bool fuse)
{
    NetConfig cfg;
    cfg.name = "fusion-test";
    cfg.channels = 2;
    cfg.height = 12;
    cfg.width = 12;
    cfg.classes = 5;
    cfg.fuse_epilogues = fuse;
    cfg.layers = {
        LayerConfig{LayerKind::Conv, "", 4, 3, 1, 0},
        LayerConfig{LayerKind::Relu, "", 0, 0, 1, 0},
        LayerConfig{LayerKind::MaxPool, "", 0, 2, 2, 0},
        LayerConfig{LayerKind::Fc, "", 0, 0, 1, 16},
        LayerConfig{LayerKind::Relu, "", 0, 0, 1, 0},
        LayerConfig{LayerKind::Fc, "", 0, 0, 1, 5},
        LayerConfig{LayerKind::Softmax, "", 0, 0, 1, 0},
    };
    return cfg;
}

void
fillStepData(Rng &rng, Tensor &images, std::vector<int> &labels,
             std::int64_t classes)
{
    images.fillUniform(rng, -1.0f, 1.0f);
    labels.resize(static_cast<std::size_t>(images.shape()[0]));
    for (auto &label : labels)
        label = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(classes)));
}

} // namespace

TEST(FusedNetwork, TrainsBitForBitLikeUnfused)
{
    ThreadPool pool(2);
    Network fused(fusionNetConfig(true), 42);
    Network plain(fusionNetConfig(false), 42);

    EXPECT_EQ(fused.fusedPairs(), 2);
    EXPECT_EQ(plain.fusedPairs(), 0);
    // The two standalone ReLU layers disappear from the fused stack.
    EXPECT_EQ(fused.layerCount() + 2, plain.layerCount());

    const std::int64_t batch = 4;
    Rng data_rng(7);
    Tensor images(Shape{batch, 2, 12, 12});
    std::vector<int> labels;
    for (int step = 0; step < 4; ++step) {
        fillStepData(data_rng, images, labels, 5);
        StepStats a = fused.trainStep(images, labels, 0.05f, pool);
        StepStats b = plain.trainStep(images, labels, 0.05f, pool);
        ASSERT_EQ(a.loss, b.loss) << "step " << step;
        ASSERT_EQ(a.accuracy, b.accuracy) << "step " << step;
    }

    // After several SGD steps every parameter must still be identical.
    for (std::size_t i = 0, j = 0;
         i < fused.layerCount() && j < plain.layerCount();) {
        auto fp = fused.layer(i).params();
        auto pp = plain.layer(j).params();
        if (fused.layer(i).paramCount() == 0) {
            ++i;
            continue;
        }
        if (plain.layer(j).paramCount() == 0) {
            ++j;
            continue;
        }
        ASSERT_EQ(fp.size(), pp.size());
        for (std::size_t k = 0; k < fp.size(); ++k)
            expectBitEqual(*fp[k], *pp[k],
                           "params of fused layer " + std::to_string(i));
        ++i;
        ++j;
    }
}

TEST(FusedNetwork, ForwardMatchesUnfusedBitForBit)
{
    ThreadPool pool(2);
    Network fused(fusionNetConfig(true), 11);
    Network plain(fusionNetConfig(false), 11);
    Rng data_rng(3);
    Tensor images(Shape{3, 2, 12, 12});
    std::vector<int> labels;
    fillStepData(data_rng, images, labels, 5);
    const Tensor &pa = fused.forward(images, pool);
    const Tensor &pb = plain.forward(images, pool);
    expectBitEqual(pa, pb, "class probabilities");
}

// ---------------------------------------------------------------------------
// Arena planner: packed high-water mark strictly below the sum of the
// individual activation/error buffers.

TEST(ActivationArena, HighWaterMarkBelowUnplannedSum)
{
    ThreadPool pool(2);
    Network net(fusionNetConfig(true), 42);
    Rng data_rng(5);
    Tensor images(Shape{4, 2, 12, 12});
    std::vector<int> labels;
    fillStepData(data_rng, images, labels, 5);
    net.trainStep(images, labels, 0.05f, pool);

    EXPECT_GT(net.arenaBytes(), 0);
    EXPECT_LT(net.arenaBytes(), net.arenaUnplannedBytes());

    // Replanning for a different batch keeps the invariant.
    Tensor eval(Shape{9, 2, 12, 12});
    std::vector<int> eval_labels;
    fillStepData(data_rng, eval, eval_labels, 5);
    net.evalAccuracy(eval, eval_labels, pool);
    EXPECT_LT(net.arenaBytes(), net.arenaUnplannedBytes());
}

// ---------------------------------------------------------------------------
// ReLU / pool backward edge cases.

TEST(ReluEdgeCases, AllNegativeInputGivesFullySparseErrors)
{
    ThreadPool pool(2);
    Geometry geom{2, 4, 4};
    ReluLayer relu(geom);
    Tensor in(Shape{2, 2, 4, 4});
    Tensor out(Shape{2, 2, 4, 4});
    Tensor eo(Shape{2, 2, 4, 4});
    Tensor ei(Shape{2, 2, 4, 4});
    Rng rng(17);
    in.fillUniform(rng, -2.0f, -0.01f);
    eo.fillUniform(rng);
    relu.forward(in, out, pool);
    relu.backward(in, out, eo, ei, pool);
    EXPECT_EQ(ei.sparsity(), 1.0);
    EXPECT_EQ(out.maxAbs(), 0.0f);
}

TEST(ReluEdgeCases, OutputGatingMatchesInputGating)
{
    // The arena in-place path relies on backward gating on the OUTPUT;
    // check it against the classic input-gated form, including -0.0.
    ThreadPool pool(1);
    Geometry geom{1, 2, 3};
    ReluLayer relu(geom);
    Tensor in(Shape{1, 1, 2, 3});
    Tensor out(Shape{1, 1, 2, 3});
    Tensor eo(Shape{1, 1, 2, 3});
    Tensor ei(Shape{1, 1, 2, 3});
    const float values[] = {-0.0f, 0.0f, 1.5f, -2.0f, 1e-30f, 3.0f};
    for (int i = 0; i < 6; ++i)
        in.data()[i] = values[i];
    eo.fill(2.0f);
    relu.forward(in, out, pool);
    relu.backward(in, out, eo, ei, pool);
    for (int i = 0; i < 6; ++i) {
        float expected = values[i] > 0.0f ? 2.0f : 0.0f;
        EXPECT_EQ(ei.data()[i], expected) << "element " << i;
    }
}

TEST(PoolEdgeCases, StrideLargerThanKernel)
{
    // Stride 3 with kernel 2 skips input columns/rows entirely; the
    // skipped positions must receive zero gradient.
    ThreadPool pool(2);
    Geometry geom{1, 7, 7};
    PoolLayer max_pool(geom, 2, 3, PoolLayer::Mode::Max);
    Geometry og = max_pool.outputGeometry();
    EXPECT_EQ(og.h, 2);
    EXPECT_EQ(og.w, 2);

    Tensor in(Shape{1, 1, 7, 7});
    Tensor out(Shape{1, 1, og.h, og.w});
    Tensor eo(Shape{1, 1, og.h, og.w});
    Tensor ei(Shape{1, 1, 7, 7});
    Rng rng(23);
    in.fillUniform(rng);
    eo.fillUniform(rng, 0.5f, 1.0f);
    max_pool.forward(in, out, pool);
    max_pool.backward(in, out, eo, ei, pool);

    // Gradient mass is conserved and lands only inside the windows.
    double eo_sum = 0, ei_sum = 0;
    for (std::int64_t i = 0; i < eo.size(); ++i)
        eo_sum += eo.data()[i];
    for (std::int64_t i = 0; i < ei.size(); ++i)
        ei_sum += ei.data()[i];
    EXPECT_NEAR(eo_sum, ei_sum, 1e-6);
    // Column 2 and row 2 (between the stride-3 windows) are never
    // covered by a 2x2 kernel at offsets {0, 3}: check a sample.
    for (std::int64_t y = 0; y < 7; ++y)
        EXPECT_EQ(ei.data()[y * 7 + 2], 0.0f) << "row " << y;
}

TEST(PoolEdgeCases, OddGeometryAveragePoolBackward)
{
    ThreadPool pool(2);
    Geometry geom{2, 5, 5};
    PoolLayer avg_pool(geom, 2, 2, PoolLayer::Mode::Avg);
    Geometry og = avg_pool.outputGeometry();
    EXPECT_EQ(og.h, 2);
    EXPECT_EQ(og.w, 2);
    Tensor in(Shape{1, 2, 5, 5});
    Tensor out(Shape{1, 2, og.h, og.w});
    Tensor eo(Shape{1, 2, og.h, og.w});
    Tensor ei(Shape{1, 2, 5, 5});
    Rng rng(29);
    in.fillUniform(rng);
    eo.fill(4.0f);
    avg_pool.forward(in, out, pool);
    avg_pool.backward(in, out, eo, ei, pool);
    // Every covered input cell gets eo / k^2 = 1.0; the last row and
    // column (odd leftover) get nothing.
    for (std::int64_t c = 0; c < 2; ++c) {
        for (std::int64_t y = 0; y < 5; ++y) {
            for (std::int64_t x = 0; x < 5; ++x) {
                float v = ei.data()[(c * 5 + y) * 5 + x];
                if (y < 4 && x < 4)
                    EXPECT_EQ(v, 1.0f) << c << "," << y << "," << x;
                else
                    EXPECT_EQ(v, 0.0f) << c << "," << y << "," << x;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fused sparsity accounting: the conv layer must report POST-mask
// sparsity (what its BP engines actually see), not raw eo sparsity.

TEST(FusedConvLayer, ReportsPostMaskSparsity)
{
    ThreadPool pool(2);
    Rng rng(57);
    ConvSpec spec{8, 8, 2, 3, 3, 3, 1, 1};
    ConvLayer layer("convX", spec, rng);
    layer.setFusedRelu(true);
    Tensor in(Shape{2, spec.nc, spec.ny, spec.nx});
    Tensor out(Shape{2, spec.nf, spec.outY(), spec.outX()});
    Tensor eo(Shape{2, spec.nf, spec.outY(), spec.outX()});
    Tensor ei(Shape{2, spec.nc, spec.ny, spec.nx});
    in.fillUniform(rng);
    eo.fillUniform(rng, 0.5f, 1.0f);  // dense, all non-zero
    layer.forward(in, out, pool);
    layer.backward(in, out, eo, ei, pool);
    // eo itself is dense; the reported sparsity must equal the mask's
    // clipped fraction.
    double expected = out.sparsity();
    EXPECT_GT(expected, 0.0);
    EXPECT_NEAR(layer.lastErrorSparsity(), expected, 1e-12);
}

// ---------------------------------------------------------------------------
// Blocked-layout negotiation: with both convs of a conv->conv pair
// (created by epilogue fusion collapsing conv->relu->conv) deployed on
// the direct engine, the activation edge between them is carried in
// NCHWc with no conversion nodes — and training stays bit-for-bit
// identical to the unfused stack, where the standalone ReLU forces the
// edge to stay NCHW.

namespace {

NetConfig
convChainConfig(bool fuse)
{
    NetConfig cfg;
    cfg.name = "conv-chain";
    cfg.channels = 3;
    cfg.height = 14;
    cfg.width = 14;
    cfg.classes = 4;
    cfg.fuse_epilogues = fuse;
    cfg.layers = {
        LayerConfig{LayerKind::Conv, "", 12, 3, 1, 0},
        LayerConfig{LayerKind::Relu, "", 0, 0, 1, 0},
        LayerConfig{LayerKind::Conv, "", 9, 3, 1, 0},
        LayerConfig{LayerKind::Relu, "", 0, 0, 1, 0},
        LayerConfig{LayerKind::Fc, "", 0, 0, 1, 4},
        LayerConfig{LayerKind::Softmax, "", 0, 0, 1, 0},
    };
    return cfg;
}

void
deployDirect(Network &net)
{
    for (ConvLayer *conv : net.convLayers())
        conv->setEngines(EngineAssignment{"direct", "direct", "direct"});
}

} // namespace

TEST(BlockedNegotiation, ConvChainElidesConversionsBitForBit)
{
    if (!DirectEngine::blockedLayoutSupported())
        GTEST_SKIP() << "no blocked kernels on this target";
    ThreadPool pool(3);
    Network fused(convChainConfig(true), 23);
    Network plain(convChainConfig(false), 23);
    deployDirect(fused);
    deployDirect(plain);

    const std::int64_t batch = 3;
    Rng data_rng(9);
    Tensor images(Shape{batch, 3, 14, 14});
    std::vector<int> labels;
    for (int step = 0; step < 3; ++step) {
        fillStepData(data_rng, images, labels, 4);
        StepStats a = fused.trainStep(images, labels, 0.05f, pool);
        StepStats b = plain.trainStep(images, labels, 0.05f, pool);
        ASSERT_EQ(a.loss, b.loss) << "step " << step;
    }
    // The fused stack negotiated its conv->conv edge blocked; the
    // standalone ReLU in the plain stack keeps every edge NCHW.
    EXPECT_EQ(fused.blockedEdgeCount(), 1);
    EXPECT_EQ(plain.blockedEdgeCount(), 0);

    for (ConvLayer *cf : fused.convLayers())
        for (ConvLayer *cp : plain.convLayers())
            if (cf->spec().str() == cp->spec().str())
                expectBitEqual(cf->weights(), cp->weights(),
                               "weights " + cf->spec().str());
}

TEST(BlockedNegotiation, RedeploymentReplansEdges)
{
    if (!DirectEngine::blockedLayoutSupported())
        GTEST_SKIP() << "no blocked kernels on this target";
    ThreadPool pool(2);
    Network net(convChainConfig(true), 31);
    Rng data_rng(13);
    Tensor images(Shape{2, 3, 14, 14});
    std::vector<int> labels;
    fillStepData(data_rng, images, labels, 4);

    // Default engines: no blocked edges.
    net.trainStep(images, labels, 0.05f, pool);
    EXPECT_EQ(net.blockedEdgeCount(), 0);

    // Deploying direct on both convs flips the edge; the arena replans.
    deployDirect(net);
    net.trainStep(images, labels, 0.05f, pool);
    EXPECT_EQ(net.blockedEdgeCount(), 1);

    // Moving one endpoint off direct drops the edge again.
    net.convLayers()[1]->setEngines(
        EngineAssignment{"direct", "direct", "gemm-in-parallel"});
    net.trainStep(images, labels, 0.05f, pool);
    EXPECT_EQ(net.blockedEdgeCount(), 0);
}
