/**
 * @file
 * Tests for the util substrate: aligned buffers, PRNG, tables, CLI.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/aligned.hh"
#include "util/cli.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace spg {
namespace {

TEST(AlignedBuffer, AlignmentAndZeroInit)
{
    AlignedBuffer<float> buf(1000);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
    EXPECT_EQ(buf.size(), 1000u);
    for (auto v : buf)
        ASSERT_EQ(v, 0.0f);
}

TEST(AlignedBuffer, MoveTransfersOwnership)
{
    AlignedBuffer<int> a(10);
    a[3] = 7;
    int *p = a.data();
    AlignedBuffer<int> b = std::move(a);
    EXPECT_EQ(b.data(), p);
    EXPECT_EQ(b[3], 7);
    EXPECT_TRUE(a.empty());
    a = AlignedBuffer<int>(5);
    a[0] = 1;
    b = std::move(a);
    EXPECT_EQ(b.size(), 5u);
    EXPECT_EQ(b[0], 1);
}

TEST(AlignedBuffer, EmptyIsSafe)
{
    AlignedBuffer<double> buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.data(), nullptr);
    buf.zero();  // no-op, must not crash
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 10; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformInRange)
{
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        float u = rng.uniform();
        ASSERT_GE(u, 0.0f);
        ASSERT_LT(u, 1.0f);
    }
    for (int i = 0; i < 1000; ++i) {
        float u = rng.uniform(-3.0f, 5.0f);
        ASSERT_GE(u, -3.0f);
        ASSERT_LT(u, 5.0f);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(2);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(3);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Table, RendersAllRows)
{
    TablePrinter table("demo", {"a", "b"});
    table.addRow({"1", "2"});
    table.addRow({"x", TablePrinter::fmt(3.14159, 3)});
    EXPECT_EQ(table.rowCount(), 2u);
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(static_cast<long long>(-7)), "-7");
}

TEST(Table, CsvEscaping)
{
    TablePrinter table("csv", {"v"});
    table.addRow({"has,comma"});
    table.addRow({"has\"quote"});
    std::FILE *f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    table.printCsv(f);
    std::rewind(f);
    char buf[256];
    std::string content;
    while (std::fgets(buf, sizeof(buf), f))
        content += buf;
    std::fclose(f);
    EXPECT_NE(content.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(content.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Cli, ParsesTypedFlags)
{
    CliParser cli("test");
    cli.addInt("cores", 16, "core count");
    cli.addDouble("sparsity", 0.85, "sparsity");
    cli.addString("engine", "auto", "engine name");
    cli.addBool("csv", false, "emit csv");

    const char *argv[] = {"prog",       "--cores=8", "--sparsity", "0.5",
                          "--engine",   "stencil",   "--csv",      "pos1"};
    cli.parse(8, const_cast<char **>(argv));
    EXPECT_EQ(cli.getInt("cores"), 8);
    EXPECT_DOUBLE_EQ(cli.getDouble("sparsity"), 0.5);
    EXPECT_EQ(cli.getString("engine"), "stencil");
    EXPECT_TRUE(cli.getBool("csv"));
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsSurviveNoArgs)
{
    CliParser cli("test");
    cli.addInt("n", 5, "n");
    cli.addBool("flag", true, "f");
    const char *argv[] = {"prog"};
    cli.parse(1, const_cast<char **>(argv));
    EXPECT_EQ(cli.getInt("n"), 5);
    EXPECT_TRUE(cli.getBool("flag"));
}

TEST(Timer, MeasuresElapsed)
{
    Stopwatch sw;
    double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink += i;
    // Prevent the loop from being optimized away.
    asm volatile("" : : "g"(&sink) : "memory");
    EXPECT_GT(sw.seconds(), 0.0);
    EXPECT_GT(sw.microseconds(), sw.milliseconds());
}

TEST(Timer, BestAndMeanTime)
{
    int calls = 0;
    double best = bestTimeSeconds(3, [&] { ++calls; });
    EXPECT_EQ(calls, 4);  // 1 warm-up + 3 timed
    EXPECT_GE(best, 0.0);
    calls = 0;
    double mean = meanTimeSeconds(5, [&] { ++calls; });
    EXPECT_EQ(calls, 6);
    EXPECT_GE(mean, 0.0);
}

} // namespace
} // namespace spg
