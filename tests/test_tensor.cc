/**
 * @file
 * Tests for the tensor container and data-layout transforms.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "tensor/layout.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace spg {
namespace {

TEST(Shape, BasicProperties)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s[0], 2);
    EXPECT_EQ(s[1], 3);
    EXPECT_EQ(s[2], 4);
    EXPECT_EQ(s[3], 1);
    EXPECT_EQ(s.elements(), 24);
    EXPECT_EQ(s.str(), "2x3x4");
    EXPECT_EQ(s, (Shape{2, 3, 4}));
    EXPECT_NE(s, (Shape{2, 3, 4, 1}));  // different rank
    EXPECT_NE(s, (Shape{2, 3, 5}));
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t(Shape{3, 5});
    EXPECT_EQ(t.maxAbs(), 0.0f);
    EXPECT_EQ(t.size(), 15);
    EXPECT_DOUBLE_EQ(t.sparsity(), 1.0);
}

TEST(Tensor, IndexedAccessMatchesFlat)
{
    Tensor t(Shape{2, 3, 4, 5});
    std::iota(t.data(), t.data() + t.size(), 0.0f);
    EXPECT_EQ(t.at(0, 0, 0, 0), 0.0f);
    EXPECT_EQ(t.at(1, 2, 3, 4), static_cast<float>(t.size() - 1));
    EXPECT_EQ(t.at(0, 1, 2, 3), static_cast<float>((1 * 4 + 2) * 5 + 3));

    Tensor t3(Shape{3, 4, 5});
    std::iota(t3.data(), t3.data() + t3.size(), 0.0f);
    EXPECT_EQ(t3.at(1, 2, 3), static_cast<float>((1 * 4 + 2) * 5 + 3));

    Tensor t2(Shape{4, 5});
    std::iota(t2.data(), t2.data() + t2.size(), 0.0f);
    EXPECT_EQ(t2.at(2, 3), 13.0f);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor a(Shape{4});
    a.fill(1.0f);
    Tensor b = a.clone();
    b[0] = 5.0f;
    EXPECT_EQ(a[0], 1.0f);
    EXPECT_EQ(b[1], 1.0f);
}

TEST(Tensor, SparsifyHitsTarget)
{
    Tensor t(Shape{100, 100});
    Rng rng(11);
    t.fillUniform(rng, 0.5f, 1.5f);  // no natural zeros
    EXPECT_DOUBLE_EQ(t.sparsity(), 0.0);
    t.sparsify(rng, 0.85);
    EXPECT_NEAR(t.sparsity(), 0.85, 0.02);
}

TEST(Tensor, AllCloseAndMaxAbsDiff)
{
    Tensor a(Shape{5});
    Tensor b(Shape{5});
    a.fill(1.0f);
    b.fill(1.0f);
    EXPECT_TRUE(allClose(a, b));
    b[2] = 1.1f;
    EXPECT_FALSE(allClose(a, b, 1e-3f, 1e-3f));
    EXPECT_NEAR(maxAbsDiff(a, b), 0.1f, 1e-6f);
    EXPECT_FALSE(allClose(a, Tensor(Shape{6})));
}

TEST(Tensor, FillGaussianStatistics)
{
    Tensor t(Shape{200, 200});
    Rng rng(12);
    t.fillGaussian(rng, 2.0f);
    double sum = 0, sum2 = 0;
    for (std::int64_t i = 0; i < t.size(); ++i) {
        sum += t[i];
        sum2 += static_cast<double>(t[i]) * t[i];
    }
    double mean = sum / t.size();
    double var = sum2 / t.size() - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Layout, Transpose2d)
{
    std::int64_t r = 37, c = 53;
    Tensor a(Shape{r, c});
    Rng rng(13);
    a.fillUniform(rng);
    Tensor b(Shape{c, r});
    transpose2d(a.data(), r, c, b.data());
    for (std::int64_t i = 0; i < r; ++i)
        for (std::int64_t j = 0; j < c; ++j)
            ASSERT_EQ(a.at(i, j), b.at(j, i));
}

TEST(Layout, Permute4Identity)
{
    Tensor a(Shape{2, 3, 4, 5});
    Rng rng(14);
    a.fillUniform(rng);
    Tensor b(Shape{2, 3, 4, 5});
    permute4(a.data(), {2, 3, 4, 5}, {0, 1, 2, 3}, b.data());
    EXPECT_EQ(maxAbsDiff(a, b), 0.0f);
}

TEST(Layout, Permute4MatchesManual)
{
    Tensor a(Shape{2, 3, 4, 5});
    std::iota(a.data(), a.data() + a.size(), 0.0f);
    Tensor b(Shape{5, 3, 2, 4});
    permute4(a.data(), {2, 3, 4, 5}, {3, 1, 0, 2}, b.data());
    for (std::int64_t i = 0; i < 2; ++i)
        for (std::int64_t j = 0; j < 3; ++j)
            for (std::int64_t k = 0; k < 4; ++k)
                for (std::int64_t l = 0; l < 5; ++l)
                    ASSERT_EQ(b.at(l, j, i, k), a.at(i, j, k, l));
}

TEST(Layout, ChwHwcRoundTrip)
{
    std::int64_t c = 7, h = 9, w = 11;
    Tensor a(Shape{c, h, w});
    Rng rng(15);
    a.fillUniform(rng);
    Tensor hwc(Shape{h, w, c});
    Tensor back(Shape{c, h, w});
    chwToHwc(a.data(), c, h, w, hwc.data());
    // Spot-check semantics: hwc[y][x][ch] == chw[ch][y][x].
    EXPECT_EQ(hwc.at(2, 3, 4), a.at(4, 2, 3));
    hwcToChw(hwc.data(), h, w, c, back.data());
    EXPECT_EQ(maxAbsDiff(a, back), 0.0f);
}

TEST(Layout, WeightsKkfcRoundTrip)
{
    std::int64_t nf = 4, nc = 3, fy = 2, fx = 5;
    Tensor w(Shape{nf, nc, fy, fx});
    Rng rng(16);
    w.fillUniform(rng);
    Tensor kkfc(Shape{fy, fx, nf, nc});
    weightsToKkfc(w.data(), nf, nc, fy, fx, kkfc.data());
    EXPECT_EQ(kkfc.at(1, 4, 2, 0), w.at(2, 0, 1, 4));
    Tensor back(Shape{nf, nc, fy, fx});
    weightsFromKkfc(kkfc.data(), fy, fx, nf, nc, back.data());
    EXPECT_EQ(maxAbsDiff(w, back), 0.0f);
}

class StridedSplit
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(StridedSplit, RoundTripAndSemantics)
{
    auto [ny, nx, sx] = GetParam();
    Tensor a(Shape{ny, nx});
    Rng rng(17);
    a.fillUniform(rng);
    std::int64_t xp = (nx + sx - 1) / sx;
    Tensor split(Shape{ny, sx, xp});
    std::int64_t got = stridedSplitX(a.data(), ny, nx, sx, split.data());
    EXPECT_EQ(got, xp);
    // Semantics: split[y][x % sx][x / sx] == a[y][x].
    for (std::int64_t y = 0; y < ny; ++y)
        for (std::int64_t x = 0; x < nx; ++x)
            ASSERT_EQ(split.at(y, x % sx, x / sx), a.at(y, x));
    Tensor back(Shape{ny, nx});
    stridedMergeX(split.data(), ny, nx, sx, back.data());
    EXPECT_EQ(maxAbsDiff(a, back), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, StridedSplit,
    ::testing::Values(std::make_tuple(4, 12, 2), std::make_tuple(4, 13, 2),
                      std::make_tuple(3, 17, 3), std::make_tuple(5, 9, 4),
                      std::make_tuple(1, 7, 7), std::make_tuple(2, 5, 1)),
    [](const auto &info) {
        return "y" + std::to_string(std::get<0>(info.param)) + "x" +
               std::to_string(std::get<1>(info.param)) + "s" +
               std::to_string(std::get<2>(info.param));
    });

} // namespace
} // namespace spg
