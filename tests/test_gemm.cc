/**
 * @file
 * Unit and property tests for the from-scratch SGEMM.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "blas/gemm.hh"
#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"
#include "util/random.hh"

namespace spg {
namespace {

/** Build a random m x n row-major matrix. */
Tensor
randomMatrix(std::int64_t m, std::int64_t n, std::uint64_t seed)
{
    Tensor t(Shape{m, n});
    Rng rng(seed);
    t.fillUniform(rng, -1.0f, 1.0f);
    return t;
}

void
expectGemmMatchesNaive(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                       std::int64_t k, float alpha, float beta,
                       bool parallel)
{
    std::int64_t a_rows = ta == Trans::No ? m : k;
    std::int64_t a_cols = ta == Trans::No ? k : m;
    std::int64_t b_rows = tb == Trans::No ? k : n;
    std::int64_t b_cols = tb == Trans::No ? n : k;

    Tensor a = randomMatrix(a_rows, a_cols, 1 + m * 7 + n * 13 + k * 31);
    Tensor b = randomMatrix(b_rows, b_cols, 2 + m * 3 + n * 5 + k * 11);
    Tensor c_ref = randomMatrix(m, n, 42);
    Tensor c_opt = c_ref.clone();

    gemmNaive(ta, tb, m, n, k, alpha, a.data(), a_cols, b.data(), b_cols,
              beta, c_ref.data(), n);
    if (parallel) {
        ThreadPool pool(4);
        parallelGemm(pool, ta, tb, m, n, k, alpha, a.data(), a_cols,
                     b.data(), b_cols, beta, c_opt.data(), n);
    } else {
        sgemm(ta, tb, m, n, k, alpha, a.data(), a_cols, b.data(), b_cols,
              beta, c_opt.data(), n);
    }

    float tol = 1e-3f * static_cast<float>(k) / 64.0f + 1e-4f;
    EXPECT_LT(maxAbsDiff(c_ref, c_opt), tol)
        << "m=" << m << " n=" << n << " k=" << k
        << " ta=" << (ta == Trans::Yes) << " tb=" << (tb == Trans::Yes)
        << " alpha=" << alpha << " beta=" << beta
        << " parallel=" << parallel;
}

TEST(Gemm, TinyIdentity)
{
    // C = I * B must equal B exactly.
    std::int64_t n = 8;
    Tensor eye(Shape{n, n});
    for (std::int64_t i = 0; i < n; ++i)
        eye.at(i, i) = 1.0f;
    Tensor b = randomMatrix(n, n, 3);
    Tensor c(Shape{n, n});
    sgemm(Trans::No, Trans::No, n, n, n, 1.0f, eye.data(), n, b.data(), n,
          0.0f, c.data(), n);
    EXPECT_EQ(maxAbsDiff(b, c), 0.0f);
}

TEST(Gemm, SingleElement)
{
    float a = 3.0f, b = -2.0f, c = 10.0f;
    sgemm(Trans::No, Trans::No, 1, 1, 1, 2.0f, &a, 1, &b, 1, 0.5f, &c, 1);
    EXPECT_FLOAT_EQ(c, 2.0f * 3.0f * -2.0f + 0.5f * 10.0f);
}

TEST(Gemm, ZeroKIsScaling)
{
    Tensor c = randomMatrix(5, 7, 9);
    Tensor expected = c.clone();
    for (std::int64_t i = 0; i < expected.size(); ++i)
        expected[i] *= 0.25f;
    sgemm(Trans::No, Trans::No, 5, 7, 0, 1.0f, nullptr, 1, nullptr, 7,
          0.25f, c.data(), 7);
    EXPECT_LT(maxAbsDiff(c, expected), 1e-6f);
}

TEST(Gemm, BetaZeroOverwritesNaN)
{
    // beta == 0 must not propagate pre-existing NaN/garbage in C.
    std::int64_t n = 16;
    Tensor a = randomMatrix(n, n, 4);
    Tensor b = randomMatrix(n, n, 5);
    Tensor c(Shape{n, n});
    c.fill(std::numeric_limits<float>::quiet_NaN());
    sgemm(Trans::No, Trans::No, n, n, n, 1.0f, a.data(), n, b.data(), n,
          0.0f, c.data(), n);
    for (std::int64_t i = 0; i < c.size(); ++i)
        EXPECT_FALSE(std::isnan(c[i])) << "NaN leaked at " << i;
}

TEST(Gemm, StridedOutput)
{
    // C with ldc > n: untouched columns must stay intact.
    std::int64_t m = 9, n = 5, k = 7, ldc = 11;
    Tensor a = randomMatrix(m, k, 6);
    Tensor b = randomMatrix(k, n, 7);
    Tensor c_ref = randomMatrix(m, ldc, 8);
    Tensor c_opt = c_ref.clone();
    gemmNaive(Trans::No, Trans::No, m, n, k, 1.0f, a.data(), k, b.data(),
              n, 1.0f, c_ref.data(), ldc);
    sgemm(Trans::No, Trans::No, m, n, k, 1.0f, a.data(), k, b.data(), n,
          1.0f, c_opt.data(), ldc);
    EXPECT_LT(maxAbsDiff(c_ref, c_opt), 1e-3f);
}

struct GemmCase
{
    std::int64_t m, n, k;
};

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<GemmCase, int, int, bool>>
{
};

TEST_P(GemmShapes, MatchesNaive)
{
    auto [shape, ta_i, tb_i, parallel] = GetParam();
    Trans ta = ta_i ? Trans::Yes : Trans::No;
    Trans tb = tb_i ? Trans::Yes : Trans::No;
    expectGemmMatchesNaive(ta, tb, shape.m, shape.n, shape.k, 1.0f, 0.0f,
                           parallel);
    expectGemmMatchesNaive(ta, tb, shape.m, shape.n, shape.k, 0.5f, 1.0f,
                           parallel);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Combine(
        ::testing::Values(GemmCase{1, 1, 1}, GemmCase{2, 3, 4},
                          GemmCase{6, 16, 8}, GemmCase{7, 17, 9},
                          GemmCase{13, 1, 5}, GemmCase{1, 33, 5},
                          GemmCase{48, 64, 32}, GemmCase{65, 129, 67},
                          GemmCase{128, 128, 300}, GemmCase{121, 257, 129},
                          GemmCase{5, 300, 2}, GemmCase{300, 5, 2}),
        ::testing::Values(0, 1), ::testing::Values(0, 1),
        ::testing::Values(false, true)),
    [](const auto &info) {
        const GemmCase &shape = std::get<0>(info.param);
        std::string name = "m" + std::to_string(shape.m) + "n" +
                           std::to_string(shape.n) + "k" +
                           std::to_string(shape.k);
        name += std::get<1>(info.param) ? "_tA" : "";
        name += std::get<2>(info.param) ? "_tB" : "";
        name += std::get<3>(info.param) ? "_par" : "_seq";
        return name;
    });

TEST(Gemm, TransCombosOddSizesBetaSweep)
{
    // All four Trans combinations x sizes with m, n, k deliberately
    // NOT multiples of kGemmMr/kGemmNr/kGemmKc x beta in {0, 1, 0.5},
    // sequential and parallel, against the naive oracle.
    const GemmCase odd[] = {{7, 19, 5}, {11, 37, 13}, {5, 33, 257}};
    for (const GemmCase &shape : odd)
        for (Trans ta : {Trans::No, Trans::Yes})
            for (Trans tb : {Trans::No, Trans::Yes})
                for (float beta : {0.0f, 1.0f, 0.5f})
                    for (bool parallel : {false, true})
                        expectGemmMatchesNaive(ta, tb, shape.m, shape.n,
                                               shape.k, 1.0f, beta,
                                               parallel);
}

TEST(Gemm, LargeBlockedCrossesAllBlockBoundaries)
{
    // Exercise kMc/kKc/kNc boundaries: sizes straddling 120/256/2048.
    expectGemmMatchesNaive(Trans::No, Trans::No, 121, 2049, 257, 1.0f,
                           0.0f, false);
}

TEST(Gemm, FlopsHelper)
{
    EXPECT_EQ(gemmFlops(2, 3, 4), 2 * 2 * 3 * 4);
    EXPECT_EQ(gemmFlops(0, 3, 4), 0);
}

TEST(ParallelGemm, ManyThreadsSmallMatrix)
{
    // More threads than rows must still be correct.
    ThreadPool pool(8);
    std::int64_t m = 3, n = 3, k = 200;
    Tensor a = randomMatrix(m, k, 10);
    Tensor b = randomMatrix(k, n, 11);
    Tensor c_ref(Shape{m, n});
    Tensor c_opt(Shape{m, n});
    gemmNaive(Trans::No, Trans::No, m, n, k, 1.0f, a.data(), k, b.data(),
              n, 0.0f, c_ref.data(), n);
    parallelGemm(pool, Trans::No, Trans::No, m, n, k, 1.0f, a.data(), k,
                 b.data(), n, 0.0f, c_opt.data(), n);
    EXPECT_LT(maxAbsDiff(c_ref, c_opt), 1e-3f);
}

} // namespace
} // namespace spg
