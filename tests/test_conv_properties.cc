/**
 * @file
 * Property-based tests of the convolution engines.
 *
 * Rather than comparing against the reference on fixed inputs, these
 * tests check mathematical invariants that must hold for EVERY
 * correct implementation:
 *
 *  - linearity of FP in the input and in the weights;
 *  - adjointness: backward-data is the transpose of forward, so
 *    <conv(x), e> == <x, conv^T(e)> for all x, e;
 *  - the weight gradient is the directional derivative of the output
 *    along the weights;
 *  - determinism: identical results for any worker-pool size and on
 *    repeated runs (no data races, no uninitialized scratch).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "conv/engines.hh"
#include "tensor/blocked.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace spg {
namespace {

/** Flat inner product of two same-sized tensors (double accum). */
double
dot(const Tensor &a, const Tensor &b)
{
    double sum = 0;
    for (std::int64_t i = 0; i < a.size(); ++i)
        sum += static_cast<double>(a[i]) * b[i];
    return sum;
}

class ConvProperty
    : public ::testing::TestWithParam<std::tuple<int, std::string>>
{
  protected:
    static const ConvSpec &spec()
    {
        static const ConvSpec specs[] = {
            ConvSpec{9, 9, 2, 3, 3, 3, 1, 1},
            ConvSpec{12, 10, 3, 5, 4, 2, 1, 1},
            ConvSpec{14, 14, 2, 4, 3, 3, 2, 2},
            ConvSpec{11, 11, 4, 2, 5, 5, 3, 3},
        };
        return specs[std::get<0>(GetParam())];
    }

    static std::unique_ptr<ConvEngine> engine()
    {
        return makeEngine(std::get<1>(GetParam()));
    }
};

TEST_P(ConvProperty, ForwardIsLinearInInput)
{
    const ConvSpec &s = spec();
    auto eng = engine();
    if (!eng->supports(Phase::Forward))
        GTEST_SKIP();
    ThreadPool pool(2);
    Rng rng(100 + std::get<0>(GetParam()));

    Tensor x1(Shape{1, s.nc, s.ny, s.nx});
    Tensor x2(Shape{1, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    x1.fillUniform(rng);
    x2.fillUniform(rng);
    w.fillUniform(rng);

    const float a = 2.5f, b = -1.25f;
    Tensor combo(Shape{1, s.nc, s.ny, s.nx});
    for (std::int64_t i = 0; i < combo.size(); ++i)
        combo[i] = a * x1[i] + b * x2[i];

    Shape out_shape{1, s.nf, s.outY(), s.outX()};
    Tensor y1(out_shape), y2(out_shape), y_combo(out_shape);
    eng->forward(s, x1, w, y1, pool);
    eng->forward(s, x2, w, y2, pool);
    eng->forward(s, combo, w, y_combo, pool);

    for (std::int64_t i = 0; i < y_combo.size(); ++i) {
        float expect = a * y1[i] + b * y2[i];
        ASSERT_NEAR(y_combo[i], expect,
                    1e-3f * std::max(1.0f, std::fabs(expect)))
            << i;
    }
}

TEST_P(ConvProperty, ForwardIsLinearInWeights)
{
    const ConvSpec &s = spec();
    auto eng = engine();
    if (!eng->supports(Phase::Forward))
        GTEST_SKIP();
    ThreadPool pool(2);
    Rng rng(200 + std::get<0>(GetParam()));

    Tensor x(Shape{1, s.nc, s.ny, s.nx});
    Tensor w1(Shape{s.nf, s.nc, s.fy, s.fx});
    Tensor w2(Shape{s.nf, s.nc, s.fy, s.fx});
    x.fillUniform(rng);
    w1.fillUniform(rng);
    w2.fillUniform(rng);

    Tensor w_sum(Shape{s.nf, s.nc, s.fy, s.fx});
    for (std::int64_t i = 0; i < w_sum.size(); ++i)
        w_sum[i] = w1[i] + w2[i];

    Shape out_shape{1, s.nf, s.outY(), s.outX()};
    Tensor y1(out_shape), y2(out_shape), y_sum(out_shape);
    eng->forward(s, x, w1, y1, pool);
    eng->forward(s, x, w2, y2, pool);
    eng->forward(s, x, w_sum, y_sum, pool);

    for (std::int64_t i = 0; i < y_sum.size(); ++i)
        ASSERT_NEAR(y_sum[i], y1[i] + y2[i],
                    1e-3f * std::max(1.0f, std::fabs(y_sum[i])));
}

TEST_P(ConvProperty, BackwardDataIsAdjointOfForward)
{
    // <conv(x), e> == <x, conv^T(e)> for random x and e. This pins
    // BP-data (Eq. 3) against FP (Eq. 2) without any reference code.
    const ConvSpec &s = spec();
    auto eng = engine();
    ThreadPool pool(2);
    Rng rng(300 + std::get<0>(GetParam()));

    Tensor x(Shape{1, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    Tensor e(Shape{1, s.nf, s.outY(), s.outX()});
    x.fillUniform(rng);
    w.fillUniform(rng);
    e.fillUniform(rng);

    ReferenceEngine ref;
    Tensor y(Shape{1, s.nf, s.outY(), s.outX()});
    Tensor xt(Shape{1, s.nc, s.ny, s.nx});
    if (eng->supports(Phase::Forward))
        eng->forward(s, x, w, y, pool);
    else
        ref.forward(s, x, w, y, pool);
    if (eng->supports(Phase::BackwardData))
        eng->backwardData(s, e, w, xt, pool);
    else
        ref.backwardData(s, e, w, xt, pool);

    double lhs = dot(y, e);
    double rhs = dot(x, xt);
    EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::fabs(lhs)));
}

TEST_P(ConvProperty, WeightGradientIsDirectionalDerivative)
{
    // <dW, D> == <conv_{W=D}(x), e>: the Eq. 4 gradient contracted
    // with any direction D equals the output change along D.
    const ConvSpec &s = spec();
    auto eng = engine();
    if (!eng->supports(Phase::BackwardWeights))
        GTEST_SKIP();
    ThreadPool pool(2);
    Rng rng(400 + std::get<0>(GetParam()));

    Tensor x(Shape{2, s.nc, s.ny, s.nx});
    Tensor e(Shape{2, s.nf, s.outY(), s.outX()});
    Tensor direction(Shape{s.nf, s.nc, s.fy, s.fx});
    x.fillUniform(rng);
    e.fillUniform(rng);
    direction.fillUniform(rng);

    Tensor dw(Shape{s.nf, s.nc, s.fy, s.fx});
    eng->backwardWeights(s, e, x, dw, pool);

    ReferenceEngine ref;
    Tensor y_dir(Shape{2, s.nf, s.outY(), s.outX()});
    ref.forward(s, x, direction, y_dir, pool);

    double lhs = dot(dw, direction);
    double rhs = dot(y_dir, e);
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(rhs)));
}

TEST_P(ConvProperty, DeterministicAcrossPoolSizes)
{
    const ConvSpec &s = spec();
    auto eng = engine();
    Rng rng(500 + std::get<0>(GetParam()));

    Tensor x(Shape{3, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    Tensor e(Shape{3, s.nf, s.outY(), s.outX()});
    x.fillUniform(rng);
    w.fillUniform(rng);
    e.fillUniform(rng);
    e.sparsify(rng, 0.7);

    Tensor y_ref, xt_ref, dw_ref;
    bool first = true;
    for (int threads : {1, 2, 5}) {
        ThreadPool pool(threads);
        Tensor y(Shape{3, s.nf, s.outY(), s.outX()});
        Tensor xt(Shape{3, s.nc, s.ny, s.nx});
        Tensor dw(Shape{s.nf, s.nc, s.fy, s.fx});
        if (eng->supports(Phase::Forward))
            eng->forward(s, x, w, y, pool);
        if (eng->supports(Phase::BackwardData))
            eng->backwardData(s, e, w, xt, pool);
        if (eng->supports(Phase::BackwardWeights))
            eng->backwardWeights(s, e, x, dw, pool);
        if (first) {
            y_ref = std::move(y);
            xt_ref = std::move(xt);
            dw_ref = std::move(dw);
            first = false;
            continue;
        }
        if (eng->supports(Phase::Forward)) {
            EXPECT_EQ(maxAbsDiff(y, y_ref), 0.0f) << threads;
        }
        if (eng->supports(Phase::BackwardData)) {
            EXPECT_EQ(maxAbsDiff(xt, xt_ref), 0.0f) << threads;
        }
        if (eng->supports(Phase::BackwardWeights)) {
            EXPECT_LE(maxAbsDiff(dw, dw_ref), 2e-4f) << threads;
        }
    }
}

TEST_P(ConvProperty, RepeatedCallsAreIdentical)
{
    // Scratch reuse must not leak state between calls.
    const ConvSpec &s = spec();
    auto eng = engine();
    if (!eng->supports(Phase::Forward))
        GTEST_SKIP();
    ThreadPool pool(2);
    Rng rng(600 + std::get<0>(GetParam()));
    Tensor x(Shape{1, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    x.fillUniform(rng);
    w.fillUniform(rng);
    Tensor y1(Shape{1, s.nf, s.outY(), s.outX()});
    Tensor y2(Shape{1, s.nf, s.outY(), s.outX()});
    eng->forward(s, x, w, y1, pool);
    // Poison y2, then recompute: must fully overwrite.
    y2.fill(1e30f);
    eng->forward(s, x, w, y2, pool);
    EXPECT_EQ(maxAbsDiff(y1, y2), 0.0f);
}

// ---------------------------------------------------------------------
// Blocked NCHWc layout: conversions are pure data movement, so a
// round-trip must reproduce the original tensor bit for bit — in
// particular across partial trailing channel blocks.
// ---------------------------------------------------------------------

TEST(BlockedLayout, ActivationRoundTripIsExactForOddChannels)
{
    ThreadPool pool(3);
    Rng rng(7001);
    for (std::int64_t c : {1, 3, 5, 7, 8, 9, 16, 17, 23}) {
        Tensor x(Shape{2, c, 5, 6});
        x.fillUniform(rng);
        Tensor blocked = nchwToNchwc(x, pool);
        EXPECT_TRUE(blocked.layout().blocked());
        EXPECT_EQ(blocked.layout().channels, c);
        EXPECT_EQ(blocked.shape(), nchwcShape(2, c, 5, 6));
        // Pad lanes of a partial tail block must be exactly zero.
        if (c % kChannelBlock != 0) {
            const std::int64_t live = c % kChannelBlock;
            const std::int64_t cbn = blockCount(c);
            for (std::int64_t b = 0; b < 2; ++b)
                for (std::int64_t p = 0; p < 5 * 6; ++p)
                    for (std::int64_t ci = live; ci < kChannelBlock;
                         ++ci) {
                        std::int64_t idx =
                            (((b * cbn + cbn - 1) * 5 * 6) + p) *
                                kChannelBlock +
                            ci;
                        ASSERT_EQ(blocked[idx], 0.0f) << c;
                    }
        }
        Tensor back = nchwcToNchw(blocked, pool);
        ASSERT_EQ(back.shape(), x.shape()) << c;
        EXPECT_EQ(std::memcmp(back.data(), x.data(),
                              static_cast<std::size_t>(x.size()) *
                                  sizeof(float)),
                  0)
            << "channels=" << c;
    }
}

TEST(BlockedLayout, WeightRoundTripIsExactForOddCounts)
{
    ThreadPool pool(3);
    Rng rng(7002);
    for (auto [nf, nc] : {std::pair<std::int64_t, std::int64_t>{1, 1},
                          {3, 7},
                          {8, 8},
                          {9, 17},
                          {16, 5},
                          {17, 16}}) {
        Tensor w(Shape{nf, nc, 3, 3});
        w.fillUniform(rng);
        Tensor blocked = kcrsToKcrsck(w, pool);
        EXPECT_EQ(blocked.layout().features, nf);
        EXPECT_EQ(blocked.layout().channels, nc);
        Tensor back = kcrsckToKcrs(blocked, pool);
        ASSERT_EQ(back.shape(), w.shape());
        EXPECT_EQ(std::memcmp(back.data(), w.data(),
                              static_cast<std::size_t>(w.size()) *
                                  sizeof(float)),
                  0)
            << nf << "x" << nc;
    }
}

// ---------------------------------------------------------------------
// Direct engine: bit-for-bit against the reference on (spatially
// reduced) Table 1 geometries, all three phases, with and without the
// fused ReLU epilogue / BP mask, and with blocked operands negotiated.
// ---------------------------------------------------------------------

/** Table 1 kernel/channel characters at test-sized spatial extents;
 *  channel counts reduced where the reference would be too slow, plus
 *  tail-block (non-multiple-of-8) variants. */
const ConvSpec kDirectSpecs[] = {
    ConvSpec::square(16, 32, 32, 4),   // id 0 character
    ConvSpec::square(8, 48, 24, 2),    // id 1 character (channels cut)
    ConvSpec::square(12, 32, 16, 3),   // id 2 character (channels cut)
    ConvSpec::square(14, 16, 8, 7),    // id 3 character
    ConvSpec::square(13, 24, 16, 5),   // id 4 character (channels cut)
    ConvSpec::square(16, 64, 16, 11),  // id 5, exact channels
    ConvSpec{10, 9, 17, 33, 3, 3, 1, 1},   // tail blocks both sides
    ConvSpec{11, 11, 5, 9, 5, 5, 2, 2},    // stride + tails
    ConvSpec{12, 10, 1, 3, 4, 2, 3, 3},    // tiny channels, stride 3
};

class DirectBitForBit : public ::testing::TestWithParam<int>
{
};

TEST_P(DirectBitForBit, AllPhasesMatchReference)
{
    const ConvSpec &s = kDirectSpecs[GetParam()];
    const std::int64_t batch = 2;
    ThreadPool pool(4);
    Rng rng(800 + GetParam());

    Tensor x(Shape{batch, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    Tensor e(Shape{batch, s.nf, s.outY(), s.outX()});
    // Mixed-sign data so ReLU masks have structure.
    x.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -1.0f, 1.0f);
    e.fillUniform(rng, -1.0f, 1.0f);

    ReferenceEngine ref;
    DirectEngine direct;
    Shape out_shape{batch, s.nf, s.outY(), s.outX()};

    // Plain (no epilogue) phases.
    Tensor y_ref(out_shape), y(out_shape);
    ref.forward(s, x, w, y_ref, pool);
    direct.forward(s, x, w, y, pool);
    EXPECT_EQ(maxAbsDiff(y, y_ref), 0.0f) << s.str() << " FP";

    Tensor xt_ref(x.shape()), xt(x.shape());
    ref.backwardData(s, e, w, xt_ref, pool);
    direct.backwardData(s, e, w, xt, pool);
    EXPECT_EQ(maxAbsDiff(xt, xt_ref), 0.0f) << s.str() << " BP-data";

    Tensor dw_ref(w.shape()), dw(w.shape());
    ref.backwardWeights(s, e, x, dw_ref, pool);
    direct.backwardWeights(s, e, x, dw, pool);
    EXPECT_EQ(maxAbsDiff(dw, dw_ref), 0.0f) << s.str() << " BP-weights";

    // Fused ReLU epilogue + BP mask.
    std::vector<std::uint8_t> mask_ref(y_ref.size()),
        mask(y_ref.size());
    Epilogue ep_ref{Epilogue::Kind::ReluMask, mask_ref.data()};
    Epilogue ep{Epilogue::Kind::ReluMask, mask.data()};
    ref.forward(s, x, w, y_ref, pool, ep_ref);
    direct.forward(s, x, w, y, pool, ep);
    EXPECT_EQ(maxAbsDiff(y, y_ref), 0.0f) << s.str() << " FP+relu";
    EXPECT_EQ(std::memcmp(mask.data(), mask_ref.data(), mask.size()), 0)
        << s.str() << " mask";

    BpMask bp{mask_ref.data()};
    ref.backwardData(s, e, w, xt_ref, pool, bp);
    direct.backwardData(s, e, w, xt, pool, bp);
    EXPECT_EQ(maxAbsDiff(xt, xt_ref), 0.0f)
        << s.str() << " BP-data+mask";

    ref.backwardWeights(s, e, x, dw_ref, pool, bp);
    direct.backwardWeights(s, e, x, dw, pool, bp);
    EXPECT_EQ(maxAbsDiff(dw, dw_ref), 0.0f)
        << s.str() << " BP-weights+mask";
}

TEST_P(DirectBitForBit, BlockedOperandsMatchPlain)
{
    // The negotiated-layout paths: blocked in and/or out for FP,
    // blocked in for BP-weights. Results after a round-trip through
    // the conversion kernels must equal the plain-NCHW call bit for
    // bit.
    if (!DirectEngine::blockedLayoutSupported())
        GTEST_SKIP() << "no blocked kernels on this target";
    const ConvSpec &s = kDirectSpecs[GetParam()];
    const std::int64_t batch = 2;
    ThreadPool pool(4);
    Rng rng(900 + GetParam());

    Tensor x(Shape{batch, s.nc, s.ny, s.nx});
    Tensor w(Shape{s.nf, s.nc, s.fy, s.fx});
    Tensor e(Shape{batch, s.nf, s.outY(), s.outX()});
    x.fillUniform(rng, -1.0f, 1.0f);
    w.fillUniform(rng, -1.0f, 1.0f);
    e.fillUniform(rng, -1.0f, 1.0f);

    DirectEngine direct;
    Shape out_shape{batch, s.nf, s.outY(), s.outX()};
    Tensor y_plain(out_shape);
    std::vector<std::uint8_t> mask_plain(y_plain.size());
    Epilogue ep_plain{Epilogue::Kind::ReluMask, mask_plain.data()};
    direct.forward(s, x, w, y_plain, pool, ep_plain);

    // Blocked input, blocked output.
    Tensor xb = nchwToNchwc(x, pool);
    Tensor yb(nchwcShape(batch, s.nf, s.outY(), s.outX()));
    yb.setLayout(Layout::nchwc(s.nf));
    std::vector<std::uint8_t> mask_b(y_plain.size());
    Epilogue ep_b{Epilogue::Kind::ReluMask, mask_b.data()};
    direct.forward(s, xb, w, yb, pool, ep_b);
    Tensor y_back = nchwcToNchw(yb, pool);
    EXPECT_EQ(maxAbsDiff(y_back, y_plain), 0.0f) << s.str();
    EXPECT_EQ(std::memcmp(mask_b.data(), mask_plain.data(),
                          mask_b.size()),
              0)
        << s.str();

    // BP-weights reading the blocked input.
    Tensor dw_plain(w.shape()), dw_b(w.shape());
    BpMask bp{mask_plain.data()};
    direct.backwardWeights(s, e, x, dw_plain, pool, bp);
    direct.backwardWeights(s, e, xb, dw_b, pool, bp);
    EXPECT_EQ(maxAbsDiff(dw_b, dw_plain), 0.0f) << s.str();
}

INSTANTIATE_TEST_SUITE_P(
    Table1, DirectBitForBit,
    ::testing::Range(0, static_cast<int>(std::size(kDirectSpecs))));

INSTANTIATE_TEST_SUITE_P(
    Engines, ConvProperty,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(std::string("parallel-gemm"),
                                         std::string("gemm-in-parallel"),
                                         std::string("stencil"),
                                         std::string("direct"),
                                         std::string("sparse"))),
    [](const auto &info) {
        std::string name = "spec" +
                           std::to_string(std::get<0>(info.param)) + "_" +
                           std::get<1>(info.param);
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace spg
