/**
 * @file
 * Pre-packed-operand SGEMM: the sgemmPacked* entry points must be
 * bit-for-bit identical to the repack-every-call sgemm (same blocking,
 * same micro-kernel order, only the pack copies skipped) and must
 * match gemmNaive within the usual tolerance.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <tuple>

#include "blas/gemm.hh"
#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"
#include "util/aligned.hh"
#include "util/random.hh"

namespace spg {
namespace {

Tensor
randomMatrix(std::int64_t m, std::int64_t n, std::uint64_t seed)
{
    Tensor t(Shape{m, n});
    Rng rng(seed);
    t.fillUniform(rng, -1.0f, 1.0f);
    return t;
}

/** Deliberately odd sizes: none a multiple of kGemmMr/kGemmNr/kGemmKc,
 *  plus shapes straddling the kMc/kKc/kNc block boundaries. */
struct PackedCase
{
    std::int64_t m, n, k;
};

const PackedCase kPackedCases[] = {
    {1, 1, 1},     {5, 7, 3},      {7, 17, 9},    {13, 31, 29},
    {6, 32, 256},  {121, 257, 129}, {125, 2053, 259},
};

class PackedGemm
    : public ::testing::TestWithParam<std::tuple<int, int, int, float>>
{
  protected:
    PackedCase shape() const
    {
        return kPackedCases[std::get<0>(GetParam())];
    }
    Trans ta() const
    {
        return std::get<1>(GetParam()) ? Trans::Yes : Trans::No;
    }
    Trans tb() const
    {
        return std::get<2>(GetParam()) ? Trans::Yes : Trans::No;
    }
    float beta() const { return std::get<3>(GetParam()); }
};

TEST_P(PackedGemm, MatchesUnpackedBitForBitAndNaive)
{
    auto [m, n, k] = shape();
    float alpha = 0.75f;
    std::int64_t lda = ta() == Trans::No ? k : m;
    std::int64_t ldb = tb() == Trans::No ? n : k;
    Tensor a = randomMatrix(ta() == Trans::No ? m : k, lda, 21 + m);
    Tensor b = randomMatrix(tb() == Trans::No ? k : n, ldb, 22 + n);
    Tensor c0 = randomMatrix(m, n, 23 + k);

    Tensor c_plain = c0.clone();
    sgemm(ta(), tb(), m, n, k, alpha, a.data(), lda, b.data(), ldb,
          beta(), c_plain.data(), n);

    Tensor c_naive = c0.clone();
    gemmNaive(ta(), tb(), m, n, k, alpha, a.data(), lda, b.data(), ldb,
              beta(), c_naive.data(), n);

    PackedMatrix pa =
        PackedMatrix::packA(ta(), m, k, alpha, a.data(), lda);
    PackedMatrix pb = PackedMatrix::packB(tb(), k, n, b.data(), ldb);

    Tensor c_pa = c0.clone();
    sgemmPackedA(pa, tb(), n, b.data(), ldb, beta(), c_pa.data(), n);
    EXPECT_EQ(maxAbsDiff(c_plain, c_pa), 0.0f) << "packed A";

    Tensor c_pb = c0.clone();
    sgemmPackedB(ta(), m, alpha, a.data(), lda, pb, beta(), c_pb.data(),
                 n);
    EXPECT_EQ(maxAbsDiff(c_plain, c_pb), 0.0f) << "packed B";

    Tensor c_pab = c0.clone();
    sgemmPackedAB(pa, pb, beta(), c_pab.data(), n);
    EXPECT_EQ(maxAbsDiff(c_plain, c_pab), 0.0f) << "packed AB";

    float tol = 1e-3f * static_cast<float>(k) / 64.0f + 1e-4f;
    EXPECT_LT(maxAbsDiff(c_naive, c_pab), tol) << "vs naive";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedGemm,
    ::testing::Combine(
        ::testing::Range(0,
                         static_cast<int>(std::size(kPackedCases))),
        ::testing::Values(0, 1), ::testing::Values(0, 1),
        ::testing::Values(0.0f, 1.0f, 0.5f)),
    [](const auto &info) {
        const PackedCase &shape = kPackedCases[std::get<0>(info.param)];
        std::string name = "m" + std::to_string(shape.m) + "n" +
                           std::to_string(shape.n) + "k" +
                           std::to_string(shape.k);
        name += std::get<1>(info.param) ? "_tA" : "";
        name += std::get<2>(info.param) ? "_tB" : "";
        float beta = std::get<3>(info.param);
        name += beta == 0.0f ? "_b0" : beta == 1.0f ? "_b1" : "_bhalf";
        return name;
    });

TEST(PackedMatrix, ViewMatchesOwningPackByteForByte)
{
    std::int64_t m = 37, n = 53, k = 41;
    Tensor a = randomMatrix(m, k, 31);
    Tensor b = randomMatrix(k, n, 32);

    PackedMatrix owned_a =
        PackedMatrix::packA(Trans::No, m, k, 1.0f, a.data(), k);
    AlignedBuffer<float> buf_a(PackedMatrix::panelElemsA(m, k));
    packMatrixAInto(Trans::No, m, k, 1.0f, a.data(), k, buf_a.data());
    EXPECT_EQ(std::memcmp(owned_a.panels(), buf_a.data(),
                          buf_a.size() * sizeof(float)),
              0);

    PackedMatrix owned_b =
        PackedMatrix::packB(Trans::No, k, n, b.data(), n);
    AlignedBuffer<float> buf_b(PackedMatrix::panelElemsB(k, n));
    packMatrixBInto(Trans::No, k, n, b.data(), n, buf_b.data());
    EXPECT_EQ(std::memcmp(owned_b.panels(), buf_b.data(),
                          buf_b.size() * sizeof(float)),
              0);

    // Views over the caller buffers multiply identically.
    PackedMatrix view_a = PackedMatrix::viewA(m, k, buf_a.data());
    PackedMatrix view_b = PackedMatrix::viewB(k, n, buf_b.data());
    Tensor c_owned(Shape{m, n}), c_view(Shape{m, n});
    sgemmPackedAB(owned_a, owned_b, 0.0f, c_owned.data(), n);
    sgemmPackedAB(view_a, view_b, 0.0f, c_view.data(), n);
    EXPECT_EQ(maxAbsDiff(c_owned, c_view), 0.0f);
}

TEST(PackedMatrix, AccessorsAndAlphaBaking)
{
    std::int64_t m = 9, k = 11;
    Tensor a = randomMatrix(m, k, 33);
    PackedMatrix pa =
        PackedMatrix::packA(Trans::No, m, k, 2.0f, a.data(), k);
    EXPECT_EQ(pa.kind(), PackedMatrix::Kind::A);
    EXPECT_EQ(pa.rows(), m);
    EXPECT_EQ(pa.cols(), k);
    EXPECT_FALSE(pa.empty());
    EXPECT_TRUE(PackedMatrix().empty());

    // alpha is baked at pack time: C = 2A * B.
    std::int64_t n = 5;
    Tensor b = randomMatrix(k, n, 34);
    Tensor c_ref(Shape{m, n}), c(Shape{m, n});
    gemmNaive(Trans::No, Trans::No, m, n, k, 2.0f, a.data(), k, b.data(),
              n, 0.0f, c_ref.data(), n);
    sgemmPackedA(pa, Trans::No, n, b.data(), n, 0.0f, c.data(), n);
    EXPECT_LT(maxAbsDiff(c_ref, c), 1e-3f);
}

TEST(ParallelPackedGemm, MatchesSequentialPacked)
{
    ThreadPool pool(4);
    for (auto [m, n, k] :
         {PackedCase{7, 4099, 37}, PackedCase{63, 2048, 130},
          PackedCase{121, 513, 67}, PackedCase{3, 129, 200}}) {
        Tensor a = randomMatrix(m, k, 41 + m);
        Tensor b = randomMatrix(k, n, 42 + n);
        PackedMatrix pa =
            PackedMatrix::packA(Trans::No, m, k, 1.0f, a.data(), k);
        PackedMatrix pb =
            PackedMatrix::packB(Trans::No, k, n, b.data(), n);

        Tensor c_seq(Shape{m, n}), c_par(Shape{m, n});
        sgemmPackedA(pa, Trans::No, n, b.data(), n, 0.0f, c_seq.data(),
                     n);
        parallelGemmPackedA(pool, pa, Trans::No, n, b.data(), n, 0.0f,
                            c_par.data(), n);
        EXPECT_EQ(maxAbsDiff(c_seq, c_par), 0.0f)
            << "packed A m=" << m << " n=" << n << " k=" << k;

        Tensor c_ab(Shape{m, n});
        parallelGemmPackedAB(pool, pa, pb, 0.0f, c_ab.data(), n);
        EXPECT_EQ(maxAbsDiff(c_seq, c_ab), 0.0f)
            << "packed AB m=" << m << " n=" << n << " k=" << k;
    }
}

} // namespace
} // namespace spg
