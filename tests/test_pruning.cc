/**
 * @file
 * Tests for the magnitude-pruning schedule (nn/pruning.hh) and its
 * integration with the layers' prune masks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv_layer.hh"
#include "nn/pruning.hh"
#include "util/random.hh"

namespace spg {
namespace {

TEST(PruningSchedule, ParsesTargetStartAndRamp)
{
    PruneOptions a = parsePruneSchedule("0.9");
    EXPECT_DOUBLE_EQ(a.target_sparsity, 0.9);
    EXPECT_EQ(a.start_epoch, 1);
    EXPECT_EQ(a.ramp_epochs, 4);

    PruneOptions b = parsePruneSchedule("0.75@2");
    EXPECT_DOUBLE_EQ(b.target_sparsity, 0.75);
    EXPECT_EQ(b.start_epoch, 2);

    PruneOptions c = parsePruneSchedule("0.5@0:6");
    EXPECT_DOUBLE_EQ(c.target_sparsity, 0.5);
    EXPECT_EQ(c.start_epoch, 0);
    EXPECT_EQ(c.ramp_epochs, 6);
    EXPECT_TRUE(c.enabled());
    EXPECT_FALSE(PruneOptions{}.enabled());
}

TEST(PruningScheduleDeath, RejectsMalformedSchedules)
{
    EXPECT_DEATH(parsePruneSchedule("bogus"), "prune");
    EXPECT_DEATH(parsePruneSchedule("1.5"), "prune");
    EXPECT_DEATH(parsePruneSchedule("-0.1"), "prune");
    EXPECT_DEATH(parsePruneSchedule("0.9@x"), "prune");
}

TEST(PruningSchedule, RampIsMonotoneAndSaturates)
{
    PruneOptions opts;
    opts.target_sparsity = 0.9;
    opts.start_epoch = 2;
    opts.ramp_epochs = 5;

    EXPECT_DOUBLE_EQ(pruneRampFraction(opts, 0), 0.0);
    EXPECT_DOUBLE_EQ(pruneRampFraction(opts, 1), 0.0);
    double prev = 0.0;
    for (int epoch = 2; epoch < 12; ++epoch) {
        double f = pruneRampFraction(opts, epoch);
        EXPECT_GE(f, prev) << "epoch " << epoch;
        EXPECT_LE(f, 1.0);
        prev = f;
    }
    // Saturated at the end of the ramp and beyond.
    EXPECT_DOUBLE_EQ(pruneRampFraction(opts, 6), 1.0);
    EXPECT_DOUBLE_EQ(pruneRampFraction(opts, 100), 1.0);
    // Cubic shape: first step prunes more than half the target.
    EXPECT_GT(pruneRampFraction(opts, 2), 0.4);
}

TEST(PruningSchedule, FirstLayerTargetIsScaledDown)
{
    PruneOptions opts;
    opts.target_sparsity = 0.8;
    opts.first_layer_scale = 0.5;
    EXPECT_DOUBLE_EQ(pruneLayerTarget(opts, 0, 3), 0.4);
    EXPECT_DOUBLE_EQ(pruneLayerTarget(opts, 1, 3), 0.8);
    EXPECT_DOUBLE_EQ(pruneLayerTarget(opts, 2, 3), 0.8);
    // A single prunable layer is NOT the sensitive first of many.
    EXPECT_DOUBLE_EQ(pruneLayerTarget(opts, 0, 1), 0.8);
}

TEST(MagnitudePrune, HitsExactCountAndDropsSmallest)
{
    Tensor w(Shape{10, 10});
    float *d = w.data();
    for (int i = 0; i < 100; ++i)
        d[i] = (i % 2 ? -1.0f : 1.0f) * (i + 1);  // |w| = 1..100

    std::vector<std::uint8_t> mask;
    double achieved = magnitudePrune(w, 0.3, mask);
    EXPECT_DOUBLE_EQ(achieved, 0.3);
    EXPECT_DOUBLE_EQ(w.sparsity(), 0.3);
    ASSERT_EQ(mask.size(), 100u);
    // Exactly the 30 smallest magnitudes (|w| in 1..30) are dropped.
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(mask[i], i < 30 ? 0 : 1) << "at " << i;
        EXPECT_EQ(d[i] == 0.0f, i < 30) << "at " << i;
    }
}

TEST(MagnitudePrune, RepruningIsMonotone)
{
    Rng rng(5);
    Tensor w(Shape{8, 4, 3, 3});
    w.fillUniform(rng, -1.0f, 1.0f);

    std::vector<std::uint8_t> mask;
    magnitudePrune(w, 0.4, mask);
    std::vector<std::uint8_t> at40 = mask;
    double achieved = magnitudePrune(w, 0.7, mask);
    // Every position pruned at 40% stays pruned at 70%: exact zeros
    // sort first in the magnitude order.
    for (std::size_t i = 0; i < mask.size(); ++i) {
        if (at40[i] == 0)
            EXPECT_EQ(mask[i], 0) << "at " << i;
    }
    EXPECT_NEAR(achieved, 0.7, 0.5 / static_cast<double>(w.size()));
    EXPECT_DOUBLE_EQ(w.sparsity(), achieved);
}

TEST(MagnitudePrune, ApplyMaskRezeroesAfterUpdate)
{
    Rng rng(6);
    Tensor w(Shape{4, 4});
    w.fillUniform(rng, -1.0f, 1.0f);
    std::vector<std::uint8_t> mask;
    magnitudePrune(w, 0.5, mask);

    // Simulate an SGD step perturbing everything, then re-mask.
    for (std::int64_t i = 0; i < w.size(); ++i)
        w.data()[i] += 0.25f;
    applyPruneMask(w, mask);
    for (std::int64_t i = 0; i < w.size(); ++i) {
        if (!mask[static_cast<std::size_t>(i)])
            EXPECT_EQ(w.data()[i], 0.0f) << "at " << i;
        else
            EXPECT_NE(w.data()[i], 0.0f) << "at " << i;
    }
    // An empty mask (never pruned) is a no-op.
    std::vector<std::uint8_t> none;
    Tensor v(Shape{2, 2});
    v.fill(3.0f);
    applyPruneMask(v, none);
    EXPECT_EQ(v.sparsity(), 0.0);
}

TEST(PruningConvLayer, PruneSurvivesSgdUpdates)
{
    // Layer-level contract the sparse FP engines rely on: once pruned,
    // positions stay exactly zero across weight updates until the next
    // prune step moves the mask.
    Rng rng(7);
    ConvSpec spec{10, 10, 2, 4, 3, 3, 1, 1};
    ConvLayer layer("conv_t", spec, rng);
    EXPECT_TRUE(layer.prunable());
    EXPECT_DOUBLE_EQ(layer.weightSparsity(), 0.0);

    layer.pruneToSparsity(0.6);
    double pruned = layer.weightSparsity();
    EXPECT_NEAR(pruned, 0.6, 0.5 / static_cast<double>(
                                       layer.paramCount()));
    std::vector<std::uint8_t> mask = *layer.pruneMask();

    // Run a forward/backward to populate gradients, then update.
    ThreadPool pool(1);
    Tensor in(Shape{2, spec.nc, spec.ny, spec.nx});
    in.fillUniform(rng);
    Tensor out(Shape{2, spec.nf, spec.outY(), spec.outX()});
    layer.forward(in, out, pool);
    Tensor eo = out.clone();
    Tensor ei(Shape{2, spec.nc, spec.ny, spec.nx});
    layer.backward(in, out, eo, ei, pool);
    layer.update(0.05f);

    EXPECT_GE(layer.weightSparsity(), pruned);
    const float *w = layer.weights().data();
    for (std::size_t i = 0; i < mask.size(); ++i) {
        if (!mask[i])
            EXPECT_EQ(w[i], 0.0f) << "at " << i;
    }
}

} // namespace
} // namespace spg

