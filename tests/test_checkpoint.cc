/**
 * @file
 * Tests for network checkpointing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/net_config.hh"
#include "data/suites.hh"
#include "nn/checkpoint.hh"

namespace spg {
namespace {

NetConfig
smallConfig()
{
    return parseNetConfig(R"(
        name: "ckpt"
        input { channels: 1 height: 10 width: 10 classes: 4 }
        layer { type: conv features: 3 kernel: 3 }
        layer { type: relu }
        layer { type: fc outputs: 4 }
        layer { type: softmax }
    )");
}

TEST(Checkpoint, RoundTripRestoresExactWeights)
{
    Network a(smallConfig(), 1);
    Network b(smallConfig(), 2);  // different init

    std::stringstream stream;
    saveCheckpoint(a, stream);
    loadCheckpoint(b, stream);

    // Both networks must now compute identical outputs.
    ThreadPool pool(1);
    Rng rng(3);
    Tensor images(Shape{2, 1, 10, 10});
    images.fillUniform(rng);
    const Tensor &pa = a.forward(images, pool);
    Tensor pa_copy = pa.clone();
    const Tensor &pb = b.forward(images, pool);
    EXPECT_EQ(maxAbsDiff(pa_copy, pb), 0.0f);
}

TEST(Checkpoint, TrainingResumesEquivalently)
{
    // Train net A two steps; checkpoint after step 1 into net B and
    // replay step 2 there: weights must agree.
    ThreadPool pool(1);
    Rng rng(4);
    Tensor batch(Shape{4, 1, 10, 10});
    batch.fillUniform(rng);
    std::vector<int> labels = {0, 1, 2, 3};

    Network a(smallConfig(), 7);
    a.trainStep(batch, labels, 0.1f, pool);
    std::stringstream stream;
    saveCheckpoint(a, stream);
    a.trainStep(batch, labels, 0.1f, pool);

    Network b(smallConfig(), 99);
    loadCheckpoint(b, stream);
    b.trainStep(batch, labels, 0.1f, pool);

    const Tensor &pa = a.forward(batch, pool);
    Tensor pa_copy = pa.clone();
    const Tensor &pb = b.forward(batch, pool);
    EXPECT_LT(maxAbsDiff(pa_copy, pb), 1e-5f);
}

TEST(Checkpoint, FileRoundTrip)
{
    Network a(smallConfig(), 5);
    std::string path = ::testing::TempDir() + "/spg_ckpt_test.bin";
    saveCheckpoint(a, path);
    Network b(smallConfig(), 6);
    loadCheckpoint(b, path);

    ThreadPool pool(1);
    Rng rng(8);
    Tensor images(Shape{1, 1, 10, 10});
    images.fillUniform(rng);
    Tensor pa = a.forward(images, pool).clone();
    const Tensor &pb = b.forward(images, pool);
    EXPECT_EQ(maxAbsDiff(pa, pb), 0.0f);
    std::remove(path.c_str());
}

TEST(Checkpoint, PruneMaskRoundTrips)
{
    // Prune conv + fc, checkpoint, restore into a fresh net: masks and
    // the exact zero pattern must survive, and subsequent updates on
    // the restored net must keep pruned weights at zero.
    Network a(smallConfig(), 21);
    a.layer(0).pruneToSparsity(0.5);  // conv
    a.layer(1).pruneToSparsity(0.7);  // fc (relu is fused into conv)
    ASSERT_FALSE(a.layer(0).pruneMask()->empty());
    ASSERT_FALSE(a.layer(1).pruneMask()->empty());

    std::stringstream stream;
    saveCheckpoint(a, stream);
    Network b(smallConfig(), 22);
    loadCheckpoint(b, stream);

    EXPECT_EQ(*b.layer(0).pruneMask(), *a.layer(0).pruneMask());
    EXPECT_EQ(*b.layer(1).pruneMask(), *a.layer(1).pruneMask());
    EXPECT_DOUBLE_EQ(b.layer(0).weightSparsity(),
                     a.layer(0).weightSparsity());
    EXPECT_DOUBLE_EQ(b.layer(1).weightSparsity(),
                     a.layer(1).weightSparsity());

    // Resume training on the restored net: the mask keeps pruned
    // positions exactly zero through the SGD update.
    ThreadPool pool(1);
    Rng rng(23);
    Tensor batch(Shape{2, 1, 10, 10});
    batch.fillUniform(rng);
    b.trainStep(batch, {0, 1}, 0.1f, pool);
    EXPECT_GE(b.layer(0).weightSparsity(),
              a.layer(0).weightSparsity());
    EXPECT_GE(b.layer(1).weightSparsity(),
              a.layer(1).weightSparsity());
}

TEST(Checkpoint, UnprunedCheckpointClearsStaleMasks)
{
    // Loading a mask-free checkpoint (v1, or a never-pruned v2 like
    // this one) into a previously pruned network must drop the stale
    // masks so training resumes dense.
    Network a(smallConfig(), 31);
    std::stringstream stream;
    saveCheckpoint(a, stream);

    Network b(smallConfig(), 32);
    b.layer(0).pruneToSparsity(0.6);
    ASSERT_FALSE(b.layer(0).pruneMask()->empty());
    loadCheckpoint(b, stream);
    EXPECT_TRUE(b.layer(0).pruneMask()->empty());
    EXPECT_DOUBLE_EQ(b.layer(0).weightSparsity(), 0.0);
}

TEST(CheckpointDeath, RejectsGarbageAndMismatches)
{
    Network net(smallConfig(), 9);

    std::stringstream garbage("not a checkpoint at all");
    EXPECT_DEATH(loadCheckpoint(net, garbage), "bad magic");

    // A checkpoint from a structurally different network.
    NetConfig other = parseNetConfig(R"(
        name: "other"
        input { channels: 1 height: 10 width: 10 classes: 4 }
        layer { type: conv features: 5 kernel: 3 }
        layer { type: fc outputs: 4 }
        layer { type: softmax }
    )");
    Network other_net(other, 10);
    std::stringstream stream;
    saveCheckpoint(other_net, stream);
    EXPECT_DEATH(loadCheckpoint(net, stream), "checkpoint");

    EXPECT_DEATH(loadCheckpoint(net, "/nonexistent/path/x.bin"),
                 "cannot open");
}

TEST(Checkpoint, TruncatedStreamIsFatal)
{
    Network net(smallConfig(), 11);
    std::stringstream stream;
    saveCheckpoint(net, stream);
    std::string data = stream.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_DEATH(loadCheckpoint(net, cut), "truncated");
}

} // namespace
} // namespace spg
