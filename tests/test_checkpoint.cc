/**
 * @file
 * Tests for network checkpointing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/net_config.hh"
#include "data/suites.hh"
#include "nn/checkpoint.hh"

namespace spg {
namespace {

NetConfig
smallConfig()
{
    return parseNetConfig(R"(
        name: "ckpt"
        input { channels: 1 height: 10 width: 10 classes: 4 }
        layer { type: conv features: 3 kernel: 3 }
        layer { type: relu }
        layer { type: fc outputs: 4 }
        layer { type: softmax }
    )");
}

TEST(Checkpoint, RoundTripRestoresExactWeights)
{
    Network a(smallConfig(), 1);
    Network b(smallConfig(), 2);  // different init

    std::stringstream stream;
    saveCheckpoint(a, stream);
    loadCheckpoint(b, stream);

    // Both networks must now compute identical outputs.
    ThreadPool pool(1);
    Rng rng(3);
    Tensor images(Shape{2, 1, 10, 10});
    images.fillUniform(rng);
    const Tensor &pa = a.forward(images, pool);
    Tensor pa_copy = pa.clone();
    const Tensor &pb = b.forward(images, pool);
    EXPECT_EQ(maxAbsDiff(pa_copy, pb), 0.0f);
}

TEST(Checkpoint, TrainingResumesEquivalently)
{
    // Train net A two steps; checkpoint after step 1 into net B and
    // replay step 2 there: weights must agree.
    ThreadPool pool(1);
    Rng rng(4);
    Tensor batch(Shape{4, 1, 10, 10});
    batch.fillUniform(rng);
    std::vector<int> labels = {0, 1, 2, 3};

    Network a(smallConfig(), 7);
    a.trainStep(batch, labels, 0.1f, pool);
    std::stringstream stream;
    saveCheckpoint(a, stream);
    a.trainStep(batch, labels, 0.1f, pool);

    Network b(smallConfig(), 99);
    loadCheckpoint(b, stream);
    b.trainStep(batch, labels, 0.1f, pool);

    const Tensor &pa = a.forward(batch, pool);
    Tensor pa_copy = pa.clone();
    const Tensor &pb = b.forward(batch, pool);
    EXPECT_LT(maxAbsDiff(pa_copy, pb), 1e-5f);
}

TEST(Checkpoint, FileRoundTrip)
{
    Network a(smallConfig(), 5);
    std::string path = ::testing::TempDir() + "/spg_ckpt_test.bin";
    saveCheckpoint(a, path);
    Network b(smallConfig(), 6);
    loadCheckpoint(b, path);

    ThreadPool pool(1);
    Rng rng(8);
    Tensor images(Shape{1, 1, 10, 10});
    images.fillUniform(rng);
    Tensor pa = a.forward(images, pool).clone();
    const Tensor &pb = b.forward(images, pool);
    EXPECT_EQ(maxAbsDiff(pa, pb), 0.0f);
    std::remove(path.c_str());
}

TEST(CheckpointDeath, RejectsGarbageAndMismatches)
{
    Network net(smallConfig(), 9);

    std::stringstream garbage("not a checkpoint at all");
    EXPECT_DEATH(loadCheckpoint(net, garbage), "bad magic");

    // A checkpoint from a structurally different network.
    NetConfig other = parseNetConfig(R"(
        name: "other"
        input { channels: 1 height: 10 width: 10 classes: 4 }
        layer { type: conv features: 5 kernel: 3 }
        layer { type: fc outputs: 4 }
        layer { type: softmax }
    )");
    Network other_net(other, 10);
    std::stringstream stream;
    saveCheckpoint(other_net, stream);
    EXPECT_DEATH(loadCheckpoint(net, stream), "checkpoint");

    EXPECT_DEATH(loadCheckpoint(net, "/nonexistent/path/x.bin"),
                 "cannot open");
}

TEST(Checkpoint, TruncatedStreamIsFatal)
{
    Network net(smallConfig(), 11);
    std::stringstream stream;
    saveCheckpoint(net, stream);
    std::string data = stream.str();
    std::stringstream cut(data.substr(0, data.size() / 2));
    EXPECT_DEATH(loadCheckpoint(net, cut), "truncated");
}

} // namespace
} // namespace spg
