/**
 * @file
 * Hardware-counter plumbing tests that run WITHOUT perf permissions:
 * the SPG_PERF=off fallback, the group-read buffer decoder on
 * synthetic buffers, the RAPL sysfs parser (negatives + wraparound)
 * against a fake powercap tree, the affinity placement function, and
 * the PerfSample/PerfTotals delta algebra. The one test that needs a
 * live PMU (measured-vs-modeled traffic soft gate) skips, not fails,
 * when the host grants no perf_event access.
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "conv/engines.hh"
#include "data/suites.hh"
#include "obs/perfcnt.hh"
#include "simcpu/conv_model.hh"
#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"

using namespace spg;

namespace {

/** Restore the default Auto probe when a test forced a mode. */
struct PerfModeGuard
{
    ~PerfModeGuard() { obs::perfConfigure(obs::PerfMode::Auto); }
};

void
writeFile(const std::filesystem::path &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr) << path;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

/** Fake powercap tree with one intel-rapl:0 domain. */
std::filesystem::path
makeRaplRoot(const std::string &tag, const std::string &energy,
             const std::string &max_range)
{
    std::filesystem::path root =
        std::filesystem::path(::testing::TempDir()) /
        ("spg_rapl_" + tag);
    std::filesystem::create_directories(root / "intel-rapl:0");
    writeFile(root / "intel-rapl:0" / "energy_uj", energy);
    if (!max_range.empty())
        writeFile(root / "intel-rapl:0" / "max_energy_range_uj",
                  max_range);
    return root;
}

} // namespace

TEST(PerfCnt, OffModeDisablesEverything)
{
    PerfModeGuard guard;
    obs::perfConfigure(obs::PerfMode::Off);
    EXPECT_FALSE(obs::perfEnabled());
    obs::PerfSample s = obs::perfReadThread();
    EXPECT_EQ(s.valid, 0u);
    EXPECT_LT(s.llcMissBytes(), 0.0);
}

TEST(PerfCnt, GroupReadDecodesInOpenOrder)
{
    const int events[] = {obs::kPerfCycles, obs::kPerfInstructions};
    // { nr, time_enabled, time_running, v0, v1 } — no multiplexing.
    const std::uint64_t words[] = {2, 100, 100, 1000, 2500};
    obs::PerfSample out;
    ASSERT_TRUE(obs::parsePerfGroupRead(words, 5, events, 2, out));
    EXPECT_TRUE(out.has(obs::kPerfCycles));
    EXPECT_TRUE(out.has(obs::kPerfInstructions));
    EXPECT_FALSE(out.has(obs::kPerfLlcMisses));
    EXPECT_DOUBLE_EQ(out.value(obs::kPerfCycles), 1000.0);
    EXPECT_DOUBLE_EQ(out.value(obs::kPerfInstructions), 2500.0);
}

TEST(PerfCnt, GroupReadScalesMultiplexedCounters)
{
    const int events[] = {obs::kPerfLlcLoads, obs::kPerfLlcMisses};
    // Ran half the enabled time: values scale by enabled/running = 2.
    const std::uint64_t words[] = {2, 100, 50, 400, 30};
    obs::PerfSample out;
    ASSERT_TRUE(obs::parsePerfGroupRead(words, 5, events, 2, out));
    EXPECT_DOUBLE_EQ(out.value(obs::kPerfLlcLoads), 800.0);
    EXPECT_DOUBLE_EQ(out.value(obs::kPerfLlcMisses), 60.0);
    EXPECT_DOUBLE_EQ(out.llcMissBytes(), 60.0 * obs::kCacheLineBytes);
}

TEST(PerfCnt, GroupReadRejectsMalformedBuffers)
{
    const int events[] = {obs::kPerfCycles, obs::kPerfInstructions};
    obs::PerfSample out;
    // nr disagrees with the expected member count.
    const std::uint64_t nr_mismatch[] = {3, 100, 100, 1, 2, 3};
    EXPECT_FALSE(
        obs::parsePerfGroupRead(nr_mismatch, 6, events, 2, out));
    // Buffer shorter than nr promises.
    const std::uint64_t short_buf[] = {2, 100, 100, 1};
    EXPECT_FALSE(
        obs::parsePerfGroupRead(short_buf, 4, events, 2, out));
    // No header at all.
    const std::uint64_t tiny[] = {2, 100};
    EXPECT_FALSE(obs::parsePerfGroupRead(tiny, 2, events, 2, out));
}

TEST(PerfCnt, GroupReadThatNeverRanMarksNothingValid)
{
    const int events[] = {obs::kPerfCycles};
    const std::uint64_t words[] = {1, 100, 0, 12345};
    obs::PerfSample out;
    ASSERT_TRUE(obs::parsePerfGroupRead(words, 4, events, 1, out));
    EXPECT_EQ(out.valid, 0u);
    EXPECT_LT(out.llcMissBytes(), 0.0);
}

TEST(PerfCnt, DeltaFollowsLaterSampleMask)
{
    obs::PerfSample later;
    later.values[obs::kPerfCycles] = 500;
    later.valid = 1u << obs::kPerfCycles;
    // Empty accumulator as `earlier`: epoch-0 deltas must not blank.
    obs::PerfSample d = later.delta(obs::PerfSample{});
    EXPECT_TRUE(d.has(obs::kPerfCycles));
    EXPECT_DOUBLE_EQ(d.value(obs::kPerfCycles), 500.0);

    obs::PerfSample earlier;
    earlier.values[obs::kPerfCycles] = 200;
    earlier.valid = 1u << obs::kPerfCycles;
    d = later.delta(earlier);
    EXPECT_DOUBLE_EQ(d.value(obs::kPerfCycles), 300.0);
}

TEST(PerfCnt, TotalsAccumulateAcrossThreads)
{
    obs::PerfTotals totals;
    obs::PerfSample a;
    a.values[obs::kPerfCycles] = 100;
    a.valid = 1u << obs::kPerfCycles;
    obs::PerfSample b;
    b.values[obs::kPerfCycles] = 50;
    b.values[obs::kPerfLlcMisses] = 4;
    b.valid = (1u << obs::kPerfCycles) | (1u << obs::kPerfLlcMisses);
    totals.add(a);
    totals.add(b);
    obs::PerfSample snap = totals.snapshot();
    EXPECT_DOUBLE_EQ(snap.value(obs::kPerfCycles), 150.0);
    EXPECT_DOUBLE_EQ(snap.value(obs::kPerfLlcMisses), 4.0);
    EXPECT_DOUBLE_EQ(snap.llcMissBytes(), 4.0 * obs::kCacheLineBytes);
    totals.reset();
    EXPECT_EQ(totals.snapshot().valid, 0u);
}

TEST(Rapl, ParseMicrojoulesIsStrict)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(obs::RaplReader::parseMicrojoules("12345\n", v));
    EXPECT_EQ(v, 12345u);
    EXPECT_TRUE(obs::RaplReader::parseMicrojoules("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_FALSE(obs::RaplReader::parseMicrojoules("", v));
    EXPECT_FALSE(obs::RaplReader::parseMicrojoules("\n", v));
    EXPECT_FALSE(obs::RaplReader::parseMicrojoules("abc", v));
    EXPECT_FALSE(obs::RaplReader::parseMicrojoules("12a4", v));
    EXPECT_FALSE(obs::RaplReader::parseMicrojoules("-5", v));
    EXPECT_FALSE(obs::RaplReader::parseMicrojoules(" 12", v));
}

TEST(Rapl, MissingRootIsUnavailable)
{
    obs::RaplReader reader("/nonexistent/spg-rapl-test");
    EXPECT_FALSE(reader.available());
    EXPECT_EQ(reader.domainCount(), 0);
    EXPECT_DOUBLE_EQ(reader.totalJoules(), 0.0);
}

TEST(Rapl, GarbledEnergyFileDropsTheDomain)
{
    auto root = makeRaplRoot("garbled", "not-a-number\n", "1000000");
    obs::RaplReader reader(root.string());
    EXPECT_FALSE(reader.available());
    std::filesystem::remove_all(root);
}

TEST(Rapl, AccumulatesDeltasAcrossReads)
{
    auto root = makeRaplRoot("accum", "1000000\n", "1000000000000\n");
    obs::RaplReader reader(root.string());
    ASSERT_TRUE(reader.available());
    EXPECT_EQ(reader.domainCount(), 1);
    EXPECT_DOUBLE_EQ(reader.totalJoules(), 0.0);
    writeFile(root / "intel-rapl:0" / "energy_uj", "3500000\n");
    EXPECT_NEAR(reader.totalJoules(), 2.5, 1e-9);
    std::filesystem::remove_all(root);
}

TEST(Rapl, WraparoundUsesMaxEnergyRange)
{
    // Counter wraps at 10 J: 9 J -> 2 J reads as 1 J to the top plus
    // 2 J after the wrap = 3 J consumed.
    auto root = makeRaplRoot("wrap", "9000000\n", "10000000\n");
    obs::RaplReader reader(root.string());
    ASSERT_TRUE(reader.available());
    writeFile(root / "intel-rapl:0" / "energy_uj", "2000000\n");
    EXPECT_NEAR(reader.totalJoules(), 3.0, 1e-9);
    std::filesystem::remove_all(root);
}

TEST(Rapl, UnknownRangeDropsWrapDelta)
{
    auto root = makeRaplRoot("norange", "9000000\n", "");
    obs::RaplReader reader(root.string());
    ASSERT_TRUE(reader.available());
    writeFile(root / "intel-rapl:0" / "energy_uj", "2000000\n");
    // Backwards jump with no wrap bound: the delta is unknowable and
    // must be dropped, not guessed.
    EXPECT_DOUBLE_EQ(reader.totalJoules(), 0.0);
    writeFile(root / "intel-rapl:0" / "energy_uj", "5000000\n");
    EXPECT_NEAR(reader.totalJoules(), 3.0, 1e-9);
    std::filesystem::remove_all(root);
}

TEST(Affinity, PlacementFunction)
{
    using spg::AffinityPolicy;
    // Participant 0 is the dispatching caller — never pinned.
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Compact, 0, 4, 8), -1);
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::None, 1, 4, 8), -1);
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Compact, 1, 4, 0), -1);
    // Compact: consecutive participants on consecutive cpus.
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Compact, 1, 4, 8), 1);
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Compact, 3, 4, 8), 3);
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Compact, 9, 4, 8), 1);
    // Scatter: 4 participants on 8 cpus stride by 2.
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Scatter, 1, 4, 8), 2);
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Scatter, 2, 4, 8), 4);
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Scatter, 3, 4, 8), 6);
    // More participants than cpus degenerates to compact.
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Scatter, 1, 8, 4), 1);
    // Single-cpu host: everything lands on cpu 0.
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Compact, 1, 2, 1), 0);
    EXPECT_EQ(affinityCpuFor(AffinityPolicy::Scatter, 1, 2, 1), 0);
}

TEST(Affinity, EnvParsing)
{
    ASSERT_EQ(setenv("SPG_AFFINITY", "compact", 1), 0);
    EXPECT_EQ(affinityFromEnv(), AffinityPolicy::Compact);
    ASSERT_EQ(setenv("SPG_AFFINITY", "scatter", 1), 0);
    EXPECT_EQ(affinityFromEnv(), AffinityPolicy::Scatter);
    ASSERT_EQ(setenv("SPG_AFFINITY", "none", 1), 0);
    EXPECT_EQ(affinityFromEnv(), AffinityPolicy::None);
    ASSERT_EQ(setenv("SPG_AFFINITY", "garbage", 1), 0);
    EXPECT_EQ(affinityFromEnv(), AffinityPolicy::None);
    ASSERT_EQ(unsetenv("SPG_AFFINITY"), 0);
    EXPECT_EQ(affinityFromEnv(), AffinityPolicy::None);
}

TEST(Affinity, PoolRecordsPinnedCpus)
{
    ASSERT_EQ(setenv("SPG_AFFINITY", "compact", 1), 0);
    {
        ThreadPool pool(2);
        EXPECT_EQ(pool.affinity(), AffinityPolicy::Compact);
        // Drive one region so worker slots are live, then check the
        // recorded placement: each pinned worker must sit where the
        // placement function said (pinning may legitimately fail on
        // restricted hosts, recorded as -1 — never a wrong cpu).
        std::atomic<int> sink{0};
        pool.parallelFor(64, [&](std::int64_t, std::int64_t, int) {
            sink.fetch_add(1, std::memory_order_relaxed);
        });
        PoolStats stats = pool.stats();
        int ncpus =
            static_cast<int>(std::thread::hardware_concurrency());
        for (std::size_t w = 1; w < stats.workers.size(); ++w) {
            int expect = affinityCpuFor(AffinityPolicy::Compact,
                                        static_cast<int>(w),
                                        pool.threads(), ncpus);
            EXPECT_TRUE(stats.workers[w].cpu == -1 ||
                        stats.workers[w].cpu == expect)
                << "worker " << w << " pinned to "
                << stats.workers[w].cpu << ", expected " << expect;
        }
    }
    ASSERT_EQ(unsetenv("SPG_AFFINITY"), 0);
}

TEST(Affinity, UnpinnedByDefault)
{
    ThreadPool pool(2);
    EXPECT_EQ(pool.affinity(), AffinityPolicy::None);
    PoolStats stats = pool.stats();
    for (const PoolStats::Worker &w : stats.workers)
        EXPECT_EQ(w.cpu, -1);
}

/**
 * Soft gate (ISSUE 9f): on hosts with working counters, the measured
 * DRAM traffic of the GEMM engine on Table-1 ID 0 must land within 2x
 * of the simcpu traffic model. Skips (never fails) without perf
 * access or when the LLC-miss event did not open.
 */
TEST(PerfCnt, MeasuredTrafficWithin2xOfModel)
{
    if (!obs::perfEnabled())
        GTEST_SKIP() << "no perf_event access on this host";
    obs::PerfSample probe = obs::perfReadThread();
    if (!probe.has(obs::kPerfLlcMisses))
        GTEST_SKIP() << "LLC-miss counter did not open";

    const Table1Entry &entry = table1Convolutions()[0];
    const ConvSpec &spec = entry.spec;
    const std::int64_t batch = 4;
    auto engine = makeEngine("parallel-gemm");
    ASSERT_NE(engine, nullptr);

    Rng rng(0xBEEF);
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor weights(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    in.fillUniform(rng);
    weights.fillUniform(rng, -0.5f, 0.5f);

    ThreadPool pool(1);
    engine->forward(spec, in, weights, out, pool);  // warm caches
    const int reps = 5;
    obs::PerfSample own0 = obs::perfReadThread();
    obs::PerfSample pool0 = pool.perfTotals();
    for (int r = 0; r < reps; ++r)
        engine->forward(spec, in, weights, out, pool);
    obs::PerfSample d = obs::perfReadThread().delta(own0);
    d.accumulate(pool.perfTotals().delta(pool0));
    double measured = d.llcMissBytes() / reps;
    if (measured <= 0)
        GTEST_SKIP() << "LLC-miss counter returned no data";

    SimResult modeled = modelConvPhase(MachineModel::xeonE5_2650(),
                                       spec, Phase::Forward,
                                       "parallel-gemm", batch,
                                       pool.threads());
    ASSERT_GT(modeled.total_bytes, 0.0);
    double ratio = measured / modeled.total_bytes;
    EXPECT_GE(ratio, 0.5) << "measured " << measured << " modeled "
                          << modeled.total_bytes;
    EXPECT_LE(ratio, 2.0) << "measured " << measured << " modeled "
                          << modeled.total_bytes;
}
