/**
 * @file
 * Tests for the performance characterization (perf) and the multicore
 * performance model (simcpu): region classification, AIT-per-core
 * properties, roofline behaviour and the paper-shape invariants the
 * figures depend on.
 */

#include <gtest/gtest.h>

#include "data/suites.hh"
#include "perf/region.hh"
#include "perf/roofline.hh"
#include "simcpu/conv_model.hh"

namespace spg {
namespace {

TEST(Region, Table1RegionPairsMatchPaper)
{
    for (const auto &entry : table1Convolutions()) {
        EXPECT_EQ(regionPair(entry.spec), entry.paper_region)
            << "ID " << entry.id;
    }
}

TEST(Region, ThresholdBoundaries)
{
    RegionThresholds t;
    ConvSpec high = ConvSpec::square(32, 1024, 64, 3);
    ConvSpec mid = ConvSpec::square(32, 512, 64, 3);
    ConvSpec low = ConvSpec::square(32, 127, 64, 3);
    EXPECT_EQ(classifyRegion(high, 0.0, t), Region::R0);
    EXPECT_EQ(classifyRegion(high, 0.9, t), Region::R1);
    EXPECT_EQ(classifyRegion(mid, 0.0, t), Region::R2);
    EXPECT_EQ(classifyRegion(mid, 0.9, t), Region::R3);
    EXPECT_EQ(classifyRegion(low, 0.0, t), Region::R4);
    EXPECT_EQ(classifyRegion(low, 0.9, t), Region::R5);
    // The sparse threshold is inclusive.
    EXPECT_EQ(classifyRegion(mid, t.sparse_threshold, t), Region::R3);
}

TEST(Region, RecommendationsFollowPaperRules)
{
    ConvSpec small = ConvSpec::square(28, 20, 1, 5);
    ConvSpec mid = ConvSpec::square(64, 250, 120, 5);
    ConvSpec big = ConvSpec::square(64, 1024, 512, 2);

    EXPECT_EQ(recommendTechniques(small, 0.0).fp, "stencil");
    EXPECT_EQ(recommendTechniques(mid, 0.0).fp, "gemm-in-parallel");
    EXPECT_EQ(recommendTechniques(big, 0.0).fp, "parallel-gemm");
    EXPECT_EQ(recommendTechniques(mid, 0.85).bp, "sparse");
    EXPECT_EQ(recommendTechniques(mid, 0.5).bp, "gemm-in-parallel");
    EXPECT_EQ(recommendTechniques(big, 0.5).bp, "parallel-gemm");
}

TEST(Roofline, AitPerCoreDropsForParallelGemmOnly)
{
    // The §3.2 core claim: partitioning one MM reduces per-core AIT;
    // running whole MMs per core does not.
    std::int64_t m = 256, n = 4096, k = 1152;
    double single = gemmInParallelAitPerCore(m, n, k);
    double prev = parallelGemmAitPerCore(m, n, k, 1);
    EXPECT_NEAR(prev, single, 1e-9);
    for (int p : {2, 4, 8, 16}) {
        double ait = parallelGemmAitPerCore(m, n, k, p);
        EXPECT_LT(ait, prev) << p << " cores";
        prev = ait;
        EXPECT_NEAR(gemmInParallelAitPerCore(m, n, k), single, 1e-12);
    }
}

TEST(Roofline, SquareMmMatchesPaperExample)
{
    // Paper §3.2: square n x n MM has AIT 2n/3 on one core and n/2 on
    // two cores (row partition).
    std::int64_t n = 600;
    EXPECT_NEAR(parallelGemmAitPerCore(n, n, n, 1), 2.0 * n / 3, 1e-6);
    double two_core =
        gemmFlopsPerCore(n, n, n, 2) /
        gemmElementsPerCore(n, n, n, 2, GemmPartition::Rows);
    EXPECT_NEAR(two_core, n / 2.0, 1e-6);
}

TEST(Roofline, AttainablePerformance)
{
    // Memory-bound region scales with AIT; compute-bound clips.
    EXPECT_NEAR(rooflineGflops(1.0, 40.0, 8.0), 2.0, 1e-9);
    EXPECT_NEAR(rooflineGflops(10.0, 40.0, 8.0), 20.0, 1e-9);
    EXPECT_NEAR(rooflineGflops(1000.0, 40.0, 8.0), 40.0, 1e-9);
}

TEST(Machine, EffectivePeakAndBandwidthSharing)
{
    MachineModel m = MachineModel::xeonE5_2650();
    EXPECT_EQ(m.physical_cores, 16);
    EXPECT_NEAR(m.effectivePeakPerCore(1), m.peak_gflops_per_core, 1e-9);
    EXPECT_NEAR(m.effectivePeakPerCore(16), m.peak_gflops_per_core, 1e-9);
    // SMT: 32 logical cores share the 16 physical pipelines.
    EXPECT_NEAR(m.effectivePeakPerCore(32),
                m.peak_gflops_per_core / 2, 1e-9);
    // One core cannot draw the whole socket bandwidth.
    EXPECT_LE(m.bandwidthPerCore(1), m.per_core_bw_gbs + 1e-9);
    EXPECT_NEAR(m.bandwidthPerCore(16), m.dram_bw_gbs / 16, 1e-9);
}

TEST(Machine, SkinnyGemmEfficiencyShrinksWithDimensions)
{
    MachineModel m = MachineModel::xeonE5_2650();
    double big = m.gemmEfficiency(1024, 4096, 1024);
    double skinny_m = m.gemmEfficiency(8, 4096, 1024);
    double skinny_k = m.gemmEfficiency(1024, 4096, 16);
    EXPECT_GT(big, 0.6);
    EXPECT_LT(skinny_m, big / 2);
    EXPECT_LT(skinny_k, big / 2);
}

TEST(Simulate, ComputeAndMemoryBounds)
{
    MachineModel m = MachineModel::xeonE5_2650();
    m.fork_join_s = 0;
    // Pure compute task on one core.
    SimTask compute;
    compute.flops = m.peak_gflops_per_core * 1e9;  // one second of work
    compute.efficiency = 1.0;
    SimResult r = simulate(m, {{compute}});
    EXPECT_NEAR(r.seconds, 1.0, 1e-9);
    EXPECT_NEAR(r.gflopsPerCore(), m.peak_gflops_per_core, 1e-6);

    // Pure memory task: bandwidth-limited.
    SimTask memory;
    memory.bytes = m.bandwidthPerCore(1) * 1e9;
    r = simulate(m, {{memory}});
    EXPECT_NEAR(r.seconds, 1.0, 1e-9);
}

TEST(Simulate, SlowestCoreDominates)
{
    MachineModel m = MachineModel::xeonE5_2650();
    m.fork_join_s = 0;
    SimTask small;
    small.flops = 1e9;
    small.efficiency = 1.0;
    SimTask big = small;
    big.flops = 4e9;
    SimResult r = simulate(m, {{small}, {big}, {small}});
    SimResult r_big = simulate(m, {{big}});
    // Adding fast cores does not beat the slowest stream, but the
    // parallel run is no slower than the big task alone at the same
    // bandwidth share... the big stream bounds the wall clock.
    EXPECT_GE(r.seconds, r_big.seconds - 1e-12);
    EXPECT_EQ(r.cores, 3);
}

TEST(Simulate, UniformDistributesRoundRobin)
{
    MachineModel m = MachineModel::xeonE5_2650();
    m.fork_join_s = 0;
    SimTask t;
    t.flops = 1e9;
    t.efficiency = 1.0;
    // 5 tasks on 4 cores: slowest core runs 2 -> 2x single-task time.
    SimResult one = simulateUniform(m, t, 1, 1);
    SimResult five = simulateUniform(m, t, 5, 4);
    EXPECT_NEAR(five.seconds, 2 * one.seconds, 1e-9);
    EXPECT_EQ(five.cores, 4);
    // Goodput defaults to total flops.
    EXPECT_NEAR(five.useful_flops, 5e9, 1);
}

TEST(Simulate, ScheduledChargesMeasuredChunkMap)
{
    MachineModel m = MachineModel::xeonE5_2650();
    m.fork_join_s = 0;
    SimTask t;
    t.flops = 1e9;
    t.efficiency = 1.0;
    // Measured 48/16 skew over 2 workers, scaled to 64 tasks: the
    // loaded core runs 48 -> 1.5x the even split's 32.
    SimResult even = simulateUniform(m, t, 64, 2);
    SimResult skew = simulateScheduled(m, t, 64, {48, 16});
    EXPECT_NEAR(skew.seconds / even.seconds, 1.5, 1e-9);
    EXPECT_EQ(skew.cores, 2);
    EXPECT_NEAR(skew.total_flops, even.total_flops, 1);

    // Idle workers still occupy streams: a 3-entry map with one zero
    // keeps 3 cores' bandwidth sharing but loads only two.
    SimResult lopsided = simulateScheduled(m, t, 64, {32, 32, 0});
    EXPECT_EQ(lopsided.cores, 3);

    // Largest-remainder rounding conserves the task count: 7 tasks
    // over weights {2, 1, 1} must sum to exactly 7 (4 + 1.75 + 1.75
    // floors to 3+1+1, the two 0.75 remainders get the leftovers).
    SimResult seven = simulateScheduled(m, t, 7, {2, 1, 1});
    EXPECT_NEAR(seven.total_flops, 7e9, 1);

    // An all-zero map (nothing measured) falls back to the even split.
    SimResult fallback = simulateScheduled(m, t, 64, {0, 0});
    EXPECT_NEAR(fallback.seconds, even.seconds, 1e-12);
}

TEST(ConvModel, PhaseModelConsumesMeasuredSchedule)
{
    // The tuner's measured chunk map must reach the image-parallel
    // engine models: a maximally skewed schedule (everything on one
    // worker) has to cost ~cores x the even split, while Parallel-GEMM
    // (which partitions one MM, not images) ignores the map.
    MachineModel m = MachineModel::xeonE5_2650();
    m.fork_join_s = 0;
    ConvSpec spec = ConvSpec::square(32, 250, 120, 5);
    std::int64_t batch = 16;
    int cores = 4;
    std::vector<std::int64_t> all_on_one = {16, 0, 0, 0};

    const std::pair<const char *, Phase> image_parallel[] = {
        {"gemm-in-parallel", Phase::Forward},
        {"stencil", Phase::Forward},
        {"sparse", Phase::BackwardData}};
    for (auto [engine, phase] : image_parallel) {
        double sparsity = phase == Phase::Forward ? 0.0 : 0.5;
        SimResult even = modelConvPhase(m, spec, phase, engine, batch,
                                        cores, sparsity);
        SimResult skew = modelConvPhase(m, spec, phase, engine, batch,
                                        cores, sparsity, &all_on_one);
        EXPECT_GT(skew.seconds, 2.0 * even.seconds) << engine;
    }

    SimResult pg_even = modelConvPhase(m, spec, Phase::Forward,
                                       "parallel-gemm", batch, cores, 0.0);
    SimResult pg_skew =
        modelConvPhase(m, spec, Phase::Forward, "parallel-gemm", batch,
                       cores, 0.0, &all_on_one);
    EXPECT_NEAR(pg_skew.seconds, pg_even.seconds, 1e-12);
}

TEST(ConvModel, ParallelGemmPerCorePerfDegradesWithCores)
{
    // The Fig. 3a shape: per-core GFlops at 16 cores is well below
    // 1-core for the low/moderate-AIT Table 1 convolutions.
    MachineModel m = MachineModel::xeonE5_2650();
    for (int id : {0, 2, 3}) {
        const auto &entry = table1Convolutions()[id];
        PhaseMm mm = phaseMm(entry.spec, Phase::Forward);
        double one =
            modelParallelGemmMm(m, mm.m, mm.n, mm.k, 1).gflopsPerCore();
        double sixteen =
            modelParallelGemmMm(m, mm.m, mm.n, mm.k, 16).gflopsPerCore();
        EXPECT_LT(sixteen, 0.6 * one) << "ID " << entry.id;
    }
    // ID 1 (region 0) keeps scaling much better.
    const auto &big = table1Convolutions()[1];
    PhaseMm mm = phaseMm(big.spec, Phase::Forward);
    double one = modelParallelGemmMm(m, mm.m, mm.n, mm.k, 1)
                     .gflopsPerCore();
    double sixteen = modelParallelGemmMm(m, mm.m, mm.n, mm.k, 16)
                         .gflopsPerCore();
    EXPECT_GT(sixteen, 0.7 * one);
}

TEST(ConvModel, GemmInParallelPerCorePerfStaysFlat)
{
    // The Fig. 4a shape: <15% drop from 1 to 16 cores.
    MachineModel m = MachineModel::xeonE5_2650();
    for (const auto &entry : table1Convolutions()) {
        PhaseMm mm = phaseMm(entry.spec, Phase::Forward);
        double one = modelGemmInParallelMm(m, mm.m, mm.n, mm.k, 64, 1)
                         .gflopsPerCore();
        double sixteen =
            modelGemmInParallelMm(m, mm.m, mm.n, mm.k, 64, 16)
                .gflopsPerCore();
        EXPECT_GT(sixteen, 0.85 * one) << "ID " << entry.id;
    }
}

TEST(ConvModel, StencilWinsOnlyForFewFeatures)
{
    // The Fig. 4d shape: stencil beats GEMM-in-Parallel for < 128
    // output features and loses for large feature counts.
    MachineModel m = MachineModel::xeonE5_2650();
    auto speedup = [&](const ConvSpec &spec) {
        double gemm = modelConvPhase(m, spec, Phase::Forward,
                                     "gemm-in-parallel", 64, 16)
                          .seconds;
        double stencil =
            modelConvPhase(m, spec, Phase::Forward, "stencil", 64, 16)
                .seconds;
        return gemm / stencil;
    };
    EXPECT_GT(speedup(table1Convolutions()[0].spec), 1.0);  // Nf=32
    EXPECT_GT(speedup(table1Convolutions()[5].spec), 1.0);  // Nf=64
    EXPECT_LT(speedup(table1Convolutions()[1].spec), 1.0);  // Nf=1024
    EXPECT_LT(speedup(table1Convolutions()[4].spec), 1.0);  // Nf=512
}

TEST(ConvModel, SparseCrossoverNearPaperThreshold)
{
    // The Fig. 4f shape: the sparse BP kernel loses when dense and
    // wins by >= 3x at 90% sparsity.
    MachineModel m = MachineModel::xeonE5_2650();
    for (const auto &entry : table1Convolutions()) {
        auto ratio = [&](double sparsity) {
            double gemm = 0, sparse = 0;
            for (Phase phase :
                 {Phase::BackwardData, Phase::BackwardWeights}) {
                gemm += modelConvPhase(m, entry.spec, phase,
                                       "gemm-in-parallel", 64, 16,
                                       sparsity)
                            .seconds;
                sparse += modelConvPhase(m, entry.spec, phase, "sparse",
                                         64, 16, sparsity)
                              .seconds;
            }
            return gemm / sparse;
        };
        EXPECT_LT(ratio(0.0), 1.5) << "ID " << entry.id;
        EXPECT_GT(ratio(0.9), 3.0) << "ID " << entry.id;
        // Monotone improvement with sparsity until transform-bound.
        EXPECT_GT(ratio(0.9), ratio(0.5)) << "ID " << entry.id;
    }
}

TEST(ConvModel, EncodeOnceSparseChargesEncodeTrafficOnce)
{
    // The encode-once engine pays the CT-CSR build in BP-data (the
    // fused builder trades the HWC staging round trip for a second
    // source read, so that phase models identically) and only the
    // fingerprint check + plan read in BP-weights. The traffic saving
    // only shows in modeled TIME when the phase is memory-bound, so we
    // require a strict win on at least one layer at extreme sparsity
    // and no regression anywhere.
    MachineModel m = MachineModel::xeonE5_2650();
    int strict_wins = 0;
    for (const auto &entry : table1Convolutions()) {
        for (double sparsity : {0.5, 0.9, 0.99}) {
            double d_plain =
                modelConvPhase(m, entry.spec, Phase::BackwardData,
                               "sparse", 64, 16, sparsity)
                    .seconds;
            double d_cached =
                modelConvPhase(m, entry.spec, Phase::BackwardData,
                               "sparse-cached", 64, 16, sparsity)
                    .seconds;
            EXPECT_DOUBLE_EQ(d_cached, d_plain) << "ID " << entry.id;

            double w_plain =
                modelConvPhase(m, entry.spec, Phase::BackwardWeights,
                               "sparse", 64, 16, sparsity)
                    .seconds;
            double w_cached =
                modelConvPhase(m, entry.spec, Phase::BackwardWeights,
                               "sparse-cached", 64, 16, sparsity)
                    .seconds;
            EXPECT_LE(w_cached, w_plain)
                << "ID " << entry.id << " s=" << sparsity;
            if (sparsity == 0.99 && w_cached < w_plain)
                ++strict_wins;
        }
    }
    EXPECT_GT(strict_wins, 0);
}

TEST(ConvModel, GoodputDropsAtExtremeSparsity)
{
    // The Fig. 4e shape: goodput holds to ~90% sparsity, then the
    // layout/CT-CSR transforms dominate and goodput falls.
    MachineModel m = MachineModel::xeonE5_2650();
    const auto &entry = table1Convolutions()[2];
    double at_half = modelConvPhase(m, entry.spec, Phase::BackwardData,
                                    "sparse", 64, 16, 0.5)
                         .goodput();
    double at_99 = modelConvPhase(m, entry.spec, Phase::BackwardData,
                                  "sparse", 64, 16, 0.99)
                       .goodput();
    EXPECT_LT(at_99, 0.7 * at_half);
}

TEST(ConvModel, LayerStepComposesPhases)
{
    MachineModel m = MachineModel::xeonE5_2650();
    ConvSpec spec = table2Layers("CIFAR-10")[0].spec;
    double fp = modelConvPhase(m, spec, Phase::Forward,
                               "gemm-in-parallel", 32, 8)
                    .seconds;
    double step = modelLayerStepSeconds(m, spec, "gemm-in-parallel",
                                        "gemm-in-parallel", 32, 8, 0.0);
    EXPECT_GT(step, fp / 32);  // per-image step includes BP
}


TEST(ConvModel, Fig8ShapeInvariants)
{
    // The Fig. 8 structure: every Table 2 layer gains from
    // GEMM-in-Parallel over Parallel-GEMM at 16 cores; the stencil
    // adds further speedup exactly on the small-feature CIFAR/MNIST
    // layers; the sparse BP kernel wins everywhere at 85% sparsity.
    MachineModel m = MachineModel::xeonE5_2650();
    for (const auto &entry : table2Layers()) {
        double fp_base = modelConvPhase(m, entry.spec, Phase::Forward,
                                        "parallel-gemm", 64, 16)
                             .seconds;
        double fp_gip = modelConvPhase(m, entry.spec, Phase::Forward,
                                       "gemm-in-parallel", 64, 16)
                            .seconds;
        EXPECT_GT(fp_base / fp_gip, 1.5)
            << entry.benchmark << " L" << entry.layer;

        double bp_base = 0, bp_sparse = 0;
        for (Phase phase :
             {Phase::BackwardData, Phase::BackwardWeights}) {
            bp_base += modelConvPhase(m, entry.spec, phase,
                                      "parallel-gemm", 64, 16, 0.85)
                           .seconds;
            bp_sparse += modelConvPhase(m, entry.spec, phase, "sparse",
                                        64, 16, 0.85)
                             .seconds;
        }
        EXPECT_GT(bp_base / bp_sparse, 2.0)
            << entry.benchmark << " L" << entry.layer;
    }

    // Stencil wins over GEMM-in-Parallel on the CIFAR and MNIST
    // layers (the paper's green bars).
    for (const char *bench : {"CIFAR-10", "MNIST"}) {
        for (const auto &entry : table2Layers(bench)) {
            double gip = modelConvPhase(m, entry.spec, Phase::Forward,
                                        "gemm-in-parallel", 64, 16)
                             .seconds;
            double stencil = modelConvPhase(m, entry.spec,
                                            Phase::Forward, "stencil",
                                            64, 16)
                                 .seconds;
            EXPECT_GT(gip / stencil, 1.2)
                << bench << " L" << entry.layer;
        }
    }
}

TEST(ConvModel, HostCalibratedModelIsSelfConsistent)
{
    MachineModel host = MachineModel::hostCalibrated(29.0);
    EXPECT_EQ(host.physical_cores, 1);
    // A large square GEMM should be predicted near the calibrated rate.
    SimResult r = modelGemmInParallelMm(host, 1024, 1024, 1024, 1, 1);
    EXPECT_NEAR(r.gflopsPerCore(), 29.0, 29.0 * 0.15);
}

} // namespace
} // namespace spg
