/**
 * @file
 * Tests for the encode-once sparse plan cache: hit/miss behaviour,
 * content-fingerprint staleness, invalidation, and the encoded plan's
 * fidelity to a direct CT-CSR build.
 */

#include <gtest/gtest.h>

#include "sparse/sparse_plan.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace spg {
namespace {

/** Fresh per-test cache: tests must not see each other's plans. */
class SparsePlanCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        SparsePlanCache::global().clear();
        SparsePlanCache::global().resetStats();
    }
    void TearDown() override { SparsePlanCache::global().clear(); }
};

Tensor
randomErrors(std::int64_t batch, std::int64_t c, std::int64_t h,
             std::int64_t w, double sparsity, std::uint64_t seed)
{
    Tensor t(Shape{batch, c, h, w});
    Rng rng(seed);
    t.fillUniform(rng);
    t.sparsify(rng, sparsity);
    return t;
}

TEST_F(SparsePlanCacheTest, SecondGetIsAHit)
{
    Tensor eo = randomErrors(3, 8, 5, 6, 0.7, 21);
    ThreadPool pool(2);
    auto &cache = SparsePlanCache::global();

    auto a = cache.get(eo.data(), 3, 8, 5, 6, 4, pool);
    auto b = cache.get(eo.data(), 3, 8, 5, 6, 4, pool);
    EXPECT_EQ(a.get(), b.get());  // same plan object, not a copy
    SparsePlanCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.encodes, 1);
    EXPECT_EQ(stats.hits, 1);
    EXPECT_GT(stats.encode_seconds, 0.0);
    EXPECT_EQ(cache.size(), 1u);
}

TEST_F(SparsePlanCacheTest, PlanMatchesDirectEncode)
{
    std::int64_t batch = 2, c = 12, h = 4, w = 7;
    Tensor eo = randomErrors(batch, c, h, w, 0.6, 22);
    ThreadPool pool(2);
    auto plan =
        SparsePlanCache::global().get(eo.data(), batch, c, h, w, 5, pool);

    ASSERT_EQ(plan->batch, batch);
    EXPECT_EQ(plan->rows, h * w);
    EXPECT_EQ(plan->cols, c);
    ASSERT_EQ(plan->images.size(), static_cast<std::size_t>(batch));
    std::int64_t nnz = 0;
    for (std::int64_t b = 0; b < batch; ++b) {
        auto direct = CtCsrMatrix::fromChw(eo.data() + b * c * h * w, c,
                                           h, w, 5);
        const CtCsrMatrix &cached = plan->images[b];
        ASSERT_EQ(cached.tileCount(), direct.tileCount()) << "image " << b;
        for (std::int64_t t = 0; t < direct.tileCount(); ++t) {
            EXPECT_EQ(cached.tile(t).rowPtr(), direct.tile(t).rowPtr());
            EXPECT_EQ(cached.tile(t).colIdx(), direct.tile(t).colIdx());
            EXPECT_EQ(cached.tile(t).vals(), direct.tile(t).vals());
        }
        nnz += direct.nnz();
    }
    EXPECT_EQ(plan->nnz(), nnz);
}

TEST_F(SparsePlanCacheTest, ContentChangeForcesReencode)
{
    Tensor eo = randomErrors(2, 6, 4, 4, 0.5, 23);
    ThreadPool pool(2);
    auto &cache = SparsePlanCache::global();

    auto a = cache.get(eo.data(), 2, 6, 4, 4, 3, pool);
    a.reset();  // release so the cache may recycle the storage

    eo[0] = eo[0] == 0.0f ? 1.0f : 0.0f;  // flip one element in place
    auto b = cache.get(eo.data(), 2, 6, 4, 4, 3, pool);
    EXPECT_EQ(cache.stats().encodes, 2);
    EXPECT_EQ(cache.stats().hits, 0);
    auto direct = CtCsrMatrix::fromChw(eo.data(), 6, 4, 4, 3);
    EXPECT_EQ(b->images[0].nnz(), direct.nnz());
}

TEST_F(SparsePlanCacheTest, DifferentTileWidthsAreSeparatePlans)
{
    Tensor eo = randomErrors(1, 10, 3, 3, 0.4, 24);
    ThreadPool pool(1);
    auto &cache = SparsePlanCache::global();
    auto a = cache.get(eo.data(), 1, 10, 3, 3, 4, pool);
    auto b = cache.get(eo.data(), 1, 10, 3, 3, 10, pool);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->images[0].tileCount(), 3);
    EXPECT_EQ(b->images[0].tileCount(), 1);
    EXPECT_EQ(cache.stats().encodes, 2);
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(SparsePlanCacheTest, InvalidateDropsOnlyThatTensor)
{
    Tensor eo1 = randomErrors(1, 4, 3, 3, 0.5, 25);
    Tensor eo2 = randomErrors(1, 4, 3, 3, 0.5, 26);
    ThreadPool pool(1);
    auto &cache = SparsePlanCache::global();
    cache.get(eo1.data(), 1, 4, 3, 3, 2, pool);
    cache.get(eo2.data(), 1, 4, 3, 3, 2, pool);
    ASSERT_EQ(cache.size(), 2u);

    cache.invalidate(eo1.data());
    EXPECT_EQ(cache.size(), 1u);
    // eo2's plan survives: hit without a new encode.
    cache.get(eo2.data(), 1, 4, 3, 3, 2, pool);
    EXPECT_EQ(cache.stats().encodes, 2);
    EXPECT_EQ(cache.stats().hits, 1);
}

TEST_F(SparsePlanCacheTest, SharedPlanSurvivesInvalidation)
{
    // A consumer mid-replay keeps its plan alive through shared_ptr
    // ownership even if the cache entry is dropped underneath it.
    Tensor eo = randomErrors(1, 5, 4, 4, 0.5, 27);
    ThreadPool pool(1);
    auto &cache = SparsePlanCache::global();
    auto plan = cache.get(eo.data(), 1, 5, 4, 4, 5, pool);
    std::int64_t nnz = plan->nnz();
    cache.invalidate(eo.data());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(plan->nnz(), nnz);  // still fully readable
}

} // namespace
} // namespace spg
