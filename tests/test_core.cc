/**
 * @file
 * Tests for the spg-CNN core: the network-description parser and the
 * engine tuner/scheduler.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/net_config.hh"
#include "core/tuner.hh"
#include "data/suites.hh"

namespace spg {
namespace {

TEST(NetConfig, ParsesFullDescription)
{
    NetConfig config = parseNetConfig(cifar10NetConfigText());
    EXPECT_EQ(config.name, "cifar10");
    EXPECT_EQ(config.channels, 3);
    EXPECT_EQ(config.height, 36);
    EXPECT_EQ(config.width, 36);
    EXPECT_EQ(config.classes, 10);
    ASSERT_EQ(config.layers.size(), 8u);
    EXPECT_EQ(config.layers[0].kind, LayerKind::Conv);
    EXPECT_EQ(config.layers[0].features, 64);
    EXPECT_EQ(config.layers[0].kernel, 5);
    EXPECT_EQ(config.layers[0].name, "conv0");
    EXPECT_EQ(config.layers[2].kind, LayerKind::MaxPool);
    EXPECT_EQ(config.layers[2].stride, 4);
    EXPECT_EQ(config.layers[6].kind, LayerKind::Fc);
    EXPECT_EQ(config.layers[6].outputs, 10);
    EXPECT_EQ(config.layers[7].kind, LayerKind::Softmax);
}

TEST(NetConfig, CommentsAndWhitespace)
{
    NetConfig config = parseNetConfig(R"(
        # a comment
        name: "tiny"   # trailing comment
        input { channels: 1 height: 8 width: 8 }
        layer { type: conv features: 2 kernel: 3 }
    )");
    EXPECT_EQ(config.name, "tiny");
    ASSERT_EQ(config.layers.size(), 1u);
}

TEST(NetConfig, RoundTripsThroughRender)
{
    NetConfig config = parseNetConfig(mnistNetConfigText());
    std::string rendered = renderNetConfig(config);
    NetConfig again = parseNetConfig(rendered);
    EXPECT_EQ(again.name, config.name);
    EXPECT_EQ(again.layers.size(), config.layers.size());
    for (std::size_t i = 0; i < config.layers.size(); ++i) {
        EXPECT_EQ(again.layers[i].kind, config.layers[i].kind) << i;
        EXPECT_EQ(again.layers[i].features, config.layers[i].features);
        EXPECT_EQ(again.layers[i].kernel, config.layers[i].kernel);
        EXPECT_EQ(again.layers[i].stride, config.layers[i].stride);
    }
}

TEST(NetConfigDeath, RejectsMalformedInput)
{
    EXPECT_DEATH(parseNetConfig("layer { type: conv }"),
                 "input block missing");
    EXPECT_DEATH(parseNetConfig("input { channels: 1 height: 4 width: 4 "
                                "} layer { type: warp }"),
                 "unknown layer type");
    EXPECT_DEATH(parseNetConfig("input { channels: x height: 4 width: 4 "
                                "} layer { type: relu }"),
                 "expects an integer");
    EXPECT_DEATH(parseNetConfig("bogus: 3"), "unexpected token");
    EXPECT_DEATH(parseNetConfig("input { channels: 1 height: 4 width: 4 "
                                "}"),
                 "no layers");
}

TEST(Tuner, PicksSupportedEnginesForEveryPhase)
{
    TunerOptions opts;
    opts.reps = 1;
    opts.batch = 2;
    Tuner tuner(opts);
    ThreadPool pool(2);
    ConvSpec spec{12, 12, 3, 8, 3, 3, 1, 1};
    LayerPlan plan = tuner.tune(spec, 0.9, pool);

    EXPECT_FALSE(plan.fp_engine.empty());
    EXPECT_FALSE(plan.bp_data_engine.empty());
    EXPECT_FALSE(plan.bp_weights_engine.empty());
    EXPECT_NE(plan.fp_engine, "sparse");       // sparse is BP-only
    EXPECT_NE(plan.bp_data_engine, "stencil"); // stencil is FP-only
    EXPECT_DOUBLE_EQ(plan.tuned_sparsity, 0.9);

    // FP candidates: parallel-gemm, gemm-in-parallel, their packed
    // variants, stencil, and direct.
    EXPECT_EQ(plan.timings.at(Phase::Forward).size(), 6u);
    // BP candidates: parallel-gemm, gemm-in-parallel, the packed
    // variants, direct, sparse, and sparse-cached.
    EXPECT_EQ(plan.timings.at(Phase::BackwardData).size(), 7u);
    EXPECT_EQ(plan.timings.at(Phase::BackwardWeights).size(), 7u);
    for (const auto &[phase, timings] : plan.timings) {
        for (const auto &timing : timings)
            EXPECT_GT(timing.seconds, 0.0) << phaseName(phase);
    }
}

TEST(Tuner, ChoiceIsFastestMeasured)
{
    TunerOptions opts;
    opts.reps = 2;
    opts.batch = 2;
    Tuner tuner(opts);
    ThreadPool pool(1);
    ConvSpec spec{10, 10, 2, 4, 3, 3, 1, 1};
    LayerPlan plan = tuner.tune(spec, 0.5, pool);
    for (Phase phase :
         {Phase::Forward, Phase::BackwardData, Phase::BackwardWeights}) {
        const auto &timings = plan.timings.at(phase);
        double best = 1e30;
        std::string best_name;
        for (const auto &t : timings) {
            if (t.seconds < best) {
                best = t.seconds;
                best_name = t.engine;
            }
        }
        EXPECT_EQ(plan.enginesFor(phase), best_name) << phaseName(phase);
    }
}

TEST(Tuner, RetunePolicy)
{
    TunerOptions opts;
    opts.retune_interval = 2;
    opts.sparsity_drift = 0.1;
    Tuner tuner(opts);
    LayerPlan plan;
    plan.tuned_sparsity = 0.5;
    // Periodic re-tune on the interval.
    EXPECT_TRUE(tuner.shouldRetune(plan, 0.5, 2));
    EXPECT_FALSE(tuner.shouldRetune(plan, 0.5, 3));
    // Drift-triggered re-tune regardless of the epoch.
    EXPECT_TRUE(tuner.shouldRetune(plan, 0.75, 3));
    EXPECT_FALSE(tuner.shouldRetune(plan, 0.55, 1));
}

TEST(Tuner, RecordsScheduleTelemetry)
{
    TunerOptions opts;
    opts.reps = 1;
    opts.batch = 2;
    Tuner tuner(opts);
    ThreadPool pool(2);
    ConvSpec spec{10, 10, 2, 4, 3, 3, 1, 1};
    LayerPlan plan = tuner.tune(spec, 0.5, pool);
    for (const auto &[phase, timings] : plan.timings) {
        for (const auto &t : timings) {
            EXPECT_GE(t.imbalance, 1.0)
                << phaseName(phase) << " " << t.engine;
            ASSERT_EQ(t.chunk_map.size(),
                      static_cast<std::size_t>(pool.threads()))
                << phaseName(phase) << " " << t.engine;
            std::int64_t items = 0;
            for (std::int64_t c : t.chunk_map)
                items += c;
            // The image-parallel engines dispatch one region per
            // batch, so their measurements must record a schedule;
            // parallel-gemm may run a tiny MM without the pool.
            if (t.engine.find("in-parallel") != std::string::npos ||
                t.engine.find("sparse") != std::string::npos ||
                t.engine == "stencil") {
                EXPECT_GT(items, 0)
                    << phaseName(phase) << " " << t.engine;
            }
        }
    }
}

TEST(Tuner, RetuneBpCarriesFpForward)
{
    TunerOptions opts;
    opts.reps = 1;
    opts.batch = 2;
    Tuner tuner(opts);
    ThreadPool pool(2);
    ConvSpec spec{12, 12, 3, 8, 3, 3, 1, 1};
    LayerPlan first = tuner.tune(spec, 0.0, pool);
    LayerPlan re = tuner.retuneBp(first, spec, 0.9, pool);

    // FP choice and measurements are carried forward, not re-measured.
    EXPECT_EQ(re.fp_engine, first.fp_engine);
    const auto &fp0 = first.timings.at(Phase::Forward);
    const auto &fp1 = re.timings.at(Phase::Forward);
    ASSERT_EQ(fp1.size(), fp0.size());
    for (std::size_t i = 0; i < fp0.size(); ++i) {
        EXPECT_EQ(fp1[i].engine, fp0[i].engine);
        EXPECT_DOUBLE_EQ(fp1[i].seconds, fp0[i].seconds);
    }

    // The BP phases ARE re-measured at the observed sparsity.
    EXPECT_DOUBLE_EQ(re.tuned_sparsity, 0.9);
    EXPECT_FALSE(re.bp_data_engine.empty());
    EXPECT_EQ(re.timings.at(Phase::BackwardData).size(),
              first.timings.at(Phase::BackwardData).size());
    EXPECT_EQ(re.timings.at(Phase::BackwardWeights).size(),
              first.timings.at(Phase::BackwardWeights).size());
}


TEST(Tuner, ExtensionsRespectGeometryGates)
{
    TunerOptions opts;
    opts.reps = 1;
    opts.batch = 2;
    opts.use_extensions = true;
    Tuner tuner(opts);
    ThreadPool pool(1);

    auto fp_engines = [&](const ConvSpec &spec) {
        LayerPlan plan = tuner.tune(spec, 0.0, pool);
        std::vector<std::string> names;
        for (const auto &t : plan.timings.at(Phase::Forward))
            names.push_back(t.engine);
        return names;
    };

    // 3x3 stride-1: winograd is a candidate.
    auto on3x3 = fp_engines(ConvSpec{10, 10, 2, 3, 3, 3, 1, 1});
    EXPECT_NE(std::find(on3x3.begin(), on3x3.end(), "winograd"),
              on3x3.end());
    EXPECT_NE(std::find(on3x3.begin(), on3x3.end(), "fft"),
              on3x3.end());

    // 5x5: winograd must be skipped, fft stays.
    auto on5x5 = fp_engines(ConvSpec{10, 10, 2, 3, 5, 5, 1, 1});
    EXPECT_EQ(std::find(on5x5.begin(), on5x5.end(), "winograd"),
              on5x5.end());
    EXPECT_NE(std::find(on5x5.begin(), on5x5.end(), "fft"),
              on5x5.end());
}

TEST(Suites, Table2GeometriesAreValid)
{
    EXPECT_EQ(table2Layers().size(), 12u);
    for (const auto &entry : table2Layers()) {
        EXPECT_TRUE(entry.spec.valid())
            << entry.benchmark << " L" << entry.layer;
    }
    EXPECT_EQ(table2Layers("MNIST").size(), 1u);
    EXPECT_EQ(table2Layers("ImageNet-22K").size(), 5u);
    EXPECT_DEATH(table2Layers("nope"), "unknown Table 2 benchmark");
}

TEST(Suites, Table1SpecsAreValid)
{
    EXPECT_EQ(table1Convolutions().size(), 6u);
    for (const auto &entry : table1Convolutions())
        EXPECT_TRUE(entry.spec.valid()) << entry.id;
}

} // namespace
} // namespace spg
