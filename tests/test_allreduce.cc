/**
 * @file
 * Tests for the allreduce schedule simulator, the CT-CSR gradient
 * wire compressor and the bucketed exchange scheduler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "distrib/allreduce.hh"
#include "distrib/exchange_sched.hh"
#include "distrib/grad_compress.hh"

namespace spg {
namespace {

ClusterLink
testLink()
{
    ClusterLink link;
    link.bandwidth_gbs = 1.0;  // 1 GB/s: bytes -> ns in the head
    link.latency_s = 10e-6;
    return link;
}

TEST(Allreduce, RingStepCountAndPerStepBytes)
{
    ClusterLink link = testLink();
    for (int k : {2, 3, 4, 8}) {
        AllreduceSchedule s =
            buildAllreduce(AllreduceAlgo::Ring, k, 4096.0, link);
        // Reduce-scatter + allgather: 2(K-1) serialized steps of
        // payload/K bytes each.
        ASSERT_EQ(s.steps.size(), static_cast<std::size_t>(2 * (k - 1)))
            << k;
        for (const AllreduceStep &st : s.steps) {
            EXPECT_DOUBLE_EQ(st.link_bytes, 4096.0 / k);
            EXPECT_DOUBLE_EQ(st.seconds,
                             link.transferSeconds(4096.0 / k));
        }
    }
}

TEST(Allreduce, TreeStepCountAndPerStepBytes)
{
    ClusterLink link = testLink();
    struct Case
    {
        int workers;
        int rounds;  // ceil(log2 K)
    } cases[] = {{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {16, 4}};
    for (const Case &c : cases) {
        AllreduceSchedule s =
            buildAllreduce(AllreduceAlgo::Tree, c.workers, 4096.0, link);
        // Binomial reduce + broadcast: 2 ceil(log2 K) steps moving
        // the FULL payload each.
        ASSERT_EQ(s.steps.size(),
                  static_cast<std::size_t>(2 * c.rounds))
            << c.workers;
        for (const AllreduceStep &st : s.steps)
            EXPECT_DOUBLE_EQ(st.link_bytes, 4096.0);
    }
}

TEST(Allreduce, SingleWorkerIsFree)
{
    ClusterLink link = testLink();
    for (AllreduceAlgo algo :
         {AllreduceAlgo::Ring, AllreduceAlgo::Tree}) {
        AllreduceSchedule s = buildAllreduce(algo, 1, 1e9, link);
        EXPECT_TRUE(s.steps.empty());
        EXPECT_DOUBLE_EQ(s.seconds(), 0.0);
        EXPECT_DOUBLE_EQ(s.linkBytes(), 0.0);
        EXPECT_DOUBLE_EQ(allreduceSeconds(algo, 1, 1e9, link), 0.0);
    }
}

TEST(Allreduce, RingWinsOnBandwidthTreeWinsOnLatency)
{
    ClusterLink link = testLink();
    // Large payload, many workers: ring ships 2(K-1)/K ~ 2x the
    // payload per link; tree ships 2 log2(K) times the payload.
    EXPECT_LT(allreduceSeconds(AllreduceAlgo::Ring, 16, 64e6, link),
              allreduceSeconds(AllreduceAlgo::Tree, 16, 64e6, link));
    // Tiny payload: latency dominates and tree's 2 log2(K) steps beat
    // ring's 2(K-1).
    EXPECT_LT(allreduceSeconds(AllreduceAlgo::Tree, 16, 16.0, link),
              allreduceSeconds(AllreduceAlgo::Ring, 16, 16.0, link));
}

TEST(Allreduce, ScheduleSecondsIsTheSerializedSum)
{
    ClusterLink link = testLink();
    AllreduceSchedule s =
        buildAllreduce(AllreduceAlgo::Ring, 4, 1 << 20, link);
    double sum = 0, bytes = 0;
    for (const AllreduceStep &st : s.steps) {
        sum += st.seconds;
        bytes += st.link_bytes;
    }
    EXPECT_DOUBLE_EQ(s.seconds(), sum);
    EXPECT_DOUBLE_EQ(s.linkBytes(), bytes);
}

TEST(Allreduce, NameParseRoundTrip)
{
    EXPECT_STREQ(allreduceAlgoName(AllreduceAlgo::Ring), "ring");
    EXPECT_STREQ(allreduceAlgoName(AllreduceAlgo::Tree), "tree");
    EXPECT_EQ(parseAllreduceAlgo("ring"), AllreduceAlgo::Ring);
    EXPECT_EQ(parseAllreduceAlgo("tree"), AllreduceAlgo::Tree);
}

TEST(AllreduceDeath, RejectsUnknownAlgo)
{
    EXPECT_DEATH(parseAllreduceAlgo("butterfly"), "allreduce");
}

std::vector<BucketTiming>
twoBuckets(double b0_bytes, double b1_bytes)
{
    // Bucket "late" is READY first (backprop visits the last layer
    // first); bucket "early" arrives at compute end.
    return {{"late", 1e-3, b0_bytes}, {"early", 4e-3, b1_bytes}};
}

TEST(Allreduce, OverlapHidesCommUnderCompute)
{
    ClusterLink link = testLink();
    double compute_end = 4e-3;
    ExchangeTimeline ovl = simulateExchange(
        twoBuckets(1e6, 1e4), compute_end, AllreduceAlgo::Ring, 4,
        link, /*overlap=*/true);
    ExchangeTimeline blk = simulateExchange(
        twoBuckets(1e6, 1e4), compute_end, AllreduceAlgo::Ring, 4,
        link, /*overlap=*/false);

    // Same wire time either way; overlap only moves it earlier.
    EXPECT_NEAR(ovl.commSeconds(), blk.commSeconds(), 1e-12);
    // Blocking serializes compute then comm.
    EXPECT_NEAR(blk.finish_s, compute_end + blk.commSeconds(), 1e-12);
    EXPECT_DOUBLE_EQ(blk.overlapFrac(), 0.0);
    // Overlap starts the early-ready bucket during backprop, so less
    // of the comm is exposed past compute end.
    EXPECT_LT(ovl.finish_s, blk.finish_s);
    EXPECT_GT(ovl.overlapFrac(), 0.0);
    EXPECT_LE(ovl.overlapFrac(), 1.0);
    EXPECT_GE(ovl.finish_s, compute_end);
}

TEST(Allreduce, SerializedLinkQueuesBuckets)
{
    ClusterLink link = testLink();
    std::vector<BucketTiming> buckets = {{"a", 0.0, 1e6},
                                         {"b", 0.0, 1e6}};
    ExchangeTimeline tl = simulateExchange(
        buckets, 5e-3, AllreduceAlgo::Ring, 4, link, true);
    ASSERT_EQ(tl.rows.size(), 2u);
    // Both ready at t=0, but one link: the second allreduce cannot
    // start before the first finishes.
    EXPECT_DOUBLE_EQ(tl.rows[0].start_s, 0.0);
    EXPECT_DOUBLE_EQ(tl.rows[1].start_s, tl.rows[0].finish_s);
}

TEST(Allreduce, NoCommTimelineIsPureCompute)
{
    ClusterLink link = testLink();
    ExchangeTimeline tl = simulateExchange(
        twoBuckets(1e6, 1e4), 4e-3, AllreduceAlgo::Ring, /*workers=*/1,
        link, true);
    EXPECT_DOUBLE_EQ(tl.commSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(tl.stepSeconds(), 4e-3);
    EXPECT_DOUBLE_EQ(tl.exposedSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(tl.overlapFrac(), 1.0);
}

TEST(GradCompress, ThresholdZeroRoundTripsExactly)
{
    GradCompressOptions opts;
    opts.mode = GradCompressOptions::Mode::Threshold;
    opts.threshold = 0;
    GradCompressor comp(opts);

    // Negative values, denormals, exact zeros and a padded tail (151
    // is not a multiple of any tile width).
    std::vector<float> grad(151);
    for (std::size_t i = 0; i < grad.size(); ++i)
        grad[i] = (i % 7 == 0) ? 0.0f
                               : (i % 2 ? -1.0f : 1.0f) *
                                     (0.25f * static_cast<float>(i));
    grad[3] = 1e-42f;    // positive denormal
    grad[5] = -1e-42f;   // negative denormal
    grad[9] = -3.75e-9f;

    GradMessage msg = comp.compress(0, 0, grad.data(), 151);
    EXPECT_TRUE(msg.sparse);
    std::vector<float> out(151, -7.0f);
    msg.decodeInto(out.data());
    for (std::size_t i = 0; i < grad.size(); ++i)
        EXPECT_EQ(out[i], grad[i]) << i;
    // Lossless: nothing dropped, so no residual accumulates.
    EXPECT_DOUBLE_EQ(comp.residualAbsSum(0, 0), 0.0);
}

TEST(GradCompress, DenseModeShipsEverything)
{
    GradCompressor comp(GradCompressOptions{});
    std::vector<float> grad = {1.0f, -2.0f, 0.0f, 0.5f};
    GradMessage msg = comp.compress(0, 0, grad.data(), 4);
    EXPECT_FALSE(msg.sparse);
    EXPECT_EQ(msg.nnz(), 4);
    EXPECT_DOUBLE_EQ(msg.wireBytes(), 16.0);
    EXPECT_DOUBLE_EQ(msg.denseBytes(), 16.0);
    std::vector<float> out(4);
    msg.decodeInto(out.data());
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], grad[i]);
}

TEST(GradCompress, ErrorFeedbackResidualConverges)
{
    // Aggressive threshold on a constant gradient: each step ships
    // whatever cleared the bar and banks the rest. The decoded stream
    // must track T*g with per-element error bounded by the residual
    // bound (tau + |g_i|), i.e. dropped mass is deferred, never lost.
    GradCompressOptions opts;
    opts.mode = GradCompressOptions::Mode::Threshold;
    opts.threshold = 0.1f;
    GradCompressor comp(opts);

    std::vector<float> grad = {0.004f, -0.03f, 0.5f, -0.0007f, 0.02f};
    const int kSteps = 200;
    std::vector<double> shipped(grad.size(), 0.0);
    std::vector<float> out(grad.size());
    for (int t = 0; t < kSteps; ++t) {
        GradMessage msg =
            comp.compress(0, 0, grad.data(),
                          static_cast<std::int64_t>(grad.size()));
        msg.decodeInto(out.data());
        for (std::size_t i = 0; i < out.size(); ++i)
            shipped[i] += out[i];
    }
    for (std::size_t i = 0; i < grad.size(); ++i) {
        double want = static_cast<double>(kSteps) * grad[i];
        EXPECT_NEAR(shipped[i], want,
                    opts.threshold + std::fabs(grad[i]) + 1e-4)
            << i;
    }
    // The bank itself stays bounded — it is a deferral, not a leak.
    EXPECT_LE(comp.residualAbsSum(0, 0),
              grad.size() * (opts.threshold + 0.5) + 1e-6);
}

TEST(GradCompress, TopKKeepsTheLargestMagnitudes)
{
    GradCompressOptions opts;
    opts.mode = GradCompressOptions::Mode::TopK;
    opts.topk_frac = 0.25;
    GradCompressor comp(opts);

    std::vector<float> grad(64, 0.001f);
    grad[5] = 9.0f;
    grad[17] = -8.0f;
    grad[40] = 7.0f;
    grad[63] = -6.0f;
    // ... and everything else is noise well below the top quartile.
    GradMessage msg = comp.compress(0, 0, grad.data(), 64);
    EXPECT_TRUE(msg.sparse);
    EXPECT_EQ(msg.nnz(), 16);  // ceil(0.25 * 64)
    std::vector<float> out(64);
    msg.decodeInto(out.data());
    EXPECT_EQ(out[5], 9.0f);
    EXPECT_EQ(out[17], -8.0f);
    EXPECT_EQ(out[40], 7.0f);
    EXPECT_EQ(out[63], -6.0f);
    // Dropped mass went to the residual, not the floor.
    EXPECT_GT(comp.residualAbsSum(0, 0), 0.0);
}

TEST(GradCompress, SparseWireUndercutsDenseAtHighSparsity)
{
    GradCompressOptions opts;
    opts.mode = GradCompressOptions::Mode::Threshold;
    opts.threshold = 0;
    GradCompressor comp(opts);

    // 95% exact zeros: 6B/nnz + headers must beat 4B/param.
    std::vector<float> grad(4096, 0.0f);
    for (std::size_t i = 0; i < grad.size(); i += 20)
        grad[i] = 1.0f + static_cast<float>(i);
    GradMessage msg = comp.compress(0, 0, grad.data(), 4096);
    EXPECT_LT(msg.wireBytes(), msg.denseBytes());
    EXPECT_LT(msg.wireBytes(), 0.25 * msg.denseBytes());
}

TEST(GradCompress, ResidualStreamsAreIndependent)
{
    GradCompressOptions opts;
    opts.mode = GradCompressOptions::Mode::Threshold;
    opts.threshold = 1.0f;
    GradCompressor comp(opts);
    std::vector<float> small = {0.3f, -0.3f};
    comp.compress(/*worker=*/0, /*bucket=*/0, small.data(), 2);
    comp.compress(/*worker=*/1, /*bucket=*/0, small.data(), 2);
    comp.compress(/*worker=*/0, /*bucket=*/1, small.data(), 2);
    EXPECT_NEAR(comp.residualAbsSum(0, 0), 0.6, 1e-6);
    EXPECT_NEAR(comp.residualAbsSum(1, 0), 0.6, 1e-6);
    EXPECT_NEAR(comp.residualAbsSum(0, 1), 0.6, 1e-6);
    EXPECT_DOUBLE_EQ(comp.residualAbsSum(1, 1), 0.0);
}

TEST(GradCompress, SpecParseNameRoundTrip)
{
    GradCompressOptions d = parseGradCompress("dense");
    EXPECT_FALSE(d.sparse());
    EXPECT_EQ(gradCompressName(d), "dense");

    GradCompressOptions t = parseGradCompress("threshold:0.001");
    EXPECT_EQ(t.mode, GradCompressOptions::Mode::Threshold);
    EXPECT_FLOAT_EQ(t.threshold, 0.001f);
    EXPECT_EQ(gradCompressName(t), "threshold:0.001");

    GradCompressOptions k = parseGradCompress("topk:0.05");
    EXPECT_EQ(k.mode, GradCompressOptions::Mode::TopK);
    EXPECT_DOUBLE_EQ(k.topk_frac, 0.05);
    EXPECT_EQ(gradCompressName(k), "topk:0.05");
}

TEST(GradCompressDeath, RejectsMalformedSpec)
{
    EXPECT_DEATH(parseGradCompress("quantize:8"), "grad-compress");
}

/** K disjoint per-worker gradient buffers for one bucket. */
struct FakeBucketData
{
    std::vector<std::vector<float>> per_worker;

    FakeBucketData(int workers, std::int64_t n, float scale)
    {
        per_worker.resize(workers);
        for (int w = 0; w < workers; ++w) {
            per_worker[w].resize(n);
            for (std::int64_t i = 0; i < n; ++i)
                per_worker[w][i] =
                    scale * static_cast<float>((w + 1) * (i % 13) -
                                               6 * (i % 5));
        }
    }

    GradBucket
    bucket(const std::string &label, double ready_s)
    {
        GradBucket b;
        b.label = label;
        b.params = static_cast<std::int64_t>(per_worker[0].size());
        b.ready_s = ready_s;
        for (auto &v : per_worker)
            b.worker_grads.push_back(v.data());
        return b;
    }
};

TEST(ExchangeSched, LosslessSparseMatchesDenseBitForBit)
{
    const int kWorkers = 4;
    ExchangeOptions dense_opts;
    dense_opts.workers = kWorkers;
    ExchangeOptions sparse_opts = dense_opts;
    sparse_opts.compress.mode = GradCompressOptions::Mode::Threshold;
    sparse_opts.compress.threshold = 0;

    FakeBucketData d0(kWorkers, 301, 0.125f), d1(kWorkers, 77, -0.5f);
    FakeBucketData s0 = d0, s1 = d1;  // identical starting gradients

    std::vector<GradBucket> db = {d0.bucket("conv1.g0", 1e-3),
                                  d1.bucket("fc1.g0", 2e-3)};
    std::vector<GradBucket> sb = {s0.bucket("conv1.g0", 1e-3),
                                  s1.bucket("fc1.g0", 2e-3)};
    ExchangeScheduler dense(dense_opts);
    ExchangeScheduler sparse(sparse_opts);
    ExchangeStats dstats = dense.exchange(db, 3e-3);
    ExchangeStats sstats = sparse.exchange(sb, 3e-3);

    // The averaged gradients must agree exactly, on every worker.
    for (int w = 0; w < kWorkers; ++w) {
        for (std::size_t i = 0; i < d0.per_worker[w].size(); ++i)
            EXPECT_EQ(d0.per_worker[w][i], s0.per_worker[w][i]);
        for (std::size_t i = 0; i < d1.per_worker[w].size(); ++i)
            EXPECT_EQ(d1.per_worker[w][i], s1.per_worker[w][i]);
    }
    // And every worker holds the same average.
    for (int w = 1; w < kWorkers; ++w)
        for (std::size_t i = 0; i < d0.per_worker[w].size(); ++i)
            EXPECT_EQ(d0.per_worker[0][i], d0.per_worker[w][i]);
    EXPECT_DOUBLE_EQ(dstats.dense_bytes, sstats.dense_bytes);
    EXPECT_EQ(dstats.params, sstats.params);
}

TEST(ExchangeSched, AveragesAcrossWorkers)
{
    ExchangeOptions opts;
    opts.workers = 2;
    FakeBucketData data(2, 8, 1.0f);
    std::vector<float> want(8);
    for (int i = 0; i < 8; ++i)
        want[i] = 0.5f * (data.per_worker[0][i] +
                          data.per_worker[1][i]);
    std::vector<GradBucket> buckets = {data.bucket("b", 0.0)};
    ExchangeScheduler sched(opts);
    sched.exchange(buckets, 1e-3);
    for (int w = 0; w < 2; ++w)
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(data.per_worker[w][i], want[i]) << w;
}

TEST(ExchangeSched, StatsPriceTheTimeline)
{
    ExchangeOptions opts;
    opts.workers = 4;
    opts.overlap = true;
    FakeBucketData data(4, 512, 0.25f);
    std::vector<GradBucket> buckets = {data.bucket("conv1.g0", 1e-3)};
    ExchangeScheduler sched(opts);
    ExchangeStats stats = sched.exchange(buckets, 2e-3);
    EXPECT_DOUBLE_EQ(stats.dense_bytes, 4.0 * 512);
    EXPECT_DOUBLE_EQ(stats.wire_bytes, 4.0 * 512);  // dense mode
    EXPECT_DOUBLE_EQ(stats.compressionRatio(), 1.0);
    EXPECT_EQ(stats.params, 512);
    EXPECT_GT(stats.timeline.commSeconds(), 0.0);
    EXPECT_GE(stats.timeline.stepSeconds(), 2e-3);
    EXPECT_GE(stats.timeline.overlapFrac(), 0.0);
    EXPECT_LE(stats.timeline.overlapFrac(), 1.0);
}

} // namespace
} // namespace spg
