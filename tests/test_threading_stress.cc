/**
 * @file
 * Stress and concurrency tests for the thread pool and engine scratch
 * management: many pools alive at once, rapid create/destroy cycles,
 * and heavy small-task churn — the patterns the tuner and trainer
 * produce.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "blas/gemm.hh"
#include "conv/engines.hh"
#include "threading/thread_pool.hh"
#include "util/random.hh"

namespace spg {
namespace {

TEST(ThreadPoolStress, ManyPoolsCoexist)
{
    std::vector<std::unique_ptr<ThreadPool>> pools;
    for (int i = 0; i < 8; ++i)
        pools.push_back(std::make_unique<ThreadPool>(3));
    std::atomic<long> total{0};
    for (auto &pool : pools) {
        pool->parallelFor(100, [&](std::int64_t b, std::int64_t e, int) {
            total.fetch_add(e - b);
        });
    }
    EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolStress, RapidCreateDestroy)
{
    for (int round = 0; round < 30; ++round) {
        ThreadPool pool(2 + round % 3);
        std::atomic<int> hits{0};
        pool.parallelForDynamic(17, [&](std::int64_t, int) {
            hits.fetch_add(1);
        });
        ASSERT_EQ(hits.load(), 17) << round;
    }
}

TEST(ThreadPoolStress, TinyTasksHighChurn)
{
    ThreadPool pool(4);
    long total = 0;
    std::vector<long> partial(pool.threads(), 0);
    for (int round = 0; round < 500; ++round) {
        pool.parallelFor(3, [&](std::int64_t b, std::int64_t e, int w) {
            partial[w] += e - b;
        });
    }
    for (long p : partial)
        total += p;
    EXPECT_EQ(total, 1500);
}

TEST(ThreadPoolStress, EngineScratchSurvivesPoolChurn)
{
    // Engines keep per-thread scratch; destroying pools between calls
    // must never corrupt results (fresh worker threads get fresh
    // scratch, the calling thread reuses its own).
    ConvSpec spec{12, 12, 3, 5, 3, 3, 1, 1};
    Rng rng(3);
    Tensor in(Shape{2, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    in.fillUniform(rng);
    w.fillUniform(rng);
    Tensor want(Shape{2, spec.nf, spec.outY(), spec.outX()});
    {
        ThreadPool pool(1);
        ReferenceEngine().forward(spec, in, w, want, pool);
    }
    auto engine = makeEngine("gemm-in-parallel");
    for (int round = 0; round < 10; ++round) {
        ThreadPool pool(1 + round % 4);
        Tensor out(Shape{2, spec.nf, spec.outY(), spec.outX()});
        engine->forward(spec, in, w, out, pool);
        ASSERT_TRUE(allClose(out, want, 1e-3f, 1e-4f)) << round;
    }
}

TEST(ThreadPoolStress, SharedPackedWeightsAcrossManyWorkers)
{
    // Read-only sharing of ONE packed weight buffer is the whole point
    // of GEMM-in-Parallel: many workers concurrently run sgemmPackedB
    // (and sgemmPackedA) against the same PackedMatrix, each against a
    // different B/C; every result must match the sequential answer.
    std::int64_t m = 23, n = 35, k = 67;
    Rng rng(17);
    Tensor a(Shape{m, k});
    a.fillUniform(rng);
    PackedMatrix pa =
        PackedMatrix::packA(Trans::No, m, k, 1.0f, a.data(), k);
    Tensor bshared(Shape{k, n});
    bshared.fillUniform(rng);
    PackedMatrix pb =
        PackedMatrix::packB(Trans::No, k, n, bshared.data(), n);

    constexpr int kJobs = 64;
    std::vector<Tensor> bs, as, want_a, want_b;
    for (int j = 0; j < kJobs; ++j) {
        // Per-job B against the one shared packed A...
        bs.emplace_back(Shape{k, n});
        bs.back().fillUniform(rng);
        want_a.emplace_back(Shape{m, n});
        sgemmPackedA(pa, Trans::No, n, bs.back().data(), n, 0.0f,
                     want_a.back().data(), n);
        // ...and per-job A against the one shared packed B.
        as.emplace_back(Shape{m, k});
        as.back().fillUniform(rng);
        want_b.emplace_back(Shape{m, n});
        sgemmPackedB(Trans::No, m, 1.0f, as.back().data(), k, pb, 0.0f,
                     want_b.back().data(), n);
    }

    ThreadPool pool(8);
    for (int round = 0; round < 5; ++round) {
        std::vector<Tensor> got_a, got_b;
        for (int j = 0; j < kJobs; ++j) {
            got_a.emplace_back(Shape{m, n});
            got_b.emplace_back(Shape{m, n});
        }
        pool.parallelForDynamic(kJobs, [&](std::int64_t j, int) {
            sgemmPackedA(pa, Trans::No, n, bs[j].data(), n, 0.0f,
                         got_a[j].data(), n);
            sgemmPackedB(Trans::No, m, 1.0f, as[j].data(), k, pb, 0.0f,
                         got_b[j].data(), n);
        });
        for (int j = 0; j < kJobs; ++j) {
            ASSERT_EQ(maxAbsDiff(got_a[j], want_a[j]), 0.0f)
                << "packedA round=" << round << " job=" << j;
            ASSERT_EQ(maxAbsDiff(got_b[j], want_b[j]), 0.0f)
                << "packedB round=" << round << " job=" << j;
        }
    }
}

TEST(ThreadPoolStress, AdversariallySkewedCostsUnderChurn)
{
    // Work stealing under a pathological cost distribution: each round
    // one rotating item costs orders of magnitude more than the rest.
    // Every item must still run exactly once, and the telemetry item
    // counts must reconcile with the iteration space.
    ThreadPool pool(4);
    PoolStats before = pool.stats();
    const std::int64_t n = 48;
    const int rounds = 25;
    for (int round = 0; round < rounds; ++round) {
        std::vector<std::atomic<int>> hits(n);
        pool.parallelForDynamic(n, [&](std::int64_t i, int) {
            if (i == round % n) {
                volatile long long waste = 0;
                for (int k = 0; k < 300000; ++k)
                    waste = waste + k;
            }
            hits[i].fetch_add(1);
        });
        for (std::int64_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "round=" << round;
    }
    PoolStats d = pool.stats().delta(before);
    EXPECT_EQ(d.regions, static_cast<std::uint64_t>(rounds));
    std::int64_t items = 0;
    for (const auto &w : d.workers)
        items += w.items;
    EXPECT_EQ(items, n * rounds);
}

TEST(ThreadPoolStress, NestedDataStructuresUnderDynamicScheduling)
{
    // Dynamic scheduling with per-worker accumulation: no lost or
    // double-counted items across many uneven rounds.
    ThreadPool pool(5);
    for (std::int64_t n : {1, 4, 5, 6, 99, 128}) {
        std::vector<std::vector<std::int64_t>> seen(pool.threads());
        pool.parallelForDynamic(n, [&](std::int64_t i, int w) {
            seen[w].push_back(i);
        });
        std::vector<char> hit(n, 0);
        std::int64_t count = 0;
        for (const auto &worker_items : seen) {
            for (std::int64_t i : worker_items) {
                ASSERT_GE(i, 0);
                ASSERT_LT(i, n);
                ASSERT_EQ(hit[i], 0) << "duplicate " << i;
                hit[i] = 1;
                ++count;
            }
        }
        EXPECT_EQ(count, n);
    }
}

} // namespace
} // namespace spg
