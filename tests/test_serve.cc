/**
 * @file
 * Serving-runtime tests.
 *
 * The serving contract is that a forward-only network is a drop-in
 * replica of its training twin: bit-for-bit identical activations
 * across every FP engine family and every coalesced batch size
 * (including sizes never seen at tune time), with all BP state shed.
 * On top of that sit the dynamic batcher (queue coalescing semantics),
 * the arena reservation (ragged batches without replanning), the
 * pruned-checkpoint bake, the per-bucket serving plans, and the
 * end-to-end server.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/net_config.hh"
#include "core/tuner.hh"
#include "data/synthetic.hh"
#include "nn/checkpoint.hh"
#include "nn/network.hh"
#include "serve/loadgen.hh"
#include "serve/queue.hh"
#include "serve/server.hh"
#include "threading/thread_pool.hh"
#include "util/random.hh"

using namespace spg;

namespace {

const char *kSmallNet = R"(
name: "serve-test"
input { channels: 2 height: 12 width: 12 classes: 4 }
layer { type: conv features: 4 kernel: 3 }
layer { type: relu }
layer { type: maxpool kernel: 2 stride: 2 }
layer { type: fc outputs: 4 }
layer { type: softmax }
)";

Tensor
randomBatch(std::int64_t batch, const Geometry &g, std::uint64_t seed)
{
    Tensor images(Shape{batch, g.c, g.h, g.w});
    Rng rng(seed);
    images.fillUniform(rng, -1.0f, 1.0f);
    return images;
}

void
expectBitEqual(const Tensor &a, const Tensor &b, const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::int64_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.data()[i], b.data()[i])
            << what << " diverged at flat index " << i;
}

void
deployFp(Network &net, const std::string &engine)
{
    for (ConvLayer *conv : net.convLayers()) {
        EngineAssignment a = conv->engines();
        a.fp = engine;
        conv->setEngines(a);
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Forward-only replicas: bit-for-bit against the training network for
// every FP engine family at batch sizes 1..9 (fused epilogues on).

TEST(ServeForward, InferenceMatchesTrainingAcrossEnginesAndBatches)
{
    const char *engines[] = {
        "parallel-gemm",          "gemm-in-parallel",
        "parallel-gemm-packed",   "gemm-in-parallel-packed",
        "stencil",                "direct",
        "sparse-weights",
    };
    NetConfig config = parseNetConfig(kSmallNet);
    ThreadPool pool(2);
    for (const char *engine : engines) {
        Network train_net(config, 7);
        Network serve_net(config, 7, /*inference_only=*/true);
        ASSERT_TRUE(serve_net.forwardOnly());
        ASSERT_FALSE(train_net.forwardOnly());
        deployFp(train_net, engine);
        deployFp(serve_net, engine);
        for (std::int64_t batch = 1; batch <= 9; ++batch) {
            Tensor images = randomBatch(
                batch, config.layers.empty()
                           ? Geometry{}
                           : train_net.inputGeometry(),
                100 + static_cast<std::uint64_t>(batch));
            const Tensor &expected = train_net.forward(images, pool);
            const Tensor &got = serve_net.forward(images, pool);
            expectBitEqual(got, expected,
                           std::string(engine) + " batch " +
                               std::to_string(batch));
        }
    }
}

// ---------------------------------------------------------------------------
// FP-only arena: no error buffers, strictly smaller footprint.

TEST(ServeArena, ForwardOnlyShedsBpState)
{
    NetConfig config = parseNetConfig(kSmallNet);
    ThreadPool pool(1);
    Network train_net(config, 3);
    Network serve_net(config, 3, /*inference_only=*/true);
    Tensor images = randomBatch(4, train_net.inputGeometry(), 5);
    train_net.forward(images, pool);
    serve_net.forward(images, pool);

    EXPECT_GT(train_net.errorBufferCount(), 0u);
    EXPECT_EQ(serve_net.errorBufferCount(), 0u);
    EXPECT_GT(train_net.arenaBytes(), 0);
    EXPECT_GT(serve_net.arenaBytes(), 0);
    EXPECT_LT(serve_net.arenaBytes(), train_net.arenaBytes());
}

TEST(ServeArenaDeath, TrainStepForbiddenOnForwardOnlyNetwork)
{
    NetConfig config = parseNetConfig(kSmallNet);
    // The whole statement runs in the death-test child so no pool
    // threads exist in the parent at fork time.
    auto run = [&config] {
        ThreadPool pool(1);
        Network serve_net(config, 3, /*inference_only=*/true);
        Tensor images = randomBatch(2, serve_net.inputGeometry(), 5);
        std::vector<int> labels{0, 1};
        serve_net.trainStep(images, labels, 0.1f, pool);
    };
    EXPECT_DEATH(run(), "forward-only");
}

// ---------------------------------------------------------------------------
// reserveBatch: one plan at max batch serves every ragged batch below
// it, bit-for-bit, without growing the arena.

TEST(ServeArena, ReserveBatchServesRaggedBatchesWithoutReplanning)
{
    NetConfig config = parseNetConfig(kSmallNet);
    ThreadPool pool(1);
    Network serve_net(config, 11, /*inference_only=*/true);
    serve_net.reserveBatch(9);
    std::int64_t planned_bytes = serve_net.arenaBytes();
    EXPECT_GT(planned_bytes, 0);

    for (std::int64_t batch : {1, 5, 9, 3, 8}) {
        Tensor images = randomBatch(
            batch, serve_net.inputGeometry(),
            40 + static_cast<std::uint64_t>(batch));
        const Tensor &got = serve_net.forward(images, pool);
        // The arena must not have been re-planned for the smaller
        // batch: the slabs keep their max-batch footprint.
        EXPECT_EQ(serve_net.arenaBytes(), planned_bytes)
            << "batch " << batch;
        // And the ragged-batch views must compute exactly what a
        // fresh identically-seeded network computes.
        Network fresh(config, 11, /*inference_only=*/true);
        const Tensor &expected = fresh.forward(images, pool);
        expectBitEqual(got, expected,
                       "ragged batch " + std::to_string(batch));
    }
}

// ---------------------------------------------------------------------------
// Pruned checkpoint into a forward-only net: mask baked into weights.

TEST(ServeCheckpoint, PruneMaskBakesIntoForwardOnlyLoad)
{
    NetConfig config = parseNetConfig(kSmallNet);
    ThreadPool pool(1);
    Network train_net(config, 13);
    auto convs = train_net.convLayers();
    ASSERT_FALSE(convs.empty());
    convs[0]->pruneToSparsity(0.5);
    ASSERT_FALSE(convs[0]->pruneMask()->empty());

    std::stringstream buf;
    saveCheckpoint(train_net, buf);

    Network serve_net(config, 99, /*inference_only=*/true);
    loadCheckpoint(serve_net, buf);

    auto serve_convs = serve_net.convLayers();
    // The mask is consumed by the load: weights carry the zeros.
    EXPECT_TRUE(serve_convs[0]->pruneMask()->empty());
    EXPECT_NEAR(serve_convs[0]->weightSparsity(), 0.5, 0.1);

    Tensor images = randomBatch(3, train_net.inputGeometry(), 21);
    const Tensor &expected = train_net.forward(images, pool);
    const Tensor &got = serve_net.forward(images, pool);
    expectBitEqual(got, expected, "pruned checkpoint serve");
}

// ---------------------------------------------------------------------------
// Queue semantics.

TEST(ServeQueue, CoalescesWhatIsQueuedUnderZeroBudget)
{
    serve::RequestQueue q(16);
    std::vector<serve::Request> reqs(5);
    for (auto &r : reqs) {
        r.submit_ns = serve::nowNs();
        ASSERT_TRUE(q.tryPush(&r));
    }
    std::vector<serve::Request *> out;
    EXPECT_EQ(q.popBatch(8, 0, out), 5u);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(ServeQueue, RespectsMaxBatch)
{
    serve::RequestQueue q(16);
    std::vector<serve::Request> reqs(5);
    for (auto &r : reqs) {
        r.submit_ns = serve::nowNs();
        ASSERT_TRUE(q.tryPush(&r));
    }
    std::vector<serve::Request *> out;
    EXPECT_EQ(q.popBatch(3, 0, out), 3u);
    EXPECT_EQ(out[0], &reqs[0]);  // FIFO
    EXPECT_EQ(q.popBatch(3, 0, out), 2u);
}

TEST(ServeQueue, BudgetTimeoutReturnsPartialBatch)
{
    serve::RequestQueue q(16);
    serve::Request r;
    r.submit_ns = serve::nowNs();
    ASSERT_TRUE(q.tryPush(&r));
    std::vector<serve::Request *> out;
    std::int64_t before = serve::nowNs();
    EXPECT_EQ(q.popBatch(8, 2'000'000 /* 2ms */, out), 1u);
    std::int64_t waited = serve::nowNs() - before;
    // Waited for batch-mates, but no longer than the budget (plus
    // generous scheduler slack).
    EXPECT_LT(waited, 500'000'000);
}

TEST(ServeQueue, RejectsWhenFullAndFailsAfterClose)
{
    serve::RequestQueue q(2);
    std::vector<serve::Request> reqs(3);
    for (auto &r : reqs)
        r.submit_ns = serve::nowNs();
    EXPECT_TRUE(q.tryPush(&reqs[0]));
    EXPECT_TRUE(q.tryPush(&reqs[1]));
    EXPECT_FALSE(q.tryPush(&reqs[2]));  // full

    std::vector<serve::Request *> out;
    q.close();
    EXPECT_FALSE(q.tryPush(&reqs[2]));   // closed
    EXPECT_EQ(q.popBatch(8, 0, out), 2u);  // drains the remainder
    EXPECT_EQ(q.popBatch(8, 0, out), 0u);  // closed and empty
}

// ---------------------------------------------------------------------------
// Serving buckets.

TEST(ServeBuckets, PowerOfTwoLadderCappedAtMaxBatch)
{
    EXPECT_EQ(Tuner::servingBuckets(8),
              (std::vector<std::int64_t>{1, 2, 4, 8}));
    EXPECT_EQ(Tuner::servingBuckets(6),
              (std::vector<std::int64_t>{1, 2, 4, 6}));
    EXPECT_EQ(Tuner::servingBuckets(1),
              (std::vector<std::int64_t>{1}));
}

TEST(ServeBuckets, BucketForBatchPicksSmallestCoveringBucket)
{
    ServingLayerPlan plan;
    plan.buckets = {1, 2, 4, 8};
    plan.fp_engines = {"a", "b", "c", "d"};
    EXPECT_EQ(plan.bucketForBatch(1), 0u);
    EXPECT_EQ(plan.bucketForBatch(2), 1u);
    EXPECT_EQ(plan.bucketForBatch(3), 2u);
    EXPECT_EQ(plan.bucketForBatch(5), 3u);
    EXPECT_EQ(plan.bucketForBatch(64), 3u);  // clamps to the largest
    EXPECT_EQ(plan.engineForBatch(3), "c");
}

// ---------------------------------------------------------------------------
// Serving-mode tuner: a plan per bucket, engines drawn from the
// FP-capable set.

TEST(ServeTuning, ServingPlanCoversEveryBucket)
{
    TunerOptions topts;
    topts.reps = 1;
    Tuner tuner(topts);
    ThreadPool pool(1);
    ConvSpec spec = ConvSpec::square(10, 4, 2, 3, 1);
    ServingLayerPlan plan =
        tuner.tuneServing(spec, 4, pool, /*fused_relu=*/true);
    ASSERT_EQ(plan.buckets, (std::vector<std::int64_t>{1, 2, 4}));
    ASSERT_EQ(plan.fp_engines.size(), 3u);
    ASSERT_EQ(plan.timings.size(), 3u);
    for (std::size_t b = 0; b < plan.buckets.size(); ++b) {
        EXPECT_FALSE(plan.fp_engines[b].empty());
        EXPECT_FALSE(plan.timings[b].empty());
        bool chosen_among_measured = false;
        for (const EngineTiming &t : plan.timings[b])
            if (t.engine == plan.fp_engines[b])
                chosen_among_measured = true;
        EXPECT_TRUE(chosen_among_measured) << "bucket " << b;
    }
}

// ---------------------------------------------------------------------------
// End-to-end server.

TEST(ServeServer, CompletesEveryAcceptedRequest)
{
    NetConfig config = parseNetConfig(kSmallNet);
    serve::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.batch_budget_ms = 1.0;
    sopts.queue_capacity = 64;
    sopts.threads_per_instance = 1;
    sopts.tune = false;
    serve::Server server(config, sopts);

    SyntheticSpec dspec;
    dspec.channels = config.channels;
    dspec.height = config.height;
    dspec.width = config.width;
    dspec.classes = static_cast<int>(config.classes);
    dspec.count = 8;
    Dataset dataset = makeSynthetic(dspec);

    server.start();
    serve::LoadGenOptions lopts;
    lopts.rate_qps = 200;
    lopts.duration_s = 0.2;
    lopts.slo_ms = 1000;
    serve::LoadGenResult res =
        serve::runOpenLoop(server, dataset, lopts);
    server.stop();

    EXPECT_GT(res.submitted, 0);
    EXPECT_EQ(res.rejected, 0);
    EXPECT_EQ(res.completed, res.submitted);
    EXPECT_EQ(res.within_slo, res.completed);
    EXPECT_GT(res.qps, 0.0);
    EXPECT_GE(res.mean_batch, 1.0);

    auto counters = server.counters();
    EXPECT_EQ(counters.accepted, res.submitted);
    EXPECT_EQ(counters.completed, res.submitted);
    EXPECT_EQ(counters.rejected, 0);
    EXPECT_GT(counters.batches, 0);
}

TEST(ServeServer, CapacityProbeDrainsPrefilledQueue)
{
    NetConfig config = parseNetConfig(kSmallNet);
    serve::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.queue_capacity = 32;
    sopts.threads_per_instance = 1;
    sopts.tune = false;
    serve::Server server(config, sopts);

    SyntheticSpec dspec;
    dspec.channels = config.channels;
    dspec.height = config.height;
    dspec.width = config.width;
    dspec.classes = static_cast<int>(config.classes);
    dspec.count = 8;
    Dataset dataset = makeSynthetic(dspec);

    double qps = serve::capacityProbe(server, dataset, 32, 5);
    server.stop();
    EXPECT_GT(qps, 0.0);
    auto counters = server.counters();
    EXPECT_EQ(counters.accepted, 32);
    EXPECT_EQ(counters.completed, 32);
    // Saturation must actually coalesce: with the queue pre-filled the
    // mean batch has to beat one-request-at-a-time serving.
    EXPECT_LT(counters.batches, 32);
}

TEST(ServeServer, PredictionsMatchDirectForward)
{
    NetConfig config = parseNetConfig(kSmallNet);
    serve::ServerOptions sopts;
    sopts.max_batch = 4;
    sopts.queue_capacity = 16;
    sopts.threads_per_instance = 1;
    sopts.tune = false;
    sopts.seed = 31;
    serve::Server server(config, sopts);

    Geometry g = server.instanceNet(0).inputGeometry();
    Tensor images = randomBatch(4, g, 77);

    // Direct forward on an identically-seeded reference network.
    Network ref(config, 31, /*inference_only=*/true);
    ThreadPool pool(1);
    const Tensor &probs = ref.forward(images, pool);
    std::int64_t classes = ref.classes();

    std::vector<serve::Request> reqs(4);
    for (std::int64_t r = 0; r < 4; ++r) {
        reqs[r].id = r;
        reqs[r].image = images.data() + r * g.elems();
        reqs[r].elems = g.elems();
    }
    server.start();
    for (auto &req : reqs)
        ASSERT_TRUE(server.submit(req));
    server.drain();
    server.stop();

    for (std::int64_t r = 0; r < 4; ++r) {
        ASSERT_TRUE(reqs[r].done.load());
        const float *row = probs.data() + r * classes;
        int expected = 0;
        for (std::int64_t c = 1; c < classes; ++c)
            if (row[c] > row[expected])
                expected = static_cast<int>(c);
        EXPECT_EQ(reqs[r].predicted, expected) << "request " << r;
        EXPECT_GE(reqs[r].batch, 1);
        EXPECT_GT(reqs[r].done_ns, reqs[r].submit_ns);
    }
}
