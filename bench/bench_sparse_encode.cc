/**
 * @file
 * Measures what encode-once sparse BP buys on the Table 1
 * characterization convolutions (single core, combined BP-data +
 * BP-weights, one training minibatch per rep):
 *
 *  - sparse:        the per-call engine — BOTH phases independently run
 *                   the chw->hwc transform and CT-CSR compression on
 *                   the same error tensor;
 *  - sparse-cached: the encode-once engine — one fused CHW->CT-CSR
 *                   encode per minibatch (SparsePlanCache), shared by
 *                   both phases, plus the hoisted/register-blocked
 *                   replay loops.
 *
 * The cached engine's time is additionally split into encode (plan
 * build, from the cache's own stopwatch) and replay (everything else).
 * Both engines compute bit-for-bit identical gradients (verified here
 * per geometry and sparsity). Results go to a table and to
 * machine-readable JSON (BENCH_sparse_encode.json by default) so
 * future PRs can track the trajectory.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "data/suites.hh"
#include "sparse/sparse_plan.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

/** One timed call of fn() in seconds. */
template <typename Fn>
double
timeOnce(Fn &&fn)
{
    Stopwatch watch;
    fn();
    return watch.seconds();
}

std::vector<int>
parseIds(const std::string &csv)
{
    std::vector<int> ids;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            ids.push_back(std::stoi(item));
    return ids;
}

struct Measurement
{
    double t_plain = 0;    ///< per-call engine, both BP phases
    double t_cached = 0;   ///< encode-once engine, both BP phases
    double t_encode = 0;   ///< plan-build share of t_cached
};

Measurement
measureOne(const ConvSpec &spec, double sparsity, std::int64_t batch,
           int reps, ThreadPool &pool)
{
    Rng rng(2000 + spec.nf + static_cast<std::int64_t>(sparsity * 100));
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    w.fillUniform(rng, -0.5f, 0.5f);
    in.fillUniform(rng);
    eo.fillUniform(rng);
    eo.sparsify(rng, sparsity);

    auto plain = makeEngine("sparse");
    auto cached = makeEngine("sparse-cached");
    SparsePlanCache &plans = SparsePlanCache::global();

    Tensor ei_a(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor ei_b(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor dw_a(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor dw_b(Shape{spec.nf, spec.nc, spec.fy, spec.fx});

    auto run_plain = [&] {
        plain->backwardData(spec, eo, w, ei_a, pool);
        plain->backwardWeights(spec, eo, in, dw_a, pool);
    };
    auto run_cached = [&] {
        // One training minibatch: BP-data encodes (a fresh EO would
        // miss the cache), BP-weights replays the shared plan.
        plans.invalidate(eo.data());
        cached->backwardData(spec, eo, w, ei_b, pool);
        cached->backwardWeights(spec, eo, in, dw_b, pool);
    };

    // Warm up both variants once and require bit-for-bit equality —
    // the encode-once path replays non-zeros in the identical order.
    run_plain();
    run_cached();
    for (std::int64_t i = 0; i < ei_a.size(); ++i)
        if (ei_a.data()[i] != ei_b.data()[i])
            fatal("BP-data diverged at %lld", static_cast<long long>(i));
    for (std::int64_t i = 0; i < dw_a.size(); ++i)
        if (dw_a.data()[i] != dw_b.data()[i])
            fatal("BP-weights diverged at %lld",
                  static_cast<long long>(i));

    // Interleave the timed reps so clock-frequency drift hits both
    // variants equally; report the best rep of each, with the cached
    // engine's encode share taken from the same rep as its best total.
    Measurement m;
    m.t_plain = m.t_cached = 1e30;
    for (int r = 0; r < reps; ++r) {
        m.t_plain = std::min(m.t_plain, timeOnce(run_plain));
        SparsePlanCache::Stats before = plans.stats();
        double t = timeOnce(run_cached);
        SparsePlanCache::Stats after = plans.stats();
        if (t < m.t_cached) {
            m.t_cached = t;
            m.t_encode = after.encode_seconds - before.encode_seconds;
        }
    }
    plans.invalidate(eo.data());
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Encode-once sparse BP: per-call re-encode vs shared "
                  "CT-CSR plan, with encode/replay split (measured, "
                  "single core)");
    addCommonFlags(cli);
    cli.addString("ids", "0,2,5",
                  "comma-separated Table 1 convolution ids");
    cli.addInt("reps", 3, "timed repetitions (best-of)");
    cli.addInt("measure-batch", 2, "minibatch size per rep");
    cli.addString("sparsities", "0.5,0.75,0.9,0.97",
                  "comma-separated error sparsities to sweep");
    cli.addString("json-file", "BENCH_sparse_encode.json",
                  "machine-readable output path ('' to skip)");
    cli.parse(argc, argv);

    int reps = static_cast<int>(cli.getInt("reps"));
    std::int64_t batch = cli.getInt("measure-batch");
    ThreadPool pool(1);

    std::vector<double> sparsities;
    {
        std::stringstream ss(cli.getString("sparsities"));
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                sparsities.push_back(std::stod(item));
    }

    TablePrinter table(
        "Encode-once sparse BP on Table 1 geometries (BP-data + "
        "BP-weights, batch " + std::to_string(batch) +
        ", 1 core, MEASURED)",
        {"ID", "spec", "sparsity", "sparse ms", "cached ms", "encode ms",
         "replay ms", "speedup"});

    std::ostringstream json;
    json << "{\n  \"bench\": \"sparse_encode\",\n  \"reps\": " << reps
         << ",\n  \"batch\": " << batch << ",\n  \"results\": [";

    bool first = true;
    for (int id : parseIds(cli.getString("ids"))) {
        const auto &entries = table1Convolutions();
        auto it =
            std::find_if(entries.begin(), entries.end(),
                         [&](const auto &e) { return e.id == id; });
        if (it == entries.end())
            fatal("no Table 1 convolution with id %d", id);
        const ConvSpec &spec = it->spec;

        for (double sparsity : sparsities) {
            Measurement m =
                measureOne(spec, sparsity, batch, reps, pool);
            double replay = m.t_cached - m.t_encode;
            double speedup = m.t_plain / m.t_cached;
            table.addRow({
                TablePrinter::fmt(static_cast<long long>(id)),
                spec.str(),
                TablePrinter::fmt(sparsity, 2),
                TablePrinter::fmt(m.t_plain * 1e3, 2),
                TablePrinter::fmt(m.t_cached * 1e3, 2),
                TablePrinter::fmt(m.t_encode * 1e3, 2),
                TablePrinter::fmt(replay * 1e3, 2),
                TablePrinter::fmt(speedup, 3),
            });
            json << (first ? "" : ",") << "\n    {\"id\": " << id
                 << ", \"spec\": \"" << spec.str()
                 << "\", \"sparsity\": " << sparsity
                 << ", \"seconds\": {\"sparse\": " << m.t_plain
                 << ", \"sparse_cached\": " << m.t_cached
                 << ", \"encode\": " << m.t_encode
                 << ", \"replay\": " << replay
                 << "}, \"speedup\": " << speedup << "}";
            first = false;
        }
    }
    json << "\n  ]\n}\n";

    emit(cli, table);
    std::string path = cli.getString("json-file");
    if (!path.empty()) {
        std::ofstream f(path);
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        f << json.str();
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
