/**
 * @file
 * Reproduces paper Fig. 4f: speedup of the Sparse-Kernel (BP) over
 * GEMM-in-Parallel as a function of sparsity (x-axis 0, 0.5, 0.75,
 * 0.88, 0.94, 0.97, 0.99 as in the paper).
 *
 * Expected shape: below ~0.5 the dense schedule wins; from >= 0.75 the
 * sparse kernel consistently wins; at >= 0.90 it wins by 3x-32x.
 *
 * The MEASURED columns run both real engines single-core on this host
 * at 0 and 0.94 sparsity.
 */

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "data/suites.hh"
#include "sparse/sparse_plan.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

double
measuredSpeedup(const std::string &engine_name, const ConvSpec &spec,
                double sparsity, std::int64_t batch)
{
    ThreadPool pool(1);
    Rng rng(8);
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    Tensor ei(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor dw(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    w.fillUniform(rng);
    in.fillUniform(rng);
    eo.fillUniform(rng);
    eo.sparsify(rng, sparsity);

    GemmInParallelEngine gemm;
    auto sparse = makeEngine(engine_name);
    double t_gemm = bestTimeSeconds(2, [&] {
        gemm.backwardData(spec, eo, w, ei, pool);
        gemm.backwardWeights(spec, eo, in, dw, pool);
    });
    double t_sparse = bestTimeSeconds(2, [&] {
        // One training minibatch per rep: the encode-once engine
        // encodes in BP-data and replays the plan in BP-weights.
        SparsePlanCache::global().invalidate(eo.data());
        sparse->backwardData(spec, eo, w, ei, pool);
        sparse->backwardWeights(spec, eo, in, dw, pool);
    });
    return t_gemm / t_sparse;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 4f (Sparse-Kernel speedup over "
                  "GEMM-in-Parallel vs sparsity)");
    addCommonFlags(cli);
    cli.addBool("measure", true, "run both real engines on this host");
    cli.addInt("measure-flops-limit", 8,
               "skip measured columns above this many GFlops per image "
               "batch");
    cli.addString("sparse-engine", "sparse",
                  "sparse BP engine to model and measure (sparse | "
                  "sparse-cached)");
    cli.parse(argc, argv);
    std::int64_t batch = cli.getInt("batch");
    std::string engine_name = cli.getString("sparse-engine");

    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter table(
        "Fig. 4f: Sparse-Kernel (BP) speedup over GEMM-in-Parallel at "
        "16 cores (batch " + std::to_string(batch) + ") — SIMULATED; "
        "MEASURED = host 1-core",
        {"ID", "s=0", "0.5", "0.75", "0.88", "0.94", "0.97", "0.99",
         "meas s=0", "meas s=0.94"});

    double flops_limit = cli.getInt("measure-flops-limit") * 1e9;
    for (const auto &entry : table1Convolutions()) {
        std::vector<std::string> row = {
            TablePrinter::fmt(static_cast<long long>(entry.id))};
        for (double sparsity : kSparsitySweep) {
            double t_gemm = 0, t_sparse = 0;
            for (Phase phase :
                 {Phase::BackwardData, Phase::BackwardWeights}) {
                t_gemm += modelConvPhase(machine, entry.spec, phase,
                                         "gemm-in-parallel", batch, 16,
                                         sparsity)
                              .seconds;
                t_sparse += modelConvPhase(machine, entry.spec, phase,
                                           engine_name, batch, 16,
                                           sparsity)
                                .seconds;
            }
            row.push_back(TablePrinter::fmt(t_gemm / t_sparse, 2));
        }
        std::int64_t measure_batch = 2;
        bool feasible = measure_batch *
                            static_cast<double>(entry.spec.flops()) <
                        flops_limit;
        if (cli.getBool("measure") && feasible) {
            row.push_back(TablePrinter::fmt(
                measuredSpeedup(engine_name, entry.spec, 0.0,
                                measure_batch),
                2));
            row.push_back(TablePrinter::fmt(
                measuredSpeedup(engine_name, entry.spec, 0.94,
                                measure_batch),
                2));
        } else {
            row.push_back("-");
            row.push_back("-");
        }
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
