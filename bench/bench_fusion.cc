/**
 * @file
 * Measures what epilogue fusion buys (MEASURED, this host):
 *
 *  - Per Table 1 layer: conv+ReLU FP as the unfused network runs it
 *    (engine pass, then a standalone elementwise ReLU over the output)
 *    vs the fused engine call applying ReLU in the epilogue while each
 *    output tile is hot; and the BP side (standalone ReLU-backward
 *    masking the error tensor, then the 5-arg engine) vs the mask-fused
 *    engine consuming the raw error plus the FP byte mask.
 *
 *  - End-to-end: two identically-seeded networks, fuse_epilogues on
 *    and off, timed over the same training minibatches, plus the
 *    liveness-planned activation arena high-water mark vs the
 *    unplanned sum of the inter-layer buffers.
 *
 * Both variants are verified bit-for-bit before anything is timed.
 * Results go to a table and to BENCH_fusion.json so tools/bench_compare
 * can track the trajectory across PRs.
 */

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "core/net_config.hh"
#include "data/suites.hh"
#include "nn/network.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

template <typename Fn>
double
timeOnce(Fn &&fn)
{
    Stopwatch watch;
    fn();
    return watch.seconds();
}

std::vector<int>
parseIds(const std::string &csv)
{
    std::vector<int> ids;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            ids.push_back(std::stoi(item));
    return ids;
}

struct Measurement
{
    double fp_unfused = 0;  ///< engine FP + standalone ReLU pass
    double fp_fused = 0;    ///< engine FP with ReLU-mask epilogue
    double bp_unfused = 0;  ///< ReLU-backward pass + 5-arg BP engines
    double bp_fused = 0;    ///< mask-fused BP engines on the raw error
};

Measurement
measureOne(const ConvSpec &spec, const ConvEngine &engine,
           std::int64_t batch, int reps, ThreadPool &pool)
{
    Rng rng(4000 + spec.nf + spec.nx);
    Shape oshape{batch, spec.nf, spec.outY(), spec.outX()};
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor eo(oshape);
    in.fillUniform(rng);
    w.fillUniform(rng, -0.5f, 0.5f);
    eo.fillUniform(rng);

    Tensor pre(oshape);        // unfused conv output (pre-activation)
    Tensor act_a(oshape);      // unfused post-ReLU activations
    Tensor act_b(oshape);      // fused post-ReLU activations
    Tensor eo_masked(oshape);  // unfused ReLU-backward output
    std::vector<std::uint8_t> mask(static_cast<std::size_t>(
                                       eo.size()),
                                   0);
    Tensor ei_a(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor ei_b(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor dw_a(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor dw_b(Shape{spec.nf, spec.nc, spec.fy, spec.fx});

    // The standalone passes use the same pool partitioning the
    // unfused network's ReluLayer uses, so the comparison stays fair
    // at any core count.
    auto run_fp_unfused = [&] {
        engine.forward(spec, in, w, pre, pool);
        float *src = pre.data();
        float *dst = act_a.data();
        pool.parallelFor(pre.size(),
                         [&](std::int64_t b, std::int64_t e, int) {
                             for (std::int64_t i = b; i < e; ++i)
                                 dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
                         });
    };
    auto run_fp_fused = [&] {
        engine.forward(spec, in, w, act_b, pool,
                       Epilogue{Epilogue::Kind::ReluMask, mask.data()});
    };
    auto run_bp_unfused = [&] {
        // ReLU backward gates on the saved activations, exactly as
        // ReluLayer::backward does in the unfused network.
        const float *act = act_a.data();
        const float *src = eo.data();
        float *dst = eo_masked.data();
        pool.parallelFor(eo.size(),
                         [&](std::int64_t b, std::int64_t e, int) {
                             for (std::int64_t i = b; i < e; ++i)
                                 dst[i] = act[i] > 0.0f ? src[i] : 0.0f;
                         });
        engine.backwardData(spec, eo_masked, w, ei_a, pool);
        engine.backwardWeights(spec, eo_masked, in, dw_a, pool);
    };
    auto run_bp_fused = [&] {
        BpMask bp{mask.data()};
        engine.backwardData(spec, eo, w, ei_b, pool, bp);
        engine.backwardWeights(spec, eo, in, dw_b, pool, bp);
    };

    // Warm both variants once and require bit-for-bit equality: the
    // fusion contract is exactness, not approximation.
    run_fp_unfused();
    run_fp_fused();
    for (std::int64_t i = 0; i < act_a.size(); ++i)
        if (act_a.data()[i] != act_b.data()[i])
            fatal("fused FP diverged at %lld",
                  static_cast<long long>(i));
    run_bp_unfused();
    run_bp_fused();
    for (std::int64_t i = 0; i < ei_a.size(); ++i)
        if (ei_a.data()[i] != ei_b.data()[i])
            fatal("fused BP-data diverged at %lld",
                  static_cast<long long>(i));
    for (std::int64_t i = 0; i < dw_a.size(); ++i)
        if (dw_a.data()[i] != dw_b.data()[i])
            fatal("fused BP-weights diverged at %lld",
                  static_cast<long long>(i));

    // Interleave the timed reps so clock-frequency drift hits both
    // variants equally; report the best rep of each.
    Measurement m;
    m.fp_unfused = m.fp_fused = m.bp_unfused = m.bp_fused = 1e30;
    for (int r = 0; r < reps; ++r) {
        m.fp_unfused = std::min(m.fp_unfused, timeOnce(run_fp_unfused));
        m.fp_fused = std::min(m.fp_fused, timeOnce(run_fp_fused));
        m.bp_unfused = std::min(m.bp_unfused, timeOnce(run_bp_unfused));
        m.bp_fused = std::min(m.bp_fused, timeOnce(run_bp_fused));
    }
    return m;
}

struct NetMeasurement
{
    double fused_step = 0;
    double unfused_step = 0;
    std::int64_t arena_bytes = 0;
    std::int64_t arena_unplanned_bytes = 0;
    std::int64_t fused_pairs = 0;
};

NetMeasurement
measureNetwork(const std::string &config_text, std::int64_t batch,
               int steps, ThreadPool &pool)
{
    NetConfig fused_cfg = parseNetConfig(config_text);
    NetConfig plain_cfg = fused_cfg;
    fused_cfg.fuse_epilogues = true;
    plain_cfg.fuse_epilogues = false;
    Network fused(fused_cfg, 42);
    Network plain(plain_cfg, 42);

    Rng rng(31);
    Geometry geom = fused.inputGeometry();
    Tensor images(Shape{batch, geom.c, geom.h, geom.w});
    std::vector<int> labels(static_cast<std::size_t>(batch));

    NetMeasurement m;
    m.fused_step = m.unfused_step = 1e30;
    // One untimed warm-up step allocates buffers and caches packed
    // weights; then each timed step feeds both variants the same batch
    // and checks they agree bit-for-bit on the loss.
    for (int step = 0; step <= steps; ++step) {
        images.fillUniform(rng, -1.0f, 1.0f);
        for (auto &label : labels)
            label = static_cast<int>(rng.below(
                static_cast<std::uint64_t>(fused.classes())));
        StepStats sa, sb;
        double ta =
            timeOnce([&] { sa = fused.trainStep(images, labels, 0.05f,
                                                pool); });
        double tb =
            timeOnce([&] { sb = plain.trainStep(images, labels, 0.05f,
                                                pool); });
        if (sa.loss != sb.loss)
            fatal("fused network loss diverged at step %d", step);
        if (step == 0)
            continue;
        m.fused_step = std::min(m.fused_step, ta);
        m.unfused_step = std::min(m.unfused_step, tb);
    }
    m.arena_bytes = fused.arenaBytes();
    m.arena_unplanned_bytes = fused.arenaUnplannedBytes();
    m.fused_pairs = fused.fusedPairs();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Epilogue fusion: conv+ReLU with standalone "
                  "elementwise passes vs fused engine epilogues / BP "
                  "masks, plus the end-to-end network and its "
                  "liveness-planned activation arena (MEASURED)");
    addCommonFlags(cli);
    cli.addString("ids", "0,2,5",
                  "comma-separated Table 1 convolution ids");
    cli.addInt("reps", 5, "timed repetitions (best-of)");
    cli.addInt("measure-batch", 2, "per-layer minibatch size per rep");
    cli.addString("engine", "gemm-in-parallel",
                  "conv engine to measure fusion on");
    cli.addInt("cores", 1, "worker pool size");
    cli.addString("net", "mnist",
                  "end-to-end network (mnist, cifar10, '' to skip)");
    cli.addInt("net-batch", 16, "end-to-end minibatch size");
    cli.addInt("net-steps", 3, "timed end-to-end training steps");
    cli.addString("json-file", "BENCH_fusion.json",
                  "machine-readable output path ('' to skip)");
    cli.parse(argc, argv);

    int reps = static_cast<int>(cli.getInt("reps"));
    std::int64_t batch = cli.getInt("measure-batch");
    int cores = static_cast<int>(cli.getInt("cores"));
    ThreadPool pool(cores);

    auto engine = makeEngine(cli.getString("engine"));
    if (!engine)
        fatal("unknown engine '%s'", cli.getString("engine").c_str());

    TablePrinter table(
        "Epilogue fusion on Table 1 geometries (engine " +
            cli.getString("engine") + ", batch " +
            std::to_string(batch) + ", " + std::to_string(cores) +
            " core(s), MEASURED)",
        {"ID", "spec", "FP unfused ms", "FP fused ms", "FP speedup",
         "BP unfused ms", "BP fused ms", "BP speedup"});

    std::ostringstream json;
    json << "{\n  \"bench\": \"fusion\",\n  \"reps\": " << reps
         << ",\n  \"batch\": " << batch << ",\n  \"engine\": \""
         << cli.getString("engine") << "\",\n  \"layers\": [";

    bool first = true;
    for (int id : parseIds(cli.getString("ids"))) {
        const auto &entries = table1Convolutions();
        auto it =
            std::find_if(entries.begin(), entries.end(),
                         [&](const auto &e) { return e.id == id; });
        if (it == entries.end())
            fatal("no Table 1 convolution with id %d", id);
        const ConvSpec &spec = it->spec;

        Measurement m = measureOne(spec, *engine, batch, reps, pool);
        double fp_speedup = m.fp_unfused / m.fp_fused;
        double bp_speedup = m.bp_unfused / m.bp_fused;
        table.addRow({
            TablePrinter::fmt(static_cast<long long>(id)),
            spec.str(),
            TablePrinter::fmt(m.fp_unfused * 1e3, 2),
            TablePrinter::fmt(m.fp_fused * 1e3, 2),
            TablePrinter::fmt(fp_speedup, 3),
            TablePrinter::fmt(m.bp_unfused * 1e3, 2),
            TablePrinter::fmt(m.bp_fused * 1e3, 2),
            TablePrinter::fmt(bp_speedup, 3),
        });
        json << (first ? "" : ",") << "\n    {\"id\": " << id
             << ", \"spec\": \"" << spec.str()
             << "\", \"seconds\": {\"fp_unfused\": " << m.fp_unfused
             << ", \"fp_fused\": " << m.fp_fused
             << ", \"bp_unfused\": " << m.bp_unfused
             << ", \"bp_fused\": " << m.bp_fused
             << "}, \"fp_speedup\": " << fp_speedup
             << ", \"bp_speedup\": " << bp_speedup << "}";
        first = false;
    }
    json << "\n  ]";
    emit(cli, table);

    std::string net = cli.getString("net");
    if (!net.empty()) {
        std::string text;
        if (net == "mnist")
            text = mnistNetConfigText();
        else if (net == "cifar10")
            text = cifar10NetConfigText();
        else
            fatal("unknown net '%s'", net.c_str());
        std::int64_t net_batch = cli.getInt("net-batch");
        int net_steps = static_cast<int>(cli.getInt("net-steps"));
        NetMeasurement nm =
            measureNetwork(text, net_batch, net_steps, pool);
        double speedup = nm.unfused_step / nm.fused_step;
        double ratio = nm.arena_unplanned_bytes > 0
                           ? static_cast<double>(nm.arena_bytes) /
                                 static_cast<double>(
                                     nm.arena_unplanned_bytes)
                           : 0.0;
        TablePrinter nt("End-to-end " + net + " (batch " +
                            std::to_string(net_batch) +
                            ", fused vs unfused, MEASURED)",
                        {"step unfused ms", "step fused ms", "speedup",
                         "fused pairs", "arena MiB", "unplanned MiB",
                         "arena ratio"});
        nt.addRow({
            TablePrinter::fmt(nm.unfused_step * 1e3, 2),
            TablePrinter::fmt(nm.fused_step * 1e3, 2),
            TablePrinter::fmt(speedup, 3),
            TablePrinter::fmt(
                static_cast<long long>(nm.fused_pairs)),
            TablePrinter::fmt(nm.arena_bytes / (1024.0 * 1024.0), 2),
            TablePrinter::fmt(
                nm.arena_unplanned_bytes / (1024.0 * 1024.0), 2),
            TablePrinter::fmt(ratio, 3),
        });
        emit(cli, nt);
        json << ",\n  \"network\": {\"name\": \"" << net
             << "\", \"batch\": " << net_batch
             << ", \"steps\": " << net_steps
             << ", \"seconds_per_step\": {\"fused\": " << nm.fused_step
             << ", \"unfused\": " << nm.unfused_step
             << "}, \"speedup\": " << speedup
             << ", \"fused_pairs\": " << nm.fused_pairs
             << ", \"arena_bytes\": " << nm.arena_bytes
             << ", \"arena_unplanned_bytes\": "
             << nm.arena_unplanned_bytes
             << ", \"arena_ratio\": " << ratio << "}";
    }
    json << "\n}\n";

    std::string path = cli.getString("json-file");
    if (!path.empty()) {
        std::ofstream f(path);
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        f << json.str();
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
