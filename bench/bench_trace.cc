/**
 * @file
 * Tracing-layer overhead (MEASURED).
 *
 * The ISSUE budget for the observability PR: an instrumented training
 * step must cost <= ~3% extra wall time with tracing runtime-enabled,
 * and ~0% with tracing runtime-disabled (the span macros reduce to one
 * relaxed atomic load and a predicted branch). This bench quantifies
 * both on this host:
 *
 *  - span: ns per SPG_TRACE_SCOPE in a tight loop, runtime-disabled
 *    and runtime-enabled — the microcost every instrumentation site
 *    pays;
 *  - conv: FP + BP-data + BP-weights of a small convolution through
 *    the instrumented gemm-in-parallel engine (kernel spans + pool
 *    participation spans + metric counters on the hot path),
 *    runtime-disabled vs. runtime-enabled, reported as % overhead.
 *
 * Results are printed as tables and written as machine-readable JSON
 * (BENCH_trace.json by default) so future PRs can track the
 * trajectory. Compile-out (-DSPG_TRACING=OFF) removes even the
 * disabled-path load; that configuration is covered by building this
 * bench in such a tree — the "span disabled" row then reads ~0 ns.
 */

#include <sstream>
#include <string>

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

Tensor
randomTensor(Shape shape, std::uint64_t seed)
{
    Tensor t(shape);
    Rng rng(seed);
    float *p = t.data();
    for (std::int64_t i = 0; i < t.size(); ++i)
        p[i] = rng.uniform(-1.0f, 1.0f);
    return t;
}

/** ns per SPG_TRACE_SCOPE over a tight loop of @p iters spans. */
double
spanNanos(std::int64_t iters)
{
    double seconds = bestTimeSeconds(3, [&] {
        for (std::int64_t i = 0; i < iters; ++i) {
            SPG_TRACE_SCOPE("bench", "span");
        }
    });
    return seconds / static_cast<double>(iters) * 1e9;
}

/** One FP + BP-data + BP-weights pass of a small conv layer. */
struct ConvWorkload
{
    ConvWorkload(std::int64_t batch, int threads)
        : spec(ConvSpec::square(24, 16, 8, 3, 1)),
          engine(makeEngine("gemm-in-parallel")),
          pool(threads),
          in(randomTensor({batch, spec.nc, spec.ny, spec.nx}, 1)),
          weights(randomTensor({spec.nf, spec.nc, spec.fy, spec.fx},
                               2)),
          out(Shape{batch, spec.nf, spec.outY(), spec.outX()}),
          eo(randomTensor({batch, spec.nf, spec.outY(), spec.outX()},
                          3)),
          ei(Shape{batch, spec.nc, spec.ny, spec.nx}),
          dweights(Shape{spec.nf, spec.nc, spec.fy, spec.fx})
    {
    }

    void
    step()
    {
        engine->forward(spec, in, weights, out, pool);
        engine->backwardData(spec, eo, weights, ei, pool);
        engine->backwardWeights(spec, eo, in, dweights, pool);
    }

    ConvSpec spec;
    std::unique_ptr<ConvEngine> engine;
    ThreadPool pool;
    Tensor in, weights, out, eo, ei, dweights;
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("tracing overhead: span microcost and an "
                  "instrumented conv step, disabled vs. enabled");
    cli.addInt("span-iters", 2000000, "spans for the microbench");
    cli.addInt("reps", 5, "timed repetitions per configuration");
    cli.addInt("steps-per-rep", 10, "conv steps per repetition");
    cli.addInt("batch", 8, "conv workload minibatch");
    // Default to one thread: oversubscribing this host's single core
    // adds scheduling jitter an order of magnitude above the tracing
    // cost being measured.
    cli.addInt("threads", 1, "conv workload pool size");
    cli.addString("json-file", "BENCH_trace.json",
                  "machine-readable results ('' disables)");
    cli.parse(argc, argv);

    std::int64_t span_iters = cli.getInt("span-iters");
    int reps = static_cast<int>(cli.getInt("reps"));

    obs::Tracer &tracer = obs::Tracer::global();
    // Overflow during the microbench is fine: an overwriting push
    // costs the same as a first push, and nothing here is flushed to
    // disk.
    tracer.disable();
    double span_off_ns = spanNanos(span_iters);
    tracer.enable("");
    double span_on_ns = tracer.enabled() ? spanNanos(span_iters) : 0;
    tracer.disable();
    tracer.clear();

    ConvWorkload workload(cli.getInt("batch"),
                          static_cast<int>(cli.getInt("threads")));
    // Amortize fork-join scheduling jitter (large on an oversubscribed
    // single-core host) over several steps per timed repetition.
    int steps_per_rep =
        static_cast<int>(cli.getInt("steps-per-rep"));
    auto stepBurst = [&] {
        for (int i = 0; i < steps_per_rep; ++i)
            workload.step();
    };
    double conv_off =
        bestTimeSeconds(reps, stepBurst) / steps_per_rep;
    tracer.enable("");
    double conv_on =
        bestTimeSeconds(reps, stepBurst) / steps_per_rep;
    tracer.disable();
    std::uint64_t conv_events = 0;
    if (span_on_ns > 0) {
        // Count what one traced step records (events per flush).
        tracer.clear();
        tracer.enable("");
        workload.step();
        tracer.disable();
        for (char c : tracer.flushToString()) {
            if (c == '\n')
                ++conv_events;
        }
        conv_events = conv_events > 2 ? conv_events - 2 : 0;
    }

    double overhead =
        conv_off > 0 ? (conv_on - conv_off) / conv_off * 100 : 0;

    TablePrinter table("Tracing overhead (MEASURED)",
                       {"probe", "disabled", "enabled", "overhead"});
    table.addRow({"span ns", TablePrinter::fmt(span_off_ns, 2),
                  TablePrinter::fmt(span_on_ns, 2),
                  TablePrinter::fmt(span_on_ns - span_off_ns, 2) +
                      " ns"});
    table.addRow({"conv step ms", TablePrinter::fmt(conv_off * 1e3, 3),
                  TablePrinter::fmt(conv_on * 1e3, 3),
                  TablePrinter::fmt(overhead, 2) + "%"});
    table.print();
    inform("one traced conv step records %llu events",
           static_cast<unsigned long long>(conv_events));

    std::string path = cli.getString("json-file");
    if (!path.empty()) {
        std::ostringstream json;
        json << "{\n  \"bench\": \"trace\","
             << "\n  \"compiled_in\": "
             << (span_on_ns > 0 ? "true" : "false")
             << ",\n  \"span_disabled_ns\": " << span_off_ns
             << ",\n  \"span_enabled_ns\": " << span_on_ns
             << ",\n  \"conv_step_disabled_s\": " << conv_off
             << ",\n  \"conv_step_enabled_s\": " << conv_on
             << ",\n  \"conv_step_overhead_pct\": " << overhead
             << ",\n  \"conv_step_events\": " << conv_events << "\n}\n";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            fatal("cannot write '%s'", path.c_str());
        std::fputs(json.str().c_str(), f);
        std::fclose(f);
        inform("results written to %s", path.c_str());
    }
    return 0;
}
