/**
 * @file
 * Reproduces paper Fig. 8: per-layer speedup of the spg-CNN framework
 * over Parallel-GEMM for the convolution layers of the four
 * real-world benchmarks (Table 2), at 16 cores and 85% BP sparsity
 * (the paper's conservative choice from Fig. 3b).
 *
 * For FP the table separates the GEMM-in-Parallel speedup from the
 * additional Stencil-Kernel speedup where the stencil is deployed
 * (the paper's blue vs green bars); for BP it reports the
 * Sparse-Kernel speedup (orange bars).
 */

#include "bench/bench_common.hh"
#include "data/suites.hh"
#include "perf/region.hh"

using namespace spg;

namespace {

double
bpSeconds(const MachineModel &machine, const ConvSpec &spec,
          const std::string &engine, std::int64_t batch, int cores,
          double sparsity)
{
    return modelConvPhase(machine, spec, Phase::BackwardData, engine,
                          batch, cores, sparsity)
               .seconds +
           modelConvPhase(machine, spec, Phase::BackwardWeights, engine,
                          batch, cores, sparsity)
               .seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 8 (per-layer speedups over "
                  "Parallel-GEMM on real-world benchmarks)");
    addCommonFlags(cli);
    cli.addDouble("sparsity", 0.85, "BP error sparsity (paper: 0.85)");
    cli.addInt("cores", 16, "core count");
    cli.parse(argc, argv);
    std::int64_t batch = cli.getInt("batch");
    int cores = static_cast<int>(cli.getInt("cores"));
    double sparsity = cli.getDouble("sparsity");

    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter table(
        "Fig. 8: speedup over Parallel-GEMM at " +
            std::to_string(cores) + " cores, BP sparsity " +
            TablePrinter::fmt(sparsity, 2) + " — SIMULATED",
        {"benchmark", "layer", "spec", "FP gemm-in-par", "FP +stencil",
         "FP engine", "BP sparse"});

    for (const auto &entry : table2Layers()) {
        double fp_base = modelConvPhase(machine, entry.spec,
                                        Phase::Forward, "parallel-gemm",
                                        batch, cores)
                             .seconds;
        double fp_gip = modelConvPhase(machine, entry.spec,
                                       Phase::Forward,
                                       "gemm-in-parallel", batch, cores)
                            .seconds;
        double fp_stencil = modelConvPhase(machine, entry.spec,
                                           Phase::Forward, "stencil",
                                           batch, cores)
                                .seconds;

        // Deploy the paper's rule: stencil only when it is the faster
        // choice (< 128 output features in practice).
        bool use_stencil = fp_stencil < fp_gip;
        double bp_base = bpSeconds(machine, entry.spec, "parallel-gemm",
                                   batch, cores, sparsity);
        double bp_sparse = bpSeconds(machine, entry.spec, "sparse",
                                     batch, cores, sparsity);

        table.addRow({
            entry.benchmark,
            "L" + std::to_string(entry.layer),
            entry.spec.str(),
            TablePrinter::fmt(fp_base / fp_gip, 2) + "x",
            use_stencil ? TablePrinter::fmt(fp_base / fp_stencil, 2) + "x"
                        : "-",
            use_stencil ? "stencil" : "gemm-in-parallel",
            TablePrinter::fmt(bp_base / bp_sparse, 2) + "x",
        });
    }
    emit(cli, table);
    return 0;
}
