/**
 * @file
 * Extension bench: FFT convolution vs direct/GEMM approaches across
 * kernel sizes (the "other techniques" direction the paper cites —
 * Mathieu, Henaff & LeCun).
 *
 * MEASURED on this host: FP time of gemm-in-parallel, stencil and the
 * FFT engine on a fixed plane while the kernel grows. The FFT cost is
 * kernel-size independent, so it crosses over for large kernels.
 */

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Extension: FFT convolution crossover vs kernel size "
                  "(measured on this host)");
    addCommonFlags(cli);
    cli.addInt("n", 64, "input spatial size");
    cli.addInt("nc", 8, "input channels");
    cli.addInt("nf", 16, "output features");
    cli.parse(argc, argv);

    std::int64_t n = cli.getInt("n");
    std::int64_t nc = cli.getInt("nc");
    std::int64_t nf = cli.getInt("nf");

    TablePrinter table(
        "Extension: FP time (ms, batch 4) vs kernel size on a " +
            std::to_string(n) + "x" + std::to_string(n) + "x" +
            std::to_string(nc) + " input — MEASURED, 1 core",
        {"kernel", "gemm-in-parallel", "stencil", "fft",
         "fft vs best direct"});

    ThreadPool pool(1);
    Rng rng(14);
    for (std::int64_t k : {3, 5, 7, 11, 15, 21}) {
        ConvSpec spec = ConvSpec::square(n, nf, nc, k);
        std::int64_t batch = 4;
        Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        in.fillUniform(rng);
        w.fillUniform(rng);

        auto time_of = [&](const char *name) {
            auto engine = makeEngine(name);
            return bestTimeSeconds(3, [&] {
                engine->forward(spec, in, w, out, pool);
            });
        };
        double t_gemm = time_of("gemm-in-parallel");
        double t_stencil = time_of("stencil");
        double t_fft = time_of("fft");
        double best_direct = std::min(t_gemm, t_stencil);
        table.addRow({
            std::to_string(k) + "x" + std::to_string(k),
            TablePrinter::fmt(t_gemm * 1e3, 2),
            TablePrinter::fmt(t_stencil * 1e3, 2),
            TablePrinter::fmt(t_fft * 1e3, 2),
            TablePrinter::fmt(best_direct / t_fft, 2) + "x",
        });
    }
    emit(cli, table);
    return 0;
}
