/**
 * @file
 * Reproduces paper Fig. 3a: scalability of Parallel-GEMM on up to 16
 * cores for the Table 1 convolutions.
 *
 * As in the paper, each data point times the THREE matrix multiplies
 * of one training step (FP, error-gradient and delta-weight
 * calculations) and reports aggregate GFlops per core.
 *
 * SIMULATED rows sweep 1..16 cores on the modeled Xeon E5-2650.
 * The MEASURED column runs the real blas/parallelGemm on this host at
 * one core — the paper-machine model is calibrated against it.
 */

#include <algorithm>

#include "bench/bench_common.hh"
#include "blas/gemm.hh"
#include "data/suites.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

/** Simulated GFlops/core of the three training MMs at `cores`. */
double
simulatedGflopsPerCore(const MachineModel &machine, const ConvSpec &spec,
                       int cores)
{
    double seconds = 0, flops = 0;
    for (Phase phase :
         {Phase::Forward, Phase::BackwardData, Phase::BackwardWeights}) {
        PhaseMm mm = phaseMm(spec, phase);
        SimResult r = modelParallelGemmMm(machine, mm.m, mm.n, mm.k,
                                          cores);
        seconds += r.seconds;
        flops += r.total_flops;
    }
    return flops / seconds / 1e9 / cores;
}

/** Measured single-core GFlops of the three training MMs (host). */
double
measuredGflopsOneCore(const ConvSpec &spec)
{
    ThreadPool pool(1);
    Rng rng(3);
    double seconds = 0, flops = 0;
    for (Phase phase :
         {Phase::Forward, Phase::BackwardData, Phase::BackwardWeights}) {
        PhaseMm mm = phaseMm(spec, phase);
        Tensor a(Shape{mm.m, mm.k});
        Tensor b(Shape{mm.k, mm.n});
        Tensor c(Shape{mm.m, mm.n});
        a.fillUniform(rng);
        b.fillUniform(rng);
        Stopwatch sw;
        parallelGemm(pool, Trans::No, Trans::No, mm.m, mm.n, mm.k,
                     a.data(), b.data(), 0.0f, c.data());
        seconds += sw.seconds();
        flops += 2.0 * mm.m * mm.n * mm.k;
    }
    return flops / seconds / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 3a (Parallel-GEMM scalability)");
    addCommonFlags(cli);
    cli.addBool("measure", true,
                "run the real single-core MMs on this host");
    cli.parse(argc, argv);

    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter table(
        "Fig. 3a: Parallel-GEMM GFlops per core (3 training MMs) — "
        "SIMULATED 16-core Xeon E5-2650; MEASURED = this host, 1 core",
        {"ID", "region", "1", "2", "4", "8", "16",
         "max drop", "measured 1-core"});

    for (const auto &entry : table1Convolutions()) {
        std::vector<std::string> row = {
            TablePrinter::fmt(static_cast<long long>(entry.id)),
            entry.paper_region};
        double first = 0, lowest = 1e30;
        for (int cores : kCoreSweep) {
            double gfpc = simulatedGflopsPerCore(machine, entry.spec,
                                                 cores);
            if (cores == 1)
                first = gfpc;
            else
                lowest = std::min(lowest, gfpc);
            row.push_back(TablePrinter::fmt(gfpc, 1));
        }
        row.push_back(TablePrinter::fmt(100.0 * (1 - lowest / first),
                                        0) + "%");
        row.push_back(cli.getBool("measure")
                          ? TablePrinter::fmt(
                                measuredGflopsOneCore(entry.spec), 1)
                          : "-");
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
