/**
 * @file
 * Fork-join overhead of the lock-free runtime (threading/thread_pool)
 * against the pre-rewrite mutex/condition-variable pool, measured two
 * ways:
 *
 *  - dispatch: ns per parallelForDynamic region over trivial bodies at
 *    several pool sizes and region extents — isolates the wake/join
 *    protocol itself (the cost the paper's fork-join term charges);
 *  - step: one FP + BP-data + BP-weights pass of the smallest Table 1
 *    convolution under a GEMM-in-Parallel-style per-image schedule,
 *    run identically on both pools — shows the protocol difference is
 *    visible end-to-end on a small layer, where region bodies are
 *    short and dispatch overhead is not amortized.
 *
 * Results are printed as tables and written as machine-readable JSON
 * (BENCH_pool.json by default) so future PRs can track the trajectory.
 */

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <functional>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "blas/gemm.hh"
#include "conv/unfold.hh"
#include "data/suites.hh"
#include "threading/thread_pool.hh"
#include "util/aligned.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

/**
 * The pre-rewrite pool, kept verbatim as the measured baseline: one
 * std::function broadcast under a mutex, EVERY worker woken for every
 * region regardless of extent, join on a second condition variable.
 */
class LegacyPool
{
  public:
    explicit LegacyPool(int num_threads)
    {
        SPG_ASSERT(num_threads >= 1);
        total_threads = num_threads;
        int spawn = num_threads - 1;
        workers.reserve(spawn);
        for (int i = 0; i < spawn; ++i)
            workers.emplace_back([this, i] { workerLoop(i + 1); });
    }

    ~LegacyPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        cv_start.notify_all();
        for (auto &w : workers)
            w.join();
    }

    LegacyPool(const LegacyPool &) = delete;
    LegacyPool &operator=(const LegacyPool &) = delete;

    int threads() const { return total_threads; }

    template <typename Fn>
    void parallelForDynamic(std::int64_t n, const Fn &fn)
    {
        if (n <= 0)
            return;
        std::atomic<std::int64_t> next{0};
        runOnAll([&](int worker) {
            for (;;) {
                std::int64_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                fn(i, worker);
            }
        });
    }

  private:
    void workerLoop(int index)
    {
        std::uint64_t seen = 0;
        for (;;) {
            std::function<void(int)> body;
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv_start.wait(lock,
                              [&] { return stopping || epoch != seen; });
                if (stopping)
                    return;
                seen = epoch;
                body = current;
            }
            body(index);
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (--pending == 0)
                    cv_done.notify_all();
            }
        }
    }

    void runOnAll(const std::function<void(int)> &body)
    {
        if (workers.empty()) {
            body(0);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            SPG_ASSERT(pending == 0);
            current = body;
            pending = static_cast<int>(workers.size());
            ++epoch;
        }
        cv_start.notify_all();
        body(0);
        std::unique_lock<std::mutex> lock(mutex);
        cv_done.wait(lock, [&] { return pending == 0; });
    }

    int total_threads;
    std::vector<std::thread> workers;
    std::mutex mutex;
    std::condition_variable cv_start;
    std::condition_variable cv_done;
    std::function<void(int)> current;
    std::uint64_t epoch = 0;
    int pending = 0;
    bool stopping = false;
};

/** ns per parallelForDynamic region with a near-empty body. */
template <typename Pool>
double
dispatchNsPerRegion(Pool &pool, std::int64_t n, int iters)
{
    std::atomic<std::int64_t> sink{0};
    auto body = [&](std::int64_t i, int) {
        sink.fetch_add(i + 1, std::memory_order_relaxed);
    };
    for (int r = 0; r < 16; ++r)
        pool.parallelForDynamic(n, body);
    Stopwatch watch;
    for (int r = 0; r < iters; ++r)
        pool.parallelForDynamic(n, body);
    double s = watch.seconds();
    if (sink.load(std::memory_order_relaxed) < 0)
        fatal("impossible sink value");
    return s / iters * 1e9;
}

/** Per-worker scratch of the GEMM-in-Parallel step replica. */
struct WorkerScratch
{
    AlignedBuffer<float> u, out, ugrad, ei, dw;

    explicit WorkerScratch(const ConvSpec &spec)
        : u(static_cast<std::size_t>(spec.gemmK()) * spec.gemmN()),
          out(spec.outputElems()),
          ugrad(static_cast<std::size_t>(spec.gemmK()) * spec.gemmN()),
          ei(spec.inputElems()), dw(spec.weightElems())
    {
    }
};

/**
 * One FP + BP-data + BP-weights pass over the batch, one whole image
 * per task — the gemm-in-parallel engines' schedule, parameterized on
 * the pool so the legacy baseline runs the identical workload.
 */
template <typename Pool>
double
stepSeconds(Pool &pool, const ConvSpec &spec, std::int64_t batch,
            int reps, const float *in, const float *w, const float *eo,
            std::vector<WorkerScratch> &scratch)
{
    std::int64_t m = spec.gemmM(), n = spec.gemmN(), k = spec.gemmK();
    auto step = [&] {
        pool.parallelForDynamic(batch, [&](std::int64_t b, int worker) {
            WorkerScratch &s = scratch[static_cast<std::size_t>(worker)];
            const float *image = in + b * spec.inputElems();
            // FP: O = W * U.
            unfoldImage(spec, image, s.u.data());
            sgemm(Trans::No, Trans::No, m, n, k, 1.0f, w, k, s.u.data(),
                  n, 0.0f, s.out.data(), n);
            // BP-data: Ugrad = W^T * EO, folded back to the input.
            sgemm(Trans::Yes, Trans::No, k, n, m, 1.0f, w, k, eo, n,
                  0.0f, s.ugrad.data(), n);
            std::fill(s.ei.data(), s.ei.data() + s.ei.size(), 0.0f);
            foldImageAccumulate(spec, s.ugrad.data(), s.ei.data());
            // BP-weights: dW = EO * U^T.
            sgemm(Trans::No, Trans::Yes, m, k, n, 1.0f, eo, n,
                  s.u.data(), n, 0.0f, s.dw.data(), k);
        });
    };
    step();  // warm up
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        Stopwatch watch;
        step();
        best = std::min(best, watch.seconds());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Fork-join runtime: lock-free pool vs legacy "
                  "mutex/CV pool (measured)");
    addCommonFlags(cli);
    cli.addInt("iters", 2000, "dispatch-latency regions per data point");
    cli.addInt("reps", 5, "step-timing repetitions (best-of)");
    cli.addInt("pool", 4, "pool size of the end-to-end step");
    cli.addInt("step-batch", 16, "minibatch of the end-to-end step");
    cli.addString("pools", "2,4,8",
                  "comma-separated pool sizes for the dispatch sweep");
    cli.addString("json-file", "BENCH_pool.json",
                  "machine-readable output path ('' to skip)");
    cli.parse(argc, argv);

    int iters = static_cast<int>(cli.getInt("iters"));
    int reps = static_cast<int>(cli.getInt("reps"));

    std::vector<int> pool_sizes;
    {
        std::stringstream ss(cli.getString("pools"));
        std::string item;
        while (std::getline(ss, item, ','))
            if (!item.empty())
                pool_sizes.push_back(std::stoi(item));
    }

    std::ostringstream json;
    json << "{\n  \"bench\": \"pool\",\n  \"host_cores\": "
         << std::thread::hardware_concurrency()
         << ",\n  \"iters\": " << iters << ",\n  \"dispatch\": [";

    TablePrinter dispatch_table(
        "Fork-join dispatch latency, trivial bodies (MEASURED)",
        {"threads", "n", "legacy ns", "lock-free ns", "speedup"});
    bool first = true;
    for (int p : pool_sizes) {
        LegacyPool legacy(p);
        ThreadPool pool(p);
        for (std::int64_t n :
             {std::int64_t{1}, static_cast<std::int64_t>(p),
              std::int64_t{64}}) {
            double t_legacy = dispatchNsPerRegion(legacy, n, iters);
            double t_new = dispatchNsPerRegion(pool, n, iters);
            dispatch_table.addRow({
                TablePrinter::fmt(static_cast<long long>(p)),
                TablePrinter::fmt(static_cast<long long>(n)),
                TablePrinter::fmt(t_legacy, 0),
                TablePrinter::fmt(t_new, 0),
                TablePrinter::fmt(t_legacy / t_new, 2),
            });
            json << (first ? "" : ",") << "\n    {\"threads\": " << p
                 << ", \"n\": " << n << ", \"legacy_ns\": " << t_legacy
                 << ", \"lockfree_ns\": " << t_new
                 << ", \"speedup\": " << t_legacy / t_new << "}";
            first = false;
        }
    }
    json << "\n  ],";

    // End-to-end: the smallest Table 1 convolution (least FP
    // arithmetic) is where region bodies are shortest and the
    // dispatch protocol matters most.
    const auto &entries = table1Convolutions();
    const Table1Entry *smallest = &entries.front();
    for (const auto &e : entries) {
        auto flops = [](const ConvSpec &s) {
            return 2.0 * s.gemmM() * s.gemmN() * s.gemmK();
        };
        if (flops(e.spec) < flops(smallest->spec))
            smallest = &e;
    }
    const ConvSpec &spec = smallest->spec;
    int step_threads = static_cast<int>(cli.getInt("pool"));
    std::int64_t step_batch = cli.getInt("step-batch");

    Rng rng(4242);
    AlignedBuffer<float> in(spec.inputElems() * step_batch);
    AlignedBuffer<float> w(spec.weightElems());
    AlignedBuffer<float> eo(spec.outputElems());
    for (std::size_t i = 0; i < in.size(); ++i)
        in.data()[i] = rng.uniform(-1.0f, 1.0f);
    for (std::size_t i = 0; i < w.size(); ++i)
        w.data()[i] = rng.uniform(-0.5f, 0.5f);
    for (std::size_t i = 0; i < eo.size(); ++i)
        eo.data()[i] = rng.uniform(-1.0f, 1.0f);
    std::vector<WorkerScratch> scratch;
    scratch.reserve(step_threads);
    for (int i = 0; i < step_threads; ++i)
        scratch.emplace_back(spec);

    double t_step_legacy, t_step_new;
    {
        LegacyPool legacy(step_threads);
        t_step_legacy = stepSeconds(legacy, spec, step_batch, reps,
                                    in.data(), w.data(), eo.data(),
                                    scratch);
    }
    {
        ThreadPool pool(step_threads);
        t_step_new = stepSeconds(pool, spec, step_batch, reps, in.data(),
                                 w.data(), eo.data(), scratch);
    }

    TablePrinter step_table(
        "FP+BP step, smallest Table 1 layer, per-image tasks (MEASURED)",
        {"ID", "spec", "threads", "batch", "legacy ms", "lock-free ms",
         "speedup"});
    step_table.addRow({
        TablePrinter::fmt(static_cast<long long>(smallest->id)),
        spec.str(),
        TablePrinter::fmt(static_cast<long long>(step_threads)),
        TablePrinter::fmt(static_cast<long long>(step_batch)),
        TablePrinter::fmt(t_step_legacy * 1e3, 2),
        TablePrinter::fmt(t_step_new * 1e3, 2),
        TablePrinter::fmt(t_step_legacy / t_step_new, 3),
    });

    json << "\n  \"step\": {\"layer_id\": " << smallest->id
         << ", \"spec\": \"" << spec.str()
         << "\", \"threads\": " << step_threads
         << ", \"batch\": " << step_batch
         << ", \"legacy_s\": " << t_step_legacy
         << ", \"lockfree_s\": " << t_step_new
         << ", \"speedup\": " << t_step_legacy / t_step_new << "}\n}\n";

    emit(cli, dispatch_table);
    step_table.print();
    std::string path = cli.getString("json-file");
    if (!path.empty()) {
        std::ofstream f(path);
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        f << json.str();
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
