/**
 * @file
 * Extension bench: forward-propagation speedup from WEIGHT sparsity
 * (pruned-model inference) using the sparse-weights engine — the
 * complementary direction the paper's related-work section points at
 * (Liu et al., "Sparse Convolutional Neural Networks").
 *
 * MEASURED on this host: time of gemm-in-parallel (dense, oblivious
 * to weight zeros) vs the sparse-weights engine across pruning levels.
 */

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "data/suites.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Extension: FP speedup from weight sparsity "
                  "(pruned-model inference, measured on this host)");
    addCommonFlags(cli);
    cli.parse(argc, argv);

    const ConvSpec specs[] = {
        ConvSpec{36, 36, 3, 64, 5, 5, 1, 1},   // CIFAR L0
        ConvSpec{28, 28, 1, 20, 5, 5, 1, 1},   // MNIST L0
        ConvSpec::square(32, 32, 32, 4),       // Table 1 ID 0
        ConvSpec::square(64, 64, 16, 11),      // Table 1 ID 5
    };
    const double pruning[] = {0.0, 0.5, 0.75, 0.9, 0.95};

    TablePrinter table(
        "Extension: sparse-weights FP speedup over dense "
        "gemm-in-parallel vs weight pruning — MEASURED, 1 core",
        {"spec", "p=0", "0.5", "0.75", "0.9", "0.95"});

    ThreadPool pool(1);
    Rng rng(12);
    for (const ConvSpec &spec : specs) {
        std::int64_t batch = 4;
        Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        in.fillUniform(rng);

        GemmInParallelEngine dense;
        SparseWeightsFpEngine sparse;
        std::vector<std::string> row = {spec.str()};
        for (double p : pruning) {
            Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
            w.fillUniform(rng);
            Rng prng(13);
            w.sparsify(prng, p);
            double t_dense = bestTimeSeconds(2, [&] {
                dense.forward(spec, in, w, out, pool);
            });
            double t_sparse = bestTimeSeconds(2, [&] {
                sparse.forward(spec, in, w, out, pool);
            });
            row.push_back(TablePrinter::fmt(t_dense / t_sparse, 2));
        }
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
