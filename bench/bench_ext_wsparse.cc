/**
 * @file
 * Extension bench: forward propagation under WEIGHT sparsity (pruned
 * models) — the Fig. 4-style crossover of the CSR-weights engines.
 *
 * Per Table 1 layer and per pruning level, measures (MEASURED, this
 * host):
 *
 *  - dense baseline: gemm-in-parallel, oblivious to weight zeros;
 *  - "axpy": the original sparse-weights engine (row AXPY into a
 *    zeroed output plane), running WARM on its cached CSR plan;
 *  - "direct": the register-tiled sparse-weights-direct engine, warm;
 *  - the once-per-weight-version CSR encode cost (cold call through
 *    PackedWeightCache, reported informationally as encode_ms).
 *
 * Every direct result is verified bit-for-bit against the reference
 * engine before timing. Repetitions are interleaved across the three
 * engines so clock drift hits all candidates equally. Results go to a
 * table and BENCH_wsparse.json for tools/bench_compare.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "conv/engine_sparse_direct.hh"
#include "conv/engine_sparse_weights.hh"
#include "conv/engines.hh"
#include "conv/packed_weights.hh"
#include "core/tuner.hh"
#include "data/suites.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

std::vector<int>
parseIds(const std::string &csv)
{
    std::vector<int> ids;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            ids.push_back(std::stoi(item));
    return ids;
}

std::vector<double>
parseSparsities(const std::string &csv)
{
    std::vector<double> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(std::stod(item));
    return out;
}

struct Point
{
    double weight_sparsity = 0;   ///< actual zero fraction measured at
    double dense_seconds = 0;
    double axpy_seconds = 0;
    double direct_seconds = 0;
    double encode_seconds = 0;    ///< once-per-weight-version CSR build
    double speedupVsAxpy() const
    {
        return direct_seconds > 0 ? axpy_seconds / direct_seconds : 0.0;
    }
    double speedupVsDense() const
    {
        return direct_seconds > 0 ? dense_seconds / direct_seconds : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli(
        "Weight-sparsity FP crossover: dense gemm-in-parallel vs the "
        "row-AXPY sparse-weights engine vs the register-tiled "
        "sparse-weights-direct engine across pruning levels "
        "(MEASURED)");
    addCommonFlags(cli);
    cli.addString("ids", "0,5",
                  "comma-separated Table 1 convolution ids");
    cli.addString("sparsities", "0,0.5,0.7,0.8,0.9,0.95",
                  "comma-separated weight zero fractions");
    cli.addInt("reps", 3, "timed repetitions (best-of)");
    cli.addInt("bench-batch", 2, "minibatch size of the measurement");
    cli.addInt("max-spatial", 64,
               "cap nx/ny of huge Table 1 layers to keep the bench "
               "tractable (0 = full size)");
    cli.addInt("cores", 0, "worker pool size (0 = hardware threads)");
    cli.addBool("tuner", true,
                "also run the tuner at the highest sparsity and report "
                "its FP pick");
    cli.addString("json-file", "BENCH_wsparse.json",
                  "machine-readable output path ('' to skip)");
    cli.parse(argc, argv);

    int reps = static_cast<int>(cli.getInt("reps"));
    std::int64_t cap = cli.getInt("max-spatial");
    std::int64_t batch = cli.getInt("bench-batch");
    int cores = static_cast<int>(cli.getInt("cores"));
    if (cores <= 0)
        cores = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    ThreadPool pool(cores);
    std::vector<double> sparsities =
        parseSparsities(cli.getString("sparsities"));

    TablePrinter table(
        "CSR-weights FP engines vs dense per pruning level (" +
            std::to_string(cores) + " core(s), batch " +
            std::to_string(batch) + ", best of " +
            std::to_string(reps) + ", MEASURED)",
        {"ID", "spec", "w-sparsity", "dense ms", "axpy ms",
         "direct ms", "direct/axpy", "direct/dense", "encode ms"});

    std::ostringstream json;
    json << "{\n  \"bench\": \"wsparse\",\n  \"reps\": " << reps
         << ",\n  \"cores\": " << cores << ",\n  \"batch\": " << batch
         << ",\n  \"layers\": [";

    GemmInParallelEngine dense;
    SparseWeightsFpEngine axpy;
    SparseDirectFpEngine direct;
    ReferenceEngine reference;
    PackedWeightCache &wcache = PackedWeightCache::global();

    bool first_layer = true;
    for (int id : parseIds(cli.getString("ids"))) {
        const auto &entries = table1Convolutions();
        auto it =
            std::find_if(entries.begin(), entries.end(),
                         [&](const auto &e) { return e.id == id; });
        if (it == entries.end())
            fatal("no Table 1 convolution with id %d", id);
        ConvSpec spec = it->spec;
        if (cap > 0 && (spec.nx > cap || spec.ny > cap)) {
            spec.nx = std::min(spec.nx, cap);
            spec.ny = std::min(spec.ny, cap);
        }
        spec.validate();

        Rng rng(9000 + id);
        Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor ref(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        in.fillUniform(rng);
        out.fill(0.0f);

        json << (first_layer ? "" : ",") << "\n    {\"id\": " << id
             << ", \"spec\": \"" << spec.str() << "\", \"points\": [";
        first_layer = false;

        bool first_point = true;
        for (double p : sparsities) {
            Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
            w.fillUniform(rng, -0.5f, 0.5f);
            Rng prng(13 + id);
            w.sparsify(prng, p);

            Point pt;
            pt.weight_sparsity = w.sparsity();

            // Correctness gate before any timing: the direct engine is
            // bit-for-bit with the reference at every sparsity.
            reference.forward(spec, in, w, ref, pool);
            direct.forward(spec, in, w, out, pool);
            if (maxAbsDiff(out, ref) != 0.0f)
                fatal("sparse-weights-direct diverged from reference "
                      "at id %d sparsity %.2f (maxdiff %g)",
                      id, p, maxAbsDiff(out, ref));

            // Cold encode cost, once per weight version. The verify
            // call above already built the plan; rebuild from cold so
            // the measurement is honest.
            wcache.invalidate(w.data());
            auto before = wcache.sparseStats();
            direct.forward(spec, in, w, out, pool);
            pt.encode_seconds =
                wcache.sparseStats().encode_seconds -
                before.encode_seconds;

            // Warm steady-state timing, reps interleaved across the
            // three engines.
            axpy.forward(spec, in, w, out, pool);  // warm axpy plan
            pt.dense_seconds = pt.axpy_seconds = pt.direct_seconds =
                1e30;
            for (int rep = 0; rep < reps; ++rep) {
                pt.dense_seconds =
                    std::min(pt.dense_seconds, bestTimeSeconds(1, [&] {
                                 dense.forward(spec, in, w, out, pool);
                             }));
                pt.axpy_seconds =
                    std::min(pt.axpy_seconds, bestTimeSeconds(1, [&] {
                                 axpy.forward(spec, in, w, out, pool);
                             }));
                pt.direct_seconds =
                    std::min(pt.direct_seconds,
                             bestTimeSeconds(1, [&] {
                                 direct.forward(spec, in, w, out, pool);
                             }));
            }

            table.addRow({
                TablePrinter::fmt(static_cast<long long>(id)),
                spec.str(),
                TablePrinter::fmt(pt.weight_sparsity, 2),
                TablePrinter::fmt(pt.dense_seconds * 1e3, 2),
                TablePrinter::fmt(pt.axpy_seconds * 1e3, 2),
                TablePrinter::fmt(pt.direct_seconds * 1e3, 2),
                TablePrinter::fmt(pt.speedupVsAxpy(), 2),
                TablePrinter::fmt(pt.speedupVsDense(), 2),
                TablePrinter::fmt(pt.encode_seconds * 1e3, 3),
            });
            json << (first_point ? "" : ",")
                 << "\n      {\"weight_sparsity\": "
                 << pt.weight_sparsity
                 << ", \"seconds\": {\"dense\": " << pt.dense_seconds
                 << ", \"axpy\": " << pt.axpy_seconds
                 << ", \"direct\": " << pt.direct_seconds
                 << "}, \"speedup_direct_vs_axpy\": "
                 << pt.speedupVsAxpy()
                 << ", \"speedup_direct_vs_dense\": "
                 << pt.speedupVsDense()
                 << ", \"encode_ms\": " << pt.encode_seconds * 1e3
                 << "}";
            first_point = false;
        }
        json << "\n    ]";

        // The scheduler's view at the deepest pruning level: does the
        // crossover actually deploy a CSR-weights engine here?
        if (cli.getBool("tuner") && !sparsities.empty()) {
            double deepest =
                *std::max_element(sparsities.begin(), sparsities.end());
            TunerOptions topts;
            topts.reps = reps;
            topts.batch = batch;
            topts.use_extensions = true;
            Tuner tuner(topts);
            LayerPlan plan = tuner.tune(spec, 0.0, pool,
                                        /*fused_relu=*/false, deepest);
            std::printf("tuner (id %d, weight sparsity %.2f): FP -> "
                        "%s\n",
                        id, plan.tuned_weight_sparsity,
                        plan.fp_engine.c_str());
            json << ", \"tuner_fp_at_deepest\": \"" << plan.fp_engine
                 << "\"";
        }
        json << "}";
    }
    json << "\n  ]\n}\n";

    emit(cli, table);

    std::string path = cli.getString("json-file");
    if (!path.empty()) {
        std::ofstream f(path);
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        f << json.str();
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
