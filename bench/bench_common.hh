/**
 * @file
 * Shared plumbing for the figure/table reproduction benches.
 *
 * Every bench regenerates one table or figure of the paper. Because
 * this reproduction runs on a single-core host, each bench reports up
 * to two kinds of numbers, clearly labelled:
 *
 *  - SIMULATED: the modeled 16-core Xeon E5-2650 (simcpu) — these are
 *    the rows/series the paper's multicore figures show;
 *  - MEASURED: real single-core kernel executions on this host —
 *    ground truth validating the single-core claims and calibrating
 *    the model.
 */

#ifndef SPG_BENCH_COMMON_HH
#define SPG_BENCH_COMMON_HH

#include <string>

#include "simcpu/conv_model.hh"
#include "util/cli.hh"
#include "util/table.hh"

namespace spg {

/** Core counts the paper's scalability figures sweep. */
inline const int kCoreSweep[] = {1, 2, 4, 8, 16};

/** Sparsity sweep of Fig. 4f (paper x-axis). */
inline const double kSparsitySweep[] = {0.0,  0.5,  0.75, 0.88,
                                        0.94, 0.97, 0.99};

/** Register the flags every bench shares. */
inline void
addCommonFlags(CliParser &cli)
{
    cli.addBool("csv", false, "also emit CSV to stdout");
    cli.addString("csv-file", "", "write CSV to this path");
    cli.addInt("batch", 64, "simulated minibatch size");
}

/** Print the table and honour the CSV flags. */
inline void
emit(const CliParser &cli, const TablePrinter &table)
{
    table.print();
    if (cli.getBool("csv"))
        table.printCsv();
    std::string path = cli.getString("csv-file");
    if (!path.empty())
        table.writeCsv(path);
}

} // namespace spg

#endif // SPG_BENCH_COMMON_HH
