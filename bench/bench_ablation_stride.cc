/**
 * @file
 * Ablation: the Eq. 21 strided data-layout transform in the stencil
 * kernel.
 *
 * With the transform, strided kernel taps become unit-stride vector
 * loads; without it, x-strided access defeats vectorization entirely
 * (the engine falls back to scalar code). Measured with the REAL
 * StencilEngine on this host on the strided Table 2 layers.
 */

#include "bench/bench_common.hh"
#include "conv/engine_stencil.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Ablation: stencil strided-x layout transform on/off "
                  "(measured on this host)");
    addCommonFlags(cli);
    cli.parse(argc, argv);

    const ConvSpec specs[] = {
        ConvSpec::square(64, 32, 8, 5, 2),   // stride 2
        ConvSpec::square(96, 16, 3, 7, 2),   // ImageNet-22K-L0-like
        ConvSpec::square(64, 24, 3, 11, 4),  // AlexNet-L0-like
    };

    TablePrinter table(
        "Ablation: Stencil FP with/without the Eq. 21 strided split — "
        "MEASURED, 1 core",
        {"spec", "with transform (GF/s)", "without (GF/s)", "speedup"});

    ThreadPool pool(1);
    Rng rng(11);
    for (const ConvSpec &spec : specs) {
        std::int64_t batch = 4;
        Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        in.fillUniform(rng);
        w.fillUniform(rng);
        double flops = batch * static_cast<double>(spec.flops());

        auto gflops = [&](bool transform) {
            StencilEngine engine(0, transform);
            double t = bestTimeSeconds(3, [&] {
                engine.forward(spec, in, w, out, pool);
            });
            return flops / t / 1e9;
        };

        double with_t = gflops(true);
        double without = gflops(false);
        table.addRow({spec.str(), TablePrinter::fmt(with_t, 1),
                      TablePrinter::fmt(without, 1),
                      TablePrinter::fmt(with_t / without, 2) + "x"});
    }
    emit(cli, table);
    return 0;
}
