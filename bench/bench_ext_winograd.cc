/**
 * @file
 * Extension bench: Winograd F(2x2, 3x3) minimal filtering (the
 * paper's citation [18], "minimizing computation in CNNs") on the
 * 3x3 stride-1 layers of Table 2.
 *
 * MEASURED on this host: FP time of gemm-in-parallel, stencil and
 * winograd; the winograd column reflects its 2.25x arithmetic
 * reduction minus transform overheads.
 */

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "data/suites.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Extension: Winograd F(2x2,3x3) vs direct engines "
                  "on the 3x3 Table 2 layers (measured on this host)");
    addCommonFlags(cli);
    cli.parse(argc, argv);

    TablePrinter table(
        "Extension: FP time (ms, batch 2) on 3x3 stride-1 layers — "
        "MEASURED, 1 core",
        {"layer", "spec", "gemm-in-parallel", "stencil", "winograd",
         "winograd vs best"});

    // Table 2's 3x3 layers (small spatial dims, where winograd's
    // transforms dominate) plus VGG-style layers (large spatial dims,
    // where the 2.25x arithmetic reduction pays off).
    struct Row
    {
        std::string label;
        ConvSpec spec;
    };
    std::vector<Row> rows;
    for (const auto &entry : table2Layers()) {
        const ConvSpec &spec = entry.spec;
        if (spec.fx == 3 && spec.fy == 3 && spec.sx == 1 && spec.sy == 1)
            rows.push_back(
                {entry.benchmark + " L" + std::to_string(entry.layer),
                 spec});
    }
    rows.push_back({"VGG-style", ConvSpec::square(56, 64, 64, 3)});
    rows.push_back({"VGG-style", ConvSpec::square(56, 128, 128, 3)});
    rows.push_back({"VGG-style", ConvSpec::square(112, 64, 32, 3)});

    ThreadPool pool(1);
    Rng rng(15);
    for (const auto &row_def : rows) {
        const ConvSpec &spec = row_def.spec;
        std::int64_t batch = 2;
        Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        in.fillUniform(rng);
        w.fillUniform(rng);

        auto time_of = [&](const char *name) {
            auto engine = makeEngine(name);
            return bestTimeSeconds(2, [&] {
                engine->forward(spec, in, w, out, pool);
            });
        };
        double t_gemm = time_of("gemm-in-parallel");
        double t_stencil = time_of("stencil");
        double t_wino = time_of("winograd");
        double best = std::min(t_gemm, t_stencil);
        table.addRow({
            row_def.label,
            spec.str(),
            TablePrinter::fmt(t_gemm * 1e3, 2),
            TablePrinter::fmt(t_stencil * 1e3, 2),
            TablePrinter::fmt(t_wino * 1e3, 2),
            TablePrinter::fmt(best / t_wino, 2) + "x",
        });
    }
    emit(cli, table);
    return 0;
}
