/**
 * @file
 * Serving goodput under open-loop load (MEASURED, this host).
 *
 * For each network (Table 1 MNIST / CIFAR-10 geometries):
 *
 *  - Saturation capacity: the queue is pre-filled before the instance
 *    threads start and the drain is timed — offered load = infinity
 *    with no load-generator interference — once with dynamic batching
 *    (max_batch, coalesced fused forward passes) and once with
 *    batch-1 serving. Their ratio is the dynamic-batching speedup at
 *    saturation, the headline gated metric.
 *
 *  - Goodput-vs-load curve: open-loop Poisson arrivals at fixed
 *    fractions of the measured capacity, from light load through the
 *    overload knee. Each point reports completed QPS, goodput (within
 *    SLO), exact p50/p99 latency, mean coalesced batch and queue
 *    rejections. The knee is the largest offered rate whose goodput
 *    still covers >= 90% of it.
 *
 * Results go to a table and BENCH_serve.json so tools/bench_compare
 * can track the trajectory across PRs ("batching_speedup" is gated
 * LowerWorse; the qps/goodput/latency series are informational).
 */

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/net_config.hh"
#include "data/suites.hh"
#include "data/synthetic.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "util/logging.hh"

using namespace spg;

namespace {

const double kLoadFractions[] = {0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5};

struct NetResult
{
    std::string name;
    double capacity_qps = 0;
    double batch1_capacity_qps = 0;
    double batching_speedup = 0;
    double knee_qps = 0;
    std::vector<serve::LoadGenResult> points;
    /** Per conv layer: label + engine per bucket (from the server). */
    std::vector<std::string> plan_labels;
    std::vector<ServingLayerPlan> plans;
};

NetConfig
configFor(const std::string &name)
{
    if (name == "mnist")
        return parseNetConfig(mnistNetConfigText());
    if (name == "cifar10")
        return parseNetConfig(cifar10NetConfigText());
    if (name == "imagenet100")
        return parseNetConfig(imagenet100NetConfigText());
    return parseNetConfigFile(name);
}

Dataset
datasetFor(const NetConfig &config, std::int64_t count)
{
    SyntheticSpec spec;
    spec.name = config.name + "-serve";
    spec.channels = config.channels;
    spec.height = config.height;
    spec.width = config.width;
    spec.classes =
        config.classes > 0 ? static_cast<int>(config.classes) : 10;
    spec.count = count;
    return makeSynthetic(spec);
}

std::vector<std::string>
parseNets(const std::string &csv)
{
    std::vector<std::string> nets;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            nets.push_back(item);
    if (nets.empty())
        fatal("--nets must name at least one network");
    return nets;
}

void
writeJson(const std::string &path, const CliParser &cli,
          const std::vector<NetResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write '%s'", path.c_str());
    std::fprintf(f, "{\n  \"bench\": \"serve\",\n");
    std::fprintf(f, "  \"requests\": %lld,\n",
                 static_cast<long long>(cli.getInt("requests")));
    std::fprintf(f, "  \"max_batch\": %lld,\n",
                 static_cast<long long>(cli.getInt("max-batch")));
    std::fprintf(f, "  \"budget_ms\": %g,\n",
                 cli.getDouble("budget-ms"));
    std::fprintf(f, "  \"slo_ms\": %g,\n", cli.getDouble("slo-ms"));
    std::fprintf(f, "  \"nets\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const NetResult &r = results[i];
        std::fprintf(f, "    {\"name\": \"%s\",\n", r.name.c_str());
        std::fprintf(f,
                     "     \"capacity_qps\": %.2f, "
                     "\"batch1_capacity_qps\": %.2f, "
                     "\"batching_speedup\": %.4f, "
                     "\"knee_qps\": %.2f,\n",
                     r.capacity_qps, r.batch1_capacity_qps,
                     r.batching_speedup, r.knee_qps);
        std::fprintf(f, "     \"plans\": [");
        for (std::size_t j = 0; j < r.plans.size(); ++j) {
            std::fprintf(f, "%s\n       {\"layer\": \"%s\", "
                            "\"buckets\": [",
                         j ? "," : "", r.plan_labels[j].c_str());
            const ServingLayerPlan &plan = r.plans[j];
            for (std::size_t b = 0; b < plan.buckets.size(); ++b)
                std::fprintf(
                    f, "%s{\"batch\": %lld, \"engine\": \"%s\"}",
                    b ? ", " : "",
                    static_cast<long long>(plan.buckets[b]),
                    plan.fp_engines[b].c_str());
            std::fprintf(f, "]}");
        }
        std::fprintf(f, "],\n     \"points\": [\n");
        for (std::size_t p = 0; p < r.points.size(); ++p) {
            const serve::LoadGenResult &pt = r.points[p];
            std::fprintf(
                f,
                "       {\"offered_qps\": %.2f, \"qps\": %.2f, "
                "\"goodput_qps\": %.2f, \"p50_ms\": %.4f, "
                "\"p99_ms\": %.4f, \"mean_batch\": %.3f, "
                "\"rejected\": %lld}%s\n",
                pt.offered_qps, pt.qps, pt.goodput_qps, pt.p50_ms,
                pt.p99_ms, pt.mean_batch,
                static_cast<long long>(pt.rejected),
                p + 1 < r.points.size() ? "," : "");
        }
        std::fprintf(f, "     ]}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("bench_serve");
    cli.addString("nets", "mnist,cifar10",
                  "comma-separated networks to serve");
    cli.addInt("requests", 512, "pre-filled requests per capacity probe");
    cli.addDouble("duration", 0.5, "arrival window per sweep point, s");
    cli.addInt("max-batch", 8, "largest coalesced batch");
    cli.addDouble("budget-ms", 2.0, "dynamic-batching latency budget");
    cli.addInt("threads", 1, "pool threads per instance");
    cli.addInt("instances", 1, "concurrent model instances");
    cli.addInt("tune", 1, "run the serving tuner (0 = default engine)");
    cli.addInt("tuner-reps", 3, "timed reps per tuner measurement");
    cli.addDouble("slo-ms", 50.0, "latency SLO defining goodput");
    cli.addInt("seed", 42, "arrival / image sampling seed");
    cli.addInt("dataset-size", 64, "synthetic examples");
    cli.addString("json-file", "BENCH_serve.json",
                  "machine-readable output path ('' to skip)");
    cli.parse(argc, argv);

    std::int64_t requests = cli.getInt("requests");
    std::uint64_t seed = static_cast<std::uint64_t>(cli.getInt("seed"));

    std::vector<NetResult> results;
    for (const std::string &name : parseNets(cli.getString("nets"))) {
        NetConfig config = configFor(name);
        Dataset dataset = datasetFor(config, cli.getInt("dataset-size"));
        NetResult res;
        res.name = name;

        serve::ServerOptions sopts;
        sopts.instances = static_cast<int>(cli.getInt("instances"));
        sopts.max_batch = cli.getInt("max-batch");
        sopts.batch_budget_ms = cli.getDouble("budget-ms");
        sopts.queue_capacity = static_cast<std::size_t>(
            std::max<std::int64_t>(requests, 4096));
        sopts.threads_per_instance =
            static_cast<int>(cli.getInt("threads"));
        sopts.tune = cli.getInt("tune") != 0;
        sopts.tuner_reps = static_cast<int>(cli.getInt("tuner-reps"));

        // Saturation capacity with dynamic batching; the server stays
        // running and serves the open-loop sweep afterwards.
        serve::Server batched(config, sopts);
        res.capacity_qps =
            serve::capacityProbe(batched, dataset, requests, seed);
        res.plan_labels = batched.planLabels();
        res.plans = batched.servingPlans();

        for (double frac : kLoadFractions) {
            serve::LoadGenOptions lopts;
            lopts.rate_qps = res.capacity_qps * frac;
            lopts.duration_s = cli.getDouble("duration");
            lopts.seed = seed + static_cast<std::uint64_t>(frac * 100);
            lopts.slo_ms = cli.getDouble("slo-ms");
            res.points.push_back(
                serve::runOpenLoop(batched, dataset, lopts));
        }
        batched.stop();

        // Batch-1 serving, tuned the same way (its single bucket gets
        // the best batch-1 engine), measured at saturation.
        serve::ServerOptions s1 = sopts;
        s1.max_batch = 1;
        serve::Server single(config, s1);
        res.batch1_capacity_qps =
            serve::capacityProbe(single, dataset, requests, seed);
        single.stop();

        res.batching_speedup =
            res.batch1_capacity_qps > 0
                ? res.capacity_qps / res.batch1_capacity_qps
                : 0;
        for (const serve::LoadGenResult &pt : res.points)
            if (pt.goodput_qps >= 0.9 * pt.offered_qps &&
                pt.goodput_qps > res.knee_qps)
                res.knee_qps = pt.goodput_qps;
        results.push_back(std::move(res));
    }

    for (const NetResult &r : results) {
        TablePrinter table(
            "serving goodput under open-loop load: " + r.name +
                " (MEASURED, max_batch " +
                std::to_string(cli.getInt("max-batch")) + ", " +
                std::to_string(cli.getInt("threads")) +
                " thread(s)/instance)",
            {"offered qps", "qps", "goodput", "p50 ms", "p99 ms",
             "batch", "rejected"});
        for (const serve::LoadGenResult &pt : r.points)
            table.addRow({TablePrinter::fmt(pt.offered_qps, 1),
                          TablePrinter::fmt(pt.qps, 1),
                          TablePrinter::fmt(pt.goodput_qps, 1),
                          TablePrinter::fmt(pt.p50_ms, 2),
                          TablePrinter::fmt(pt.p99_ms, 2),
                          TablePrinter::fmt(pt.mean_batch, 2),
                          std::to_string(pt.rejected)});
        table.print();
        std::printf("%s: capacity %.1f qps (batch-1 %.1f) -> "
                    "batching speedup %.2fx, knee %.1f qps\n\n",
                    r.name.c_str(), r.capacity_qps,
                    r.batch1_capacity_qps, r.batching_speedup,
                    r.knee_qps);
    }

    if (!cli.getString("json-file").empty())
        writeJson(cli.getString("json-file"), cli, results);
    return 0;
}
