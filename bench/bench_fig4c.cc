/**
 * @file
 * Reproduces paper Fig. 4c: scalability and absolute performance of
 * the Stencil-Kernel (FP), including its data-layout transformation
 * time. Because the stencil schedule distributes whole images across
 * cores, its per-core performance is nearly flat in the core count.
 *
 * The MEASURED column runs the real StencilEngine single-core on this
 * host (small convolutions only; the big Table 1 geometries are
 * GEMM territory and are skipped to keep the bench fast).
 */

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "data/suites.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

/** Measured single-core stencil FP GFlops on this host. */
double
measuredStencilGflops(const ConvSpec &spec, std::int64_t batch)
{
    ThreadPool pool(1);
    Rng rng(5);
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    in.fillUniform(rng);
    w.fillUniform(rng);
    StencilEngine engine;
    double seconds = bestTimeSeconds(2, [&] {
        engine.forward(spec, in, w, out, pool);
    });
    return batch * static_cast<double>(spec.flops()) / seconds / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 4c (Stencil-Kernel FP "
                  "scalability)");
    addCommonFlags(cli);
    cli.addBool("measure", true, "run the real stencil on this host");
    cli.addInt("measure-flops-limit", 8,
               "skip measured column above this many GFlops per image "
               "batch");
    cli.parse(argc, argv);
    std::int64_t batch = cli.getInt("batch");

    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter table(
        "Fig. 4c: Stencil-Kernel (FP) GFlops per core (batch " +
            std::to_string(batch) +
            ", incl. layout transform) — SIMULATED; MEASURED = host "
            "1-core",
        {"ID", "Nf", "1", "2", "4", "8", "16", "measured 1-core"});

    double flops_limit = cli.getInt("measure-flops-limit") * 1e9;
    for (const auto &entry : table1Convolutions()) {
        std::vector<std::string> row = {
            TablePrinter::fmt(static_cast<long long>(entry.id)),
            TablePrinter::fmt(static_cast<long long>(entry.spec.nf))};
        for (int cores : kCoreSweep) {
            SimResult r = modelConvPhase(machine, entry.spec,
                                         Phase::Forward, "stencil",
                                         batch, cores);
            row.push_back(TablePrinter::fmt(r.gflopsPerCore(), 1));
        }
        std::int64_t measure_batch = 4;
        bool feasible = measure_batch *
                            static_cast<double>(entry.spec.flops()) <
                        flops_limit;
        row.push_back(cli.getBool("measure") && feasible
                          ? TablePrinter::fmt(measuredStencilGflops(
                                                  entry.spec,
                                                  measure_batch),
                                              1)
                          : "-");
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
