/**
 * @file
 * Reproduces paper Table 1: the six characterization convolutions,
 * their intrinsic AIT, the AIT achievable after unfolding
 * (Unfold+GEMM), and the Fig. 1 regions they occupy.
 *
 * Everything here is analytic (Eqs. 5-8); the paper-reported values
 * are printed alongside for comparison. Note the paper's own table
 * computed |U| with the input spatial size although its formula uses
 * the output size; the "unfold AIT (paper |U|)" column reproduces the
 * table's convention, "unfold AIT" the formula's.
 */

#include "bench/bench_common.hh"
#include "data/suites.hh"
#include "perf/region.hh"

using namespace spg;

namespace {

/** Unfold AIT with |U| computed the way the paper's table did. */
double
unfoldAitPaperTable(const ConvSpec &spec)
{
    double u = static_cast<double>(spec.nx) * spec.ny * spec.nc *
               spec.fx * spec.fy;
    double mem = 2 * u + spec.weightElems() + spec.outputElems();
    return static_cast<double>(spec.flops()) / mem;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Table 1 (AIT characterization)");
    addCommonFlags(cli);
    cli.parse(argc, argv);

    TablePrinter table(
        "Table 1: convolutions, intrinsic AIT, Unfold+GEMM AIT, region",
        {"ID", "Nx,Nf,Nc,Fx,sx", "intrinsic AIT", "paper", "unfold AIT",
         "unfold AIT (paper |U|)", "paper", "region", "paper region"});

    for (const auto &entry : table1Convolutions()) {
        table.addRow({
            TablePrinter::fmt(static_cast<long long>(entry.id)),
            entry.spec.str(),
            TablePrinter::fmt(entry.spec.intrinsicAit(), 0),
            TablePrinter::fmt(entry.paper_intrinsic_ait, 0),
            TablePrinter::fmt(entry.spec.unfoldAit(), 0),
            TablePrinter::fmt(unfoldAitPaperTable(entry.spec), 0),
            TablePrinter::fmt(entry.paper_unfold_ait, 0),
            regionPair(entry.spec),
            entry.paper_region,
        });
    }
    emit(cli, table);
    return 0;
}
