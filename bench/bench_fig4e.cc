/**
 * @file
 * Reproduces paper Fig. 4e: goodput of the Sparse-Kernel (BP) as a
 * function of sparsity at 16 cores, including the costs of the
 * data-layout transformations and CT-CSR construction.
 *
 * Expected shape: consistently high goodput below ~90% sparsity, then
 * a drop as the bottleneck shifts from gradient computation to the
 * layout transforms.
 *
 * The MEASURED column runs the real SparseBpEngine single-core at 85%
 * sparsity on this host.
 */

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "data/suites.hh"
#include "sparse/sparse_plan.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

/** Measured single-core goodput (GFlops/s of non-zero work). */
double
measuredGoodput(const std::string &engine_name, const ConvSpec &spec,
                double sparsity, std::int64_t batch)
{
    ThreadPool pool(1);
    Rng rng(7);
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    Tensor ei(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    w.fillUniform(rng);
    in.fillUniform(rng);
    eo.fillUniform(rng);
    eo.sparsify(rng, sparsity);
    double nnz_frac = 1.0 - eo.sparsity();

    auto engine = makeEngine(engine_name);
    Tensor dw(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    double seconds = bestTimeSeconds(2, [&] {
        // Each rep is one training minibatch: the encode-once engine
        // re-encodes in BP-data (a fresh EO would miss) and reuses the
        // plan in BP-weights.
        SparsePlanCache::global().invalidate(eo.data());
        engine->backwardData(spec, eo, w, ei, pool);
        engine->backwardWeights(spec, eo, in, dw, pool);
    });
    // Non-zero flops of both BP phases.
    double useful = 2.0 * nnz_frac * batch *
                    static_cast<double>(spec.flops());
    return useful / seconds / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 4e (Sparse-Kernel BP goodput "
                  "vs sparsity)");
    addCommonFlags(cli);
    cli.addBool("measure", true,
                "run the real sparse engine on this host");
    cli.addInt("measure-flops-limit", 8,
               "skip measured column above this many GFlops per image "
               "batch");
    cli.addString("sparse-engine", "sparse",
                  "sparse BP engine to model and measure (sparse | "
                  "sparse-cached)");
    cli.parse(argc, argv);
    std::int64_t batch = cli.getInt("batch");
    std::string engine_name = cli.getString("sparse-engine");

    MachineModel machine = MachineModel::xeonE5_2650();
    const double sweep[] = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.97};
    TablePrinter table(
        "Fig. 4e: Sparse-Kernel (BP) goodput in GFlops/s at 16 cores "
        "(batch " + std::to_string(batch) + ", transforms included) — "
        "SIMULATED; MEASURED = host 1-core @85%",
        {"ID", "s=0.5", "0.6", "0.7", "0.8", "0.9", "0.95", "0.97",
         "measured 1-core"});

    double flops_limit = cli.getInt("measure-flops-limit") * 1e9;
    for (const auto &entry : table1Convolutions()) {
        std::vector<std::string> row = {
            TablePrinter::fmt(static_cast<long long>(entry.id))};
        for (double sparsity : sweep) {
            double goodput = 0, seconds = 0;
            for (Phase phase :
                 {Phase::BackwardData, Phase::BackwardWeights}) {
                SimResult r = modelConvPhase(machine, entry.spec, phase,
                                             engine_name, batch, 16,
                                             sparsity);
                goodput += r.useful_flops;
                seconds += r.seconds;
            }
            row.push_back(TablePrinter::fmt(goodput / seconds / 1e9, 0));
        }
        std::int64_t measure_batch = 2;
        bool feasible = measure_batch *
                            static_cast<double>(entry.spec.flops()) <
                        flops_limit;
        row.push_back(cli.getBool("measure") && feasible
                          ? TablePrinter::fmt(
                                measuredGoodput(engine_name, entry.spec,
                                                0.85, measure_batch),
                                1)
                          : "-");
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
