/**
 * @file
 * Google-benchmark micro-benchmarks of the computational primitives
 * every figure rests on: the blocked SGEMM, the sparse AXPY, the
 * stencil basic blocks, im2col unfolding and the CT-CSR build.
 *
 * These are throughput microbenches (not figure reproductions); they
 * are the numbers to watch when porting the kernels to new hardware.
 */

#include <benchmark/benchmark.h>

#include "blas/gemm.hh"
#include "conv/engines.hh"
#include "conv/unfold.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_mm.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"

namespace spg {
namespace {

void
BM_Sgemm(benchmark::State &state)
{
    std::int64_t n = state.range(0);
    Tensor a(Shape{n, n}), b(Shape{n, n}), c(Shape{n, n});
    Rng rng(1);
    a.fillUniform(rng);
    b.fillUniform(rng);
    for (auto _ : state) {
        sgemm(Trans::No, Trans::No, n, n, n, a.data(), b.data(), 0.0f,
              c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFlops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 2 * n * n * n * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sgemm)->Arg(128)->Arg(256)->Arg(512);

void
BM_SgemmSkinny(benchmark::State &state)
{
    // The unfolded FP MM of a small CNN layer: m = Nf is tiny.
    std::int64_t m = state.range(0), n = 1024, k = 75;
    Tensor a(Shape{m, k}), b(Shape{k, n}), c(Shape{m, n});
    Rng rng(2);
    a.fillUniform(rng);
    b.fillUniform(rng);
    for (auto _ : state) {
        sgemm(Trans::No, Trans::No, m, n, k, a.data(), b.data(), 0.0f,
              c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFlops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 2 * m * n * k * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmSkinny)->Arg(8)->Arg(20)->Arg(64);

void
BM_Axpy(benchmark::State &state)
{
    std::int64_t n = state.range(0);
    Tensor x(Shape{n}), y(Shape{n});
    Rng rng(3);
    x.fillUniform(rng);
    for (auto _ : state) {
        axpy(n, 1.01f, x.data(), y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.counters["GFlops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 2 * n * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Axpy)->Arg(64)->Arg(1024)->Arg(65536);

void
BM_Unfold(benchmark::State &state)
{
    ConvSpec spec = ConvSpec::square(64, 64, 16, 5);
    Tensor in(Shape{spec.nc, spec.ny, spec.nx});
    Tensor u(Shape{spec.gemmK(), spec.gemmN()});
    Rng rng(4);
    in.fillUniform(rng);
    for (auto _ : state) {
        unfoldImage(spec, in.data(), u.data());
        benchmark::DoNotOptimize(u.data());
    }
    state.counters["GB"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * u.size() * 4 * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Unfold);

void
BM_StencilForward(benchmark::State &state)
{
    ConvSpec spec{36, 36, 3, 64, 5, 5, 1, 1};  // CIFAR L0
    ThreadPool pool(1);
    Tensor in(Shape{1, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor out(Shape{1, spec.nf, spec.outY(), spec.outX()});
    Rng rng(5);
    in.fillUniform(rng);
    w.fillUniform(rng);
    StencilEngine engine;
    for (auto _ : state) {
        engine.forward(spec, in, w, out, pool);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["GFlops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * spec.flops() * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StencilForward);

void
BM_CtCsrBuild(benchmark::State &state)
{
    double sparsity = static_cast<double>(state.range(0)) / 100.0;
    std::int64_t rows = 1024, cols = 256;
    Tensor dense(Shape{rows, cols});
    Rng rng(6);
    dense.fillUniform(rng);
    dense.sparsify(rng, sparsity);
    for (auto _ : state) {
        CtCsrMatrix m = CtCsrMatrix::fromDense(dense.data(), rows, cols,
                                               64);
        benchmark::DoNotOptimize(m.nnz());
    }
}
BENCHMARK(BM_CtCsrBuild)->Arg(50)->Arg(85)->Arg(97);

void
BM_SparseBpBackwardData(benchmark::State &state)
{
    double sparsity = static_cast<double>(state.range(0)) / 100.0;
    ConvSpec spec = ConvSpec::square(32, 64, 32, 3);
    ThreadPool pool(1);
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor eo(Shape{1, spec.nf, spec.outY(), spec.outX()});
    Tensor ei(Shape{1, spec.nc, spec.ny, spec.nx});
    Rng rng(7);
    w.fillUniform(rng);
    eo.fillUniform(rng);
    eo.sparsify(rng, sparsity);
    SparseBpEngine engine;
    for (auto _ : state) {
        engine.backwardData(spec, eo, w, ei, pool);
        benchmark::DoNotOptimize(ei.data());
    }
    state.counters["goodput-GFlops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * (1 - sparsity) *
            spec.flops() * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SparseBpBackwardData)->Arg(50)->Arg(85)->Arg(97);

} // namespace
} // namespace spg

BENCHMARK_MAIN();
