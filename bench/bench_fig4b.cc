/**
 * @file
 * Reproduces paper Fig. 4b: relative speedup of GEMM-in-Parallel over
 * Parallel-GEMM as the core count grows. The paper's claims: the
 * speedup grows with more cores, and convolutions with fewer output
 * features benefit more.
 */

#include "bench/bench_common.hh"
#include "data/suites.hh"

using namespace spg;

namespace {

double
scheduleSeconds(const MachineModel &machine, const ConvSpec &spec,
                std::int64_t batch, int cores, bool in_parallel)
{
    double seconds = 0;
    for (Phase phase :
         {Phase::Forward, Phase::BackwardData, Phase::BackwardWeights}) {
        PhaseMm mm = phaseMm(spec, phase);
        if (in_parallel) {
            seconds += modelGemmInParallelMm(machine, mm.m, mm.n, mm.k,
                                             batch, cores)
                           .seconds;
        } else {
            seconds += modelParallelGemmMm(machine, mm.m, mm.n, mm.k,
                                           cores)
                           .seconds *
                       batch;
        }
    }
    return seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 4b (GEMM-in-Parallel speedup "
                  "over Parallel-GEMM)");
    addCommonFlags(cli);
    cli.parse(argc, argv);
    std::int64_t batch = cli.getInt("batch");

    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter table(
        "Fig. 4b: speedup of GEMM-in-Parallel over Parallel-GEMM "
        "(3 training MMs, batch " + std::to_string(batch) +
        ") — SIMULATED",
        {"ID", "Nf", "1", "2", "4", "8", "16"});

    for (const auto &entry : table1Convolutions()) {
        std::vector<std::string> row = {
            TablePrinter::fmt(static_cast<long long>(entry.id)),
            TablePrinter::fmt(static_cast<long long>(entry.spec.nf))};
        for (int cores : kCoreSweep) {
            double pg = scheduleSeconds(machine, entry.spec, batch,
                                        cores, false);
            double gip = scheduleSeconds(machine, entry.spec, batch,
                                         cores, true);
            row.push_back(TablePrinter::fmt(pg / gip, 2));
        }
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
