/**
 * @file
 * Reproduces paper Fig. 3b: sparsity of the activation errors across
 * training epochs for MNIST, CIFAR and ImageNet-100 — by actually
 * training the three networks (on synthetic datasets of identical
 * geometry) and recording the error-gradient sparsity each conv layer
 * observes.
 *
 * Expected shape: sparsity is already high after the first epochs
 * (>85% from epoch 2 in the paper) and grows as the model fits. The
 * sparsity here is REAL — it emerges from ReLU/pooling backward
 * masks during genuine SGD — only the pixel data is synthetic.
 */

#include "bench/bench_common.hh"
#include "data/suites.hh"
#include "nn/trainer.hh"

using namespace spg;

namespace {

struct BenchmarkRun
{
    const char *label;
    Dataset dataset;
    NetConfig config;
};

std::vector<double>
sparsityPerEpoch(BenchmarkRun &run, int epochs, ThreadPool &pool)
{
    Network net(run.config, 21);
    TrainerOptions opts;
    opts.epochs = epochs;
    opts.batch = 16;
    opts.learning_rate = 0.02f;
    opts.mode = TrainerOptions::Mode::Fixed;
    opts.log_epochs = false;
    Trainer trainer(net, run.dataset, opts);
    auto history = trainer.run(pool);

    std::vector<double> out;
    for (const auto &epoch : history) {
        double sum = 0;
        for (double s : epoch.conv_error_sparsity)
            sum += s;
        out.push_back(sum / epoch.conv_error_sparsity.size());
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 3b (error sparsity across "
                  "epochs) — real training on synthetic data");
    addCommonFlags(cli);
    cli.addInt("epochs", 10, "epochs to train");
    cli.addInt("examples", 256, "training examples per benchmark");
    cli.parse(argc, argv);
    setLogLevel(LogLevel::Quiet);

    int epochs = static_cast<int>(cli.getInt("epochs"));
    std::int64_t n = cli.getInt("examples");
    ThreadPool pool(1);

    std::vector<BenchmarkRun> runs;
    runs.push_back({"MNIST", makeMnistLike(n),
                    parseNetConfig(mnistNetConfigText())});
    runs.push_back({"CIFAR", makeCifarLike(n),
                    parseNetConfig(cifar10NetConfigText())});
    runs.push_back({"ImageNet100", makeImageNet100Like(n / 2),
                    parseNetConfig(imagenet100NetConfigText())});

    std::vector<std::string> headers = {"benchmark"};
    for (int e = 1; e <= epochs; ++e)
        headers.push_back("ep" + std::to_string(e));
    TablePrinter table(
        "Fig. 3b: mean conv-layer error-gradient sparsity per epoch "
        "(MEASURED: real SGD on synthetic data of paper geometry)",
        headers);

    for (auto &run : runs) {
        std::vector<std::string> row = {run.label};
        for (double s : sparsityPerEpoch(run, epochs, pool))
            row.push_back(TablePrinter::fmt(s, 3));
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
