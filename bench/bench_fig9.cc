/**
 * @file
 * Reproduces paper Fig. 9: end-to-end CIFAR-10 training throughput
 * (images per second) as a function of the core count, for the five
 * configurations the paper compares:
 *
 *   1. Parallel-GEMM (CAFFE)   — baseline, OpenBLAS-class GEMM
 *   2. Parallel-GEMM (ADAM)    — baseline, the paper's ADAM platform
 *   3. GEMM-in-Parallel (FP and BP)
 *   4. GEMM-in-Parallel (FP) + Sparse-Kernel (BP)
 *   5. Stencil-Kernel (FP) + Sparse-Kernel (BP)
 *
 * SIMULATED rows compose the per-layer conv models with a streaming
 * model of the non-convolution layers (ReLU/pool/FC/softmax). The two
 * baselines differ by their modeled GEMM library efficiency (the
 * paper measured CAFFE ~1.5x faster than ADAM at low core counts).
 *
 * The MEASURED row trains the real network single-core on this host
 * for two of the configurations.
 */

#include "bench/bench_common.hh"
#include "data/suites.hh"
#include "nn/trainer.hh"

using namespace spg;

namespace {

/** One of the five Fig. 9 configurations. */
struct Config
{
    const char *label;
    const char *fp;
    const char *bp;
    double gemm_efficiency;  ///< models the platform's BLAS quality
    /**
     * Serial per-image framework time (seconds): in the CAFFE/ADAM
     * baselines the data layer, im2col and layer glue run on one
     * thread — only the GEMM itself is parallel — which is what
     * saturates the paper's baseline curves at ~2 cores. The spg-CNN
     * schedules parallelize per-image work across the minibatch and
     * keep only a small residual serial component.
     */
    double serial_per_image_s;
};

/** Per-image non-conv traffic: fwd+bwd passes over the activations. */
double
nonConvBytesPerImage(const NetConfig &config)
{
    Network net(config, 1);
    double elems = 0;
    for (std::size_t i = 0; i < net.layerCount(); ++i)
        elems += static_cast<double>(net.layer(i).outputGeometry()
                                         .elems());
    // ~6 streaming passes (relu fwd/bwd, pool fwd/bwd, copies).
    return 6.0 * 4.0 * elems;
}

/** Simulated images/second of one configuration at `cores`. */
double
imagesPerSecond(MachineModel machine, const Config &config,
                const std::vector<Table2Entry> &layers,
                double non_conv_bytes, std::int64_t batch, int cores,
                double sparsity)
{
    machine.gemm_efficiency = config.gemm_efficiency;
    double per_image = config.serial_per_image_s;
    for (const auto &layer : layers) {
        per_image += modelLayerStepSeconds(machine, layer.spec,
                                           config.fp, config.bp, batch,
                                           cores, sparsity);
    }
    // Non-conv layers stream their activations; images distribute
    // across cores like GEMM-in-Parallel.
    SimTask task;
    task.bytes = non_conv_bytes;
    SimResult r = simulateUniform(machine, task, batch, cores);
    per_image += r.seconds / batch;
    return 1.0 / per_image;
}

/** Real single-core training throughput on this host. */
double
measuredImagesPerSecond(const char *fp, const char *bp)
{
    setLogLevel(LogLevel::Quiet);
    Dataset ds = makeCifarLike(128, 31);
    Network net(parseNetConfig(cifar10NetConfigText()), 32);
    for (ConvLayer *conv : net.convLayers())
        conv->setEngines(EngineAssignment{fp, bp, bp});
    TrainerOptions opts;
    opts.epochs = 2;
    opts.batch = 16;
    opts.mode = TrainerOptions::Mode::Fixed;
    opts.log_epochs = false;
    ThreadPool pool(1);
    Trainer trainer(net, ds, opts);
    auto history = trainer.run(pool);
    return history.back().images_per_second;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 9 (end-to-end CIFAR-10 "
                  "training throughput)");
    addCommonFlags(cli);
    cli.addDouble("sparsity", 0.85, "BP error sparsity during training");
    cli.addBool("measure", true,
                "also train the real network single-core on this host");
    cli.parse(argc, argv);
    std::int64_t batch = cli.getInt("batch");
    double sparsity = cli.getDouble("sparsity");

    const Config configs[] = {
        {"Parallel-GEMM (CAFFE)", "parallel-gemm", "parallel-gemm",
         0.80, 3.0e-3},
        {"Parallel-GEMM (ADAM)", "parallel-gemm", "parallel-gemm", 0.55,
         4.6e-3},
        {"GEMM-in-Parallel (FP and BP)", "gemm-in-parallel",
         "gemm-in-parallel", 0.80, 0.3e-3},
        {"GEMM-in-Parallel (FP) + Sparse (BP)", "gemm-in-parallel",
         "sparse", 0.80, 0.3e-3},
        {"Stencil (FP) + Sparse (BP)", "stencil", "sparse", 0.80,
         0.3e-3},
        // Beyond the paper's five: the encode-once sparse BP engine
        // (shared CT-CSR plans) pays the encoding traffic once per
        // minibatch instead of once per phase.
        {"Stencil (FP) + Sparse encode-once (BP)", "stencil",
         "sparse-cached", 0.80, 0.3e-3},
    };

    MachineModel machine = MachineModel::xeonE5_2650();
    NetConfig net_config = parseNetConfig(cifar10NetConfigText());
    auto layers = table2Layers("CIFAR-10");
    double non_conv = nonConvBytesPerImage(net_config);

    TablePrinter table(
        "Fig. 9: CIFAR-10 training images/second vs cores (batch " +
            std::to_string(batch) + ", BP sparsity " +
            TablePrinter::fmt(sparsity, 2) + ") — SIMULATED",
        {"configuration", "1", "2", "4", "8", "16", "32"});

    double base_peak = 0, best_peak = 0;
    for (const auto &config : configs) {
        std::vector<std::string> row = {config.label};
        double peak = 0;
        for (int cores : {1, 2, 4, 8, 16, 32}) {
            double ips = imagesPerSecond(machine, config, layers,
                                         non_conv, batch, cores,
                                         sparsity);
            peak = std::max(peak, ips);
            row.push_back(TablePrinter::fmt(ips, 0));
        }
        if (std::string(config.label) == "Parallel-GEMM (CAFFE)")
            base_peak = peak;
        best_peak = std::max(best_peak, peak);
        table.addRow(row);
    }
    emit(cli, table);

    inform("net speedup of best configuration over Parallel-GEMM "
           "(CAFFE) peak: %.2fx (paper: 8.36x)",
           best_peak / base_peak);

    if (cli.getBool("measure")) {
        TablePrinter measured(
            "Fig. 9 validation: MEASURED single-core training on this "
            "host (real network, real engines)",
            {"configuration", "images/s"});
        measured.addRow({"parallel-gemm FP+BP",
                         TablePrinter::fmt(measuredImagesPerSecond(
                                               "parallel-gemm",
                                               "parallel-gemm"),
                                           0)});
        measured.addRow({"stencil FP + sparse BP",
                         TablePrinter::fmt(measuredImagesPerSecond(
                                               "stencil", "sparse"),
                                           0)});
        measured.addRow({"stencil FP + sparse-cached BP",
                         TablePrinter::fmt(measuredImagesPerSecond(
                                               "stencil",
                                               "sparse-cached"),
                                           0)});
        measured.print();
    }
    return 0;
}
