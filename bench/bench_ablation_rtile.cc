/**
 * @file
 * Ablation: the stencil register-tile shape search (paper §4.3's
 * geometric optimization).
 *
 * Measures the REAL StencilEngine on this host with the searched tile
 * shape against pinned 1-row (RY=1, RX=1) and intermediate tiles —
 * quantifying the value of the basic-block generator's load-reuse
 * optimization.
 */

#include "bench/bench_common.hh"
#include "conv/engine_stencil.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Ablation: stencil register-tile shape (measured on "
                  "this host)");
    addCommonFlags(cli);
    cli.parse(argc, argv);

    const ConvSpec specs[] = {
        ConvSpec{28, 28, 1, 20, 5, 5, 1, 1},  // MNIST L0
        ConvSpec{36, 36, 3, 64, 5, 5, 1, 1},  // CIFAR L0
        ConvSpec::square(32, 32, 32, 4),      // Table 1 ID 0
        ConvSpec::square(64, 64, 16, 11),     // Table 1 ID 5
    };

    TablePrinter table(
        "Ablation: Stencil FP GFlops/s by register tile — MEASURED, "
        "1 core (searched = cost-model pick, RYx1 = no x-tiling)",
        {"spec", "searched", "RY=1", "RY=2", "RY=4", "RY=12",
         "search gain vs RY=1"});

    ThreadPool pool(1);
    Rng rng(10);
    for (const ConvSpec &spec : specs) {
        std::int64_t batch = 4;
        Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        in.fillUniform(rng);
        w.fillUniform(rng);
        double flops = batch * static_cast<double>(spec.flops());

        auto gflops = [&](int fixed_ry) {
            StencilEngine engine(fixed_ry);
            double t = bestTimeSeconds(3, [&] {
                engine.forward(spec, in, w, out, pool);
            });
            return flops / t / 1e9;
        };

        double searched = gflops(0);
        double ry1 = gflops(1);
        std::vector<std::string> row = {spec.str(),
                                        TablePrinter::fmt(searched, 1),
                                        TablePrinter::fmt(ry1, 1),
                                        TablePrinter::fmt(gflops(2), 1),
                                        TablePrinter::fmt(gflops(4), 1),
                                        TablePrinter::fmt(gflops(12), 1)};
        row.push_back(TablePrinter::fmt(searched / ry1, 2) + "x");
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
