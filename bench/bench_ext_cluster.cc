/**
 * @file
 * Extension bench: cluster-level impact of spg-CNN (the paper's §6
 * argument — "our work could improve the throughput of each worker
 * machine, and therefore help to accelerate the training of large
 * CNNs").
 *
 * Combines the Fig. 9 per-worker throughput of the baseline and
 * optimized configurations with the data-parallel cluster model:
 * images/second and parallel efficiency vs worker count for a
 * CIFAR-10-sized model on 10 GbE.
 */

#include "bench/bench_common.hh"
#include "core/net_config.hh"
#include "data/suites.hh"
#include "distrib/cluster_model.hh"
#include "nn/network.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Extension: cluster scaling with baseline vs spg-CNN "
                  "workers (modeled 10 GbE data-parallel cluster)");
    addCommonFlags(cli);
    cli.addInt("global-batch", 512, "global minibatch size");
    cli.parse(argc, argv);
    std::int64_t global_batch = cli.getInt("global-batch");

    // Per-worker throughput: the Fig. 9 16-core results (baseline
    // CAFFE vs full spg-CNN).
    const double baseline_ips = 250;   // Parallel-GEMM (CAFFE) peak
    const double spg_ips = 2014;       // Stencil FP + Sparse BP @ 16c

    Network net(parseNetConfig(cifar10NetConfigText()), 1);
    double param_bytes = 4.0 * net.paramCount();

    TablePrinter table(
        "Extension: modeled cluster throughput (images/s) and "
        "efficiency, CIFAR-10 model (" +
            std::to_string(net.paramCount()) +
            " params), global batch " + std::to_string(global_batch),
        {"workers", "baseline img/s", "baseline eff", "spg-CNN img/s",
         "spg-CNN eff", "cluster speedup"});

    ClusterModel base_cluster;
    base_cluster.worker_images_per_s = baseline_ips;
    base_cluster.param_bytes = param_bytes;
    ClusterModel spg_cluster = base_cluster;
    spg_cluster.worker_images_per_s = spg_ips;

    for (int workers : {1, 2, 4, 8, 16, 32, 64}) {
        if (global_batch % workers != 0)
            continue;
        double b_ips = base_cluster.imagesPerSecond(workers,
                                                    global_batch);
        double s_ips = spg_cluster.imagesPerSecond(workers,
                                                   global_batch);
        table.addRow({
            TablePrinter::fmt(static_cast<long long>(workers)),
            TablePrinter::fmt(b_ips, 0),
            TablePrinter::fmt(
                100 * base_cluster.efficiency(workers, global_batch),
                0) + "%",
            TablePrinter::fmt(s_ips, 0),
            TablePrinter::fmt(
                100 * spg_cluster.efficiency(workers, global_batch),
                0) + "%",
            TablePrinter::fmt(s_ips / b_ips, 2) + "x",
        });
    }
    emit(cli, table);
    return 0;
}
