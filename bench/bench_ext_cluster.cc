/**
 * @file
 * Extension bench: sharded data-parallel scaling over the modeled
 * interconnect (the paper's §6 argument — faster multicore workers
 * accelerate the whole cluster — extended with the exchange
 * scheduler's bucketed, overlapped, CT-CSR-compressed allreduce).
 *
 * For each network a short K=2 sharded training run is MEASURED on
 * this host (per-layer BP-weights completion offsets, compressed and
 * dense wire bytes per bucket). The schedule simulator then
 * extrapolates that profile across a worker sweep for four exchange
 * policies on a commodity 1 GbE link:
 *
 *   dense+block  — full backward, then blocking dense ring allreduce
 *   dense+ovl    — dense buckets overlapped with backprop
 *   sparse+block — CT-CSR top-k wire encoding, blocking
 *   sparse+ovl   — compressed AND overlapped (the paper's endpoint)
 *
 * Compute is scaled perfectly with shard size, so the curves are an
 * upper bound on compute and honest only about communication — the
 * quantity this bench exists to compare.
 *
 * Gated metric ("*speedup*", LowerWorse in bench_compare):
 * sparse+ovl step time vs dense+block at the gate worker count. Also
 * reported: the KNEE batch — the smallest global batch at which each
 * policy reaches the target parallel efficiency at a fixed K; weaker
 * exchanges need bigger batches to stay efficient.
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "core/net_config.hh"
#include "data/suites.hh"
#include "data/synthetic.hh"
#include "distrib/data_parallel.hh"
#include "util/logging.hh"

using namespace spg;

namespace {

struct PolicyDef
{
    const char *name;
    bool sparse;
    bool overlap;
};

const PolicyDef kPolicies[] = {
    {"dense+block", false, false},
    {"dense+ovl", false, true},
    {"sparse+block", true, false},
    {"sparse+ovl", true, true},
};

struct Point
{
    std::string config;
    int workers = 1;
    ScalingPoint sp;
};

struct NetResult
{
    std::string name;
    std::int64_t params = 0;
    double compression_x = 1.0;  ///< dense / compressed wire bytes
    double wire_kb_per_step = 0;
    double dense_kb_per_step = 0;
    double measured_step_ms = 0;
    /** Gated: dense+block step / sparse+ovl step at --gate-workers. */
    double sparse_ovl_speedup = 0;
    /** Smallest global batch reaching --knee-eff at --knee-workers;
     *  0 when the cap is hit first. */
    std::int64_t knee_batch_sparse_ovl = 0;
    std::int64_t knee_batch_dense_block = 0;
    std::vector<Point> points;
};

NetConfig
configFor(const std::string &name)
{
    if (name == "mnist")
        return parseNetConfig(mnistNetConfigText());
    if (name == "cifar10")
        return parseNetConfig(cifar10NetConfigText());
    if (name == "imagenet100")
        return parseNetConfig(imagenet100NetConfigText());
    return parseNetConfigFile(name);
}

Dataset
datasetFor(const NetConfig &config, std::int64_t count)
{
    SyntheticSpec spec;
    spec.name = config.name + "-cluster";
    spec.channels = config.channels;
    spec.height = config.height;
    spec.width = config.width;
    spec.classes =
        config.classes > 0 ? static_cast<int>(config.classes) : 10;
    spec.count = count;
    return makeSynthetic(spec);
}

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::vector<int>
parseSweep(const std::string &csv)
{
    std::vector<int> out;
    for (const std::string &item : splitCsv(csv))
        out.push_back(std::atoi(item.c_str()));
    if (out.empty())
        fatal("--workers-sweep must name at least one worker count");
    return out;
}

ScalingPoint
modelPolicy(const StepProfile &prof, const PolicyDef &p, int workers,
            const ClusterLink &link, double batch_scale = 1.0)
{
    return modelScaling(prof, workers, AllreduceAlgo::Ring, link,
                        p.overlap, p.sparse, batch_scale);
}

/**
 * Smallest modeled global batch (measured batch scaled by powers of
 * two, capped at x4096) whose parallel efficiency at @p workers
 * reaches @p target. @return 0 when even the cap falls short.
 */
std::int64_t
kneeBatch(const StepProfile &prof, const PolicyDef &p, int workers,
          const ClusterLink &link, double target)
{
    for (double scale = 1.0; scale <= 4096.0; scale *= 2.0) {
        ScalingPoint sp = modelPolicy(prof, p, workers, link, scale);
        if (sp.efficiency() >= target)
            return static_cast<std::int64_t>(
                scale *
                static_cast<double>(prof.measured_global_batch));
    }
    return 0;
}

void
writeJson(const std::string &path, const CliParser &cli,
          const ClusterLink &link,
          const std::vector<NetResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write '%s'", path.c_str());
    std::fprintf(f, "{\n  \"bench\": \"cluster\",\n");
    std::fprintf(f, "  \"global_batch\": %lld,\n",
                 static_cast<long long>(cli.getInt("global-batch")));
    std::fprintf(f, "  \"gate_workers\": %lld,\n",
                 static_cast<long long>(cli.getInt("gate-workers")));
    std::fprintf(f, "  \"link_gb_per_s\": %g, \"link_latency_us\": %g,\n",
                 link.bandwidth_gbs, link.latency_s * 1e6);
    std::fprintf(f, "  \"grad_compress\": \"%s\",\n",
                 cli.getString("grad-compress").c_str());
    std::fprintf(f, "  \"nets\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const NetResult &r = results[i];
        std::fprintf(f, "    {\"name\": \"%s\", \"params\": %lld,\n",
                     r.name.c_str(),
                     static_cast<long long>(r.params));
        std::fprintf(f,
                     "     \"compression_x\": %.4f, "
                     "\"wire_kb_per_step\": %.2f, "
                     "\"dense_kb_per_step\": %.2f,\n",
                     r.compression_x, r.wire_kb_per_step,
                     r.dense_kb_per_step);
        std::fprintf(f,
                     "     \"sparse_ovl_vs_dense_block_speedup\": "
                     "%.4f,\n",
                     r.sparse_ovl_speedup);
        std::fprintf(f,
                     "     \"knee_batch_sparse_ovl\": %lld, "
                     "\"knee_batch_dense_block\": %lld,\n",
                     static_cast<long long>(r.knee_batch_sparse_ovl),
                     static_cast<long long>(r.knee_batch_dense_block));
        std::fprintf(f, "     \"points\": [\n");
        for (std::size_t p = 0; p < r.points.size(); ++p) {
            const Point &pt = r.points[p];
            std::fprintf(
                f,
                "       {\"config\": \"%s\", \"workers\": %d, "
                "\"step_ms\": %.4f, \"comm_ms\": %.4f, "
                "\"overlap_frac\": %.3f, \"speedup\": %.3f, "
                "\"efficiency\": %.3f}%s\n",
                pt.config.c_str(), pt.workers, pt.sp.step_s * 1e3,
                pt.sp.comm_s * 1e3, pt.sp.overlap_frac, pt.sp.speedup,
                pt.sp.efficiency(),
                p + 1 < r.points.size() ? "," : "");
        }
        std::fprintf(f, "     ]}%s\n",
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Extension: modeled data-parallel scaling from a "
                  "measured sharded run (bucketed ring allreduce, "
                  "CT-CSR compression, backprop overlap)");
    addCommonFlags(cli);
    cli.addString("nets", "mnist,cifar10",
                  "comma-separated networks to profile");
    cli.addString("workers-sweep", "1,2,4,8,16",
                  "modeled worker counts");
    cli.addInt("global-batch", 32, "measured-run global minibatch");
    cli.addInt("measure-workers", 2, "replicas in the measured run");
    cli.addInt("epochs", 1, "measured-run epochs");
    cli.addInt("dataset-size", 64, "synthetic examples per net");
    cli.addInt("threads", 1, "pool threads for the measured run");
    cli.addString("grad-compress", "topk:0.1",
                  "sparse wire encoding for the measured run");
    cli.addDouble("link-gbs", 0.125,
                  "modeled link bandwidth, GB/s (default 1 GbE)");
    cli.addDouble("latency-us", 50.0, "modeled per-step latency");
    cli.addInt("gate-workers", 4,
               "K at which the gated sparse+ovl speedup is taken");
    cli.addInt("knee-workers", 8, "K for the knee-batch search");
    cli.addDouble("knee-eff", 0.5,
                  "parallel efficiency the knee batch must reach");
    cli.addString("json-file", "BENCH_cluster.json",
                  "machine-readable output path ('' to skip)");
    cli.parse(argc, argv);

    ClusterLink link;
    link.bandwidth_gbs = cli.getDouble("link-gbs");
    link.latency_s = cli.getDouble("latency-us") * 1e-6;
    std::vector<int> sweep = parseSweep(cli.getString("workers-sweep"));
    int gate_k = static_cast<int>(cli.getInt("gate-workers"));
    int knee_k = static_cast<int>(cli.getInt("knee-workers"));
    double knee_eff = cli.getDouble("knee-eff");
    GradCompressOptions compress =
        parseGradCompress(cli.getString("grad-compress"));
    if (!compress.sparse())
        fatal("--grad-compress must name a sparse mode (the dense "
              "arms are modeled from the same profile)");

    ThreadPool pool(static_cast<int>(cli.getInt("threads")));
    std::vector<NetResult> results;
    for (const std::string &name : splitCsv(cli.getString("nets"))) {
        NetConfig config = configFor(name);
        Dataset dataset =
            datasetFor(config, cli.getInt("dataset-size"));

        // MEASURED: a short sharded run with the sparse compressor.
        // Its profile carries both the compressed wire bytes (sparse
        // arms) and the 4B/param dense bytes (dense arms), so one run
        // feeds all four policies.
        DataParallelOptions opts;
        opts.workers = static_cast<int>(cli.getInt("measure-workers"));
        opts.global_batch = cli.getInt("global-batch");
        opts.epochs = static_cast<int>(cli.getInt("epochs"));
        opts.exchange.algo = AllreduceAlgo::Ring;
        opts.exchange.overlap = true;
        opts.exchange.link = link;
        opts.exchange.compress = compress;
        DataParallelTrainer trainer(config, /*seed=*/7, dataset, opts);
        std::vector<DataParallelEpoch> epochs = trainer.run(pool);
        const StepProfile &prof = trainer.profile();

        NetResult res;
        res.name = name;
        res.params = trainer.paramCount();
        res.measured_step_ms = prof.compute_end_s * 1e3;
        double wire = 0, dense = 0;
        for (const StepProfile::Bucket &b : prof.buckets) {
            wire += b.wire_bytes;
            dense += b.dense_bytes;
        }
        res.wire_kb_per_step = wire / 1024.0;
        res.dense_kb_per_step = dense / 1024.0;
        res.compression_x = wire > 0 ? dense / wire : 1.0;

        // SIMULATED: the worker sweep across exchange policies.
        for (int k : sweep)
            for (const PolicyDef &p : kPolicies) {
                Point pt;
                pt.config = p.name;
                pt.workers = k;
                pt.sp = modelPolicy(prof, p, k, link);
                res.points.push_back(std::move(pt));
            }

        ScalingPoint gate_dense =
            modelPolicy(prof, kPolicies[0], gate_k, link);
        ScalingPoint gate_sparse =
            modelPolicy(prof, kPolicies[3], gate_k, link);
        res.sparse_ovl_speedup =
            gate_sparse.step_s > 0
                ? gate_dense.step_s / gate_sparse.step_s
                : 0;
        res.knee_batch_sparse_ovl =
            kneeBatch(prof, kPolicies[3], knee_k, link, knee_eff);
        res.knee_batch_dense_block =
            kneeBatch(prof, kPolicies[0], knee_k, link, knee_eff);
        results.push_back(std::move(res));

        const DataParallelEpoch &last = epochs.back();
        std::printf("%s: measured K=%d step %.2f ms, loss %.4f, "
                    "wire %.1f KB/step (%.2fx vs dense)\n",
                    name.c_str(), opts.workers,
                    results.back().measured_step_ms, last.mean_loss,
                    results.back().wire_kb_per_step,
                    results.back().compression_x);
    }

    for (const NetResult &r : results) {
        TablePrinter table(
            "SIMULATED cluster scaling: " + r.name + " (" +
                std::to_string(r.params) + " params, " +
                TablePrinter::fmt(link.bandwidth_gbs, 3) +
                " GB/s link, ring; compute scaled perfectly)",
            {"config", "K", "step ms", "comm ms", "ovl", "speedup",
             "eff"});
        for (const Point &pt : r.points)
            table.addRow(
                {pt.config,
                 TablePrinter::fmt(static_cast<long long>(pt.workers)),
                 TablePrinter::fmt(pt.sp.step_s * 1e3, 3),
                 TablePrinter::fmt(pt.sp.comm_s * 1e3, 3),
                 TablePrinter::fmt(pt.sp.overlap_frac, 2),
                 TablePrinter::fmt(pt.sp.speedup, 2) + "x",
                 TablePrinter::fmt(pt.sp.efficiency(), 2)});
        emit(cli, table);
        std::printf(
            "%s: sparse+ovl vs dense+block at K=%d: %.2fx; knee "
            "batch for eff>=%.2f at K=%d: sparse+ovl %lld, "
            "dense+block %lld (0 = beyond x4096 cap)\n\n",
            r.name.c_str(), gate_k, r.sparse_ovl_speedup, knee_eff,
            knee_k,
            static_cast<long long>(r.knee_batch_sparse_ovl),
            static_cast<long long>(r.knee_batch_dense_block));
    }

    if (!cli.getString("json-file").empty())
        writeJson(cli.getString("json-file"), cli, link, results);
    return 0;
}
