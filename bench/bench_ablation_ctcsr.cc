/**
 * @file
 * Ablation: CT-CSR feature-tile width in the Sparse-Kernel (BP).
 *
 * DESIGN.md calls out the column tiling of the error-gradient matrix
 * (paper Fig. 5a) as a locality optimization over plain CSR. This
 * bench measures the REAL SparseBpEngine on this host across tile
 * widths; a tile width >= Nf degrades CT-CSR to plain CSR.
 */

#include "bench/bench_common.hh"
#include "conv/engine_sparse.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Ablation: CT-CSR feature tile width vs plain CSR "
                  "(measured on this host)");
    addCommonFlags(cli);
    cli.addDouble("sparsity", 0.85, "error sparsity");
    cli.parse(argc, argv);
    double sparsity = cli.getDouble("sparsity");

    // Feature-heavy layers where tiling matters.
    const ConvSpec specs[] = {
        ConvSpec::square(16, 256, 64, 3),
        ConvSpec::square(13, 400, 400, 3),
        ConvSpec::square(27, 384, 256, 3),
    };
    const std::int64_t tiles[] = {8, 16, 32, 64, 128, 1 << 20};

    TablePrinter table(
        "Ablation: Sparse-Kernel BP time (ms) vs CT-CSR tile width "
        "(last column = plain CSR), sparsity " +
            TablePrinter::fmt(sparsity, 2) + " — MEASURED, 1 core",
        {"spec", "t=8", "t=16", "t=32", "t=64", "t=128", "plain CSR",
         "CT-CSR best gain"});

    ThreadPool pool(1);
    Rng rng(9);
    for (const ConvSpec &spec : specs) {
        std::int64_t batch = 2;
        Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        Tensor ei(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
        Tensor dw(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        w.fillUniform(rng);
        in.fillUniform(rng);
        eo.fillUniform(rng);
        eo.sparsify(rng, sparsity);

        std::vector<std::string> row = {spec.str()};
        double best = 1e30, plain = 0;
        for (std::int64_t tile : tiles) {
            SparseBpEngine engine(tile);
            double t = bestTimeSeconds(3, [&] {
                engine.backwardData(spec, eo, w, ei, pool);
                engine.backwardWeights(spec, eo, in, dw, pool);
            });
            row.push_back(TablePrinter::fmt(t * 1e3, 2));
            if (tile < spec.nf)
                best = std::min(best, t);
            plain = t;  // last iteration is the plain-CSR config
        }
        row.push_back(TablePrinter::fmt(plain / best, 2) + "x");
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
