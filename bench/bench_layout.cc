/**
 * @file
 * Blocked NCHWc layout + direct engine crossover study (MEASURED).
 *
 * Per Table 1 convolution and per minibatch size (a training batch and
 * a batch-1/-4 serving point), measures each phase on the direct
 * NCHWc register-tiled engine against the best of the pre-existing
 * engines, plus the NCHW<->NCHWc conversion cost the direct engine
 * pays at layer boundaries when the network has NOT negotiated a
 * blocked edge (the staged form — identical to what the tuner times).
 * A Tuner run at the same shapes shows whether the scheduler
 * auto-picks the direct engine with the conversion cost amortized into
 * the decision.
 *
 * Results go to a table and BENCH_layout.json so tools/bench_compare
 * can track the crossover across PRs.
 */

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "conv/engine_direct.hh"
#include "conv/engines.hh"
#include "core/tuner.hh"
#include "data/suites.hh"
#include "tensor/blocked.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

std::vector<int>
parseIds(const std::string &csv)
{
    std::vector<int> ids;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            ids.push_back(std::stoi(item));
    return ids;
}

const char *
phaseKey(Phase phase)
{
    switch (phase) {
      case Phase::Forward:
        return "fp";
      case Phase::BackwardData:
        return "bp_data";
      case Phase::BackwardWeights:
        return "bp_weights";
    }
    return "?";
}

/** One timed run of one engine on one phase, plain NCHW operands (the
 *  staged form). @p result is the pre-allocated (warm) output tensor
 *  of the phase, shared across engines and repetitions so no timed
 *  call pays first-touch page faults. */
double
measurePhaseOnce(const ConvEngine &engine, Phase phase,
                 const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, const Tensor &eo, Tensor &result,
                 ThreadPool &pool)
{
    switch (phase) {
      case Phase::Forward:
        return bestTimeSeconds(1, [&] {
            engine.forward(spec, in, weights, result, pool);
        });
      case Phase::BackwardData:
        return bestTimeSeconds(1, [&] {
            engine.backwardData(spec, eo, weights, result, pool);
        });
      case Phase::BackwardWeights:
        return bestTimeSeconds(1, [&] {
            engine.backwardWeights(spec, eo, in, result, pool);
        });
    }
    return 0;
}

/** @return a zero-filled (pre-faulted) output tensor for the phase. */
Tensor
phaseResult(Phase phase, const ConvSpec &spec, std::int64_t batch)
{
    switch (phase) {
      case Phase::Forward:
        return Tensor(Shape{batch, spec.nf, spec.outY(), spec.outX()});
      case Phase::BackwardData:
        return Tensor(Shape{batch, spec.nc, spec.ny, spec.nx});
      case Phase::BackwardWeights:
        return Tensor(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    }
    return Tensor(Shape{1});
}

struct PhaseResult
{
    std::string best_other;
    double best_other_seconds = 0;
    double direct_seconds = 0;
    double speedup() const
    {
        return direct_seconds > 0 ? best_other_seconds / direct_seconds
                                  : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli(
        "Blocked NCHWc layout: direct register-tiled engine vs the "
        "best existing engine per Table 1 layer and phase, conversion "
        "cost, and the tuner's pick (MEASURED)");
    addCommonFlags(cli);
    cli.addString("ids", "0,2,5",
                  "comma-separated Table 1 convolution ids");
    cli.addInt("reps", 3, "timed repetitions (best-of)");
    cli.addInt("train-batch", 4, "training minibatch size");
    cli.addInt("serving-batch", 1, "serving minibatch size");
    cli.addInt("max-spatial", 64,
               "cap nx/ny of huge Table 1 layers to keep the bench "
               "tractable (0 = full size)");
    cli.addInt("cores", 0, "worker pool size (0 = hardware threads)");
    cli.addString("json-file", "BENCH_layout.json",
                  "machine-readable output path ('' to skip)");
    cli.parse(argc, argv);

    int reps = static_cast<int>(cli.getInt("reps"));
    std::int64_t cap = cli.getInt("max-spatial");
    int cores = static_cast<int>(cli.getInt("cores"));
    if (cores <= 0)
        cores = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    ThreadPool pool(cores);

    if (!DirectEngine::blockedLayoutSupported())
        inform("note: no AVX2+FMA — direct runs its portable fallback");

    const Phase kPhases[] = {Phase::Forward, Phase::BackwardData,
                             Phase::BackwardWeights};
    auto engines = makeAllEngines();
    DirectEngine direct;

    TablePrinter table(
        "Direct NCHWc engine vs best existing per phase (" +
            std::to_string(cores) + " core(s), best of " +
            std::to_string(reps) + ", MEASURED)",
        {"ID", "spec", "batch", "phase", "best other", "other ms",
         "direct ms", "speedup", "direct GF/s"});

    std::ostringstream json;
    json << "{\n  \"bench\": \"layout\",\n  \"reps\": " << reps
         << ",\n  \"cores\": " << cores << ",\n  \"layers\": [";

    int wins_fp = 0, wins_bpd = 0, wins_bpw = 0;
    int tuner_fp = 0, tuner_bpd = 0, tuner_bpw = 0;
    bool first_layer = true;
    for (int id : parseIds(cli.getString("ids"))) {
        const auto &entries = table1Convolutions();
        auto it =
            std::find_if(entries.begin(), entries.end(),
                         [&](const auto &e) { return e.id == id; });
        if (it == entries.end())
            fatal("no Table 1 convolution with id %d", id);
        ConvSpec spec = it->spec;
        if (cap > 0 && (spec.nx > cap || spec.ny > cap)) {
            spec.nx = std::min(spec.nx, cap);
            spec.ny = std::min(spec.ny, cap);
        }
        spec.validate();

        json << (first_layer ? "" : ",") << "\n    {\"id\": " << id
             << ", \"spec\": \"" << spec.str() << "\", \"batches\": [";
        first_layer = false;

        bool first_batch = true;
        for (std::int64_t batch : {cli.getInt("train-batch"),
                                   cli.getInt("serving-batch")}) {
            Rng rng(5000 + id + batch);
            Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
            Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
            Tensor eo(Shape{batch, spec.nf, spec.outY(), spec.outX()});
            in.fillUniform(rng);
            w.fillUniform(rng, -0.5f, 0.5f);
            eo.fillUniform(rng);

            // Boundary conversion cost the staged direct call pays
            // and a negotiated blocked FP edge elides.
            Tensor bin(nchwcShape(batch, spec.nc, spec.ny, spec.nx));
            Tensor bout(
                nchwcShape(batch, spec.nf, spec.outY(), spec.outX()));
            bout.setLayout(Layout::nchwc(spec.nf));
            Tensor out_nchw(
                Shape{batch, spec.nf, spec.outY(), spec.outX()});
            double convert_seconds = bestTimeSeconds(reps, [&] {
                nchwToNchwc(in, bin, pool);
                nchwcToNchw(bout, out_nchw, pool);
            });

            json << (first_batch ? "" : ",")
                 << "\n      {\"batch\": " << batch
                 << ", \"convert_seconds\": " << convert_seconds
                 << ", \"phases\": {";
            first_batch = false;

            bool first_phase = true;
            for (Phase phase : kPhases) {
                PhaseResult r;
                // Round-robin the repetitions across engines so clock
                // or thermal drift over the measurement window hits
                // every candidate equally instead of whichever engine
                // happened to run during the slow stretch.
                std::vector<const ConvEngine *> cands;
                for (const auto &engine : engines)
                    if (engine->name() != "direct" &&
                        engine->supports(phase) &&
                        engine->supportsGeometry(spec))
                        cands.push_back(engine.get());
                Tensor result = phaseResult(phase, spec, batch);
                result.fill(0.0f);
                std::vector<double> times(cands.size(), 1e30);
                r.direct_seconds = 1e30;
                for (int rep = 0; rep < reps; ++rep) {
                    for (std::size_t e = 0; e < cands.size(); ++e)
                        times[e] = std::min(
                            times[e],
                            measurePhaseOnce(*cands[e], phase, spec, in,
                                             w, eo, result, pool));
                    r.direct_seconds = std::min(
                        r.direct_seconds,
                        measurePhaseOnce(direct, phase, spec, in, w, eo,
                                         result, pool));
                }
                r.best_other_seconds = 1e30;
                for (std::size_t e = 0; e < cands.size(); ++e)
                    if (times[e] < r.best_other_seconds) {
                        r.best_other_seconds = times[e];
                        r.best_other = cands[e]->name();
                    }
                bool win = r.direct_seconds < r.best_other_seconds;
                if (win) {
                    (phase == Phase::Forward
                         ? wins_fp
                         : phase == Phase::BackwardData ? wins_bpd
                                                        : wins_bpw)++;
                }
                double gflops =
                    static_cast<double>(spec.flops()) * batch /
                    r.direct_seconds / 1e9;
                table.addRow({
                    TablePrinter::fmt(static_cast<long long>(id)),
                    spec.str(),
                    TablePrinter::fmt(static_cast<long long>(batch)),
                    phaseName(phase),
                    r.best_other,
                    TablePrinter::fmt(r.best_other_seconds * 1e3, 2),
                    TablePrinter::fmt(r.direct_seconds * 1e3, 2),
                    TablePrinter::fmt(r.speedup(), 3),
                    TablePrinter::fmt(gflops, 1),
                });
                json << (first_phase ? "" : ", ") << "\""
                     << phaseKey(phase) << "\": {\"best_other\": \""
                     << r.best_other << "\", \"best_other_seconds\": "
                     << r.best_other_seconds
                     << ", \"direct_seconds\": " << r.direct_seconds
                     << ", \"direct_speedup\": " << r.speedup() << "}";
                first_phase = false;
            }

            // The scheduler's view: same shapes, conversion cost
            // amortized into the direct engine's staged measurement.
            TunerOptions topts;
            topts.reps = reps;
            topts.batch = batch;
            Tuner tuner(topts);
            LayerPlan plan = tuner.tune(spec, 0.0, pool);
            tuner_fp += plan.fp_engine == "direct";
            tuner_bpd += plan.bp_data_engine == "direct";
            tuner_bpw += plan.bp_weights_engine == "direct";
            json << "}, \"tuner\": {\"fp\": \"" << plan.fp_engine
                 << "\", \"bp_data\": \"" << plan.bp_data_engine
                 << "\", \"bp_weights\": \"" << plan.bp_weights_engine
                 << "\"}}";
        }
        json << "\n    ]}";
    }
    json << "\n  ],\n  \"direct_wins\": {\"fp\": " << wins_fp
         << ", \"bp_data\": " << wins_bpd
         << ", \"bp_weights\": " << wins_bpw
         << "},\n  \"tuner_picks_direct\": {\"fp\": " << tuner_fp
         << ", \"bp_data\": " << tuner_bpd
         << ", \"bp_weights\": " << tuner_bpw << "}\n}\n";

    emit(cli, table);

    std::string path = cli.getString("json-file");
    if (!path.empty()) {
        std::ofstream f(path);
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        f << json.str();
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
