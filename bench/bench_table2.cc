/**
 * @file
 * Reproduces paper Table 2: the convolution layer specifications of
 * the four real-world benchmarks, extended with the AIT model and the
 * Fig. 1 region of each layer (which drives the spg-CNN engine
 * recommendations exercised by Fig. 8).
 */

#include "bench/bench_common.hh"
#include "data/suites.hh"
#include "perf/region.hh"

using namespace spg;

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Table 2 (benchmark layer specs)");
    addCommonFlags(cli);
    cli.parse(argc, argv);

    TablePrinter table(
        "Table 2: benchmark convolution layers "
        "(Nx, Nf, Nc, Fx, sx as in the paper)",
        {"benchmark", "layer", "Nx,Nf,Nc,Fx,sx", "intrinsic AIT",
         "unfold AIT", "region", "recommended FP",
         "recommended BP @85%"});

    for (const auto &entry : table2Layers()) {
        TechniqueChoice rec = recommendTechniques(entry.spec, 0.85);
        table.addRow({
            entry.benchmark,
            "L" + std::to_string(entry.layer),
            entry.spec.str(),
            TablePrinter::fmt(entry.spec.intrinsicAit(), 0),
            TablePrinter::fmt(entry.spec.unfoldAit(), 0),
            regionPair(entry.spec),
            rec.fp,
            rec.bp,
        });
    }
    emit(cli, table);
    return 0;
}
