/**
 * @file
 * Measures what the operand pre-packing layer buys on the Table 1
 * characterization convolutions (single core, single image, FP):
 *
 *  - repack:    unfold to a dense U, then plain sgemm — the engines'
 *               original per-image path, which re-packs W and U inside
 *               the blocking loops on every call;
 *  - prepacked: W packed ONCE outside the loop (what the weight cache
 *               amortizes across a batch), dense unfold + sgemmPackedA;
 *  - fused:     W packed once AND the unfold emitted directly in
 *               B-panel format, so the GEMM runs with no packing at
 *               all (sgemmPackedAB).
 *
 * All three compute bit-for-bit identical outputs (verified here per
 * geometry). Results are printed as a table and written as
 * machine-readable JSON (BENCH_gemm_pack.json by default) so future
 * PRs can track the trajectory.
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/bench_common.hh"
#include "blas/gemm.hh"
#include "conv/unfold.hh"
#include "data/suites.hh"
#include "util/aligned.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

/** One timed call of fn() in seconds. */
template <typename Fn>
double
timeOnce(Fn &&fn)
{
    Stopwatch watch;
    fn();
    return watch.seconds();
}

std::vector<int>
parseIds(const std::string &csv)
{
    std::vector<int> ids;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            ids.push_back(std::stoi(item));
    return ids;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("GEMM operand pre-packing: repack vs prepacked vs "
                  "fused-unfold (measured, single core)");
    addCommonFlags(cli);
    cli.addString("ids", "0,2,5",
                  "comma-separated Table 1 convolution ids");
    cli.addInt("reps", 3, "timed repetitions (best-of)");
    cli.addString("json-file", "BENCH_gemm_pack.json",
                  "machine-readable output path ('' to skip)");
    cli.parse(argc, argv);

    int reps = static_cast<int>(cli.getInt("reps"));
    TablePrinter table(
        "GEMM pre-packing on Table 1 geometries (FP, 1 core, MEASURED)",
        {"ID", "spec", "m x n x k", "repack ms", "prepacked ms",
         "fused ms", "speedup prepacked", "speedup fused"});

    std::ostringstream json;
    json << "{\n  \"bench\": \"gemm_pack\",\n  \"reps\": " << reps
         << ",\n  \"geometries\": [";

    bool first = true;
    for (int id : parseIds(cli.getString("ids"))) {
        const auto &entries = table1Convolutions();
        auto it =
            std::find_if(entries.begin(), entries.end(),
                         [&](const auto &e) { return e.id == id; });
        if (it == entries.end())
            fatal("no Table 1 convolution with id %d", id);
        const ConvSpec &spec = it->spec;
        std::int64_t m = spec.gemmM(), n = spec.gemmN(),
                     k = spec.gemmK();

        Rng rng(1000 + id);
        AlignedBuffer<float> in(spec.inputElems());
        AlignedBuffer<float> w(spec.weightElems());
        for (std::size_t i = 0; i < in.size(); ++i)
            in.data()[i] = rng.uniform(-1.0f, 1.0f);
        for (std::size_t i = 0; i < w.size(); ++i)
            w.data()[i] = rng.uniform(-0.5f, 0.5f);
        AlignedBuffer<float> u(static_cast<std::size_t>(k) * n);
        AlignedBuffer<float> panels(PackedMatrix::panelElemsB(k, n));
        AlignedBuffer<float> out(static_cast<std::size_t>(m) * n);

        PackedMatrix wpack =
            PackedMatrix::packA(Trans::No, m, k, 1.0f, w.data(), k);
        auto run_repack = [&] {
            unfoldImage(spec, in.data(), u.data());
            sgemm(Trans::No, Trans::No, m, n, k, 1.0f, w.data(), k,
                  u.data(), n, 0.0f, out.data(), n);
        };
        auto run_prepacked = [&] {
            unfoldImage(spec, in.data(), u.data());
            sgemmPackedA(wpack, Trans::No, n, u.data(), n, 0.0f,
                         out.data(), n);
        };
        auto run_fused = [&] {
            unfoldImageToPanels(spec, in.data(), panels.data());
            sgemmPackedAB(wpack,
                          PackedMatrix::viewB(k, n, panels.data()),
                          0.0f, out.data(), n);
        };

        // Warm up each variant once and check the packed paths are
        // bit-for-bit identical to the repack baseline.
        run_repack();
        AlignedBuffer<float> out_ref(out.size());
        std::copy(out.data(), out.data() + out.size(), out_ref.data());
        auto check = [&](const char *variant) {
            for (std::size_t i = 0; i < out.size(); ++i)
                if (out.data()[i] != out_ref.data()[i])
                    fatal("%s result diverged at %zu", variant, i);
        };
        run_prepacked();
        check("prepacked");
        run_fused();
        check("fused");

        // Interleave the timed reps so clock-frequency drift hits all
        // variants equally; report the best rep of each.
        double t_repack = 1e30, t_prepacked = 1e30, t_fused = 1e30;
        for (int r = 0; r < reps; ++r) {
            t_repack = std::min(t_repack, timeOnce(run_repack));
            t_prepacked = std::min(t_prepacked, timeOnce(run_prepacked));
            t_fused = std::min(t_fused, timeOnce(run_fused));
        }

        table.addRow({
            TablePrinter::fmt(static_cast<long long>(id)),
            spec.str(),
            std::to_string(m) + "x" + std::to_string(n) + "x" +
                std::to_string(k),
            TablePrinter::fmt(t_repack * 1e3, 2),
            TablePrinter::fmt(t_prepacked * 1e3, 2),
            TablePrinter::fmt(t_fused * 1e3, 2),
            TablePrinter::fmt(t_repack / t_prepacked, 3),
            TablePrinter::fmt(t_repack / t_fused, 3),
        });

        json << (first ? "" : ",") << "\n    {\"id\": " << id
             << ", \"spec\": \"" << spec.str() << "\", \"m\": " << m
             << ", \"n\": " << n << ", \"k\": " << k
             << ", \"seconds\": {\"repack\": " << t_repack
             << ", \"prepacked\": " << t_prepacked
             << ", \"fused\": " << t_fused
             << "}, \"speedup\": {\"prepacked\": "
             << t_repack / t_prepacked
             << ", \"fused\": " << t_repack / t_fused << "}}";
        first = false;
    }
    json << "\n  ]\n}\n";

    emit(cli, table);
    std::string path = cli.getString("json-file");
    if (!path.empty()) {
        std::ofstream f(path);
        if (!f)
            fatal("cannot write '%s'", path.c_str());
        f << json.str();
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
