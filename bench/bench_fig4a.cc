/**
 * @file
 * Reproduces paper Fig. 4a: scalability of GEMM-in-Parallel on up to
 * 16 cores — per-core GFlops of the three training MMs when every
 * core runs whole single-threaded GEMMs on different images.
 *
 * The paper's observation: performance per core stays roughly steady
 * (<15% average drop), in contrast to Fig. 3a.
 */

#include <algorithm>

#include "bench/bench_common.hh"
#include "blas/gemm.hh"
#include "data/suites.hh"
#include "tensor/tensor.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

double
simulatedGflopsPerCore(const MachineModel &machine, const ConvSpec &spec,
                       std::int64_t batch, int cores)
{
    double seconds = 0, flops = 0;
    for (Phase phase :
         {Phase::Forward, Phase::BackwardData, Phase::BackwardWeights}) {
        PhaseMm mm = phaseMm(spec, phase);
        SimResult r = modelGemmInParallelMm(machine, mm.m, mm.n, mm.k,
                                            batch, cores);
        seconds += r.seconds;
        flops += r.total_flops;
    }
    return flops / seconds / 1e9 / cores;
}

/** Measured single-threaded sgemm GFlops of the three MMs (host). */
double
measuredGflopsOneCore(const ConvSpec &spec)
{
    Rng rng(4);
    double seconds = 0, flops = 0;
    for (Phase phase :
         {Phase::Forward, Phase::BackwardData, Phase::BackwardWeights}) {
        PhaseMm mm = phaseMm(spec, phase);
        Tensor a(Shape{mm.m, mm.k});
        Tensor b(Shape{mm.k, mm.n});
        Tensor c(Shape{mm.m, mm.n});
        a.fillUniform(rng);
        b.fillUniform(rng);
        Stopwatch sw;
        sgemm(Trans::No, Trans::No, mm.m, mm.n, mm.k, a.data(), b.data(),
              0.0f, c.data());
        seconds += sw.seconds();
        flops += 2.0 * mm.m * mm.n * mm.k;
    }
    return flops / seconds / 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli(
        "Reproduce paper Fig. 4a (GEMM-in-Parallel scalability)");
    addCommonFlags(cli);
    cli.addBool("measure", true,
                "run the real single-threaded GEMMs on this host");
    cli.parse(argc, argv);
    std::int64_t batch = cli.getInt("batch");

    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter table(
        "Fig. 4a: GEMM-in-Parallel GFlops per core (3 training MMs, "
        "batch " + std::to_string(batch) + ") — SIMULATED; MEASURED = "
        "this host, 1 core",
        {"ID", "region", "1", "2", "4", "8", "16", "max drop",
         "measured 1-core"});

    for (const auto &entry : table1Convolutions()) {
        std::vector<std::string> row = {
            TablePrinter::fmt(static_cast<long long>(entry.id)),
            entry.paper_region};
        double first = 0, lowest = 1e30;
        for (int cores : kCoreSweep) {
            double gfpc = simulatedGflopsPerCore(machine, entry.spec,
                                                 batch, cores);
            if (cores == 1)
                first = gfpc;
            else
                lowest = std::min(lowest, gfpc);
            row.push_back(TablePrinter::fmt(gfpc, 1));
        }
        row.push_back(TablePrinter::fmt(100.0 * (1 - lowest / first),
                                        0) + "%");
        row.push_back(cli.getBool("measure")
                          ? TablePrinter::fmt(
                                measuredGflopsOneCore(entry.spec), 1)
                          : "-");
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
