/**
 * @file
 * Reproduces paper Fig. 4d: speedup of Stencil-Kernel (FP) over
 * GEMM-in-Parallel. The paper's claim: the stencil wins for small
 * convolutions (< 128 output features) whose AIT the unfolding
 * destroys, and loses to GEMM for large ones.
 *
 * The MEASURED column runs both real engines single-core on this
 * host. NOTE (also recorded in EXPERIMENTS.md): against this
 * repository's unusually strong im2col+SGEMM baseline the measured
 * stencil win is smaller than the paper's 2017 framework baselines
 * showed; the simulated column models the paper's machine and BLAS
 * behaviour.
 */

#include "bench/bench_common.hh"
#include "conv/engines.hh"
#include "data/suites.hh"
#include "util/random.hh"
#include "util/timer.hh"

using namespace spg;

namespace {

double
measuredSpeedup(const ConvSpec &spec, std::int64_t batch)
{
    ThreadPool pool(1);
    Rng rng(6);
    Tensor in(Shape{batch, spec.nc, spec.ny, spec.nx});
    Tensor w(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
    in.fillUniform(rng);
    w.fillUniform(rng);
    GemmInParallelEngine gemm;
    StencilEngine stencil;
    double t_gemm = bestTimeSeconds(2, [&] {
        gemm.forward(spec, in, w, out, pool);
    });
    double t_stencil = bestTimeSeconds(2, [&] {
        stencil.forward(spec, in, w, out, pool);
    });
    return t_gemm / t_stencil;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("Reproduce paper Fig. 4d (Stencil vs GEMM-in-Parallel "
                  "speedup)");
    addCommonFlags(cli);
    cli.addBool("measure", true, "run both real engines on this host");
    cli.addInt("measure-flops-limit", 8,
               "skip measured column above this many GFlops per image "
               "batch");
    cli.parse(argc, argv);
    std::int64_t batch = cli.getInt("batch");

    MachineModel machine = MachineModel::xeonE5_2650();
    TablePrinter table(
        "Fig. 4d: speedup of Stencil-Kernel (FP) over GEMM-in-Parallel "
        "(batch " + std::to_string(batch) + ") — SIMULATED cores sweep; "
        "MEASURED = host 1-core",
        {"ID", "Nf", "1", "2", "4", "8", "16", "measured 1-core"});

    double flops_limit = cli.getInt("measure-flops-limit") * 1e9;
    for (const auto &entry : table1Convolutions()) {
        std::vector<std::string> row = {
            TablePrinter::fmt(static_cast<long long>(entry.id)),
            TablePrinter::fmt(static_cast<long long>(entry.spec.nf))};
        for (int cores : kCoreSweep) {
            double gemm = modelConvPhase(machine, entry.spec,
                                         Phase::Forward,
                                         "gemm-in-parallel", batch,
                                         cores)
                              .seconds;
            double stencil = modelConvPhase(machine, entry.spec,
                                            Phase::Forward, "stencil",
                                            batch, cores)
                                 .seconds;
            row.push_back(TablePrinter::fmt(gemm / stencil, 2));
        }
        std::int64_t measure_batch = 4;
        bool feasible = measure_batch *
                            static_cast<double>(entry.spec.flops()) <
                        flops_limit;
        row.push_back(cli.getBool("measure") && feasible
                          ? TablePrinter::fmt(
                                measuredSpeedup(entry.spec,
                                                measure_batch),
                                2)
                          : "-");
        table.addRow(row);
    }
    emit(cli, table);
    return 0;
}
