/**
 * @file
 * Single-precision general matrix multiply (SGEMM) with operand
 * pre-packing.
 *
 * spg-CNN cannot link a third-party BLAS, so this module provides a
 * from-scratch replacement: a register-blocked AVX2/FMA micro-kernel
 * wrapped in BLIS-style cache blocking with operand packing. Both the
 * Unfold+Parallel-GEMM baseline and the GEMM-in-Parallel schedule of
 * the paper are built from the same micro-kernel, so relative
 * comparisons between schedules are apples-to-apples.
 *
 * All matrices are row-major. The operation computed is
 *
 *     C = alpha * op(A) * op(B) + beta * C
 *
 * with op(X) = X or X^T per the Trans flags. op(A) is m x k and
 * op(B) is k x n; C is m x n with leading dimension ldc.
 *
 * ## Operand pre-packing (PackedMatrix)
 *
 * Inside the blocking loops every GEMM call copies its operands into
 * SIMD-friendly panels (kGemmMr-row panels of op(A), kGemmNr-column
 * panels of op(B)). When the same operand participates in many
 * multiplies — the convolution weight matrix W is multiplied against
 * every image of every minibatch — that per-call repack is pure
 * overhead and, worse, per-call memory traffic that the paper's
 * per-core-AIT scalability argument charges to every core.
 *
 * PackedMatrix materializes the panel format once, up front, and the
 * sgemmPacked* entry points skip the corresponding pack inside the
 * blocking loops. A PackedMatrix is immutable after packing and safe
 * to share read-only between any number of concurrently running
 * worker threads (GEMM-in-Parallel workers all stream the same packed
 * weights). The panel layout is public (see panel constants below) so
 * producers other than packMatrix* — notably the fused im2col of
 * conv/unfold.hh — can emit it directly.
 */

#ifndef SPG_BLAS_GEMM_HH
#define SPG_BLAS_GEMM_HH

#include <cstddef>
#include <cstdint>

#include "threading/thread_pool.hh"
#include "util/aligned.hh"

namespace spg {

/** Whether an operand participates transposed. */
enum class Trans { No, Yes };

/** Micro-tile height: rows of C per micro-kernel invocation. */
inline constexpr std::int64_t kGemmMr = 6;
#if defined(__AVX512F__)
/** Micro-tile width; two 16-float AVX-512 vectors. */
inline constexpr std::int64_t kGemmNr = 32;
#else
/** Micro-tile width; two 8-float AVX vectors. */
inline constexpr std::int64_t kGemmNr = 16;
#endif

/** Cache-blocking parameters (L2-resident A panel, L1-resident B).
 *  kGemmMc is a multiple of kGemmMr and kGemmNc of kGemmNr, which
 *  makes the packed-block offsets below closed-form. */
inline constexpr std::int64_t kGemmMc = 120;
inline constexpr std::int64_t kGemmKc = 256;
inline constexpr std::int64_t kGemmNc = 2048;

/** @return x rounded up to the next multiple of to. */
inline constexpr std::int64_t
roundUpTo(std::int64_t x, std::int64_t to)
{
    return (x + to - 1) / to * to;
}

/** @return the number of floating point operations of an m x n x k MM. */
inline std::int64_t
gemmFlops(std::int64_t m, std::int64_t n, std::int64_t k)
{
    return 2 * m * n * k;
}

/**
 * A GEMM operand stored in the micro-kernel panel format, detached
 * from any particular multiply.
 *
 * Layout, A kind (op(A) is m x k): the matrix is cut into kGemmKc-deep
 * column blocks (index pc) and kGemmMc-tall row blocks (index ic);
 * block (ic, pc) holds ceil(mc / kGemmMr) panels of kGemmMr rows each,
 * stored panel-major exactly as the internal packA produces them
 * (panel[p][i], rows past mc zero-filled). Blocks are laid out so that
 *
 *     blockOffsetA(ic, pc) = roundUpTo(m, kGemmMr) * pc + ic * kc
 *
 * with kc the depth of block pc. Any alpha is baked into the panels at
 * pack time.
 *
 * Layout, B kind (op(B) is k x n): kGemmNc-wide column blocks (jc) by
 * kGemmKc-deep row blocks (pc); block (jc, pc) holds kGemmNr-column
 * panels (panel[p][j], columns past the block width zero-filled), at
 *
 *     blockOffsetB(jc, pc) = jc * k + roundUpTo(min(kGemmNc, n - jc),
 *                                               kGemmNr) * pc.
 *
 * Instances are either owning (packA / packB) or non-owning views over
 * caller-managed panel storage (viewA / viewB — used to reuse
 * per-thread scratch for the fused im2col path). Views must outlive
 * the storage they borrow.
 */
class PackedMatrix
{
  public:
    enum class Kind { A, B };

    PackedMatrix() = default;

    /** @return panel-buffer size (floats) for an m x k op(A). */
    static std::size_t
    panelElemsA(std::int64_t m, std::int64_t k)
    {
        return static_cast<std::size_t>(roundUpTo(m, kGemmMr)) * k;
    }

    /** @return panel-buffer size (floats) for a k x n op(B). */
    static std::size_t
    panelElemsB(std::int64_t k, std::int64_t n)
    {
        return static_cast<std::size_t>(roundUpTo(n, kGemmNr)) * k;
    }

    /** Pack op(A) (m x k, alpha baked in) into a new owning buffer. */
    static PackedMatrix packA(Trans ta, std::int64_t m, std::int64_t k,
                              float alpha, const float *a,
                              std::int64_t lda);

    /** Pack op(B) (k x n) into a new owning buffer. */
    static PackedMatrix packB(Trans tb, std::int64_t k, std::int64_t n,
                              const float *b, std::int64_t ldb);

    /** Non-owning view over panelElemsA(m, k) floats already in
     *  A-panel format (64-byte aligned). */
    static PackedMatrix viewA(std::int64_t m, std::int64_t k,
                              const float *panels);

    /** Non-owning view over panelElemsB(k, n) floats already in
     *  B-panel format (64-byte aligned). */
    static PackedMatrix viewB(std::int64_t k, std::int64_t n,
                              const float *panels);

    Kind kind() const { return kind_; }

    /** Rows of the packed operand: m for A kind, k for B kind. */
    std::int64_t rows() const { return rows_; }

    /** Columns of the packed operand: k for A kind, n for B kind. */
    std::int64_t cols() const { return cols_; }

    /** @return the panel storage (64-byte aligned). */
    const float *panels() const { return data_; }

    bool empty() const { return data_ == nullptr; }

  private:
    PackedMatrix(Kind kind, std::int64_t rows, std::int64_t cols)
        : kind_(kind), rows_(rows), cols_(cols)
    {}

    Kind kind_ = Kind::A;
    std::int64_t rows_ = 0;
    std::int64_t cols_ = 0;
    AlignedBuffer<float> owned_;
    const float *data_ = nullptr;
};

/** Pack op(A) into caller storage of panelElemsA(m, k) floats. */
void packMatrixAInto(Trans ta, std::int64_t m, std::int64_t k, float alpha,
                     const float *a, std::int64_t lda, float *panels);

/** Pack op(B) into caller storage of panelElemsB(k, n) floats. */
void packMatrixBInto(Trans tb, std::int64_t k, std::int64_t n,
                     const float *b, std::int64_t ldb, float *panels);

/**
 * Reference triple-loop GEMM. Slow but obviously correct; used as the
 * oracle in tests and never on a hot path.
 */
void gemmNaive(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const float *a,
               std::int64_t lda, const float *b, std::int64_t ldb,
               float beta, float *c, std::int64_t ldc);

/**
 * Single-threaded blocked SIMD GEMM. This is the unit the paper's
 * GEMM-in-Parallel schedule replicates across cores.
 */
void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float *a, std::int64_t lda,
           const float *b, std::int64_t ldb, float beta, float *c,
           std::int64_t ldc);

/**
 * C = op(A) * op(B) + beta * C with a pre-packed A (alpha was baked at
 * pack time). m and k come from the PackedMatrix; op(B) is k x n.
 * Identical blocking and micro-kernel order as sgemm, so results are
 * bit-for-bit equal to the repacking path. Safe to call concurrently
 * from many threads sharing one PackedMatrix.
 */
void sgemmPackedA(const PackedMatrix &a, Trans tb, std::int64_t n,
                  const float *b, std::int64_t ldb, float beta, float *c,
                  std::int64_t ldc);

/**
 * C = alpha * op(A) * op(B) + beta * C with a pre-packed B. k and n
 * come from the PackedMatrix; op(A) is m x k. Safe for concurrent
 * read-only sharing of the PackedMatrix across threads.
 */
void sgemmPackedB(Trans ta, std::int64_t m, float alpha, const float *a,
                  std::int64_t lda, const PackedMatrix &b, float beta,
                  float *c, std::int64_t ldc);

/**
 * C = op(A) * op(B) + beta * C with both operands pre-packed — the
 * fully-fused convolution FP path (packed weights x im2col-in-panel
 * input): no packing at all inside the blocking loops.
 */
void sgemmPackedAB(const PackedMatrix &a, const PackedMatrix &b,
                   float beta, float *c, std::int64_t ldc);

/**
 * Parallel-GEMM: ONE matrix multiply partitioned across the pool's
 * threads (rows of C, or columns when m is small). This is the
 * schedule used by CAFFE/MKL-style baselines; per-core AIT drops as
 * threads are added (paper §3.2).
 */
void parallelGemm(ThreadPool &pool, Trans ta, Trans tb, std::int64_t m,
                  std::int64_t n, std::int64_t k, float alpha,
                  const float *a, std::int64_t lda, const float *b,
                  std::int64_t ldb, float beta, float *c,
                  std::int64_t ldc);

/**
 * Parallel-GEMM with a pre-packed, shared A: columns of C are
 * partitioned across the pool and every worker streams the same
 * packed panels read-only.
 */
void parallelGemmPackedA(ThreadPool &pool, const PackedMatrix &a,
                         Trans tb, std::int64_t n, const float *b,
                         std::int64_t ldb, float beta, float *c,
                         std::int64_t ldc);

/**
 * Parallel-GEMM with both operands pre-packed: column blocks of the
 * packed B (kGemmNc granularity) are partitioned across the pool.
 */
void parallelGemmPackedAB(ThreadPool &pool, const PackedMatrix &a,
                          const PackedMatrix &b, float beta, float *c,
                          std::int64_t ldc);

/** Convenience overloads with lda/ldb/ldc defaulted to the row width
 *  of the (possibly transposed) operands and alpha=1. */
void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
           std::int64_t k, const float *a, const float *b, float beta,
           float *c);

void parallelGemm(ThreadPool &pool, Trans ta, Trans tb, std::int64_t m,
                  std::int64_t n, std::int64_t k, const float *a,
                  const float *b, float beta, float *c);

} // namespace spg

#endif // SPG_BLAS_GEMM_HH
