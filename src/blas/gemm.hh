/**
 * @file
 * Single-precision general matrix multiply (SGEMM).
 *
 * spg-CNN cannot link a third-party BLAS, so this module provides a
 * from-scratch replacement: a register-blocked AVX2/FMA micro-kernel
 * wrapped in BLIS-style cache blocking with operand packing. Both the
 * Unfold+Parallel-GEMM baseline and the GEMM-in-Parallel schedule of
 * the paper are built from the same micro-kernel, so relative
 * comparisons between schedules are apples-to-apples.
 *
 * All matrices are row-major. The operation computed is
 *
 *     C = alpha * op(A) * op(B) + beta * C
 *
 * with op(X) = X or X^T per the Trans flags. op(A) is m x k and
 * op(B) is k x n; C is m x n with leading dimension ldc.
 */

#ifndef SPG_BLAS_GEMM_HH
#define SPG_BLAS_GEMM_HH

#include <cstdint>

#include "threading/thread_pool.hh"

namespace spg {

/** Whether an operand participates transposed. */
enum class Trans { No, Yes };

/** @return the number of floating point operations of an m x n x k MM. */
inline std::int64_t
gemmFlops(std::int64_t m, std::int64_t n, std::int64_t k)
{
    return 2 * m * n * k;
}

/**
 * Reference triple-loop GEMM. Slow but obviously correct; used as the
 * oracle in tests and never on a hot path.
 */
void gemmNaive(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const float *a,
               std::int64_t lda, const float *b, std::int64_t ldb,
               float beta, float *c, std::int64_t ldc);

/**
 * Single-threaded blocked SIMD GEMM. This is the unit the paper's
 * GEMM-in-Parallel schedule replicates across cores.
 */
void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
           std::int64_t k, float alpha, const float *a, std::int64_t lda,
           const float *b, std::int64_t ldb, float beta, float *c,
           std::int64_t ldc);

/**
 * Parallel-GEMM: ONE matrix multiply partitioned across the pool's
 * threads (rows of C, or columns when m is small). This is the
 * schedule used by CAFFE/MKL-style baselines; per-core AIT drops as
 * threads are added (paper §3.2).
 */
void parallelGemm(ThreadPool &pool, Trans ta, Trans tb, std::int64_t m,
                  std::int64_t n, std::int64_t k, float alpha,
                  const float *a, std::int64_t lda, const float *b,
                  std::int64_t ldb, float beta, float *c,
                  std::int64_t ldc);

/** Convenience overloads with lda/ldb/ldc defaulted to the row width
 *  of the (possibly transposed) operands and alpha=1. */
void sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
           std::int64_t k, const float *a, const float *b, float beta,
           float *c);

void parallelGemm(ThreadPool &pool, Trans ta, Trans tb, std::int64_t m,
                  std::int64_t n, std::int64_t k, const float *a,
                  const float *b, float beta, float *c);

} // namespace spg

#endif // SPG_BLAS_GEMM_HH
