#include "blas/gemm.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "util/aligned.hh"
#include "util/logging.hh"

namespace spg {

namespace {

/** Micro-tile height (rows of C per micro-kernel invocation). */
constexpr std::int64_t kMr = 6;
#if defined(__AVX512F__)
/** Micro-tile width; two 16-float AVX-512 vectors. */
constexpr std::int64_t kNr = 32;
#else
/** Micro-tile width; two 8-float AVX vectors. */
constexpr std::int64_t kNr = 16;
#endif

/** Cache-blocking parameters (L2-resident A panel, L1-resident B). */
constexpr std::int64_t kMc = 120;   // multiple of kMr
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kNc = 2048;  // multiple of kNr

/** Element of op(X) at row r, col c for a row-major X with stride ld. */
inline float
opAt(Trans t, const float *x, std::int64_t ld, std::int64_t r,
     std::int64_t c)
{
    return t == Trans::No ? x[r * ld + c] : x[c * ld + r];
}

/**
 * Pack an mc x kc block of op(A), scaled by alpha, into kMr-row panels
 * stored panel-major: buf[panel][p][i] with i the row within the
 * panel. Rows beyond mc are zero-filled so the micro-kernel never
 * branches.
 */
void
packA(Trans ta, const float *a, std::int64_t lda, std::int64_t row0,
      std::int64_t col0, std::int64_t mc, std::int64_t kc, float alpha,
      float *buf)
{
    for (std::int64_t ir = 0; ir < mc; ir += kMr) {
        std::int64_t rows = std::min(kMr, mc - ir);
        float *panel = buf + ir * kc;
        for (std::int64_t p = 0; p < kc; ++p) {
            for (std::int64_t i = 0; i < rows; ++i) {
                panel[p * kMr + i] =
                    alpha * opAt(ta, a, lda, row0 + ir + i, col0 + p);
            }
            for (std::int64_t i = rows; i < kMr; ++i)
                panel[p * kMr + i] = 0.0f;
        }
    }
}

/**
 * Pack a kc x nc block of op(B) into kNr-column panels stored
 * panel-major: buf[panel][p][j]. Columns beyond nc are zero-filled.
 */
void
packB(Trans tb, const float *b, std::int64_t ldb, std::int64_t row0,
      std::int64_t col0, std::int64_t kc, std::int64_t nc, float *buf)
{
    for (std::int64_t jr = 0; jr < nc; jr += kNr) {
        std::int64_t cols = std::min(kNr, nc - jr);
        float *panel = buf + jr * kc;
        if (tb == Trans::No && cols == kNr) {
            // Fast path: contiguous row segments.
            for (std::int64_t p = 0; p < kc; ++p) {
                std::memcpy(panel + p * kNr,
                            b + (row0 + p) * ldb + col0 + jr,
                            kNr * sizeof(float));
            }
        } else {
            for (std::int64_t p = 0; p < kc; ++p) {
                for (std::int64_t j = 0; j < cols; ++j) {
                    panel[p * kNr + j] =
                        opAt(tb, b, ldb, row0 + p, col0 + jr + j);
                }
                for (std::int64_t j = cols; j < kNr; ++j)
                    panel[p * kNr + j] = 0.0f;
            }
        }
    }
}

#if defined(__AVX512F__)

/**
 * AVX-512 micro-kernel: C_tile = sum_p a_panel[p] (x) b_panel[p],
 * written into a dense kMr x kNr tile buffer. Two 16-lane vectors per
 * row double the per-cycle FLOPs of the AVX2 variant.
 */
inline void
microKernel(std::int64_t kc, const float *a, const float *b, float *tile)
{
    __m512 acc[kMr][2];
    for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm512_setzero_ps();
        acc[i][1] = _mm512_setzero_ps();
    }
    for (std::int64_t p = 0; p < kc; ++p) {
        __m512 b0 = _mm512_load_ps(b + p * kNr);
        __m512 b1 = _mm512_load_ps(b + p * kNr + 16);
        const float *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            __m512 ai = _mm512_set1_ps(ap[i]);
            acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    for (int i = 0; i < kMr; ++i) {
        _mm512_store_ps(tile + i * kNr, acc[i][0]);
        _mm512_store_ps(tile + i * kNr + 16, acc[i][1]);
    }
}

#elif defined(__AVX2__) && defined(__FMA__)

/**
 * AVX2/FMA micro-kernel: C_tile = sum_p a_panel[p] (x) b_panel[p],
 * written into a dense kMr x kNr tile buffer.
 */
inline void
microKernel(std::int64_t kc, const float *a, const float *b, float *tile)
{
    __m256 acc[kMr][2];
    for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm256_setzero_ps();
        acc[i][1] = _mm256_setzero_ps();
    }
    for (std::int64_t p = 0; p < kc; ++p) {
        __m256 b0 = _mm256_load_ps(b + p * kNr);
        __m256 b1 = _mm256_load_ps(b + p * kNr + 8);
        const float *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            __m256 ai = _mm256_broadcast_ss(ap + i);
            acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    for (int i = 0; i < kMr; ++i) {
        _mm256_store_ps(tile + i * kNr, acc[i][0]);
        _mm256_store_ps(tile + i * kNr + 8, acc[i][1]);
    }
}

#else

/** Scalar fallback micro-kernel for non-AVX2 builds. */
inline void
microKernel(std::int64_t kc, const float *a, const float *b, float *tile)
{
    float acc[kMr][kNr] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float *ap = a + p * kMr;
        const float *bp = b + p * kNr;
        for (int i = 0; i < kMr; ++i)
            for (int j = 0; j < kNr; ++j)
                acc[i][j] += ap[i] * bp[j];
    }
    for (int i = 0; i < kMr; ++i)
        for (int j = 0; j < kNr; ++j)
            tile[i * kNr + j] = acc[i][j];
}

#endif

/** Per-thread packing scratch, grown on demand. */
struct Scratch
{
    AlignedBuffer<float> a;
    AlignedBuffer<float> b;
    alignas(64) float tile[kMr * kNr];

    void
    ensure(std::size_t a_count, std::size_t b_count)
    {
        if (a.size() < a_count)
            a = AlignedBuffer<float>(a_count);
        if (b.size() < b_count)
            b = AlignedBuffer<float>(b_count);
    }
};

Scratch &
scratch()
{
    static thread_local Scratch s;
    return s;
}

/**
 * Add the valid region of a micro-tile into C, applying beta exactly
 * once per output element (on the first k block).
 */
inline void
writeTile(const float *tile, float *c, std::int64_t ldc, std::int64_t rows,
          std::int64_t cols, float beta)
{
    for (std::int64_t i = 0; i < rows; ++i) {
        float *crow = c + i * ldc;
        const float *trow = tile + i * kNr;
        if (beta == 0.0f) {
            for (std::int64_t j = 0; j < cols; ++j)
                crow[j] = trow[j];
        } else if (beta == 1.0f) {
            for (std::int64_t j = 0; j < cols; ++j)
                crow[j] += trow[j];
        } else {
            for (std::int64_t j = 0; j < cols; ++j)
                crow[j] = beta * crow[j] + trow[j];
        }
    }
}

} // namespace

void
gemmNaive(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float *a, std::int64_t lda,
          const float *b, std::int64_t ldb, float beta, float *c,
          std::int64_t ldc)
{
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double sum = 0.0;
            for (std::int64_t p = 0; p < k; ++p) {
                sum += static_cast<double>(opAt(ta, a, lda, i, p)) *
                       static_cast<double>(opAt(tb, b, ldb, p, j));
            }
            float prev = beta == 0.0f ? 0.0f : beta * c[i * ldc + j];
            c[i * ldc + j] = prev + alpha * static_cast<float>(sum);
        }
    }
}

void
sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
      float alpha, const float *a, std::int64_t lda, const float *b,
      std::int64_t ldb, float beta, float *c, std::int64_t ldc)
{
    if (m <= 0 || n <= 0)
        return;
    if (k <= 0 || alpha == 0.0f) {
        // Degenerate: C = beta * C.
        for (std::int64_t i = 0; i < m; ++i)
            for (std::int64_t j = 0; j < n; ++j)
                c[i * ldc + j] = beta == 0.0f ? 0.0f
                                              : beta * c[i * ldc + j];
        return;
    }

    Scratch &s = scratch();
    s.ensure(static_cast<std::size_t>(kMc) * kKc,
             static_cast<std::size_t>(kKc) * kNc);

    for (std::int64_t jc = 0; jc < n; jc += kNc) {
        std::int64_t nc = std::min(kNc, n - jc);
        std::int64_t nc_padded = (nc + kNr - 1) / kNr * kNr;
        for (std::int64_t pc = 0; pc < k; pc += kKc) {
            std::int64_t kc = std::min(kKc, k - pc);
            float beta_eff = pc == 0 ? beta : 1.0f;
            packB(tb, b, ldb, pc, jc, kc, nc, s.b.data());
            for (std::int64_t ic = 0; ic < m; ic += kMc) {
                std::int64_t mc = std::min(kMc, m - ic);
                packA(ta, a, lda, ic, pc, mc, kc, alpha, s.a.data());
                for (std::int64_t jr = 0; jr < nc_padded; jr += kNr) {
                    const float *bp = s.b.data() + jr * kc;
                    std::int64_t cols = std::min(kNr, nc - jr);
                    for (std::int64_t ir = 0; ir < mc; ir += kMr) {
                        const float *ap = s.a.data() + ir * kc;
                        std::int64_t rows = std::min(kMr, mc - ir);
                        microKernel(kc, ap, bp, s.tile);
                        writeTile(s.tile,
                                  c + (ic + ir) * ldc + jc + jr, ldc,
                                  rows, cols, beta_eff);
                    }
                }
            }
        }
    }
}

void
parallelGemm(ThreadPool &pool, Trans ta, Trans tb, std::int64_t m,
             std::int64_t n, std::int64_t k, float alpha, const float *a,
             std::int64_t lda, const float *b, std::int64_t ldb,
             float beta, float *c, std::int64_t ldc)
{
    int p = pool.threads();
    if (p <= 1 || static_cast<std::int64_t>(m) * n * k < 32 * 32 * 32) {
        sgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        return;
    }

    if (m >= p * kMr || m >= n) {
        // Partition rows of C: each worker multiplies a slab of op(A)
        // against ALL of op(B) — the per-core traffic the paper's
        // AIT-per-core analysis charges to Parallel-GEMM.
        pool.parallelFor(m, [&](std::int64_t begin, std::int64_t end,
                                int) {
            const float *a_slab = ta == Trans::No ? a + begin * lda
                                                  : a + begin;
            sgemm(ta, tb, end - begin, n, k, alpha, a_slab, lda, b, ldb,
                  beta, c + begin * ldc, ldc);
        });
    } else {
        // Partition columns of C.
        pool.parallelFor(n, [&](std::int64_t begin, std::int64_t end,
                                int) {
            const float *b_slab = tb == Trans::No ? b + begin
                                                  : b + begin * ldb;
            sgemm(ta, tb, m, end - begin, k, alpha, a, lda, b_slab, ldb,
                  beta, c + begin, ldc);
        });
    }
}

void
sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
      const float *a, const float *b, float beta, float *c)
{
    std::int64_t lda = ta == Trans::No ? k : m;
    std::int64_t ldb = tb == Trans::No ? n : k;
    sgemm(ta, tb, m, n, k, 1.0f, a, lda, b, ldb, beta, c, n);
}

void
parallelGemm(ThreadPool &pool, Trans ta, Trans tb, std::int64_t m,
             std::int64_t n, std::int64_t k, const float *a,
             const float *b, float beta, float *c)
{
    std::int64_t lda = ta == Trans::No ? k : m;
    std::int64_t ldb = tb == Trans::No ? n : k;
    parallelGemm(pool, ta, tb, m, n, k, 1.0f, a, lda, b, ldb, beta, c, n);
}

} // namespace spg
