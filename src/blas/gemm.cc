#include "blas/gemm.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "util/aligned.hh"
#include "util/logging.hh"

namespace spg {

namespace {

// Short local aliases for the public blocking parameters.
constexpr std::int64_t kMr = kGemmMr;
constexpr std::int64_t kNr = kGemmNr;
constexpr std::int64_t kMc = kGemmMc;
constexpr std::int64_t kKc = kGemmKc;
constexpr std::int64_t kNc = kGemmNc;

/** Element of op(X) at row r, col c for a row-major X with stride ld. */
inline float
opAt(Trans t, const float *x, std::int64_t ld, std::int64_t r,
     std::int64_t c)
{
    return t == Trans::No ? x[r * ld + c] : x[c * ld + r];
}

/**
 * Pack an mc x kc block of op(A), scaled by alpha, into kMr-row panels
 * stored panel-major: buf[panel][p][i] with i the row within the
 * panel. Rows beyond mc are zero-filled so the micro-kernel never
 * branches.
 */
void
packA(Trans ta, const float *a, std::int64_t lda, std::int64_t row0,
      std::int64_t col0, std::int64_t mc, std::int64_t kc, float alpha,
      float *buf)
{
    for (std::int64_t ir = 0; ir < mc; ir += kMr) {
        std::int64_t rows = std::min(kMr, mc - ir);
        float *panel = buf + ir * kc;
        for (std::int64_t p = 0; p < kc; ++p) {
            for (std::int64_t i = 0; i < rows; ++i) {
                panel[p * kMr + i] =
                    alpha * opAt(ta, a, lda, row0 + ir + i, col0 + p);
            }
            for (std::int64_t i = rows; i < kMr; ++i)
                panel[p * kMr + i] = 0.0f;
        }
    }
}

/**
 * Pack a kc x nc block of op(B) into kNr-column panels stored
 * panel-major: buf[panel][p][j]. Columns beyond nc are zero-filled.
 */
void
packB(Trans tb, const float *b, std::int64_t ldb, std::int64_t row0,
      std::int64_t col0, std::int64_t kc, std::int64_t nc, float *buf)
{
    for (std::int64_t jr = 0; jr < nc; jr += kNr) {
        std::int64_t cols = std::min(kNr, nc - jr);
        float *panel = buf + jr * kc;
        if (tb == Trans::No && cols == kNr) {
            // Fast path: contiguous row segments.
            for (std::int64_t p = 0; p < kc; ++p) {
                std::memcpy(panel + p * kNr,
                            b + (row0 + p) * ldb + col0 + jr,
                            kNr * sizeof(float));
            }
        } else {
            for (std::int64_t p = 0; p < kc; ++p) {
                for (std::int64_t j = 0; j < cols; ++j) {
                    panel[p * kNr + j] =
                        opAt(tb, b, ldb, row0 + p, col0 + jr + j);
                }
                for (std::int64_t j = cols; j < kNr; ++j)
                    panel[p * kNr + j] = 0.0f;
            }
        }
    }
}

#if defined(__AVX512F__)

/**
 * AVX-512 micro-kernel: C_tile = sum_p a_panel[p] (x) b_panel[p],
 * written into a dense kMr x kNr tile buffer. Two 16-lane vectors per
 * row double the per-cycle FLOPs of the AVX2 variant.
 */
inline void
microKernel(std::int64_t kc, const float *a, const float *b, float *tile)
{
    __m512 acc[kMr][2];
    for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm512_setzero_ps();
        acc[i][1] = _mm512_setzero_ps();
    }
    for (std::int64_t p = 0; p < kc; ++p) {
        __m512 b0 = _mm512_load_ps(b + p * kNr);
        __m512 b1 = _mm512_load_ps(b + p * kNr + 16);
        const float *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            __m512 ai = _mm512_set1_ps(ap[i]);
            acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    for (int i = 0; i < kMr; ++i) {
        _mm512_store_ps(tile + i * kNr, acc[i][0]);
        _mm512_store_ps(tile + i * kNr + 16, acc[i][1]);
    }
}

#elif defined(__AVX2__) && defined(__FMA__)

/**
 * AVX2/FMA micro-kernel: C_tile = sum_p a_panel[p] (x) b_panel[p],
 * written into a dense kMr x kNr tile buffer.
 */
inline void
microKernel(std::int64_t kc, const float *a, const float *b, float *tile)
{
    __m256 acc[kMr][2];
    for (int i = 0; i < kMr; ++i) {
        acc[i][0] = _mm256_setzero_ps();
        acc[i][1] = _mm256_setzero_ps();
    }
    for (std::int64_t p = 0; p < kc; ++p) {
        __m256 b0 = _mm256_load_ps(b + p * kNr);
        __m256 b1 = _mm256_load_ps(b + p * kNr + 8);
        const float *ap = a + p * kMr;
        for (int i = 0; i < kMr; ++i) {
            __m256 ai = _mm256_broadcast_ss(ap + i);
            acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    for (int i = 0; i < kMr; ++i) {
        _mm256_store_ps(tile + i * kNr, acc[i][0]);
        _mm256_store_ps(tile + i * kNr + 8, acc[i][1]);
    }
}

#else

/** Scalar fallback micro-kernel for non-AVX2 builds. */
inline void
microKernel(std::int64_t kc, const float *a, const float *b, float *tile)
{
    float acc[kMr][kNr] = {};
    for (std::int64_t p = 0; p < kc; ++p) {
        const float *ap = a + p * kMr;
        const float *bp = b + p * kNr;
        for (int i = 0; i < kMr; ++i)
            for (int j = 0; j < kNr; ++j)
                acc[i][j] += ap[i] * bp[j];
    }
    for (int i = 0; i < kMr; ++i)
        for (int j = 0; j < kNr; ++j)
            tile[i * kNr + j] = acc[i][j];
}

#endif

/** Per-thread packing scratch, grown on demand. */
struct Scratch
{
    AlignedBuffer<float> a;
    AlignedBuffer<float> b;
    alignas(64) float tile[kMr * kNr];

    void
    ensure(std::size_t a_count, std::size_t b_count)
    {
        if (a.size() < a_count)
            a = AlignedBuffer<float>(a_count);
        if (b.size() < b_count)
            b = AlignedBuffer<float>(b_count);
    }
};

Scratch &
scratch()
{
    static thread_local Scratch s;
    return s;
}

/**
 * Add the valid region of a micro-tile into C, applying beta exactly
 * once per output element (on the first k block).
 */
inline void
writeTile(const float *tile, float *c, std::int64_t ldc, std::int64_t rows,
          std::int64_t cols, float beta)
{
    for (std::int64_t i = 0; i < rows; ++i) {
        float *crow = c + i * ldc;
        const float *trow = tile + i * kNr;
        if (beta == 0.0f) {
            for (std::int64_t j = 0; j < cols; ++j)
                crow[j] = trow[j];
        } else if (beta == 1.0f) {
            for (std::int64_t j = 0; j < cols; ++j)
                crow[j] += trow[j];
        } else {
            for (std::int64_t j = 0; j < cols; ++j)
                crow[j] = beta * crow[j] + trow[j];
        }
    }
}

/** C = beta * C over an m x n region (degenerate k/alpha cases). */
void
scaleC(std::int64_t m, std::int64_t n, float beta, float *c,
       std::int64_t ldc)
{
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
            c[i * ldc + j] = beta == 0.0f ? 0.0f : beta * c[i * ldc + j];
}

/**
 * The shared blocking loop nest. Either operand may be pre-packed
 * (pa / pb non-null, full-matrix panel layout per PackedMatrix docs),
 * in which case the corresponding pack step is skipped and panels are
 * addressed by the closed-form block offsets. Columns [jc0, jc1) of C
 * are computed; jc0 must be a multiple of kNc and jc1 either a
 * multiple of kNc or n (so packed-B block offsets stay valid) — plain
 * calls pass [0, n).
 *
 * When pa is set, alpha was baked into the panels at pack time and the
 * alpha argument is ignored.
 */
void
gemmBlocked(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
            std::int64_t k, float alpha, const float *a, std::int64_t lda,
            const float *b, std::int64_t ldb, float beta, float *c,
            std::int64_t ldc, const float *pa, const float *pb,
            std::int64_t jc0, std::int64_t jc1)
{
    if (m <= 0 || jc1 <= jc0)
        return;
    if (k <= 0 || (!pa && alpha == 0.0f)) {
        for (std::int64_t i = 0; i < m; ++i)
            scaleC(1, jc1 - jc0, beta, c + i * ldc + jc0, ldc);
        return;
    }
    SPG_ASSERT(jc0 % kNc == 0);
    SPG_ASSERT(jc1 == n || jc1 % kNc == 0);

    Scratch &s = scratch();
    s.ensure(pa ? 0 : static_cast<std::size_t>(kMc) * kKc,
             pb ? 0 : static_cast<std::size_t>(kKc) * kNc);
    std::int64_t m_padded = roundUpTo(m, kMr);

    for (std::int64_t jc = jc0; jc < jc1; jc += kNc) {
        std::int64_t nc = std::min(kNc, jc1 - jc);
        std::int64_t nc_padded = roundUpTo(nc, kNr);
        for (std::int64_t pc = 0; pc < k; pc += kKc) {
            std::int64_t kc = std::min(kKc, k - pc);
            float beta_eff = pc == 0 ? beta : 1.0f;
            const float *bblock;
            if (pb) {
                bblock = pb + jc * k + nc_padded * pc;
            } else {
                packB(tb, b, ldb, pc, jc, kc, nc, s.b.data());
                bblock = s.b.data();
            }
            for (std::int64_t ic = 0; ic < m; ic += kMc) {
                std::int64_t mc = std::min(kMc, m - ic);
                const float *ablock;
                if (pa) {
                    ablock = pa + m_padded * pc + ic * kc;
                } else {
                    packA(ta, a, lda, ic, pc, mc, kc, alpha, s.a.data());
                    ablock = s.a.data();
                }
                for (std::int64_t jr = 0; jr < nc_padded; jr += kNr) {
                    const float *bp = bblock + jr * kc;
                    std::int64_t cols = std::min(kNr, nc - jr);
                    for (std::int64_t ir = 0; ir < mc; ir += kMr) {
                        const float *ap = ablock + ir * kc;
                        std::int64_t rows = std::min(kMr, mc - ir);
                        microKernel(kc, ap, bp, s.tile);
                        writeTile(s.tile,
                                  c + (ic + ir) * ldc + jc + jr, ldc,
                                  rows, cols, beta_eff);
                    }
                }
            }
        }
    }
}

} // namespace

void
packMatrixAInto(Trans ta, std::int64_t m, std::int64_t k, float alpha,
                const float *a, std::int64_t lda, float *panels)
{
    std::int64_t m_padded = roundUpTo(m, kMr);
    for (std::int64_t pc = 0; pc < k; pc += kKc) {
        std::int64_t kc = std::min(kKc, k - pc);
        for (std::int64_t ic = 0; ic < m; ic += kMc) {
            std::int64_t mc = std::min(kMc, m - ic);
            packA(ta, a, lda, ic, pc, mc, kc, alpha,
                  panels + m_padded * pc + ic * kc);
        }
    }
}

void
packMatrixBInto(Trans tb, std::int64_t k, std::int64_t n, const float *b,
                std::int64_t ldb, float *panels)
{
    for (std::int64_t jc = 0; jc < n; jc += kNc) {
        std::int64_t nc = std::min(kNc, n - jc);
        std::int64_t nc_padded = roundUpTo(nc, kNr);
        for (std::int64_t pc = 0; pc < k; pc += kKc) {
            std::int64_t kc = std::min(kKc, k - pc);
            packB(tb, b, ldb, pc, jc, kc, nc,
                  panels + jc * k + nc_padded * pc);
        }
    }
}

PackedMatrix
PackedMatrix::packA(Trans ta, std::int64_t m, std::int64_t k, float alpha,
                    const float *a, std::int64_t lda)
{
    SPG_ASSERT(m > 0 && k > 0);
    PackedMatrix packed(Kind::A, m, k);
    packed.owned_ = AlignedBuffer<float>(panelElemsA(m, k));
    packMatrixAInto(ta, m, k, alpha, a, lda, packed.owned_.data());
    packed.data_ = packed.owned_.data();
    return packed;
}

PackedMatrix
PackedMatrix::packB(Trans tb, std::int64_t k, std::int64_t n,
                    const float *b, std::int64_t ldb)
{
    SPG_ASSERT(k > 0 && n > 0);
    PackedMatrix packed(Kind::B, k, n);
    packed.owned_ = AlignedBuffer<float>(panelElemsB(k, n));
    packMatrixBInto(tb, k, n, b, ldb, packed.owned_.data());
    packed.data_ = packed.owned_.data();
    return packed;
}

PackedMatrix
PackedMatrix::viewA(std::int64_t m, std::int64_t k, const float *panels)
{
    PackedMatrix packed(Kind::A, m, k);
    packed.data_ = panels;
    return packed;
}

PackedMatrix
PackedMatrix::viewB(std::int64_t k, std::int64_t n, const float *panels)
{
    PackedMatrix packed(Kind::B, k, n);
    packed.data_ = panels;
    return packed;
}

void
gemmNaive(Trans ta, Trans tb, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float *a, std::int64_t lda,
          const float *b, std::int64_t ldb, float beta, float *c,
          std::int64_t ldc)
{
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            double sum = 0.0;
            for (std::int64_t p = 0; p < k; ++p) {
                sum += static_cast<double>(opAt(ta, a, lda, i, p)) *
                       static_cast<double>(opAt(tb, b, ldb, p, j));
            }
            float prev = beta == 0.0f ? 0.0f : beta * c[i * ldc + j];
            c[i * ldc + j] = prev + alpha * static_cast<float>(sum);
        }
    }
}

void
sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
      float alpha, const float *a, std::int64_t lda, const float *b,
      std::int64_t ldb, float beta, float *c, std::int64_t ldc)
{
    if (n <= 0)
        return;
    gemmBlocked(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                nullptr, nullptr, 0, n);
}

void
sgemmPackedA(const PackedMatrix &a, Trans tb, std::int64_t n,
             const float *b, std::int64_t ldb, float beta, float *c,
             std::int64_t ldc)
{
    SPG_ASSERT(a.kind() == PackedMatrix::Kind::A && !a.empty());
    if (n <= 0)
        return;
    gemmBlocked(Trans::No, tb, a.rows(), n, a.cols(), 1.0f, nullptr, 0, b,
                ldb, beta, c, ldc, a.panels(), nullptr, 0, n);
}

void
sgemmPackedB(Trans ta, std::int64_t m, float alpha, const float *a,
             std::int64_t lda, const PackedMatrix &b, float beta, float *c,
             std::int64_t ldc)
{
    SPG_ASSERT(b.kind() == PackedMatrix::Kind::B && !b.empty());
    if (b.cols() <= 0)
        return;
    gemmBlocked(ta, Trans::No, m, b.cols(), b.rows(), alpha, a, lda,
                nullptr, 0, beta, c, ldc, nullptr, b.panels(), 0,
                b.cols());
}

void
sgemmPackedAB(const PackedMatrix &a, const PackedMatrix &b, float beta,
              float *c, std::int64_t ldc)
{
    SPG_ASSERT(a.kind() == PackedMatrix::Kind::A &&
               b.kind() == PackedMatrix::Kind::B);
    SPG_ASSERT(a.cols() == b.rows());
    if (b.cols() <= 0)
        return;
    gemmBlocked(Trans::No, Trans::No, a.rows(), b.cols(), a.cols(), 1.0f,
                nullptr, 0, nullptr, 0, beta, c, ldc, a.panels(),
                b.panels(), 0, b.cols());
}

void
parallelGemm(ThreadPool &pool, Trans ta, Trans tb, std::int64_t m,
             std::int64_t n, std::int64_t k, float alpha, const float *a,
             std::int64_t lda, const float *b, std::int64_t ldb,
             float beta, float *c, std::int64_t ldc)
{
    int p = pool.threads();
    if (p <= 1 || static_cast<std::int64_t>(m) * n * k < 32 * 32 * 32) {
        sgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
        return;
    }

    if (m >= p * kMr || m >= n) {
        // Partition rows of C: each worker multiplies a slab of op(A)
        // against ALL of op(B) — the per-core traffic the paper's
        // AIT-per-core analysis charges to Parallel-GEMM.
        pool.parallelFor(m, [&](std::int64_t begin, std::int64_t end,
                                int) {
            const float *a_slab = ta == Trans::No ? a + begin * lda
                                                  : a + begin;
            sgemm(ta, tb, end - begin, n, k, alpha, a_slab, lda, b, ldb,
                  beta, c + begin * ldc, ldc);
        });
    } else {
        // Partition columns of C.
        pool.parallelFor(n, [&](std::int64_t begin, std::int64_t end,
                                int) {
            const float *b_slab = tb == Trans::No ? b + begin
                                                  : b + begin * ldb;
            sgemm(ta, tb, m, end - begin, k, alpha, a, lda, b_slab, ldb,
                  beta, c + begin, ldc);
        });
    }
}

void
parallelGemmPackedA(ThreadPool &pool, const PackedMatrix &a, Trans tb,
                    std::int64_t n, const float *b, std::int64_t ldb,
                    float beta, float *c, std::int64_t ldc)
{
    SPG_ASSERT(a.kind() == PackedMatrix::Kind::A && !a.empty());
    std::int64_t m = a.rows(), k = a.cols();
    if (n <= 0)
        return;
    if (pool.threads() <= 1 ||
        static_cast<std::int64_t>(m) * n * k < 32 * 32 * 32) {
        sgemmPackedA(a, tb, n, b, ldb, beta, c, ldc);
        return;
    }
    // Packed panels are indexed by (row block, k block) only, so any
    // column partition can share them read-only.
    pool.parallelFor(n, [&](std::int64_t begin, std::int64_t end, int) {
        const float *b_slab = tb == Trans::No ? b + begin
                                              : b + begin * ldb;
        gemmBlocked(Trans::No, tb, m, end - begin, k, 1.0f, nullptr, 0,
                    b_slab, ldb, beta, c + begin, ldc, a.panels(),
                    nullptr, 0, end - begin);
    });
}

void
parallelGemmPackedAB(ThreadPool &pool, const PackedMatrix &a,
                     const PackedMatrix &b, float beta, float *c,
                     std::int64_t ldc)
{
    SPG_ASSERT(a.kind() == PackedMatrix::Kind::A &&
               b.kind() == PackedMatrix::Kind::B);
    SPG_ASSERT(a.cols() == b.rows());
    std::int64_t n = b.cols();
    if (n <= 0)
        return;
    std::int64_t nblocks = (n + kNc - 1) / kNc;
    if (pool.threads() <= 1 || nblocks <= 1) {
        sgemmPackedAB(a, b, beta, c, ldc);
        return;
    }
    // Packed-B block offsets require kNc-aligned ranges, so the
    // partition is over whole column blocks.
    pool.parallelFor(nblocks, [&](std::int64_t begin, std::int64_t end,
                                  int) {
        gemmBlocked(Trans::No, Trans::No, a.rows(), n, a.cols(), 1.0f,
                    nullptr, 0, nullptr, 0, beta, c, ldc, a.panels(),
                    b.panels(), begin * kNc, std::min(n, end * kNc));
    });
}

void
sgemm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
      const float *a, const float *b, float beta, float *c)
{
    std::int64_t lda = ta == Trans::No ? k : m;
    std::int64_t ldb = tb == Trans::No ? n : k;
    sgemm(ta, tb, m, n, k, 1.0f, a, lda, b, ldb, beta, c, n);
}

void
parallelGemm(ThreadPool &pool, Trans ta, Trans tb, std::int64_t m,
             std::int64_t n, std::int64_t k, const float *a,
             const float *b, float beta, float *c)
{
    std::int64_t lda = ta == Trans::No ? k : m;
    std::int64_t ldb = tb == Trans::No ? n : k;
    parallelGemm(pool, ta, tb, m, n, k, 1.0f, a, lda, b, ldb, beta, c, n);
}

} // namespace spg
