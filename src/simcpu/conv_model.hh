/**
 * @file
 * Performance models of the convolution engines on the modeled
 * machine.
 *
 * Two levels are provided:
 *
 *  - Raw MM models (modelParallelGemmMm / modelGemmInParallelMm):
 *    the paper's Fig. 3a and Fig. 4a/4b time bare matrix multiplies
 *    under the two schedules; these models mirror exactly the operand
 *    partitioning of blas/gemm.cc.
 *
 *  - Convolution phase models (modelConvPhase): full engine executions
 *    including unfold/fold traffic, data-layout transforms, CT-CSR
 *    construction and fork-join overheads — used for Fig. 4c-4f,
 *    Fig. 8 and Fig. 9.
 *
 * Traffic estimates count each operand stream once (the paper's AIT
 * convention), with cache-capacity conditions where reuse across the
 * loop nest depends on a working set fitting in L2 (stencil input
 * reuse across output features).
 */

#ifndef SPG_SIMCPU_CONV_MODEL_HH
#define SPG_SIMCPU_CONV_MODEL_HH

#include <string>

#include "conv/conv_spec.hh"
#include "conv/engine.hh"
#include "simcpu/simulate.hh"

namespace spg {

/** GEMM dimensions of a convolution phase (unfolded form). */
struct PhaseMm
{
    std::int64_t m, n, k;
};

/** @return the MM the unfolded form of this phase computes. */
PhaseMm phaseMm(const ConvSpec &spec, Phase phase);

/**
 * One m x n x k MM partitioned across `cores` (Parallel-GEMM).
 * Mirrors blas parallelGemm: rows of C when m is large enough,
 * columns otherwise; each core touches its output slab plus the whole
 * shared operand.
 */
SimResult modelParallelGemmMm(const MachineModel &machine, std::int64_t m,
                              std::int64_t n, std::int64_t k, int cores);

/**
 * `batch` independent m x n x k MMs distributed over `cores`
 * (GEMM-in-Parallel); each MM runs single-threaded on its core.
 */
SimResult modelGemmInParallelMm(const MachineModel &machine,
                                std::int64_t m, std::int64_t n,
                                std::int64_t k, std::int64_t batch,
                                int cores);

/**
 * Full engine execution of one layer phase over a minibatch.
 *
 * @param machine Modeled machine.
 * @param spec Layer geometry.
 * @param phase FP / BP-data / BP-weights.
 * @param engine Engine name ("parallel-gemm", "gemm-in-parallel",
 *        "stencil", "direct", "sparse").
 * @param batch Minibatch size.
 * @param cores Active cores.
 * @param sparsity Fraction of zeros in the output-error gradients
 *        (ignored for FP).
 * @param chunk_map Optional MEASURED per-core item counts (e.g.
 *        EngineTiming::chunk_map recorded by the tuner). When given,
 *        the image-parallel engines (gemm-in-parallel, stencil,
 *        direct, sparse) charge this schedule via simulateScheduled()
 *        instead
 *        of an idealized even split; its size overrides `cores`.
 *        Parallel-GEMM partitions a single MM rather than scheduling
 *        items, so it ignores the map.
 * @param fused_relu Model the layer as it runs with a fused ReLU
 *        epilogue: FP adds the byte-mask store, dense BP adds the
 *        one-shot masked-EO staging, the mask-fused sparse encode adds
 *        only the mask read. The standalone elementwise ReLU pass the
 *        fusion eliminates (see modelReluPassSeconds) is NOT charged.
 * @param weight_sparsity Zero fraction of the weight tensor — consumed
 *        by the CSR-weights FP engines ("sparse-weights",
 *        "sparse-weights-direct"), whose compute and weight traffic
 *        scale with the surviving taps. Ignored by the dense engines.
 * @return Simulated result; useful_flops reflects goodput (non-zero
 *         work) for BP phases.
 */
SimResult modelConvPhase(const MachineModel &machine, const ConvSpec &spec,
                         Phase phase, const std::string &engine,
                         std::int64_t batch, int cores,
                         double sparsity = 0.0,
                         const std::vector<std::int64_t> *chunk_map =
                             nullptr,
                         bool fused_relu = false,
                         double weight_sparsity = 0.0);

/**
 * @return modeled seconds of one standalone elementwise ReLU pass over
 * `elems` activations on `cores` cores (read + write, memory-bound) —
 * the per-direction cost that epilogue fusion removes from both FP
 * (relu forward) and BP (relu backward over the error tensor).
 */
double modelReluPassSeconds(const MachineModel &machine,
                            std::int64_t elems, int cores);

/**
 * @return per-image time (seconds) of a complete training step of one
 * conv layer (FP + BP-data + BP-weights) with the given FP/BP engine
 * pair — the building block of the Fig. 9 end-to-end model.
 */
double modelLayerStepSeconds(const MachineModel &machine,
                             const ConvSpec &spec,
                             const std::string &fp_engine,
                             const std::string &bp_engine,
                             std::int64_t batch, int cores,
                             double sparsity, bool fused_relu = false);

} // namespace spg

#endif // SPG_SIMCPU_CONV_MODEL_HH
