#include "simcpu/conv_model.hh"

#include <algorithm>
#include <cmath>

#include "perf/roofline.hh"
#include "util/logging.hh"

namespace spg {

namespace {

constexpr double kFloat = 4.0;  ///< bytes per element

/** Unfold+GEMM streaming traffic (elements) of one image, per phase,
 *  exclusive of the in-GEMM operand packing (see packExtraElems). */
double
unfoldTrafficElems(const ConvSpec &spec, Phase phase)
{
    double u = static_cast<double>(spec.unfoldedElems());
    switch (phase) {
      case Phase::Forward:
        // read I, write U; MM reads U + W, writes O.
        return spec.inputElems() + 2 * u + spec.weightElems() +
               spec.outputElems();
      case Phase::BackwardData:
        // MM reads EO + W, writes Ugrad; fold reads Ugrad, writes EI.
        return spec.outputElems() + spec.weightElems() + 2 * u +
               spec.inputElems();
      case Phase::BackwardWeights:
        // unfold I; MM reads EO + U, accumulates dW.
        return spec.inputElems() + 2 * u + spec.outputElems() +
               2 * spec.weightElems();
    }
    return 0;
}

/**
 * The extra traffic the in-GEMM operand packing adds on top of the
 * footprint already counted once per stream: the A-panel write (its
 * re-reads are L2-resident and free under the model's conventions)
 * plus the B-panel write AND kernel re-read (B panels are streamed, so
 * the round trip hits memory). The packed engines elide exactly these
 * terms — a cached weight operand drops its whole pack share, and the
 * fused unfold emits panels directly so U never round-trips through a
 * dense intermediate.
 *
 * @param a_elems Per-core footprint of the A operand.
 * @param b_elems Per-core footprint of the B operand.
 */
double
packExtraElems(double a_elems, double b_elems)
{
    return a_elems + 2.0 * b_elems;
}

/** Per-image GEMM operand footprints {A, B} for the unfold schedules. */
void
phaseOperandElems(const ConvSpec &spec, Phase phase, double &a_elems,
                  double &b_elems)
{
    double u = static_cast<double>(spec.unfoldedElems());
    switch (phase) {
      case Phase::Forward:  // O = W * U'
        a_elems = spec.weightElems();
        b_elems = u;
        return;
      case Phase::BackwardData:  // U'grad = W^T * EO
        a_elems = spec.weightElems();
        b_elems = spec.outputElems();
        return;
      case Phase::BackwardWeights:  // dW += EO * U'^T
        a_elems = spec.outputElems();
        b_elems = u;
        return;
    }
    a_elems = b_elems = 0;
}

/** The unfold/fold prologue that the baseline runs serially. */
double
serialPrologueElems(const ConvSpec &spec, Phase phase)
{
    double u = static_cast<double>(spec.unfoldedElems());
    switch (phase) {
      case Phase::Forward:
      case Phase::BackwardWeights:
        return spec.inputElems() + u;  // im2col: read I, write U
      case Phase::BackwardData:
        return u + spec.inputElems();  // col2im: read Ugrad, write EI
    }
    return 0;
}

} // namespace

PhaseMm
phaseMm(const ConvSpec &spec, Phase phase)
{
    switch (phase) {
      case Phase::Forward:
        return {spec.gemmM(), spec.gemmN(), spec.gemmK()};
      case Phase::BackwardData:
        return {spec.gemmK(), spec.gemmN(), spec.gemmM()};
      case Phase::BackwardWeights:
        return {spec.gemmM(), spec.gemmK(), spec.gemmN()};
    }
    return {0, 0, 0};
}

SimResult
modelParallelGemmMm(const MachineModel &machine, std::int64_t m,
                    std::int64_t n, std::int64_t k, int cores)
{
    SPG_ASSERT(cores >= 1);
    // Mirror blas/gemm.cc: rows of C when m is big enough, else cols.
    GemmPartition part = (m >= static_cast<std::int64_t>(cores) * 6 ||
                          m >= n)
                             ? GemmPartition::Rows
                             : GemmPartition::Cols;
    double per_core_elems = gemmElementsPerCore(m, n, k, cores, part);
    double mc = part == GemmPartition::Rows
                    ? static_cast<double>(m) / cores
                    : static_cast<double>(m);
    double nc = part == GemmPartition::Cols
                    ? static_cast<double>(n) / cores
                    : static_cast<double>(n);
    SimTask task;
    task.flops = gemmFlopsPerCore(m, n, k, cores);
    task.bytes = kFloat * per_core_elems;
    task.efficiency = machine.gemmEfficiency(mc, nc, k);
    std::vector<std::vector<SimTask>> per_core(cores, {task});
    return simulate(machine, per_core);
}

SimResult
modelGemmInParallelMm(const MachineModel &machine, std::int64_t m,
                      std::int64_t n, std::int64_t k, std::int64_t batch,
                      int cores)
{
    SimTask task;
    task.flops = 2.0 * m * n * k;
    task.bytes = kFloat * (static_cast<double>(m) * k +
                           static_cast<double>(k) * n +
                           static_cast<double>(m) * n);
    task.efficiency = machine.gemmEfficiency(m, n, k);
    return simulateUniform(machine, task, batch, cores);
}

SimResult
modelConvPhase(const MachineModel &machine, const ConvSpec &spec,
               Phase phase, const std::string &engine, std::int64_t batch,
               int cores, double sparsity,
               const std::vector<std::int64_t> *chunk_map, bool fused_relu,
               double weight_sparsity)
{
    spec.validate();
    SPG_ASSERT(batch >= 1 && cores >= 1);
    // Fused-ReLU epilogue traffic, in float-equivalent elements per
    // image. The byte mask counts as a quarter element per entry. FP
    // stores the mask while the output tile is hot; dense BP stages
    // (mask ? EO : 0) once (read EO + mask, write staging); the
    // mask-fused sparse encode only adds the mask read to its passes.
    double eo_elems = static_cast<double>(spec.outputElems());
    double fused_fp_elems = fused_relu ? 0.25 * eo_elems : 0.0;
    double fused_stage_elems = fused_relu ? 2.25 * eo_elems : 0.0;
    double fused_mask_elems = fused_relu ? 0.25 * eo_elems : 0.0;
    // Image-parallel engines distribute per-image tasks; a measured
    // chunk map replaces the idealized even split for them.
    auto scheduleImages = [&](const SimTask &task, double useful) {
        if (chunk_map && !chunk_map->empty())
            return simulateScheduled(machine, task, batch, *chunk_map,
                                     {}, useful);
        return simulateUniform(machine, task, batch, cores, {}, useful);
    };
    sparsity = std::clamp(sparsity, 0.0, 1.0);
    weight_sparsity = std::clamp(weight_sparsity, 0.0, 1.0);
    PhaseMm mm = phaseMm(spec, phase);
    double dense_flops = 2.0 * mm.m * mm.n * mm.k;
    double useful_one = phase == Phase::Forward
                            ? dense_flops
                            : (1.0 - sparsity) * dense_flops;

    if (engine == "parallel-gemm" || engine == "parallel-gemm-packed") {
        // Sequential over images: serial unfold/fold prologue + the
        // partitioned MM, once per image; fork-join per image. The
        // packed variant inherits the unpacked BP-weights path (the
        // weights are that GEMM's OUTPUT, nothing to cache).
        bool packed = engine == "parallel-gemm-packed" &&
                      phase != Phase::BackwardWeights;
        // The packed engine always partitions columns (kGemmNc blocks
        // of the shared packed operands); the unpacked one prefers
        // rows when there are enough of them.
        GemmPartition part =
            !packed && (mm.m >= static_cast<std::int64_t>(cores) * 6 ||
                        mm.m >= mm.n)
                ? GemmPartition::Rows
                : GemmPartition::Cols;
        double mc = part == GemmPartition::Rows
                        ? static_cast<double>(mm.m) / cores
                        : static_cast<double>(mm.m);
        double ncols = part == GemmPartition::Cols
                           ? static_cast<double>(mm.n) / cores
                           : static_cast<double>(mm.n);
        SimTask mm_task;
        mm_task.flops = gemmFlopsPerCore(mm.m, mm.n, mm.k, cores);
        mm_task.bytes =
            kFloat * gemmElementsPerCore(mm.m, mm.n, mm.k, cores, part);
        double a_elems, b_elems;
        phaseOperandElems(spec, phase, a_elems, b_elems);
        double a_core =
            part == GemmPartition::Rows ? a_elems / cores : a_elems;
        double b_core =
            part == GemmPartition::Cols ? b_elems / cores : b_elems;
        if (!packed) {
            // Every core re-packs its operand footprint per image.
            mm_task.bytes += kFloat * packExtraElems(a_core, b_core);
        } else if (phase == Phase::BackwardData) {
            // Weights are cached packed, but the EO slab (B operand)
            // still packs per call.
            mm_task.bytes += kFloat * packExtraElems(0.0, b_core);
        }
        // Packed FP pays nothing: weights cached, unfold fused.
        if (phase == Phase::Forward)
            mm_task.bytes += kFloat * fused_fp_elems / cores;
        mm_task.efficiency = machine.gemmEfficiency(mc, ncols, mm.k);
        SimTask pro;
        pro.bytes = kFloat * serialPrologueElems(spec, phase);
        if (phase != Phase::Forward)
            pro.bytes += kFloat * fused_stage_elems;
        std::vector<std::vector<SimTask>> per_core(cores, {mm_task});
        SimResult one = simulate(machine, per_core, {pro});
        one.seconds *= batch;
        one.total_flops *= batch;
        one.useful_flops = useful_one * batch;
        return one;
    }

    if (engine == "gemm-in-parallel" ||
        engine == "gemm-in-parallel-packed") {
        bool packed = engine == "gemm-in-parallel-packed" &&
                      phase != Phase::BackwardWeights;
        SimTask task;
        task.flops = dense_flops;
        task.bytes = kFloat * unfoldTrafficElems(spec, phase);
        double a_elems, b_elems;
        phaseOperandElems(spec, phase, a_elems, b_elems);
        if (!packed)
            task.bytes += kFloat * packExtraElems(a_elems, b_elems);
        else if (phase == Phase::BackwardData)
            task.bytes += kFloat * packExtraElems(0.0, b_elems);
        task.bytes += kFloat * (phase == Phase::Forward
                                    ? fused_fp_elems
                                    : fused_stage_elems);
        task.efficiency = machine.gemmEfficiency(
            static_cast<double>(mm.m), static_cast<double>(mm.n),
            static_cast<double>(mm.k));
        return scheduleImages(task, useful_one * batch);
    }

    if (engine == "stencil") {
        SPG_ASSERT(phase == Phase::Forward);
        double in_bytes = kFloat * spec.inputElems();
        double out_plane = kFloat * spec.outY() * spec.outX();
        // Input planes are reused across the Nf output features only
        // if all channels plus one output plane fit in L2.
        double in_reload =
            (in_bytes + out_plane <= machine.l2_bytes) ? 1.0
                                                       : spec.nf;
        double elems = in_reload * spec.inputElems() +
                       spec.weightElems() + 2.0 * spec.outputElems();
        if (spec.sx > 1)
            elems += 2.0 * spec.inputElems();  // Eq. 21 split
        elems += fused_fp_elems;
        SimTask task;
        task.flops = dense_flops;
        task.bytes = kFloat * elems;
        task.efficiency = machine.stencil_efficiency;
        return scheduleImages(task, useful_one * batch);
    }

    if (engine == "sparse" || engine == "sparse-cached") {
        SPG_ASSERT(phase != Phase::Forward);
        double eo = spec.outputElems();
        double nnz = (1.0 - sparsity) * eo;
        double flops = 2.0 * nnz * spec.fy * spec.fx * spec.nc;
        double elems;
        if (phase == Phase::BackwardData) {
            // sparse: EO transform (r+w) + CSR build (r EO', w 2nnz).
            // sparse-cached: fingerprint (r EO) + fused two-pass
            // CHW->CT-CSR build (counts r EO + fill r EO, w 2nnz) —
            // the dense HWC staging round trip is gone, but the fused
            // builder reads the source twice, so the totals coincide.
            // Both: + W' transform (~3|W|) + EI staging (zero+write+
            // readback+write = 4|EI|).
            elems = 3.0 * eo + 2.0 * nnz + 3.0 * spec.weightElems() +
                    4.0 * spec.inputElems();
        } else if (engine == "sparse") {
            // Re-encodes EO from scratch, same as BP-data.
            elems = 3.0 * eo + 2.0 * nnz + 3.0 * spec.inputElems() +
                    4.0 * spec.weightElems();
        } else {
            // Encode-once: BP-weights replays the plan built by
            // BP-data, so the encode traffic is charged ONCE per
            // minibatch, not twice — only the fingerprint check (r EO)
            // and the plan read (2nnz) remain here.
            elems = eo + 2.0 * nnz + 3.0 * spec.inputElems() +
                    4.0 * spec.weightElems();
        }
        // Mask-fused encode (sparse-cached) only reads the byte mask
        // alongside EO; the plain sparse engine stages a masked copy.
        elems += engine == "sparse-cached" ? fused_mask_elems
                                           : fused_stage_elems;
        SimTask task;
        task.flops = flops;
        task.bytes = kFloat * elems;
        task.efficiency = machine.axpy_efficiency;
        return scheduleImages(task, flops * batch);
    }

    if (engine == "direct") {
        // Blocked NCHWc register-tiled engine. Channel tails are
        // padded to the 8-lane block, so the executed FLOPs carry the
        // pad ratio; the staging conversions at the layer boundary are
        // charged too, matching how the tuner measures the engine on
        // plain tensors (a negotiated blocked edge elides the FP
        // pack/unpack share at deployment).
        const double blk = 8.0;
        double cbn = std::ceil(static_cast<double>(spec.nc) / blk);
        double kbn = std::ceil(static_cast<double>(spec.nf) / blk);
        double in_pad = cbn * blk * spec.ny * spec.nx;
        double out_pad = kbn * blk * spec.outY() * spec.outX();
        double w_pad = kbn * blk * cbn * blk * spec.fy * spec.fx;
        SimTask task;
        if (phase == Phase::Forward) {
            // Pack in + weights, compute, unpack out. The blocked
            // input image is re-streamed once per feature block unless
            // it stays L2-resident beside an output row. The FP tile
            // accumulates in double for bit-exactness with the
            // reference, halving the vector FMA rate.
            double in_bytes = kFloat * in_pad;
            double out_row = kFloat * spec.outX() * blk;
            double in_reload =
                (in_bytes + out_row <= machine.l2_bytes) ? 1.0 : kbn;
            double elems = spec.inputElems() + in_pad        // pack in
                           + spec.weightElems() + w_pad      // pack w
                           + in_reload * in_pad + w_pad      // compute
                           + out_pad                         // store
                           + out_pad + spec.outputElems()    // unpack
                           + fused_fp_elems;
            task.flops = dense_flops * (cbn * blk / spec.nc) *
                         (kbn * blk / spec.nf);
            task.bytes = kFloat * elems;
            task.efficiency = 0.5 * machine.stencil_efficiency;
        } else if (phase == Phase::BackwardData) {
            // Gather-layout weight pack, blocked EI compute (EO image
            // re-streamed per channel block unless L2-resident), EI
            // unpack. Float FMA at stencil rate; pad lanes only on the
            // input-channel side.
            double w_gather = cbn * blk * spec.nf * spec.fy * spec.fx;
            double eo_bytes = kFloat * spec.outputElems();
            double ei_row = kFloat * spec.nx * blk;
            double eo_reload =
                (eo_bytes + ei_row <= machine.l2_bytes) ? 1.0 : cbn;
            double elems = spec.weightElems() + w_gather     // pack w
                           + eo_reload * spec.outputElems()  // compute
                           + w_gather + in_pad               // store
                           + in_pad + spec.inputElems()      // unpack
                           + fused_stage_elems;
            task.flops = dense_flops * (cbn * blk / spec.nc);
            task.bytes = kFloat * elems;
            task.efficiency = machine.stencil_efficiency;
        } else {
            // Blocked masked EO staging, then one task per (feature
            // block, channel block, kernel row), each streaming the
            // paired EO / input block planes; the fy row tasks of a
            // pair hit L2 when both planes fit. Pad lanes on both
            // sides of the dw tiles.
            double eo_plane = blk * spec.outY() * spec.outX();
            double in_plane = blk * spec.ny * spec.nx;
            double passes =
                kFloat * (eo_plane + in_plane) <= machine.l2_bytes
                    ? 1.0
                    : spec.fy;
            double elems = spec.outputElems() + out_pad      // stage EO
                           + fused_mask_elems
                           + passes * kbn * cbn *
                                 (eo_plane + in_plane)       // compute
                           + 2.0 * w_pad + spec.weightElems();  // dw
            task.flops = dense_flops * (cbn * blk / spec.nc) *
                         (kbn * blk / spec.nf);
            task.bytes = kFloat * elems;
            task.efficiency = machine.stencil_efficiency;
        }
        return scheduleImages(task, useful_one * batch);
    }

    if (engine == "sparse-weights" || engine == "sparse-weights-direct") {
        // CSR-weights FP engines: compute and weight traffic scale with
        // the surviving taps. The encode is once per weight version and
        // amortized across a whole prune interval, so the steady-state
        // model charges only the plan read: value + input-offset per
        // nnz (2 elements under the AIT convention). The input image is
        // re-streamed once per output feature unless it stays
        // L2-resident beside an output plane (same reuse condition as
        // the dense stencil).
        SPG_ASSERT(phase == Phase::Forward);
        double taps = static_cast<double>(spec.nc) * spec.fy * spec.fx;
        double nnz = (1.0 - weight_sparsity) *
                     static_cast<double>(spec.nf) * taps;
        double flops = 2.0 * nnz * spec.outY() * spec.outX();
        double in_bytes = kFloat * spec.inputElems();
        double out_plane =
            kFloat * static_cast<double>(spec.outY()) * spec.outX();
        double in_reload =
            (in_bytes + out_plane <= machine.l2_bytes) ? 1.0
                                                       : spec.nf;
        double elems = in_reload * spec.inputElems() + 2.0 * nnz;
        SimTask task;
        if (engine == "sparse-weights-direct") {
            // Register-tiled, write-once output; per-pixel double
            // accumulation halves the vector FMA rate (bit-exactness
            // with the reference, like the direct engine's FP tile).
            elems += spec.outputElems();
            task.efficiency = 0.5 * machine.stencil_efficiency;
        } else {
            // Row-AXPY into a zeroed output plane: memset + per-tap
            // read-modify-write makes the output round-trip.
            elems += 2.0 * spec.outputElems();
            task.efficiency = machine.axpy_efficiency;
        }
        elems += fused_fp_elems;
        task.flops = flops;
        task.bytes = kFloat * elems;
        // Goodput: every executed FLOP lands on a surviving tap.
        return scheduleImages(task, flops * batch);
    }

    panic("no performance model for engine '%s'", engine.c_str());
}

double
modelReluPassSeconds(const MachineModel &machine, std::int64_t elems,
                     int cores)
{
    // One elementwise sweep: read + write every activation, negligible
    // compute — purely memory-bound, evenly divisible across cores.
    SimTask task;
    task.flops = static_cast<double>(elems);
    task.bytes = kFloat * 2.0 * static_cast<double>(elems);
    task.efficiency = machine.axpy_efficiency;
    return simulateUniform(machine, task, cores, cores).seconds;
}

double
modelLayerStepSeconds(const MachineModel &machine, const ConvSpec &spec,
                      const std::string &fp_engine,
                      const std::string &bp_engine, std::int64_t batch,
                      int cores, double sparsity, bool fused_relu)
{
    // With a fused ReLU the phases carry the mask traffic themselves;
    // without one, the network pays two standalone elementwise passes
    // (relu forward + relu backward) per step that fusion eliminates.
    double t = modelConvPhase(machine, spec, Phase::Forward, fp_engine,
                              batch, cores, 0.0, nullptr, fused_relu)
                   .seconds;
    t += modelConvPhase(machine, spec, Phase::BackwardData, bp_engine,
                        batch, cores, sparsity, nullptr, fused_relu)
             .seconds;
    t += modelConvPhase(machine, spec, Phase::BackwardWeights, bp_engine,
                        batch, cores, sparsity, nullptr, fused_relu)
             .seconds;
    return t / batch;
}

} // namespace spg
