#include "simcpu/simulate.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spg {

namespace {

/** Time of one task at the given peak and bandwidth (seconds). */
double
taskSeconds(const SimTask &task, double peak_gflops, double bw_gbs)
{
    double compute = task.flops /
                     (peak_gflops * 1e9 * std::max(task.efficiency, 1e-6));
    double memory = task.bytes / (bw_gbs * 1e9);
    return std::max(compute, memory);
}

} // namespace

SimResult
simulate(const MachineModel &machine,
         const std::vector<std::vector<SimTask>> &per_core,
         const std::vector<SimTask> &serial, double useful_flops)
{
    int active = static_cast<int>(per_core.size());
    SPG_ASSERT(active >= 0);

    SimResult result;
    result.cores = std::max(active, 1);

    // Serial prologue: one core, full machine bandwidth.
    double serial_s = 0;
    for (const auto &task : serial) {
        serial_s += taskSeconds(task, machine.effectivePeakPerCore(1),
                                machine.bandwidthPerCore(1));
        result.total_flops += task.flops;
        result.total_bytes += task.bytes;
    }

    // Parallel region: every core advances through its stream; the
    // region ends when the slowest core finishes.
    double slowest = 0;
    double peak = machine.effectivePeakPerCore(std::max(active, 1));
    double bw = machine.bandwidthPerCore(std::max(active, 1));
    for (const auto &stream : per_core) {
        double t = 0;
        for (const auto &task : stream) {
            t += taskSeconds(task, peak, bw);
            result.total_flops += task.flops;
            result.total_bytes += task.bytes;
        }
        slowest = std::max(slowest, t);
    }

    double overhead = active > 1 ? machine.fork_join_s : 0;
    result.seconds = serial_s + slowest + overhead;
    if (result.seconds <= 0)
        result.seconds = 1e-12;
    result.useful_flops =
        useful_flops >= 0 ? useful_flops : result.total_flops;
    return result;
}

SimResult
simulateUniform(const MachineModel &machine, const SimTask &task,
                std::int64_t count, int cores,
                const std::vector<SimTask> &serial, double useful_flops)
{
    SPG_ASSERT(cores >= 1);
    std::vector<std::vector<SimTask>> per_core(
        std::min<std::int64_t>(cores, std::max<std::int64_t>(count, 1)));
    for (std::int64_t i = 0; i < count; ++i)
        per_core[i % per_core.size()].push_back(task);
    return simulate(machine, per_core, serial, useful_flops);
}

SimResult
simulateScheduled(const MachineModel &machine, const SimTask &task,
                  std::int64_t count,
                  const std::vector<std::int64_t> &chunk_map,
                  const std::vector<SimTask> &serial, double useful_flops)
{
    SPG_ASSERT(!chunk_map.empty());
    std::int64_t weight_sum = 0;
    for (std::int64_t w : chunk_map) {
        SPG_ASSERT(w >= 0);
        weight_sum += w;
    }
    int cores = static_cast<int>(chunk_map.size());
    if (weight_sum == 0 || count <= 0)
        return simulateUniform(machine, task, count, cores, serial,
                               useful_flops);

    // Scale the measured items to `count` tasks: floor the shares,
    // then hand the remainder to the largest fractional parts.
    std::vector<std::int64_t> items(chunk_map.size());
    std::vector<std::pair<double, std::size_t>> frac;
    std::int64_t assigned = 0;
    for (std::size_t i = 0; i < chunk_map.size(); ++i) {
        double share = static_cast<double>(chunk_map[i]) * count /
                       static_cast<double>(weight_sum);
        items[i] = static_cast<std::int64_t>(share);
        assigned += items[i];
        frac.emplace_back(share - static_cast<double>(items[i]), i);
    }
    std::sort(frac.begin(), frac.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    for (std::size_t k = 0; assigned < count; ++k, ++assigned)
        ++items[frac[k % frac.size()].second];

    // Every pool worker occupies a stream — idle ones too; the whole
    // point is charging the measured (possibly lopsided) assignment.
    std::vector<std::vector<SimTask>> per_core(chunk_map.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        for (std::int64_t j = 0; j < items[i]; ++j)
            per_core[i].push_back(task);
    return simulate(machine, per_core, serial, useful_flops);
}

} // namespace spg
