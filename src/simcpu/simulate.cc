#include "simcpu/simulate.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spg {

namespace {

/** Time of one task at the given peak and bandwidth (seconds). */
double
taskSeconds(const SimTask &task, double peak_gflops, double bw_gbs)
{
    double compute = task.flops /
                     (peak_gflops * 1e9 * std::max(task.efficiency, 1e-6));
    double memory = task.bytes / (bw_gbs * 1e9);
    return std::max(compute, memory);
}

} // namespace

SimResult
simulate(const MachineModel &machine,
         const std::vector<std::vector<SimTask>> &per_core,
         const std::vector<SimTask> &serial, double useful_flops)
{
    int active = static_cast<int>(per_core.size());
    SPG_ASSERT(active >= 0);

    SimResult result;
    result.cores = std::max(active, 1);

    // Serial prologue: one core, full machine bandwidth.
    double serial_s = 0;
    for (const auto &task : serial) {
        serial_s += taskSeconds(task, machine.effectivePeakPerCore(1),
                                machine.bandwidthPerCore(1));
        result.total_flops += task.flops;
    }

    // Parallel region: every core advances through its stream; the
    // region ends when the slowest core finishes.
    double slowest = 0;
    double peak = machine.effectivePeakPerCore(std::max(active, 1));
    double bw = machine.bandwidthPerCore(std::max(active, 1));
    for (const auto &stream : per_core) {
        double t = 0;
        for (const auto &task : stream) {
            t += taskSeconds(task, peak, bw);
            result.total_flops += task.flops;
        }
        slowest = std::max(slowest, t);
    }

    double overhead = active > 1 ? machine.fork_join_s : 0;
    result.seconds = serial_s + slowest + overhead;
    if (result.seconds <= 0)
        result.seconds = 1e-12;
    result.useful_flops =
        useful_flops >= 0 ? useful_flops : result.total_flops;
    return result;
}

SimResult
simulateUniform(const MachineModel &machine, const SimTask &task,
                std::int64_t count, int cores,
                const std::vector<SimTask> &serial, double useful_flops)
{
    SPG_ASSERT(cores >= 1);
    std::vector<std::vector<SimTask>> per_core(
        std::min<std::int64_t>(cores, std::max<std::int64_t>(count, 1)));
    for (std::int64_t i = 0; i < count; ++i)
        per_core[i % per_core.size()].push_back(task);
    return simulate(machine, per_core, serial, useful_flops);
}

} // namespace spg
