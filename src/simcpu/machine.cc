#include "simcpu/machine.hh"

namespace spg {

MachineModel
MachineModel::xeonE5_2650()
{
    return MachineModel{};
}

MachineModel
MachineModel::hostCalibrated(double measured_gemm_gflops)
{
    MachineModel m;
    m.name = "host-1core";
    m.physical_cores = 1;
    m.logical_cores = 1;
    // Treat the measured sustained GEMM rate as efficiency x peak.
    m.peak_gflops_per_core = measured_gemm_gflops / m.gemm_efficiency;
    m.dram_bw_gbs = 12.0;
    m.per_core_bw_gbs = 12.0;
    return m;
}

MachineModel
MachineModel::hostCalibrated(double measured_gemm_gflops,
                             double measured_bw_gbs)
{
    MachineModel m = hostCalibrated(measured_gemm_gflops);
    if (measured_bw_gbs > 0) {
        m.dram_bw_gbs = measured_bw_gbs;
        m.per_core_bw_gbs = measured_bw_gbs;
    }
    return m;
}

ClusterLink
ClusterLink::tenGbE()
{
    return ClusterLink{};
}

ClusterLink
ClusterLink::hundredGbE()
{
    ClusterLink link;
    link.bandwidth_gbs = 12.5;
    link.latency_s = 5e-6;
    return link;
}

} // namespace spg
