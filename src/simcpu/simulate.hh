/**
 * @file
 * Schedule-driven roofline simulation.
 *
 * A kernel execution is described as a list of per-core task streams;
 * each task carries its flop count, its DRAM traffic estimate, and the
 * compute efficiency of its inner loop. The simulator assigns each
 * core a time of max(compute, memory) per task and reports the
 * critical-path (slowest core) time plus fork-join overhead — exactly
 * the per-core-AIT arithmetic of the paper's §3.2, evaluated on the
 * schedules the real engines produce.
 */

#ifndef SPG_SIMCPU_SIMULATE_HH
#define SPG_SIMCPU_SIMULATE_HH

#include <cstdint>
#include <vector>

#include "simcpu/machine.hh"

namespace spg {

/** One unit of work bound to a core. */
struct SimTask
{
    double flops = 0;       ///< arithmetic operations
    double bytes = 0;       ///< DRAM traffic (bytes)
    double efficiency = 1;  ///< fraction of peak the inner loop reaches

    /** Serial tasks run before the parallel region on core 0 with the
     *  FULL machine bandwidth (e.g. the baseline's unfold step). */
    bool serial = false;
};

/** Outcome of simulating one kernel invocation. */
struct SimResult
{
    double seconds = 0;          ///< wall-clock of the invocation
    double total_flops = 0;      ///< arithmetic across all cores
    double useful_flops = 0;     ///< non-zero flops (goodput numerator)
    double total_bytes = 0;      ///< modeled DRAM traffic across cores
    int cores = 0;               ///< cores the schedule used

    /** @return aggregate GFlops/s (throughput). */
    double gflops() const { return total_flops / seconds / 1e9; }

    /** @return GFlops/s per participating core. */
    double gflopsPerCore() const { return gflops() / (cores ? cores : 1); }

    /** @return goodput in GFlops/s (paper Eq. 9). */
    double goodput() const { return useful_flops / seconds / 1e9; }
};

/**
 * Simulate one kernel invocation.
 *
 * @param machine Modeled machine.
 * @param per_core per_core[i] is the task stream of core i; the
 *        number of streams is the active core count.
 * @param serial Tasks executed on one core before the parallel region
 *        (at full machine bandwidth).
 * @param useful_flops Goodput numerator; pass <0 to default to the
 *        total flops.
 */
SimResult simulate(const MachineModel &machine,
                   const std::vector<std::vector<SimTask>> &per_core,
                   const std::vector<SimTask> &serial = {},
                   double useful_flops = -1.0);

/**
 * Convenience: distribute `count` identical tasks round-robin over
 * `cores` streams and simulate.
 */
SimResult simulateUniform(const MachineModel &machine, const SimTask &task,
                          std::int64_t count, int cores,
                          const std::vector<SimTask> &serial = {},
                          double useful_flops = -1.0);

/**
 * Distribute `count` identical tasks over the cores in proportion to a
 * MEASURED per-core chunk map (e.g. PoolStats::chunkMap() recorded by
 * the tuner) instead of an idealized even split, and simulate. Workers
 * with zero measured items get idle streams; rounding assigns leftover
 * items to the largest fractional shares (largest remainder), so the
 * per-core totals sum exactly to `count`.
 */
SimResult simulateScheduled(const MachineModel &machine,
                            const SimTask &task, std::int64_t count,
                            const std::vector<std::int64_t> &chunk_map,
                            const std::vector<SimTask> &serial = {},
                            double useful_flops = -1.0);

} // namespace spg

#endif // SPG_SIMCPU_SIMULATE_HH
