/**
 * @file
 * The convolution engine interface.
 *
 * An engine executes one convolution layer over a minibatch in one of
 * the three training phases: forward propagation (FP), backward data
 * (error gradients, Eq. 3) and backward weights (delta weights,
 * Eq. 4). spg-CNN's scheduler (src/core) measures every applicable
 * engine per layer/phase and deploys the fastest, re-checking as the
 * error sparsity evolves across epochs (paper §4.4).
 *
 * Batched tensor layouts (row-major):
 *   input   : [B][Nc][Ny][Nx]
 *   weights : [Nf][Nc][Fy][Fx]
 *   output  : [B][Nf][Oy][Ox]
 */

#ifndef SPG_CONV_ENGINE_HH
#define SPG_CONV_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "conv/conv_spec.hh"
#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"

namespace spg {

/** Which training phase an engine call executes. */
enum class Phase { Forward, BackwardData, BackwardWeights };

/** @return human-readable phase name. */
const char *phaseName(Phase phase);

/**
 * Abstract convolution executor. Implementations are stateless with
 * respect to the minibatch (scratch is per-thread) so one instance can
 * serve many layers of identical spec.
 */
class ConvEngine
{
  public:
    virtual ~ConvEngine() = default;

    /** @return engine name as used in reports ("parallel-gemm", ...). */
    virtual std::string name() const = 0;

    /** @return true when this engine implements the given phase. */
    virtual bool supports(Phase phase) const = 0;

    /**
     * @return true when this engine can execute the given geometry
     * (default: any). Specialized engines (e.g. Winograd, which needs
     * 3x3 stride-1 kernels) refine this so the tuner can skip them.
     */
    virtual bool supportsGeometry(const ConvSpec &) const { return true; }

    /**
     * FP: out[b] = conv(in[b], weights) for each image b.
     *
     * @param spec Layer geometry.
     * @param in Input activations [B][Nc][Ny][Nx].
     * @param weights Weights [Nf][Nc][Fy][Fx].
     * @param out Output activations [B][Nf][Oy][Ox], overwritten.
     * @param pool Worker pool carrying the core count.
     */
    virtual void forward(const ConvSpec &spec, const Tensor &in,
                         const Tensor &weights, Tensor &out,
                         ThreadPool &pool) const;

    /**
     * BP-data: ei[b] = Eq. 3 applied to eo[b]. ei is overwritten.
     *
     * @param spec Layer geometry.
     * @param eo Output-activation errors [B][Nf][Oy][Ox].
     * @param weights Weights [Nf][Nc][Fy][Fx].
     * @param ei Input-activation errors [B][Nc][Ny][Nx], overwritten.
     * @param pool Worker pool.
     */
    virtual void backwardData(const ConvSpec &spec, const Tensor &eo,
                              const Tensor &weights, Tensor &ei,
                              ThreadPool &pool) const;

    /**
     * BP-weights: dweights = sum_b Eq. 4 over the batch. dweights is
     * overwritten (not accumulated across calls).
     *
     * @param spec Layer geometry.
     * @param eo Output-activation errors [B][Nf][Oy][Ox].
     * @param in Input activations [B][Nc][Ny][Nx].
     * @param dweights Weight gradients [Nf][Nc][Fy][Fx], overwritten.
     * @param pool Worker pool.
     */
    virtual void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                                 const Tensor &in, Tensor &dweights,
                                 ThreadPool &pool) const;

  protected:
    /** Validate batched tensor shapes against the spec; panics on
     *  mismatch (engine call sites are internal). */
    static void checkForwardShapes(const ConvSpec &spec, const Tensor &in,
                                   const Tensor &weights,
                                   const Tensor &out);
    static void checkBackwardShapes(const ConvSpec &spec, const Tensor &eo,
                                    const Tensor &weights,
                                    const Tensor &ei);
};

/**
 * Naive reference engine wrapping conv_ref.hh — the oracle used by
 * tests; sequential over the batch.
 */
class ReferenceEngine : public ConvEngine
{
  public:
    std::string name() const override { return "reference"; }
    bool supports(Phase) const override { return true; }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out,
                 ThreadPool &pool) const override;
    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei,
                      ThreadPool &pool) const override;
    void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                         const Tensor &in, Tensor &dweights,
                         ThreadPool &pool) const override;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_HH
