/**
 * @file
 * The convolution engine interface.
 *
 * An engine executes one convolution layer over a minibatch in one of
 * the three training phases: forward propagation (FP), backward data
 * (error gradients, Eq. 3) and backward weights (delta weights,
 * Eq. 4). spg-CNN's scheduler (src/core) measures every applicable
 * engine per layer/phase and deploys the fastest, re-checking as the
 * error sparsity evolves across epochs (paper §4.4).
 *
 * Every phase accepts a fused elementwise stage so the network can
 * collapse conv->relu pairs:
 *
 *  - FP takes an Epilogue, applied to each output region at the point
 *    where the engine last touches it (tile still cache-hot) instead
 *    of a separate full-tensor ReLU pass;
 *  - BP takes a BpMask, the byte mask the FP epilogue saved; consumers
 *    read eo through it (mask ? eo : 0) so the standalone masking pass
 *    over the error tensor disappears.
 *
 * The mask is saved from the POST-activation sign (out > 0), which for
 * ReLU is exactly the pre-activation predicate (x > 0 implies
 * relu(x) = x > 0, including -0.0 and NaN), so fused BP is bit-for-bit
 * identical to the unfused relu-then-conv-backward sequence.
 *
 * Batched tensor layouts (row-major):
 *   input   : [B][Nc][Ny][Nx]
 *   weights : [Nf][Nc][Fy][Fx]
 *   output  : [B][Nf][Oy][Ox]
 */

#ifndef SPG_CONV_ENGINE_HH
#define SPG_CONV_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "conv/conv_spec.hh"
#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"

namespace spg {

/** Which training phase an engine call executes. */
enum class Phase { Forward, BackwardData, BackwardWeights };

/** @return human-readable phase name. */
const char *phaseName(Phase phase);

/**
 * Fused output stage for the forward phase. Engines apply it to each
 * output region exactly once, immediately after that region's last
 * write, while the tile is still register/L2-hot.
 */
struct Epilogue
{
    enum class Kind : unsigned char
    {
        None,     ///< plain convolution output
        Relu,     ///< out = max(out, 0)
        ReluMask  ///< ReLU + save a byte activity mask for BP
    };

    Kind kind = Kind::None;
    /** Byte mask [B][Nf][Oy][Ox] (same layout as out); required for
     *  ReluMask, ignored otherwise. mask[i] = 1 iff out[i] stayed
     *  positive. */
    std::uint8_t *mask = nullptr;

    bool active() const { return kind != Kind::None; }

    /**
     * Apply in place to a contiguous output region.
     *
     * @param region First element of the region (inside out).
     * @param offset Flat offset of the region within the batched
     *        output tensor (indexes the mask).
     * @param count Region length in elements.
     */
    void
    apply(float *region, std::int64_t offset, std::int64_t count) const
    {
        switch (kind) {
          case Kind::None:
            return;
          case Kind::Relu:
            for (std::int64_t i = 0; i < count; ++i)
                region[i] = region[i] > 0.0f ? region[i] : 0.0f;
            return;
          case Kind::ReluMask: {
            std::uint8_t *m = mask + offset;
            for (std::int64_t i = 0; i < count; ++i) {
                float v = region[i];
                bool live = v > 0.0f;
                m[i] = live ? 1 : 0;
                region[i] = live ? v : 0.0f;
            }
            return;
          }
        }
    }
};

/**
 * Fused ReLU mask for the backward phases: consumers read the output
 * errors as (mask[i] ? eo[i] : 0) instead of requiring a separate
 * masking pass to have rewritten eo first.
 */
struct BpMask
{
    /** Byte mask [B][Nf][Oy][Ox], as saved by Epilogue::ReluMask;
     *  nullptr means "no mask" (read eo unchanged). */
    const std::uint8_t *mask = nullptr;

    bool active() const { return mask != nullptr; }

    /**
     * Stage a masked copy of a contiguous eo region.
     *
     * @param eo First element of the source region.
     * @param offset Flat offset of the region within the batched error
     *        tensor (indexes the mask).
     * @param count Region length in elements.
     * @param dst Destination (fully overwritten).
     */
    void
    stage(const float *eo, std::int64_t offset, std::int64_t count,
          float *dst) const
    {
        const std::uint8_t *m = mask + offset;
        for (std::int64_t i = 0; i < count; ++i)
            dst[i] = m[i] ? eo[i] : 0.0f;
    }
};

/**
 * @return the EO operand for one image's backward kernel: @p eo itself
 * when the fused mask is inactive, else a masked copy staged in the
 * calling thread's scratch (kSlotMaskedEo). The staged image is
 * consumed immediately, so the copy stays cache-hot instead of a
 * full-tensor masking pass over DRAM.
 */
const float *stagedMaskedEo(const ConvSpec &spec, const float *eo,
                            std::int64_t eo_offset, const BpMask &mask);

/**
 * Abstract convolution executor. Implementations are stateless with
 * respect to the minibatch (scratch is per-thread) so one instance can
 * serve many layers of identical spec.
 *
 * The 5-argument entry points are convenience dispatchers (epilogue /
 * mask disabled); engines override the trailing-argument virtuals.
 */
class ConvEngine
{
  public:
    virtual ~ConvEngine() = default;

    /** @return engine name as used in reports ("parallel-gemm", ...). */
    virtual std::string name() const = 0;

    /** @return true when this engine implements the given phase. */
    virtual bool supports(Phase phase) const = 0;

    /**
     * @return true when this engine can execute the given geometry
     * (default: any). Specialized engines (e.g. Winograd, which needs
     * 3x3 stride-1 kernels) refine this so the tuner can skip them.
     */
    virtual bool supportsGeometry(const ConvSpec &) const { return true; }

    /** FP without a fused epilogue. */
    void
    forward(const ConvSpec &spec, const Tensor &in, const Tensor &weights,
            Tensor &out, ThreadPool &pool) const
    {
        forward(spec, in, weights, out, pool, Epilogue{});
    }

    /** BP-data without a fused mask. */
    void
    backwardData(const ConvSpec &spec, const Tensor &eo,
                 const Tensor &weights, Tensor &ei, ThreadPool &pool) const
    {
        backwardData(spec, eo, weights, ei, pool, BpMask{});
    }

    /** BP-weights without a fused mask. */
    void
    backwardWeights(const ConvSpec &spec, const Tensor &eo,
                    const Tensor &in, Tensor &dweights,
                    ThreadPool &pool) const
    {
        backwardWeights(spec, eo, in, dweights, pool, BpMask{});
    }

    /**
     * FP: out[b] = epilogue(conv(in[b], weights)) for each image b.
     *
     * @param spec Layer geometry.
     * @param in Input activations [B][Nc][Ny][Nx].
     * @param weights Weights [Nf][Nc][Fy][Fx].
     * @param out Output activations [B][Nf][Oy][Ox], overwritten.
     * @param pool Worker pool carrying the core count.
     * @param epilogue Fused output stage (apply where tiles are hot).
     */
    virtual void forward(const ConvSpec &spec, const Tensor &in,
                         const Tensor &weights, Tensor &out,
                         ThreadPool &pool, const Epilogue &epilogue) const;

    /**
     * BP-data: ei[b] = Eq. 3 applied to mask(eo[b]). ei is overwritten.
     *
     * @param spec Layer geometry.
     * @param eo Output-activation errors [B][Nf][Oy][Ox].
     * @param weights Weights [Nf][Nc][Fy][Fx].
     * @param ei Input-activation errors [B][Nc][Ny][Nx], overwritten.
     * @param pool Worker pool.
     * @param mask Fused ReLU mask over eo (may be inactive).
     */
    virtual void backwardData(const ConvSpec &spec, const Tensor &eo,
                              const Tensor &weights, Tensor &ei,
                              ThreadPool &pool, const BpMask &mask) const;

    /**
     * BP-weights: dweights = sum_b Eq. 4 over mask(eo). dweights is
     * overwritten (not accumulated across calls).
     *
     * @param spec Layer geometry.
     * @param eo Output-activation errors [B][Nf][Oy][Ox].
     * @param in Input activations [B][Nc][Ny][Nx].
     * @param dweights Weight gradients [Nf][Nc][Fy][Fx], overwritten.
     * @param pool Worker pool.
     * @param mask Fused ReLU mask over eo (may be inactive).
     */
    virtual void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                                 const Tensor &in, Tensor &dweights,
                                 ThreadPool &pool,
                                 const BpMask &mask) const;

  protected:
    /** Validate batched tensor shapes against the spec; panics on
     *  mismatch (engine call sites are internal). */
    static void checkForwardShapes(const ConvSpec &spec, const Tensor &in,
                                   const Tensor &weights,
                                   const Tensor &out);
    static void checkBackwardShapes(const ConvSpec &spec, const Tensor &eo,
                                    const Tensor &weights,
                                    const Tensor &ei);
};

/**
 * Naive reference engine wrapping conv_ref.hh — the oracle used by
 * tests; sequential over the batch.
 */
class ReferenceEngine : public ConvEngine
{
  public:
    using ConvEngine::backwardData;
    using ConvEngine::backwardWeights;
    using ConvEngine::forward;

    std::string name() const override { return "reference"; }
    bool supports(Phase) const override { return true; }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei, ThreadPool &pool,
                      const BpMask &mask) const override;
    void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                         const Tensor &in, Tensor &dweights,
                         ThreadPool &pool,
                         const BpMask &mask) const override;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_HH
