/**
 * @file
 * Register-tiled direct sparse convolution over CSR weights
 * (extension).
 *
 * Successor of the row-AXPY sparse-weights engine for pruned models
 * (Park et al., "Faster CNNs with Direct Sparse Convolutions and
 * Guided Pruning", PAPERS.md). The weights are encoded once per
 * weight version into a SparseWeightPlan held by the persistent
 * PackedWeightCache (rows = output features, columns = flattened
 * (c, ky, kx) taps, plus precomputed input offsets), so steady-state
 * forward passes pay zero encode work; ConvLayer::paramsUpdated()
 * invalidation plus the cache's FNV-1a content fingerprint re-encode
 * exactly when a pruning step or SGD update changes the weights.
 *
 * The kernel inverts the AXPY engine's loop nest: instead of
 * accumulating every non-zero tap into the output plane (one
 * read-modify-write of the plane per tap), it keeps a register tile
 * of output PIXELS in double-precision accumulators, streams the
 * feature's CSR row once per tile —
 *
 *     acc[x] += (double)w[p] * I[in_off[p] + y*sy*nx + x]
 *
 * — and writes each output pixel exactly once, rounding the double
 * sum to float at the end. Within a CSR row the surviving taps stay
 * in ascending (c, ky, kx) order, so each pixel's accumulation chain
 * is the reference chain of conv_ref minus exact zeros: results are
 * bit-for-bit equal to ReferenceEngine on the surviving taps (see
 * direct_block.hh for the FMA argument). The fused Epilogue is
 * applied per output row at last write.
 *
 * Unit-stride rows use AVX-512 (4/2/1 zmm of 8 doubles) or AVX2
 * register tiles with a scalar tail; strided layers fall back to the
 * scalar per-pixel chain, which keeps the same accumulation order.
 */

#ifndef SPG_CONV_ENGINE_SPARSE_DIRECT_HH
#define SPG_CONV_ENGINE_SPARSE_DIRECT_HH

#include "conv/engine.hh"

namespace spg {

/** Register-tiled FP engine over once-encoded CSR weights. */
class SparseDirectFpEngine : public ConvEngine
{
  public:
    using ConvEngine::forward;

    std::string name() const override
    {
        return "sparse-weights-direct";
    }
    bool supports(Phase phase) const override
    {
        return phase == Phase::Forward;
    }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_SPARSE_DIRECT_HH
