#include "conv/engine_winograd.hh"

#include <cstring>
#include <vector>

#include "blas/gemm.hh"
#include "conv/scratch.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace spg {

namespace {

/**
 * Kernel transform U = G g G^T for one 3x3 kernel g, with
 * G = [[1,0,0],[1/2,1/2,1/2],[1/2,-1/2,1/2],[0,0,1]]. Result is 4x4.
 */
void
transformKernel(const float *g, float *u)
{
    // t = G g (4x3).
    float t[12];
    for (int col = 0; col < 3; ++col) {
        float g0 = g[0 * 3 + col];
        float g1 = g[1 * 3 + col];
        float g2 = g[2 * 3 + col];
        t[0 * 3 + col] = g0;
        t[1 * 3 + col] = 0.5f * (g0 + g1 + g2);
        t[2 * 3 + col] = 0.5f * (g0 - g1 + g2);
        t[3 * 3 + col] = g2;
    }
    // u = t G^T (4x4).
    for (int row = 0; row < 4; ++row) {
        float t0 = t[row * 3 + 0];
        float t1 = t[row * 3 + 1];
        float t2 = t[row * 3 + 2];
        u[row * 4 + 0] = t0;
        u[row * 4 + 1] = 0.5f * (t0 + t1 + t2);
        u[row * 4 + 2] = 0.5f * (t0 - t1 + t2);
        u[row * 4 + 3] = t2;
    }
}

/**
 * Input-tile transform V = B^T d B for one 4x4 tile d, with
 * B^T = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]].
 */
void
transformTile(const float *d, std::int64_t row_stride, float *v)
{
    float t[16];
    for (int col = 0; col < 4; ++col) {
        float d0 = d[0 * row_stride + col];
        float d1 = d[1 * row_stride + col];
        float d2 = d[2 * row_stride + col];
        float d3 = d[3 * row_stride + col];
        t[0 * 4 + col] = d0 - d2;
        t[1 * 4 + col] = d1 + d2;
        t[2 * 4 + col] = d2 - d1;
        t[3 * 4 + col] = d1 - d3;
    }
    for (int row = 0; row < 4; ++row) {
        float t0 = t[row * 4 + 0];
        float t1 = t[row * 4 + 1];
        float t2 = t[row * 4 + 2];
        float t3 = t[row * 4 + 3];
        v[row * 4 + 0] = t0 - t2;
        v[row * 4 + 1] = t1 + t2;
        v[row * 4 + 2] = t2 - t1;
        v[row * 4 + 3] = t1 - t3;
    }
}

/**
 * Output transform Y = A^T m A for one 4x4 component vector m, with
 * A^T = [[1,1,1,0],[0,1,-1,-1]]. Result is 2x2.
 */
void
transformOutput(const float *m, float *y)
{
    float t[8];
    for (int col = 0; col < 4; ++col) {
        float m0 = m[0 * 4 + col];
        float m1 = m[1 * 4 + col];
        float m2 = m[2 * 4 + col];
        float m3 = m[3 * 4 + col];
        t[0 * 4 + col] = m0 + m1 + m2;
        t[1 * 4 + col] = m1 - m2 - m3;
    }
    for (int row = 0; row < 2; ++row) {
        float t0 = t[row * 4 + 0];
        float t1 = t[row * 4 + 1];
        float t2 = t[row * 4 + 2];
        float t3 = t[row * 4 + 3];
        y[row * 2 + 0] = t0 + t1 + t2;
        y[row * 2 + 1] = t1 - t2 - t3;
    }
}

/** Direct scalar computation of one output element (edge strips). */
float
directOutput(const ConvSpec &spec, const float *image, const float *w,
             std::int64_t f, std::int64_t y, std::int64_t x)
{
    float sum = 0;
    for (std::int64_t c = 0; c < spec.nc; ++c) {
        const float *plane = image + c * spec.ny * spec.nx;
        const float *wk = w + (f * spec.nc + c) * 9;
        for (int ky = 0; ky < 3; ++ky)
            for (int kx = 0; kx < 3; ++kx)
                sum += plane[(y + ky) * spec.nx + x + kx] *
                       wk[ky * 3 + kx];
    }
    return sum;
}

} // namespace

void
WinogradEngine::forward(const ConvSpec &spec, const Tensor &in,
                        const Tensor &weights, Tensor &out,
                        ThreadPool &pool, const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "winograd FP");
    checkForwardShapes(spec, in, weights, out);
    if (!supportsGeometry(spec))
        fatal("winograd engine requires a 3x3 stride-1 convolution, "
              "got %s",
              spec.str().c_str());

    std::int64_t batch = in.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t oy2 = oy & ~1LL, ox2 = ox & ~1LL;
    std::int64_t tiles_y = oy2 / 2, tiles_x = ox2 / 2;
    std::int64_t tiles = tiles_y * tiles_x;

    // Kernel transforms in COMPONENT-major layout u[i][f][c] so that
    // each of the 16 Winograd components becomes one dense
    // (Nf x Nc) x (Nc x T) GEMM — the Lavin formulation, which reuses
    // the blocked SGEMM instead of per-tile scalar loops.
    std::vector<float> u(16 * static_cast<std::size_t>(spec.nf) *
                         spec.nc);
    pool.parallelFor2D(
        spec.nf, spec.nc,
        [&](std::int64_t f, std::int64_t c, int) {
            std::int64_t i = f * spec.nc + c;
            float tile_u[16];
            transformKernel(weights.data() + i * 9, tile_u);
            for (int comp = 0; comp < 16; ++comp)
                u[(static_cast<std::size_t>(comp) * spec.nf * spec.nc) +
                  i] = tile_u[comp];
        },
        /*grain=*/spec.nc); // one f-row of cheap transforms per claim

    std::int64_t fc = spec.nf * spec.nc;
    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        const float *image = in.data() + b * spec.inputElems();
        float *out_image = out.data() + b * spec.outputElems();

        if (tiles > 0) {
            ScratchArena &arena = ScratchArena::forThread();
            // v[i][c][t] and m[i][f][t].
            float *v = arena.get(
                kSlotLayoutA,
                16 * static_cast<std::size_t>(spec.nc) * tiles);
            float *m = arena.get(
                kSlotLayoutB,
                16 * static_cast<std::size_t>(spec.nf) * tiles);

            // Tile transforms, scattered component-major.
            for (std::int64_t c = 0; c < spec.nc; ++c) {
                const float *plane = image + c * spec.ny * spec.nx;
                for (std::int64_t ty = 0; ty < tiles_y; ++ty) {
                    for (std::int64_t tx = 0; tx < tiles_x; ++tx) {
                        float tile_v[16];
                        transformTile(plane + 2 * ty * spec.nx + 2 * tx,
                                      spec.nx, tile_v);
                        std::int64_t t = ty * tiles_x + tx;
                        for (int comp = 0; comp < 16; ++comp)
                            v[(static_cast<std::size_t>(comp) * spec.nc +
                               c) * tiles + t] = tile_v[comp];
                    }
                }
            }

            // 16 component GEMMs: m[i] = u[i] * v[i].
            for (int comp = 0; comp < 16; ++comp) {
                sgemm(Trans::No, Trans::No, spec.nf, tiles, spec.nc,
                      u.data() + static_cast<std::size_t>(comp) * fc,
                      v + static_cast<std::size_t>(comp) * spec.nc *
                              tiles,
                      0.0f,
                      m + static_cast<std::size_t>(comp) * spec.nf *
                              tiles);
            }

            // Output transforms and scatter.
            for (std::int64_t f = 0; f < spec.nf; ++f) {
                float *plane = out_image + f * oy * ox;
                for (std::int64_t t = 0; t < tiles; ++t) {
                    float comps[16];
                    for (int comp = 0; comp < 16; ++comp)
                        comps[comp] =
                            m[(static_cast<std::size_t>(comp) * spec.nf +
                               f) * tiles + t];
                    float y[4];
                    transformOutput(comps, y);
                    std::int64_t ty = t / tiles_x, tx = t % tiles_x;
                    float *dst = plane + 2 * ty * ox + 2 * tx;
                    dst[0] = y[0];
                    dst[1] = y[1];
                    dst[ox] = y[2];
                    dst[ox + 1] = y[3];
                }
            }
        }

        // Edge strips (odd oy/ox): direct computation.
        for (std::int64_t f = 0; f < spec.nf; ++f) {
            float *plane = out_image + f * oy * ox;
            for (std::int64_t y = oy2; y < oy; ++y)
                for (std::int64_t x = 0; x < ox; ++x)
                    plane[y * ox + x] = directOutput(
                        spec, image, weights.data(), f, y, x);
            for (std::int64_t y = 0; y < oy2; ++y)
                for (std::int64_t x = ox2; x < ox; ++x)
                    plane[y * ox + x] = directOutput(
                        spec, image, weights.data(), f, y, x);
        }

        // This worker owns the whole image and the edge strips above
        // were its last writes: fuse the epilogue per image.
        epilogue.apply(out_image, b * spec.outputElems(),
                       spec.outputElems());
    }, /*grain=*/1);
}

} // namespace spg
