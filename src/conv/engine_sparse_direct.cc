#include "conv/engine_sparse_direct.hh"

#include "conv/packed_weights.hh"
#include "obs/trace.hh"

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#define SPG_SPARSE_DIRECT_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__) && defined(__FMA__)
#define SPG_SPARSE_DIRECT_AVX2 1
#include <immintrin.h>
#endif

namespace spg {

namespace {

/**
 * Scalar pixels [x0, x1) of one output row: the reference per-pixel
 * double chain over the feature's surviving taps, any stride. The
 * float*float products are exact in double, so whether the compiler
 * contracts the multiply-add into an FMA or not the rounded result
 * per step is identical — bit-for-bit stable across codegen.
 */
inline void
sparseRowScalar(const float *ibase, std::int64_t sx, const float *vals,
                const std::int64_t *offs, std::int64_t n, float *orow,
                std::int64_t x0, std::int64_t x1)
{
    for (std::int64_t x = x0; x < x1; ++x) {
        const float *p = ibase + x * sx;
        double acc = 0.0;
        for (std::int64_t e = 0; e < n; ++e)
            acc += static_cast<double>(p[offs[e]]) *
                   static_cast<double>(vals[e]);
        orow[x] = static_cast<float>(acc);
    }
}

#if SPG_SPARSE_DIRECT_AVX512

/** T zmm accumulators covering T*8 unit-stride pixels from px. */
template <int T>
inline void
sparseFpTileZ(const float *px, const float *vals,
              const std::int64_t *offs, std::int64_t n, float *orow)
{
    __m512d acc[T];
    for (int t = 0; t < T; ++t)
        acc[t] = _mm512_setzero_pd();
    for (std::int64_t e = 0; e < n; ++e) {
        __m512d w = _mm512_set1_pd(static_cast<double>(vals[e]));
        const float *p = px + offs[e];
        for (int t = 0; t < T; ++t) {
            __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(p + t * 8));
            acc[t] = _mm512_fmadd_pd(v, w, acc[t]);
        }
    }
    for (int t = 0; t < T; ++t)
        _mm256_storeu_ps(orow + t * 8, _mm512_cvtpd_ps(acc[t]));
}

#if defined(__AVX512VL__)

/**
 * Masked tile for the last count < 8 pixels of a row. Masked-off
 * lanes load as +0.0f, accumulate 0.0 * w products, and are discarded
 * by the masked store, so the surviving lanes run the exact per-pixel
 * double chain of the reference — the tail stays bit-for-bit while
 * running at vector throughput instead of the scalar latency chain.
 */
inline void
sparseFpTileZTail(const float *px, const float *vals,
                  const std::int64_t *offs, std::int64_t n, float *orow,
                  std::int64_t count)
{
    __mmask8 m = static_cast<__mmask8>((1u << count) - 1u);
    __m512d acc = _mm512_setzero_pd();
    for (std::int64_t e = 0; e < n; ++e) {
        __m512d w = _mm512_set1_pd(static_cast<double>(vals[e]));
        __m512d v =
            _mm512_cvtps_pd(_mm256_maskz_loadu_ps(m, px + offs[e]));
        acc = _mm512_fmadd_pd(v, w, acc);
    }
    _mm256_mask_storeu_ps(orow, m, _mm512_cvtpd_ps(acc));
}

#endif // __AVX512VL__

#elif SPG_SPARSE_DIRECT_AVX2

/** T ymm accumulators covering T*4 unit-stride pixels from px. */
template <int T>
inline void
sparseFpTileY(const float *px, const float *vals,
              const std::int64_t *offs, std::int64_t n, float *orow)
{
    __m256d acc[T];
    for (int t = 0; t < T; ++t)
        acc[t] = _mm256_setzero_pd();
    for (std::int64_t e = 0; e < n; ++e) {
        __m256d w = _mm256_set1_pd(static_cast<double>(vals[e]));
        const float *p = px + offs[e];
        for (int t = 0; t < T; ++t) {
            __m256d v = _mm256_cvtps_pd(_mm_loadu_ps(p + t * 4));
            acc[t] = _mm256_fmadd_pd(v, w, acc[t]);
        }
    }
    for (int t = 0; t < T; ++t)
        _mm_storeu_ps(orow + t * 4, _mm256_cvtpd_ps(acc[t]));
}

#endif

/** One unit-stride output row: widest register tiles first, scalar
 *  tail. An empty CSR row (fully pruned feature) writes zeros. */
inline void
sparseRowUnit(const float *ibase, const float *vals,
              const std::int64_t *offs, std::int64_t n, float *orow,
              std::int64_t ox)
{
    std::int64_t x = 0;
#if SPG_SPARSE_DIRECT_AVX512
    for (; x + 32 <= ox; x += 32)
        sparseFpTileZ<4>(ibase + x, vals, offs, n, orow + x);
    if (x + 16 <= ox) {
        sparseFpTileZ<2>(ibase + x, vals, offs, n, orow + x);
        x += 16;
    }
    if (x + 8 <= ox) {
        sparseFpTileZ<1>(ibase + x, vals, offs, n, orow + x);
        x += 8;
    }
#if defined(__AVX512VL__)
    if (x < ox) {
        sparseFpTileZTail(ibase + x, vals, offs, n, orow + x, ox - x);
        x = ox;
    }
#endif
#elif SPG_SPARSE_DIRECT_AVX2
    for (; x + 16 <= ox; x += 16)
        sparseFpTileY<4>(ibase + x, vals, offs, n, orow + x);
    if (x + 8 <= ox) {
        sparseFpTileY<2>(ibase + x, vals, offs, n, orow + x);
        x += 8;
    }
    if (x + 4 <= ox) {
        sparseFpTileY<1>(ibase + x, vals, offs, n, orow + x);
        x += 4;
    }
#endif
    sparseRowScalar(ibase, 1, vals, offs, n, orow, x, ox);
}

} // namespace

void
SparseDirectFpEngine::forward(const ConvSpec &spec, const Tensor &in,
                              const Tensor &weights, Tensor &out,
                              ThreadPool &pool,
                              const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "sparse-weights-direct FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();

    auto plan =
        PackedWeightCache::global().getSparseConv(weights.data(), spec);
    const float *vals = plan->csr.vals().data();
    const std::int64_t *rptr = plan->csr.rowPtr().data();
    const std::int64_t *offs = plan->in_off.data();

    // One work item per (image, output feature) plane; planes are
    // written exactly once, so items are fully independent.
    pool.parallelFor2D(
        batch, spec.nf,
        [&](std::int64_t b, std::int64_t f, int) {
            const float *image = in.data() + b * spec.inputElems();
            float *plane = out.data() + b * spec.outputElems() +
                           f * oy * ox;
            std::int64_t e0 = rptr[f];
            std::int64_t n = rptr[f + 1] - e0;
            const float *row_vals = vals + e0;
            const std::int64_t *row_offs = offs + e0;
            for (std::int64_t y = 0; y < oy; ++y) {
                const float *ibase = image + y * spec.sy * spec.nx;
                float *orow = plane + y * ox;
                if (spec.sx == 1)
                    sparseRowUnit(ibase, row_vals, row_offs, n, orow,
                                  ox);
                else
                    sparseRowScalar(ibase, spec.sx, row_vals, row_offs,
                                    n, orow, 0, ox);
                // Row finished (written exactly once): fuse here.
                epilogue.apply(orow,
                               b * spec.outputElems() + f * oy * ox +
                                   y * ox,
                               ox);
            }
        },
        /*grain=*/1);
}

} // namespace spg
