/**
 * @file
 * Convolution layer specification and its arithmetic-intensity model.
 *
 * A convolution is the paper's 5-tuple kernel <Nf, Fy, Fx, sy, sx>
 * applied to an input of Nc channels of Ny x Nx pixels. This header
 * also implements the AIT model of paper §3.1 (Eqs. 5-8): the
 * intrinsic AIT of the convolution, the AIT after unfolding
 * (Unfold+GEMM), and the maximum achievable fraction r of the
 * intrinsic AIT that the unfolded form retains.
 */

#ifndef SPG_CONV_CONV_SPEC_HH
#define SPG_CONV_CONV_SPEC_HH

#include <cstdint>
#include <string>

namespace spg {

/**
 * Geometry of one convolutional layer (no padding; padding/cropping is
 * applied by the data pipeline as in the paper's Table 2 note).
 */
struct ConvSpec
{
    std::int64_t nx = 0;  ///< input width
    std::int64_t ny = 0;  ///< input height
    std::int64_t nc = 0;  ///< input channels (features)
    std::int64_t nf = 0;  ///< output features
    std::int64_t fx = 0;  ///< kernel width
    std::int64_t fy = 0;  ///< kernel height
    std::int64_t sx = 1;  ///< stride along x
    std::int64_t sy = 1;  ///< stride along y

    /** Square-geometry convenience constructor (Nx=Ny, Fx=Fy, sx=sy). */
    static ConvSpec
    square(std::int64_t n, std::int64_t nf, std::int64_t nc,
           std::int64_t f, std::int64_t s = 1)
    {
        return ConvSpec{n, n, nc, nf, f, f, s, s};
    }

    /** @return output width (Ox). */
    std::int64_t outX() const { return (nx - fx) / sx + 1; }
    /** @return output height (Oy). */
    std::int64_t outY() const { return (ny - fy) / sy + 1; }

    /** @return true when the geometry is well-formed. */
    bool valid() const;

    /** Abort via fatal() when the geometry is malformed. */
    void validate() const;

    /** |I| = Nx * Ny * Nc (Eq. 6). */
    std::int64_t inputElems() const { return nx * ny * nc; }

    /** |W| = Nf * Fx * Fy * Nc (Eq. 7). */
    std::int64_t weightElems() const { return nf * fx * fy * nc; }

    /** |O| = Nf * Ox * Oy (Eq. 8). */
    std::int64_t outputElems() const { return nf * outX() * outY(); }

    /** |A| = 2 * Nf * Ox * Oy * Nc * Fy * Fx (Eq. 5, exact output). */
    std::int64_t
    flops() const
    {
        return 2 * nf * outX() * outY() * nc * fy * fx;
    }

    /** |U| = Ox * Oy * Nc * Fx * Fy: elements of the unfolded input. */
    std::int64_t
    unfoldedElems() const
    {
        return outX() * outY() * nc * fx * fy;
    }

    /** Intrinsic AIT = |A| / (|I| + |W| + |O|) (paper §3.1). */
    double intrinsicAit() const;

    /**
     * AIT of the Unfold+GEMM execution:
     * |A| / (2|U| + |W| + |O|), counting the unfolded input twice
     * because it is materialized (stored) and then read by the MM.
     */
    double unfoldAit() const;

    /**
     * r = (|I| + |W| + |O|) / (2|U| + |W| + |O|): the maximum fraction
     * of the intrinsic AIT that Unfold+GEMM can achieve.
     */
    double unfoldRatio() const;

    /** GEMM dimensions of the unfolded FP: M=Nf, N=Oy*Ox, K=Nc*Fy*Fx. */
    std::int64_t gemmM() const { return nf; }
    std::int64_t gemmN() const { return outY() * outX(); }
    std::int64_t gemmK() const { return nc * fy * fx; }

    /** @return "Nx,Nf,Nc,Fx,sx"-style rendering for reports. */
    std::string str() const;

    bool operator==(const ConvSpec &other) const = default;
};

} // namespace spg

#endif // SPG_CONV_CONV_SPEC_HH
