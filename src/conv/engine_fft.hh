/**
 * @file
 * FFT-based forward-propagation engine (extension).
 *
 * Implements the complementary technique the paper cites (Mathieu,
 * Henaff & LeCun, "Fast training of convolutional networks through
 * FFTs"): forward propagation as frequency-domain cross-correlation —
 *
 *     O_f = crop( IFFT( sum_c FFT(I_c) . conj(FFT(W_fc)) ) )
 *
 * on planes zero-padded to the next power of two. Arithmetic drops
 * from O(Oy*Ox*Fy*Fx) to O(P^2 log P) per plane pair, so the FFT
 * engine wins when kernels are large (e.g. the 11x11 Table 1 ID 5)
 * and loses to direct/GEMM convolution for the common 3x3 case —
 * `bench_ext_fft` maps the crossover.
 *
 * Strided convolutions compute the stride-1 result and subsample.
 * Weight spectra are precomputed per call in feature blocks sized to
 * a memory budget, so arbitrarily large layers stay bounded.
 */

#ifndef SPG_CONV_ENGINE_FFT_HH
#define SPG_CONV_ENGINE_FFT_HH

#include "conv/engine.hh"

namespace spg {

/** Frequency-domain FP engine. */
class FftConvEngine : public ConvEngine
{
  public:
    /**
     * @param spectra_budget_bytes Cap on the weight-spectra cache; 0
     *        selects the default (256 MiB).
     */
    explicit FftConvEngine(std::size_t spectra_budget_bytes = 0)
        : spectraBudget(spectra_budget_bytes ? spectra_budget_bytes
                                             : kDefaultBudget)
    {}

    using ConvEngine::forward;

    std::string name() const override { return "fft"; }
    bool supports(Phase phase) const override
    {
        return phase == Phase::Forward;
    }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;

    /** @return the padded transform size for a spec. */
    static std::int64_t paddedSize(const ConvSpec &spec);

  private:
    static constexpr std::size_t kDefaultBudget = 256u << 20;
    std::size_t spectraBudget;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_FFT_HH
