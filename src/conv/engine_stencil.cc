#include "conv/engine_stencil.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "conv/scratch.hh"
#include "conv/stencil_block.hh"
#include "obs/trace.hh"
#include "tensor/layout.hh"
#include "util/logging.hh"

namespace spg {

void
stencilTileScalar(const float *in, std::int64_t row_stride,
                  const std::int64_t *xoff, const float *w,
                  std::int64_t fy, std::int64_t fx, std::int64_t sy,
                  std::int64_t y0, std::int64_t rows, std::int64_t x0,
                  std::int64_t cols, float *out, std::int64_t out_stride)
{
    for (std::int64_t ty = 0; ty < rows; ++ty) {
        for (std::int64_t x = x0; x < x0 + cols; ++x) {
            float sum = out[(y0 + ty) * out_stride + x];
            for (std::int64_t ky = 0; ky < fy; ++ky) {
                const float *rowp =
                    in + ((y0 + ty) * sy + ky) * row_stride + x;
                for (std::int64_t kx = 0; kx < fx; ++kx)
                    sum += w[ky * fx + kx] * rowp[xoff[kx]];
            }
            out[(y0 + ty) * out_stride + x] = sum;
        }
    }
}

namespace {

/** Register-tile candidates: RY x RX with RY*RX <= 12 accumulators. */
struct TileShape
{
    int ry, rx;
};

constexpr TileShape kTileShapes[] = {
    {1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {2, 4}, {3, 1},
    {3, 2}, {3, 4}, {4, 1}, {4, 2}, {6, 1}, {6, 2}, {12, 1},
};

/**
 * Micro-op cost per FMA of a tile shape for kernel height fy:
 * input loads (RY+fy-1)/(RY*fy) plus weight broadcasts 1/RX.
 */
double
tileCost(const TileShape &shape, std::int64_t fy)
{
    return static_cast<double>(shape.ry + fy - 1) /
               (static_cast<double>(shape.ry) * fy) +
           1.0 / shape.rx;
}

#if defined(__AVX2__) && defined(__FMA__)

/** Instantiate the FY dispatch for one (RY, RX) shape. */
template <int RY, int RX>
void
runTileFy(const float *in, std::int64_t row_stride,
          const std::int64_t *xoff, const float *w, std::int64_t fy,
          std::int64_t fx, std::int64_t sy, std::int64_t y0,
          std::int64_t x0, float *out, std::int64_t out_stride)
{
    switch (fy) {
      case 1:
        stencilTile<RY, RX, 1>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, out, out_stride);
        break;
      case 2:
        stencilTile<RY, RX, 2>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, out, out_stride);
        break;
      case 3:
        stencilTile<RY, RX, 3>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, out, out_stride);
        break;
      case 4:
        stencilTile<RY, RX, 4>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, out, out_stride);
        break;
      case 5:
        stencilTile<RY, RX, 5>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, out, out_stride);
        break;
      case 7:
        stencilTile<RY, RX, 7>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, out, out_stride);
        break;
      case 11:
        stencilTile<RY, RX, 11>(in, row_stride, xoff, w, fy, fx, sy, y0,
                                x0, out, out_stride);
        break;
      default:
        stencilTile<RY, RX, 0>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, out, out_stride);
        break;
    }
}

/** Dispatch to the fully unrolled (RY, RX) instantiation. */
void
runTile(int ry, int rx, const float *in, std::int64_t row_stride,
        const std::int64_t *xoff, const float *w, std::int64_t fy,
        std::int64_t fx, std::int64_t sy, std::int64_t y0,
        std::int64_t x0, float *out, std::int64_t out_stride)
{
#define SPG_TILE_CASE(RY, RX)                                             \
    if (ry == (RY) && rx == (RX)) {                                      \
        runTileFy<RY, RX>(in, row_stride, xoff, w, fy, fx, sy, y0, x0,   \
                          out, out_stride);                              \
        return;                                                          \
    }
    SPG_TILE_CASE(1, 1)
    SPG_TILE_CASE(1, 2)
    SPG_TILE_CASE(1, 4)
    SPG_TILE_CASE(2, 1)
    SPG_TILE_CASE(2, 2)
    SPG_TILE_CASE(2, 4)
    SPG_TILE_CASE(3, 1)
    SPG_TILE_CASE(3, 2)
    SPG_TILE_CASE(3, 4)
    SPG_TILE_CASE(4, 1)
    SPG_TILE_CASE(4, 2)
    SPG_TILE_CASE(6, 1)
    SPG_TILE_CASE(6, 2)
    SPG_TILE_CASE(12, 1)
#undef SPG_TILE_CASE
    panic("no stencil instantiation for tile %dx%d", ry, rx);
}

/** FY dispatch for the masked tail tile of one RY. */
template <int RY>
void
runTailFy(const float *in, std::int64_t row_stride,
          const std::int64_t *xoff, const float *w, std::int64_t fy,
          std::int64_t fx, std::int64_t sy, std::int64_t y0,
          std::int64_t x0, std::int64_t cols, float *out,
          std::int64_t out_stride)
{
    switch (fy) {
      case 1:
        stencilTileTail<RY, 1>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, cols, out, out_stride);
        break;
      case 2:
        stencilTileTail<RY, 2>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, cols, out, out_stride);
        break;
      case 3:
        stencilTileTail<RY, 3>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, cols, out, out_stride);
        break;
      case 4:
        stencilTileTail<RY, 4>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, cols, out, out_stride);
        break;
      case 5:
        stencilTileTail<RY, 5>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, cols, out, out_stride);
        break;
      case 7:
        stencilTileTail<RY, 7>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, cols, out, out_stride);
        break;
      case 11:
        stencilTileTail<RY, 11>(in, row_stride, xoff, w, fy, fx, sy, y0,
                                x0, cols, out, out_stride);
        break;
      default:
        stencilTileTail<RY, 0>(in, row_stride, xoff, w, fy, fx, sy, y0,
                               x0, cols, out, out_stride);
        break;
    }
}

/** Dispatch the masked tail tile on the band height. */
void
runTailTile(int ry, const float *in, std::int64_t row_stride,
            const std::int64_t *xoff, const float *w, std::int64_t fy,
            std::int64_t fx, std::int64_t sy, std::int64_t y0,
            std::int64_t x0, std::int64_t cols, float *out,
            std::int64_t out_stride)
{
#define SPG_TAIL_CASE(RY)                                                 \
    if (ry == (RY)) {                                                    \
        runTailFy<RY>(in, row_stride, xoff, w, fy, fx, sy, y0, x0,       \
                      cols, out, out_stride);                            \
        return;                                                          \
    }
    SPG_TAIL_CASE(1)
    SPG_TAIL_CASE(2)
    SPG_TAIL_CASE(3)
    SPG_TAIL_CASE(4)
    SPG_TAIL_CASE(6)
    SPG_TAIL_CASE(12)
#undef SPG_TAIL_CASE
    panic("no stencil tail instantiation for band height %d", ry);
}

#endif // __AVX2__ && __FMA__

/** Largest candidate RY <= limit (with any RX); used for remainders. */
int
largestRyAtMost(int limit)
{
    int best = 1;
    for (const auto &shape : kTileShapes)
        if (shape.ry <= limit)
            best = std::max(best, shape.ry);
    return best;
}

/**
 * Accumulate one (feature, channel) plane pair:
 * out_plane += stencil(in_plane, w).
 */
void
stencilPlane(const float *in, std::int64_t row_stride,
             const std::int64_t *xoff, const float *w, std::int64_t fy,
             std::int64_t fx, std::int64_t sy, std::int64_t oy,
             std::int64_t ox, float *out_plane, TileShape tile)
{
    std::int64_t y0 = 0;
    while (y0 < oy) {
        int ry = tile.ry <= oy - y0
                     ? tile.ry
                     : largestRyAtMost(static_cast<int>(oy - y0));
        std::int64_t x0 = 0;
#if defined(__AVX2__) && defined(__FMA__)
        int rx = tile.rx;
        while (x0 + static_cast<std::int64_t>(rx) * 8 <= ox) {
            runTile(ry, rx, in, row_stride, xoff, w, fy, fx, sy, y0, x0,
                    out_plane, ox);
            x0 += static_cast<std::int64_t>(rx) * 8;
        }
        // Narrower vector tiles for the x remainder.
        for (int nrx : {2, 1}) {
            while (nrx < rx &&
                   x0 + static_cast<std::int64_t>(nrx) * 8 <= ox) {
                runTile(ry, nrx, in, row_stride, xoff, w, fy, fx, sy, y0,
                        x0, out_plane, ox);
                x0 += static_cast<std::int64_t>(nrx) * 8;
            }
        }
        // Masked vector tile for the final < 8 columns.
        if (x0 < ox) {
            runTailTile(ry, in, row_stride, xoff, w, fy, fx, sy, y0, x0,
                        ox - x0, out_plane, ox);
            x0 = ox;
        }
#endif
        if (x0 < ox) {
            stencilTileScalar(in, row_stride, xoff, w, fy, fx, sy, y0,
                              ry, x0, ox - x0, out_plane, ox);
        }
        y0 += ry;
    }
}

/** Scalar strided path for the disabled-transform ablation. */
void
stencilPlaneScalarStrided(const float *in, std::int64_t nx, const float *w,
                          std::int64_t fy, std::int64_t fx,
                          std::int64_t sy, std::int64_t sx,
                          std::int64_t oy, std::int64_t ox,
                          float *out_plane)
{
    for (std::int64_t y = 0; y < oy; ++y) {
        for (std::int64_t x = 0; x < ox; ++x) {
            float sum = out_plane[y * ox + x];
            for (std::int64_t ky = 0; ky < fy; ++ky) {
                const float *rowp = in + (y * sy + ky) * nx + x * sx;
                for (std::int64_t kx = 0; kx < fx; ++kx)
                    sum += w[ky * fx + kx] * rowp[kx];
            }
            out_plane[y * ox + x] = sum;
        }
    }
}

/** The tile-shape search of §4.3 (minimize micro-ops per FMA). */
TileShape
selectTileShape(std::int64_t fy, int fixed_ry)
{
    if (fixed_ry > 0) {
        // Ablation: pin RY, keep RX = 1 (the "no 2-D tiling" variant).
        return TileShape{fixed_ry, 1};
    }
    TileShape best = kTileShapes[0];
    double best_cost = 1e30;
    for (const auto &shape : kTileShapes) {
        double cost = tileCost(shape, fy);
        if (cost < best_cost - 1e-12) {
            best_cost = cost;
            best = shape;
        }
    }
    return best;
}

} // namespace

int
StencilEngine::selectTileHeight(std::int64_t fy)
{
    return selectTileShape(fy, 0).ry;
}

void
StencilEngine::forward(const ConvSpec &spec, const Tensor &in,
                       const Tensor &weights, Tensor &out,
                       ThreadPool &pool, const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "stencil FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    TileShape tile = selectTileShape(spec.fy, fixedRy);
    if (fixedRy > 0 && largestRyAtMost(fixedRy) != fixedRy)
        fatal("no stencil instantiation with tile height %d", fixedRy);

    bool transform = spec.sx > 1 && strideTransform;
    bool scalar_strided = spec.sx > 1 && !strideTransform;
    std::int64_t xp = (spec.nx + spec.sx - 1) / spec.sx;
    std::int64_t row_stride = transform ? spec.sx * xp : spec.nx;

    // Per-tap x offsets for the chosen layout (Eq. 21 when split).
    std::vector<std::int64_t> xoff(spec.fx);
    for (std::int64_t kx = 0; kx < spec.fx; ++kx)
        xoff[kx] = transform ? (kx % spec.sx) * xp + kx / spec.sx : kx;

    std::int64_t plane_elems = spec.ny * row_stride;
    auto computePlane = [&](std::int64_t b, std::int64_t f,
                            const float *image, const float *planes) {
        float *out_plane =
            out.data() + b * spec.outputElems() + f * oy * ox;
        std::memset(out_plane, 0, sizeof(float) * oy * ox);
        for (std::int64_t c = 0; c < spec.nc; ++c) {
            const float *w = weights.data() +
                             (f * spec.nc + c) * spec.fy * spec.fx;
            if (scalar_strided) {
                stencilPlaneScalarStrided(image + c * spec.ny * spec.nx,
                                          spec.nx, w, spec.fy, spec.fx,
                                          spec.sy, spec.sx, oy, ox,
                                          out_plane);
            } else {
                stencilPlane(planes + c * plane_elems, row_stride,
                             xoff.data(), w, spec.fy, spec.fx, spec.sy,
                             oy, ox, out_plane, tile);
            }
        }
        // Each output plane is written exactly once, by one worker:
        // fuse the epilogue here while the plane is cache-hot.
        epilogue.apply(out_plane, b * spec.outputElems() + f * oy * ox,
                       oy * ox);
    };

    if (transform) {
        // The strided-split staging buffer is per-image scratch, so
        // keep image-granular scheduling (grain 1: whole images).
        pool.parallelForDynamic(
            batch,
            [&](std::int64_t b, int) {
                const float *image = in.data() + b * spec.inputElems();
                float *staging = ScratchArena::forThread().get(
                    kSlotStencilIn, static_cast<std::size_t>(spec.nc) *
                                        spec.ny * spec.sx * xp);
                for (std::int64_t c = 0; c < spec.nc; ++c) {
                    stridedSplitX(image + c * spec.ny * spec.nx, spec.ny,
                                  spec.nx, spec.sx,
                                  staging + c * spec.ny * spec.sx * xp);
                }
                for (std::int64_t f = 0; f < spec.nf; ++f)
                    computePlane(b, f, image, staging);
            },
            /*grain=*/1);
    } else {
        // (image × output-feature) space: output planes are disjoint,
        // and the 2D decomposition exposes nf-fold more parallelism
        // than the batch dimension alone for small minibatches.
        pool.parallelFor2D(batch, spec.nf,
                           [&](std::int64_t b, std::int64_t f, int) {
                               const float *image =
                                   in.data() + b * spec.inputElems();
                               computePlane(b, f, image, image);
                           });
    }
}

} // namespace spg
