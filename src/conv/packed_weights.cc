#include "conv/packed_weights.hh"

#include <cstring>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/timer.hh"

namespace spg {

namespace {

/** Entries are few (one or two per conv layer per phase); past this
 *  something is leaking keys, so start over rather than grow. */
constexpr std::size_t kMaxEntries = 64;

/** FNV-1a over the dense weight bytes. */
std::uint64_t
fingerprint(const float *w, std::int64_t count)
{
    std::uint64_t h = 14695981039346656037ull;
    const unsigned char *bytes =
        reinterpret_cast<const unsigned char *>(w);
    std::size_t n = static_cast<std::size_t>(count) * sizeof(float);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

PackedWeightCache &
PackedWeightCache::global()
{
    static PackedWeightCache cache;
    return cache;
}

std::shared_ptr<const PackedMatrix>
PackedWeightCache::getA(const float *w, Trans ta, std::int64_t m,
                        std::int64_t k)
{
    Key key{w, ta, m, k};
    std::uint64_t fp = fingerprint(w, m * k);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second.fingerprint == fp) {
            obs::Metrics::global()
                .counter("packed_weights.hits")
                .add();
            return it->second.packed;
        }
    }

    obs::Metrics::global().counter("packed_weights.packs").add();
    SPG_TRACE_SCOPE_NN("gemm", "pack weights", "m", m, "k", k);
    std::int64_t lda = ta == Trans::No ? k : m;
    auto packed = std::make_shared<const PackedMatrix>(
        PackedMatrix::packA(ta, m, k, 1.0f, w, lda));

    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() >= kMaxEntries)
        entries_.clear();
    entries_[key] = Entry{fp, packed};
    return packed;
}

std::shared_ptr<const SparseWeightPlan>
PackedWeightCache::getSparseConv(const float *w, const ConvSpec &spec)
{
    SparseKey key{w, spec.nf, spec.nc, spec.fy, spec.fx,
                  spec.ny, spec.nx};
    std::uint64_t fp = fingerprint(w, spec.weightElems());
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sparse_entries_.find(key);
        if (it != sparse_entries_.end() &&
            it->second.fingerprint == fp) {
            ++sparse_stats_.hits;
            obs::Metrics::global()
                .counter("packed_weights.sparse_hits")
                .add();
            return it->second.plan;
        }
    }

    obs::Metrics::global()
        .counter("packed_weights.sparse_encodes")
        .add();
    SPG_TRACE_SCOPE_NN("sparse", "encode sparse weights", "nf",
                       spec.nf, "taps", spec.nc * spec.fy * spec.fx);
    Stopwatch watch;
    auto plan = std::make_shared<SparseWeightPlan>();
    plan->nf = spec.nf;
    plan->taps = spec.nc * spec.fy * spec.fx;
    plan->csr = CsrMatrix::fromDense(w, plan->nf, plan->taps);
    plan->weight_sparsity = plan->csr.sparsity();
    plan->in_off.resize(static_cast<std::size_t>(plan->nnz()));
    const auto &cidx = plan->csr.colIdx();
    for (std::size_t p = 0; p < cidx.size(); ++p) {
        std::int64_t tap = cidx[p];
        std::int64_t c = tap / (spec.fy * spec.fx);
        std::int64_t ky = tap / spec.fx % spec.fy;
        std::int64_t kx = tap % spec.fx;
        plan->in_off[p] = c * spec.ny * spec.nx + ky * spec.nx + kx;
    }
    double elapsed = watch.seconds();

    std::lock_guard<std::mutex> lock(mu_);
    ++sparse_stats_.encodes;
    sparse_stats_.encode_seconds += elapsed;
    if (sparse_entries_.size() >= kMaxEntries)
        sparse_entries_.clear();
    sparse_entries_[key] = SparseEntry{fp, plan};
    return plan;
}

void
PackedWeightCache::invalidate(const float *w)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (std::get<0>(it->first) == w)
            it = entries_.erase(it);
        else
            ++it;
    }
    for (auto it = sparse_entries_.begin();
         it != sparse_entries_.end();) {
        if (std::get<0>(it->first) == w)
            it = sparse_entries_.erase(it);
        else
            ++it;
    }
}

void
PackedWeightCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    sparse_entries_.clear();
}

std::size_t
PackedWeightCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

std::size_t
PackedWeightCache::sparseSize() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sparse_entries_.size();
}

PackedWeightCache::SparseStats
PackedWeightCache::sparseStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sparse_stats_;
}

void
PackedWeightCache::resetSparseStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    sparse_stats_ = SparseStats{};
}

} // namespace spg
