/**
 * @file
 * The stencil basic-block generator (paper §4.3, Fig. 7).
 *
 * A basic block computes an RY x (RX*8) register tile of one output
 * plane. Template parameters realize the paper's code generation:
 *
 *  - RY, RX: the register tile shape. Accumulators acc[RY][RX] live in
 *    ymm registers for the whole block (RY*RX <= 12 leaves room for
 *    input and broadcast temporaries in the 16-register AVX2 file).
 *
 *  - FY: the kernel height, specialized for the common CNN sizes so
 *    the compiler fully unrolls the input-row walk and resolves the
 *    "which output rows use input row r" test at compile time —
 *    matching the straight-line code of Fig. 7. FY == 0 is the
 *    generic variant with runtime bounds.
 *
 * For sy == 1 the block iterates over the RY + FY - 1 input rows it
 * touches; each input vector is loaded ONCE and fused into every
 * output row that uses it (the paper's spatial-reuse argument). The
 * per-FMA micro-op cost is
 *
 *     loads/FMA = (RY + FY - 1) / (RY * FY)   +   1 / RX
 *                 \__ input vector loads __/      \_ w broadcasts _/
 *
 * which the tile-shape search of StencilEngine minimizes subject to
 * the register budget.
 *
 * Input addressing is in[row * row_stride + xoff[kx] + x], covering
 * both the plain layout and the Eq. 21 strided-split layout.
 */

#ifndef SPG_CONV_STENCIL_BLOCK_HH
#define SPG_CONV_STENCIL_BLOCK_HH

#include <cstdint>
#include <utility>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace spg {

#if defined(__AVX2__) && defined(__FMA__)

/**
 * Compute one register tile: out[y0..y0+RY) x [x0..x0+RX*8), with
 * accumulation into the existing output values.
 */
template <int RY, int RX, int FY>
inline void
stencilTile(const float *in, std::int64_t row_stride,
            const std::int64_t *xoff, const float *w, std::int64_t fy_rt,
            std::int64_t fx, std::int64_t sy, std::int64_t y0,
            std::int64_t x0, float *out, std::int64_t out_stride)
{
    const std::int64_t fy = FY ? FY : fy_rt;

    __m256 acc[RY][RX];
    for (int ty = 0; ty < RY; ++ty)
        for (int vx = 0; vx < RX; ++vx)
            acc[ty][vx] = _mm256_loadu_ps(
                out + (y0 + ty) * out_stride + x0 + vx * 8);

    if (sy == 1 && FY != 0) {
        // Spatial-reuse walk over the RY + FY - 1 touched input rows,
        // fully unrolled at compile time: the "which output rows use
        // input row R" test is a constexpr condition, so the emitted
        // code is the straight-line load/broadcast/FMA sequence of
        // the paper's Fig. 7.
        auto row_step = [&]<int R>() {
            const float *rowp = in + (y0 + R) * row_stride + x0;
            for (std::int64_t kx = 0; kx < fx; ++kx) {
                const float *base = rowp + xoff[kx];
                __m256 iv[RX];
                for (int vx = 0; vx < RX; ++vx)
                    iv[vx] = _mm256_loadu_ps(base + vx * 8);
                auto ty_step = [&]<int TY>() {
                    if constexpr (R - TY >= 0 && R - TY < (FY ? FY : 1)) {
                        __m256 wv = _mm256_broadcast_ss(
                            w + (R - TY) * fx + kx);
                        for (int vx = 0; vx < RX; ++vx)
                            acc[TY][vx] = _mm256_fmadd_ps(wv, iv[vx],
                                                          acc[TY][vx]);
                    }
                };
                [&]<std::size_t... Tys>(std::index_sequence<Tys...>) {
                    (ty_step.template operator()<static_cast<int>(Tys)>(),
                     ...);
                }(std::make_index_sequence<RY>{});
            }
        };
        [&]<std::size_t... Rs>(std::index_sequence<Rs...>) {
            (row_step.template operator()<static_cast<int>(Rs)>(), ...);
        }(std::make_index_sequence<RY + (FY ? FY : 1) - 1>{});
    } else if (sy == 1) {
        // Generic kernel height: same walk with runtime bounds.
        for (std::int64_t r = 0; r < RY + fy - 1; ++r) {
            const float *rowp = in + (y0 + r) * row_stride + x0;
            for (std::int64_t kx = 0; kx < fx; ++kx) {
                const float *base = rowp + xoff[kx];
                __m256 iv[RX];
                for (int vx = 0; vx < RX; ++vx)
                    iv[vx] = _mm256_loadu_ps(base + vx * 8);
                for (int ty = 0; ty < RY; ++ty) {
                    std::int64_t ky = r - ty;
                    if (ky >= 0 && ky < fy) {
                        __m256 wv =
                            _mm256_broadcast_ss(w + ky * fx + kx);
                        for (int vx = 0; vx < RX; ++vx)
                            acc[ty][vx] = _mm256_fmadd_ps(wv, iv[vx],
                                                          acc[ty][vx]);
                    }
                }
            }
        }
    } else {
        // Strided rows: no cross-row reuse; still RX-wide.
        for (int ty = 0; ty < RY; ++ty) {
            for (std::int64_t ky = 0; ky < fy; ++ky) {
                const float *rowp =
                    in + ((y0 + ty) * sy + ky) * row_stride + x0;
                for (std::int64_t kx = 0; kx < fx; ++kx) {
                    __m256 wv = _mm256_broadcast_ss(w + ky * fx + kx);
                    const float *base = rowp + xoff[kx];
                    for (int vx = 0; vx < RX; ++vx)
                        acc[ty][vx] = _mm256_fmadd_ps(
                            wv, _mm256_loadu_ps(base + vx * 8),
                            acc[ty][vx]);
                }
            }
        }
    }

    for (int ty = 0; ty < RY; ++ty)
        for (int vx = 0; vx < RX; ++vx)
            _mm256_storeu_ps(out + (y0 + ty) * out_stride + x0 + vx * 8,
                             acc[ty][vx]);
}

/**
 * Masked tail tile: like stencilTile with RX = 1, but computing only
 * `cols` (< 8) output columns using AVX2 masked loads/stores. Without
 * this, planes whose width is not a multiple of 8 spend most of their
 * time in the scalar tail (e.g. a 29-wide output plane is 17% tail
 * columns but they would dominate the runtime).
 */
template <int RY, int FY>
inline void
stencilTileTail(const float *in, std::int64_t row_stride,
                const std::int64_t *xoff, const float *w,
                std::int64_t fy_rt, std::int64_t fx, std::int64_t sy,
                std::int64_t y0, std::int64_t x0, std::int64_t cols,
                float *out, std::int64_t out_stride)
{
    const std::int64_t fy = FY ? FY : fy_rt;
    alignas(32) std::int32_t mask_bits[8];
    for (int i = 0; i < 8; ++i)
        mask_bits[i] = i < cols ? -1 : 0;
    __m256i mask = _mm256_load_si256(
        reinterpret_cast<const __m256i *>(mask_bits));

    __m256 acc[RY];
    for (int ty = 0; ty < RY; ++ty)
        acc[ty] = _mm256_maskload_ps(out + (y0 + ty) * out_stride + x0,
                                     mask);

    if (sy == 1) {
        for (std::int64_t r = 0; r < RY + fy - 1; ++r) {
            const float *rowp = in + (y0 + r) * row_stride + x0;
            for (std::int64_t kx = 0; kx < fx; ++kx) {
                __m256 iv = _mm256_maskload_ps(rowp + xoff[kx], mask);
                for (int ty = 0; ty < RY; ++ty) {
                    std::int64_t ky = r - ty;
                    if (ky >= 0 && ky < fy) {
                        __m256 wv =
                            _mm256_broadcast_ss(w + ky * fx + kx);
                        acc[ty] = _mm256_fmadd_ps(wv, iv, acc[ty]);
                    }
                }
            }
        }
    } else {
        for (int ty = 0; ty < RY; ++ty) {
            for (std::int64_t ky = 0; ky < fy; ++ky) {
                const float *rowp =
                    in + ((y0 + ty) * sy + ky) * row_stride + x0;
                for (std::int64_t kx = 0; kx < fx; ++kx) {
                    __m256 wv = _mm256_broadcast_ss(w + ky * fx + kx);
                    __m256 iv = _mm256_maskload_ps(rowp + xoff[kx],
                                                   mask);
                    acc[ty] = _mm256_fmadd_ps(wv, iv, acc[ty]);
                }
            }
        }
    }

    for (int ty = 0; ty < RY; ++ty)
        _mm256_maskstore_ps(out + (y0 + ty) * out_stride + x0, mask,
                            acc[ty]);
}

#endif // __AVX2__ && __FMA__

/** Scalar tile used for x remainders and non-AVX builds. */
void stencilTileScalar(const float *in, std::int64_t row_stride,
                       const std::int64_t *xoff, const float *w,
                       std::int64_t fy, std::int64_t fx, std::int64_t sy,
                       std::int64_t y0, std::int64_t rows,
                       std::int64_t x0, std::int64_t cols, float *out,
                       std::int64_t out_stride);

} // namespace spg

#endif // SPG_CONV_STENCIL_BLOCK_HH
