/**
 * @file
 * Per-thread scratch buffers for convolution engines.
 *
 * Engines need transient buffers (unfolded inputs, layout-transformed
 * operands, private weight-gradient accumulators). Allocating them per
 * call would dominate small layers, so each worker thread keeps a
 * small arena of named slots that grow monotonically and are reused
 * across calls.
 */

#ifndef SPG_CONV_SCRATCH_HH
#define SPG_CONV_SCRATCH_HH

#include <cstddef>
#include <vector>

#include "util/aligned.hh"

namespace spg {

/** Named scratch slots; one arena instance lives per thread. */
class ScratchArena
{
  public:
    /**
     * @return a buffer of at least @p count floats for the given slot
     * id. Contents are UNINITIALIZED on growth and persist between
     * calls on the same thread — callers must fully overwrite before
     * reading (sanitized builds poison fresh storage to enforce this).
     */
    float *
    get(int slot, std::size_t count)
    {
        if (slot >= static_cast<int>(slots.size()))
            slots.resize(slot + 1);
        if (slots[slot].size() < count)
            slots[slot] = AlignedBuffer<float>(kUninit, count);
        return slots[slot].data();
    }

    /** @return the calling thread's arena. */
    static ScratchArena &
    forThread()
    {
        static thread_local ScratchArena arena;
        return arena;
    }

  private:
    std::vector<AlignedBuffer<float>> slots;
};

/** Slot ids used by the engines (disjoint per concurrent use). */
enum ScratchSlot
{
    kSlotUnfold = 0,       ///< im2col matrix
    kSlotUnfoldGrad = 1,   ///< gradient of the unfolded matrix
    kSlotPrivateDw = 2,    ///< per-thread weight-gradient accumulator
    kSlotLayoutA = 3,      ///< layout-transform staging A
    kSlotLayoutB = 4,      ///< layout-transform staging B
    kSlotLayoutC = 5,      ///< layout-transform staging C
    kSlotStencilIn = 6,    ///< strided-split input planes
    kSlotStencilOut = 7,   ///< stencil output staging
    kSlotPanelsB = 8,      ///< im2col emitted directly in B-panel format
    kSlotMaskedEo = 9,     ///< ReLU-masked copy of one image's errors
    // Direct NCHWc engine. The batch-wide staging slots (In / Weights /
    // Out) are taken from the DISPATCHING thread's arena and shared
    // read-only (or disjointly written) by the workers inside one
    // fork-join region; kSlotDirectDw is a genuinely per-thread
    // gradient tile.
    kSlotDirectIn = 10,      ///< blocked input / staged (masked) errors
    kSlotDirectWeights = 11, ///< KCRSck or BP-gather blocked weights
    kSlotDirectOut = 12,     ///< blocked output / input-error staging
    kSlotDirectDw = 13       ///< one task's [fx][8][8] gradient tile
};

} // namespace spg

#endif // SPG_CONV_SCRATCH_HH
