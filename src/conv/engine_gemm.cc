#include "conv/engine_gemm.hh"

#include <cstring>

#include "blas/gemm.hh"
#include "conv/scratch.hh"
#include "conv/unfold.hh"
#include "obs/trace.hh"

namespace spg {

namespace {

/**
 * Per-image FP: unfold then O = W * U'. The GemmFn decides whether
 * the MM itself is threaded (Parallel-GEMM) or single-threaded
 * (GEMM-in-Parallel). The epilogue runs right after the MM, while the
 * output image is hot.
 */
template <typename GemmFn>
void
forwardImage(const ConvSpec &spec, const float *in, const float *weights,
             float *out, std::int64_t out_offset, GemmFn &&mm,
             const Epilogue &epilogue)
{
    std::int64_t m = spec.gemmM(), n = spec.gemmN(), k = spec.gemmK();
    float *u = ScratchArena::forThread().get(
        kSlotUnfold, static_cast<std::size_t>(k) * n);
    unfoldImage(spec, in, u);
    mm(Trans::No, Trans::No, m, n, k, weights, u, 0.0f, out);
    epilogue.apply(out, out_offset, spec.outputElems());
}

/** Per-image BP-data: U'grad = W^T * EO, then fold into EI. */
template <typename GemmFn>
void
backwardDataImage(const ConvSpec &spec, const float *eo,
                  const float *weights, float *ei, GemmFn &&mm)
{
    std::int64_t m = spec.gemmK(), n = spec.gemmN(), k = spec.gemmM();
    float *ugrad = ScratchArena::forThread().get(
        kSlotUnfoldGrad, static_cast<std::size_t>(m) * n);
    mm(Trans::Yes, Trans::No, m, n, k, weights, eo, 0.0f, ugrad);
    std::memset(ei, 0, sizeof(float) * spec.inputElems());
    foldImageAccumulate(spec, ugrad, ei);
}

/** Per-image BP-weights: dW += EO * U'^T (dW pre-zeroed by caller). */
template <typename GemmFn>
void
backwardWeightsImage(const ConvSpec &spec, const float *eo,
                     const float *in, float *dweights, GemmFn &&mm)
{
    std::int64_t m = spec.gemmM(), n = spec.gemmK(), k = spec.gemmN();
    float *u = ScratchArena::forThread().get(
        kSlotUnfold, static_cast<std::size_t>(n) * k);
    unfoldImage(spec, in, u);
    mm(Trans::No, Trans::Yes, m, n, k, eo, u, 1.0f, dweights);
}

} // namespace

// ---------------------------------------------------------------------
// UnfoldGemmEngine: sequential over images, Parallel-GEMM per image.
// ---------------------------------------------------------------------

void
UnfoldGemmEngine::forward(const ConvSpec &spec, const Tensor &in,
                          const Tensor &weights, Tensor &out,
                          ThreadPool &pool, const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "parallel-gemm FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    auto mm = [&pool](Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                      std::int64_t k, const float *a, const float *b,
                      float beta, float *c) {
        parallelGemm(pool, ta, tb, m, n, k, a, b, beta, c);
    };
    for (std::int64_t b = 0; b < batch; ++b) {
        forwardImage(spec, in.data() + b * spec.inputElems(),
                     weights.data(), out.data() + b * spec.outputElems(),
                     b * spec.outputElems(), mm, epilogue);
    }
}

void
UnfoldGemmEngine::backwardData(const ConvSpec &spec, const Tensor &eo,
                               const Tensor &weights, Tensor &ei,
                               ThreadPool &pool, const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "parallel-gemm BP-data");
    checkBackwardShapes(spec, eo, weights, ei);
    std::int64_t batch = eo.shape()[0];
    auto mm = [&pool](Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                      std::int64_t k, const float *a, const float *b,
                      float beta, float *c) {
        parallelGemm(pool, ta, tb, m, n, k, a, b, beta, c);
    };
    for (std::int64_t b = 0; b < batch; ++b) {
        std::int64_t off = b * spec.outputElems();
        const float *eo_b =
            stagedMaskedEo(spec, eo.data() + off, off, mask);
        backwardDataImage(spec, eo_b, weights.data(),
                          ei.data() + b * spec.inputElems(), mm);
    }
}

void
UnfoldGemmEngine::backwardWeights(const ConvSpec &spec, const Tensor &eo,
                                  const Tensor &in, Tensor &dweights,
                                  ThreadPool &pool, const BpMask &mask)
    const
{
    SPG_TRACE_SCOPE("kernel", "parallel-gemm BP-weights");
    std::int64_t batch = eo.shape()[0];
    dweights.zero();
    auto mm = [&pool](Trans ta, Trans tb, std::int64_t m, std::int64_t n,
                      std::int64_t k, const float *a, const float *b,
                      float beta, float *c) {
        parallelGemm(pool, ta, tb, m, n, k, a, b, beta, c);
    };
    for (std::int64_t b = 0; b < batch; ++b) {
        std::int64_t off = b * spec.outputElems();
        const float *eo_b =
            stagedMaskedEo(spec, eo.data() + off, off, mask);
        backwardWeightsImage(spec, eo_b,
                             in.data() + b * spec.inputElems(),
                             dweights.data(), mm);
    }
}

// ---------------------------------------------------------------------
// GemmInParallelEngine: images across cores, sequential GEMM per image.
// ---------------------------------------------------------------------

namespace {

/** The single-threaded MM each worker runs on its own image. */
void
seqMm(Trans ta, Trans tb, std::int64_t m, std::int64_t n, std::int64_t k,
      const float *a, const float *b, float beta, float *c)
{
    sgemm(ta, tb, m, n, k, a, b, beta, c);
}

} // namespace

void
GemmInParallelEngine::forward(const ConvSpec &spec, const Tensor &in,
                              const Tensor &weights, Tensor &out,
                              ThreadPool &pool,
                              const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "gemm-in-parallel FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        forwardImage(spec, in.data() + b * spec.inputElems(),
                     weights.data(), out.data() + b * spec.outputElems(),
                     b * spec.outputElems(), seqMm, epilogue);
    }, /*grain=*/1);
}

void
GemmInParallelEngine::backwardData(const ConvSpec &spec, const Tensor &eo,
                                   const Tensor &weights, Tensor &ei,
                                   ThreadPool &pool,
                                   const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "gemm-in-parallel BP-data");
    checkBackwardShapes(spec, eo, weights, ei);
    std::int64_t batch = eo.shape()[0];
    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        std::int64_t off = b * spec.outputElems();
        const float *eo_b =
            stagedMaskedEo(spec, eo.data() + off, off, mask);
        backwardDataImage(spec, eo_b, weights.data(),
                          ei.data() + b * spec.inputElems(), seqMm);
    }, /*grain=*/1);
}

void
GemmInParallelEngine::backwardWeights(const ConvSpec &spec,
                                      const Tensor &eo, const Tensor &in,
                                      Tensor &dweights, ThreadPool &pool,
                                      const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "gemm-in-parallel BP-weights");
    std::int64_t batch = eo.shape()[0];
    std::int64_t w_count = spec.weightElems();

    // Each worker accumulates into a private gradient slab; the slabs
    // are summed into dweights afterwards. The slabs live in reusable
    // per-engine scratch and each worker zeroes its own slab on first
    // touch, so steady-state minibatches neither allocate nor
    // zero-fill slabs of idle workers.
    int workers = pool.threads();
    std::size_t total =
        static_cast<std::size_t>(workers) * w_count;
    if (partialDw_.size() < total)
        partialDw_ = AlignedBuffer<float>(kUninit, total);
    partialUsed_.assign(workers, 0);
    pool.parallelForDynamic(batch, [&](std::int64_t b, int worker) {
        float *dw = partialDw_.data() + worker * w_count;
        if (!partialUsed_[worker]) {
            std::memset(dw, 0, sizeof(float) * w_count);
            partialUsed_[worker] = 1;
        }
        std::int64_t off = b * spec.outputElems();
        const float *eo_b =
            stagedMaskedEo(spec, eo.data() + off, off, mask);
        backwardWeightsImage(spec, eo_b,
                             in.data() + b * spec.inputElems(), dw,
                             seqMm);
    }, /*grain=*/1);

    dweights.zero();
    for (int w = 0; w < workers; ++w) {
        if (!partialUsed_[w])
            continue;
        const float *src = partialDw_.data() + w * w_count;
        float *dst = dweights.data();
        for (std::int64_t i = 0; i < w_count; ++i)
            dst[i] += src[i];
    }
}

} // namespace spg
