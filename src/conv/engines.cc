#include "conv/engines.hh"

namespace spg {

std::vector<std::unique_ptr<ConvEngine>>
makeAllEngines()
{
    std::vector<std::unique_ptr<ConvEngine>> engines;
    engines.push_back(std::make_unique<UnfoldGemmEngine>());
    engines.push_back(std::make_unique<GemmInParallelEngine>());
    engines.push_back(std::make_unique<UnfoldGemmPackedEngine>());
    engines.push_back(std::make_unique<GemmInParallelPackedEngine>());
    engines.push_back(std::make_unique<StencilEngine>());
    engines.push_back(std::make_unique<DirectEngine>());
    engines.push_back(std::make_unique<SparseBpEngine>());
    engines.push_back(std::make_unique<SparseBpCachedEngine>());
    return engines;
}

std::vector<std::unique_ptr<ConvEngine>>
makeExtendedEngines()
{
    auto engines = makeAllEngines();
    engines.push_back(std::make_unique<SparseWeightsFpEngine>());
    engines.push_back(std::make_unique<SparseDirectFpEngine>());
    engines.push_back(std::make_unique<FftConvEngine>());
    engines.push_back(std::make_unique<WinogradEngine>());
    return engines;
}

std::unique_ptr<ConvEngine>
makeEngine(const std::string &name)
{
    if (name == "reference")
        return std::make_unique<ReferenceEngine>();
    if (name == "parallel-gemm")
        return std::make_unique<UnfoldGemmEngine>();
    if (name == "gemm-in-parallel")
        return std::make_unique<GemmInParallelEngine>();
    if (name == "parallel-gemm-packed")
        return std::make_unique<UnfoldGemmPackedEngine>();
    if (name == "gemm-in-parallel-packed")
        return std::make_unique<GemmInParallelPackedEngine>();
    if (name == "stencil")
        return std::make_unique<StencilEngine>();
    if (name == "direct")
        return std::make_unique<DirectEngine>();
    if (name == "sparse")
        return std::make_unique<SparseBpEngine>();
    if (name == "sparse-cached")
        return std::make_unique<SparseBpCachedEngine>();
    if (name == "sparse-weights")
        return std::make_unique<SparseWeightsFpEngine>();
    if (name == "sparse-weights-direct")
        return std::make_unique<SparseDirectFpEngine>();
    if (name == "fft")
        return std::make_unique<FftConvEngine>();
    if (name == "winograd")
        return std::make_unique<WinogradEngine>();
    return nullptr;
}

} // namespace spg
