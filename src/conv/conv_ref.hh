/**
 * @file
 * Reference (naive loop-nest) convolution implementations.
 *
 * These implement Eq. 2 (forward), Eq. 3 (error back-propagation) and
 * Eq. 4 (weight gradient) of the paper directly. They are the
 * correctness oracle for every optimized engine and are never used on
 * a hot path.
 *
 * Single-image layouts (all row-major):
 *   input  I  : [Nc][Ny][Nx]
 *   weights W : [Nf][Nc][Fy][Fx]
 *   output O  : [Nf][Oy][Ox]
 */

#ifndef SPG_CONV_CONV_REF_HH
#define SPG_CONV_CONV_REF_HH

#include "conv/conv_spec.hh"

namespace spg {

/**
 * Forward propagation, Eq. 2:
 * O[f,y,x] = sum_{c,ky,kx} I[c, y*sy+ky, x*sx+kx] * W[f,c,ky,kx].
 * O is overwritten.
 */
void convForwardRef(const ConvSpec &spec, const float *in,
                    const float *weights, float *out);

/**
 * Backward data, Eq. 3: error gradient w.r.t. the input.
 * EI[c,y,x] = sum_{f,ky,kx : valid} EO[f,(y-ky)/sy,(x-kx)/sx]
 *             * W[f,c,ky,kx], summing only terms where the division is
 * exact and in range. EI is overwritten.
 */
void convBackwardDataRef(const ConvSpec &spec, const float *eo,
                         const float *weights, float *ei);

/**
 * Backward weights, Eq. 4: weight gradient.
 * dW[f,c,ky,kx] = sum_{y,x} EO[f,y,x] * I[c, y*sy+ky, x*sx+kx].
 * dW is ACCUMULATED into (callers zero it before the first image so
 * multi-image batches can sum their contributions).
 */
void convBackwardWeightsRef(const ConvSpec &spec, const float *eo,
                            const float *in, float *dweights);

} // namespace spg

#endif // SPG_CONV_CONV_REF_HH
