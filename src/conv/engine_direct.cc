#include "conv/engine_direct.hh"

#include <algorithm>
#include <cstring>

#include "conv/conv_ref.hh"
#include "conv/direct_block.hh"
#include "conv/scratch.hh"
#include "tensor/blocked.hh"
#include "util/logging.hh"

namespace spg {

namespace {

constexpr std::int64_t kCB = kChannelBlock;

/** Satellite contract: blocked slabs handed to the register-tiled
 *  loops are 64-byte aligned. Checked under sanitized builds where the
 *  extra branch is free relative to the poisoning overhead. */
inline void
assertBlockedAlignment(const void *p, const char *what)
{
#ifdef SPG_SANITIZE_BUILD
    if ((reinterpret_cast<std::uintptr_t>(p) & 63u) != 0)
        panic("direct engine: %s is not 64-byte aligned (%p)", what, p);
#else
    (void)p;
    (void)what;
#endif
}

/** Validate one activation operand that may be blocked or plain. */
void
checkActivation(const ConvSpec &spec, const Tensor &t,
                std::int64_t batch, std::int64_t channels,
                std::int64_t ny, std::int64_t nx, const char *what)
{
    if (t.layout().blocked()) {
        if (t.layout().block != kCB ||
            t.layout().channels != channels ||
            t.shape() != nchwcShape(batch, channels, ny, nx)) {
            panic("direct %s: blocked shape %s/%s does not match conv "
                  "%s",
                  what, t.shape().str().c_str(),
                  t.layout().str().c_str(), spec.str().c_str());
        }
        assertBlockedAlignment(t.data(), what);
    } else if (t.shape() != Shape{batch, channels, ny, nx}) {
        panic("direct %s: shape %s does not match conv %s", what,
              t.shape().str().c_str(), spec.str().c_str());
    }
}

void
checkWeights(const ConvSpec &spec, const Tensor &w)
{
    if (w.layout().blocked() ||
        w.shape() != Shape{spec.nf, spec.nc, spec.fy, spec.fx})
        panic("direct weights: shape %s/%s does not match conv %s",
              w.shape().str().c_str(), w.layout().str().c_str(),
              spec.str().c_str());
}

/** Rows per task so each (image, block) group splits into enough
 *  chunks to keep the pool busy. Chunking never changes values — each
 *  row is computed independently — so it is free to depend on the pool
 *  size. */
std::int64_t
rowChunk(std::int64_t rows, std::int64_t groups, int threads)
{
    const std::int64_t want = std::max<std::int64_t>(
        1,
        (static_cast<std::int64_t>(threads) * 8 + groups - 1) / groups);
    return std::max<std::int64_t>(1, (rows + want - 1) / want);
}

#if defined(__AVX2__) && defined(__FMA__)

/** In-place epilogue over one blocked output row; the byte mask is
 *  indexed by NCHW flat offsets, so lanes walk their logical planes. */
void
applyEpilogueBlockedRow(const Epilogue &ep, float *row,
                        std::int64_t mask_row_off, std::int64_t plane,
                        std::int64_t ox, std::int64_t klive)
{
    for (std::int64_t ki = 0; ki < klive; ++ki) {
        if (ep.kind == Epilogue::Kind::ReluMask) {
            std::uint8_t *m = ep.mask + mask_row_off + ki * plane;
            for (std::int64_t x = 0; x < ox; ++x) {
                float v = row[x * kCB + ki];
                bool live = v > 0.0f;
                m[x] = live ? 1 : 0;
                row[x * kCB + ki] = live ? v : 0.0f;
            }
        } else {
            for (std::int64_t x = 0; x < ox; ++x) {
                float v = row[x * kCB + ki];
                row[x * kCB + ki] = v > 0.0f ? v : 0.0f;
            }
        }
    }
}

#ifdef SPG_DIRECT_AVX512

/** packWeightBlockKcrsck with an exact float->double widening fused
 *  into the gather, feeding the zmm FP tiles. */
void
packWeightBlockKcrsckD(const float *w, double *dst, std::int64_t nf,
                       std::int64_t nc, std::int64_t fy, std::int64_t fx,
                       std::int64_t kb, std::int64_t cb)
{
    const std::int64_t taps = fy * fx;
    const std::int64_t cbn = blockCount(nc);
    const std::int64_t klive = std::min(kCB, nf - kb * kCB);
    const std::int64_t clive = std::min(kCB, nc - cb * kCB);
    double *dblk = dst + (kb * cbn + cb) * taps * kCB * kCB;
    std::memset(dblk, 0,
                static_cast<std::size_t>(taps * kCB * kCB) *
                    sizeof(double));
    for (std::int64_t ci = 0; ci < clive; ++ci) {
        // 8 taps x 8 ko at a time: after the transpose each vector
        // holds one tap's 8 output features, which is exactly the
        // contiguous [ci*8 .. ci*8+8) run of the destination tap row.
        std::int64_t t0 = 0;
        for (; t0 + 8 <= taps; t0 += 8) {
            __m256 r[8];
            for (std::int64_t ko = 0; ko < 8; ++ko)
                r[ko] =
                    ko < klive
                        ? _mm256_loadu_ps(
                              w +
                              ((kb * kCB + ko) * nc + cb * kCB + ci) *
                                  taps +
                              t0)
                        : _mm256_setzero_ps();
            transpose8x8Ps(r);
            for (std::int64_t j = 0; j < 8; ++j)
                _mm512_storeu_pd(dblk + (t0 + j) * kCB * kCB + ci * kCB,
                                 _mm512_cvtps_pd(r[j]));
        }
        for (std::int64_t ko = 0; ko < klive; ++ko) {
            const float *s =
                w + ((kb * kCB + ko) * nc + cb * kCB + ci) * taps;
            double *d = dblk + ci * kCB + ko;
            for (std::int64_t t = t0; t < taps; ++t)
                d[t * kCB * kCB] = static_cast<double>(s[t]);
        }
    }
}

/** packImageBlockNchwc widened to double (pad lanes zero). */
void
packImageBlockNchwcD(const float *src, double *dst, std::int64_t c,
                     std::int64_t ny, std::int64_t nx, std::int64_t cb)
{
    const std::int64_t plane = ny * nx;
    const std::int64_t live = std::min(kCB, c - cb * kCB);
    const float *group = src + cb * kCB * plane;
    double *d = dst + cb * plane * kCB;
    std::int64_t p = 0;
    for (; p + 8 <= plane; p += 8) {
        __m256 r[8];
        for (std::int64_t ci = 0; ci < 8; ++ci)
            r[ci] = ci < live ? _mm256_loadu_ps(group + ci * plane + p)
                              : _mm256_setzero_ps();
        transpose8x8Ps(r);
        for (std::int64_t j = 0; j < 8; ++j)
            _mm512_storeu_pd(d + (p + j) * 8, _mm512_cvtps_pd(r[j]));
    }
    for (; p < plane; ++p) {
        double *dp = d + p * kCB;
        std::int64_t ci = 0;
        for (; ci < live; ++ci)
            dp[ci] = static_cast<double>(group[ci * plane + p]);
        for (; ci < kCB; ++ci)
            dp[ci] = 0.0;
    }
}

/** BP-data gather weights for a channel-block PAIR: [nf][fy][fx][16]
 *  with lanes 0-7 = block cb0, 8-15 = block cb0+1 (zero when the pair
 *  hangs past nc). */
void
packWeightPairCfrsc(const float *w, float *dst, std::int64_t nf,
                    std::int64_t nc, std::int64_t fy, std::int64_t fx,
                    std::int64_t cb0)
{
    const std::int64_t taps = fy * fx;
    for (std::int64_t f = 0; f < nf; ++f) {
        float *d = dst + f * taps * 16;
        for (std::int64_t t = 0; t < taps; ++t) {
            for (std::int64_t half = 0; half < 2; ++half) {
                const std::int64_t cb = cb0 + half;
                const std::int64_t clive = std::min<std::int64_t>(
                    kCB, std::max<std::int64_t>(0, nc - cb * kCB));
                std::int64_t ci = 0;
                for (; ci < clive; ++ci)
                    d[half * kCB + ci] =
                        w[(f * nc + cb * kCB + ci) * taps + t];
                for (; ci < kCB; ++ci)
                    d[half * kCB + ci] = 0.0f;
            }
            d += 16;
        }
    }
}

#endif // SPG_DIRECT_AVX512

#endif // __AVX2__ && __FMA__

} // namespace

bool
DirectEngine::blockedLayoutSupported()
{
#if defined(__AVX2__) && defined(__FMA__)
    return true;
#else
    return false;
#endif
}

void
DirectEngine::forward(const ConvSpec &spec, const Tensor &in,
                      const Tensor &weights, Tensor &out,
                      ThreadPool &pool, const Epilogue &epilogue) const
{
    const std::int64_t batch = in.shape()[0];
    checkActivation(spec, in, batch, spec.nc, spec.ny, spec.nx, "in");
    checkActivation(spec, out, batch, spec.nf, spec.outY(), spec.outX(),
                    "out");
    checkWeights(spec, weights);

#if defined(__AVX2__) && defined(__FMA__)
    const std::int64_t ny = spec.ny, nx = spec.nx;
    const std::int64_t oyN = spec.outY(), oxN = spec.outX();
    const std::int64_t fy = spec.fy, fx = spec.fx;
    const std::int64_t cbn = blockCount(spec.nc);
    const std::int64_t kbn = blockCount(spec.nf);
    ScratchArena &arena = ScratchArena::forThread();

    const std::int64_t in_img = cbn * ny * nx * kCB;
    const float *wsrc = weights.data();

#ifdef SPG_DIRECT_AVX512
    // Weights -> KCRSck widened to double (per call: weights change
    // every step). The slot is sized in floats, so request 2x.
    const std::size_t w_elems = static_cast<std::size_t>(
        kcrsckShape(spec.nf, spec.nc, fy, fx).elements());
    double *wblk = reinterpret_cast<double *>(
        arena.get(kSlotDirectWeights, 2 * w_elems));
    pool.parallelForDynamic(
        kbn * cbn,
        [&](std::int64_t i, int) {
            packWeightBlockKcrsckD(wsrc, wblk, spec.nf, spec.nc, fy, fx,
                                   i / cbn, i % cbn);
        },
        1);

    // Input -> blocked double. When the producer already wrote NCHWc
    // the gather is elided and only the exact widening pass remains.
    double *inb = reinterpret_cast<double *>(arena.get(
        kSlotDirectIn, static_cast<std::size_t>(2 * batch * in_img)));
    if (in.layout().blocked()) {
        const float *src = in.data();
        const std::int64_t plane = ny * nx * kCB;
        pool.parallelForDynamic(
            batch * cbn,
            [&](std::int64_t i, int) {
                const float *s = src + i * plane;
                double *d = inb + i * plane;
                for (std::int64_t p = 0; p < plane; p += 8)
                    _mm512_storeu_pd(
                        d + p,
                        _mm512_cvtps_pd(_mm256_loadu_ps(s + p)));
            },
            1);
    } else {
        const float *src = in.data();
        pool.parallelForDynamic(
            batch * cbn,
            [&](std::int64_t i, int) {
                packImageBlockNchwcD(
                    src + (i / cbn) * spec.inputElems(),
                    inb + (i / cbn) * in_img, spec.nc, ny, nx, i % cbn);
            },
            1);
    }
    assertBlockedAlignment(inb, "staged input");
#else
    // Weights -> KCRSck (per call: weights change every step).
    float *wblk = arena.get(
        kSlotDirectWeights,
        static_cast<std::size_t>(
            kcrsckShape(spec.nf, spec.nc, fy, fx).elements()));
    pool.parallelForDynamic(
        kbn * cbn,
        [&](std::int64_t i, int) {
            packWeightBlockKcrsck(wsrc, wblk, spec.nf, spec.nc, fy, fx,
                                  kCB, i / cbn, i % cbn);
        },
        1);

    // Input -> blocked (elided when the producer already wrote NCHWc).
    const float *inb;
    if (in.layout().blocked()) {
        inb = in.data();
    } else {
        float *tmp = arena.get(
            kSlotDirectIn, static_cast<std::size_t>(batch * in_img));
        const float *src = in.data();
        pool.parallelForDynamic(
            batch * cbn,
            [&](std::int64_t i, int) {
                packImageBlockNchwc(src + (i / cbn) * spec.inputElems(),
                                    tmp + (i / cbn) * in_img, spec.nc,
                                    ny, nx, kCB, i % cbn);
            },
            1);
        inb = tmp;
    }
    assertBlockedAlignment(inb, "staged input");
#endif

    // Output rows are produced blocked; unpacked unless the consumer
    // negotiated NCHWc.
    const bool out_blocked = out.layout().blocked();
    const std::int64_t out_img = kbn * oyN * oxN * kCB;
    float *outb =
        out_blocked ? out.data()
                    : arena.get(kSlotDirectOut, static_cast<std::size_t>(
                                                    batch * out_img));
    assertBlockedAlignment(outb, "blocked output");

    const std::int64_t chunk = rowChunk(oyN, batch * kbn, pool.threads());
    const std::int64_t chunks = (oyN + chunk - 1) / chunk;
    pool.parallelForDynamic(
        batch * kbn * chunks,
        [&](std::int64_t t, int) {
            const std::int64_t b = t / (kbn * chunks);
            const std::int64_t rem = t % (kbn * chunks);
            const std::int64_t kb = rem / chunks;
            const std::int64_t y0 = (rem % chunks) * chunk;
            const std::int64_t y1 = std::min(oyN, y0 + chunk);
            // double under AVX-512, float otherwise.
            const auto *img = inb + b * in_img;
            const auto *wb = wblk + kb * cbn * fy * fx * kCB * kCB;
            const std::int64_t klive =
                std::min(kCB, spec.nf - kb * kCB);
            for (std::int64_t y = y0; y < y1; ++y) {
                float *row =
                    outb + ((b * kbn + kb) * oyN + y) * oxN * kCB;
                std::int64_t x = 0;
#ifdef SPG_DIRECT_AVX512
                if (spec.sx == 1) {
                    directFpRowZ1(img, wb, cbn, ny, nx, fy, fx,
                                  spec.sy, y, oxN, row);
                    x = oxN;
                } else {
                    for (; x + 12 <= oxN; x += 12)
                        directFpTileZ<12>(img, wb, cbn, ny, nx, fy, fx,
                                          spec.sy, spec.sx, y, x, row);
                    for (; x + 4 <= oxN; x += 4)
                        directFpTileZ<4>(img, wb, cbn, ny, nx, fy, fx,
                                         spec.sy, spec.sx, y, x, row);
                    for (; x < oxN; ++x)
                        directFpTileZ<1>(img, wb, cbn, ny, nx, fy, fx,
                                         spec.sy, spec.sx, y, x, row);
                }
#else
                for (; x + 4 <= oxN; x += 4)
                    directFpTile<4>(img, wb, cbn, ny, nx, fy, fx,
                                    spec.sy, spec.sx, y, x, row);
                for (; x + 2 <= oxN; x += 2)
                    directFpTile<2>(img, wb, cbn, ny, nx, fy, fx,
                                    spec.sy, spec.sx, y, x, row);
                for (; x < oxN; ++x)
                    directFpTile<1>(img, wb, cbn, ny, nx, fy, fx,
                                    spec.sy, spec.sx, y, x, row);
#endif
                if (out_blocked && epilogue.active())
                    applyEpilogueBlockedRow(
                        epilogue, row,
                        ((b * spec.nf + kb * kCB) * oyN + y) * oxN,
                        oyN * oxN, oxN, klive);
            }
        },
        1);

    if (!out_blocked) {
        float *dst = out.data();
        pool.parallelForDynamic(
            batch * kbn,
            [&](std::int64_t i, int) {
                const std::int64_t b = i / kbn, kb = i % kbn;
                const std::int64_t plane = oyN * oxN;
                unpackImageBlockNchwc(outb + b * out_img,
                                      dst + b * spec.outputElems(),
                                      spec.nf, oyN, oxN, kCB, kb);
                const std::int64_t klive =
                    std::min(kCB, spec.nf - kb * kCB);
                for (std::int64_t ko = 0; ko < klive; ++ko) {
                    const std::int64_t off =
                        (b * spec.nf + kb * kCB + ko) * plane;
                    epilogue.apply(dst + off, off, plane);
                }
            },
            1);
    }
#else
    // Portable fallback: reference loop nests parallelized over the
    // batch (bitwise identical to ReferenceEngine).
    const std::int64_t in_stride = spec.inputElems();
    const std::int64_t out_stride = spec.outputElems();
    const float *src = in.data();
    float *dst = out.data();
    const float *wsrc = weights.data();
    pool.parallelForDynamic(
        batch,
        [&](std::int64_t b, int) {
            convForwardRef(spec, src + b * in_stride, wsrc,
                           dst + b * out_stride);
            epilogue.apply(dst + b * out_stride, b * out_stride,
                           out_stride);
        },
        1);
#endif
}

void
DirectEngine::backwardData(const ConvSpec &spec, const Tensor &eo,
                           const Tensor &weights, Tensor &ei,
                           ThreadPool &pool, const BpMask &mask) const
{
    const std::int64_t batch = eo.shape()[0];
    // Error tensors are never blocked: layout negotiation applies to
    // forward activations only.
    checkBackwardShapes(spec, eo, weights, ei);

#if defined(__AVX2__) && defined(__FMA__)
    const std::int64_t ny = spec.ny, nx = spec.nx;
    const std::int64_t oyN = spec.outY(), oxN = spec.outX();
    const std::int64_t fy = spec.fy, fx = spec.fx;
    const std::int64_t nf = spec.nf;
    const std::int64_t taps = fy * fx;
    const std::int64_t cbn = blockCount(spec.nc);
    ScratchArena &arena = ScratchArena::forThread();

    const float *wsrc = weights.data();
#ifdef SPG_DIRECT_AVX512
    // zmm path (stride 1): gather weights for channel-block PAIRS,
    // [C/16][K][Fy][Fx][16]. Strided pixels keep the 8-wide layout.
    const bool paired = spec.sy == 1 && spec.sx == 1;
    const std::int64_t cpn = (cbn + 1) / 2;
    float *wblk;
    if (paired) {
        wblk = arena.get(kSlotDirectWeights, static_cast<std::size_t>(
                                                 cpn * nf * taps * 16));
        pool.parallelForDynamic(
            cpn,
            [&](std::int64_t p, int) {
                packWeightPairCfrsc(wsrc, wblk + p * nf * taps * 16, nf,
                                    spec.nc, fy, fx, p * 2);
            },
            1);
    } else {
        wblk = arena.get(
            kSlotDirectWeights,
            static_cast<std::size_t>(cbn * nf * taps * kCB));
        pool.parallelForDynamic(
            cbn,
            [&](std::int64_t cb, int) {
                packWeightBlockCfrsc(wsrc, wblk, nf, spec.nc, fy, fx,
                                     kCB, cb);
            },
            1);
    }
#else
    // Weights -> BP gather layout [C/8][K][Fy][Fx][8].
    float *wblk = arena.get(
        kSlotDirectWeights,
        static_cast<std::size_t>(cbn * nf * taps * kCB));
    pool.parallelForDynamic(
        cbn,
        [&](std::int64_t cb, int) {
            packWeightBlockCfrsc(wsrc, wblk, nf, spec.nc, fy, fx, kCB,
                                 cb);
        },
        1);
#endif

    // Fused ReLU mask: stage the masked errors once for the whole
    // batch (each plane is then re-read once per channel block).
    const float *eosrc = eo.data();
    if (mask.active()) {
        const std::int64_t plane = oyN * oxN;
        float *tmp = arena.get(
            kSlotDirectIn,
            static_cast<std::size_t>(batch * spec.outputElems()));
        const float *src = eo.data();
        pool.parallelForDynamic(
            batch * nf,
            [&](std::int64_t p, int) {
                mask.stage(src + p * plane, p * plane, plane,
                           tmp + p * plane);
            },
            4);
        eosrc = tmp;
    }

    // The pair path rounds the staging up to an even block count so a
    // half-dead tail pair has a (never unpacked) row to write.
#ifdef SPG_DIRECT_AVX512
    const std::int64_t ei_blocks = paired ? cpn * 2 : cbn;
#else
    const std::int64_t ei_blocks = cbn;
#endif
    const std::int64_t ei_img = ei_blocks * ny * nx * kCB;
    float *eib = arena.get(kSlotDirectOut,
                           static_cast<std::size_t>(batch * ei_img));
    assertBlockedAlignment(eib, "blocked ei staging");

#ifdef SPG_DIRECT_AVX512
    if (paired) {
        const std::int64_t chunk =
            rowChunk(ny, batch * cpn, pool.threads());
        const std::int64_t chunks = (ny + chunk - 1) / chunk;
        pool.parallelForDynamic(
            batch * cpn * chunks,
            [&](std::int64_t t, int) {
                const std::int64_t b = t / (cpn * chunks);
                const std::int64_t rem = t % (cpn * chunks);
                const std::int64_t cp = rem / chunks;
                const std::int64_t y0 = (rem % chunks) * chunk;
                const std::int64_t y1 = std::min(ny, y0 + chunk);
                const float *eo_img = eosrc + b * spec.outputElems();
                const float *wcp = wblk + cp * nf * taps * 16;
                for (std::int64_t iy = y0; iy < y1; ++iy) {
                    float *r0 =
                        eib +
                        ((b * ei_blocks + cp * 2) * ny + iy) * nx * kCB;
                    float *r1 = r0 + ny * nx * kCB;
                    const std::int64_t ky_lo =
                        std::max<std::int64_t>(0, iy - oyN + 1);
                    const std::int64_t ky_hi =
                        std::min<std::int64_t>(fy - 1, iy);
                    const std::int64_t mid0 = fx - 1;
                    const std::int64_t mid1 = oxN;  // exclusive
                    if (mid0 >= mid1) {
                        for (std::int64_t c0 = 0; c0 < nx; c0 += 16)
                            directBpdEdgeZ(
                                eo_img, wcp, nf, oyN, oxN, fy, fx, iy,
                                c0, std::min<std::int64_t>(16, nx - c0),
                                ky_lo, ky_hi, r0, r1);
                        continue;
                    }
                    for (std::int64_t c0 = 0; c0 < mid0; c0 += 16)
                        directBpdEdgeZ(
                            eo_img, wcp, nf, oyN, oxN, fy, fx, iy, c0,
                            std::min<std::int64_t>(16, mid0 - c0),
                            ky_lo, ky_hi, r0, r1);
                    directBpdSpanZ(eo_img, wcp, nf, oyN, oxN, fy, fx,
                                   iy, mid0, mid1, ky_lo, ky_hi, r0,
                                   r1);
                    for (std::int64_t c0 = mid1; c0 < nx; c0 += 16)
                        directBpdEdgeZ(
                            eo_img, wcp, nf, oyN, oxN, fy, fx, iy, c0,
                            std::min<std::int64_t>(16, nx - c0), ky_lo,
                            ky_hi, r0, r1);
                }
            },
            1);
    } else
#endif
    {
    const std::int64_t chunk = rowChunk(ny, batch * cbn, pool.threads());
    const std::int64_t chunks = (ny + chunk - 1) / chunk;
    pool.parallelForDynamic(
        batch * cbn * chunks,
        [&](std::int64_t t, int) {
            const std::int64_t b = t / (cbn * chunks);
            const std::int64_t rem = t % (cbn * chunks);
            const std::int64_t cb = rem / chunks;
            const std::int64_t y0 = (rem % chunks) * chunk;
            const std::int64_t y1 = std::min(ny, y0 + chunk);
            const float *eo_img = eosrc + b * spec.outputElems();
            const float *wcb = wblk + cb * nf * taps * kCB;
            for (std::int64_t iy = y0; iy < y1; ++iy) {
                float *ei_row =
                    eib + ((b * cbn + cb) * ny + iy) * nx * kCB;
                if (spec.sy == 1 && spec.sx == 1) {
                    const std::int64_t ky_lo =
                        std::max<std::int64_t>(0, iy - oyN + 1);
                    const std::int64_t ky_hi =
                        std::min<std::int64_t>(fy - 1, iy);
                    const std::int64_t mid0 = fx - 1;
                    const std::int64_t mid1 = oxN;  // exclusive
                    if (mid0 >= mid1) {
                        for (std::int64_t ix = 0; ix < nx; ++ix)
                            directBpdPixel(
                                eo_img, wcb, nf, oyN, oxN, fy, fx, iy,
                                ix, ky_lo, ky_hi,
                                std::max<std::int64_t>(0, ix - oxN + 1),
                                std::min<std::int64_t>(fx - 1, ix),
                                ei_row);
                        continue;
                    }
                    for (std::int64_t ix = 0; ix < mid0; ++ix)
                        directBpdPixel(eo_img, wcb, nf, oyN, oxN, fy,
                                       fx, iy, ix, ky_lo, ky_hi, 0, ix,
                                       ei_row);
                    std::int64_t x = mid0;
                    for (; x + 8 <= mid1; x += 8)
                        directBpdTile<8>(eo_img, wcb, nf, oyN, oxN, fy,
                                         fx, iy, x, ky_lo, ky_hi,
                                         ei_row);
                    for (; x + 4 <= mid1; x += 4)
                        directBpdTile<4>(eo_img, wcb, nf, oyN, oxN, fy,
                                         fx, iy, x, ky_lo, ky_hi,
                                         ei_row);
                    for (; x < mid1; ++x)
                        directBpdTile<1>(eo_img, wcb, nf, oyN, oxN, fy,
                                         fx, iy, x, ky_lo, ky_hi,
                                         ei_row);
                    for (std::int64_t ix = mid1; ix < nx; ++ix)
                        directBpdPixel(eo_img, wcb, nf, oyN, oxN, fy,
                                       fx, iy, ix, ky_lo, ky_hi,
                                       ix - oxN + 1, fx - 1, ei_row);
                } else {
                    for (std::int64_t ix = 0; ix < nx; ++ix)
                        directBpdPixelStrided(eo_img, wcb, nf, oyN,
                                              oxN, fy, fx, spec.sy,
                                              spec.sx, iy, ix, ei_row);
                }
            }
        },
        1);
    }

    float *dst = ei.data();
    pool.parallelForDynamic(
        batch * cbn,
        [&](std::int64_t i, int) {
            unpackImageBlockNchwc(eib + (i / cbn) * ei_img,
                                  dst + (i / cbn) * spec.inputElems(),
                                  spec.nc, ny, nx, kCB, i % cbn);
        },
        1);
#else
    const std::int64_t eo_stride = spec.outputElems();
    const std::int64_t ei_stride = spec.inputElems();
    const float *src = eo.data();
    float *dst = ei.data();
    const float *wsrc = weights.data();
    pool.parallelForDynamic(
        batch,
        [&](std::int64_t b, int) {
            const float *eo_b = stagedMaskedEo(
                spec, src + b * eo_stride, b * eo_stride, mask);
            convBackwardDataRef(spec, eo_b, wsrc, dst + b * ei_stride);
        },
        1);
#endif
}

void
DirectEngine::backwardWeights(const ConvSpec &spec, const Tensor &eo,
                              const Tensor &in, Tensor &dweights,
                              ThreadPool &pool, const BpMask &mask) const
{
    const std::int64_t batch = eo.shape()[0];
    checkActivation(spec, in, batch, spec.nc, spec.ny, spec.nx, "in");
    if (eo.layout().blocked() ||
        eo.shape() != Shape{batch, spec.nf, spec.outY(), spec.outX()})
        panic("direct eo: shape %s does not match conv %s",
              eo.shape().str().c_str(), spec.str().c_str());
    checkWeights(spec, dweights);

#if defined(__AVX2__) && defined(__FMA__)
    const std::int64_t ny = spec.ny, nx = spec.nx;
    const std::int64_t oyN = spec.outY(), oxN = spec.outX();
    const std::int64_t fy = spec.fy, fx = spec.fx;
    const std::int64_t nf = spec.nf, nc = spec.nc;
    const std::int64_t cbn = blockCount(nc), kbn = blockCount(nf);
    ScratchArena &arena = ScratchArena::forThread();

    // Errors -> blocked [B][K/8][Oy][Ox][8] with the fused ReLU mask
    // applied during the pack (pad lanes zero, so they contribute
    // nothing to the pad rows of the gradient tiles).
    const std::int64_t plane = oyN * oxN;
    const float *eop = eo.data();
    const bool in_blocked = in.layout().blocked();
    const float *inp = in.data();
    float *dwp = dweights.data();

#ifdef SPG_DIRECT_AVX512
    // Feature-block PAIRS: [B][K/16][Oy][Ox][16ko] staged errors feed
    // full-zmm gradient tiles; a half-dead tail pair stages zeros in
    // lanes 8-15, which accumulate nothing the unpack would read.
    const std::int64_t kpn = (kbn + 1) / 2;
    const std::int64_t eo_img = kpn * plane * 16;
    float *eob = arena.get(kSlotDirectIn,
                           static_cast<std::size_t>(batch * eo_img));
    pool.parallelForDynamic(
        batch * kpn,
        [&](std::int64_t i, int) {
            const std::int64_t b = i / kpn, kp = i % kpn;
            const std::int64_t klive =
                std::min<std::int64_t>(16, nf - kp * 16);
            const std::int64_t base = (b * nf + kp * 16) * plane;
            const float *src = eop + base;
            float *dst = eob + b * eo_img + kp * plane * 16;
            for (std::int64_t p = 0; p < plane; ++p) {
                std::int64_t ki = 0;
                for (; ki < klive; ++ki) {
                    float v = src[ki * plane + p];
                    if (mask.active())
                        v = mask.mask[base + ki * plane + p] ? v : 0.0f;
                    dst[p * 16 + ki] = v;
                }
                for (; ki < 16; ++ki)
                    dst[p * 16 + ki] = 0.0f;
            }
        },
        1);
    assertBlockedAlignment(eob, "blocked eo staging");

    pool.parallelForDynamic(
        kpn * cbn * fy,
        [&](std::int64_t t, int) {
            const std::int64_t kp = t / (cbn * fy);
            const std::int64_t rem = t % (cbn * fy);
            const std::int64_t cb = rem / fy;
            const std::int64_t ky = rem % fy;
            const std::int64_t klive =
                std::min<std::int64_t>(16, nf - kp * 16);
            const std::int64_t clive = std::min(kCB, nc - cb * kCB);
            float *dwbuf = ScratchArena::forThread().get(
                kSlotDirectDw, static_cast<std::size_t>(fx * kCB * 16));
            std::memset(dwbuf, 0,
                        static_cast<std::size_t>(fx * kCB * 16) *
                            sizeof(float));
            for (std::int64_t b = 0; b < batch; ++b) {
                const float *eo_blk = eob + b * eo_img + kp * plane * 16;
                const float *base;
                std::int64_t row_stride, x_stride, c_stride;
                if (in_blocked) {
                    base = inp + (b * cbn + cb) * ny * nx * kCB;
                    row_stride = nx * kCB;
                    x_stride = kCB;
                    c_stride = 1;
                } else {
                    base = inp + (b * nc + cb * kCB) * ny * nx;
                    row_stride = nx;
                    x_stride = 1;
                    c_stride = ny * nx;
                }
                directBpwRowZ<4>(eo_blk, base, row_stride, x_stride,
                                 c_stride, oyN, oxN, fx, spec.sy,
                                 spec.sx, ky, clive, dwbuf);
            }
            for (std::int64_t ko = 0; ko < klive; ++ko)
                for (std::int64_t ci = 0; ci < clive; ++ci) {
                    float *d =
                        dwp +
                        (((kp * 16 + ko) * nc + cb * kCB + ci) * fy +
                         ky) *
                            fx;
                    for (std::int64_t kx = 0; kx < fx; ++kx)
                        d[kx] = dwbuf[(kx * kCB + ci) * 16 + ko];
                }
        },
        1);
#else
    const std::int64_t eo_img = kbn * plane * kCB;
    float *eob = arena.get(kSlotDirectIn,
                           static_cast<std::size_t>(batch * eo_img));
    pool.parallelForDynamic(
        batch * kbn,
        [&](std::int64_t i, int) {
            const std::int64_t b = i / kbn, kb = i % kbn;
            const std::int64_t klive = std::min(kCB, nf - kb * kCB);
            const std::int64_t base = (b * nf + kb * kCB) * plane;
            const float *src = eop + base;
            float *dst = eob + b * eo_img + kb * plane * kCB;
            for (std::int64_t p = 0; p < plane; ++p) {
                std::int64_t ki = 0;
                for (; ki < klive; ++ki) {
                    float v = src[ki * plane + p];
                    if (mask.active())
                        v = mask.mask[base + ki * plane + p] ? v : 0.0f;
                    dst[p * kCB + ki] = v;
                }
                for (; ki < kCB; ++ki)
                    dst[p * kCB + ki] = 0.0f;
            }
        },
        1);
    assertBlockedAlignment(eob, "blocked eo staging");

    pool.parallelForDynamic(
        kbn * cbn * fy,
        [&](std::int64_t t, int) {
            const std::int64_t kb = t / (cbn * fy);
            const std::int64_t rem = t % (cbn * fy);
            const std::int64_t cb = rem / fy;
            const std::int64_t ky = rem % fy;
            const std::int64_t klive = std::min(kCB, nf - kb * kCB);
            const std::int64_t clive = std::min(kCB, nc - cb * kCB);
            float *dwbuf = ScratchArena::forThread().get(
                kSlotDirectDw,
                static_cast<std::size_t>(fx * kCB * kCB));
            std::memset(dwbuf, 0,
                        static_cast<std::size_t>(fx * kCB * kCB) *
                            sizeof(float));
            for (std::int64_t b = 0; b < batch; ++b) {
                const float *eo_blk =
                    eob + b * eo_img + kb * plane * kCB;
                const float *base;
                std::int64_t row_stride, x_stride, c_stride;
                if (in_blocked) {
                    base = inp + (b * cbn + cb) * ny * nx * kCB;
                    row_stride = nx * kCB;
                    x_stride = kCB;
                    c_stride = 1;
                } else {
                    base = inp + (b * nc + cb * kCB) * ny * nx;
                    row_stride = nx;
                    x_stride = 1;
                    c_stride = ny * nx;
                }
                directBpwRow<4>(eo_blk, base, row_stride, x_stride,
                                c_stride, oyN, oxN, fx, spec.sy,
                                spec.sx, ky, clive, dwbuf);
            }
            for (std::int64_t ko = 0; ko < klive; ++ko)
                for (std::int64_t ci = 0; ci < clive; ++ci) {
                    float *d =
                        dwp +
                        (((kb * kCB + ko) * nc + cb * kCB + ci) * fy +
                         ky) *
                            fx;
                    for (std::int64_t kx = 0; kx < fx; ++kx)
                        d[kx] = dwbuf[(kx * kCB + ci) * kCB + ko];
                }
        },
        1);
#endif
#else
    // Serial over the batch: the reference accumulates image
    // contributions in order into the shared gradient.
    const std::int64_t eo_stride = spec.outputElems();
    const std::int64_t in_stride = spec.inputElems();
    dweights.zero();
    for (std::int64_t b = 0; b < batch; ++b) {
        const float *eo_b = stagedMaskedEo(
            spec, eo.data() + b * eo_stride, b * eo_stride, mask);
        convBackwardWeightsRef(spec, eo_b, in.data() + b * in_stride,
                               dweights.data());
    }
    (void)pool;
#endif
}

} // namespace spg
