/**
 * @file
 * Sparse-Kernel back-propagation engine (paper §4.2).
 *
 * Exploits the (ReLU-induced) sparsity of the output-activation errors
 * EO to raise BP goodput. The computation is performed in place,
 * without unfolding, as a composition of small dense MMs via the
 * paper's POINTER SHIFTING technique:
 *
 *  - data layout: EO is transformed feature-fastest ([y'][x'][f]),
 *    the weights channel-fastest ([ky][kx][f][c]) and the outputs
 *    channel-fastest, so the basic block (Fig. 5b)
 *
 *        S'[c] = sum_f E'O[f] * W'[f, c]
 *
 *    vectorizes along channels: every non-zero E'O[f] is an AXPY of
 *    the contiguous weight row W'[f, :] into a contiguous output
 *    vector;
 *
 *  - for each non-zero error at (y', x'), the SAME non-zero list is
 *    replayed for every kernel coordinate (ky, kx); only the output
 *    pointer shifts, to EI[y'*sy + ky, x'*sx + kx, :] (Eq. 15) —
 *    composing the sparse convolution from Fy*Fx small dense MMs
 *    without unrolling them;
 *
 *  - EO is stored in Column-Tiled CSR (rows = spatial positions,
 *    columns = features, tiled along features) so that the weight
 *    slice a feature band touches stays cache-resident and row walks
 *    stay TLB-friendly (Fig. 5a).
 *
 * All data-layout transformation and CT-CSR construction costs are
 * inside the engine, as in the paper's measurements.
 */

#ifndef SPG_CONV_ENGINE_SPARSE_HH
#define SPG_CONV_ENGINE_SPARSE_HH

#include "conv/engine.hh"
#include "util/aligned.hh"

namespace spg {

/** Sparsity-exploiting BP engine. */
class SparseBpEngine : public ConvEngine
{
  public:
    /**
     * @param feature_tile CT-CSR column (feature) tile width; 0 picks
     *        the default. The ablation bench passes the full feature
     *        count to degrade CT-CSR to plain CSR.
     */
    explicit SparseBpEngine(std::int64_t feature_tile = 0)
        : featureTile(feature_tile)
    {}

    using ConvEngine::backwardData;
    using ConvEngine::backwardWeights;

    std::string name() const override { return "sparse"; }
    bool supports(Phase phase) const override
    {
        return phase == Phase::BackwardData ||
               phase == Phase::BackwardWeights;
    }

    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei, ThreadPool &pool,
                      const BpMask &mask) const override;
    void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                         const Tensor &in, Tensor &dweights,
                         ThreadPool &pool,
                         const BpMask &mask) const override;

    /** @return the feature tile width used for the given Nf. */
    std::int64_t effectiveFeatureTile(std::int64_t nf) const;

  protected:
    /**
     * BP-weights shared tail: per-worker private dW' slabs in
     * [ky][kx][f][c] layout, reused across calls (workers zero their
     * own slab on first touch). reducePartials sums the used slabs
     * into dst with the vectorized axpy.
     */
    float *acquirePartials(int workers, std::int64_t w_count) const;
    bool claimWorkerSlab(int worker) const;
    void reducePartials(int workers, std::int64_t w_count,
                        float *dst) const;

    std::int64_t featureTile;

  private:
    mutable AlignedBuffer<float> partialDw_;
    mutable std::vector<unsigned char> partialUsed_;
};

/**
 * Encode-once variant of the sparse BP engine (the "fast path" of the
 * goodput axis): the error gradients are compressed to CT-CSR ONCE per
 * minibatch via SparsePlanCache — with the fused CtCsrMatrix::fromChw
 * builder, so the dense HWC staging transpose is never written — and
 * BP-data and BP-weights replay the same shared read-only plan.
 * Results are bit-for-bit identical to SparseBpEngine (same non-zero
 * replay order).
 */
class SparseBpCachedEngine : public SparseBpEngine
{
  public:
    explicit SparseBpCachedEngine(std::int64_t feature_tile = 0)
        : SparseBpEngine(feature_tile)
    {}

    using SparseBpEngine::backwardData;
    using SparseBpEngine::backwardWeights;

    std::string name() const override { return "sparse-cached"; }

    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei, ThreadPool &pool,
                      const BpMask &mask) const override;
    void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                         const Tensor &in, Tensor &dweights,
                         ThreadPool &pool,
                         const BpMask &mask) const override;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_SPARSE_HH
