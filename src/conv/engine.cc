#include "conv/engine.hh"

#include "util/logging.hh"

#include "conv/conv_ref.hh"
#include "conv/scratch.hh"

namespace spg {

const float *
stagedMaskedEo(const ConvSpec &spec, const float *eo,
               std::int64_t eo_offset, const BpMask &mask)
{
    if (!mask.active())
        return eo;
    std::int64_t count = spec.outputElems();
    float *staged = ScratchArena::forThread().get(
        kSlotMaskedEo, static_cast<std::size_t>(count));
    mask.stage(eo, eo_offset, count, staged);
    return staged;
}

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Forward:
        return "FP";
      case Phase::BackwardData:
        return "BP-data";
      case Phase::BackwardWeights:
        return "BP-weights";
    }
    return "?";
}

void
ConvEngine::forward(const ConvSpec &, const Tensor &, const Tensor &,
                    Tensor &, ThreadPool &, const Epilogue &) const
{
    panic("engine '%s' does not implement forward()", name().c_str());
}

void
ConvEngine::backwardData(const ConvSpec &, const Tensor &, const Tensor &,
                         Tensor &, ThreadPool &, const BpMask &) const
{
    panic("engine '%s' does not implement backwardData()", name().c_str());
}

void
ConvEngine::backwardWeights(const ConvSpec &, const Tensor &,
                            const Tensor &, Tensor &, ThreadPool &,
                            const BpMask &) const
{
    panic("engine '%s' does not implement backwardWeights()",
          name().c_str());
}

void
ConvEngine::checkForwardShapes(const ConvSpec &spec, const Tensor &in,
                               const Tensor &weights, const Tensor &out)
{
    Shape in_want{in.shape()[0], spec.nc, spec.ny, spec.nx};
    Shape w_want{spec.nf, spec.nc, spec.fy, spec.fx};
    Shape out_want{in.shape()[0], spec.nf, spec.outY(), spec.outX()};
    if (in.shape() != in_want || weights.shape() != w_want ||
        out.shape() != out_want) {
        panic("forward shape mismatch for conv %s: in=%s w=%s out=%s",
              spec.str().c_str(), in.shape().str().c_str(),
              weights.shape().str().c_str(), out.shape().str().c_str());
    }
}

void
ConvEngine::checkBackwardShapes(const ConvSpec &spec, const Tensor &eo,
                                const Tensor &weights, const Tensor &ei)
{
    Shape eo_want{eo.shape()[0], spec.nf, spec.outY(), spec.outX()};
    Shape w_want{spec.nf, spec.nc, spec.fy, spec.fx};
    Shape ei_want{eo.shape()[0], spec.nc, spec.ny, spec.nx};
    if (eo.shape() != eo_want || weights.shape() != w_want ||
        ei.shape() != ei_want) {
        panic("backward shape mismatch for conv %s: eo=%s w=%s ei=%s",
              spec.str().c_str(), eo.shape().str().c_str(),
              weights.shape().str().c_str(), ei.shape().str().c_str());
    }
}

void
ReferenceEngine::forward(const ConvSpec &spec, const Tensor &in,
                         const Tensor &weights, Tensor &out, ThreadPool &,
                         const Epilogue &epilogue) const
{
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    std::int64_t in_stride = spec.inputElems();
    std::int64_t out_stride = spec.outputElems();
    for (std::int64_t b = 0; b < batch; ++b) {
        float *out_b = out.data() + b * out_stride;
        convForwardRef(spec, in.data() + b * in_stride, weights.data(),
                       out_b);
        epilogue.apply(out_b, b * out_stride, out_stride);
    }
}

void
ReferenceEngine::backwardData(const ConvSpec &spec, const Tensor &eo,
                              const Tensor &weights, Tensor &ei,
                              ThreadPool &, const BpMask &mask) const
{
    checkBackwardShapes(spec, eo, weights, ei);
    std::int64_t batch = eo.shape()[0];
    std::int64_t eo_stride = spec.outputElems();
    std::int64_t ei_stride = spec.inputElems();
    // The oracle favors clarity: a full masked copy, not a fused read.
    Tensor masked_eo;
    const float *eo_data = eo.data();
    if (mask.active()) {
        masked_eo = Tensor::uninitialized(eo.shape());
        mask.stage(eo.data(), 0, eo.size(), masked_eo.data());
        eo_data = masked_eo.data();
    }
    for (std::int64_t b = 0; b < batch; ++b) {
        convBackwardDataRef(spec, eo_data + b * eo_stride, weights.data(),
                            ei.data() + b * ei_stride);
    }
}

void
ReferenceEngine::backwardWeights(const ConvSpec &spec, const Tensor &eo,
                                 const Tensor &in, Tensor &dweights,
                                 ThreadPool &, const BpMask &mask) const
{
    std::int64_t batch = eo.shape()[0];
    std::int64_t eo_stride = spec.outputElems();
    std::int64_t in_stride = spec.inputElems();
    Tensor masked_eo;
    const float *eo_data = eo.data();
    if (mask.active()) {
        masked_eo = Tensor::uninitialized(eo.shape());
        mask.stage(eo.data(), 0, eo.size(), masked_eo.data());
        eo_data = masked_eo.data();
    }
    dweights.zero();
    for (std::int64_t b = 0; b < batch; ++b) {
        convBackwardWeightsRef(spec, eo_data + b * eo_stride,
                               in.data() + b * in_stride,
                               dweights.data());
    }
}

} // namespace spg
