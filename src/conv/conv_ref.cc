#include "conv/conv_ref.hh"

#include <cstring>

namespace spg {

void
convForwardRef(const ConvSpec &spec, const float *in, const float *weights,
               float *out)
{
    std::int64_t oy = spec.outY(), ox = spec.outX();
    for (std::int64_t f = 0; f < spec.nf; ++f) {
        for (std::int64_t y = 0; y < oy; ++y) {
            for (std::int64_t x = 0; x < ox; ++x) {
                double sum = 0.0;
                for (std::int64_t c = 0; c < spec.nc; ++c) {
                    const float *plane = in + c * spec.ny * spec.nx;
                    const float *w = weights +
                        (f * spec.nc + c) * spec.fy * spec.fx;
                    for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
                        const float *row =
                            plane + (y * spec.sy + ky) * spec.nx +
                            x * spec.sx;
                        for (std::int64_t kx = 0; kx < spec.fx; ++kx)
                            sum += static_cast<double>(row[kx]) *
                                   w[ky * spec.fx + kx];
                    }
                }
                out[(f * oy + y) * ox + x] = static_cast<float>(sum);
            }
        }
    }
}

void
convBackwardDataRef(const ConvSpec &spec, const float *eo,
                    const float *weights, float *ei)
{
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::memset(ei, 0, sizeof(float) * spec.nc * spec.ny * spec.nx);
    // Scatter form: every output error element distributes through the
    // weights to the input positions that produced it — equivalent to
    // the gather form of Eq. 3 but simpler to state for strides.
    for (std::int64_t f = 0; f < spec.nf; ++f) {
        for (std::int64_t y = 0; y < oy; ++y) {
            for (std::int64_t x = 0; x < ox; ++x) {
                float e = eo[(f * oy + y) * ox + x];
                if (e == 0.0f)
                    continue;
                for (std::int64_t c = 0; c < spec.nc; ++c) {
                    float *plane = ei + c * spec.ny * spec.nx;
                    const float *w = weights +
                        (f * spec.nc + c) * spec.fy * spec.fx;
                    for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
                        float *row = plane +
                            (y * spec.sy + ky) * spec.nx + x * spec.sx;
                        for (std::int64_t kx = 0; kx < spec.fx; ++kx)
                            row[kx] += e * w[ky * spec.fx + kx];
                    }
                }
            }
        }
    }
}

void
convBackwardWeightsRef(const ConvSpec &spec, const float *eo,
                       const float *in, float *dweights)
{
    std::int64_t oy = spec.outY(), ox = spec.outX();
    for (std::int64_t f = 0; f < spec.nf; ++f) {
        for (std::int64_t y = 0; y < oy; ++y) {
            for (std::int64_t x = 0; x < ox; ++x) {
                float e = eo[(f * oy + y) * ox + x];
                if (e == 0.0f)
                    continue;
                for (std::int64_t c = 0; c < spec.nc; ++c) {
                    const float *plane = in + c * spec.ny * spec.nx;
                    float *dw = dweights +
                        (f * spec.nc + c) * spec.fy * spec.fx;
                    for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
                        const float *row = plane +
                            (y * spec.sy + ky) * spec.nx + x * spec.sx;
                        for (std::int64_t kx = 0; kx < spec.fx; ++kx)
                            dw[ky * spec.fx + kx] += e * row[kx];
                    }
                }
            }
        }
    }
}

} // namespace spg
