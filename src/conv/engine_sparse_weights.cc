#include "conv/engine_sparse_weights.hh"

#include <cstring>

#include "conv/packed_weights.hh"
#include "obs/trace.hh"
#include "sparse/sparse_mm.hh"

namespace spg {

void
SparseWeightsFpEngine::forward(const ConvSpec &spec, const Tensor &in,
                               const Tensor &weights, Tensor &out,
                               ThreadPool &pool,
                               const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "sparse-weights FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();

    // Weights encode once per weight version: the plan is shared with
    // sparse-weights-direct through the persistent PackedWeightCache,
    // so steady-state calls pay a fingerprint pass instead of a CSR
    // rebuild. in_off[p] = c*ny*nx + ky*nx + kx replaces the per-tap
    // (c, ky, kx) decode.
    auto plan =
        PackedWeightCache::global().getSparseConv(weights.data(), spec);
    const float *vals = plan->csr.vals().data();
    const std::int64_t *rptr = plan->csr.rowPtr().data();
    const std::int64_t *offs = plan->in_off.data();

    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        const float *image = in.data() + b * spec.inputElems();
        float *out_image = out.data() + b * spec.outputElems();
        for (std::int64_t f = 0; f < spec.nf; ++f) {
            float *plane = out_image + f * oy * ox;
            std::memset(plane, 0, sizeof(float) * oy * ox);
            for (std::int64_t p = rptr[f]; p < rptr[f + 1]; ++p) {
                float val = vals[p];
                const float *src0 = image + offs[p];
                if (spec.sx == 1) {
                    // Unit stride: one vectorized row-AXPY per output
                    // row; the input pointer just shifts by (ky, kx).
                    for (std::int64_t y = 0; y < oy; ++y) {
                        axpy(ox, val, src0 + y * spec.sy * spec.nx,
                             plane + y * ox);
                    }
                } else {
                    for (std::int64_t y = 0; y < oy; ++y) {
                        const float *src =
                            src0 + y * spec.sy * spec.nx;
                        float *dst = plane + y * ox;
                        for (std::int64_t x = 0; x < ox; ++x)
                            dst[x] += val * src[x * spec.sx];
                    }
                }
            }
            // Plane finished (last tap accumulated): fuse here.
            epilogue.apply(plane,
                           b * spec.outputElems() + f * oy * ox,
                           oy * ox);
        }
    }, /*grain=*/1);
}

} // namespace spg
