#include "conv/engine_sparse_weights.hh"

#include <cstring>

#include "obs/trace.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_mm.hh"

namespace spg {

void
SparseWeightsFpEngine::forward(const ConvSpec &spec, const Tensor &in,
                               const Tensor &weights, Tensor &out,
                               ThreadPool &pool,
                               const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "sparse-weights FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t taps = spec.nc * spec.fy * spec.fx;

    // Compress the weights once per call: row f holds that feature's
    // non-zero taps, column index encodes (c, ky, kx).
    CsrMatrix wcsr = CsrMatrix::fromDense(weights.data(), spec.nf, taps);
    const auto &vals = wcsr.vals();
    const auto &cidx = wcsr.colIdx();
    const auto &rptr = wcsr.rowPtr();

    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        const float *image = in.data() + b * spec.inputElems();
        float *out_image = out.data() + b * spec.outputElems();
        for (std::int64_t f = 0; f < spec.nf; ++f) {
            float *plane = out_image + f * oy * ox;
            std::memset(plane, 0, sizeof(float) * oy * ox);
            for (std::int64_t p = rptr[f]; p < rptr[f + 1]; ++p) {
                float val = vals[p];
                std::int64_t tap = cidx[p];
                std::int64_t c = tap / (spec.fy * spec.fx);
                std::int64_t ky = tap / spec.fx % spec.fy;
                std::int64_t kx = tap % spec.fx;
                const float *iplane = image + c * spec.ny * spec.nx;
                if (spec.sx == 1) {
                    // Unit stride: one vectorized row-AXPY per output
                    // row; the input pointer just shifts by (ky, kx).
                    for (std::int64_t y = 0; y < oy; ++y) {
                        axpy(ox, val,
                             iplane + (y * spec.sy + ky) * spec.nx + kx,
                             plane + y * ox);
                    }
                } else {
                    for (std::int64_t y = 0; y < oy; ++y) {
                        const float *src =
                            iplane + (y * spec.sy + ky) * spec.nx + kx;
                        float *dst = plane + y * ox;
                        for (std::int64_t x = 0; x < ox; ++x)
                            dst[x] += val * src[x * spec.sx];
                    }
                }
            }
            // Plane finished (last tap accumulated): fuse here.
            epilogue.apply(plane,
                           b * spec.outputElems() + f * oy * ox,
                           oy * ox);
        }
    }, /*grain=*/1);
}

} // namespace spg
