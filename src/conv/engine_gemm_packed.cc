#include "conv/engine_gemm_packed.hh"

#include <cstring>

#include "blas/gemm.hh"
#include "conv/packed_weights.hh"
#include "conv/scratch.hh"
#include "conv/unfold.hh"
#include "obs/trace.hh"

namespace spg {

namespace {

/** Fused per-image FP: unfold straight into B panels, then the
 *  fully-packed O = Wpack * U'pack with zero in-loop packing; the
 *  epilogue runs right after, while the output image is hot. */
template <typename PackedMmFn>
void
forwardImagePacked(const ConvSpec &spec, const float *in,
                   const PackedMatrix &wpack, float *out,
                   std::int64_t out_offset, PackedMmFn &&mm,
                   const Epilogue &epilogue)
{
    std::int64_t n = spec.gemmN(), k = spec.gemmK();
    float *panels = ScratchArena::forThread().get(
        kSlotPanelsB, PackedMatrix::panelElemsB(k, n));
    unfoldImageToPanels(spec, in, panels);
    mm(wpack, PackedMatrix::viewB(k, n, panels), out);
    epilogue.apply(out, out_offset, spec.outputElems());
}

} // namespace

// ---------------------------------------------------------------------
// UnfoldGemmPackedEngine: sequential over images, Parallel-GEMM per
// image, packed operands.
// ---------------------------------------------------------------------

void
UnfoldGemmPackedEngine::forward(const ConvSpec &spec, const Tensor &in,
                                const Tensor &weights, Tensor &out,
                                ThreadPool &pool,
                                const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "parallel-gemm-packed FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    std::int64_t n = spec.gemmN();
    auto wpack = PackedWeightCache::global().getA(
        weights.data(), Trans::No, spec.gemmM(), spec.gemmK());
    auto mm = [&pool, n](const PackedMatrix &a, const PackedMatrix &b,
                         float *c) {
        parallelGemmPackedAB(pool, a, b, 0.0f, c, n);
    };
    for (std::int64_t b = 0; b < batch; ++b) {
        forwardImagePacked(spec, in.data() + b * spec.inputElems(),
                           *wpack, out.data() + b * spec.outputElems(),
                           b * spec.outputElems(), mm, epilogue);
    }
}

void
UnfoldGemmPackedEngine::backwardData(const ConvSpec &spec,
                                     const Tensor &eo,
                                     const Tensor &weights, Tensor &ei,
                                     ThreadPool &pool,
                                     const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "parallel-gemm-packed BP-data");
    checkBackwardShapes(spec, eo, weights, ei);
    std::int64_t batch = eo.shape()[0];
    std::int64_t m = spec.gemmK(), n = spec.gemmN();
    // U'grad = W^T * EO: the packed operand is W transposed.
    auto wpack = PackedWeightCache::global().getA(
        weights.data(), Trans::Yes, spec.gemmK(), spec.gemmM());
    for (std::int64_t b = 0; b < batch; ++b) {
        std::int64_t off = b * spec.outputElems();
        const float *eo_b =
            stagedMaskedEo(spec, eo.data() + off, off, mask);
        float *ugrad = ScratchArena::forThread().get(
            kSlotUnfoldGrad, static_cast<std::size_t>(m) * n);
        parallelGemmPackedA(pool, *wpack, Trans::No, n, eo_b, n, 0.0f,
                            ugrad, n);
        float *ei_b = ei.data() + b * spec.inputElems();
        std::memset(ei_b, 0, sizeof(float) * spec.inputElems());
        foldImageAccumulate(spec, ugrad, ei_b);
    }
}

// ---------------------------------------------------------------------
// GemmInParallelPackedEngine: images across cores, each worker runs a
// sequential fully-packed GEMM against the SHARED packed weights.
// ---------------------------------------------------------------------

void
GemmInParallelPackedEngine::forward(const ConvSpec &spec,
                                    const Tensor &in,
                                    const Tensor &weights, Tensor &out,
                                    ThreadPool &pool,
                                    const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "gemm-in-parallel-packed FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    std::int64_t n = spec.gemmN();
    auto wpack = PackedWeightCache::global().getA(
        weights.data(), Trans::No, spec.gemmM(), spec.gemmK());
    auto mm = [n](const PackedMatrix &a, const PackedMatrix &b,
                  float *c) {
        sgemmPackedAB(a, b, 0.0f, c, n);
    };
    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        forwardImagePacked(spec, in.data() + b * spec.inputElems(),
                           *wpack, out.data() + b * spec.outputElems(),
                           b * spec.outputElems(), mm, epilogue);
    }, /*grain=*/1);
}

void
GemmInParallelPackedEngine::backwardData(const ConvSpec &spec,
                                         const Tensor &eo,
                                         const Tensor &weights,
                                         Tensor &ei, ThreadPool &pool,
                                         const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "gemm-in-parallel-packed BP-data");
    checkBackwardShapes(spec, eo, weights, ei);
    std::int64_t batch = eo.shape()[0];
    std::int64_t m = spec.gemmK(), n = spec.gemmN();
    auto wpack = PackedWeightCache::global().getA(
        weights.data(), Trans::Yes, spec.gemmK(), spec.gemmM());
    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        std::int64_t off = b * spec.outputElems();
        const float *eo_b =
            stagedMaskedEo(spec, eo.data() + off, off, mask);
        float *ugrad = ScratchArena::forThread().get(
            kSlotUnfoldGrad, static_cast<std::size_t>(m) * n);
        sgemmPackedA(*wpack, Trans::No, n, eo_b, n, 0.0f, ugrad, n);
        float *ei_b = ei.data() + b * spec.inputElems();
        std::memset(ei_b, 0, sizeof(float) * spec.inputElems());
        foldImageAccumulate(spec, ugrad, ei_b);
    }, /*grain=*/1);
}

} // namespace spg
