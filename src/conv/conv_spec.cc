#include "conv/conv_spec.hh"

#include <cstdio>

#include "util/logging.hh"

namespace spg {

bool
ConvSpec::valid() const
{
    return nx > 0 && ny > 0 && nc > 0 && nf > 0 && fx > 0 && fy > 0 &&
           sx > 0 && sy > 0 && fx <= nx && fy <= ny;
}

void
ConvSpec::validate() const
{
    if (!valid())
        fatal("invalid convolution geometry %s", str().c_str());
}

double
ConvSpec::intrinsicAit() const
{
    double mem = static_cast<double>(inputElems() + weightElems() +
                                     outputElems());
    return static_cast<double>(flops()) / mem;
}

double
ConvSpec::unfoldAit() const
{
    double mem = static_cast<double>(2 * unfoldedElems() + weightElems() +
                                     outputElems());
    return static_cast<double>(flops()) / mem;
}

double
ConvSpec::unfoldRatio() const
{
    double intrinsic_mem = static_cast<double>(inputElems() +
                                               weightElems() +
                                               outputElems());
    double unfold_mem = static_cast<double>(2 * unfoldedElems() +
                                            weightElems() +
                                            outputElems());
    return intrinsic_mem / unfold_mem;
}

std::string
ConvSpec::str() const
{
    char buf[160];
    if (nx == ny && fx == fy && sx == sy) {
        std::snprintf(buf, sizeof(buf),
                      "%lld,%lld,%lld,%lld,%lld",
                      static_cast<long long>(nx),
                      static_cast<long long>(nf),
                      static_cast<long long>(nc),
                      static_cast<long long>(fx),
                      static_cast<long long>(sx));
    } else {
        std::snprintf(buf, sizeof(buf),
                      "%lldx%lld,%lld,%lld,%lldx%lld,%lldx%lld",
                      static_cast<long long>(nx),
                      static_cast<long long>(ny),
                      static_cast<long long>(nf),
                      static_cast<long long>(nc),
                      static_cast<long long>(fx),
                      static_cast<long long>(fy),
                      static_cast<long long>(sx),
                      static_cast<long long>(sy));
    }
    return buf;
}

} // namespace spg
