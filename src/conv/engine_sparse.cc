#include "conv/engine_sparse.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "conv/scratch.hh"
#include "obs/trace.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_mm.hh"
#include "sparse/sparse_plan.hh"
#include "tensor/layout.hh"
#include "util/logging.hh"

namespace spg {

namespace {

/** Default CT-CSR feature tile: big enough to amortize the tile walk,
 *  small enough that the weight band per (ky,kx) stays L2-resident. */
constexpr std::int64_t kDefaultFeatureTile = 64;

/**
 * Replay one image's non-zero error gradients through the
 * pointer-shifting loop for BP-data, accumulating into the
 * channel-fastest input-gradient staging buffer.
 *
 * The weight-row and destination base pointers are hoisted out of the
 * (ky, kx) loops — per non-zero only the feature offset varies — and
 * adjacent kx destinations are register-blocked in pairs via axpy2.
 * The two destinations of a pair are disjoint nc-length vectors and
 * each receives its non-zeros in the same (ascending p) order as the
 * unblocked loop, so results stay bit-for-bit identical.
 *
 * @param spec Layer geometry.
 * @param ct Error gradients as CT-CSR over the (OyOx) x Nf matrix.
 * @param wt Weights channel-fastest, [ky][kx][f][c].
 * @param ei_t Zeroed (Ny*Nx) x Nc channel-fastest staging buffer.
 */
void
replayDataImage(const ConvSpec &spec, const CtCsrMatrix &ct,
                const float *wt, float *ei_t)
{
    std::int64_t ox = spec.outX();
    std::int64_t nc = spec.nc;
    std::int64_t wf_stride = spec.nf * nc;
    std::int64_t dst_pitch = spec.nx * nc;
    for (std::int64_t t = 0; t < ct.tileCount(); ++t) {
        const CsrMatrix &tile = ct.tile(t);
        std::int64_t f0 = ct.tileColOffset(t);
        const auto &vals = tile.vals();
        const auto &cidx = tile.colIdx();
        const auto &rptr = tile.rowPtr();
        for (std::int64_t row = 0; row < tile.rows(); ++row) {
            std::int64_t begin = rptr[row], end = rptr[row + 1];
            if (begin == end)
                continue;
            std::int64_t yp = row / ox;
            std::int64_t xp = row % ox;
            float *dst_row =
                ei_t + (yp * spec.sy * spec.nx + xp * spec.sx) * nc;
            // Pointer shifting: one non-zero list, Fy*Fx destinations.
            for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
                const float *wky = wt + ky * spec.fx * wf_stride;
                float *dky = dst_row + ky * dst_pitch;
                std::int64_t kx = 0;
                for (; kx + 2 <= spec.fx; kx += 2) {
                    const float *w0 = wky + kx * wf_stride;
                    const float *w1 = w0 + wf_stride;
                    float *d0 = dky + kx * nc;
                    float *d1 = d0 + nc;
                    for (std::int64_t p = begin; p < end; ++p) {
                        std::int64_t off =
                            (f0 + cidx[p]) * nc;
                        axpy2(nc, vals[p], w0 + off, d0, w1 + off, d1);
                    }
                }
                for (; kx < spec.fx; ++kx) {
                    const float *w0 = wky + kx * wf_stride;
                    float *d0 = dky + kx * nc;
                    for (std::int64_t p = begin; p < end; ++p) {
                        std::int64_t off =
                            (f0 + cidx[p]) * nc;
                        axpy(nc, vals[p], w0 + off, d0);
                    }
                }
            }
        }
    }
}

/**
 * Replay one image's non-zero error gradients for BP-weights,
 * accumulating into a private dW' slab in [ky][kx][f][c] layout.
 * Mirror of replayDataImage: the input rows take the weights' side of
 * the AXPY and the dW' rows take the destination side; the same
 * hoisting and kx pairing applies, with identical bit-for-bit
 * guarantees (the two destinations of a pair live in disjoint kx
 * slices of dW').
 *
 * @param spec Layer geometry.
 * @param ct Error gradients as CT-CSR over the (OyOx) x Nf matrix.
 * @param in_t Input channel-fastest, (Ny*Nx) x Nc.
 * @param dw Private dW' accumulator, [ky][kx][f][c].
 */
void
replayWeightsImage(const ConvSpec &spec, const CtCsrMatrix &ct,
                   const float *in_t, float *dw)
{
    std::int64_t ox = spec.outX();
    std::int64_t nc = spec.nc;
    std::int64_t wf_stride = spec.nf * nc;
    std::int64_t src_pitch = spec.nx * nc;
    for (std::int64_t t = 0; t < ct.tileCount(); ++t) {
        const CsrMatrix &tile = ct.tile(t);
        std::int64_t f0 = ct.tileColOffset(t);
        const auto &vals = tile.vals();
        const auto &cidx = tile.colIdx();
        const auto &rptr = tile.rowPtr();
        for (std::int64_t row = 0; row < tile.rows(); ++row) {
            std::int64_t begin = rptr[row], end = rptr[row + 1];
            if (begin == end)
                continue;
            std::int64_t yp = row / ox;
            std::int64_t xp = row % ox;
            const float *src_row =
                in_t + (yp * spec.sy * spec.nx + xp * spec.sx) * nc;
            for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
                float *dw_ky = dw + ky * spec.fx * wf_stride;
                const float *sky = src_row + ky * src_pitch;
                std::int64_t kx = 0;
                for (; kx + 2 <= spec.fx; kx += 2) {
                    float *y0 = dw_ky + kx * wf_stride;
                    float *y1 = y0 + wf_stride;
                    const float *x0 = sky + kx * nc;
                    const float *x1 = x0 + nc;
                    for (std::int64_t p = begin; p < end; ++p) {
                        std::int64_t off =
                            (f0 + cidx[p]) * nc;
                        axpy2(nc, vals[p], x0, y0 + off, x1, y1 + off);
                    }
                }
                for (; kx < spec.fx; ++kx) {
                    float *y0 = dw_ky + kx * wf_stride;
                    const float *x0 = sky + kx * nc;
                    for (std::int64_t p = begin; p < end; ++p) {
                        std::int64_t off =
                            (f0 + cidx[p]) * nc;
                        axpy(nc, vals[p], x0, y0 + off);
                    }
                }
            }
        }
    }
}

} // namespace

std::int64_t
SparseBpEngine::effectiveFeatureTile(std::int64_t nf) const
{
    if (featureTile > 0)
        return std::min(featureTile, nf);
    return std::min(kDefaultFeatureTile, nf);
}

float *
SparseBpEngine::acquirePartials(int workers, std::int64_t w_count) const
{
    std::size_t total =
        static_cast<std::size_t>(workers) * w_count;
    if (partialDw_.size() < total)
        partialDw_ = AlignedBuffer<float>(total);
    partialUsed_.assign(workers, 0);
    return partialDw_.data();
}

bool
SparseBpEngine::claimWorkerSlab(int worker) const
{
    if (partialUsed_[worker])
        return false;
    partialUsed_[worker] = 1;
    return true;
}

void
SparseBpEngine::reducePartials(int workers, std::int64_t w_count,
                               float *dst) const
{
    // fma(1, x, y) == x + y exactly, so the vectorized reduction is
    // bit-for-bit the scalar += loop it replaces.
    for (int w = 0; w < workers; ++w) {
        if (!partialUsed_[w])
            continue;
        axpy(w_count, 1.0f, partialDw_.data() + w * w_count, dst);
    }
}

void
SparseBpEngine::backwardData(const ConvSpec &spec, const Tensor &eo,
                             const Tensor &weights, Tensor &ei,
                             ThreadPool &pool, const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "sparse BP-data");
    checkBackwardShapes(spec, eo, weights, ei);
    std::int64_t batch = eo.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t spatial_out = oy * ox;
    std::int64_t spatial_in = spec.ny * spec.nx;
    std::int64_t tile_w = effectiveFeatureTile(spec.nf);

    // Weights channel-fastest: W'[ky][kx][f][c]; once per call.
    Tensor wkkfc = Tensor::uninitialized(
        Shape{spec.fy, spec.fx, spec.nf, spec.nc});
    weightsToKkfc(weights.data(), spec.nf, spec.nc, spec.fy, spec.fx,
                  wkkfc.data());
    const float *wt = wkkfc.data();

    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        ScratchArena &arena = ScratchArena::forThread();
        // Fused ReLU gate first (masked entries become exact zeros, so
        // the encode drops them — identical to an unfused ReLU BP).
        std::int64_t off = b * spec.outputElems();
        const float *eo_b = stagedMaskedEo(spec, eo.data() + off, off,
                                           mask);
        // EO feature-fastest: EO'[(y',x')][f].
        float *eo_t = arena.get(
            kSlotLayoutA, static_cast<std::size_t>(spatial_out) * spec.nf);
        chwToHwc(eo_b, spec.nf, oy, ox, eo_t);
        CtCsrMatrix ct = CtCsrMatrix::fromDense(eo_t, spatial_out,
                                                spec.nf, tile_w);

        // EI channel-fastest staging, zeroed.
        float *ei_t = arena.get(
            kSlotLayoutC, static_cast<std::size_t>(spatial_in) * spec.nc);
        std::memset(ei_t, 0,
                    sizeof(float) * spatial_in * spec.nc);

        replayDataImage(spec, ct, wt, ei_t);

        hwcToChw(ei_t, spec.ny, spec.nx, spec.nc,
                 ei.data() + b * spec.inputElems());
    }, /*grain=*/1);
}

void
SparseBpEngine::backwardWeights(const ConvSpec &spec, const Tensor &eo,
                                const Tensor &in, Tensor &dweights,
                                ThreadPool &pool, const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "sparse BP-weights");
    std::int64_t batch = eo.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t spatial_out = oy * ox;
    std::int64_t spatial_in = spec.ny * spec.nx;
    std::int64_t tile_w = effectiveFeatureTile(spec.nf);
    std::int64_t w_count = spec.weightElems();

    // Per-worker private dW' accumulators in [ky][kx][f][c] layout,
    // reused across calls; each worker zeroes its own slab on first
    // touch so idle workers cost nothing.
    int workers = pool.threads();
    float *partials = acquirePartials(workers, w_count);

    pool.parallelForDynamic(batch, [&](std::int64_t b, int worker) {
        ScratchArena &arena = ScratchArena::forThread();
        std::int64_t off = b * spec.outputElems();
        const float *eo_b = stagedMaskedEo(spec, eo.data() + off, off,
                                           mask);
        float *eo_t = arena.get(
            kSlotLayoutA, static_cast<std::size_t>(spatial_out) * spec.nf);
        chwToHwc(eo_b, spec.nf, oy, ox, eo_t);
        CtCsrMatrix ct = CtCsrMatrix::fromDense(eo_t, spatial_out,
                                                spec.nf, tile_w);

        // Input channel-fastest: I'[(y,x)][c].
        float *in_t = arena.get(
            kSlotLayoutB, static_cast<std::size_t>(spatial_in) * spec.nc);
        chwToHwc(in.data() + b * spec.inputElems(), spec.nc, spec.ny,
                 spec.nx, in_t);

        float *dw = partials + worker * w_count;
        if (claimWorkerSlab(worker))
            std::memset(dw, 0, sizeof(float) * w_count);

        replayWeightsImage(spec, ct, in_t, dw);
    }, /*grain=*/1);

    // Reduce private accumulators, then restore [f][c][ky][kx].
    Tensor dw_kkfc(Shape{spec.fy, spec.fx, spec.nf, spec.nc});
    reducePartials(workers, w_count, dw_kkfc.data());
    weightsFromKkfc(dw_kkfc.data(), spec.fy, spec.fx, spec.nf, spec.nc,
                    dweights.data());
}

void
SparseBpCachedEngine::backwardData(const ConvSpec &spec, const Tensor &eo,
                                   const Tensor &weights, Tensor &ei,
                                   ThreadPool &pool,
                                   const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "sparse-cached BP-data");
    checkBackwardShapes(spec, eo, weights, ei);
    std::int64_t batch = eo.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t spatial_in = spec.ny * spec.nx;
    std::int64_t tile_w = effectiveFeatureTile(spec.nf);

    // Encode-once: fused CHW -> CT-CSR, shared with backwardWeights.
    // A fused ReLU mask gates liveness inside the same encode sweep.
    std::shared_ptr<const SparsePlan> plan =
        SparsePlanCache::global().get(eo.data(), batch, spec.nf, oy, ox,
                                      tile_w, pool, mask.mask);

    Tensor wkkfc = Tensor::uninitialized(
        Shape{spec.fy, spec.fx, spec.nf, spec.nc});
    weightsToKkfc(weights.data(), spec.nf, spec.nc, spec.fy, spec.fx,
                  wkkfc.data());
    const float *wt = wkkfc.data();

    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        ScratchArena &arena = ScratchArena::forThread();
        float *ei_t = arena.get(
            kSlotLayoutC, static_cast<std::size_t>(spatial_in) * spec.nc);
        std::memset(ei_t, 0,
                    sizeof(float) * spatial_in * spec.nc);

        replayDataImage(spec, plan->images[b], wt, ei_t);

        hwcToChw(ei_t, spec.ny, spec.nx, spec.nc,
                 ei.data() + b * spec.inputElems());
    }, /*grain=*/1);
}

void
SparseBpCachedEngine::backwardWeights(const ConvSpec &spec,
                                      const Tensor &eo, const Tensor &in,
                                      Tensor &dweights, ThreadPool &pool,
                                      const BpMask &mask) const
{
    SPG_TRACE_SCOPE("kernel", "sparse-cached BP-weights");
    std::int64_t batch = eo.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t spatial_in = spec.ny * spec.nx;
    std::int64_t tile_w = effectiveFeatureTile(spec.nf);
    std::int64_t w_count = spec.weightElems();

    // Hits when backwardData already encoded this minibatch.
    std::shared_ptr<const SparsePlan> plan =
        SparsePlanCache::global().get(eo.data(), batch, spec.nf, oy, ox,
                                      tile_w, pool, mask.mask);

    int workers = pool.threads();
    float *partials = acquirePartials(workers, w_count);

    pool.parallelForDynamic(batch, [&](std::int64_t b, int worker) {
        ScratchArena &arena = ScratchArena::forThread();
        float *in_t = arena.get(
            kSlotLayoutB, static_cast<std::size_t>(spatial_in) * spec.nc);
        chwToHwc(in.data() + b * spec.inputElems(), spec.nc, spec.ny,
                 spec.nx, in_t);

        float *dw = partials + worker * w_count;
        if (claimWorkerSlab(worker))
            std::memset(dw, 0, sizeof(float) * w_count);

        replayWeightsImage(spec, plan->images[b], in_t, dw);
    }, /*grain=*/1);

    Tensor dw_kkfc(Shape{spec.fy, spec.fx, spec.nf, spec.nc});
    reducePartials(workers, w_count, dw_kkfc.data());
    weightsFromKkfc(dw_kkfc.data(), spec.fy, spec.fx, spec.nf, spec.nc,
                    dweights.data());
}

} // namespace spg
