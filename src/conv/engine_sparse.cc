#include "conv/engine_sparse.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "conv/scratch.hh"
#include "sparse/csr.hh"
#include "sparse/sparse_mm.hh"
#include "tensor/layout.hh"
#include "util/logging.hh"

namespace spg {

namespace {

/** Default CT-CSR feature tile: big enough to amortize the tile walk,
 *  small enough that the weight band per (ky,kx) stays L2-resident. */
constexpr std::int64_t kDefaultFeatureTile = 64;

/**
 * Replay the non-zeros of one image's error gradients through the
 * pointer-shifting loop. Shared by BP-data and BP-weights: the only
 * difference is which side of the AXPY is indexed by the feature
 * (weights for BP-data, output gradient for BP-weights).
 *
 * @param spec Layer geometry.
 * @param ct Error gradients as CT-CSR over the (OyOx) x Nf matrix.
 * @param body Callable (f, val, ky, kx, dst_spatial_offset) invoked
 *        for every (non-zero, kernel coordinate) pair, where
 *        dst_spatial_offset = (y'*sy + ky) * Nx + (x'*sx + kx).
 */
template <typename Body>
void
replayNonZeros(const ConvSpec &spec, const CtCsrMatrix &ct, Body &&body)
{
    std::int64_t ox = spec.outX();
    for (std::int64_t t = 0; t < ct.tileCount(); ++t) {
        const CsrMatrix &tile = ct.tile(t);
        std::int64_t f0 = ct.tileColOffset(t);
        const auto &vals = tile.vals();
        const auto &cidx = tile.colIdx();
        const auto &rptr = tile.rowPtr();
        for (std::int64_t row = 0; row < tile.rows(); ++row) {
            std::int64_t begin = rptr[row], end = rptr[row + 1];
            if (begin == end)
                continue;
            std::int64_t yp = row / ox;
            std::int64_t xp = row % ox;
            std::int64_t base =
                yp * spec.sy * spec.nx + xp * spec.sx;
            // Pointer shifting: one non-zero list, Fy*Fx destinations.
            for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
                for (std::int64_t kx = 0; kx < spec.fx; ++kx) {
                    std::int64_t dst = base + ky * spec.nx + kx;
                    for (std::int64_t p = begin; p < end; ++p) {
                        body(f0 + cidx[p], vals[p], ky, kx, dst);
                    }
                }
            }
        }
    }
}

} // namespace

std::int64_t
SparseBpEngine::effectiveFeatureTile(std::int64_t nf) const
{
    if (featureTile > 0)
        return std::min(featureTile, nf);
    return std::min(kDefaultFeatureTile, nf);
}

void
SparseBpEngine::backwardData(const ConvSpec &spec, const Tensor &eo,
                             const Tensor &weights, Tensor &ei,
                             ThreadPool &pool) const
{
    checkBackwardShapes(spec, eo, weights, ei);
    std::int64_t batch = eo.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t spatial_out = oy * ox;
    std::int64_t spatial_in = spec.ny * spec.nx;
    std::int64_t tile_w = effectiveFeatureTile(spec.nf);

    // Weights channel-fastest: W'[ky][kx][f][c]; once per call.
    Tensor wkkfc(Shape{spec.fy, spec.fx, spec.nf, spec.nc});
    weightsToKkfc(weights.data(), spec.nf, spec.nc, spec.fy, spec.fx,
                  wkkfc.data());
    const float *wt = wkkfc.data();
    std::int64_t wf_stride = spec.nf * spec.nc;

    pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
        ScratchArena &arena = ScratchArena::forThread();
        // EO feature-fastest: EO'[(y',x')][f].
        float *eo_t = arena.get(
            kSlotLayoutA, static_cast<std::size_t>(spatial_out) * spec.nf);
        chwToHwc(eo.data() + b * spec.outputElems(), spec.nf, oy, ox,
                 eo_t);
        CtCsrMatrix ct = CtCsrMatrix::fromDense(eo_t, spatial_out,
                                                spec.nf, tile_w);

        // EI channel-fastest staging, zeroed.
        float *ei_t = arena.get(
            kSlotLayoutC, static_cast<std::size_t>(spatial_in) * spec.nc);
        std::memset(ei_t, 0,
                    sizeof(float) * spatial_in * spec.nc);

        std::int64_t nc = spec.nc;
        replayNonZeros(spec, ct,
                       [&](std::int64_t f, float val, std::int64_t ky,
                           std::int64_t kx, std::int64_t dst) {
            const float *wrow =
                wt + (ky * spec.fx + kx) * wf_stride + f * nc;
            axpy(nc, val, wrow, ei_t + dst * nc);
        });

        hwcToChw(ei_t, spec.ny, spec.nx, spec.nc,
                 ei.data() + b * spec.inputElems());
    });
}

void
SparseBpEngine::backwardWeights(const ConvSpec &spec, const Tensor &eo,
                                const Tensor &in, Tensor &dweights,
                                ThreadPool &pool) const
{
    std::int64_t batch = eo.shape()[0];
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t spatial_out = oy * ox;
    std::int64_t spatial_in = spec.ny * spec.nx;
    std::int64_t tile_w = effectiveFeatureTile(spec.nf);
    std::int64_t w_count = spec.weightElems();
    std::int64_t wf_stride = spec.nf * spec.nc;

    // Per-worker private dW' accumulators in [ky][kx][f][c] layout.
    int workers = pool.threads();
    Tensor partial(Shape{workers, w_count});
    std::vector<char> used(workers, 0);

    pool.parallelForDynamic(batch, [&](std::int64_t b, int worker) {
        ScratchArena &arena = ScratchArena::forThread();
        float *eo_t = arena.get(
            kSlotLayoutA, static_cast<std::size_t>(spatial_out) * spec.nf);
        chwToHwc(eo.data() + b * spec.outputElems(), spec.nf, oy, ox,
                 eo_t);
        CtCsrMatrix ct = CtCsrMatrix::fromDense(eo_t, spatial_out,
                                                spec.nf, tile_w);

        // Input channel-fastest: I'[(y,x)][c].
        float *in_t = arena.get(
            kSlotLayoutB, static_cast<std::size_t>(spatial_in) * spec.nc);
        chwToHwc(in.data() + b * spec.inputElems(), spec.nc, spec.ny,
                 spec.nx, in_t);

        float *dw = partial.data() + worker * w_count;
        used[worker] = 1;

        std::int64_t nc = spec.nc;
        replayNonZeros(spec, ct,
                       [&](std::int64_t f, float val, std::int64_t ky,
                           std::int64_t kx, std::int64_t src) {
            float *dwrow =
                dw + (ky * spec.fx + kx) * wf_stride + f * nc;
            axpy(nc, val, in_t + src * nc, dwrow);
        });
    });

    // Reduce private accumulators, then restore [f][c][ky][kx].
    Tensor dw_kkfc(Shape{spec.fy, spec.fx, spec.nf, spec.nc});
    for (int w = 0; w < workers; ++w) {
        if (!used[w])
            continue;
        const float *src = partial.data() + w * w_count;
        float *dst = dw_kkfc.data();
        for (std::int64_t i = 0; i < w_count; ++i)
            dst[i] += src[i];
    }
    weightsFromKkfc(dw_kkfc.data(), spec.fy, spec.fx, spec.nf, spec.nc,
                    dweights.data());
}

} // namespace spg
