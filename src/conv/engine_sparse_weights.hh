/**
 * @file
 * Weight-sparsity forward-propagation engine (extension).
 *
 * The paper exploits sparsity in the ERROR GRADIENTS during training
 * (§4.2) and cites weight-sparse inference (Liu et al., CVPR'15) as
 * the complementary direction requiring weight positions to be known
 * in advance. This engine implements that direction with the same
 * in-place pointer-shifting machinery as the Sparse-Kernel: the
 * weights are compressed once PER WEIGHT VERSION into CSR (rows =
 * output features, columns = flattened (c, ky, kx) taps) via the
 * persistent PackedWeightCache — steady-state calls reuse the cached
 * plan — and forward propagation executes only the non-zero taps —
 *
 *     O[f, y, :] += w[f,c,ky,kx] * I[c, y*sy+ky, kx + sx*(0..Ox)]
 *
 * a row-AXPY per (non-zero tap, output row), unit-stride and
 * vectorized for sx == 1. Useful for inference with pruned models;
 * with dense weights it degenerates to direct convolution.
 */

#ifndef SPG_CONV_ENGINE_SPARSE_WEIGHTS_HH
#define SPG_CONV_ENGINE_SPARSE_WEIGHTS_HH

#include "conv/engine.hh"

namespace spg {

/** FP engine eliding zero weights (pruned-model inference). */
class SparseWeightsFpEngine : public ConvEngine
{
  public:
    using ConvEngine::forward;

    std::string name() const override { return "sparse-weights"; }
    bool supports(Phase phase) const override
    {
        return phase == Phase::Forward;
    }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_SPARSE_WEIGHTS_HH
