/**
 * @file
 * Process-wide cache of pre-packed convolution weight matrices.
 *
 * The GEMM engines multiply the SAME weight matrix W against every
 * image of every minibatch; without caching, sgemm re-packs W into
 * micro-kernel panels on every call. The cache packs once per
 * (weights, transpose, geometry) and hands out shared read-only panel
 * buffers, so steady-state forward/backward passes stream weights in
 * panel format with zero packing work or traffic.
 *
 * Staleness is handled twice over:
 *  - ConvLayer explicitly calls invalidate() whenever it mutates its
 *    weights (SGD update, checkpoint restore) or dies (so a later
 *    allocation reusing the address cannot alias a stale entry).
 *  - get() additionally fingerprints the weight contents (FNV-1a over
 *    the raw bytes) and re-packs on mismatch, which keeps direct
 *    engine users (tests, benches, tuner probes) correct even when
 *    they mutate weight tensors without telling the cache. The
 *    fingerprint pass reads W once per get() — once per minibatch
 *    phase, amortized across the whole batch, vs. the per-image
 *    pack round trip it replaces.
 *
 * Returned values are shared_ptr<const PackedMatrix>: invalidation
 * while a phase is in flight just drops the cache's reference; workers
 * holding the pointer finish on the old panels safely.
 */

#ifndef SPG_CONV_PACKED_WEIGHTS_HH
#define SPG_CONV_PACKED_WEIGHTS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "blas/gemm.hh"
#include "conv/conv_spec.hh"
#include "sparse/csr.hh"

namespace spg {

/**
 * Weights of one conv layer compressed for the weight-sparse FP
 * engines: CSR with rows = output features and columns = flattened
 * (c, ky, kx) taps, plus the tap's precomputed input-plane offset
 *
 *     in_off[p] = c * ny * nx + ky * nx + kx
 *
 * so the kernels address input pixels as image + y*sy*nx + x*sx +
 * in_off[p] with no div/mod in the hot loop. CsrMatrix::fromDense
 * scans row-major, so within each feature row the surviving taps stay
 * in ascending (c, ky, kx) order — the accumulation order of
 * conv_ref, which is what makes skip-the-zeros bit-for-bit safe.
 */
struct SparseWeightPlan
{
    std::int64_t nf = 0;    ///< CSR rows (output features)
    std::int64_t taps = 0;  ///< CSR columns (nc * fy * fx)
    CsrMatrix csr;
    std::vector<std::int64_t> in_off;  ///< per-nnz input offset
    double weight_sparsity = 0.0;      ///< zero fraction of the dense W

    std::int64_t nnz() const { return csr.nnz(); }
};

/** Global pack-once cache for GEMM weight operands. */
class PackedWeightCache
{
  public:
    /** @return the process-wide instance. */
    static PackedWeightCache &global();

    /**
     * @return op(W) (m x k, with op per @p ta) packed as a GEMM A
     * operand, packing it now if absent or if the cached entry's
     * content fingerprint no longer matches @p w. lda is k for
     * Trans::No and m for Trans::Yes (dense row-major W either way).
     */
    std::shared_ptr<const PackedMatrix>
    getA(const float *w, Trans ta, std::int64_t m, std::int64_t k);

    /** Encode-once statistics of the sparse side (tuner/tests). */
    struct SparseStats
    {
        std::int64_t encodes = 0;  ///< CSR builds performed
        std::int64_t hits = 0;     ///< lookups served from cache
        double encode_seconds = 0; ///< total time inside builds
    };

    /**
     * @return @p w (the layer's dense weights, nf x nc*fy*fx
     * row-major) encoded as a SparseWeightPlan for @p spec, encoding
     * it now if absent or if the cached entry's content fingerprint
     * no longer matches. Same staleness discipline as getA():
     * ConvLayer::paramsUpdated() invalidation plus an FNV-1a content
     * fingerprint per lookup, so a pruning step (or any other weight
     * mutation) re-encodes exactly once per weight version.
     */
    std::shared_ptr<const SparseWeightPlan>
    getSparseConv(const float *w, const ConvSpec &spec);

    /** Drop every entry packed from the given weight storage. */
    void invalidate(const float *w);

    /** Drop everything (tests / benchmarks). */
    void clear();

    /** @return number of live dense (GEMM panel) entries (tests). */
    std::size_t size() const;

    /** @return number of live sparse-plan entries (tests). */
    std::size_t sparseSize() const;

    /** @return a snapshot of the sparse-side counters. */
    SparseStats sparseStats() const;

    /** Zero the sparse-side counters (tuner measurement windows). */
    void resetSparseStats();

  private:
    using Key = std::tuple<const float *, Trans, std::int64_t,
                           std::int64_t>;
    struct Entry
    {
        std::uint64_t fingerprint;
        std::shared_ptr<const PackedMatrix> packed;
    };
    /** Geometry part of a sparse-plan key: (nf, nc, fy, fx, ny, nx)
     *  — everything the plan's offsets depend on. */
    using SparseKey = std::tuple<const float *, std::int64_t,
                                 std::int64_t, std::int64_t,
                                 std::int64_t, std::int64_t,
                                 std::int64_t>;
    struct SparseEntry
    {
        std::uint64_t fingerprint;
        std::shared_ptr<const SparseWeightPlan> plan;
    };

    mutable std::mutex mu_;
    std::map<Key, Entry> entries_;
    std::map<SparseKey, SparseEntry> sparse_entries_;
    SparseStats sparse_stats_;
};

} // namespace spg

#endif // SPG_CONV_PACKED_WEIGHTS_HH
