/**
 * @file
 * Process-wide cache of pre-packed convolution weight matrices.
 *
 * The GEMM engines multiply the SAME weight matrix W against every
 * image of every minibatch; without caching, sgemm re-packs W into
 * micro-kernel panels on every call. The cache packs once per
 * (weights, transpose, geometry) and hands out shared read-only panel
 * buffers, so steady-state forward/backward passes stream weights in
 * panel format with zero packing work or traffic.
 *
 * Staleness is handled twice over:
 *  - ConvLayer explicitly calls invalidate() whenever it mutates its
 *    weights (SGD update, checkpoint restore) or dies (so a later
 *    allocation reusing the address cannot alias a stale entry).
 *  - get() additionally fingerprints the weight contents (FNV-1a over
 *    the raw bytes) and re-packs on mismatch, which keeps direct
 *    engine users (tests, benches, tuner probes) correct even when
 *    they mutate weight tensors without telling the cache. The
 *    fingerprint pass reads W once per get() — once per minibatch
 *    phase, amortized across the whole batch, vs. the per-image
 *    pack round trip it replaces.
 *
 * Returned values are shared_ptr<const PackedMatrix>: invalidation
 * while a phase is in flight just drops the cache's reference; workers
 * holding the pointer finish on the old panels safely.
 */

#ifndef SPG_CONV_PACKED_WEIGHTS_HH
#define SPG_CONV_PACKED_WEIGHTS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "blas/gemm.hh"

namespace spg {

/** Global pack-once cache for GEMM weight operands. */
class PackedWeightCache
{
  public:
    /** @return the process-wide instance. */
    static PackedWeightCache &global();

    /**
     * @return op(W) (m x k, with op per @p ta) packed as a GEMM A
     * operand, packing it now if absent or if the cached entry's
     * content fingerprint no longer matches @p w. lda is k for
     * Trans::No and m for Trans::Yes (dense row-major W either way).
     */
    std::shared_ptr<const PackedMatrix>
    getA(const float *w, Trans ta, std::int64_t m, std::int64_t k);

    /** Drop every entry packed from the given weight storage. */
    void invalidate(const float *w);

    /** Drop everything (tests / benchmarks). */
    void clear();

    /** @return number of live entries (tests). */
    std::size_t size() const;

  private:
    using Key = std::tuple<const float *, Trans, std::int64_t,
                           std::int64_t>;
    struct Entry
    {
        std::uint64_t fingerprint;
        std::shared_ptr<const PackedMatrix> packed;
    };

    mutable std::mutex mu_;
    std::map<Key, Entry> entries_;
};

} // namespace spg

#endif // SPG_CONV_PACKED_WEIGHTS_HH
