/**
 * @file
 * Direct register-tiled convolution over blocked NCHWc tensors.
 *
 * The engine the blocked layout exists for: no im2col and no GEMM
 * packing — the inner loops read activations in [C/8][H][W][8] order
 * and weights in [K/8][C/8][Fy][Fx][8c][8k] order, computing one
 * register tile of output per visit (see direct_block.hh for the tile
 * generators and the bit-for-bit contract with the reference loops).
 *
 * Operand layouts are negotiated per call: any of in (FP, BP-weights)
 * and out (FP) may arrive blocked (Layout::Nchwc) — produced/consumed
 * in place when adjacent layers also run direct — and are staged
 * through per-call blocked scratch otherwise. Error tensors are always
 * plain NCHW. When the tuner measures this engine with plain tensors
 * the staging conversions run inside the timed call, so conversion
 * cost is amortized into the engine decision automatically.
 */

#ifndef SPG_CONV_ENGINE_DIRECT_HH
#define SPG_CONV_ENGINE_DIRECT_HH

#include "conv/engine.hh"

namespace spg {

class DirectEngine : public ConvEngine
{
  public:
    using ConvEngine::backwardData;
    using ConvEngine::backwardWeights;
    using ConvEngine::forward;

    std::string name() const override { return "direct"; }
    bool supports(Phase) const override { return true; }

    /** True when the register-tiled blocked loops are compiled in
     *  (AVX2+FMA). Layout negotiation must not hand blocked tensors to
     *  the portable fallback, which runs the plain NCHW reference. */
    static bool blockedLayoutSupported();

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei, ThreadPool &pool,
                      const BpMask &mask) const override;
    void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                         const Tensor &in, Tensor &dweights,
                         ThreadPool &pool,
                         const BpMask &mask) const override;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_DIRECT_HH
