/**
 * @file
 * The two GEMM-based execution schedules the paper contrasts.
 *
 * UnfoldGemmEngine — "Unfold+Parallel-GEMM", the state-of-the-art
 * baseline (paper §2.3): images are processed one after another and
 * each image's MM is partitioned across all cores. Adding cores
 * divides the arithmetic per core but not the operand traffic, so the
 * per-core AIT (and with it scalability) degrades (paper §3.2).
 *
 * GemmInParallelEngine — the paper's §4.1 schedule: each core runs a
 * complete single-threaded GEMM on a different image of the
 * minibatch. Per-core AIT is independent of the core count, so
 * per-core performance stays flat as cores are added.
 *
 * Both schedules share the identical im2col + micro-kernel math, so
 * measured differences are attributable to scheduling alone. Fused
 * epilogues run per image right after its MM, while the output image
 * is still cache-hot; fused BP masks stage a masked per-image copy of
 * EO in scratch before the MM consumes it.
 */

#ifndef SPG_CONV_ENGINE_GEMM_HH
#define SPG_CONV_ENGINE_GEMM_HH

#include <vector>

#include "conv/engine.hh"
#include "util/aligned.hh"

namespace spg {

/** Unfold+Parallel-GEMM baseline (CAFFE/ADAM-style). */
class UnfoldGemmEngine : public ConvEngine
{
  public:
    using ConvEngine::backwardData;
    using ConvEngine::backwardWeights;
    using ConvEngine::forward;

    std::string name() const override { return "parallel-gemm"; }
    bool supports(Phase) const override { return true; }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei, ThreadPool &pool,
                      const BpMask &mask) const override;
    void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                         const Tensor &in, Tensor &dweights,
                         ThreadPool &pool,
                         const BpMask &mask) const override;
};

/** GEMM-in-Parallel schedule (paper §4.1). */
class GemmInParallelEngine : public ConvEngine
{
  public:
    using ConvEngine::backwardData;
    using ConvEngine::backwardWeights;
    using ConvEngine::forward;

    std::string name() const override { return "gemm-in-parallel"; }
    bool supports(Phase) const override { return true; }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei, ThreadPool &pool,
                      const BpMask &mask) const override;
    void backwardWeights(const ConvSpec &spec, const Tensor &eo,
                         const Tensor &in, Tensor &dweights,
                         ThreadPool &pool,
                         const BpMask &mask) const override;

  private:
    /** Reused per-worker partial-gradient slabs for backwardWeights;
     *  grown on demand so steady-state training allocates nothing in
     *  that path. Calls on ONE engine instance must not overlap
     *  (matches how layers and the tuner drive engines). */
    mutable AlignedBuffer<float> partialDw_;
    mutable std::vector<unsigned char> partialUsed_;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_GEMM_HH
