#include "conv/unfold.hh"

#include <algorithm>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "blas/gemm.hh"

namespace spg {

void
unfoldImage(const ConvSpec &spec, const float *in, float *u)
{
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t cols = oy * ox;
    for (std::int64_t c = 0; c < spec.nc; ++c) {
        const float *plane = in + c * spec.ny * spec.nx;
        for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
            for (std::int64_t kx = 0; kx < spec.fx; ++kx) {
                float *urow =
                    u + ((c * spec.fy + ky) * spec.fx + kx) * cols;
                for (std::int64_t y = 0; y < oy; ++y) {
                    const float *src =
                        plane + (y * spec.sy + ky) * spec.nx + kx;
                    float *dst = urow + y * ox;
                    if (spec.sx == 1) {
                        std::memcpy(dst, src, ox * sizeof(float));
                    } else {
                        for (std::int64_t x = 0; x < ox; ++x)
                            dst[x] = src[x * spec.sx];
                    }
                }
            }
        }
    }
}

void
unfoldImageToPanels(const ConvSpec &spec, const float *in, float *panels)
{
    std::int64_t ox = spec.outX();
    std::int64_t k = spec.gemmK(), n = spec.gemmN();
    // Iterate in DESTINATION order (jc block, pc block, jr panel, row
    // p, column j) so the 4*k*n-byte output is written as one strictly
    // sequential stream; the source runs are short but stay within a
    // couple of cache lines between consecutive rows p. dst advances
    // through the buffer with no gaps — the layout places jc blocks,
    // then pc blocks, then kNr-wide panels back to back.
    //
    // Buffers too large to stay cached until the GEMM are written with
    // non-temporal stores, skipping the read-for-ownership of 4*k*n
    // cold bytes; small buffers keep ordinary stores so the GEMM reads
    // them back from cache.
    const bool stream = static_cast<std::int64_t>(sizeof(float)) * k * n
                        >= (std::int64_t{16} << 20);
    float *dst = panels;
    for (std::int64_t jc = 0; jc < n; jc += kGemmNc) {
        std::int64_t ncb = std::min(kGemmNc, n - jc);
        for (std::int64_t pc = 0; pc < k; pc += kGemmKc) {
            std::int64_t kc = std::min(kGemmKc, k - pc);
            for (std::int64_t jr = 0; jr < ncb; jr += kGemmNr) {
                std::int64_t width = std::min(kGemmNr, ncb - jr);
                // Source position of the panel's first column — the
                // only division in the whole walk.
                std::int64_t y0 = (jc + jr) / ox;
                std::int64_t x0 = (jc + jr) - y0 * ox;
                // Decode the first U' row r = pc of this depth block
                // into (channel, ky, kx); advance incrementally per p.
                std::int64_t kx = pc % spec.fx;
                std::int64_t t = pc / spec.fx;
                std::int64_t ky = t % spec.fy;
                std::int64_t c = t / spec.fy;
                for (std::int64_t p = 0; p < kc; ++p) {
                    const float *plane = in + c * spec.ny * spec.nx;
                    std::int64_t y = y0, x = x0, done = 0;
                    while (done < width) {
                        std::int64_t run =
                            std::min(width - done, ox - x);
                        const float *src =
                            plane + (y * spec.sy + ky) * spec.nx + kx +
                            x * spec.sx;
                        if (spec.sx == 1) {
                            if (run == kGemmNr && stream) {
                                // Full panel row in one run: dst is a
                                // panel-row start, so it is vector
                                // aligned (sfence below).
#if defined(__AVX512F__)
                                _mm512_stream_ps(dst,
                                                 _mm512_loadu_ps(src));
                                _mm512_stream_ps(
                                    dst + 16, _mm512_loadu_ps(src + 16));
#elif defined(__AVX2__)
                                _mm256_stream_ps(dst,
                                                 _mm256_loadu_ps(src));
                                _mm256_stream_ps(
                                    dst + 8, _mm256_loadu_ps(src + 8));
#else
                                std::memcpy(dst, src,
                                            kGemmNr * sizeof(float));
#endif
                            } else if (run == kGemmNr) {
                                std::memcpy(dst, src,
                                            kGemmNr * sizeof(float));
                            } else {
                                std::memcpy(dst + done, src,
                                            run * sizeof(float));
                            }
                        } else {
                            for (std::int64_t i = 0; i < run; ++i)
                                dst[done + i] = src[i * spec.sx];
                        }
                        done += run;
                        x += run;
                        if (x == ox) {
                            x = 0;
                            ++y;
                        }
                    }
                    // Zero the padding columns of a short final panel
                    // so the buffer is byte-identical to
                    // packMatrixBInto output.
                    if (width < kGemmNr)
                        std::memset(dst + width, 0,
                                    (kGemmNr - width) * sizeof(float));
                    dst += kGemmNr;
                    if (++kx == spec.fx) {
                        kx = 0;
                        if (++ky == spec.fy) {
                            ky = 0;
                            ++c;
                        }
                    }
                }
            }
        }
    }
#if defined(__AVX2__) || defined(__AVX512F__)
    // Make the streamed stores visible before the caller hands the
    // buffer to the GEMM (or to another thread).
    _mm_sfence();
#endif
}

void
foldImageAccumulate(const ConvSpec &spec, const float *u, float *ei)
{
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t cols = oy * ox;
    for (std::int64_t c = 0; c < spec.nc; ++c) {
        float *plane = ei + c * spec.ny * spec.nx;
        for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
            for (std::int64_t kx = 0; kx < spec.fx; ++kx) {
                const float *urow =
                    u + ((c * spec.fy + ky) * spec.fx + kx) * cols;
                for (std::int64_t y = 0; y < oy; ++y) {
                    float *dst = plane + (y * spec.sy + ky) * spec.nx + kx;
                    const float *src = urow + y * ox;
                    for (std::int64_t x = 0; x < ox; ++x)
                        dst[x * spec.sx] += src[x];
                }
            }
        }
    }
}

} // namespace spg
