#include "conv/unfold.hh"

#include <cstring>

namespace spg {

void
unfoldImage(const ConvSpec &spec, const float *in, float *u)
{
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t cols = oy * ox;
    for (std::int64_t c = 0; c < spec.nc; ++c) {
        const float *plane = in + c * spec.ny * spec.nx;
        for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
            for (std::int64_t kx = 0; kx < spec.fx; ++kx) {
                float *urow =
                    u + ((c * spec.fy + ky) * spec.fx + kx) * cols;
                for (std::int64_t y = 0; y < oy; ++y) {
                    const float *src =
                        plane + (y * spec.sy + ky) * spec.nx + kx;
                    float *dst = urow + y * ox;
                    if (spec.sx == 1) {
                        std::memcpy(dst, src, ox * sizeof(float));
                    } else {
                        for (std::int64_t x = 0; x < ox; ++x)
                            dst[x] = src[x * spec.sx];
                    }
                }
            }
        }
    }
}

void
foldImageAccumulate(const ConvSpec &spec, const float *u, float *ei)
{
    std::int64_t oy = spec.outY(), ox = spec.outX();
    std::int64_t cols = oy * ox;
    for (std::int64_t c = 0; c < spec.nc; ++c) {
        float *plane = ei + c * spec.ny * spec.nx;
        for (std::int64_t ky = 0; ky < spec.fy; ++ky) {
            for (std::int64_t kx = 0; kx < spec.fx; ++kx) {
                const float *urow =
                    u + ((c * spec.fy + ky) * spec.fx + kx) * cols;
                for (std::int64_t y = 0; y < oy; ++y) {
                    float *dst = plane + (y * spec.sy + ky) * spec.nx + kx;
                    const float *src = urow + y * ox;
                    for (std::int64_t x = 0; x < ox; ++x)
                        dst[x * spec.sx] += src[x];
                }
            }
        }
    }
}

} // namespace spg
