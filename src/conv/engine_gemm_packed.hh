/**
 * @file
 * Packed-operand variants of the two GEMM schedules.
 *
 * Both engines in engine_gemm.hh pay two avoidable costs per image:
 * sgemm re-packs the SAME weight matrix into micro-kernel panels on
 * every call, and forward propagation writes a dense im2col matrix
 * that the GEMM's packB immediately re-reads and copies into panel
 * format. The variants here remove both:
 *
 *  - Weights are packed once per (layer, phase) via PackedWeightCache
 *    and reused across all images and minibatches, shared read-only
 *    between workers.
 *  - Forward propagation unfolds each image DIRECTLY into B-panel
 *    format (unfoldImageToPanels), so the fully-packed GEMM runs with
 *    no packing inside the blocking loops at all.
 *
 * Per-core AIT rises accordingly: the per-image weight-panel
 * write+read round trip and the dense-unfold round trip disappear
 * from the operand traffic (see simcpu/conv_model.cc for the model
 * side of this accounting).
 *
 * BP-weights has no packed operand that is reused across images (the
 * weights are the OUTPUT of that GEMM), so both variants inherit the
 * unpacked implementation (including its fused eo masking).
 *
 * The engines produce results bit-for-bit identical to their unpacked
 * counterparts: the packed entry points run the exact same blocking
 * and micro-kernel order, only skipping the pack copies.
 */

#ifndef SPG_CONV_ENGINE_GEMM_PACKED_HH
#define SPG_CONV_ENGINE_GEMM_PACKED_HH

#include "conv/engine_gemm.hh"

namespace spg {

/** Unfold+Parallel-GEMM with cached packed weights and fused unfold. */
class UnfoldGemmPackedEngine : public UnfoldGemmEngine
{
  public:
    std::string name() const override { return "parallel-gemm-packed"; }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei, ThreadPool &pool,
                      const BpMask &mask) const override;
};

/** GEMM-in-Parallel with cached packed weights and fused unfold. */
class GemmInParallelPackedEngine : public GemmInParallelEngine
{
  public:
    std::string name() const override { return "gemm-in-parallel-packed"; }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
    void backwardData(const ConvSpec &spec, const Tensor &eo,
                      const Tensor &weights, Tensor &ei, ThreadPool &pool,
                      const BpMask &mask) const override;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_GEMM_PACKED_HH
