/**
 * @file
 * Winograd F(2x2, 3x3) forward-propagation engine (extension).
 *
 * Implements the minimal-filtering direction the paper cites (Cong &
 * Xiao, "Minimizing computation in convolutional neural networks"):
 * for the ubiquitous 3x3 stride-1 convolution, each 2x2 output tile is
 * computed from a 4x4 input tile with 16 multiplies instead of the
 * direct method's 36 — a 2.25x arithmetic reduction:
 *
 *     Y = A^T [ (G g G^T) . (B^T d B) ] A
 *
 * with the standard F(2x2, 3x3) transform matrices. Kernel transforms
 * U = G g G^T are computed once per call and reused across the batch;
 * tile transforms V = B^T d B are computed once per (tile, channel)
 * and reused across all output features. Odd output rows/columns fall
 * back to the direct loop.
 *
 * Only 3x3, stride-1 geometry is supported (supportsGeometry()); the
 * tuner skips it elsewhere.
 */

#ifndef SPG_CONV_ENGINE_WINOGRAD_HH
#define SPG_CONV_ENGINE_WINOGRAD_HH

#include "conv/engine.hh"

namespace spg {

/** F(2x2, 3x3) minimal-filtering FP engine. */
class WinogradEngine : public ConvEngine
{
  public:
    using ConvEngine::forward;

    std::string name() const override { return "winograd"; }
    bool supports(Phase phase) const override
    {
        return phase == Phase::Forward;
    }
    bool
    supportsGeometry(const ConvSpec &spec) const override
    {
        return spec.fy == 3 && spec.fx == 3 && spec.sy == 1 &&
               spec.sx == 1;
    }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_WINOGRAD_HH
