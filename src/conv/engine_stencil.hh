/**
 * @file
 * Stencil-Kernel forward propagation engine (paper §4.3).
 *
 * Computes the convolution directly — without unfolding — as a 2-D
 * Fy x Fx box stencil per (output feature, input channel) pair,
 * exploiting the spatial reuse that unfolding destroys: each input
 * element contributes to up to Fy*Fx neighbouring outputs while it is
 * in a register.
 *
 * The implementation mirrors the paper's two components:
 *
 *  - Basic block generator. C++ templates parameterized over the
 *    register tile height RY produce fully unrolled AVX2/FMA blocks
 *    with the structure of the paper's Fig. 7: every input vector is
 *    loaded ONCE and fused-multiplied into every output row of the
 *    tile that uses it (up to min(RY, Fy) reuses per load). A runtime
 *    search picks the RY that minimizes vector loads subject to the
 *    16-register budget — the geometric optimization of §4.3.
 *
 *  - Schedule generator. Images are distributed across cores (the
 *    stencil itself is single-core, like GEMM-in-Parallel), and within
 *    an image the (f, c) plane pairs are walked so each input plane is
 *    streamed while the output plane stays hot.
 *
 * Strided convolutions are handled with the data-layout transform of
 * Eq. 21 (tensor/layout.hh stridedSplitX): the input plane is split
 * into sx interleaved lanes so kernel taps become unit-stride vector
 * loads.
 */

#ifndef SPG_CONV_ENGINE_STENCIL_HH
#define SPG_CONV_ENGINE_STENCIL_HH

#include "conv/engine.hh"

namespace spg {

/** Direct stencil convolution for FP. */
class StencilEngine : public ConvEngine
{
  public:
    /**
     * @param fixed_ry When > 0, disable the register-tile search and
     *        force the given tile height (used by the ablation bench).
     * @param use_stride_transform When false, strided convolutions use
     *        strided (non-transformed) loads (ablation).
     */
    explicit StencilEngine(int fixed_ry = 0,
                           bool use_stride_transform = true)
        : fixedRy(fixed_ry), strideTransform(use_stride_transform)
    {}

    using ConvEngine::forward;

    std::string name() const override { return "stencil"; }
    bool supports(Phase phase) const override
    {
        return phase == Phase::Forward;
    }

    void forward(const ConvSpec &spec, const Tensor &in,
                 const Tensor &weights, Tensor &out, ThreadPool &pool,
                 const Epilogue &epilogue) const override;

    /**
     * @return the register tile height the basic-block generator
     * selects for the given kernel height: the RY <= budget that
     * minimizes input vector loads per output element,
     * (RY + Fy - 1) / RY.
     */
    static int selectTileHeight(std::int64_t fy);

  private:
    int fixedRy;
    bool strideTransform;
};

} // namespace spg

#endif // SPG_CONV_ENGINE_STENCIL_HH
