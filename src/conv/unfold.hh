/**
 * @file
 * Input unfolding (im2col) and folding (col2im) — paper §2.3 step 1.
 *
 * The unfolded matrix U' is laid out TRANSPOSED relative to the
 * paper's Fig. 2b: each COLUMN of U' is one flattened kernel
 * application, so forward propagation is the plain (no-transpose) MM
 *
 *     O[Nf x OyOx] = W[Nf x NcFyFx] * U'[NcFyFx x OyOx]
 *
 * which matches the paper's O = W * U^T (Fig. 2c) without needing a
 * transposed GEMM. The backward passes then become
 *
 *     U'grad = W^T * EO           (then col2im-fold into EI)
 *     dW    += EO * U'^T
 *
 * expressed through the Trans flags of blas/gemm.hh.
 */

#ifndef SPG_CONV_UNFOLD_HH
#define SPG_CONV_UNFOLD_HH

#include <cstdint>

#include "conv/conv_spec.hh"

namespace spg {

/**
 * Unfold one image: in [Nc][Ny][Nx] -> u [Nc*Fy*Fx][Oy*Ox].
 * Row index is (c*Fy + ky)*Fx + kx; column index is y*Ox + x.
 *
 * @param spec Layer geometry.
 * @param in Input image.
 * @param u Destination, overwritten; size gemmK() x gemmN().
 */
void unfoldImage(const ConvSpec &spec, const float *in, float *u);

/**
 * Fused unfold: emit U' directly in the GEMM B-panel format
 * (blas/gemm.hh PackedMatrix, B kind, k = gemmK(), n = gemmN()),
 * skipping the dense intermediate that packB would otherwise re-read
 * and copy. Output is byte-identical to
 * packMatrixBInto(Trans::No, ..., unfoldImage(...)), including the
 * zero-filled padding columns, so a PackedMatrix::viewB over the
 * buffer plugs straight into sgemmPackedB / sgemmPackedAB.
 *
 * @param spec Layer geometry.
 * @param in Input image [Nc][Ny][Nx].
 * @param panels Destination, overwritten; size
 *     PackedMatrix::panelElemsB(spec.gemmK(), spec.gemmN()) floats,
 *     64-byte aligned.
 */
void unfoldImageToPanels(const ConvSpec &spec, const float *in,
                         float *panels);

/**
 * Fold (col2im): accumulate the unfolded-gradient matrix back into the
 * input-error image. ei must be zeroed by the caller first.
 *
 * @param spec Layer geometry.
 * @param u Unfolded gradient [Nc*Fy*Fx][Oy*Ox].
 * @param ei Input errors [Nc][Ny][Nx], accumulated into.
 */
void foldImageAccumulate(const ConvSpec &spec, const float *u, float *ei);

} // namespace spg

#endif // SPG_CONV_UNFOLD_HH
