#include "conv/engine_fft.hh"

#include <algorithm>
#include <vector>

#include "fft/fft.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace spg {

std::int64_t
FftConvEngine::paddedSize(const ConvSpec &spec)
{
    return nextPowerOfTwo(std::max(spec.ny, spec.nx));
}

void
FftConvEngine::forward(const ConvSpec &spec, const Tensor &in,
                       const Tensor &weights, Tensor &out,
                       ThreadPool &pool, const Epilogue &epilogue) const
{
    SPG_TRACE_SCOPE("kernel", "fft FP");
    checkForwardShapes(spec, in, weights, out);
    std::int64_t batch = in.shape()[0];
    std::int64_t p = paddedSize(spec);
    std::int64_t plane = p * p;
    std::int64_t oy = spec.outY(), ox = spec.outX();

    // Feature block size bounded by the spectra budget: one block
    // holds `block * nc` kernel spectra.
    std::int64_t per_plane_bytes = plane * sizeof(Complex);
    std::int64_t block = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(spectraBudget) /
               std::max<std::int64_t>(1, spec.nc * per_plane_bytes));
    block = std::min(block, spec.nf);

    std::vector<Complex> w_spectra(
        static_cast<std::size_t>(block) * spec.nc * plane);

    for (std::int64_t f0 = 0; f0 < spec.nf; f0 += block) {
        std::int64_t fcount = std::min(block, spec.nf - f0);

        // Kernel spectra of this feature block, shared by all images.
        pool.parallelFor2D(
            fcount, spec.nc,
            [&](std::int64_t bf, std::int64_t c, int) {
                Complex *dst =
                    w_spectra.data() + (bf * spec.nc + c) * plane;
                const float *w = weights.data() +
                                 ((f0 + bf) * spec.nc + c) * spec.fy *
                                     spec.fx;
                padRealToComplex(w, spec.fy, spec.fx, p, dst);
                fft2dInplace(dst, p, p);
            },
            /*grain=*/spec.nc); // claim one feature's channel row

        pool.parallelForDynamic(batch, [&](std::int64_t b, int) {
            // Input spectra for this image (all channels).
            // Thread-local so concurrent images do not share buffers.
            thread_local std::vector<Complex> in_spectra;
            thread_local std::vector<Complex> acc;
            in_spectra.resize(static_cast<std::size_t>(spec.nc) * plane);
            acc.resize(plane);

            const float *image = in.data() + b * spec.inputElems();
            for (std::int64_t c = 0; c < spec.nc; ++c) {
                Complex *dst = in_spectra.data() + c * plane;
                padRealToComplex(image + c * spec.ny * spec.nx, spec.ny,
                                 spec.nx, p, dst);
                fft2dInplace(dst, p, p);
            }

            float *out_image = out.data() + b * spec.outputElems();
            for (std::int64_t bf = 0; bf < fcount; ++bf) {
                std::fill(acc.begin(), acc.end(), Complex(0, 0));
                for (std::int64_t c = 0; c < spec.nc; ++c) {
                    accumulateCorrelationSpectrum(
                        in_spectra.data() + c * plane,
                        w_spectra.data() + (bf * spec.nc + c) * plane,
                        plane, acc.data());
                }
                fft2dInplace(acc.data(), p, p, /* inverse */ true);
                float *out_plane = out_image + (f0 + bf) * oy * ox;
                for (std::int64_t y = 0; y < oy; ++y) {
                    const Complex *row = acc.data() + y * spec.sy * p;
                    for (std::int64_t x = 0; x < ox; ++x)
                        out_plane[y * ox + x] =
                            row[x * spec.sx].real();
                }
                // The plane is complete right after extraction: fuse
                // the epilogue while it is still hot.
                epilogue.apply(out_plane,
                               b * spec.outputElems() +
                                   (f0 + bf) * oy * ox,
                               oy * ox);
            }
        }, /*grain=*/1);
    }
}

} // namespace spg
