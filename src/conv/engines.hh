/**
 * @file
 * Convenience umbrella header and engine registry.
 */

#ifndef SPG_CONV_ENGINES_HH
#define SPG_CONV_ENGINES_HH

#include <memory>
#include <vector>

#include "conv/engine.hh"
#include "conv/engine_direct.hh"
#include "conv/engine_fft.hh"
#include "conv/engine_gemm.hh"
#include "conv/engine_gemm_packed.hh"
#include "conv/engine_sparse.hh"
#include "conv/engine_sparse_direct.hh"
#include "conv/engine_sparse_weights.hh"
#include "conv/engine_stencil.hh"
#include "conv/engine_winograd.hh"

namespace spg {

/**
 * @return one instance of every paper-set production engine (excludes
 * the reference oracle and extensions): parallel-gemm,
 * gemm-in-parallel, their packed-operand variants, stencil, direct,
 * sparse.
 */
std::vector<std::unique_ptr<ConvEngine>> makeAllEngines();

/**
 * @return the paper-set engines plus extensions (the two
 * weight-sparsity FP engines, the FFT FP engine and Winograd) — the
 * candidate set for tuning pruned or large-kernel models.
 */
std::vector<std::unique_ptr<ConvEngine>> makeExtendedEngines();

/**
 * @return the engine with the given name(), or nullptr when unknown.
 * Recognized names: "reference", "parallel-gemm", "gemm-in-parallel",
 * "parallel-gemm-packed", "gemm-in-parallel-packed", "stencil",
 * "direct", "sparse", "sparse-weights", "sparse-weights-direct",
 * "fft", "winograd".
 */
std::unique_ptr<ConvEngine> makeEngine(const std::string &name);

} // namespace spg

#endif // SPG_CONV_ENGINES_HH
