/**
 * @file
 * Register-tile basic blocks for the direct NCHWc convolution engine.
 *
 * Following the "Anatomy of High-Performance Deep Learning
 * Convolutions" direct-convolution recipe, these blocks consume
 * channel-blocked operands (block width kChannelBlock = 8 floats = one
 * AVX2 vector) and keep a (width-tile x accumulator-row) register tile
 * live across the full reduction — no im2col, no packing pass in the
 * inner loop. Template parameter RW is the width tile (output pixels
 * held in registers at once); the accumulator rows are fixed by the
 * channel block (8 floats = 2 ymm of doubles for FP, 1 ymm of floats
 * for BP).
 *
 * Bit-for-bit contract with conv_ref.cc (the test oracle):
 *
 *  - FP: the reference accumulates in DOUBLE in (c, ky, kx) ascending
 *    order and rounds once to float. float*float products are exact in
 *    double (24+24 < 53 mantissa bits), so a double FMA chain in the
 *    same order is bitwise identical to the reference's
 *    multiply-then-add chain, and _mm256_cvtpd_ps performs the same
 *    final round-to-nearest as the reference's (float) cast. The
 *    zero-padded tail lanes append exact +-0 terms that cannot perturb
 *    the sum.
 *  - BP-data / BP-weights: the reference accumulates in FLOAT and the
 *    compiler contracts each `acc += e * w` into one FMA, so these
 *    blocks use float FMAs, one per reference contribution, in the
 *    exact per-element reference order: BP-data gathers (f asc,
 *    ky desc, kx desc) — the scatter order (f, oy asc, ox asc) seen
 *    from a fixed input pixel — and BP-weights accumulates (b, oy, ox)
 *    ascending with partial sums spilled through float memory (exact).
 *    The reference's `e == 0` skip is arithmetic-neutral: adding the
 *    +-0 product of a zero error term never changes a float
 *    accumulator under round-to-nearest (an accumulator can never
 *    become -0 by accumulation from +0).
 */

#ifndef SPG_CONV_DIRECT_BLOCK_HH
#define SPG_CONV_DIRECT_BLOCK_HH

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace spg {

#if defined(__AVX2__) && defined(__FMA__)

/**
 * FP: compute out_row[x0 .. x0+RW) x 8 features of one blocked output
 * row. Accumulates in double (2 ymm per pixel) over (c, ky, kx)
 * ascending, then rounds once to float — bitwise the reference sum.
 *
 * @param in_img Blocked input image [cBlocks][ny][nx][8].
 * @param wblk KCRSck weights for this feature block:
 *        [cBlocks][fy][fx][8ci][8ko].
 * @param out_row Blocked output row base [ox][8].
 */
template <int RW>
inline void
directFpTile(const float *in_img, const float *wblk,
             std::int64_t c_blocks, std::int64_t ny, std::int64_t nx,
             std::int64_t fy, std::int64_t fx, std::int64_t sy,
             std::int64_t sx, std::int64_t y, std::int64_t x0,
             float *out_row)
{
    __m256d acc[RW][2];
    for (int p = 0; p < RW; ++p)
        acc[p][0] = acc[p][1] = _mm256_setzero_pd();

    const std::int64_t in_plane = ny * nx * 8;
    const std::int64_t w_block = fy * fx * 64;
    for (std::int64_t cb = 0; cb < c_blocks; ++cb) {
        const float *ic = in_img + cb * in_plane;
        const float *wc = wblk + cb * w_block;
        for (int ci = 0; ci < 8; ++ci) {
            for (std::int64_t ky = 0; ky < fy; ++ky) {
                const float *irow = ic + (y * sy + ky) * nx * 8 + ci;
                const float *wrow = wc + ky * fx * 64 + ci * 8;
                for (std::int64_t kx = 0; kx < fx; ++kx) {
                    __m256 wv = _mm256_loadu_ps(wrow + kx * 64);
                    __m256d wlo =
                        _mm256_cvtps_pd(_mm256_castps256_ps128(wv));
                    __m256d whi =
                        _mm256_cvtps_pd(_mm256_extractf128_ps(wv, 1));
                    for (int p = 0; p < RW; ++p) {
                        __m256d xv = _mm256_cvtps_pd(_mm_broadcast_ss(
                            irow + ((x0 + p) * sx + kx) * 8));
                        acc[p][0] =
                            _mm256_fmadd_pd(xv, wlo, acc[p][0]);
                        acc[p][1] =
                            _mm256_fmadd_pd(xv, whi, acc[p][1]);
                    }
                }
            }
        }
    }

    for (int p = 0; p < RW; ++p) {
        __m128 lo = _mm256_cvtpd_ps(acc[p][0]);
        __m128 hi = _mm256_cvtpd_ps(acc[p][1]);
        _mm256_storeu_ps(out_row + (x0 + p) * 8,
                         _mm256_set_m128(hi, lo));
    }
}

/**
 * BP-data, stride-1 interior tile: ei_row[ix0 .. ix0+RW) x 8 input
 * channels, every tap in [ky_lo, ky_hi] x [0, fx) valid for all RW
 * pixels. Gathers in (f asc, ky desc, kx desc) = the reference
 * scatter order seen from a fixed input pixel.
 *
 * @param eo_img Output errors for one image, NCHW [nf][oy][ox]
 *        (already masked when the fused ReLU mask is active).
 * @param wcb BP-gather weights for this channel block:
 *        [nf][fy][fx][8ci].
 * @param ei_row Blocked input-error row base [nx][8].
 */
template <int RW>
inline void
directBpdTile(const float *eo_img, const float *wcb, std::int64_t nf,
              std::int64_t oy, std::int64_t ox, std::int64_t fy,
              std::int64_t fx, std::int64_t iy, std::int64_t ix0,
              std::int64_t ky_lo, std::int64_t ky_hi, float *ei_row)
{
    __m256 acc[RW];
    for (int p = 0; p < RW; ++p)
        acc[p] = _mm256_setzero_ps();

    const std::int64_t eo_plane = oy * ox;
    const std::int64_t w_plane = fy * fx * 8;
    for (std::int64_t f = 0; f < nf; ++f) {
        const float *eop = eo_img + f * eo_plane;
        const float *wf = wcb + f * w_plane;
        for (std::int64_t ky = ky_hi; ky >= ky_lo; --ky) {
            const float *eor = eop + (iy - ky) * ox + ix0;
            const float *wr = wf + ky * fx * 8;
            for (std::int64_t kx = fx - 1; kx >= 0; --kx) {
                __m256 wv = _mm256_loadu_ps(wr + kx * 8);
                for (int p = 0; p < RW; ++p) {
                    __m256 ev = _mm256_broadcast_ss(eor + p - kx);
                    acc[p] = _mm256_fmadd_ps(ev, wv, acc[p]);
                }
            }
        }
    }

    for (int p = 0; p < RW; ++p)
        _mm256_storeu_ps(ei_row + (ix0 + p) * 8, acc[p]);
}

/**
 * BP-data, one pixel with explicit tap bounds (stride-1 border
 * columns): like directBpdTile<1> but kx restricted to
 * [kx_lo, kx_hi]. Zero errors are skipped like the reference (the
 * skip is arithmetic-neutral; it only saves work).
 */
inline void
directBpdPixel(const float *eo_img, const float *wcb, std::int64_t nf,
               std::int64_t oy, std::int64_t ox, std::int64_t fy,
               std::int64_t fx, std::int64_t iy, std::int64_t ix,
               std::int64_t ky_lo, std::int64_t ky_hi,
               std::int64_t kx_lo, std::int64_t kx_hi, float *ei_row)
{
    __m256 acc = _mm256_setzero_ps();
    const std::int64_t eo_plane = oy * ox;
    const std::int64_t w_plane = fy * fx * 8;
    for (std::int64_t f = 0; f < nf; ++f) {
        const float *eop = eo_img + f * eo_plane;
        const float *wf = wcb + f * w_plane;
        for (std::int64_t ky = ky_hi; ky >= ky_lo; --ky) {
            const float *eor = eop + (iy - ky) * ox;
            const float *wr = wf + ky * fx * 8;
            for (std::int64_t kx = kx_hi; kx >= kx_lo; --kx) {
                float e = eor[ix - kx];
                if (e != 0.0f)
                    acc = _mm256_fmadd_ps(_mm256_set1_ps(e),
                                          _mm256_loadu_ps(wr + kx * 8),
                                          acc);
            }
        }
    }
    _mm256_storeu_ps(ei_row + ix * 8, acc);
}

/**
 * BP-data, one pixel, arbitrary stride: iterates the valid (oy, ox)
 * range ascending — exactly the reference scatter order.
 */
inline void
directBpdPixelStrided(const float *eo_img, const float *wcb,
                      std::int64_t nf, std::int64_t oy, std::int64_t ox,
                      std::int64_t fy, std::int64_t fx, std::int64_t sy,
                      std::int64_t sx, std::int64_t iy, std::int64_t ix,
                      float *ei_row)
{
    __m256 acc = _mm256_setzero_ps();
    // oy range with iy - oyy*sy in [0, fy), ascending; same for ox.
    std::int64_t oy_lo = iy >= fy ? (iy - fy) / sy + 1 : 0;
    std::int64_t oy_hi = iy / sy < oy - 1 ? iy / sy : oy - 1;
    std::int64_t ox_lo = ix >= fx ? (ix - fx) / sx + 1 : 0;
    std::int64_t ox_hi = ix / sx < ox - 1 ? ix / sx : ox - 1;
    const std::int64_t eo_plane = oy * ox;
    const std::int64_t w_plane = fy * fx * 8;
    for (std::int64_t f = 0; f < nf; ++f) {
        const float *eop = eo_img + f * eo_plane;
        const float *wf = wcb + f * w_plane;
        for (std::int64_t oyy = oy_lo; oyy <= oy_hi; ++oyy) {
            const float *eor = eop + oyy * ox;
            const float *wr = wf + (iy - oyy * sy) * fx * 8;
            for (std::int64_t oxx = ox_lo; oxx <= ox_hi; ++oxx) {
                float e = eor[oxx];
                if (e != 0.0f)
                    acc = _mm256_fmadd_ps(
                        _mm256_set1_ps(e),
                        _mm256_loadu_ps(wr + (ix - oxx * sx) * 8), acc);
            }
        }
    }
    _mm256_storeu_ps(ei_row + ix * 8, acc);
}

/**
 * BP-weights: accumulate one image's contributions for one
 * (feature-block, channel-block, ky) task into the task's float
 * gradient buffer dwbuf[fx][8ci][8ko]. Walks (oy asc, ox asc) with
 * the ox-chain held in registers per (kx, ci-chunk) and spilled
 * through float memory between rows — both exact, so the per-element
 * contribution order is the reference's (b, oy, ox).
 *
 * @param eo_img Blocked (and mask-staged) errors for this image and
 *        feature block: [oy][ox][8ko].
 * @param in_base Input base for this image and channel block such
 *        that lane ci of input column ix on input row iy lives at
 *        in_base + iy * in_row_stride + ix * in_x_stride +
 *        ci * in_c_stride (covers NCHW and blocked inputs).
 * @param clive Live channel lanes in this block (tail blocks < 8).
 */
template <int RC>
inline void
directBpwRow(const float *eo_img, const float *in_base,
             std::int64_t in_row_stride, std::int64_t in_x_stride,
             std::int64_t in_c_stride, std::int64_t oy, std::int64_t ox,
             std::int64_t fx, std::int64_t sy, std::int64_t sx,
             std::int64_t ky, std::int64_t clive, float *dwbuf)
{
    for (std::int64_t oyy = 0; oyy < oy; ++oyy) {
        const float *eor = eo_img + oyy * ox * 8;
        const float *irow = in_base + (oyy * sy + ky) * in_row_stride;
        for (std::int64_t kx = 0; kx < fx; ++kx) {
            const float *icol = irow + kx * in_x_stride;
            std::int64_t ci = 0;
            for (; ci + RC <= clive; ci += RC) {
                float *d = dwbuf + (kx * 8 + ci) * 8;
                __m256 acc[RC];
                for (int j = 0; j < RC; ++j)
                    acc[j] = _mm256_loadu_ps(d + j * 8);
                const float *ic = icol + ci * in_c_stride;
                for (std::int64_t oxx = 0; oxx < ox; ++oxx) {
                    __m256 ev = _mm256_loadu_ps(eor + oxx * 8);
                    for (int j = 0; j < RC; ++j) {
                        __m256 xv = _mm256_broadcast_ss(
                            ic + oxx * sx * in_x_stride +
                            j * in_c_stride);
                        acc[j] = _mm256_fmadd_ps(xv, ev, acc[j]);
                    }
                }
                for (int j = 0; j < RC; ++j)
                    _mm256_storeu_ps(d + j * 8, acc[j]);
            }
            for (; ci < clive; ++ci) {
                float *d = dwbuf + (kx * 8 + ci) * 8;
                __m256 acc = _mm256_loadu_ps(d);
                const float *ic = icol + ci * in_c_stride;
                for (std::int64_t oxx = 0; oxx < ox; ++oxx)
                    acc = _mm256_fmadd_ps(
                        _mm256_broadcast_ss(ic +
                                            oxx * sx * in_x_stride),
                        _mm256_loadu_ps(eor + oxx * 8), acc);
                _mm256_storeu_ps(d, acc);
            }
        }
    }
}

#endif // __AVX2__ && __FMA__

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#define SPG_DIRECT_AVX512 1

/**
 * AVX-512 widenings of the blocks above. The per-element contribution
 * ORDER and operation sequence are identical to the 256-bit blocks
 * (and hence to the reference): a wider vector only groups more
 * independent output elements per instruction, which cannot perturb
 * any individual sum.
 *
 *  - FP holds one channel block as a full zmm of doubles (8 lanes)
 *    and consumes pre-converted double operands, so the input
 *    broadcast folds into the FMA as a {1to8} memory operand
 *    (float -> double conversion is exact).
 *  - BP-data pairs two input-channel blocks per zmm (16 float lanes)
 *    against pair-packed weights [nf][fy][fx][16].
 *  - BP-weights pairs two feature blocks per zmm against pair-staged
 *    errors [oy][ox][16].
 */

/** FP over double operands: out_row[x0 .. x0+RW) x 8 features.
 *  in_img_d is the blocked input converted to double
 *  [cBlocks][ny][nx][8]; wblk_d is KCRSck converted to double
 *  [cBlocks][fy][fx][8ci][8ko] (64-byte aligned). */
template <int RW>
inline void
directFpTileZ(const double *in_img_d, const double *wblk_d,
              std::int64_t c_blocks, std::int64_t ny, std::int64_t nx,
              std::int64_t fy, std::int64_t fx, std::int64_t sy,
              std::int64_t sx, std::int64_t y, std::int64_t x0,
              float *out_row)
{
    __m512d acc[RW];
    for (int p = 0; p < RW; ++p)
        acc[p] = _mm512_setzero_pd();

    const std::int64_t in_plane = ny * nx * 8;
    const std::int64_t w_block = fy * fx * 64;
    for (std::int64_t cb = 0; cb < c_blocks; ++cb) {
        const double *ic = in_img_d + cb * in_plane;
        const double *wc = wblk_d + cb * w_block;
        for (int ci = 0; ci < 8; ++ci) {
            for (std::int64_t ky = 0; ky < fy; ++ky) {
                const double *irow = ic + (y * sy + ky) * nx * 8 + ci;
                const double *wrow = wc + ky * fx * 64 + ci * 8;
                for (std::int64_t kx = 0; kx < fx; ++kx) {
                    __m512d wv = _mm512_load_pd(wrow + kx * 64);
                    for (int p = 0; p < RW; ++p)
                        acc[p] = _mm512_fmadd_pd(
                            _mm512_set1_pd(
                                irow[((x0 + p) * sx + kx) * 8]),
                            wv, acc[p]);
                }
            }
        }
    }

    for (int p = 0; p < RW; ++p)
        _mm256_storeu_ps(out_row + (x0 + p) * 8,
                         _mm512_cvtpd_ps(acc[p]));
}

/** directFpTileZ specialized for sx == 1: lane p reads the input at a
 *  compile-time displacement (p * 8 doubles), so every FMA folds its
 *  broadcast without per-lane address arithmetic stealing ALU ports
 *  from the FMA pipes. */
template <int RW>
inline void
directFpTileZ1(const double *in_img_d, const double *wblk_d,
               std::int64_t c_blocks, std::int64_t ny, std::int64_t nx,
               std::int64_t fy, std::int64_t fx, std::int64_t sy,
               std::int64_t y, std::int64_t x0, float *out_row)
{
    __m512d acc[RW];
    for (int p = 0; p < RW; ++p)
        acc[p] = _mm512_setzero_pd();

    const std::int64_t in_plane = ny * nx * 8;
    const std::int64_t w_block = fy * fx * 64;
    for (std::int64_t cb = 0; cb < c_blocks; ++cb) {
        const double *ic = in_img_d + cb * in_plane;
        const double *wc = wblk_d + cb * w_block;
        for (int ci = 0; ci < 8; ++ci) {
            for (std::int64_t ky = 0; ky < fy; ++ky) {
                const double *irow =
                    ic + ((y * sy + ky) * nx + x0) * 8 + ci;
                const double *wrow = wc + ky * fx * 64 + ci * 8;
                for (std::int64_t kx = 0; kx < fx; ++kx) {
                    __m512d wv = _mm512_load_pd(wrow + kx * 64);
                    const double *ip = irow + kx * 8;
                    for (int p = 0; p < RW; ++p)
                        acc[p] = _mm512_fmadd_pd(
                            _mm512_set1_pd(ip[p * 8]), wv, acc[p]);
                }
            }
        }
    }

    for (int p = 0; p < RW; ++p)
        _mm256_storeu_ps(out_row + (x0 + p) * 8,
                         _mm512_cvtpd_ps(acc[p]));
}

/** Balanced stride-1 FP row: covers output columns [0, oxN) with
 *  near-equal register tiles no wider than 14 (15+ accumulators spill
 *  the sliding broadcast window) and as wide as the split allows, so
 *  no pixel rides a latency-bound narrow tail tile. Tile width only
 *  groups independent output pixels — each pixel's FMA chain order is
 *  unchanged, so the split is bit-for-bit neutral. */
inline void
directFpRowZ1(const double *in_img_d, const double *wblk_d,
              std::int64_t c_blocks, std::int64_t ny, std::int64_t nx,
              std::int64_t fy, std::int64_t fx, std::int64_t sy,
              std::int64_t y, std::int64_t oxN, float *out_row)
{
    const std::int64_t n = (oxN + 13) / 14;
    const std::int64_t base = oxN / n, extra = oxN % n;
    std::int64_t x = 0;
    for (std::int64_t t = 0; t < n; ++t) {
        const std::int64_t w = base + (t < extra ? 1 : 0);
#define SPG_FP_TILE_CASE(W)                                              \
    case W:                                                              \
        directFpTileZ1<W>(in_img_d, wblk_d, c_blocks, ny, nx, fy, fx,    \
                          sy, y, x, out_row);                            \
        break;
        switch (w) {
            SPG_FP_TILE_CASE(14)
            SPG_FP_TILE_CASE(13)
            SPG_FP_TILE_CASE(12)
            SPG_FP_TILE_CASE(11)
            SPG_FP_TILE_CASE(10)
            SPG_FP_TILE_CASE(9)
            SPG_FP_TILE_CASE(8)
            SPG_FP_TILE_CASE(7)
            SPG_FP_TILE_CASE(6)
            SPG_FP_TILE_CASE(5)
            SPG_FP_TILE_CASE(4)
            SPG_FP_TILE_CASE(3)
            SPG_FP_TILE_CASE(2)
            SPG_FP_TILE_CASE(1)
        }
#undef SPG_FP_TILE_CASE
        x += w;
    }
}

/** BP-data interior tile over a PAIR of channel blocks: lanes 0-7 are
 *  block cb, lanes 8-15 block cb+1. wpair is the pair-packed gather
 *  layout [nf][fy][fx][16] (64-byte aligned). */
template <int RW>
inline void
directBpdTileZ(const float *eo_img, const float *wpair, std::int64_t nf,
               std::int64_t oy, std::int64_t ox, std::int64_t fy,
               std::int64_t fx, std::int64_t iy, std::int64_t ix0,
               std::int64_t ky_lo, std::int64_t ky_hi, float *ei_row0,
               float *ei_row1)
{
    __m512 acc[RW];
    for (int p = 0; p < RW; ++p)
        acc[p] = _mm512_setzero_ps();

    const std::int64_t eo_plane = oy * ox;
    const std::int64_t w_plane = fy * fx * 16;
    for (std::int64_t f = 0; f < nf; ++f) {
        const float *eop = eo_img + f * eo_plane;
        const float *wf = wpair + f * w_plane;
        for (std::int64_t ky = ky_hi; ky >= ky_lo; --ky) {
            const float *eor = eop + (iy - ky) * ox + ix0;
            const float *wr = wf + ky * fx * 16;
            for (std::int64_t kx = fx - 1; kx >= 0; --kx) {
                __m512 wv = _mm512_load_ps(wr + kx * 16);
                for (int p = 0; p < RW; ++p)
                    acc[p] = _mm512_fmadd_ps(
                        _mm512_set1_ps(eor[p - kx]), wv, acc[p]);
            }
        }
    }

    for (int p = 0; p < RW; ++p) {
        _mm256_storeu_ps(ei_row0 + (ix0 + p) * 8,
                         _mm512_castps512_ps256(acc[p]));
        _mm256_storeu_ps(ei_row1 + (ix0 + p) * 8,
                         _mm512_extractf32x8_ps(acc[p], 1));
    }
}

/** Balanced BP-data interior span [x0, x1): same near-equal register
 *  tile split as directFpRowZ1, capped at width 14, bit-for-bit
 *  neutral for the same reason. */
inline void
directBpdSpanZ(const float *eo_img, const float *wpair, std::int64_t nf,
               std::int64_t oy, std::int64_t ox, std::int64_t fy,
               std::int64_t fx, std::int64_t iy, std::int64_t x0,
               std::int64_t x1, std::int64_t ky_lo, std::int64_t ky_hi,
               float *ei_row0, float *ei_row1)
{
    const std::int64_t span = x1 - x0;
    if (span <= 0)
        return;
    const std::int64_t n = (span + 13) / 14;
    const std::int64_t base = span / n, extra = span % n;
    std::int64_t x = x0;
    for (std::int64_t t = 0; t < n; ++t) {
        const std::int64_t w = base + (t < extra ? 1 : 0);
#define SPG_BPD_TILE_CASE(W)                                             \
    case W:                                                              \
        directBpdTileZ<W>(eo_img, wpair, nf, oy, ox, fy, fx, iy, x,      \
                          ky_lo, ky_hi, ei_row0, ei_row1);               \
        break;
        switch (w) {
            SPG_BPD_TILE_CASE(14)
            SPG_BPD_TILE_CASE(13)
            SPG_BPD_TILE_CASE(12)
            SPG_BPD_TILE_CASE(11)
            SPG_BPD_TILE_CASE(10)
            SPG_BPD_TILE_CASE(9)
            SPG_BPD_TILE_CASE(8)
            SPG_BPD_TILE_CASE(7)
            SPG_BPD_TILE_CASE(6)
            SPG_BPD_TILE_CASE(5)
            SPG_BPD_TILE_CASE(4)
            SPG_BPD_TILE_CASE(3)
            SPG_BPD_TILE_CASE(2)
            SPG_BPD_TILE_CASE(1)
        }
#undef SPG_BPD_TILE_CASE
        x += w;
    }
}

/** BP-data border tile over a channel-block pair: input columns
 *  ix0 .. ix0+w (w <= 16), with the lane range clipped per tap to the
 *  valid output columns — a vectorized replacement for per-pixel
 *  border loops. Taps outside the clip are not part of any lane's
 *  reference sum, and surviving lanes still accumulate in (f asc,
 *  ky desc, kx desc) order. */
inline void
directBpdEdgeZ(const float *eo_img, const float *wpair, std::int64_t nf,
               std::int64_t oy, std::int64_t ox, std::int64_t fy,
               std::int64_t fx, std::int64_t iy, std::int64_t ix0,
               std::int64_t w, std::int64_t ky_lo, std::int64_t ky_hi,
               float *ei_row0, float *ei_row1)
{
    __m512 acc[16];
    for (std::int64_t p = 0; p < 16; ++p)
        acc[p] = _mm512_setzero_ps();

    const std::int64_t eo_plane = oy * ox;
    const std::int64_t w_plane = fy * fx * 16;
    for (std::int64_t f = 0; f < nf; ++f) {
        const float *eop = eo_img + f * eo_plane;
        const float *wf = wpair + f * w_plane;
        for (std::int64_t ky = ky_hi; ky >= ky_lo; --ky) {
            const float *eor = eop + (iy - ky) * ox;
            const float *wr = wf + ky * fx * 16;
            for (std::int64_t kx = fx - 1; kx >= 0; --kx) {
                // Lane p covers input column ix0 + p; its output
                // column ix0 + p - kx must lie in [0, ox).
                const std::int64_t p_lo =
                    kx > ix0 ? kx - ix0 : 0;
                const std::int64_t p_hi =
                    w - 1 < ox - 1 + kx - ix0 ? w - 1
                                              : ox - 1 + kx - ix0;
                if (p_lo > p_hi)
                    continue;
                __m512 wv = _mm512_load_ps(wr + kx * 16);
                const float *e0 = eor + ix0 - kx;
                for (std::int64_t p = p_lo; p <= p_hi; ++p)
                    acc[p] = _mm512_fmadd_ps(_mm512_set1_ps(e0[p]), wv,
                                             acc[p]);
            }
        }
    }

    for (std::int64_t p = 0; p < w; ++p) {
        _mm256_storeu_ps(ei_row0 + (ix0 + p) * 8,
                         _mm512_castps512_ps256(acc[p]));
        _mm256_storeu_ps(ei_row1 + (ix0 + p) * 8,
                         _mm512_extractf32x8_ps(acc[p], 1));
    }
}

/** BP-data border pixel over a channel-block pair (explicit tap
 *  bounds, reference zero-skip). */
inline void
directBpdPixelZ(const float *eo_img, const float *wpair, std::int64_t nf,
                std::int64_t oy, std::int64_t ox, std::int64_t fy,
                std::int64_t fx, std::int64_t iy, std::int64_t ix,
                std::int64_t ky_lo, std::int64_t ky_hi,
                std::int64_t kx_lo, std::int64_t kx_hi, float *ei_row0,
                float *ei_row1)
{
    __m512 acc = _mm512_setzero_ps();
    const std::int64_t eo_plane = oy * ox;
    const std::int64_t w_plane = fy * fx * 16;
    for (std::int64_t f = 0; f < nf; ++f) {
        const float *eop = eo_img + f * eo_plane;
        const float *wf = wpair + f * w_plane;
        for (std::int64_t ky = ky_hi; ky >= ky_lo; --ky) {
            const float *eor = eop + (iy - ky) * ox;
            const float *wr = wf + ky * fx * 16;
            for (std::int64_t kx = kx_hi; kx >= kx_lo; --kx) {
                float e = eor[ix - kx];
                if (e != 0.0f)
                    acc = _mm512_fmadd_ps(
                        _mm512_set1_ps(e),
                        _mm512_load_ps(wr + kx * 16), acc);
            }
        }
    }
    _mm256_storeu_ps(ei_row0 + ix * 8, _mm512_castps512_ps256(acc));
    _mm256_storeu_ps(ei_row1 + ix * 8, _mm512_extractf32x8_ps(acc, 1));
}

/** BP-weights over a feature-block PAIR: eo_img is the pair-staged
 *  errors [oy][ox][16ko] and dwbuf is [fx][8ci][16ko] (both 64-byte
 *  aligned). Same (oy asc, ox asc) chain as directBpwRow. */
template <int RC>
inline void
directBpwRowZ(const float *eo_img, const float *in_base,
              std::int64_t in_row_stride, std::int64_t in_x_stride,
              std::int64_t in_c_stride, std::int64_t oy, std::int64_t ox,
              std::int64_t fx, std::int64_t sy, std::int64_t sx,
              std::int64_t ky, std::int64_t clive, float *dwbuf)
{
    for (std::int64_t oyy = 0; oyy < oy; ++oyy) {
        const float *eor = eo_img + oyy * ox * 16;
        const float *irow = in_base + (oyy * sy + ky) * in_row_stride;
        for (std::int64_t kx = 0; kx < fx; ++kx) {
            const float *icol = irow + kx * in_x_stride;
            std::int64_t ci = 0;
            for (; ci + RC <= clive; ci += RC) {
                float *d = dwbuf + (kx * 8 + ci) * 16;
                __m512 acc[RC];
                for (int j = 0; j < RC; ++j)
                    acc[j] = _mm512_load_ps(d + j * 16);
                const float *ic = icol + ci * in_c_stride;
                for (std::int64_t oxx = 0; oxx < ox; ++oxx) {
                    __m512 ev = _mm512_load_ps(eor + oxx * 16);
                    for (int j = 0; j < RC; ++j)
                        acc[j] = _mm512_fmadd_ps(
                            _mm512_set1_ps(
                                ic[oxx * sx * in_x_stride +
                                   j * in_c_stride]),
                            ev, acc[j]);
                }
                for (int j = 0; j < RC; ++j)
                    _mm512_store_ps(d + j * 16, acc[j]);
            }
            for (; ci < clive; ++ci) {
                float *d = dwbuf + (kx * 8 + ci) * 16;
                __m512 acc = _mm512_load_ps(d);
                const float *ic = icol + ci * in_c_stride;
                for (std::int64_t oxx = 0; oxx < ox; ++oxx)
                    acc = _mm512_fmadd_ps(
                        _mm512_set1_ps(ic[oxx * sx * in_x_stride]),
                        _mm512_load_ps(eor + oxx * 16), acc);
                _mm512_store_ps(d, acc);
            }
        }
    }
}

#endif // __AVX512F__ && __AVX512DQ__

} // namespace spg

#endif // SPG_CONV_DIRECT_BLOCK_HH
