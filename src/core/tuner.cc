#include "core/tuner.hh"

#include <cmath>
#include <limits>

#include "conv/engine_direct.hh"
#include "conv/packed_weights.hh"
#include "obs/metrics.hh"
#include "obs/perfcnt.hh"
#include "obs/trace.hh"
#include "sparse/sparse_plan.hh"
#include "tensor/blocked.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

namespace spg {

const std::string &
LayerPlan::enginesFor(Phase phase) const
{
    switch (phase) {
      case Phase::Forward:
        return fp_engine;
      case Phase::BackwardData:
        return bp_data_engine;
      case Phase::BackwardWeights:
        return bp_weights_engine;
    }
    panic("unknown phase");
}

Tuner::Tuner(TunerOptions options)
    : opts(options),
      engines(options.use_extensions ? makeExtendedEngines()
                                     : makeAllEngines())
{
    if (opts.reps < 1 || opts.batch < 1)
        fatal("tuner needs reps >= 1 and batch >= 1");
}

EngineTiming
Tuner::measure(const ConvEngine &engine, Phase phase, const ConvSpec &spec,
               const Tensor &in, const Tensor &weights, const Tensor &eo,
               ThreadPool &pool, bool fused_relu, bool serving) const
{
    std::int64_t batch = in.shape()[0];
    EngineTiming timing;
    timing.engine = engine.name();
    SPG_TRACE_SCOPE_N(
        "tuner",
        obs::internName("measure " + timing.engine + " " +
                        phaseName(phase)),
        "batch", batch);
    obs::Metrics::global().counter("tuner.measurements").add();

    // The encode-once sparse engine keys its CT-CSR plan on the error
    // tensor. In training every minibatch overwrites EO, so BP-data
    // re-encodes and the BP-weights call that follows hits the plan.
    // Reproduce that here: drop the plan before each BP-data rep (so
    // the encode is charged to BP-data, not hidden by bestTimeSeconds'
    // min over warm reps) and leave it warm for BP-weights.
    bool encode_once = engine.name() == "sparse-cached";
    SparsePlanCache &plans = SparsePlanCache::global();
    SparsePlanCache::Stats before = plans.stats();
    // The CSR-weights FP engines encode once per WEIGHT VERSION, not
    // per call: production amortizes the encode across a whole prune
    // interval, so the timed reps below run warm and the encode is
    // measured separately by one cold call up front.
    bool wsparse_once =
        phase == Phase::Forward &&
        (engine.name() == "sparse-weights" ||
         engine.name() == "sparse-weights-direct");
    PoolStats sched_before = pool.stats();

    // When the layer will run with a fused ReLU, measure that path: FP
    // pays the epilogue clamp + mask store, BP pays the mask staging.
    // The BP mask matches the nonzeros of EO so the effective sparsity
    // the engines see is unchanged by the gating.
    std::vector<std::uint8_t> mask;
    if (fused_relu && phase != Phase::Forward) {
        mask.resize(static_cast<std::size_t>(eo.size()));
        const float *go = eo.data();
        for (std::int64_t i = 0; i < eo.size(); ++i)
            mask[i] = go[i] != 0.0f;
    }
    BpMask bp_mask;
    if (!mask.empty())
        bp_mask.mask = mask.data();

    // Wrap the main timed block with counter reads: own-thread delta
    // (serial shares + participate(0)) plus the pool workers' totals
    // delta covers every byte the phase moved. Normalized per call
    // over warmup + reps — the warmup's cold misses smear in, which
    // is the price of not perturbing bestTimeSeconds.
    auto timedWithPerf = [&](auto &&fn) {
        const bool perf_on = obs::perfEnabled();
        obs::PerfSample own0, pool0;
        if (perf_on) {
            own0 = obs::perfReadThread();
            pool0 = pool.perfTotals();
        }
        double secs = bestTimeSeconds(opts.reps, fn);
        if (perf_on) {
            obs::PerfSample d = obs::perfReadThread().delta(own0);
            d.accumulate(pool.perfTotals().delta(pool0));
            double bytes = d.llcMissBytes();
            if (bytes >= 0)
                timing.measured_bytes = bytes / (opts.reps + 1);
        }
        return secs;
    };

    switch (phase) {
      case Phase::Forward: {
        Tensor out(Shape{batch, spec.nf, spec.outY(), spec.outX()});
        Epilogue epilogue;
        std::vector<std::uint8_t> fp_mask;
        if (fused_relu && serving) {
            // Forward-only deployment clamps without recording the BP
            // activity mask; measure exactly that.
            epilogue = Epilogue{Epilogue::Kind::Relu};
        } else if (fused_relu) {
            fp_mask.resize(static_cast<std::size_t>(out.size()));
            epilogue =
                Epilogue{Epilogue::Kind::ReluMask, fp_mask.data()};
        }
        if (wsparse_once) {
            PackedWeightCache &wcache = PackedWeightCache::global();
            wcache.invalidate(weights.data());
            PackedWeightCache::SparseStats wbefore =
                wcache.sparseStats();
            engine.forward(spec, in, weights, out, pool, epilogue);
            PackedWeightCache::SparseStats wafter =
                wcache.sparseStats();
            timing.encode_seconds =
                wafter.encode_seconds - wbefore.encode_seconds;
        }
        timing.seconds = timedWithPerf([&] {
            engine.forward(spec, in, weights, out, pool, epilogue);
        });
        // The direct engine computes in NCHWc; measured with plain
        // tensors, `seconds` already pays the boundary conversions.
        // Time them separately too: a deployment that negotiates both
        // edges blocked elides exactly this share, and retuneBp carries
        // the number forward instead of re-measuring it.
        if (timing.engine == "direct" &&
            DirectEngine::blockedLayoutSupported()) {
            timing.layout = "nchwc8";
            Tensor bin(nchwcShape(batch, spec.nc, spec.ny, spec.nx));
            Tensor bout(
                nchwcShape(batch, spec.nf, spec.outY(), spec.outX()));
            bout.setLayout(Layout::nchwc(spec.nf));
            timing.convert_seconds = bestTimeSeconds(opts.reps, [&] {
                nchwToNchwc(in, bin, pool);
                nchwcToNchw(bout, out, pool);
            });
        }
        break;
      }
      case Phase::BackwardData: {
        Tensor ei(Shape{batch, spec.nc, spec.ny, spec.nx});
        timing.seconds = timedWithPerf([&] {
            if (encode_once)
                plans.invalidate(eo.data());
            engine.backwardData(spec, eo, weights, ei, pool, bp_mask);
        });
        break;
      }
      case Phase::BackwardWeights: {
        Tensor dw(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
        timing.seconds = timedWithPerf([&] {
            engine.backwardWeights(spec, eo, in, dw, pool, bp_mask);
        });
        break;
      }
    }

    if (encode_once) {
        SparsePlanCache::Stats after = plans.stats();
        std::int64_t encodes = after.encodes - before.encodes;
        if (encodes > 0)
            timing.encode_seconds =
                (after.encode_seconds - before.encode_seconds) / encodes;
    }

    // Schedule telemetry across all reps of this measurement: how the
    // pool actually distributed the work, and how uneven it was.
    PoolStats sched = pool.stats().delta(sched_before);
    timing.imbalance = sched.imbalance();
    timing.chunk_map = sched.chunkMap();
    return timing;
}

void
Tuner::tunePhases(LayerPlan &plan, const std::vector<Phase> &phases,
                  const ConvSpec &spec, double sparsity, ThreadPool &pool,
                  bool fused_relu, double weight_sparsity) const
{
    spec.validate();
    Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(spec.nf * 131 +
                                                  spec.nx));
    Tensor in(Shape{opts.batch, spec.nc, spec.ny, spec.nx});
    Tensor weights(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    Tensor eo(Shape{opts.batch, spec.nf, spec.outY(), spec.outX()});
    in.fillUniform(rng);
    weights.fillUniform(rng, -0.5f, 0.5f);
    // Measure at the layer's ACTUAL weight sparsity: the CSR-weights
    // engines' cost scales with nnz, so the FP crossover must be
    // decided on weights that look like the pruned layer's.
    weights.sparsify(rng, weight_sparsity);
    double actual_ws = weights.sparsity();
    eo.fillUniform(rng);
    eo.sparsify(rng, sparsity);

    plan.tuned_sparsity = sparsity;
    plan.tuned_weight_sparsity = actual_ws;
    for (Phase phase : phases) {
        plan.timings[phase].clear();
        double best = std::numeric_limits<double>::infinity();
        std::string best_name;
        for (const auto &engine : engines) {
            if (!engine->supports(phase) ||
                !engine->supportsGeometry(spec)) {
                continue;
            }
            EngineTiming t = measure(*engine, phase, spec, in, weights,
                                     eo, pool, fused_relu);
            t.weight_sparsity = actual_ws;
            plan.timings[phase].push_back(t);
            if (t.seconds < best) {
                best = t.seconds;
                best_name = engine->name();
            }
        }
        SPG_ASSERT(!best_name.empty());
        if (obs::traceEnabled()) {
            obs::traceInstant(
                "tuner", obs::internName("chose " + best_name + " for " +
                                         phaseName(phase)));
        }
        switch (phase) {
          case Phase::Forward:
            plan.fp_engine = best_name;
            break;
          case Phase::BackwardData:
            plan.bp_data_engine = best_name;
            break;
          case Phase::BackwardWeights:
            plan.bp_weights_engine = best_name;
            break;
        }
        verbose("tuned conv %s %s -> %s (%.3f ms)", spec.str().c_str(),
                phaseName(phase), best_name.c_str(), best * 1e3);
    }
}

LayerPlan
Tuner::tune(const ConvSpec &spec, double sparsity, ThreadPool &pool,
            bool fused_relu, double weight_sparsity) const
{
    LayerPlan plan;
    tunePhases(plan,
               {Phase::Forward, Phase::BackwardData,
                Phase::BackwardWeights},
               spec, sparsity, pool, fused_relu, weight_sparsity);
    return plan;
}

LayerPlan
Tuner::retuneBp(const LayerPlan &previous, const ConvSpec &spec,
                double sparsity, ThreadPool &pool, bool fused_relu) const
{
    if (previous.fp_engine.empty())
        return tune(spec, sparsity, pool, fused_relu,
                    previous.tuned_weight_sparsity);
    LayerPlan plan;
    // FP carried forward: choice and measurements stay valid because
    // forward cost does not depend on the error-gradient sparsity.
    // This includes each timing's layout and convert_seconds, so the
    // conversion cost a deployed blocked edge elides is never
    // re-measured on a sparsity-triggered re-tune. The weight
    // sparsity the FP choice was tuned at is carried too — only a
    // pruning step moves it, and that triggers a full tune instead.
    plan.fp_engine = previous.fp_engine;
    auto it = previous.timings.find(Phase::Forward);
    if (it != previous.timings.end())
        plan.timings[Phase::Forward] = it->second;
    tunePhases(plan, {Phase::BackwardData, Phase::BackwardWeights}, spec,
               sparsity, pool, fused_relu,
               previous.tuned_weight_sparsity);
    plan.tuned_weight_sparsity = previous.tuned_weight_sparsity;
    return plan;
}

std::size_t
ServingLayerPlan::bucketForBatch(std::int64_t batch) const
{
    SPG_ASSERT(!buckets.empty());
    for (std::size_t i = 0; i < buckets.size(); ++i)
        if (buckets[i] >= batch)
            return i;
    return buckets.size() - 1;
}

const std::string &
ServingLayerPlan::engineForBatch(std::int64_t batch) const
{
    return fp_engines[bucketForBatch(batch)];
}

std::vector<std::int64_t>
Tuner::servingBuckets(std::int64_t max_batch)
{
    SPG_ASSERT(max_batch >= 1);
    std::vector<std::int64_t> buckets;
    for (std::int64_t b = 1; b < max_batch; b *= 2)
        buckets.push_back(b);
    buckets.push_back(max_batch);
    return buckets;
}

ServingLayerPlan
Tuner::tuneServing(const ConvSpec &spec, std::int64_t max_batch,
                   ThreadPool &pool, bool fused_relu,
                   double weight_sparsity) const
{
    spec.validate();
    ServingLayerPlan plan;
    plan.buckets = servingBuckets(max_batch);

    Rng rng(0x5E59E ^ static_cast<std::uint64_t>(spec.nf * 131 +
                                                 spec.nx));
    Tensor weights(Shape{spec.nf, spec.nc, spec.fy, spec.fx});
    weights.fillUniform(rng, -0.5f, 0.5f);
    // Measure at the layer's actual weight sparsity — the CSR-weights
    // engines win or lose the small-batch buckets exactly there.
    weights.sparsify(rng, weight_sparsity);
    plan.tuned_weight_sparsity = weights.sparsity();
    // The BP mask path never runs at serving time; eo is a dummy the
    // Forward measurement ignores.
    Tensor eo(Shape{1, spec.nf, spec.outY(), spec.outX()});
    eo.zero();

    for (std::int64_t bucket : plan.buckets) {
        Tensor in(Shape{bucket, spec.nc, spec.ny, spec.nx});
        in.fillUniform(rng);
        std::vector<EngineTiming> timings;
        double best = std::numeric_limits<double>::infinity();
        std::string best_name;
        for (const auto &engine : engines) {
            if (!engine->supports(Phase::Forward) ||
                !engine->supportsGeometry(spec)) {
                continue;
            }
            EngineTiming t =
                measure(*engine, Phase::Forward, spec, in, weights, eo,
                        pool, fused_relu, /*serving=*/true);
            t.weight_sparsity = plan.tuned_weight_sparsity;
            timings.push_back(t);
            if (t.seconds < best) {
                best = t.seconds;
                best_name = engine->name();
            }
        }
        SPG_ASSERT(!best_name.empty());
        verbose("serving-tuned conv %s batch %lld -> %s (%.3f ms)",
                spec.str().c_str(), static_cast<long long>(bucket),
                best_name.c_str(), best * 1e3);
        plan.fp_engines.push_back(best_name);
        plan.timings.push_back(std::move(timings));
    }
    return plan;
}

bool
Tuner::shouldRetune(const LayerPlan &plan, double observed_sparsity,
                    int epoch) const
{
    if (opts.retune_interval > 0 && epoch > 0 &&
        epoch % opts.retune_interval == 0) {
        return true;
    }
    return std::abs(observed_sparsity - plan.tuned_sparsity) >
           opts.sparsity_drift;
}

} // namespace spg
