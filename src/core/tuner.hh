/**
 * @file
 * The spg-CNN computation scheduler (paper §4.4).
 *
 * For each convolution layer and each training phase, the tuner runs
 * every applicable engine on representative data, measures it, and
 * deploys the fastest. Because the profitability of the sparse BP
 * kernel depends on the error-gradient sparsity — which drifts as the
 * model trains — the tuner re-checks BP choices every
 * `retune_interval` epochs.
 */

#ifndef SPG_CORE_TUNER_HH
#define SPG_CORE_TUNER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "conv/engines.hh"
#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"

namespace spg {

/** Measured time of one engine on one phase. */
struct EngineTiming
{
    std::string engine;
    double seconds = 0;
    /** Encode share attributable to this engine, in seconds (the
     *  encode-once engines only; zero when the phase replayed a
     *  cached plan). For "sparse-cached" this is the per-call CT-CSR
     *  encode inside `seconds`; for the CSR-weights FP engines it is
     *  the once-per-weight-version encode measured OUTSIDE the timed
     *  reps — production amortizes it across a whole prune interval,
     *  so `seconds` is the steady-state warm cost. */
    double encode_seconds = 0;
    /** Actual zero fraction of the weight tensor the measurement ran
     *  with — the sparsity axis of the FP crossover decision. */
    double weight_sparsity = 0;
    /** Operand layout the engine computes in ("nchw" for everything
     *  except the direct engine's "nchwc8"). */
    std::string layout = "nchw";
    /** Measured cost of the boundary layout conversions included in
     *  `seconds` that deployment on a negotiated blocked edge elides
     *  (direct FP only: input pack + output unpack). Cached in the
     *  plan so retuneBp never re-measures it. */
    double convert_seconds = 0;
    /** Pool schedule imbalance over the measurement: max/mean
     *  per-worker busy time (1.0 = perfectly balanced). */
    double imbalance = 1.0;
    /** Iteration-space items each pool worker executed during the
     *  measurement — the schedule that actually ran, which simcpu can
     *  charge instead of an idealized even split. */
    std::vector<std::int64_t> chunk_map;
    /** Hardware-counter DRAM traffic per phase execution (LLC misses
     *  x cache line, averaged over warmup + timed reps, summed over
     *  the measuring thread and every pool worker). -1 when counters
     *  are unavailable — distinguish from a measured zero. Feeds the
     *  drift report's measured-vs-modeled traffic join and lets
     *  MachineModel::calibrate fit the bandwidth axis from counters
     *  instead of timed kernels alone. */
    double measured_bytes = -1.0;
};

/** The tuner's decision for one layer. */
struct LayerPlan
{
    std::string fp_engine;
    std::string bp_data_engine;
    std::string bp_weights_engine;

    /** All measurements behind the decision, per phase. */
    std::map<Phase, std::vector<EngineTiming>> timings;

    /** Sparsity the BP choices were tuned at. */
    double tuned_sparsity = 0;

    /** Weight sparsity the FP choice was tuned at; pruning past the
     *  drift threshold re-measures FP at the new value. */
    double tuned_weight_sparsity = 0;

    /** @return the engine chosen for a phase. */
    const std::string &enginesFor(Phase phase) const;
};

/**
 * The serving scheduler's decision for one conv layer: an FP engine
 * per coalesced-batch-size bucket. A dynamic batcher hands the network
 * whatever batch coalesced under its latency budget, and the best FP
 * engine shifts with that batch size (small batches amortize less
 * im2col/pack overhead, so the crossovers sit elsewhere than at the
 * training minibatch). BP phases do not exist in this regime.
 */
struct ServingLayerPlan
{
    /** Bucket batch sizes, ascending; always ends at max_batch. */
    std::vector<std::int64_t> buckets;
    /** Chosen FP engine per bucket (parallel to `buckets`). */
    std::vector<std::string> fp_engines;
    /** All measurements behind each choice (parallel to `buckets`). */
    std::vector<std::vector<EngineTiming>> timings;
    /** Weight sparsity the measurements ran at. */
    double tuned_weight_sparsity = 0;

    /** Bucket index serving a coalesced batch: the smallest bucket
     *  >= batch, or the last bucket for anything larger. */
    std::size_t bucketForBatch(std::int64_t batch) const;
    const std::string &engineForBatch(std::int64_t batch) const;
};

/** Tuning knobs. */
struct TunerOptions
{
    /** Timed repetitions per engine measurement. */
    int reps = 3;
    /** Minibatch size used for measurement. */
    std::int64_t batch = 8;
    /** Epochs between BP re-tunes during training. */
    int retune_interval = 2;
    /** Sparsity change that forces a re-tune regardless of interval. */
    double sparsity_drift = 0.10;
    /** Also consider the extension engines (winograd, fft,
     *  sparse-weights) as candidates. */
    bool use_extensions = false;
};

/**
 * Measures engines and produces LayerPlans. Engines are owned by the
 * tuner; one tuner instance can serve a whole network.
 */
class Tuner
{
  public:
    explicit Tuner(TunerOptions options = {});

    /**
     * Measure all engines applicable to each phase of this layer at
     * the given error sparsity and return the fastest set.
     *
     * @param spec Layer geometry.
     * @param sparsity Expected sparsity of the output-error gradients.
     * @param pool Worker pool (its size is the deployed core count).
     * @param fused_relu Measure the engines as the layer will actually
     *        run them: FP with the ReLU-mask epilogue, BP with the
     *        saved byte mask applied to the error gradients.
     * @param weight_sparsity Zero fraction of the layer's weights —
     *        the synthetic weight tensor is sparsified to it so the
     *        CSR-weights FP engines are measured at the sparsity they
     *        would actually run at (Fig. 4-style crossover).
     */
    LayerPlan tune(const ConvSpec &spec, double sparsity, ThreadPool &pool,
                   bool fused_relu = false,
                   double weight_sparsity = 0.0) const;

    /**
     * Re-tune only the BP phases, carrying the FP choice and its
     * timings forward from `previous`. FP profitability does not
     * depend on the error sparsity, so a shouldRetune()-triggered
     * re-tune need not re-measure it. Falls back to a full tune when
     * `previous` has no FP decision.
     */
    LayerPlan retuneBp(const LayerPlan &previous, const ConvSpec &spec,
                       double sparsity, ThreadPool &pool,
                       bool fused_relu = false) const;

    /**
     * @return true when a plan tuned at `plan.tuned_sparsity` should
     * be re-tuned given the currently observed sparsity and the epoch
     * index (paper §4.4's periodic re-check).
     */
    bool shouldRetune(const LayerPlan &plan, double observed_sparsity,
                      int epoch) const;

    /**
     * Serving-regime tuning: measure every applicable FP engine at
     * each coalesced-batch-size bucket (servingBuckets(max_batch)) and
     * return the per-bucket winners. Measurements run the exact
     * serving path — a fused ReLU is the plain clamp epilogue, no
     * activity mask is stored — so the choice reflects what a
     * forward-only instance will actually execute.
     */
    ServingLayerPlan tuneServing(const ConvSpec &spec,
                                 std::int64_t max_batch,
                                 ThreadPool &pool,
                                 bool fused_relu = false,
                                 double weight_sparsity = 0.0) const;

    /** Power-of-two bucket ladder 1, 2, 4, ... capped at (and always
     *  including) max_batch. */
    static std::vector<std::int64_t> servingBuckets(
        std::int64_t max_batch);

    const TunerOptions &options() const { return opts; }

  private:
    EngineTiming measure(const ConvEngine &engine, Phase phase,
                         const ConvSpec &spec, const Tensor &in,
                         const Tensor &weights, const Tensor &eo,
                         ThreadPool &pool, bool fused_relu,
                         bool serving = false) const;

    void tunePhases(LayerPlan &plan, const std::vector<Phase> &phases,
                    const ConvSpec &spec, double sparsity,
                    ThreadPool &pool, bool fused_relu,
                    double weight_sparsity) const;

    TunerOptions opts;
    std::vector<std::unique_ptr<ConvEngine>> engines;
};

} // namespace spg

#endif // SPG_CORE_TUNER_HH
