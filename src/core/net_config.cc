#include "core/net_config.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

#include "util/logging.hh"

namespace spg {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv:
        return "conv";
      case LayerKind::Relu:
        return "relu";
      case LayerKind::MaxPool:
        return "maxpool";
      case LayerKind::AvgPool:
        return "avgpool";
      case LayerKind::Fc:
        return "fc";
      case LayerKind::Softmax:
        return "softmax";
    }
    return "?";
}

namespace {

/** Simple tokenizer: words, '{', '}', ':' with '#' comments. */
class Lexer
{
  public:
    explicit Lexer(const std::string &text) : src(text) {}

    /** @return next token, or empty string at end of input. */
    std::string
    next()
    {
        skipSpace();
        if (pos >= src.size())
            return "";
        char c = src[pos];
        if (c == '{' || c == '}' || c == ':') {
            ++pos;
            return std::string(1, c);
        }
        if (c == '"') {
            std::size_t end = src.find('"', pos + 1);
            if (end == std::string::npos)
                fatal("net config: unterminated string at offset %zu",
                      pos);
            std::string out = src.substr(pos + 1, end - pos - 1);
            pos = end + 1;
            return out.empty() ? "\"\"" : out;
        }
        std::size_t start = pos;
        while (pos < src.size() && !std::isspace(
                   static_cast<unsigned char>(src[pos])) &&
               src[pos] != '{' && src[pos] != '}' && src[pos] != ':') {
            ++pos;
        }
        return src.substr(start, pos - start);
    }

  private:
    void
    skipSpace()
    {
        for (;;) {
            while (pos < src.size() &&
                   std::isspace(static_cast<unsigned char>(src[pos])))
                ++pos;
            if (pos < src.size() && src[pos] == '#') {
                while (pos < src.size() && src[pos] != '\n')
                    ++pos;
                continue;
            }
            return;
        }
    }

    const std::string &src;
    std::size_t pos = 0;
};

std::int64_t
parseInt(const std::string &value, const std::string &key)
{
    char *end = nullptr;
    long long v = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("net config: key '%s' expects an integer, got '%s'",
              key.c_str(), value.c_str());
    return v;
}

LayerKind
parseKind(const std::string &value)
{
    for (LayerKind kind :
         {LayerKind::Conv, LayerKind::Relu, LayerKind::MaxPool,
          LayerKind::AvgPool, LayerKind::Fc, LayerKind::Softmax}) {
        if (value == layerKindName(kind))
            return kind;
    }
    fatal("net config: unknown layer type '%s'", value.c_str());
    return LayerKind::Conv;  // unreachable
}

/** Parse "key : value" pairs until the closing brace. */
void
parseBlock(Lexer &lex,
           const std::function<void(const std::string &,
                                    const std::string &)> &on_pair)
{
    for (;;) {
        std::string key = lex.next();
        if (key == "}")
            return;
        if (key.empty())
            fatal("net config: unexpected end of input inside a block");
        std::string colon = lex.next();
        if (colon != ":")
            fatal("net config: expected ':' after '%s'", key.c_str());
        std::string value = lex.next();
        if (value.empty() || value == "{" || value == "}")
            fatal("net config: missing value for '%s'", key.c_str());
        on_pair(key, value);
    }
}

} // namespace

NetConfig
parseNetConfig(const std::string &text)
{
    NetConfig config;
    Lexer lex(text);
    for (;;) {
        std::string token = lex.next();
        if (token.empty())
            break;
        if (token == "name") {
            if (lex.next() != ":")
                fatal("net config: expected ':' after 'name'");
            config.name = lex.next();
        } else if (token == "input") {
            if (lex.next() != "{")
                fatal("net config: expected '{' after 'input'");
            parseBlock(lex, [&](const std::string &key,
                                const std::string &value) {
                if (key == "channels")
                    config.channels = parseInt(value, key);
                else if (key == "height")
                    config.height = parseInt(value, key);
                else if (key == "width")
                    config.width = parseInt(value, key);
                else if (key == "classes")
                    config.classes = parseInt(value, key);
                else
                    fatal("net config: unknown input key '%s'",
                          key.c_str());
            });
        } else if (token == "layer") {
            if (lex.next() != "{")
                fatal("net config: expected '{' after 'layer'");
            LayerConfig layer;
            bool have_type = false;
            parseBlock(lex, [&](const std::string &key,
                                const std::string &value) {
                if (key == "type") {
                    layer.kind = parseKind(value);
                    have_type = true;
                } else if (key == "name") {
                    layer.name = value;
                } else if (key == "features") {
                    layer.features = parseInt(value, key);
                } else if (key == "kernel") {
                    layer.kernel = parseInt(value, key);
                } else if (key == "stride") {
                    layer.stride = parseInt(value, key);
                } else if (key == "outputs") {
                    layer.outputs = parseInt(value, key);
                } else {
                    fatal("net config: unknown layer key '%s'",
                          key.c_str());
                }
            });
            if (!have_type)
                fatal("net config: layer block without a 'type'");
            config.layers.push_back(layer);
        } else {
            fatal("net config: unexpected token '%s'", token.c_str());
        }
    }

    if (config.channels <= 0 || config.height <= 0 || config.width <= 0)
        fatal("net config '%s': input block missing or incomplete",
              config.name.c_str());
    if (config.layers.empty())
        fatal("net config '%s': no layers", config.name.c_str());
    return config;
}

NetConfig
parseNetConfigFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open net config '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseNetConfig(buf.str());
}

std::string
renderNetConfig(const NetConfig &config)
{
    std::ostringstream out;
    out << "name: \"" << config.name << "\"\n";
    out << "input { channels: " << config.channels
        << " height: " << config.height << " width: " << config.width
        << " classes: " << config.classes << " }\n";
    for (const auto &layer : config.layers) {
        out << "layer { type: " << layerKindName(layer.kind);
        if (!layer.name.empty())
            out << " name: \"" << layer.name << "\"";
        if (layer.features)
            out << " features: " << layer.features;
        if (layer.kernel)
            out << " kernel: " << layer.kernel;
        if (layer.stride != 1)
            out << " stride: " << layer.stride;
        if (layer.outputs)
            out << " outputs: " << layer.outputs;
        out << " }\n";
    }
    return out.str();
}

} // namespace spg
