/**
 * @file
 * Network description format.
 *
 * spg-CNN accepts a CAFFE-style textual network description (standing
 * in for the Google Protocol Buffer input of the paper's §4). Example:
 *
 *     name: "cifar10"
 *     input { channels: 3 height: 36 width: 36 classes: 10 }
 *     layer { type: conv features: 64 kernel: 5 stride: 1 }
 *     layer { type: relu }
 *     layer { type: maxpool kernel: 4 stride: 4 }
 *     layer { type: conv features: 64 kernel: 5 }
 *     layer { type: relu }
 *     layer { type: maxpool kernel: 2 stride: 2 }
 *     layer { type: fc outputs: 10 }
 *     layer { type: softmax }
 *
 * Comments run from '#' to end of line. Unknown keys are fatal(): a
 * config typo should never silently train a different network.
 */

#ifndef SPG_CORE_NET_CONFIG_HH
#define SPG_CORE_NET_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spg {

/** Layer kinds the format understands. */
enum class LayerKind { Conv, Relu, MaxPool, AvgPool, Fc, Softmax };

/** @return the textual name used in configs ("conv", "relu", ...). */
const char *layerKindName(LayerKind kind);

/** One parsed layer block. */
struct LayerConfig
{
    LayerKind kind;
    std::string name;           ///< optional label
    std::int64_t features = 0;  ///< conv output features
    std::int64_t kernel = 0;    ///< conv / pool kernel size (square)
    std::int64_t stride = 1;    ///< conv / pool stride
    std::int64_t outputs = 0;   ///< fc output count
};

/** A parsed network description. */
struct NetConfig
{
    std::string name;
    std::int64_t channels = 0;
    std::int64_t height = 0;
    std::int64_t width = 0;
    std::int64_t classes = 0;
    std::vector<LayerConfig> layers;
    /**
     * Collapse conv->relu and fc->relu pairs into fused layers (ReLU
     * applied in the producer's epilogue, bit-for-bit identical).
     * Programmatic switch only — not part of the textual format, so
     * parse/render round-trips are unaffected.
     */
    bool fuse_epilogues = true;
};

/** Parse a description from text; fatal() on malformed input. */
NetConfig parseNetConfig(const std::string &text);

/** Parse a description from a file; fatal() when unreadable. */
NetConfig parseNetConfigFile(const std::string &path);

/** Render a config back to its textual form (round-trippable). */
std::string renderNetConfig(const NetConfig &config);

} // namespace spg

#endif // SPG_CORE_NET_CONFIG_HH
