/**
 * @file
 * Minibatch SGD training loop with spg-CNN engine scheduling.
 *
 * The trainer drives epochs over a Dataset, and optionally runs the
 * spg-CNN tuner: before the first epoch every conv layer is measured
 * and assigned its fastest engines, and after each epoch the observed
 * error-gradient sparsity decides whether BP choices are re-measured
 * (paper §4.4). Per-epoch statistics (loss, accuracy, throughput,
 * per-layer error sparsity) feed the Fig. 3b and Fig. 9 benches.
 */

#ifndef SPG_NN_TRAINER_HH
#define SPG_NN_TRAINER_HH

#include <string>
#include <vector>

#include "core/tuner.hh"
#include "data/synthetic.hh"
#include "nn/network.hh"
#include "nn/pruning.hh"
#include "obs/drift.hh"

namespace spg {

/** Knobs of one training run. */
struct TrainerOptions
{
    int epochs = 5;
    std::int64_t batch = 16;
    float learning_rate = 0.05f;
    bool shuffle = true;
    std::uint64_t shuffle_seed = 7;

    /** Engine scheduling mode. */
    enum class Mode
    {
        Fixed,     ///< keep whatever engines the layers already have
        Autotune   ///< measure-and-pick per layer, with re-tuning
    };
    Mode mode = Mode::Autotune;

    TunerOptions tuner;
    bool log_epochs = true;

    /** Magnitude weight pruning (pruning.hh); disabled by default.
     *  When active, each prunable layer is re-pruned at the start of
     *  each epoch along the ramp, and under Autotune the FP engine
     *  choice is re-measured at the new weight sparsity whenever the
     *  pruned fraction moves past the tuner's drift threshold. */
    PruneOptions prune;
};

/** Per-epoch record. */
struct EpochStats
{
    int epoch = 0;
    double mean_loss = 0;
    double accuracy = 0;          ///< training accuracy over the epoch
    double seconds = 0;
    double images_per_second = 0;
    /** Error-gradient sparsity per conv layer (network order). */
    std::vector<double> conv_error_sparsity;
    /** Weight sparsity per conv layer (network order). */
    std::vector<double> conv_weight_sparsity;
    /** Pruned fraction across all prunable weight tensors. */
    double weight_sparsity = 0;
    /** Training-accuracy change vs. the previous epoch (0 for the
     *  first) — the pruning cost signal next to the pruned fraction. */
    double accuracy_delta = 0;
    /** Engines deployed per conv layer after any re-tuning. */
    std::vector<EngineAssignment> conv_engines;

    /** Encode-once sparse BP accounting for the epoch's training steps
     *  (SparsePlanCache deltas): CT-CSR plans built, plan reuses, and
     *  wall time spent encoding — reported separately from compute. */
    std::int64_t sparse_encodes = 0;
    std::int64_t sparse_plan_hits = 0;
    double sparse_encode_seconds = 0;

    /** Phase-time breakdown over the epoch's conv layers (ConvLayer
     *  profile deltas, summed across layers). */
    double fp_seconds = 0;
    double bp_data_seconds = 0;
    double bp_weights_seconds = 0;
    /** Pool schedule imbalance over the epoch's training steps:
     *  max/mean per-worker busy time (1.0 = perfectly balanced). */
    double pool_imbalance = 1.0;

    /** Package energy the epoch drew (RAPL), -1 when unavailable. */
    double joules = -1;
    /** Goodput per watt: images trained per joule ((img/s)/W); -1
     *  when energy is unavailable. */
    double images_per_joule = -1;
    /** DRAM traffic the epoch's conv phases moved (LLC misses x cache
     *  line, own thread + pool workers); -1 when counters are off. */
    double conv_bytes = -1;

    /** Fused ReLU epilogue passes executed this epoch (each one is an
     *  eliminated standalone elementwise sweep over an activation). */
    std::int64_t fused_relu_passes = 0;
    /** Liveness-planned activation arena size vs. what the same
     *  buffers would take without interval reuse. */
    std::int64_t arena_bytes = 0;
    std::int64_t arena_unplanned_bytes = 0;
};

/** Runs SGD over a dataset. */
class Trainer
{
  public:
    /**
     * @param network Network to train (borrowed; must outlive the
     *        trainer).
     * @param dataset Training data (borrowed).
     * @param options Run configuration.
     */
    Trainer(Network &network, const Dataset &dataset,
            TrainerOptions options = {});

    /**
     * Train for options.epochs epochs.
     *
     * @param pool Worker pool (its size is the deployed core count).
     * @return one record per epoch.
     */
    std::vector<EpochStats> run(ThreadPool &pool);

    /** @return images/second over the whole run (set by run()). */
    double overallThroughput() const { return overall_ips; }

    /**
     * Measured-vs-modeled drift over the layer phases of the last
     * run(): every epoch contributes one sample per conv layer per
     * phase, joining the measured per-step time against the simcpu
     * prediction for the engine that actually ran (on a host-calibrated
     * machine model at the pool's core count). Engines the model does
     * not cover (fft, winograd, ...) are skipped.
     */
    const obs::DriftReport &driftReport() const { return drift; }

  private:
    void tuneAll(ThreadPool &pool, double sparsity_hint);

    /** One per-layer per-phase measurement awaiting its model join. */
    struct PendingDrift
    {
        std::string label;
        ConvSpec spec;
        Phase phase;
        std::string engine;
        std::string layout = "nchw";  ///< from the plan's EngineTiming
        double sparsity = 0;
        double weight_sparsity = 0;
        double measured_seconds = 0;  ///< per training step
        double measured_bytes = -1;   ///< per step; -1 when no counters
        std::vector<std::int64_t> chunk_map;
        bool fused_relu = false;
    };

    void collectDriftSamples(ThreadPool &pool, int steps,
                             const std::vector<ConvLayer::PhaseProfile>
                                 &prof_before,
                             const std::vector<double> &sparsity);
    void joinDrift(ThreadPool &pool);

    Network &network;
    const Dataset &dataset;
    TrainerOptions opts;
    Tuner tuner;
    /** Each conv layer's current plan (FP timings carried across
     *  BP-only re-tunes). */
    std::vector<LayerPlan> plans;
    std::vector<PendingDrift> pending_drift;
    obs::DriftReport drift;
    double overall_ips = 0;
};

} // namespace spg

#endif // SPG_NN_TRAINER_HH
