#include "nn/pruning.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "util/logging.hh"

namespace spg {

PruneOptions
parsePruneSchedule(const std::string &schedule)
{
    PruneOptions opts;
    const char *s = schedule.c_str();
    char *end = nullptr;
    opts.target_sparsity = std::strtod(s, &end);
    if (end == s || opts.target_sparsity < 0.0 ||
        opts.target_sparsity >= 1.0)
        fatal("bad prune schedule '%s': want "
              "<target>[@<start>[:<ramp>]] with target in [0, 1)",
              schedule.c_str());
    if (*end == '@') {
        s = end + 1;
        opts.start_epoch = static_cast<int>(std::strtol(s, &end, 10));
        if (end == s || opts.start_epoch < 0)
            fatal("bad prune schedule '%s': bad start epoch",
                  schedule.c_str());
        if (*end == ':') {
            s = end + 1;
            opts.ramp_epochs =
                static_cast<int>(std::strtol(s, &end, 10));
            if (end == s || opts.ramp_epochs < 1)
                fatal("bad prune schedule '%s': bad ramp length",
                      schedule.c_str());
        }
    }
    if (*end != '\0')
        fatal("bad prune schedule '%s': trailing '%s'",
              schedule.c_str(), end);
    return opts;
}

double
pruneRampFraction(const PruneOptions &opts, int epoch)
{
    if (!opts.enabled() || epoch < opts.start_epoch)
        return 0.0;
    double p = static_cast<double>(epoch - opts.start_epoch + 1) /
               static_cast<double>(opts.ramp_epochs);
    p = std::min(p, 1.0);
    double q = 1.0 - p;
    return 1.0 - q * q * q;
}

double
pruneLayerTarget(const PruneOptions &opts, std::size_t index,
                 std::size_t count)
{
    if (count == 0)
        return 0.0;
    double scale =
        (index == 0 && count > 1) ? opts.first_layer_scale : 1.0;
    return opts.target_sparsity * scale;
}

double
magnitudePrune(Tensor &w, double sparsity,
               std::vector<std::uint8_t> &mask)
{
    std::int64_t n = w.size();
    if (n == 0)
        return 0.0;
    std::int64_t drop = static_cast<std::int64_t>(
        std::llround(sparsity * static_cast<double>(n)));
    drop = std::clamp<std::int64_t>(drop, 0, n);
    mask.assign(static_cast<std::size_t>(n), 1);
    if (drop == 0)
        return 0.0;

    float *data = w.data();
    std::vector<std::int64_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), std::int64_t{0});
    // Partition the smallest |w| first; exact zeros (earlier prune
    // steps) sort below any survivor, so ramping the target up only
    // ever grows the pruned set.
    std::nth_element(order.begin(), order.begin() + (drop - 1),
                     order.end(),
                     [data](std::int64_t a, std::int64_t b) {
                         return std::fabs(data[a]) <
                                std::fabs(data[b]);
                     });
    for (std::int64_t i = 0; i < drop; ++i) {
        std::int64_t at = order[static_cast<std::size_t>(i)];
        mask[static_cast<std::size_t>(at)] = 0;
        data[at] = 0.0f;
    }
    return static_cast<double>(drop) / static_cast<double>(n);
}

void
applyPruneMask(Tensor &w, const std::vector<std::uint8_t> &mask)
{
    if (mask.empty())
        return;
    SPG_ASSERT(static_cast<std::int64_t>(mask.size()) == w.size());
    float *data = w.data();
    for (std::int64_t i = 0; i < w.size(); ++i)
        if (!mask[static_cast<std::size_t>(i)])
            data[i] = 0.0f;
}

} // namespace spg
