#include "nn/simple_layers.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace spg {

void
ReluLayer::forward(const Tensor &in, Tensor &out, ThreadPool &pool)
{
    std::int64_t n = in.size();
    SPG_ASSERT(out.size() == n);
    const float *src = in.data();
    float *dst = out.data();
    pool.parallelFor(n, [&](std::int64_t b, std::int64_t e, int) {
        for (std::int64_t i = b; i < e; ++i)
            dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
    });
}

void
ReluLayer::backward(const Tensor &, const Tensor &out, const Tensor &eo,
                    Tensor &ei, ThreadPool &pool)
{
    // Gate on the saved output: out > 0 iff in > 0 (ReLU preserves the
    // strict-positive predicate, including -0.0 and NaN), so this is
    // bit-for-bit the input-gated form while letting the arena planner
    // drop the input activation after FP.
    std::int64_t n = out.size();
    SPG_ASSERT(eo.size() == n && ei.size() == n);
    const float *y = out.data();
    const float *go = eo.data();
    float *gi = ei.data();
    pool.parallelFor(n, [&](std::int64_t b, std::int64_t e, int) {
        for (std::int64_t i = b; i < e; ++i)
            gi[i] = y[i] > 0.0f ? go[i] : 0.0f;
    });
}

PoolLayer::PoolLayer(Geometry geometry, std::int64_t kernel,
                     std::int64_t stride, Mode mode)
    : geom(geometry), kernel(kernel), stride(stride), mode(mode)
{
    if (kernel < 1 || stride < 1 || kernel > geom.h || kernel > geom.w)
        fatal("pool layer: bad kernel %lld / stride %lld for input %s",
              static_cast<long long>(kernel),
              static_cast<long long>(stride), geom.str().c_str());
}

Geometry
PoolLayer::outputGeometry() const
{
    return Geometry{geom.c, (geom.h - kernel) / stride + 1,
                    (geom.w - kernel) / stride + 1};
}

void
PoolLayer::forward(const Tensor &in, Tensor &out, ThreadPool &pool)
{
    std::int64_t batch = in.shape()[0];
    Geometry og = outputGeometry();
    std::int64_t in_stride = geom.elems();
    std::int64_t out_stride = og.elems();
    bool record_argmax = mode == Mode::Max && !inference_only;
    if (record_argmax)
        argmax.assign(batch * out_stride, 0);

    // (image × channel) space: each task owns one output plane, which
    // exposes channel-level parallelism even for tiny minibatches.
    pool.parallelFor2D(
        batch, geom.c, [&](std::int64_t b, std::int64_t c, int) {
            const float *img = in.data() + b * in_stride;
            float *dst = out.data() + b * out_stride;
            std::int32_t *am = record_argmax
                                   ? argmax.data() + b * out_stride
                                   : nullptr;
            const float *plane = img + c * geom.h * geom.w;
            for (std::int64_t y = 0; y < og.h; ++y) {
                for (std::int64_t x = 0; x < og.w; ++x) {
                    std::int64_t y0 = y * stride, x0 = x * stride;
                    if (mode == Mode::Max) {
                        float best = plane[y0 * geom.w + x0];
                        std::int64_t best_idx = y0 * geom.w + x0;
                        for (std::int64_t ky = 0; ky < kernel; ++ky)
                            for (std::int64_t kx = 0; kx < kernel; ++kx) {
                                std::int64_t idx =
                                    (y0 + ky) * geom.w + x0 + kx;
                                if (plane[idx] > best) {
                                    best = plane[idx];
                                    best_idx = idx;
                                }
                            }
                        dst[(c * og.h + y) * og.w + x] = best;
                        if (am != nullptr)
                            am[(c * og.h + y) * og.w + x] =
                                static_cast<std::int32_t>(best_idx);
                    } else {
                        float sum = 0;
                        for (std::int64_t ky = 0; ky < kernel; ++ky)
                            for (std::int64_t kx = 0; kx < kernel; ++kx)
                                sum += plane[(y0 + ky) * geom.w + x0 + kx];
                        dst[(c * og.h + y) * og.w + x] =
                            sum / static_cast<float>(kernel * kernel);
                    }
                }
            }
        });
}

void
PoolLayer::backward(const Tensor &, const Tensor &, const Tensor &eo,
                    Tensor &ei, ThreadPool &pool)
{
    SPG_ASSERT(!inference_only);
    std::int64_t batch = eo.shape()[0];
    Geometry og = outputGeometry();
    std::int64_t in_stride = geom.elems();
    std::int64_t out_stride = og.elems();
    ei.zero();

    // Scatter targets stay inside the (b, c) input plane (argmax
    // indices are plane-relative), so the 2D tasks write disjointly.
    pool.parallelFor2D(
        batch, geom.c, [&](std::int64_t b, std::int64_t c, int) {
            const float *go = eo.data() + b * out_stride;
            float *plane = ei.data() + b * in_stride + c * geom.h * geom.w;
            for (std::int64_t y = 0; y < og.h; ++y) {
                for (std::int64_t x = 0; x < og.w; ++x) {
                    float e = go[(c * og.h + y) * og.w + x];
                    if (mode == Mode::Max) {
                        std::int64_t idx =
                            argmax[b * out_stride +
                                   (c * og.h + y) * og.w + x];
                        plane[idx] += e;
                    } else {
                        float share =
                            e / static_cast<float>(kernel * kernel);
                        std::int64_t y0 = y * stride, x0 = x * stride;
                        for (std::int64_t ky = 0; ky < kernel; ++ky)
                            for (std::int64_t kx = 0; kx < kernel; ++kx)
                                plane[(y0 + ky) * geom.w + x0 + kx] +=
                                    share;
                    }
                }
            }
        });
}

} // namespace spg
