/**
 * @file
 * Parameterless layers: ReLU and max/average pooling.
 *
 * ReLU is the source of the error-gradient sparsity the Sparse-Kernel
 * exploits: its backward pass zeroes every error whose forward
 * activation was clipped, so the errors reaching the convolution
 * below are mostly zeros once the model starts fitting (paper
 * Fig. 3b).
 */

#ifndef SPG_NN_SIMPLE_LAYERS_HH
#define SPG_NN_SIMPLE_LAYERS_HH

#include <vector>

#include "nn/layer.hh"

namespace spg {

/** Elementwise max(0, x). */
class ReluLayer : public Layer
{
  public:
    explicit ReluLayer(Geometry geometry) : geom(geometry) {}

    std::string name() const override { return "relu"; }
    Geometry inputGeometry() const override { return geom; }
    Geometry outputGeometry() const override { return geom; }

    void forward(const Tensor &in, Tensor &out, ThreadPool &pool) override;
    void backward(const Tensor &in, const Tensor &out, const Tensor &eo,
                  Tensor &ei, ThreadPool &pool) override;

    /** backward() gates on the saved OUTPUT (out > 0 iff in > 0 for
     *  ReLU), so the input activation is not needed for BP and the
     *  layer can run fully in place. */
    bool backwardUsesInput() const override { return false; }
    bool backwardUsesOutput() const override { return true; }
    bool inPlaceCapable() const override { return true; }

  private:
    Geometry geom;
};

/** Non-overlapping-or-strided 2-D pooling. */
class PoolLayer : public Layer
{
  public:
    enum class Mode { Max, Avg };

    /**
     * @param geometry Input geometry.
     * @param kernel Square pooling window.
     * @param stride Pooling stride.
     * @param mode Max or average.
     */
    PoolLayer(Geometry geometry, std::int64_t kernel, std::int64_t stride,
              Mode mode);

    std::string name() const override
    {
        return mode == Mode::Max ? "maxpool" : "avgpool";
    }
    Geometry inputGeometry() const override { return geom; }
    Geometry outputGeometry() const override;

    void forward(const Tensor &in, Tensor &out, ThreadPool &pool) override;
    void backward(const Tensor &in, const Tensor &out, const Tensor &eo,
                  Tensor &ei, ThreadPool &pool) override;

    /** backward() routes gradients through the argmax indices (max) or
     *  uniform shares (avg) saved at forward time — neither tensor
     *  argument is read, so both can be recycled after FP. */
    bool backwardUsesInput() const override { return false; }
    bool backwardUsesOutput() const override { return false; }

    /** Forward-only mode: the argmax record exists solely for the BP
     *  scatter, so forward() stops writing it and the buffer is
     *  released. */
    void setInferenceOnly() override
    {
        inference_only = true;
        argmax.clear();
        argmax.shrink_to_fit();
    }

  private:
    Geometry geom;
    std::int64_t kernel;
    std::int64_t stride;
    Mode mode;
    bool inference_only = false;
    /** argmax flat index per output element (max mode), per batch. */
    std::vector<std::int32_t> argmax;
};

} // namespace spg

#endif // SPG_NN_SIMPLE_LAYERS_HH
