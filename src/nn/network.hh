/**
 * @file
 * A feed-forward CNN assembled from a NetConfig.
 *
 * The network owns the layers and the inter-layer activation / error
 * buffers, and drives the FP -> loss -> BP -> SGD-update cycle. Conv
 * layers expose their engine assignments so the spg-CNN tuner (or an
 * experiment harness) can deploy and re-deploy execution plans.
 */

#ifndef SPG_NN_NETWORK_HH
#define SPG_NN_NETWORK_HH

#include <memory>
#include <vector>

#include "core/net_config.hh"
#include "nn/conv_layer.hh"
#include "nn/fc_layer.hh"
#include "nn/simple_layers.hh"

namespace spg {

/** Loss/accuracy of one training step. */
struct StepStats
{
    double loss = 0;
    double accuracy = 0;
};

/** A stack of layers ending in a softmax head. */
class Network
{
  public:
    /**
     * Build from a parsed description.
     *
     * @param config Network description; must end with a softmax (one
     *        is appended when missing).
     * @param seed Weight-initialization seed.
     */
    explicit Network(const NetConfig &config, std::uint64_t seed = 1);

    /**
     * Run FP over a minibatch.
     *
     * @param images [B][C][H][W] input batch.
     * @return class probabilities [B][classes][1][1].
     */
    const Tensor &forward(const Tensor &images, ThreadPool &pool);

    /**
     * One SGD step: FP, loss, BP, parameter update.
     *
     * @param images Input batch.
     * @param labels Target class per image.
     * @param learning_rate SGD step size.
     */
    StepStats trainStep(const Tensor &images,
                        const std::vector<int> &labels,
                        float learning_rate, ThreadPool &pool);

    /** FP-only accuracy over a labeled batch. */
    double evalAccuracy(const Tensor &images,
                        const std::vector<int> &labels, ThreadPool &pool);

    /** Convolution layers in network order (for tuning/reporting). */
    std::vector<ConvLayer *> convLayers();

    /** @return total trainable parameter count. */
    std::int64_t paramCount() const;

    /** @return number of layers. */
    std::size_t layerCount() const { return layers.size(); }

    /** @return layer i (network order). */
    Layer &layer(std::size_t i) { return *layers[i]; }

    /** @return per-image input geometry. */
    Geometry inputGeometry() const { return input_geom; }

    /** @return class count of the softmax head. */
    std::int64_t classes() const { return head->inputGeometry().c; }

    /** Log a one-line-per-layer summary via inform(). */
    void describe() const;

    /** conv->relu / fc->relu pairs collapsed by epilogue fusion. */
    std::int64_t fusedPairs() const { return fused_pairs; }

    /**
     * Inter-layer activation edges currently carried in the blocked
     * NCHWc layout (negotiated: both sides run the direct engine, so
     * the conversion nodes at the boundary are elided). Valid after
     * the first forward()/trainStep() following an engine deployment.
     */
    std::int64_t blockedEdgeCount() const
    {
        std::int64_t n = 0;
        for (char b : blocked_edges_)
            n += b;
        return n;
    }

    /**
     * Bytes of the liveness-planned activation arena backing the
     * inter-layer buffers (high-water mark of the interval packing).
     * Valid after the first forward()/trainStep() for a batch size.
     */
    std::int64_t arenaBytes() const { return arena_bytes_; }

    /** Bytes the same buffers would take without interval reuse. */
    std::int64_t arenaUnplannedBytes() const
    {
        return arena_unplanned_bytes_;
    }

  private:
    void ensureBuffers(std::int64_t batch);
    /** Per-edge layout choice: blocked_edges_[i] != 0 means acts[i]
     *  (output of layer i) lives in NCHWc. An edge goes blocked only
     *  when producer and consumer are conv layers whose deployed FP
     *  engines — and the consumer's BP-weights engine, which re-reads
     *  the activation — are all "direct", so no engine ever needs the
     *  plain layout and the boundary conversions are elided entirely.
     *  Error tensors always stay NCHW. */
    std::vector<char> negotiateLayouts() const;

    Geometry input_geom;
    std::vector<std::unique_ptr<Layer>> layers;
    SoftmaxLayer *head = nullptr;  ///< owned by `layers`, always last
    /** Arena slabs backing acts/errs views; rebuilt per batch size. */
    std::vector<AlignedBuffer<float>> arena_slabs;
    std::vector<Tensor> acts;      ///< acts[i]: output of layer i
    std::vector<Tensor> errs;      ///< errs[i]: error w.r.t. layer i input
    std::int64_t buffer_batch = 0;
    std::vector<char> blocked_edges_;
    std::int64_t fused_pairs = 0;
    std::int64_t arena_bytes_ = 0;
    std::int64_t arena_unplanned_bytes_ = 0;
};

} // namespace spg

#endif // SPG_NN_NETWORK_HH
