/**
 * @file
 * A feed-forward CNN assembled from a NetConfig.
 *
 * The network owns the layers and the inter-layer activation / error
 * buffers, and drives the FP -> loss -> BP -> SGD-update cycle. Conv
 * layers expose their engine assignments so the spg-CNN tuner (or an
 * experiment harness) can deploy and re-deploy execution plans.
 */

#ifndef SPG_NN_NETWORK_HH
#define SPG_NN_NETWORK_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/net_config.hh"
#include "nn/conv_layer.hh"
#include "nn/fc_layer.hh"
#include "nn/simple_layers.hh"

namespace spg {

/** Loss/accuracy of one training step. */
struct StepStats
{
    double loss = 0;
    double accuracy = 0;
};

/** A stack of layers ending in a softmax head. */
class Network
{
  public:
    /**
     * Build from a parsed description.
     *
     * @param config Network description; must end with a softmax (one
     *        is appended when missing).
     * @param seed Weight-initialization seed.
     * @param inference_only Build a forward-only network for serving:
     *        layers shed gradient accumulators and BP artifacts, the
     *        activation arena is planned over the FP timeline alone
     *        (no error buffers at all), and trainStep() is forbidden.
     */
    explicit Network(const NetConfig &config, std::uint64_t seed = 1,
                     bool inference_only = false);

    /**
     * Run FP over a minibatch.
     *
     * @param images [B][C][H][W] input batch.
     * @return class probabilities [B][classes][1][1].
     */
    const Tensor &forward(const Tensor &images, ThreadPool &pool);

    /**
     * One SGD step: FP, loss, BP, parameter update.
     *
     * @param images Input batch.
     * @param labels Target class per image.
     * @param learning_rate SGD step size.
     */
    StepStats trainStep(const Tensor &images,
                        const std::vector<int> &labels,
                        float learning_rate, ThreadPool &pool);

    /**
     * Called right after a layer's backward() completes, while its
     * gradient tensors hold this minibatch's gradient.
     *
     * @param layer_idx Index of the layer that just finished BP.
     * @param layer The layer (grads() is live).
     * @param ready_s Seconds since the step's forward() began — the
     *        gradient bucket's ready time for exchange scheduling.
     */
    using BackwardHook =
        std::function<void(std::size_t layer_idx, Layer &layer,
                           double ready_s)>;

    /**
     * FP + loss + BP without the parameter update — the first half of
     * trainStep(), split out so a gradient-exchange agent can average
     * grads() across replicas before applyUpdate(). With a null hook,
     * forwardBackward + applyUpdate is bit-for-bit trainStep.
     *
     * @param hook Optional per-layer BP completion callback.
     */
    StepStats forwardBackward(const Tensor &images,
                              const std::vector<int> &labels,
                              ThreadPool &pool,
                              const BackwardHook &hook = nullptr);

    /** The second half of trainStep(): SGD update from the gradients
     *  currently held in every layer's grads(). */
    void applyUpdate(float learning_rate);

    /** FP-only accuracy over a labeled batch. */
    double evalAccuracy(const Tensor &images,
                        const std::vector<int> &labels, ThreadPool &pool);

    /** Convolution layers in network order (for tuning/reporting). */
    std::vector<ConvLayer *> convLayers();

    /** @return total trainable parameter count. */
    std::int64_t paramCount() const;

    /** @return number of layers. */
    std::size_t layerCount() const { return layers.size(); }

    /** @return layer i (network order). */
    Layer &layer(std::size_t i) { return *layers[i]; }

    /** @return per-image input geometry. */
    Geometry inputGeometry() const { return input_geom; }

    /** @return class count of the softmax head. */
    std::int64_t classes() const { return head->inputGeometry().c; }

    /** Log a one-line-per-layer summary via inform(). */
    void describe() const;

    /** conv->relu / fc->relu pairs collapsed by epilogue fusion. */
    std::int64_t fusedPairs() const { return fused_pairs; }

    /**
     * Inter-layer activation edges currently carried in the blocked
     * NCHWc layout (negotiated: both sides run the direct engine, so
     * the conversion nodes at the boundary are elided). Valid after
     * the first forward()/trainStep() following an engine deployment.
     */
    std::int64_t blockedEdgeCount() const
    {
        std::int64_t n = 0;
        for (char b : blocked_edges_)
            n += b;
        return n;
    }

    /**
     * Bytes of the liveness-planned activation arena backing the
     * inter-layer buffers (high-water mark of the interval packing).
     * Valid after the first forward()/trainStep() for a batch size.
     */
    std::int64_t arenaBytes() const { return arena_bytes_; }

    /** Bytes the same buffers would take without interval reuse. */
    std::int64_t arenaUnplannedBytes() const
    {
        return arena_unplanned_bytes_;
    }

    /** @return true when built forward-only (serving mode). */
    bool forwardOnly() const { return inference_only_; }

    /**
     * Error-buffer views currently held (0 in forward-only mode — the
     * FP timeline allocates no BP slab at all). Valid after the first
     * forward().
     */
    std::size_t errorBufferCount() const { return errs.size(); }

    /**
     * Plan the activation arena for coalesced batches up to
     * @p max_batch and keep it: later forward() calls with any batch
     * size <= max_batch only rebuild tensor views into the existing
     * slabs instead of re-planning and re-allocating. A serving
     * instance calls this once at warmup so ragged dynamic batches
     * never touch the allocator on the request path. Every per-buffer
     * shape is linear in the batch extent, so a slot sized at
     * max_batch fits the same buffer at any smaller batch.
     */
    void reserveBatch(std::int64_t max_batch);

  private:
    void ensureBuffers(std::int64_t batch);
    /** Compute live intervals, pack slots, allocate slabs for
     *  @p batch. Invalidates the current views. */
    void planArena(std::int64_t batch);
    /** Rebuild acts/errs views at @p batch into the planned slabs. */
    void buildViews(std::int64_t batch);
    /** Per-edge layout choice: blocked_edges_[i] != 0 means acts[i]
     *  (output of layer i) lives in NCHWc. An edge goes blocked only
     *  when producer and consumer are conv layers whose deployed FP
     *  engines — and the consumer's BP-weights engine, which re-reads
     *  the activation — are all "direct", so no engine ever needs the
     *  plain layout and the boundary conversions are elided entirely.
     *  Error tensors always stay NCHW. */
    std::vector<char> negotiateLayouts() const;

    Geometry input_geom;
    std::vector<std::unique_ptr<Layer>> layers;
    SoftmaxLayer *head = nullptr;  ///< owned by `layers`, always last
    bool inference_only_ = false;
    /** Arena slabs backing acts/errs views; sized at plan_batch_. */
    std::vector<AlignedBuffer<float>> arena_slabs;
    std::vector<Tensor> acts;      ///< acts[i]: output of layer i
    std::vector<Tensor> errs;      ///< errs[i]: error w.r.t. layer i input
    /** One planned logical buffer: enough to rebuild its view at any
     *  batch <= plan_batch_ (shapes are linear in the batch extent). */
    struct BufPlan
    {
        Geometry geom;        ///< per-image extents
        bool blocked = false; ///< NCHWc slab (negotiated edge)
        std::int64_t slot = 0;
    };
    std::vector<BufPlan> buf_plans_;  ///< acts then errs, root slots
    std::int64_t plan_batch_ = 0;  ///< batch the slots were sized for
    std::int64_t view_batch_ = 0;  ///< batch the current views carry
    std::int64_t reserve_batch_ = 0;
    std::vector<char> blocked_edges_;
    std::int64_t fused_pairs = 0;
    std::int64_t arena_bytes_ = 0;
    std::int64_t arena_unplanned_bytes_ = 0;
};

} // namespace spg

#endif // SPG_NN_NETWORK_HH
