#include "nn/fc_layer.hh"

#include <cmath>

#include "blas/gemm.hh"
#include "nn/pruning.hh"
#include "obs/metrics.hh"
#include "util/logging.hh"

namespace spg {

FcLayer::FcLayer(Geometry geometry, std::int64_t outputs, Rng &rng)
    : geom(geometry),
      outputs(outputs),
      weights(Shape{outputs, geometry.elems()}),
      bias(Shape{outputs}),
      dweights(Shape{outputs, geometry.elems()}),
      dbias(Shape{outputs})
{
    if (outputs <= 0)
        fatal("fc layer needs a positive output count");
    float stddev =
        std::sqrt(2.0f / static_cast<float>(geometry.elems()));
    weights.fillGaussian(rng, stddev);
}

std::string
FcLayer::name() const
{
    return "fc(" + std::to_string(geom.elems()) + "->" +
           std::to_string(outputs) + ")" + (fused_relu ? "+relu" : "");
}

void
FcLayer::forward(const Tensor &in, Tensor &out, ThreadPool &pool)
{
    std::int64_t batch = in.shape()[0];
    std::int64_t d = geom.elems();
    // out[B x outputs] = in[B x D] * W^T[D x outputs].
    parallelGemm(pool, Trans::No, Trans::Yes, batch, outputs, d,
                 in.data(), weights.data(), 0.0f, out.data());
    float *o = out.data();
    if (fused_relu && inference_only) {
        // Forward-only: clamp in the bias epilogue, store no mask.
        for (std::int64_t b = 0; b < batch; ++b) {
            for (std::int64_t j = 0; j < outputs; ++j) {
                std::int64_t idx = b * outputs + j;
                float v = o[idx] + bias[j];
                o[idx] = v > 0.0f ? v : 0.0f;
            }
        }
        static obs::Counter &fused_passes =
            obs::Metrics::global().counter("nn.fused_relu_passes");
        fused_passes.add();
    } else if (fused_relu) {
        // ReLU fused into the bias epilogue: clamp while the row is
        // hot and save the activity mask the BP staging will use.
        relu_mask.resize(static_cast<std::size_t>(batch) * outputs);
        std::uint8_t *m = relu_mask.data();
        for (std::int64_t b = 0; b < batch; ++b) {
            for (std::int64_t j = 0; j < outputs; ++j) {
                std::int64_t idx = b * outputs + j;
                float v = o[idx] + bias[j];
                bool live = v > 0.0f;
                m[idx] = live;
                o[idx] = live ? v : 0.0f;
            }
        }
        static obs::Counter &fused_passes =
            obs::Metrics::global().counter("nn.fused_relu_passes");
        fused_passes.add();
    } else {
        for (std::int64_t b = 0; b < batch; ++b)
            for (std::int64_t j = 0; j < outputs; ++j)
                o[b * outputs + j] += bias[j];
    }
}

void
FcLayer::backward(const Tensor &in, const Tensor &, const Tensor &eo,
                  Tensor &ei, ThreadPool &pool)
{
    SPG_ASSERT(!inference_only);
    std::int64_t batch = in.shape()[0];
    std::int64_t d = geom.elems();
    const float *go = eo.data();
    if (fused_relu) {
        // Stage (mask ? eo : 0) ONCE; the three gradient consumers all
        // read the staged copy, so the standalone relu-backward pass
        // over the error tensor disappears.
        SPG_ASSERT(relu_mask.size() ==
                   static_cast<std::size_t>(eo.size()));
        if (masked_eo.size() != eo.size())
            masked_eo = Tensor::uninitialized(eo.shape());
        float *dst = masked_eo.data();
        const std::uint8_t *m = relu_mask.data();
        for (std::int64_t i = 0; i < eo.size(); ++i)
            dst[i] = m[i] ? go[i] : 0.0f;
        go = dst;
    }
    // ei[B x D] = eo[B x outputs] * W[outputs x D].
    parallelGemm(pool, Trans::No, Trans::No, batch, d, outputs, go,
                 weights.data(), 0.0f, ei.data());
    // dW[outputs x D] = eo^T[outputs x B] * in[B x D].
    parallelGemm(pool, Trans::Yes, Trans::No, outputs, d, batch, go,
                 in.data(), 0.0f, dweights.data());
    // dbias[j] = sum_b eo[b][j].
    dbias.zero();
    for (std::int64_t b = 0; b < batch; ++b)
        for (std::int64_t j = 0; j < outputs; ++j)
            dbias[j] += go[b * outputs + j];
}

void
FcLayer::setInferenceOnly()
{
    inference_only = true;
    dweights = Tensor();
    dbias = Tensor();
    masked_eo = Tensor();
    relu_mask.clear();
    relu_mask.shrink_to_fit();
}

void
FcLayer::update(float learning_rate)
{
    SPG_ASSERT(!inference_only);
    float *w = weights.data();
    const float *dw = dweights.data();
    for (std::int64_t i = 0; i < weights.size(); ++i)
        w[i] -= learning_rate * dw[i];
    for (std::int64_t j = 0; j < outputs; ++j)
        bias[j] -= learning_rate * dbias[j];
    // Re-prune: keep masked weights exactly zero across SGD steps.
    applyPruneMask(weights, prune_mask);
}

void
FcLayer::pruneToSparsity(double sparsity)
{
    magnitudePrune(weights, sparsity, prune_mask);
    paramsUpdated();
}

double
FcLayer::weightSparsity() const
{
    return weights.sparsity();
}

SoftmaxLayer::SoftmaxLayer(Geometry geometry) : geom(geometry)
{
    if (geom.h != 1 || geom.w != 1)
        fatal("softmax expects a flat input, got %s", geom.str().c_str());
}

void
SoftmaxLayer::setLabels(const std::vector<int> &batch_labels)
{
    labels = batch_labels;
}

void
SoftmaxLayer::forward(const Tensor &in, Tensor &out, ThreadPool &)
{
    std::int64_t batch = in.shape()[0];
    std::int64_t classes = geom.c;
    double loss_sum = 0;
    std::int64_t correct = 0;
    bool have_labels =
        labels.size() == static_cast<std::size_t>(batch);

    for (std::int64_t b = 0; b < batch; ++b) {
        const float *logits = in.data() + b * classes;
        float *probs = out.data() + b * classes;
        float max_logit = logits[0];
        std::int64_t arg = 0;
        for (std::int64_t j = 1; j < classes; ++j) {
            if (logits[j] > max_logit) {
                max_logit = logits[j];
                arg = j;
            }
        }
        double denom = 0;
        for (std::int64_t j = 0; j < classes; ++j) {
            probs[j] = std::exp(logits[j] - max_logit);
            denom += probs[j];
        }
        for (std::int64_t j = 0; j < classes; ++j)
            probs[j] = static_cast<float>(probs[j] / denom);
        if (have_labels) {
            int label = labels[b];
            SPG_ASSERT(label >= 0 && label < classes);
            loss_sum -= std::log(
                std::max(static_cast<double>(probs[label]), 1e-12));
            correct += (arg == label);
        }
    }
    if (have_labels) {
        last_loss = loss_sum / batch;
        last_accuracy = static_cast<double>(correct) / batch;
    }
}

void
SoftmaxLayer::backward(const Tensor &, const Tensor &out, const Tensor &,
                       Tensor &ei, ThreadPool &)
{
    std::int64_t batch = out.shape()[0];
    std::int64_t classes = geom.c;
    if (labels.size() != static_cast<std::size_t>(batch))
        fatal("softmax backward without labels for the current batch");
    float scale = 1.0f / static_cast<float>(batch);
    for (std::int64_t b = 0; b < batch; ++b) {
        const float *probs = out.data() + b * classes;
        float *g = ei.data() + b * classes;
        for (std::int64_t j = 0; j < classes; ++j)
            g[j] = probs[j] * scale;
        g[labels[b]] -= scale;
    }
}

} // namespace spg
