#include "nn/trainer.hh"

#include <algorithm>
#include <numeric>

#include "sparse/sparse_plan.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/timer.hh"

namespace spg {

Trainer::Trainer(Network &network, const Dataset &dataset,
                 TrainerOptions options)
    : network(network), dataset(dataset), opts(options),
      tuner(options.tuner)
{
    if (opts.epochs < 1 || opts.batch < 1)
        fatal("trainer needs epochs >= 1 and batch >= 1");
    Geometry in = network.inputGeometry();
    if (in.c != dataset.channels || in.h != dataset.height ||
        in.w != dataset.width) {
        fatal("network input %s does not match dataset %lldx%lldx%lld",
              in.str().c_str(), static_cast<long long>(dataset.channels),
              static_cast<long long>(dataset.height),
              static_cast<long long>(dataset.width));
    }
}

void
Trainer::tuneAll(ThreadPool &pool, double sparsity_hint)
{
    plans.clear();
    for (ConvLayer *conv : network.convLayers()) {
        LayerPlan plan = tuner.tune(conv->spec(), sparsity_hint, pool);
        conv->setEngines(EngineAssignment{plan.fp_engine,
                                          plan.bp_data_engine,
                                          plan.bp_weights_engine});
        plans.push_back(std::move(plan));
    }
}

std::vector<EpochStats>
Trainer::run(ThreadPool &pool)
{
    if (opts.mode == TrainerOptions::Mode::Autotune) {
        // Initial plans assume dense errors; re-tuned once sparsity
        // data exists.
        tuneAll(pool, 0.0);
    }

    std::vector<std::int64_t> order(dataset.count());
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle_rng(opts.shuffle_seed);

    std::vector<EpochStats> history;
    Stopwatch total;
    std::int64_t total_images = 0;

    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        if (opts.shuffle) {
            for (std::int64_t i = dataset.count() - 1; i > 0; --i) {
                std::int64_t j = static_cast<std::int64_t>(
                    shuffle_rng.below(i + 1));
                std::swap(order[i], order[j]);
            }
        }

        EpochStats stats;
        stats.epoch = epoch;
        SparsePlanCache::Stats plans_before =
            SparsePlanCache::global().stats();
        std::vector<ConvLayer::PhaseProfile> prof_before;
        for (ConvLayer *conv : network.convLayers())
            prof_before.push_back(conv->profile());
        PoolStats sched_before = pool.stats();
        Stopwatch watch;
        double loss_sum = 0, acc_sum = 0;
        std::int64_t steps = 0, images = 0;
        std::vector<int> labels;

        for (std::int64_t start = 0; start + opts.batch <= dataset.count();
             start += opts.batch) {
            Tensor batch(Shape{opts.batch, dataset.channels,
                               dataset.height, dataset.width});
            dataset.fillBatch(order, start, opts.batch, batch, labels);
            StepStats step = network.trainStep(
                batch, labels, opts.learning_rate, pool);
            loss_sum += step.loss;
            acc_sum += step.accuracy;
            ++steps;
            images += opts.batch;
        }
        SPG_ASSERT(steps > 0);

        stats.seconds = watch.seconds();
        // Phase breakdown and schedule telemetry cover the training
        // steps only — snapshots are taken before any re-tuning below.
        stats.pool_imbalance = pool.stats().delta(sched_before).imbalance();
        {
            auto convs = network.convLayers();
            for (std::size_t i = 0; i < convs.size(); ++i) {
                const ConvLayer::PhaseProfile &p = convs[i]->profile();
                stats.fp_seconds +=
                    p.fp_seconds - prof_before[i].fp_seconds;
                stats.bp_data_seconds +=
                    p.bp_data_seconds - prof_before[i].bp_data_seconds;
                stats.bp_weights_seconds +=
                    p.bp_weights_seconds -
                    prof_before[i].bp_weights_seconds;
            }
        }
        SparsePlanCache::Stats plans_after =
            SparsePlanCache::global().stats();
        stats.sparse_encodes = plans_after.encodes - plans_before.encodes;
        stats.sparse_plan_hits = plans_after.hits - plans_before.hits;
        stats.sparse_encode_seconds =
            plans_after.encode_seconds - plans_before.encode_seconds;
        stats.mean_loss = loss_sum / steps;
        stats.accuracy = acc_sum / steps;
        stats.images_per_second = images / stats.seconds;
        total_images += images;

        for (ConvLayer *conv : network.convLayers()) {
            stats.conv_error_sparsity.push_back(
                conv->lastErrorSparsity());
        }

        // §4.4: re-check BP engine choices as sparsity drifts.
        if (opts.mode == TrainerOptions::Mode::Autotune) {
            auto convs = network.convLayers();
            for (std::size_t i = 0; i < convs.size(); ++i) {
                double observed = stats.conv_error_sparsity[i];
                if (tuner.shouldRetune(plans[i], observed, epoch + 1)) {
                    // FP profitability cannot drift with sparsity, so
                    // only the BP phases are re-measured; the plan
                    // keeps the FP choice and timings.
                    plans[i] = tuner.retuneBp(plans[i], convs[i]->spec(),
                                              observed, pool);
                    convs[i]->setEngines(
                        EngineAssignment{plans[i].fp_engine,
                                         plans[i].bp_data_engine,
                                         plans[i].bp_weights_engine});
                }
            }
        }
        for (ConvLayer *conv : network.convLayers())
            stats.conv_engines.push_back(conv->engines());

        if (opts.log_epochs) {
            inform("epoch %2d  loss %.4f  acc %.3f  %.1f img/s",
                   epoch, stats.mean_loss, stats.accuracy,
                   stats.images_per_second);
            verbose("  phases: fp %.1f ms  bp-data %.1f ms  "
                    "bp-weights %.1f ms  encode %.1f ms  "
                    "pool imbalance %.2f",
                    stats.fp_seconds * 1e3, stats.bp_data_seconds * 1e3,
                    stats.bp_weights_seconds * 1e3,
                    stats.sparse_encode_seconds * 1e3,
                    stats.pool_imbalance);
            if (stats.sparse_encodes > 0) {
                verbose("  sparse plans: %lld encodes (%.1f ms), "
                        "%lld reuses",
                        static_cast<long long>(stats.sparse_encodes),
                        stats.sparse_encode_seconds * 1e3,
                        static_cast<long long>(stats.sparse_plan_hits));
            }
        }
        history.push_back(std::move(stats));
    }

    overall_ips = total_images / total.seconds();
    return history;
}

} // namespace spg
