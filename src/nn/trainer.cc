#include "nn/trainer.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "blas/gemm.hh"
#include "obs/metrics.hh"
#include "obs/perfcnt.hh"
#include "obs/trace.hh"
#include "perf/region.hh"
#include "simcpu/conv_model.hh"
#include "sparse/sparse_plan.hh"
#include "util/aligned.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace spg {

Trainer::Trainer(Network &network, const Dataset &dataset,
                 TrainerOptions options)
    : network(network), dataset(dataset), opts(options),
      tuner(options.tuner)
{
    if (opts.epochs < 1 || opts.batch < 1)
        fatal("trainer needs epochs >= 1 and batch >= 1");
    Geometry in = network.inputGeometry();
    if (in.c != dataset.channels || in.h != dataset.height ||
        in.w != dataset.width) {
        fatal("network input %s does not match dataset %lldx%lldx%lld",
              in.str().c_str(), static_cast<long long>(dataset.channels),
              static_cast<long long>(dataset.height),
              static_cast<long long>(dataset.width));
    }
}

void
Trainer::tuneAll(ThreadPool &pool, double sparsity_hint)
{
    SPG_TRACE_SCOPE("train", "tune");
    plans.clear();
    for (ConvLayer *conv : network.convLayers()) {
        LayerPlan plan = tuner.tune(conv->spec(), sparsity_hint, pool,
                                    conv->fusedRelu(),
                                    conv->weightSparsity());
        conv->setEngines(EngineAssignment{plan.fp_engine,
                                          plan.bp_data_engine,
                                          plan.bp_weights_engine});
        plans.push_back(std::move(plan));
    }
}

std::vector<EpochStats>
Trainer::run(ThreadPool &pool)
{
    if (opts.mode == TrainerOptions::Mode::Autotune) {
        // Initial plans assume dense errors; re-tuned once sparsity
        // data exists.
        tuneAll(pool, 0.0);
    }

    std::vector<std::int64_t> order(dataset.count());
    std::iota(order.begin(), order.end(), 0);
    Rng shuffle_rng(opts.shuffle_seed);

    std::vector<EpochStats> history;
    Stopwatch total;
    std::int64_t total_images = 0;

    pending_drift.clear();
    drift = obs::DriftReport{};

    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        SPG_TRACE_SCOPE_N("train", "epoch", "epoch", epoch);
        if (opts.shuffle) {
            for (std::int64_t i = dataset.count() - 1; i > 0; --i) {
                std::int64_t j = static_cast<std::int64_t>(
                    shuffle_rng.below(i + 1));
                std::swap(order[i], order[j]);
            }
        }

        // Pruning step: ramp each prunable layer toward its target.
        // Pruning mutates weights, so afterwards the FP crossover is
        // re-checked at the layer's new weight sparsity — the §4.4
        // drift test applied to the weight axis (a full re-tune, not
        // retuneBp: weight sparsity shifts the FP ranking).
        double ramp = pruneRampFraction(opts.prune, epoch);
        if (opts.prune.enabled() && ramp > 0.0) {
            SPG_TRACE_SCOPE_N("train", "prune", "epoch", epoch);
            std::size_t count = 0;
            for (std::size_t i = 0; i < network.layerCount(); ++i)
                count += network.layer(i).prunable();
            std::size_t index = 0;
            for (std::size_t i = 0; i < network.layerCount(); ++i) {
                Layer &layer = network.layer(i);
                if (!layer.prunable())
                    continue;
                layer.pruneToSparsity(
                    ramp * pruneLayerTarget(opts.prune, index, count));
                ++index;
            }
            obs::Metrics::global().counter("prune.steps").add();
            obs::Metrics::global().gauge("prune.ramp_fraction")
                .set(ramp);
            if (opts.mode == TrainerOptions::Mode::Autotune) {
                auto convs = network.convLayers();
                for (std::size_t i = 0;
                     i < convs.size() && i < plans.size(); ++i) {
                    double ws = convs[i]->weightSparsity();
                    if (std::abs(ws -
                                 plans[i].tuned_weight_sparsity) <=
                        opts.tuner.sparsity_drift)
                        continue;
                    plans[i] = tuner.tune(convs[i]->spec(),
                                          plans[i].tuned_sparsity,
                                          pool, convs[i]->fusedRelu(),
                                          ws);
                    convs[i]->setEngines(
                        EngineAssignment{plans[i].fp_engine,
                                         plans[i].bp_data_engine,
                                         plans[i].bp_weights_engine});
                }
            }
        }

        EpochStats stats;
        stats.epoch = epoch;
        std::int64_t fused_before =
            obs::Metrics::global().counter("nn.fused_relu_passes").value();
        SparsePlanCache::Stats plans_before =
            SparsePlanCache::global().stats();
        std::vector<ConvLayer::PhaseProfile> prof_before;
        for (ConvLayer *conv : network.convLayers())
            prof_before.push_back(conv->profile());
        PoolStats sched_before = pool.stats();
        // Hardware telemetry brackets the training steps: package
        // energy from RAPL, counter totals from the trainer thread's
        // session plus the pool workers'. Both degrade to "n/a".
        obs::RaplReader &meter = obs::energyMeter();
        double joules_before =
            meter.available() ? meter.totalJoules() : 0.0;
        const bool perf_on = obs::perfEnabled();
        obs::PerfSample perf_before;
        if (perf_on) {
            perf_before = obs::perfReadThread();
            perf_before.accumulate(pool.perfTotals());
        }
        Stopwatch watch;
        double loss_sum = 0, acc_sum = 0;
        std::int64_t steps = 0, images = 0;
        std::vector<int> labels;

        for (std::int64_t start = 0; start + opts.batch <= dataset.count();
             start += opts.batch) {
            Tensor batch(Shape{opts.batch, dataset.channels,
                               dataset.height, dataset.width});
            dataset.fillBatch(order, start, opts.batch, batch, labels);
            StepStats step = network.trainStep(
                batch, labels, opts.learning_rate, pool);
            loss_sum += step.loss;
            acc_sum += step.accuracy;
            ++steps;
            images += opts.batch;
        }
        SPG_ASSERT(steps > 0);

        stats.seconds = watch.seconds();
        if (meter.available()) {
            stats.joules = meter.totalJoules() - joules_before;
            if (stats.joules > 0)
                stats.images_per_joule = images / stats.joules;
            drift.addEpochEnergy(epoch, stats.joules);
        }
        obs::PerfSample epoch_perf;
        if (perf_on) {
            epoch_perf = obs::perfReadThread();
            epoch_perf.accumulate(pool.perfTotals());
            epoch_perf = epoch_perf.delta(perf_before);
        }
        // Phase breakdown and schedule telemetry cover the training
        // steps only — snapshots are taken before any re-tuning below.
        stats.pool_imbalance = pool.stats().delta(sched_before).imbalance();
        {
            auto convs = network.convLayers();
            obs::PerfSample conv_perf;
            for (std::size_t i = 0; i < convs.size(); ++i) {
                const ConvLayer::PhaseProfile &p = convs[i]->profile();
                stats.fp_seconds +=
                    p.fp_seconds - prof_before[i].fp_seconds;
                stats.bp_data_seconds +=
                    p.bp_data_seconds - prof_before[i].bp_data_seconds;
                stats.bp_weights_seconds +=
                    p.bp_weights_seconds -
                    prof_before[i].bp_weights_seconds;
                conv_perf.accumulate(
                    p.fp_perf.delta(prof_before[i].fp_perf));
                conv_perf.accumulate(
                    p.bp_data_perf.delta(prof_before[i].bp_data_perf));
                conv_perf.accumulate(p.bp_weights_perf.delta(
                    prof_before[i].bp_weights_perf));
            }
            double conv_bytes = conv_perf.llcMissBytes();
            if (conv_bytes >= 0)
                stats.conv_bytes = conv_bytes;
        }
        SparsePlanCache::Stats plans_after =
            SparsePlanCache::global().stats();
        stats.sparse_encodes = plans_after.encodes - plans_before.encodes;
        stats.sparse_plan_hits = plans_after.hits - plans_before.hits;
        stats.sparse_encode_seconds =
            plans_after.encode_seconds - plans_before.encode_seconds;
        stats.mean_loss = loss_sum / steps;
        stats.accuracy = acc_sum / steps;
        stats.images_per_second = images / stats.seconds;
        stats.fused_relu_passes =
            obs::Metrics::global().counter("nn.fused_relu_passes").value() -
            fused_before;
        stats.arena_bytes = network.arenaBytes();
        stats.arena_unplanned_bytes = network.arenaUnplannedBytes();
        total_images += images;

        for (ConvLayer *conv : network.convLayers()) {
            stats.conv_error_sparsity.push_back(
                conv->lastErrorSparsity());
            stats.conv_weight_sparsity.push_back(
                conv->weightSparsity());
        }
        {
            // Pruned fraction over all prunable weight tensors (bias
            // is never pruned; params()[0] is the weight tensor by
            // layer convention).
            std::int64_t zeros = 0, total = 0;
            for (std::size_t i = 0; i < network.layerCount(); ++i) {
                Layer &layer = network.layer(i);
                if (!layer.prunable())
                    continue;
                const Tensor *w = layer.params()[0];
                zeros += w->zeroCount();
                total += w->size();
            }
            stats.weight_sparsity =
                total > 0 ? static_cast<double>(zeros) /
                                static_cast<double>(total)
                          : 0.0;
        }
        stats.accuracy_delta =
            history.empty() ? 0.0
                            : stats.accuracy - history.back().accuracy;

        // Drift samples must capture the engines that RAN this epoch,
        // so collect before any re-tune below swaps them out.
        collectDriftSamples(pool, static_cast<int>(steps), prof_before,
                            stats.conv_error_sparsity);

        {
            obs::Metrics &metrics = obs::Metrics::global();
            metrics.counter("trainer.steps").add(steps);
            metrics.counter("trainer.images").add(images);
            PoolStats sched = pool.stats().delta(sched_before);
            std::int64_t steals = 0, chunks = 0;
            for (const PoolStats::Worker &w : sched.workers) {
                steals += static_cast<std::int64_t>(w.steals);
                chunks += static_cast<std::int64_t>(w.chunks);
            }
            metrics.counter("pool.steals").add(steals);
            metrics.counter("pool.chunks").add(chunks);
            metrics.gauge("pool.imbalance").set(stats.pool_imbalance);
            if (opts.prune.enabled()) {
                metrics.gauge("prune.weight_sparsity")
                    .set(stats.weight_sparsity);
                metrics.gauge("prune.accuracy_delta")
                    .set(stats.accuracy_delta);
            }
            metrics.histogram("trainer.epoch_seconds")
                .observe(stats.seconds);
            // Hardware telemetry flush: counter totals land in the
            // metrics sidecar and as Chrome trace counter lanes, so
            // the per-epoch traffic/IPC/energy trajectory is visible
            // in both documents.
            for (int ev = 0; ev < obs::kPerfEventCount; ++ev) {
                if (!epoch_perf.has(ev))
                    continue;
                metrics.counter(std::string("perf.") +
                                obs::perfEventName(ev))
                    .add(static_cast<std::int64_t>(
                        epoch_perf.values[ev]));
            }
            if (epoch_perf.llcMissBytes() >= 0 &&
                obs::traceEnabled()) {
                obs::traceCounter("perf.llc_miss_mb",
                                  static_cast<std::int64_t>(
                                      epoch_perf.llcMissBytes() / 1e6));
            }
            if (epoch_perf.has(obs::kPerfCycles) &&
                epoch_perf.has(obs::kPerfInstructions) &&
                epoch_perf.values[obs::kPerfCycles] > 0 &&
                obs::traceEnabled()) {
                obs::traceCounter(
                    "perf.ipc_x100",
                    static_cast<std::int64_t>(
                        100.0 *
                        epoch_perf.values[obs::kPerfInstructions] /
                        epoch_perf.values[obs::kPerfCycles]));
            }
            if (stats.joules >= 0) {
                metrics.histogram("trainer.epoch_joules")
                    .observe(stats.joules);
                if (obs::traceEnabled() && stats.seconds > 0)
                    obs::traceCounter("energy.watts",
                                      static_cast<std::int64_t>(
                                          stats.joules /
                                          stats.seconds));
            }
            // Allocation accounting: how much zero-fill traffic the
            // uninitialized (arena / staging) path avoided so far.
            const AllocCounters &alloc = allocCounters();
            metrics.gauge("alloc.zeroed_bytes")
                .set(static_cast<double>(alloc.zeroed_bytes.load(
                    std::memory_order_relaxed)));
            metrics.gauge("alloc.uninit_bytes")
                .set(static_cast<double>(alloc.uninit_bytes.load(
                    std::memory_order_relaxed)));
        }

        // §4.4: re-check BP engine choices as sparsity drifts.
        if (opts.mode == TrainerOptions::Mode::Autotune) {
            auto convs = network.convLayers();
            for (std::size_t i = 0; i < convs.size(); ++i) {
                double observed = stats.conv_error_sparsity[i];
                if (tuner.shouldRetune(plans[i], observed, epoch + 1)) {
                    // FP profitability cannot drift with sparsity, so
                    // only the BP phases are re-measured; the plan
                    // keeps the FP choice and timings.
                    plans[i] = tuner.retuneBp(plans[i], convs[i]->spec(),
                                              observed, pool,
                                              convs[i]->fusedRelu());
                    convs[i]->setEngines(
                        EngineAssignment{plans[i].fp_engine,
                                         plans[i].bp_data_engine,
                                         plans[i].bp_weights_engine});
                }
            }
        }
        for (ConvLayer *conv : network.convLayers())
            stats.conv_engines.push_back(conv->engines());

        if (opts.log_epochs) {
            // Encode/reuse accounting and schedule imbalance are part
            // of the normal epoch line — they explain throughput dips
            // that loss/accuracy alone cannot.
            inform("epoch %2d  loss %.4f  acc %.3f  %.1f img/s  "
                   "encodes %lld  reuses %lld  imbalance %.2f  "
                   "fused %lld  arena %.1f/%.1f MiB",
                   epoch, stats.mean_loss, stats.accuracy,
                   stats.images_per_second,
                   static_cast<long long>(stats.sparse_encodes),
                   static_cast<long long>(stats.sparse_plan_hits),
                   stats.pool_imbalance,
                   static_cast<long long>(stats.fused_relu_passes),
                   stats.arena_bytes / (1024.0 * 1024.0),
                   stats.arena_unplanned_bytes / (1024.0 * 1024.0));
            if (stats.joules >= 0)
                inform("  energy %.1f J  %.1f W  %.2f img/J",
                       stats.joules, stats.joules / stats.seconds,
                       stats.images_per_joule);
            verbose("  phases: fp %.1f ms  bp-data %.1f ms  "
                    "bp-weights %.1f ms  encode %.1f ms",
                    stats.fp_seconds * 1e3, stats.bp_data_seconds * 1e3,
                    stats.bp_weights_seconds * 1e3,
                    stats.sparse_encode_seconds * 1e3);
            if (opts.prune.enabled())
                inform("  pruned %.1f%% of weights  acc delta %+.3f",
                       stats.weight_sparsity * 100.0,
                       stats.accuracy_delta);
        }
        history.push_back(std::move(stats));
    }

    overall_ips = total_images / total.seconds();
    joinDrift(pool);

    if (opts.log_epochs && logLevel() >= LogLevel::Normal &&
        history.size() > 1) {
        TablePrinter table(
            "Training epochs",
            {"epoch", "loss", "acc", "d-acc", "w-sp", "img/s", "fp ms",
             "bp-data ms", "bp-w ms", "encode ms", "encodes", "reuses",
             "imbalance", "fused", "arena MiB", "J", "img/J"});
        for (const EpochStats &s : history) {
            table.addRow({TablePrinter::fmt(
                              static_cast<long long>(s.epoch)),
                          TablePrinter::fmt(s.mean_loss, 4),
                          TablePrinter::fmt(s.accuracy, 3),
                          TablePrinter::fmt(s.accuracy_delta, 3),
                          TablePrinter::fmt(s.weight_sparsity, 2),
                          TablePrinter::fmt(s.images_per_second, 1),
                          TablePrinter::fmt(s.fp_seconds * 1e3, 1),
                          TablePrinter::fmt(s.bp_data_seconds * 1e3, 1),
                          TablePrinter::fmt(s.bp_weights_seconds * 1e3,
                                            1),
                          TablePrinter::fmt(
                              s.sparse_encode_seconds * 1e3, 1),
                          TablePrinter::fmt(static_cast<long long>(
                              s.sparse_encodes)),
                          TablePrinter::fmt(static_cast<long long>(
                              s.sparse_plan_hits)),
                          TablePrinter::fmt(s.pool_imbalance, 2),
                          TablePrinter::fmt(static_cast<long long>(
                              s.fused_relu_passes)),
                          TablePrinter::fmt(
                              s.arena_bytes / (1024.0 * 1024.0), 1),
                          s.joules >= 0
                              ? TablePrinter::fmt(s.joules, 1)
                              : "n/a",
                          s.images_per_joule >= 0
                              ? TablePrinter::fmt(s.images_per_joule, 2)
                              : "n/a"});
        }
        table.print();
    }
    return history;
}

void
Trainer::collectDriftSamples(
    ThreadPool &pool, int steps,
    const std::vector<ConvLayer::PhaseProfile> &prof_before,
    const std::vector<double> &sparsity)
{
    (void)pool;
    auto convs = network.convLayers();
    for (std::size_t i = 0; i < convs.size(); ++i) {
        const ConvLayer::PhaseProfile &p = convs[i]->profile();
        const EngineAssignment &engines = convs[i]->engines();
        struct PhaseSlice
        {
            Phase phase;
            double measured;
            const std::string *engine;
            double bytes;  ///< counter-derived traffic; -1 when n/a
        };
        const PhaseSlice slices[] = {
            {Phase::Forward,
             p.fp_seconds - prof_before[i].fp_seconds, &engines.fp,
             p.fp_perf.delta(prof_before[i].fp_perf).llcMissBytes()},
            {Phase::BackwardData,
             p.bp_data_seconds - prof_before[i].bp_data_seconds,
             &engines.bp_data,
             p.bp_data_perf.delta(prof_before[i].bp_data_perf)
                 .llcMissBytes()},
            {Phase::BackwardWeights,
             p.bp_weights_seconds - prof_before[i].bp_weights_seconds,
             &engines.bp_weights,
             p.bp_weights_perf.delta(prof_before[i].bp_weights_perf)
                 .llcMissBytes()},
        };
        for (const PhaseSlice &slice : slices) {
            if (slice.measured <= 0 || steps <= 0)
                continue;
            PendingDrift sample;
            sample.label = "conv" + std::to_string(i);
            sample.spec = convs[i]->spec();
            sample.phase = slice.phase;
            sample.engine = *slice.engine;
            sample.sparsity = sparsity[i];
            sample.weight_sparsity = convs[i]->weightSparsity();
            sample.measured_seconds = slice.measured / steps;
            if (slice.bytes >= 0)
                sample.measured_bytes = slice.bytes / steps;
            sample.fused_relu = convs[i]->fusedRelu();
            if (i < plans.size()) {
                auto it = plans[i].timings.find(slice.phase);
                if (it != plans[i].timings.end()) {
                    for (const EngineTiming &t : it->second) {
                        if (t.engine == sample.engine) {
                            sample.chunk_map = t.chunk_map;
                            sample.layout = t.layout;
                            break;
                        }
                    }
                }
            }
            pending_drift.push_back(std::move(sample));
        }
    }
}

void
Trainer::joinDrift(ThreadPool &pool)
{
    if (pending_drift.empty())
        return;

    // The model only covers the paper's engines plus the CSR-weights
    // FP engines; the remaining extensions (fft, winograd) and the
    // reference have no model to drift from.
    auto modeled = [](const std::string &engine) {
        return engine == "parallel-gemm" ||
               engine == "parallel-gemm-packed" ||
               engine == "gemm-in-parallel" ||
               engine == "gemm-in-parallel-packed" ||
               engine == "stencil" || engine == "direct" ||
               engine == "sparse" || engine == "sparse-cached" ||
               engine == "sparse-weights" ||
               engine == "sparse-weights-direct";
    };

    // Calibrate the machine model from a measured single-core SGEMM
    // rate, exactly like the model-validation tests do.
    constexpr std::int64_t kDim = 256;
    std::vector<float> a(kDim * kDim, 1.0f), b(kDim * kDim, 0.5f),
        c(kDim * kDim, 0.0f);
    double gemm_seconds = bestTimeSeconds(3, [&] {
        sgemm(Trans::No, Trans::No, kDim, kDim, kDim, 1.0f, a.data(),
              kDim, b.data(), kDim, 0.0f, c.data(), kDim);
    });
    double gflops = 2.0 * kDim * kDim * kDim / gemm_seconds / 1e9;
    // When counters are live, the bandwidth axis comes from an
    // LLC-miss-metered streaming sweep instead of the default guess;
    // hostCalibrated falls back on a non-positive result.
    MachineModel machine = MachineModel::hostCalibrated(
        gflops, obs::measuredStreamBandwidthGbs());
    int cores = pool.threads();

    for (const PendingDrift &sample : pending_drift) {
        if (!modeled(sample.engine))
            continue;
        SimResult modeled_result = modelConvPhase(
            machine, sample.spec, sample.phase, sample.engine, opts.batch,
            cores, sample.sparsity,
            sample.chunk_map.empty() ? nullptr : &sample.chunk_map,
            sample.fused_relu, sample.weight_sparsity);
        obs::DriftSample out;
        out.label = sample.label;
        out.phase = phaseName(sample.phase);
        out.engine = sample.engine;
        out.layout = sample.layout;
        char region_buf[8];
        std::snprintf(
            region_buf, sizeof(region_buf), "R%d",
            static_cast<int>(
                classifyRegion(sample.spec, sample.sparsity)));
        out.region = region_buf;
        out.measured_seconds = sample.measured_seconds;
        out.modeled_seconds = modeled_result.seconds;
        out.measured_bytes = sample.measured_bytes;
        out.modeled_bytes = modeled_result.total_bytes;
        drift.add(std::move(out));
    }
    pending_drift.clear();
}

} // namespace spg
