/**
 * @file
 * Magnitude weight pruning with a layer-sensitivity schedule.
 *
 * The paper exploits ReLU-induced sparsity in the ERROR GRADIENTS
 * (§4.2); weight sparsity is the complementary axis it cites for
 * inference. Following the guided-pruning recipe (Park et al.,
 * PAPERS.md; Zhu & Gupta's ramp), the trainer prunes the smallest-
 * magnitude weights of each prunable layer at the start of each
 * epoch, ramping the per-layer target from zero to its final value
 * over a few epochs so the network can recover between steps:
 *
 *     sparsity(epoch) = target * (1 - (1 - p)^3),
 *     p = clamp((epoch - start_epoch + 1) / ramp_epochs, 0, 1)
 *
 * The cubic ramp prunes aggressively early (while the surviving
 * weights can still absorb the loss) and tapers near the target.
 * Sensitivity: the FIRST prunable layer sees raw inputs and has the
 * fewest redundant weights, so its target is scaled down by
 * first_layer_scale; all other layers get the full target.
 *
 * Pruned positions are recorded in a keep/drop byte mask carried by
 * the layer (ConvLayer / FcLayer); update() re-applies the mask after
 * every SGD step so pruned weights stay exactly zero between prune
 * steps, which is what keeps the once-encoded CSR weight plans of the
 * sparse FP engines valid across a whole epoch.
 */

#ifndef SPG_NN_PRUNING_HH
#define SPG_NN_PRUNING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace spg {

/** Pruning schedule of one training run. */
struct PruneOptions
{
    /** Final zero fraction of each layer's weights (0 = disabled). */
    double target_sparsity = 0.0;
    /** First epoch (0-based) that prunes. Earlier epochs train dense. */
    int start_epoch = 1;
    /** Epochs from the first prune step to the full target. */
    int ramp_epochs = 4;
    /** Sensitivity scale of the first prunable layer's target. */
    double first_layer_scale = 0.5;

    bool enabled() const { return target_sparsity > 0.0; }
};

/**
 * Parse a CLI schedule "<target>[@<start>[:<ramp>]]", e.g. "0.9",
 * "0.9@2" or "0.9@2:6". Aborts via fatal() on malformed input or a
 * target outside [0, 1).
 */
PruneOptions parsePruneSchedule(const std::string &schedule);

/**
 * @return the fraction of the final target in force at @p epoch
 * (0-based): 0 before start_epoch, the cubic ramp during
 * [start_epoch, start_epoch + ramp_epochs), 1 after. Monotone
 * non-decreasing in epoch.
 */
double pruneRampFraction(const PruneOptions &opts, int epoch);

/**
 * @return the final sparsity target of prunable layer @p index of
 * @p count (first layer scaled by first_layer_scale).
 */
double pruneLayerTarget(const PruneOptions &opts, std::size_t index,
                        std::size_t count);

/**
 * Magnitude-prune @p w to the given zero fraction: zero the
 * round(sparsity * n) smallest-magnitude weights and record the
 * keep(1)/drop(0) byte mask. Already-zero weights sort first, so
 * re-pruning at a higher target is monotone — pruned stays pruned.
 *
 * @return the achieved zero fraction (exact count / n).
 */
double magnitudePrune(Tensor &w, double sparsity,
                      std::vector<std::uint8_t> &mask);

/** Zero every masked-out position of @p w (post-SGD re-prune). */
void applyPruneMask(Tensor &w, const std::vector<std::uint8_t> &mask);

} // namespace spg

#endif // SPG_NN_PRUNING_HH
