/**
 * @file
 * Convolutional layer with pluggable execution engines.
 *
 * This is where spg-CNN meets the training loop: every call to
 * forward / backward is dispatched to the engine the scheduler
 * currently deploys for that phase, and the layer records the sparsity
 * of the error gradients it receives so the tuner can re-check its BP
 * choice as sparsity drifts across epochs (paper §4.4, Fig. 3b).
 */

#ifndef SPG_NN_CONV_LAYER_HH
#define SPG_NN_CONV_LAYER_HH

#include <map>
#include <memory>

#include "conv/engines.hh"
#include "nn/layer.hh"
#include "obs/perfcnt.hh"
#include "util/random.hh"

namespace spg {

namespace obs {
class Gauge;
} // namespace obs

/** Engine assignment for the three phases of one conv layer. */
struct EngineAssignment
{
    std::string fp = "gemm-in-parallel";
    std::string bp_data = "gemm-in-parallel";
    std::string bp_weights = "gemm-in-parallel";
};

/** A 2-D convolution layer (no padding, square kernels allowed any). */
class ConvLayer : public Layer
{
  public:
    /**
     * @param label Display name ("conv1").
     * @param spec Geometry; spec.nx/ny/nc must match the input.
     * @param rng Weight initialization source (He-scaled gaussian).
     */
    ConvLayer(std::string label, const ConvSpec &spec, Rng &rng);
    ~ConvLayer() override;

    std::string name() const override;
    Geometry inputGeometry() const override
    {
        return Geometry{spec_.nc, spec_.ny, spec_.nx};
    }
    Geometry outputGeometry() const override
    {
        return Geometry{spec_.nf, spec_.outY(), spec_.outX()};
    }

    void forward(const Tensor &in, Tensor &out, ThreadPool &pool) override;
    void backward(const Tensor &in, const Tensor &out, const Tensor &eo,
                  Tensor &ei, ThreadPool &pool) override;
    void update(float learning_rate) override;

    /** BP-weights reads the saved input; the (possibly fused-ReLU)
     *  output is never revisited — its role in BP is carried by the
     *  byte mask the FP epilogue saved. */
    bool backwardUsesInput() const override { return true; }
    bool backwardUsesOutput() const override { return false; }

    /**
     * Fuse a trailing ReLU into this layer: FP applies ReLU in the
     * engine epilogue while each output tile is hot and saves a byte
     * activity mask; BP hands the mask to the engines so the
     * standalone ReLU-backward pass over the error tensor disappears.
     */
    void setFusedRelu(bool on) { fused_relu = on; }
    bool fusedRelu() const { return fused_relu; }

    bool hasParams() const override { return true; }
    std::int64_t paramCount() const override
    {
        return spec_.weightElems();
    }
    std::vector<Tensor *> params() override { return {&weights_}; }
    std::vector<Tensor *> grads() override { return {&dweights}; }
    void paramsUpdated() override;

    bool prunable() const override { return true; }
    void pruneToSparsity(double sparsity) override;
    double weightSparsity() const override;
    std::vector<std::uint8_t> *pruneMask() override
    {
        return &prune_mask;
    }

    /** Forward-only mode: the gradient accumulator is released and a
     *  fused ReLU runs as a plain clamp epilogue — no activity mask is
     *  allocated or stored, since no BP pass will ever read it. */
    void setInferenceOnly() override;

    const ConvSpec &spec() const { return spec_; }

    /** Engines currently deployed. */
    const EngineAssignment &engines() const { return assignment; }
    /** Deploy a new engine set (from the tuner or an experiment). */
    void setEngines(const EngineAssignment &engines);

    /** Sparsity of the most recent output-error gradients. */
    double lastErrorSparsity() const { return last_eo_sparsity; }

    /** Cumulative time spent per phase since construction, plus the
     *  hardware-counter deltas each phase accumulated (own thread +
     *  pool workers; empty samples when counters are unavailable).
     *  The counter reads ride the same span boundaries as the phase
     *  stopwatches, so time and traffic describe the same regions. */
    struct PhaseProfile
    {
        double fp_seconds = 0;
        double bp_data_seconds = 0;
        double bp_weights_seconds = 0;
        std::int64_t calls = 0;
        obs::PerfSample fp_perf;
        obs::PerfSample bp_data_perf;
        obs::PerfSample bp_weights_perf;
    };
    const PhaseProfile &profile() const { return profile_; }
    void resetProfile() { profile_ = PhaseProfile{}; }

    /** Direct weight access (tests, checkpointing). */
    Tensor &weights() { return weights_; }
    const Tensor &weights() const { return weights_; }
    const Tensor &weightGradients() const { return dweights; }

  private:
    const ConvEngine &engineByName(const std::string &name) const;
    void refreshSpanNames();

    std::string label;
    ConvSpec spec_;
    Tensor weights_;
    Tensor dweights;
    EngineAssignment assignment;
    bool fused_relu = false;
    bool inference_only = false;
    /** ReLU activity mask [B][Nf][Oy][Ox] saved by the FP epilogue. */
    std::vector<std::uint8_t> relu_mask;
    /** Magnitude-prune keep/drop mask over weights_ (empty = never
     *  pruned); re-applied after every SGD update. */
    std::vector<std::uint8_t> prune_mask;
    double last_eo_sparsity = 0;
    PhaseProfile profile_;
    std::map<std::string, std::unique_ptr<ConvEngine>> engine_cache;
    /** Interned trace span names ("conv1 FP [stencil]"), refreshed on
     *  setEngines so spans carry the deployed engine. */
    const char *span_fp = nullptr;
    const char *span_bp_data = nullptr;
    const char *span_bp_weights = nullptr;
    obs::Gauge *eo_sparsity_gauge = nullptr;
};

} // namespace spg

#endif // SPG_NN_CONV_LAYER_HH
