#include "nn/checkpoint.hh"

#include <cstring>
#include <fstream>
#include <vector>

#include "nn/pruning.hh"
#include "util/logging.hh"

namespace spg {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'G', 'C'};
/** v1: parameter tensors only. v2 appends a prune-mask section:
 *  u32 mask count, then per mask u32 layer index + u64 byte size +
 *  the keep/drop bytes. v1 checkpoints still load (no masks). */
constexpr std::uint32_t kVersion = 2;

/** Collect all parameter tensors of the network in layer order. */
std::vector<Tensor *>
allParams(Network &net)
{
    std::vector<Tensor *> params;
    for (std::size_t i = 0; i < net.layerCount(); ++i) {
        for (Tensor *t : net.layer(i).params())
            params.push_back(t);
    }
    return params;
}

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        fatal("checkpoint: truncated stream");
    return value;
}

} // namespace

void
saveCheckpoint(Network &net, std::ostream &out)
{
    auto params = allParams(net);
    out.write(kMagic, sizeof(kMagic));
    writePod(out, kVersion);
    writePod(out, static_cast<std::uint32_t>(params.size()));
    for (Tensor *t : params) {
        writePod(out, static_cast<std::uint32_t>(t->shape().rank()));
        for (int d = 0; d < t->shape().rank(); ++d)
            writePod(out, static_cast<std::int64_t>(t->shape()[d]));
        out.write(reinterpret_cast<const char *>(t->data()),
                  t->size() * sizeof(float));
    }

    // v2 prune-mask section: non-empty masks only, keyed by layer
    // index so mask-less layers cost nothing.
    std::uint32_t mask_count = 0;
    for (std::size_t i = 0; i < net.layerCount(); ++i) {
        auto *mask = net.layer(i).pruneMask();
        mask_count += mask && !mask->empty();
    }
    writePod(out, mask_count);
    for (std::size_t i = 0; i < net.layerCount(); ++i) {
        auto *mask = net.layer(i).pruneMask();
        if (!mask || mask->empty())
            continue;
        writePod(out, static_cast<std::uint32_t>(i));
        writePod(out, static_cast<std::uint64_t>(mask->size()));
        out.write(reinterpret_cast<const char *>(mask->data()),
                  static_cast<std::streamsize>(mask->size()));
    }
    if (!out)
        fatal("checkpoint: write failed");
}

void
saveCheckpoint(Network &net, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    saveCheckpoint(net, out);
}

void
loadCheckpoint(Network &net, std::istream &in)
{
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("checkpoint: bad magic (not an spg-CNN checkpoint)");
    auto version = readPod<std::uint32_t>(in);
    if (version != 1 && version != kVersion)
        fatal("checkpoint: unsupported version %u", version);

    auto params = allParams(net);
    auto count = readPod<std::uint32_t>(in);
    if (count != params.size())
        fatal("checkpoint: has %u tensors, network expects %zu", count,
              params.size());

    for (Tensor *t : params) {
        auto rank = readPod<std::uint32_t>(in);
        if (static_cast<int>(rank) != t->shape().rank())
            fatal("checkpoint: tensor rank %u, network expects %d", rank,
                  t->shape().rank());
        for (int d = 0; d < t->shape().rank(); ++d) {
            auto extent = readPod<std::int64_t>(in);
            if (extent != t->shape()[d])
                fatal("checkpoint: dimension %d is %lld, network "
                      "expects %lld",
                      d, static_cast<long long>(extent),
                      static_cast<long long>(t->shape()[d]));
        }
        in.read(reinterpret_cast<char *>(t->data()),
                t->size() * sizeof(float));
        if (!in)
            fatal("checkpoint: truncated tensor data");
    }

    // Prune masks: cleared first so a v1 (or unpruned v2) checkpoint
    // restores a dense, mask-free network.
    for (std::size_t i = 0; i < net.layerCount(); ++i) {
        if (auto *mask = net.layer(i).pruneMask())
            mask->clear();
    }
    if (version >= 2) {
        auto mask_count = readPod<std::uint32_t>(in);
        for (std::uint32_t m = 0; m < mask_count; ++m) {
            auto index = readPod<std::uint32_t>(in);
            auto bytes = readPod<std::uint64_t>(in);
            if (index >= net.layerCount())
                fatal("checkpoint: prune mask for layer %u, network "
                      "has %zu layers",
                      index, net.layerCount());
            auto *mask = net.layer(index).pruneMask();
            if (!mask)
                fatal("checkpoint: prune mask for non-prunable "
                      "layer %u",
                      index);
            mask->resize(static_cast<std::size_t>(bytes));
            in.read(reinterpret_cast<char *>(mask->data()),
                    static_cast<std::streamsize>(bytes));
            if (!in)
                fatal("checkpoint: truncated prune mask");
        }
    }

    // A forward-only network never runs update(), so nothing would
    // re-apply a restored prune mask after the fact — bake it into the
    // weights once (the saved weights are already zero where masked,
    // but a checkpoint written mid-step could disagree) and drop it.
    // The network then serves plain dense-with-zeros weights, and the
    // CSR-weights engines still see the real sparsity.
    if (net.forwardOnly()) {
        for (std::size_t i = 0; i < net.layerCount(); ++i) {
            Layer &layer = net.layer(i);
            auto *mask = layer.pruneMask();
            if (!mask || mask->empty())
                continue;
            auto params = layer.params();
            SPG_ASSERT(!params.empty());
            applyPruneMask(*params.front(), *mask);
            mask->clear();
        }
    }

    // Restored weights invalidate any derived caches (packed panels).
    for (std::size_t i = 0; i < net.layerCount(); ++i)
        net.layer(i).paramsUpdated();
}

void
loadCheckpoint(Network &net, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open checkpoint '%s'", path.c_str());
    loadCheckpoint(net, in);
}

} // namespace spg
