/**
 * @file
 * Neural-network layer interface.
 *
 * Layers are configured with their input geometry (channels x height x
 * width per image) at construction and expose their output geometry.
 * The Network (network.hh) wires layers together, owns the activation
 * and error buffers, and drives forward / backward / update.
 *
 * All batched tensors are [B][C][H][W] row-major; fully-connected
 * layers view them as [B][C*H*W].
 */

#ifndef SPG_NN_LAYER_HH
#define SPG_NN_LAYER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hh"
#include "threading/thread_pool.hh"

namespace spg {

/** Per-image geometry flowing between layers. */
struct Geometry
{
    std::int64_t c = 0, h = 0, w = 0;

    std::int64_t elems() const { return c * h * w; }

    std::string
    str() const
    {
        return std::to_string(c) + "x" + std::to_string(h) + "x" +
               std::to_string(w);
    }
};

/** Abstract trainable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** @return a short human-readable label ("conv1 64x5x5", ...). */
    virtual std::string name() const = 0;

    /** @return per-image input geometry. */
    virtual Geometry inputGeometry() const = 0;

    /** @return per-image output geometry. */
    virtual Geometry outputGeometry() const = 0;

    /**
     * FP: compute out from in.
     *
     * @param in [B][Cin][Hin][Win].
     * @param out [B][Cout][Hout][Wout], overwritten.
     */
    virtual void forward(const Tensor &in, Tensor &out,
                         ThreadPool &pool) = 0;

    /**
     * BP: compute ei (error w.r.t. in) from eo (error w.r.t. out) and
     * accumulate parameter gradients for the following update().
     *
     * @param in The input the preceding forward() saw.
     * @param out The output the preceding forward() produced.
     * @param eo Error gradients w.r.t. out.
     * @param ei Error gradients w.r.t. in, overwritten.
     */
    virtual void backward(const Tensor &in, const Tensor &out,
                          const Tensor &eo, Tensor &ei,
                          ThreadPool &pool) = 0;

    /**
     * @return true when backward() reads its `in` argument. The
     * network's arena planner frees an activation buffer right after
     * the following layer's forward() when nobody needs it for BP.
     */
    virtual bool backwardUsesInput() const { return true; }

    /** @return true when backward() reads its `out` argument. */
    virtual bool backwardUsesOutput() const { return true; }

    /**
     * @return true when the layer is elementwise and tolerates
     * forward() with out aliasing in, and backward() with ei aliasing
     * eo (each element read before it is written). The arena planner
     * then runs the layer in place instead of giving it own buffers.
     */
    virtual bool inPlaceCapable() const { return false; }

    /** SGD parameter update; no-op for parameterless layers. */
    virtual void update(float /* learning_rate */) {}

    /** @return true when the layer has trainable parameters. */
    virtual bool hasParams() const { return false; }

    /** @return parameter count (weights + biases). */
    virtual std::int64_t paramCount() const { return 0; }

    /**
     * @return pointers to the layer's parameter tensors, in a stable
     * order (used by checkpointing). Empty for parameterless layers.
     */
    virtual std::vector<Tensor *> params() { return {}; }

    /**
     * @return pointers to the layer's gradient tensors, matching
     * params() in order and shape. backward() OVERWRITES these with
     * the current minibatch's gradient, so between backward() and
     * update() an external agent (the distrib gradient exchange) may
     * read and replace them — update() then applies whatever they
     * hold. Empty for parameterless layers.
     */
    virtual std::vector<Tensor *> grads() { return {}; }

    /**
     * Notify the layer that its parameter tensors were just mutated
     * through params() (checkpoint restore, parameter averaging) so it
     * can drop caches derived from them (e.g. packed weight panels).
     * update() implies this; external writers must call it themselves.
     */
    virtual void paramsUpdated() {}

    /** @return true when the layer supports magnitude weight pruning
     *  (carries a prune mask over its weight tensor). */
    virtual bool prunable() const { return false; }

    /**
     * Magnitude-prune the weight tensor to the given zero fraction,
     * recomputing the keep/drop mask and dropping weight-derived
     * caches. update() re-applies the mask after each SGD step so
     * pruned weights stay exactly zero until the next prune step.
     */
    virtual void pruneToSparsity(double /* sparsity */) {}

    /** @return the current zero fraction of the weight tensor. */
    virtual double weightSparsity() const { return 0.0; }

    /**
     * @return the keep(1)/drop(0) byte mask over the weight tensor —
     * empty when never pruned — or nullptr for non-prunable layers.
     * Checkpointing persists and restores it through this accessor;
     * restorers must call paramsUpdated() afterwards.
     */
    virtual std::vector<std::uint8_t> *pruneMask() { return nullptr; }

    /**
     * Put the layer into forward-only (serving) mode: release gradient
     * accumulators and BP staging state, and stop recording BP
     * artifacts during forward() (e.g. ReLU activity masks become a
     * plain fused clamp, pooling skips the argmax record). One-way for
     * the lifetime of the layer; backward()/update() must not be
     * called afterwards. Default no-op: parameterless layers with no
     * BP state have nothing to shed.
     */
    virtual void setInferenceOnly() {}
};

} // namespace spg

#endif // SPG_NN_LAYER_HH
