#include "nn/conv_layer.hh"

#include <cmath>

#include "conv/packed_weights.hh"
#include "nn/pruning.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/timer.hh"

#include "util/logging.hh"

namespace spg {

namespace {

/** Counter snapshot of the phase-measuring thread plus the pool's
 *  worker totals — together they cover every byte a phase moves. */
obs::PerfSample
phasePerfSnapshot(ThreadPool &pool)
{
    obs::PerfSample s = obs::perfReadThread();
    s.accumulate(pool.perfTotals());
    return s;
}

} // namespace

ConvLayer::ConvLayer(std::string label, const ConvSpec &spec, Rng &rng)
    : label(std::move(label)),
      spec_(spec),
      weights_(Shape{spec.nf, spec.nc, spec.fy, spec.fx}),
      dweights(Shape{spec.nf, spec.nc, spec.fy, spec.fx})
{
    spec_.validate();
    // He initialization: stddev sqrt(2 / fan_in).
    float stddev = std::sqrt(
        2.0f / static_cast<float>(spec.nc * spec.fy * spec.fx));
    weights_.fillGaussian(rng, stddev);
    // Extended set: the tuner may deploy an extension engine (e.g.
    // sparse-weights-direct for a pruned layer), so the deploy-side
    // cache must know every tunable engine, not just the paper set.
    for (auto &engine : makeExtendedEngines())
        engine_cache[engine->name()] = std::move(engine);
    refreshSpanNames();
    eo_sparsity_gauge =
        &obs::Metrics::global().gauge("conv." + this->label +
                                      ".eo_sparsity");
    // A prior layer may have packed weights at this freshly-reused
    // address; make sure no stale panels can alias the new tensor.
    PackedWeightCache::global().invalidate(weights_.data());
}

ConvLayer::~ConvLayer()
{
    PackedWeightCache::global().invalidate(weights_.data());
}

std::string
ConvLayer::name() const
{
    return label + " conv(" + spec_.str() + ")" +
           (fused_relu ? "+relu" : "");
}

const ConvEngine &
ConvLayer::engineByName(const std::string &name) const
{
    auto it = engine_cache.find(name);
    if (it == engine_cache.end())
        fatal("conv layer '%s': unknown engine '%s'", label.c_str(),
              name.c_str());
    return *it->second;
}

void
ConvLayer::setEngines(const EngineAssignment &engines)
{
    // Validate phase support eagerly so a bad plan fails loudly.
    if (!engineByName(engines.fp).supports(Phase::Forward))
        fatal("engine '%s' cannot run FP", engines.fp.c_str());
    if (!engineByName(engines.bp_data).supports(Phase::BackwardData))
        fatal("engine '%s' cannot run BP-data", engines.bp_data.c_str());
    if (!engineByName(engines.bp_weights)
             .supports(Phase::BackwardWeights)) {
        fatal("engine '%s' cannot run BP-weights",
              engines.bp_weights.c_str());
    }
    assignment = engines;
    refreshSpanNames();
}

void
ConvLayer::refreshSpanNames()
{
    span_fp = obs::internName(label + " FP [" + assignment.fp + "]");
    span_bp_data =
        obs::internName(label + " BP-data [" + assignment.bp_data + "]");
    span_bp_weights = obs::internName(label + " BP-weights [" +
                                      assignment.bp_weights + "]");
}

void
ConvLayer::forward(const Tensor &in, Tensor &out, ThreadPool &pool)
{
    std::int64_t batch = in.shape()[0];
    SPG_TRACE_SCOPE_N("layer", span_fp, "batch", batch);
    static obs::Counter &flops =
        obs::Metrics::global().counter("conv.fp_flops");
    flops.add(spec_.flops() * batch);
    Stopwatch watch;
    Epilogue epilogue;
    if (fused_relu) {
        if (inference_only) {
            // No BP pass will read the activity mask: clamp in the
            // epilogue while the tile is hot and store nothing.
            epilogue = Epilogue{Epilogue::Kind::Relu};
        } else {
            relu_mask.resize(static_cast<std::size_t>(batch) *
                             spec_.outputElems());
            epilogue =
                Epilogue{Epilogue::Kind::ReluMask, relu_mask.data()};
        }
        static obs::Counter &fused_passes =
            obs::Metrics::global().counter("nn.fused_relu_passes");
        fused_passes.add();
    }
    const bool perf_on = obs::perfEnabled();
    obs::PerfSample perf0;
    if (perf_on)
        perf0 = phasePerfSnapshot(pool);
    engineByName(assignment.fp)
        .forward(spec_, in, weights_, out, pool, epilogue);
    profile_.fp_seconds += watch.seconds();
    if (perf_on)
        profile_.fp_perf.accumulate(
            phasePerfSnapshot(pool).delta(perf0));
    ++profile_.calls;
}

void
ConvLayer::backward(const Tensor &in, const Tensor &, const Tensor &eo,
                    Tensor &ei, ThreadPool &pool)
{
    SPG_ASSERT(!inference_only);
    std::int64_t batch = eo.shape()[0];
    BpMask mask;
    if (fused_relu) {
        SPG_ASSERT(relu_mask.size() ==
                   static_cast<std::size_t>(eo.size()));
        mask.mask = relu_mask.data();
        // The sparsity the BP engines see is POST-mask: an element is
        // live only where the fused ReLU kept it and eo is non-zero.
        std::int64_t nnz_count = 0;
        const float *go = eo.data();
        for (std::int64_t i = 0; i < eo.size(); ++i)
            nnz_count += relu_mask[i] && go[i] != 0.0f;
        last_eo_sparsity =
            eo.size() == 0 ? 0.0
                           : 1.0 - static_cast<double>(nnz_count) /
                                       static_cast<double>(eo.size());
    } else {
        last_eo_sparsity = eo.sparsity();
    }
    eo_sparsity_gauge->set(last_eo_sparsity);
    static obs::Counter &nnz =
        obs::Metrics::global().counter("conv.eo_nnz");
    nnz.add(static_cast<std::int64_t>(
        (1.0 - last_eo_sparsity) * static_cast<double>(eo.size())));
    static obs::Counter &bp_flops =
        obs::Metrics::global().counter("conv.bp_flops");
    bp_flops.add(2 * spec_.flops() * batch);
    const bool perf_on = obs::perfEnabled();
    obs::PerfSample perf0;
    Stopwatch watch;
    {
        SPG_TRACE_SCOPE_N("layer", span_bp_data, "batch", batch);
        if (perf_on)
            perf0 = phasePerfSnapshot(pool);
        engineByName(assignment.bp_data)
            .backwardData(spec_, eo, weights_, ei, pool, mask);
    }
    profile_.bp_data_seconds += watch.seconds();
    if (perf_on)
        profile_.bp_data_perf.accumulate(
            phasePerfSnapshot(pool).delta(perf0));
    watch.reset();
    {
        SPG_TRACE_SCOPE_N("layer", span_bp_weights, "batch", batch);
        if (perf_on)
            perf0 = phasePerfSnapshot(pool);
        engineByName(assignment.bp_weights)
            .backwardWeights(spec_, eo, in, dweights, pool, mask);
    }
    profile_.bp_weights_seconds += watch.seconds();
    if (perf_on)
        profile_.bp_weights_perf.accumulate(
            phasePerfSnapshot(pool).delta(perf0));
}

void
ConvLayer::update(float learning_rate)
{
    SPG_ASSERT(!inference_only);
    float *w = weights_.data();
    const float *dw = dweights.data();
    for (std::int64_t i = 0; i < weights_.size(); ++i)
        w[i] -= learning_rate * dw[i];
    // Re-prune: the SGD step revives masked weights; zeroing them
    // again here keeps the layer at its scheduled sparsity between
    // prune steps.
    applyPruneMask(weights_, prune_mask);
    PackedWeightCache::global().invalidate(weights_.data());
}

void
ConvLayer::paramsUpdated()
{
    PackedWeightCache::global().invalidate(weights_.data());
}

void
ConvLayer::setInferenceOnly()
{
    inference_only = true;
    dweights = Tensor();
    relu_mask.clear();
    relu_mask.shrink_to_fit();
}

void
ConvLayer::pruneToSparsity(double sparsity)
{
    magnitudePrune(weights_, sparsity, prune_mask);
    obs::Metrics::global()
        .gauge("conv." + label + ".weight_sparsity")
        .set(weightSparsity());
    paramsUpdated();
}

double
ConvLayer::weightSparsity() const
{
    return weights_.sparsity();
}

} // namespace spg
