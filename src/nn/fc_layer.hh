/**
 * @file
 * Fully-connected layer and the softmax + cross-entropy head.
 */

#ifndef SPG_NN_FC_LAYER_HH
#define SPG_NN_FC_LAYER_HH

#include <cstdint>
#include <vector>

#include "nn/layer.hh"
#include "util/random.hh"

namespace spg {

/**
 * Dense layer: out[b] = W * flatten(in[b]) + bias. Implemented with
 * the spg-CNN SGEMM (one batched MM per phase).
 */
class FcLayer : public Layer
{
  public:
    /**
     * @param geometry Input geometry (flattened to c*h*w).
     * @param outputs Output neuron count.
     * @param rng Weight initialization source.
     */
    FcLayer(Geometry geometry, std::int64_t outputs, Rng &rng);

    std::string name() const override;
    Geometry inputGeometry() const override { return geom; }
    Geometry outputGeometry() const override
    {
        return Geometry{outputs, 1, 1};
    }

    void forward(const Tensor &in, Tensor &out, ThreadPool &pool) override;
    void backward(const Tensor &in, const Tensor &out, const Tensor &eo,
                  Tensor &ei, ThreadPool &pool) override;
    void update(float learning_rate) override;

    /** BP-weights needs the saved input; the output (possibly already
     *  ReLU-clamped in the fused bias epilogue) is never re-read. */
    bool backwardUsesInput() const override { return true; }
    bool backwardUsesOutput() const override { return false; }

    /**
     * Fuse a trailing ReLU: forward clamps inside the bias epilogue
     * while each row is hot and saves a byte activity mask; backward
     * stages the masked error once and feeds it to all three gradient
     * consumers, eliminating the standalone elementwise passes.
     */
    void setFusedRelu(bool on) { fused_relu = on; }
    bool fusedRelu() const { return fused_relu; }

    bool hasParams() const override { return true; }
    std::int64_t paramCount() const override
    {
        return weights.size() + bias.size();
    }
    std::vector<Tensor *> params() override
    {
        return {&weights, &bias};
    }
    std::vector<Tensor *> grads() override
    {
        return {&dweights, &dbias};
    }

    bool prunable() const override { return true; }
    void pruneToSparsity(double sparsity) override;
    double weightSparsity() const override;
    std::vector<std::uint8_t> *pruneMask() override
    {
        return &prune_mask;
    }

    /** Forward-only mode: gradient accumulators and the masked-error
     *  staging buffer are released; a fused ReLU clamps in the bias
     *  epilogue without saving the activity mask. */
    void setInferenceOnly() override;

  private:
    Geometry geom;
    std::int64_t outputs;
    bool inference_only = false;
    Tensor weights;   ///< [outputs][D]
    Tensor bias;      ///< [outputs]
    Tensor dweights;  ///< gradient accumulator
    Tensor dbias;
    bool fused_relu = false;
    /** ReLU activity mask [B][outputs] saved by the fused forward. */
    std::vector<std::uint8_t> relu_mask;
    /** Staged (mask ? eo : 0), shared by the three BP consumers. */
    Tensor masked_eo;
    /** Magnitude-prune keep/drop mask over weights (bias never
     *  pruned); re-applied after every SGD update. */
    std::vector<std::uint8_t> prune_mask;
};

/**
 * Softmax with implicit cross-entropy loss. forward() produces class
 * probabilities; after setLabels(), backward() emits the fused
 * (prob - onehot) / B gradient, and loss()/accuracy() report on the
 * last forward batch.
 */
class SoftmaxLayer : public Layer
{
  public:
    explicit SoftmaxLayer(Geometry geometry);

    std::string name() const override { return "softmax"; }
    Geometry inputGeometry() const override { return geom; }
    Geometry outputGeometry() const override { return geom; }

    /** Set the target labels of the CURRENT minibatch (size B). */
    void setLabels(const std::vector<int> &labels);

    void forward(const Tensor &in, Tensor &out, ThreadPool &pool) override;
    void backward(const Tensor &in, const Tensor &out, const Tensor &eo,
                  Tensor &ei, ThreadPool &pool) override;

    /** backward() reads only the saved probabilities (out) and the
     *  labels; the logits (in) and the dummy eo are ignored. */
    bool backwardUsesInput() const override { return false; }
    bool backwardUsesOutput() const override { return true; }

    /** Mean cross-entropy of the last forward() batch. */
    double loss() const { return last_loss; }
    /** Top-1 accuracy of the last forward() batch. */
    double accuracy() const { return last_accuracy; }

  private:
    Geometry geom;
    std::vector<int> labels;
    double last_loss = 0;
    double last_accuracy = 0;
};

} // namespace spg

#endif // SPG_NN_FC_LAYER_HH
