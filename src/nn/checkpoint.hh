/**
 * @file
 * Network checkpointing.
 *
 * Saves and restores all trainable parameters of a Network to a small
 * self-describing binary format:
 *
 *   magic "SPGC", version u32, tensor-count u32, then per tensor:
 *   rank u32, extents i64[rank], data f32[elements].
 *
 * Loading validates every shape against the receiving network, so a
 * checkpoint can only be restored into a structurally identical model
 * (a mismatch is a user error -> fatal()).
 */

#ifndef SPG_NN_CHECKPOINT_HH
#define SPG_NN_CHECKPOINT_HH

#include <iosfwd>
#include <string>

#include "nn/network.hh"

namespace spg {

/** Serialize all parameters of @p net to the stream. */
void saveCheckpoint(Network &net, std::ostream &out);

/** Serialize all parameters of @p net to a file; fatal() on I/O
 *  failure. */
void saveCheckpoint(Network &net, const std::string &path);

/**
 * Restore parameters from the stream into @p net; fatal() on format
 * or shape mismatch.
 */
void loadCheckpoint(Network &net, std::istream &in);

/** Restore parameters from a file; fatal() when unreadable. */
void loadCheckpoint(Network &net, const std::string &path);

} // namespace spg

#endif // SPG_NN_CHECKPOINT_HH
