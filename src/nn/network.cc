#include "nn/network.hh"

#include <algorithm>
#include <chrono>

#include "conv/engine_direct.hh"
#include "obs/metrics.hh"
#include "tensor/blocked.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace spg {

Network::Network(const NetConfig &config, std::uint64_t seed,
                 bool inference_only)
    : inference_only_(inference_only)
{
    input_geom = Geometry{config.channels, config.height, config.width};
    Rng rng(seed);
    Geometry geom = input_geom;
    int conv_index = 0;

    NetConfig cfg = config;
    if (cfg.layers.empty() || cfg.layers.back().kind != LayerKind::Softmax)
        cfg.layers.push_back(LayerConfig{LayerKind::Softmax, "", 0, 0, 1,
                                         0});

    for (const auto &lc : cfg.layers) {
        switch (lc.kind) {
          case LayerKind::Conv: {
            if (lc.features <= 0 || lc.kernel <= 0)
                fatal("net '%s': conv layer needs features and kernel",
                      cfg.name.c_str());
            ConvSpec spec{geom.w, geom.h, geom.c, lc.features, lc.kernel,
                          lc.kernel, lc.stride, lc.stride};
            if (!spec.valid())
                fatal("net '%s': conv %s does not fit input %s",
                      cfg.name.c_str(), spec.str().c_str(),
                      geom.str().c_str());
            std::string label = lc.name.empty()
                                    ? "conv" + std::to_string(conv_index)
                                    : lc.name;
            ++conv_index;
            layers.push_back(
                std::make_unique<ConvLayer>(label, spec, rng));
            break;
          }
          case LayerKind::Relu: {
            // Epilogue fusion: a ReLU directly after a conv or fc layer
            // is applied inside that layer (while the output tile is
            // still hot) instead of as a standalone elementwise pass.
            // Bit-for-bit identical, including the BP gating.
            if (cfg.fuse_epilogues && !layers.empty()) {
                if (auto *conv =
                        dynamic_cast<ConvLayer *>(layers.back().get())) {
                    conv->setFusedRelu(true);
                    ++fused_pairs;
                    break;
                }
                if (auto *fc =
                        dynamic_cast<FcLayer *>(layers.back().get())) {
                    fc->setFusedRelu(true);
                    ++fused_pairs;
                    break;
                }
            }
            layers.push_back(std::make_unique<ReluLayer>(geom));
            break;
          }
          case LayerKind::MaxPool:
          case LayerKind::AvgPool: {
            if (lc.kernel <= 0)
                fatal("net '%s': pool layer needs a kernel",
                      cfg.name.c_str());
            auto mode = lc.kind == LayerKind::MaxPool
                            ? PoolLayer::Mode::Max
                            : PoolLayer::Mode::Avg;
            layers.push_back(std::make_unique<PoolLayer>(
                geom, lc.kernel, lc.stride, mode));
            break;
          }
          case LayerKind::Fc: {
            std::int64_t outputs =
                lc.outputs > 0 ? lc.outputs : cfg.classes;
            if (outputs <= 0)
                fatal("net '%s': fc layer needs outputs (or a global "
                      "classes count)",
                      cfg.name.c_str());
            layers.push_back(
                std::make_unique<FcLayer>(geom, outputs, rng));
            break;
          }
          case LayerKind::Softmax:
            layers.push_back(std::make_unique<SoftmaxLayer>(geom));
            break;
        }
        geom = layers.back()->outputGeometry();
    }

    head = dynamic_cast<SoftmaxLayer *>(layers.back().get());
    SPG_ASSERT(head != nullptr);

    if (inference_only_) {
        for (auto &layer : layers)
            layer->setInferenceOnly();
    }
}

void
Network::ensureBuffers(std::int64_t batch)
{
    // The plan (slots + slabs) is kept as long as it is big enough:
    // a smaller batch only needs its views rebuilt, since every
    // buffer shape is linear in the batch extent. reserveBatch() can
    // pre-size the plan so ragged serving batches never re-plan.
    if (plan_batch_ < batch)
        planArena(std::max(batch, reserve_batch_));
    if (view_batch_ != batch)
        buildViews(batch);
}

void
Network::reserveBatch(std::int64_t max_batch)
{
    SPG_ASSERT(max_batch >= 1);
    reserve_batch_ = std::max(reserve_batch_, max_batch);
    std::vector<char> blocked = negotiateLayouts();
    if (blocked != blocked_edges_) {
        blocked_edges_ = std::move(blocked);
        plan_batch_ = 0;  // shapes changed: re-plan the arena
    }
    ensureBuffers(max_batch);
}

void
Network::planArena(std::int64_t batch)
{
    acts.clear();
    errs.clear();
    arena_slabs.clear();
    buf_plans_.clear();
    view_batch_ = 0;
    plan_batch_ = batch;

    // Liveness-planned activation arena. Logical buffer b < L is
    // acts[b] (output of layer b); buffer L + i is errs[i] (error
    // w.r.t. layer i's input, errs[L] being the head's dummy eo).
    // Timeline: layer i runs FP at step i and BP at step 2L-1-i, so a
    // whole training step spans steps [0, 2L-1]. Each buffer gets an
    // inclusive [start, end] live interval from the layers' declared
    // BP reads, aliasable in-place layers are merged, and the
    // surviving root buffers are first-fit packed into reusable slabs.
    //
    // Forward-only networks plan the FP prefix alone: no error
    // buffers exist, no BP mirror steps extend the activation
    // intervals, and an elementwise layer can always run in place
    // (nothing ever revisits its operands), so the packing collapses
    // to a ping-pong of the two largest neighbouring activations.
    const std::int64_t L = static_cast<std::int64_t>(layers.size());
    struct Buf
    {
        Shape shape;
        Layout layout;
        std::int64_t start = 0;
        std::int64_t end = 0;
        std::int64_t root = -1;  ///< alias target; -1 = self
        std::int64_t slot = -1;
    };
    const std::int64_t nbufs = inference_only_ ? L : 2 * L + 1;
    std::vector<Buf> bufs(static_cast<std::size_t>(nbufs));

    for (std::int64_t i = 0; i < L; ++i) {
        Geometry og = layers[i]->outputGeometry();
        if (i < static_cast<std::int64_t>(blocked_edges_.size()) &&
            blocked_edges_[static_cast<std::size_t>(i)]) {
            // Negotiated NCHWc edge: the slab holds the channel-blocked
            // (padded) image; both endpoint engines consume it as-is.
            bufs[i].shape = nchwcShape(batch, og.c, og.h, og.w);
            bufs[i].layout = Layout::nchwc(og.c);
        } else {
            bufs[i].shape = Shape{batch, og.c, og.h, og.w};
        }
        bufs[i].start = i;
        std::int64_t end = i;
        if (i + 1 < L) {
            end = std::max(end, i + 1);  // next layer's FP input
            if (!inference_only_ && layers[i + 1]->backwardUsesInput())
                end = std::max(end, 2 * L - 2 - i);
        }
        if (!inference_only_ && layers[i]->backwardUsesOutput())
            end = std::max(end, 2 * L - 1 - i);
        // The last activation (class probabilities) is returned to the
        // caller: pin it past the timeline so it is never recycled.
        if (i == L - 1)
            end = inference_only_ ? L + 1 : 2 * L;
        bufs[i].end = end;
    }
    if (!inference_only_) {
        bufs[L].shape =
            Shape{batch, input_geom.c, input_geom.h, input_geom.w};
        bufs[L].start = 2 * L - 1;  // written by layer 0's BP, never read
        bufs[L].end = 2 * L - 1;
        for (std::int64_t i = 1; i <= L; ++i) {
            Geometry og = layers[i - 1]->outputGeometry();
            bufs[L + i].shape = Shape{batch, og.c, og.h, og.w};
            if (i == L) {
                // Dummy eo handed to the head at its BP step; never
                // written.
                bufs[L + i].start = L;
                bufs[L + i].end = L;
            } else {
                bufs[L + i].start = 2 * L - 1 - i;  // written by layer i
                bufs[L + i].end = 2 * L - i;  // read by layer i-1 BP
            }
        }
    }

    // In-place merging: an elementwise layer whose BP needs neither its
    // input nor the previous layer's output (e.g. an unfused ReLU after
    // a pool) runs with out aliasing in and ei aliasing eo. Without a
    // BP pass the aliasing is unconditionally safe.
    auto rootOf = [&](std::int64_t b) {
        while (bufs[b].root >= 0)
            b = bufs[b].root;
        return b;
    };
    auto mergeInto = [&](std::int64_t victim, std::int64_t target) {
        victim = rootOf(victim);
        target = rootOf(target);
        if (victim == target)
            return;
        bufs[target].start = std::min(bufs[target].start,
                                      bufs[victim].start);
        bufs[target].end = std::max(bufs[target].end, bufs[victim].end);
        bufs[victim].root = target;
    };
    for (std::int64_t i = 1; i < L; ++i) {
        if (!layers[i]->inPlaceCapable())
            continue;
        if (inference_only_) {
            mergeInto(i, i - 1);  // acts[i] aliases acts[i-1]
        } else if (!layers[i]->backwardUsesInput() &&
                   !layers[i - 1]->backwardUsesOutput()) {
            mergeInto(i, i - 1);          // acts[i] aliases acts[i-1]
            mergeInto(L + i, L + i + 1);  // errs[i] aliases errs[i+1]
        }
    }

    // Greedy first-fit interval packing of the root buffers into slots.
    struct Slot
    {
        std::int64_t end = -1;
        std::int64_t elems = 0;
    };
    std::vector<Slot> slots;
    std::vector<std::int64_t> roots;
    for (std::int64_t b = 0; b < nbufs; ++b)
        if (bufs[b].root < 0)
            roots.push_back(b);
    std::sort(roots.begin(), roots.end(),
              [&](std::int64_t a, std::int64_t b) {
                  return bufs[a].start != bufs[b].start
                             ? bufs[a].start < bufs[b].start
                             : a < b;
              });
    for (std::int64_t b : roots) {
        std::int64_t chosen = -1;
        for (std::size_t s = 0; s < slots.size(); ++s) {
            if (slots[s].end < bufs[b].start) {
                chosen = static_cast<std::int64_t>(s);
                break;
            }
        }
        if (chosen < 0) {
            chosen = static_cast<std::int64_t>(slots.size());
            slots.push_back(Slot{});
        }
        slots[chosen].end = bufs[b].end;
        slots[chosen].elems =
            std::max(slots[chosen].elems, bufs[b].shape.elements());
        bufs[b].slot = chosen;
    }

    // Back the slots with uninitialized slabs (every buffer is fully
    // defined by its producer before any consumer reads it). Aliased
    // buffers resolve to their root's slot.
    arena_slabs.reserve(slots.size());
    arena_bytes_ = 0;
    for (const Slot &slot : slots) {
        arena_slabs.emplace_back(kUninit,
                                 static_cast<std::size_t>(slot.elems));
        arena_bytes_ +=
            slot.elems * static_cast<std::int64_t>(sizeof(float));
    }
    arena_unplanned_bytes_ = 0;
    for (const Buf &buf : bufs)
        arena_unplanned_bytes_ += buf.shape.elements() *
                                  static_cast<std::int64_t>(sizeof(float));

    // Record the per-buffer plan buildViews() rebuilds views from:
    // per-image geometry + layout flag + resolved slot. Shapes are
    // linear in batch, so the same plan serves every batch <= ours.
    buf_plans_.resize(static_cast<std::size_t>(nbufs));
    for (std::int64_t b = 0; b < nbufs; ++b) {
        BufPlan &plan = buf_plans_[static_cast<std::size_t>(b)];
        if (b < L) {
            plan.geom = layers[b]->outputGeometry();
            plan.blocked =
                b < static_cast<std::int64_t>(blocked_edges_.size()) &&
                blocked_edges_[static_cast<std::size_t>(b)];
        } else if (b == L) {
            plan.geom = input_geom;
        } else {
            plan.geom = layers[b - L - 1]->outputGeometry();
        }
        plan.slot = bufs[rootOf(b)].slot;
    }

    obs::Metrics::global().gauge("nn.arena_bytes").set(
        static_cast<double>(arena_bytes_));
    obs::Metrics::global().gauge("nn.arena_unplanned_bytes").set(
        static_cast<double>(arena_unplanned_bytes_));
}

void
Network::buildViews(std::int64_t batch)
{
    SPG_ASSERT(batch >= 1 && batch <= plan_batch_);
    const std::int64_t L = static_cast<std::int64_t>(layers.size());
    acts.clear();
    errs.clear();
    auto viewOf = [&](std::int64_t b) {
        const BufPlan &plan = buf_plans_[static_cast<std::size_t>(b)];
        // Slabs are cache-line (64-byte) aligned by construction; the
        // blocked view constructor asserts that, as the direct engine's
        // register tiles rely on it.
        if (plan.blocked) {
            return Tensor::view(
                nchwcShape(batch, plan.geom.c, plan.geom.h, plan.geom.w),
                arena_slabs[plan.slot].data(),
                Layout::nchwc(plan.geom.c));
        }
        return Tensor::view(
            Shape{batch, plan.geom.c, plan.geom.h, plan.geom.w},
            arena_slabs[plan.slot].data(), Layout{});
    };
    for (std::int64_t i = 0; i < L; ++i)
        acts.push_back(viewOf(i));
    if (!inference_only_) {
        for (std::int64_t i = 0; i <= L; ++i)
            errs.push_back(viewOf(L + i));
    }
    view_batch_ = batch;
}

const Tensor &
Network::forward(const Tensor &images, ThreadPool &pool)
{
    std::int64_t batch = images.shape()[0];
    Shape want{batch, input_geom.c, input_geom.h, input_geom.w};
    if (images.shape() != want)
        fatal("network expects input %s, got %s", want.str().c_str(),
              images.shape().str().c_str());
    std::vector<char> blocked = negotiateLayouts();
    if (blocked != blocked_edges_) {
        blocked_edges_ = std::move(blocked);
        plan_batch_ = 0;  // shapes changed: re-plan the arena
    }
    ensureBuffers(batch);
    SPG_TRACE_SCOPE_N("train", "forward", "batch", batch);
    const Tensor *in = &images;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        layers[i]->forward(*in, acts[i], pool);
        in = &acts[i];
    }
    return acts.back();
}

StepStats
Network::trainStep(const Tensor &images, const std::vector<int> &labels,
                   float learning_rate, ThreadPool &pool)
{
    SPG_TRACE_SCOPE_N("train", "step", "batch", images.shape()[0]);
    StepStats stats = forwardBackward(images, labels, pool);
    applyUpdate(learning_rate);
    return stats;
}

StepStats
Network::forwardBackward(const Tensor &images,
                         const std::vector<int> &labels, ThreadPool &pool,
                         const BackwardHook &hook)
{
    if (inference_only_)
        fatal("forwardBackward() on a forward-only network");
    auto step_start = std::chrono::steady_clock::now();
    head->setLabels(labels);
    forward(images, pool);

    // errs[i] is the gradient w.r.t. layer i's INPUT; the softmax head
    // consumes no upstream gradient (errs.back() is a dummy).
    {
        SPG_TRACE_SCOPE("train", "backward");
        for (std::size_t i = layers.size(); i-- > 0;) {
            const Tensor &in = i == 0 ? images : acts[i - 1];
            layers[i]->backward(in, acts[i], errs[i + 1], errs[i], pool);
            if (hook) {
                std::chrono::duration<double> ready =
                    std::chrono::steady_clock::now() - step_start;
                hook(i, *layers[i], ready.count());
            }
        }
    }
    return StepStats{head->loss(), head->accuracy()};
}

void
Network::applyUpdate(float learning_rate)
{
    SPG_TRACE_SCOPE("train", "update");
    for (auto &layer : layers)
        layer->update(learning_rate);
}

double
Network::evalAccuracy(const Tensor &images, const std::vector<int> &labels,
                      ThreadPool &pool)
{
    head->setLabels(labels);
    forward(images, pool);
    return head->accuracy();
}

std::vector<char>
Network::negotiateLayouts() const
{
    const std::size_t L = layers.size();
    std::vector<char> blocked(L, 0);
    if (!DirectEngine::blockedLayoutSupported())
        return blocked;
    for (std::size_t i = 0; i + 1 < L; ++i) {
        auto *prod = dynamic_cast<const ConvLayer *>(layers[i].get());
        auto *cons = dynamic_cast<const ConvLayer *>(layers[i + 1].get());
        if (prod == nullptr || cons == nullptr)
            continue;
        if (prod->engines().fp == "direct" &&
            cons->engines().fp == "direct" &&
            cons->engines().bp_weights == "direct")
            blocked[i] = 1;
    }
    return blocked;
}

std::vector<ConvLayer *>
Network::convLayers()
{
    std::vector<ConvLayer *> convs;
    for (auto &layer : layers) {
        if (auto *conv = dynamic_cast<ConvLayer *>(layer.get()))
            convs.push_back(conv);
    }
    return convs;
}

std::int64_t
Network::paramCount() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers)
        total += layer->paramCount();
    return total;
}

void
Network::describe() const
{
    Geometry geom = input_geom;
    inform("network input: %s", geom.str().c_str());
    for (const auto &layer : layers) {
        Geometry og = layer->outputGeometry();
        inform("  %-28s %s -> %s", layer->name().c_str(),
               layer->inputGeometry().str().c_str(), og.str().c_str());
        geom = og;
    }
    inform("  trainable parameters: %lld",
           static_cast<long long>(paramCount()));
}

} // namespace spg
