#include "nn/network.hh"

#include "obs/trace.hh"
#include "util/logging.hh"

namespace spg {

Network::Network(const NetConfig &config, std::uint64_t seed)
{
    input_geom = Geometry{config.channels, config.height, config.width};
    Rng rng(seed);
    Geometry geom = input_geom;
    int conv_index = 0;

    NetConfig cfg = config;
    if (cfg.layers.empty() || cfg.layers.back().kind != LayerKind::Softmax)
        cfg.layers.push_back(LayerConfig{LayerKind::Softmax, "", 0, 0, 1,
                                         0});

    for (const auto &lc : cfg.layers) {
        switch (lc.kind) {
          case LayerKind::Conv: {
            if (lc.features <= 0 || lc.kernel <= 0)
                fatal("net '%s': conv layer needs features and kernel",
                      cfg.name.c_str());
            ConvSpec spec{geom.w, geom.h, geom.c, lc.features, lc.kernel,
                          lc.kernel, lc.stride, lc.stride};
            if (!spec.valid())
                fatal("net '%s': conv %s does not fit input %s",
                      cfg.name.c_str(), spec.str().c_str(),
                      geom.str().c_str());
            std::string label = lc.name.empty()
                                    ? "conv" + std::to_string(conv_index)
                                    : lc.name;
            ++conv_index;
            layers.push_back(
                std::make_unique<ConvLayer>(label, spec, rng));
            break;
          }
          case LayerKind::Relu:
            layers.push_back(std::make_unique<ReluLayer>(geom));
            break;
          case LayerKind::MaxPool:
          case LayerKind::AvgPool: {
            if (lc.kernel <= 0)
                fatal("net '%s': pool layer needs a kernel",
                      cfg.name.c_str());
            auto mode = lc.kind == LayerKind::MaxPool
                            ? PoolLayer::Mode::Max
                            : PoolLayer::Mode::Avg;
            layers.push_back(std::make_unique<PoolLayer>(
                geom, lc.kernel, lc.stride, mode));
            break;
          }
          case LayerKind::Fc: {
            std::int64_t outputs =
                lc.outputs > 0 ? lc.outputs : cfg.classes;
            if (outputs <= 0)
                fatal("net '%s': fc layer needs outputs (or a global "
                      "classes count)",
                      cfg.name.c_str());
            layers.push_back(
                std::make_unique<FcLayer>(geom, outputs, rng));
            break;
          }
          case LayerKind::Softmax:
            layers.push_back(std::make_unique<SoftmaxLayer>(geom));
            break;
        }
        geom = layers.back()->outputGeometry();
    }

    head = dynamic_cast<SoftmaxLayer *>(layers.back().get());
    SPG_ASSERT(head != nullptr);
}

void
Network::ensureBuffers(std::int64_t batch)
{
    if (buffer_batch == batch)
        return;
    buffer_batch = batch;
    acts.clear();
    errs.clear();
    Geometry geom = input_geom;
    errs.emplace_back(Shape{batch, geom.c, geom.h, geom.w});
    for (const auto &layer : layers) {
        Geometry og = layer->outputGeometry();
        acts.emplace_back(Shape{batch, og.c, og.h, og.w});
        errs.emplace_back(Shape{batch, og.c, og.h, og.w});
    }
}

const Tensor &
Network::forward(const Tensor &images, ThreadPool &pool)
{
    std::int64_t batch = images.shape()[0];
    Shape want{batch, input_geom.c, input_geom.h, input_geom.w};
    if (images.shape() != want)
        fatal("network expects input %s, got %s", want.str().c_str(),
              images.shape().str().c_str());
    ensureBuffers(batch);
    SPG_TRACE_SCOPE_N("train", "forward", "batch", batch);
    const Tensor *in = &images;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        layers[i]->forward(*in, acts[i], pool);
        in = &acts[i];
    }
    return acts.back();
}

StepStats
Network::trainStep(const Tensor &images, const std::vector<int> &labels,
                   float learning_rate, ThreadPool &pool)
{
    SPG_TRACE_SCOPE_N("train", "step", "batch", images.shape()[0]);
    head->setLabels(labels);
    forward(images, pool);

    // errs[i] is the gradient w.r.t. layer i's INPUT; the softmax head
    // consumes no upstream gradient (errs.back() is a dummy).
    {
        SPG_TRACE_SCOPE("train", "backward");
        for (std::size_t i = layers.size(); i-- > 0;) {
            const Tensor &in = i == 0 ? images : acts[i - 1];
            layers[i]->backward(in, acts[i], errs[i + 1], errs[i], pool);
        }
    }
    {
        SPG_TRACE_SCOPE("train", "update");
        for (auto &layer : layers)
            layer->update(learning_rate);
    }

    return StepStats{head->loss(), head->accuracy()};
}

double
Network::evalAccuracy(const Tensor &images, const std::vector<int> &labels,
                      ThreadPool &pool)
{
    head->setLabels(labels);
    forward(images, pool);
    return head->accuracy();
}

std::vector<ConvLayer *>
Network::convLayers()
{
    std::vector<ConvLayer *> convs;
    for (auto &layer : layers) {
        if (auto *conv = dynamic_cast<ConvLayer *>(layer.get()))
            convs.push_back(conv);
    }
    return convs;
}

std::int64_t
Network::paramCount() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers)
        total += layer->paramCount();
    return total;
}

void
Network::describe() const
{
    Geometry geom = input_geom;
    inform("network input: %s", geom.str().c_str());
    for (const auto &layer : layers) {
        Geometry og = layer->outputGeometry();
        inform("  %-28s %s -> %s", layer->name().c_str(),
               layer->inputGeometry().str().c_str(), og.str().c_str());
        geom = og;
    }
    inform("  trainable parameters: %lld",
           static_cast<long long>(paramCount()));
}

} // namespace spg
