/**
 * @file
 * Status and error reporting for spg-CNN.
 *
 * Follows the gem5 discipline: fatal() is for conditions caused by the
 * user (bad configuration, invalid arguments) and exits cleanly with an
 * error code, while panic() is for internal invariant violations (bugs)
 * and aborts so a debugger or core dump can capture the state.
 * inform() and warn() report status without stopping execution.
 */

#ifndef SPG_UTIL_LOGGING_HH
#define SPG_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace spg {

/** Verbosity levels for status messages. */
enum class LogLevel
{
    Quiet = 0,   ///< only warnings and errors
    Normal = 1,  ///< informational messages
    Verbose = 2  ///< detailed progress messages
};

/** Return the process-wide log level. */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

namespace detail {

/** Emit a formatted line with the given prefix to the given stream. */
void emit(std::FILE *stream, const char *prefix, const char *fmt,
          std::va_list args);

} // namespace detail

/**
 * Report an informational message. Shown at LogLevel::Normal and above.
 *
 * @param fmt printf-style format string.
 */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a detailed progress message. Shown only at LogLevel::Verbose.
 *
 * @param fmt printf-style format string.
 */
void verbose(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a condition that might indicate a problem but does not stop
 * execution.
 *
 * @param fmt printf-style format string.
 */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-caused error and exit(1). Use for bad
 * configuration or invalid arguments, never for internal bugs.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort(). Use only for
 * conditions that indicate a bug in spg-CNN itself.
 *
 * @param fmt printf-style format string.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Check an internal invariant; panic with file/line context on failure.
 * Active in all build types (unlike assert).
 */
#define SPG_ASSERT(cond)                                                   \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::spg::panic("assertion '%s' failed at %s:%d", #cond,          \
                         __FILE__, __LINE__);                              \
        }                                                                  \
    } while (0)

} // namespace spg

#endif // SPG_UTIL_LOGGING_HH
