/**
 * @file
 * Wall-clock timing utilities used by the autotuner and benchmarks.
 */

#ifndef SPG_UTIL_TIMER_HH
#define SPG_UTIL_TIMER_HH

#include <chrono>
#include <cstdint>

namespace spg {

/**
 * A simple monotonic wall-clock stopwatch.
 *
 * The stopwatch starts running on construction; reset() restarts it.
 */
class Stopwatch
{
  public:
    Stopwatch() : start(Clock::now()) {}

    /** Restart the stopwatch from zero. */
    void reset() { start = Clock::now(); }

    /** @return elapsed time in seconds since construction or reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start).count();
    }

    /** @return elapsed time in milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

    /** @return elapsed time in microseconds. */
    double microseconds() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

/**
 * Run a callable repeatedly and return the best (minimum) time of
 * several repetitions, in seconds. A warm-up run is performed first so
 * that the measurement does not include cold caches or lazy page
 * allocation.
 *
 * @param reps Number of timed repetitions (at least 1).
 * @param fn Callable to measure.
 * @return Minimum wall-clock seconds over the repetitions.
 */
template <typename Fn>
double
bestTimeSeconds(int reps, Fn &&fn)
{
    fn();  // warm-up
    double best = 1e30;
    for (int i = 0; i < reps; ++i) {
        Stopwatch sw;
        fn();
        double t = sw.seconds();
        if (t < best)
            best = t;
    }
    return best;
}

/**
 * Run a callable repeatedly and return the mean time per call in
 * seconds, after one warm-up call.
 *
 * @param reps Number of timed repetitions (at least 1).
 * @param fn Callable to measure.
 */
template <typename Fn>
double
meanTimeSeconds(int reps, Fn &&fn)
{
    fn();  // warm-up
    Stopwatch sw;
    for (int i = 0; i < reps; ++i)
        fn();
    return sw.seconds() / reps;
}

} // namespace spg

#endif // SPG_UTIL_TIMER_HH
