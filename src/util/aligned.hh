/**
 * @file
 * Cache-line / SIMD aligned memory management.
 *
 * All tensor and packing buffers in spg-CNN are allocated through
 * AlignedBuffer so that vector loads are aligned and false sharing
 * across worker threads is avoided.
 *
 * Two allocation flavors exist: the default zero-initializes (layers
 * and tests rely on fresh tensors reading as zero), while the kUninit
 * tag skips the memset for buffers that are provably fully overwritten
 * before their first read (scratch, staging, arena slots) — on big
 * activation tensors that zeroing pass is a full extra DRAM sweep.
 * Sanitized builds (SPG_SANITIZE_BUILD) debug-fill uninitialized
 * buffers with 0xFF bytes (-NaN floats) so any use-before-overwrite
 * poisons the result loudly instead of reading silent zeros.
 */

#ifndef SPG_UTIL_ALIGNED_HH
#define SPG_UTIL_ALIGNED_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/logging.hh"

namespace spg {

/** Default alignment: one cache line, also enough for AVX-512. */
constexpr std::size_t kDefaultAlignment = 64;

/** Tag selecting the no-memset allocation path. */
struct UninitTag
{
};
inline constexpr UninitTag kUninit{};

/**
 * Process-wide allocation accounting (relaxed atomics; allocations are
 * rare next to the kernels). Published into the obs metrics registry
 * by the training loop so traced runs record how much zero-fill the
 * uninitialized path avoided.
 */
struct AllocCounters
{
    std::atomic<std::int64_t> zeroed_allocs{0};
    std::atomic<std::int64_t> zeroed_bytes{0};
    std::atomic<std::int64_t> uninit_allocs{0};
    std::atomic<std::int64_t> uninit_bytes{0};
};

inline AllocCounters &
allocCounters()
{
    static AllocCounters counters;
    return counters;
}

/**
 * An owning, aligned, fixed-capacity array of trivially-copyable
 * elements. Move-only.
 */
template <typename T>
class AlignedBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedBuffer requires trivially copyable elements");

  public:
    AlignedBuffer() = default;

    /**
     * Allocate a zero-initialized buffer.
     *
     * @param count Number of elements.
     * @param alignment Byte alignment; must be a power of two multiple
     *                  of sizeof(void*).
     */
    explicit AlignedBuffer(std::size_t count,
                           std::size_t alignment = kDefaultAlignment)
        : count_(count)
    {
        std::size_t padded = allocate(count, alignment);
        if (data_)
            std::memset(data_, 0, padded);
        allocCounters().zeroed_allocs.fetch_add(
            1, std::memory_order_relaxed);
        allocCounters().zeroed_bytes.fetch_add(
            static_cast<std::int64_t>(padded), std::memory_order_relaxed);
    }

    /**
     * Allocate WITHOUT zero-initialization. Only for buffers fully
     * overwritten before their first read.
     */
    AlignedBuffer(UninitTag, std::size_t count,
                  std::size_t alignment = kDefaultAlignment)
        : count_(count)
    {
        std::size_t padded = allocate(count, alignment);
#ifdef SPG_SANITIZE_BUILD
        // Poison so use-before-overwrite computes -NaN, not lucky zeros.
        if (data_)
            std::memset(data_, 0xFF, padded);
#endif
        allocCounters().uninit_allocs.fetch_add(
            1, std::memory_order_relaxed);
        allocCounters().uninit_bytes.fetch_add(
            static_cast<std::int64_t>(padded), std::memory_order_relaxed);
        (void)padded;
    }

    AlignedBuffer(const AlignedBuffer &) = delete;
    AlignedBuffer &operator=(const AlignedBuffer &) = delete;

    AlignedBuffer(AlignedBuffer &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          count_(std::exchange(other.count_, 0))
    {}

    AlignedBuffer &
    operator=(AlignedBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            count_ = std::exchange(other.count_, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    /** @return pointer to the first element, or nullptr when empty. */
    T *data() { return data_; }
    const T *data() const { return data_; }

    /** @return number of elements. */
    std::size_t size() const { return count_; }

    /** @return true when the buffer holds no elements. */
    bool empty() const { return count_ == 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *begin() { return data_; }
    T *end() { return data_ + count_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + count_; }

    /** Set every element to zero. */
    void
    zero()
    {
        if (data_)
            std::memset(data_, 0, count_ * sizeof(T));
    }

  private:
    /** @return the padded byte size actually allocated. */
    std::size_t
    allocate(std::size_t count, std::size_t alignment)
    {
        if (count == 0)
            return 0;
        std::size_t bytes = count * sizeof(T);
        // aligned_alloc requires size to be a multiple of alignment.
        std::size_t padded = (bytes + alignment - 1) / alignment * alignment;
        data_ = static_cast<T *>(std::aligned_alloc(alignment, padded));
        if (!data_)
            fatal("out of memory allocating %zu bytes", padded);
        return padded;
    }

    void
    release()
    {
        std::free(data_);
        data_ = nullptr;
        count_ = 0;
    }

    T *data_ = nullptr;
    std::size_t count_ = 0;
};

} // namespace spg

#endif // SPG_UTIL_ALIGNED_HH
