/**
 * @file
 * Cache-line / SIMD aligned memory management.
 *
 * All tensor and packing buffers in spg-CNN are allocated through
 * AlignedBuffer so that vector loads are aligned and false sharing
 * across worker threads is avoided.
 */

#ifndef SPG_UTIL_ALIGNED_HH
#define SPG_UTIL_ALIGNED_HH

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/logging.hh"

namespace spg {

/** Default alignment: one cache line, also enough for AVX-512. */
constexpr std::size_t kDefaultAlignment = 64;

/**
 * An owning, aligned, fixed-capacity array of trivially-copyable
 * elements. Move-only.
 */
template <typename T>
class AlignedBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedBuffer requires trivially copyable elements");

  public:
    AlignedBuffer() = default;

    /**
     * Allocate a zero-initialized buffer.
     *
     * @param count Number of elements.
     * @param alignment Byte alignment; must be a power of two multiple
     *                  of sizeof(void*).
     */
    explicit AlignedBuffer(std::size_t count,
                           std::size_t alignment = kDefaultAlignment)
        : count_(count)
    {
        if (count == 0)
            return;
        std::size_t bytes = count * sizeof(T);
        // aligned_alloc requires size to be a multiple of alignment.
        std::size_t padded = (bytes + alignment - 1) / alignment * alignment;
        data_ = static_cast<T *>(std::aligned_alloc(alignment, padded));
        if (!data_)
            fatal("out of memory allocating %zu bytes", padded);
        std::memset(data_, 0, padded);
    }

    AlignedBuffer(const AlignedBuffer &) = delete;
    AlignedBuffer &operator=(const AlignedBuffer &) = delete;

    AlignedBuffer(AlignedBuffer &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          count_(std::exchange(other.count_, 0))
    {}

    AlignedBuffer &
    operator=(AlignedBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            count_ = std::exchange(other.count_, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    /** @return pointer to the first element, or nullptr when empty. */
    T *data() { return data_; }
    const T *data() const { return data_; }

    /** @return number of elements. */
    std::size_t size() const { return count_; }

    /** @return true when the buffer holds no elements. */
    bool empty() const { return count_ == 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *begin() { return data_; }
    T *end() { return data_ + count_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + count_; }

    /** Set every element to zero. */
    void
    zero()
    {
        if (data_)
            std::memset(data_, 0, count_ * sizeof(T));
    }

  private:
    void
    release()
    {
        std::free(data_);
        data_ = nullptr;
        count_ = 0;
    }

    T *data_ = nullptr;
    std::size_t count_ = 0;
};

} // namespace spg

#endif // SPG_UTIL_ALIGNED_HH
