/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * spg-CNN experiments must be reproducible run-to-run, so all random
 * data (weights, synthetic datasets, sparsity masks) flows through this
 * seeded xoshiro256** generator rather than std::random_device.
 */

#ifndef SPG_UTIL_RANDOM_HH
#define SPG_UTIL_RANDOM_HH

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace spg {

/**
 * xoshiro256** PRNG (Blackman & Vigna). Fast, high quality, and
 * deterministic given a seed — used for every random draw in spg-CNN.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** @return the next 64 random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** @return a float uniform in [0, 1). */
    float
    uniform()
    {
        return static_cast<float>(next() >> 40) * 0x1.0p-24f;
    }

    /** @return a float uniform in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return an integer uniform in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Lemire-style rejection-free reduction; bias is negligible for
        // the ranges used here (n << 2^64).
        return static_cast<std::uint64_t>(
            (static_cast<__uint128_t>(next()) * n) >> 64);
    }

    /**
     * @return a sample from N(0, 1) via the Box-Muller transform.
     */
    float
    gaussian()
    {
        if (have_spare) {
            have_spare = false;
            return spare;
        }
        float u1 = uniform();
        float u2 = uniform();
        // Avoid log(0).
        if (u1 < 1e-12f)
            u1 = 1e-12f;
        float mag = std::sqrt(-2.0f * std::log(u1));
        float two_pi_u2 = 6.28318530717958647692f * u2;
        spare = mag * std::sin(two_pi_u2);
        have_spare = true;
        return mag * std::cos(two_pi_u2);
    }

    /** @return true with the given probability (clamped to [0, 1]). */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4] = {};
    bool have_spare = false;
    float spare = 0.0f;
};

} // namespace spg

#endif // SPG_UTIL_RANDOM_HH
