/**
 * @file
 * Minimal command-line flag parsing for examples and benchmarks.
 *
 * Supports --name=value and --name value forms plus boolean switches,
 * with typed getters and automatic --help output.
 */

#ifndef SPG_UTIL_CLI_HH
#define SPG_UTIL_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace spg {

/**
 * A declarative command-line parser. Flags are registered with a
 * default value and a help string; parse() then consumes argv and
 * fatal()s on unknown flags or malformed values.
 */
class CliParser
{
  public:
    /** @param program_summary One-line description shown by --help. */
    explicit CliParser(std::string program_summary);

    /** Register an integer flag. */
    void addInt(const std::string &name, long long default_value,
                const std::string &help);

    /** Register a floating-point flag. */
    void addDouble(const std::string &name, double default_value,
                   const std::string &help);

    /** Register a string flag. */
    void addString(const std::string &name,
                   const std::string &default_value,
                   const std::string &help);

    /** Register a boolean switch (present => true). */
    void addBool(const std::string &name, bool default_value,
                 const std::string &help);

    /**
     * Parse argv. Prints help and exits 0 on --help; fatal()s on
     * unknown flags or type errors.
     */
    void parse(int argc, char **argv);

    /** @return the parsed (or default) value of an integer flag. */
    long long getInt(const std::string &name) const;

    /** @return the parsed (or default) value of a double flag. */
    double getDouble(const std::string &name) const;

    /** @return the parsed (or default) value of a string flag. */
    std::string getString(const std::string &name) const;

    /** @return the parsed (or default) value of a boolean switch. */
    bool getBool(const std::string &name) const;

    /** Positional (non-flag) arguments in order of appearance. */
    const std::vector<std::string> &positional() const { return args; }

  private:
    enum class Kind { Int, Double, String, Bool };

    struct Flag
    {
        Kind kind;
        std::string value;
        std::string defaultValue;
        std::string help;
    };

    const Flag &find(const std::string &name, Kind kind) const;
    void printHelp(const char *argv0) const;

    std::string summary;
    std::map<std::string, Flag> flags;
    std::vector<std::string> args;
};

} // namespace spg

#endif // SPG_UTIL_CLI_HH
