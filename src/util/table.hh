/**
 * @file
 * Text table and CSV emission for benchmark harnesses.
 *
 * Every bench binary prints the rows/series of the paper table or
 * figure it regenerates; TablePrinter renders them as an aligned text
 * table and, optionally, as CSV for downstream plotting.
 */

#ifndef SPG_UTIL_TABLE_HH
#define SPG_UTIL_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace spg {

/**
 * Accumulates rows of string cells and renders them either as an
 * aligned, human-readable table or as CSV.
 */
class TablePrinter
{
  public:
    /**
     * @param title Table caption printed above the rendered table.
     * @param headers Column headers.
     */
    TablePrinter(std::string title, std::vector<std::string> headers);

    /** Append one row; must have the same arity as the headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string fmt(double value, int precision = 2);

    /** Convenience: format an integer. */
    static std::string fmt(long long value);

    /** Render as an aligned text table to the given stream. */
    void print(std::FILE *stream = stdout) const;

    /** Render as CSV (headers + rows) to the given stream. */
    void printCsv(std::FILE *stream = stdout) const;

    /** Write the CSV rendering to a file; fatal() on failure. */
    void writeCsv(const std::string &path) const;

    /** @return number of data rows added so far. */
    std::size_t rowCount() const { return rows.size(); }

  private:
    std::string title;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace spg

#endif // SPG_UTIL_TABLE_HH
