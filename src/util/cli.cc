#include "util/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace spg {

CliParser::CliParser(std::string program_summary)
    : summary(std::move(program_summary))
{
}

void
CliParser::addInt(const std::string &name, long long default_value,
                  const std::string &help)
{
    std::string v = std::to_string(default_value);
    flags[name] = Flag{Kind::Int, v, v, help};
}

void
CliParser::addDouble(const std::string &name, double default_value,
                     const std::string &help)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", default_value);
    flags[name] = Flag{Kind::Double, buf, buf, help};
}

void
CliParser::addString(const std::string &name,
                     const std::string &default_value,
                     const std::string &help)
{
    flags[name] = Flag{Kind::String, default_value, default_value, help};
}

void
CliParser::addBool(const std::string &name, bool default_value,
                   const std::string &help)
{
    std::string v = default_value ? "1" : "0";
    flags[name] = Flag{Kind::Bool, v, v, help};
}

void
CliParser::printHelp(const char *argv0) const
{
    std::printf("%s — %s\n\nflags:\n", argv0, summary.c_str());
    for (const auto &[name, flag] : flags) {
        std::printf("  --%-20s %s (default: %s)\n", name.c_str(),
                    flag.help.c_str(), flag.defaultValue.c_str());
    }
    std::printf("  --%-20s %s\n", "help", "show this message");
}

void
CliParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            args.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        if (body == "help") {
            printHelp(argv[0]);
            std::exit(0);
        }
        std::string name = body;
        std::string value;
        bool have_value = false;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            name = body.substr(0, eq);
            value = body.substr(eq + 1);
            have_value = true;
        }
        auto it = flags.find(name);
        if (it == flags.end())
            fatal("unknown flag '--%s' (try --help)", name.c_str());
        Flag &flag = it->second;
        if (flag.kind == Kind::Bool && !have_value) {
            flag.value = "1";
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc)
                fatal("flag '--%s' expects a value", name.c_str());
            value = argv[++i];
        }
        // Validate typed values eagerly so errors point at the flag.
        char *end = nullptr;
        switch (flag.kind) {
          case Kind::Int:
            std::strtoll(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                fatal("flag '--%s' expects an integer, got '%s'",
                      name.c_str(), value.c_str());
            break;
          case Kind::Double:
            std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                fatal("flag '--%s' expects a number, got '%s'",
                      name.c_str(), value.c_str());
            break;
          case Kind::Bool:
            if (value != "0" && value != "1" && value != "true" &&
                value != "false") {
                fatal("flag '--%s' expects a boolean, got '%s'",
                      name.c_str(), value.c_str());
            }
            value = (value == "1" || value == "true") ? "1" : "0";
            break;
          case Kind::String:
            break;
        }
        flag.value = value;
    }
}

const CliParser::Flag &
CliParser::find(const std::string &name, Kind kind) const
{
    auto it = flags.find(name);
    if (it == flags.end())
        panic("flag '--%s' was never registered", name.c_str());
    if (it->second.kind != kind)
        panic("flag '--%s' accessed with the wrong type", name.c_str());
    return it->second;
}

long long
CliParser::getInt(const std::string &name) const
{
    return std::strtoll(find(name, Kind::Int).value.c_str(), nullptr, 10);
}

double
CliParser::getDouble(const std::string &name) const
{
    return std::strtod(find(name, Kind::Double).value.c_str(), nullptr);
}

std::string
CliParser::getString(const std::string &name) const
{
    return find(name, Kind::String).value;
}

bool
CliParser::getBool(const std::string &name) const
{
    return find(name, Kind::Bool).value == "1";
}

} // namespace spg
