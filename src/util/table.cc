#include "util/table.hh"

#include <algorithm>
#include <cstring>

#include "util/logging.hh"

namespace spg {

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> headers)
    : title(std::move(title)), headers(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers.size()) {
        panic("table '%s': row arity %zu != header arity %zu",
              title.c_str(), cells.size(), headers.size());
    }
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TablePrinter::fmt(long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    return buf;
}

void
TablePrinter::print(std::FILE *stream) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_sep = [&] {
        std::fputc('+', stream);
        for (auto w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i)
                std::fputc('-', stream);
            std::fputc('+', stream);
        }
        std::fputc('\n', stream);
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        std::fputc('|', stream);
        for (std::size_t c = 0; c < cells.size(); ++c) {
            std::fprintf(stream, " %-*s |",
                         static_cast<int>(widths[c]), cells[c].c_str());
        }
        std::fputc('\n', stream);
    };

    std::fprintf(stream, "\n== %s ==\n", title.c_str());
    print_sep();
    print_cells(headers);
    print_sep();
    for (const auto &row : rows)
        print_cells(row);
    print_sep();
    std::fflush(stream);
}

namespace {

/** Quote a CSV cell when it contains a separator, quote or newline. */
std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
TablePrinter::printCsv(std::FILE *stream) const
{
    for (std::size_t c = 0; c < headers.size(); ++c) {
        std::fprintf(stream, "%s%s", csvEscape(headers[c]).c_str(),
                     c + 1 == headers.size() ? "\n" : ",");
    }
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::fprintf(stream, "%s%s", csvEscape(row[c]).c_str(),
                         c + 1 == row.size() ? "\n" : ",");
        }
    }
    std::fflush(stream);
}

void
TablePrinter::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '%s' for writing: %s", path.c_str(),
              std::strerror(errno));
    printCsv(f);
    std::fclose(f);
}

} // namespace spg
